// Golden tests replaying the paper's worked example end to end:
// Table 1 (input), Table 3 (fusion output), Examples 4.1/4.2 (QBC/US
// choices), Table 6 invariants (MEU) and Table 9 behaviour (Approx-MEU).
// EXPERIMENTS.md records where our decimals deviate and why.
#include <gtest/gtest.h>

#include "core/approx_meu.h"
#include "core/gub.h"
#include "core/meu.h"
#include "core/metrics.h"
#include "core/qbc.h"
#include "core/session.h"
#include "core/us.h"
#include "data/example_data.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fusion_ = model_.Fuse(db_, opts_);
    ctx_.db = &db_;
    ctx_.fusion = &fusion_;
    ctx_.priors = &priors_;
    ctx_.model = &model_;
    ctx_.fusion_opts = &opts_;
    ctx_.ground_truth = &truth_;
    ctx_.graph = &graph_;
    ctx_.include_singletons = true;
    ctx_.warm_start_lookahead = false;
  }

  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  AccuFusion model_;
  FusionOptions opts_ = PaperExampleFusionOptions();
  FusionResult fusion_;
  PriorSet priors_;
  ItemGraph graph_{db_};
  StrategyContext ctx_;
};

TEST_F(PaperExampleTest, Table3FullComparison) {
  // Every probability of Table 3, within 0.01.
  struct Row {
    const char* item;
    const char* claim;
    double prob;
  };
  const Row rows[] = {
      {"Zootopia", "Howard", 0.0},      {"Zootopia", "Spencer", 1.0},
      {"Kung Fu Panda", "Stevenson", 0.015},
      {"Kung Fu Panda", "Nelson", 0.985},
      {"Inside Out", "Docter", 0.999},  {"Inside Out", "leFauve", 0.001},
      {"Finding Dory", "Stanton", 1.0}, {"Minions", "Coffin", 0.921},
      {"Minions", "Renaud", 0.079},     {"Rio", "Saldanha", 0.985},
      {"Rio", "Jones", 0.015},
  };
  for (const Row& row : rows) {
    const ItemId item = *db_.FindItem(row.item);
    const ClaimIndex claim = *db_.FindClaim(item, row.claim);
    EXPECT_NEAR(fusion_.prob(item, claim), row.prob, 0.011)
        << row.item << " / " << row.claim;
  }
}

TEST_F(PaperExampleTest, MotivationValidatingZootopiaImpactsAllItems) {
  // §1.1: "validating Zootopia would impact all other items" — one-hop
  // neighbourhood covers the whole database.
  std::vector<ItemId> neighbors;
  graph_.CollectNeighbors(*db_.FindItem("Zootopia"), &neighbors);
  EXPECT_EQ(neighbors.size(), 5u);
  // "...validating Finding Dory would influence only Zootopia."
  graph_.CollectNeighbors(*db_.FindItem("Finding Dory"), &neighbors);
  EXPECT_EQ(neighbors.size(), 1u);
}

TEST_F(PaperExampleTest, Example41QbcPrefersKungFuPandaOverZootopia) {
  QbcStrategy qbc;
  const auto order = qbc.SelectBatch(ctx_, 6);
  const auto position = [&](const char* name) {
    const ItemId id = *db_.FindItem(name);
    return std::find(order.begin(), order.end(), id) - order.begin();
  };
  EXPECT_LT(position("Kung Fu Panda"), position("Zootopia"));
}

TEST_F(PaperExampleTest, Example42UsSelectsMinions) {
  UsStrategy us;
  ctx_.include_singletons = false;
  EXPECT_EQ(us.SelectNext(ctx_), *db_.FindItem("Minions"));
}

TEST_F(PaperExampleTest, Example43CurrentEntropyNear0437) {
  EXPECT_NEAR(fusion_.TotalEntropy(), 0.437, 0.02);
}

TEST_F(PaperExampleTest, Table6SingletonGainIsExactlyZero) {
  // MEU's EU*(O4) equals EU(D, F): validating the already-certain item is
  // a no-op (the paper's chosen action has utility gain exactly 0).
  const double eu4 = MeuStrategy::ExpectedEntropyAfterValidation(
      ctx_, *db_.FindItem("Finding Dory"));
  EXPECT_NEAR(eu4, fusion_.TotalEntropy(), 1e-9);
}

TEST_F(PaperExampleTest, Table6MinionsHasHighestExpectedEntropy) {
  // Table 6: EU*(O5) = 1.342 is by far the largest expected entropy —
  // Minions is maximally uncertain (0.921/0.079) and both its branches
  // disturb the system. Must hold under our schedule too.
  double minions_eu = MeuStrategy::ExpectedEntropyAfterValidation(
      ctx_, *db_.FindItem("Minions"));
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    if (i == *db_.FindItem("Minions")) continue;
    EXPECT_GT(minions_eu,
              MeuStrategy::ExpectedEntropyAfterValidation(ctx_, i) - 1e-9)
        << "item " << i;
  }
}

TEST_F(PaperExampleTest, Table9ApproxSingletonNeutral) {
  const double eu4 = ApproxMeuStrategy::ExpectedEntropyAfterValidation(
      ctx_, *db_.FindItem("Finding Dory"), nullptr);
  EXPECT_NEAR(eu4, fusion_.TotalEntropy(), 1e-9);
}

TEST_F(PaperExampleTest, Table9ApproxPrefersDisputedConnectedItems) {
  // Table 9 ranks O2 and O5 as the two best actions (EU* 0.184 and 0.235).
  // Our differential estimate agrees that the best action is one of the
  // maximally disputed items O2/O5/O6, never O1/O3/O4.
  ApproxMeuStrategy approx;
  const ItemId pick = approx.SelectNext(ctx_);
  const ItemId o2 = *db_.FindItem("Kung Fu Panda");
  const ItemId o5 = *db_.FindItem("Minions");
  const ItemId o6 = *db_.FindItem("Rio");
  EXPECT_TRUE(pick == o2 || pick == o5 || pick == o6)
      << "picked " << db_.item(pick).name;
}

TEST_F(PaperExampleTest, IntroValidatingHowardFlipsZootopia) {
  // §1.1: after validating that Howard is correct, the system reconsiders
  // claims by S2, S3, S4.
  PriorSet feedback;
  const ItemId zootopia = *db_.FindItem("Zootopia");
  ASSERT_TRUE(
      feedback.SetExact(db_, zootopia, *db_.FindClaim(zootopia, "Howard"))
          .ok());
  const FusionResult after = model_.Fuse(db_, feedback, opts_);
  // S2 is now more trusted; leFauve (S2's claim on Inside Out) gains.
  const ItemId o3 = *db_.FindItem("Inside Out");
  EXPECT_GT(after.prob(o3, *db_.FindClaim(o3, "leFauve")),
            fusion_.prob(o3, *db_.FindClaim(o3, "leFauve")));
  // S3 and S4, who voted Spencer, lose trust.
  EXPECT_LT(after.accuracy(*db_.FindSource("S3")),
            fusion_.accuracy(*db_.FindSource("S3")));
  EXPECT_LT(after.accuracy(*db_.FindSource("S4")),
            fusion_.accuracy(*db_.FindSource("S4")));
}

TEST_F(PaperExampleTest, FullValidationSequenceReachesTruth) {
  // Whatever the strategy, validating all 5 conflicting items with perfect
  // feedback ends at distance 0 — here with GUB, the paper's gold standard.
  GubStrategy gub;
  PerfectOracle oracle;
  SessionOptions options;
  options.fusion = opts_;
  Rng rng(1);
  FeedbackSession session(db_, model_, &gub, &oracle, truth_, options, &rng);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_NEAR(trace->steps.back().distance, 0.0, 1e-9);
}

TEST_F(PaperExampleTest, GubFirstPickIsTheManualArgmax) {
  GubStrategy gub;
  ctx_.include_singletons = false;
  const ItemId pick = gub.SelectNext(ctx_);
  // Recompute every candidate's ground-truth-utility gain by hand and
  // verify GUB selected the argmax. (On this adversarial example every
  // single validation can have negative global gain — GUB still picks the
  // least harmful one.)
  const double current = GroundTruthUtility(db_, fusion_, truth_);
  double best_gain = -1e300;
  ItemId best_item = kInvalidItem;
  for (ItemId i : db_.ConflictingItems()) {
    PriorSet pinned;
    ASSERT_TRUE(pinned.SetExact(db_, i, truth_.TrueClaim(i)).ok());
    const FusionResult r = model_.Fuse(db_, pinned, opts_);
    const double gain = GroundTruthUtility(db_, r, truth_) - current;
    if (gain > best_gain) {
      best_gain = gain;
      best_item = i;
    }
  }
  EXPECT_EQ(pick, best_item) << "picked " << db_.item(pick).name
                             << ", manual argmax "
                             << db_.item(best_item).name;
}

}  // namespace
}  // namespace veritas
