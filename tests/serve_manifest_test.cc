// Session manifest round-trips: every SessionSpec field survives
// save + load bit-exactly, malformed files are typed errors (never
// guesses), and the directory sweep lists exactly the surviving manifests.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "serve/session_manifest.h"

namespace veritas {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

SessionSpec FullSpec() {
  SessionSpec spec;
  spec.id = "sess-7";
  spec.strategy = "qbc";
  spec.model = "truthfinder";
  spec.oracle = "confidence:0.9";
  spec.max_validations = 11;
  spec.batch_size = 2;
  spec.seed = 1234567890123u;
  spec.deadline_ms = 2500;
  spec.budget.max_approx_bytes = 1 << 20;
  spec.budget.max_rounds_per_run = 4;
  spec.flaky_plan = "prob=0.25,kind=timeout";
  spec.retries = 3;
  spec.stall_seconds = 1.5;
  spec.use_delta_fusion = false;
  spec.recovery_attempts = 2;
  return spec;
}

TEST(SessionManifestTest, RoundTripsEveryField) {
  const std::string path = TempPath("veritas_manifest_roundtrip.session");
  const SessionSpec spec = FullSpec();
  ASSERT_TRUE(SaveSessionManifest(spec, path).ok());
  auto loaded = LoadSessionManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->id, spec.id);
  EXPECT_EQ(loaded->strategy, spec.strategy);
  EXPECT_EQ(loaded->model, spec.model);
  EXPECT_EQ(loaded->oracle, spec.oracle);
  EXPECT_EQ(loaded->max_validations, spec.max_validations);
  EXPECT_EQ(loaded->batch_size, spec.batch_size);
  EXPECT_EQ(loaded->seed, spec.seed);
  EXPECT_EQ(loaded->deadline_ms, spec.deadline_ms);
  EXPECT_EQ(loaded->budget.max_approx_bytes, spec.budget.max_approx_bytes);
  EXPECT_EQ(loaded->budget.max_rounds_per_run,
            spec.budget.max_rounds_per_run);
  EXPECT_EQ(loaded->flaky_plan, spec.flaky_plan);
  EXPECT_EQ(loaded->retries, spec.retries);
  EXPECT_EQ(loaded->stall_seconds, spec.stall_seconds);
  EXPECT_EQ(loaded->use_delta_fusion, spec.use_delta_fusion);
  EXPECT_EQ(loaded->recovery_attempts, spec.recovery_attempts);
  std::remove(path.c_str());
}

TEST(SessionManifestTest, EmptyStringsRoundTrip) {
  const std::string path = TempPath("veritas_manifest_empty.session");
  SessionSpec spec;
  spec.id = "plain";
  spec.flaky_plan = "";
  ASSERT_TRUE(SaveSessionManifest(spec, path).ok());
  auto loaded = LoadSessionManifest(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->flaky_plan, "");
  std::remove(path.c_str());
}

TEST(SessionManifestTest, MissingFileIsNotFound) {
  auto loaded = LoadSessionManifest(TempPath("veritas_no_such.session"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SessionManifestTest, TruncatedManifestIsInvalid) {
  const std::string path = TempPath("veritas_manifest_trunc.session");
  ASSERT_TRUE(SaveSessionManifest(FullSpec(), path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::trunc);
  out << content.substr(0, content.size() / 2);
  out.close();
  auto loaded = LoadSessionManifest(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SessionManifestTest, BadHeaderIsInvalid) {
  const std::string path = TempPath("veritas_manifest_header.session");
  std::ofstream out(path, std::ios::trunc);
  out << "not-a-manifest v9\nend\n";
  out.close();
  auto loaded = LoadSessionManifest(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST(SessionManifestTest, ValidatesSessionIds) {
  EXPECT_EQ(ValidateSessionId("ok-id_1.a"), "");
  EXPECT_NE(ValidateSessionId(""), "");
  EXPECT_NE(ValidateSessionId("has space"), "");
  EXPECT_NE(ValidateSessionId("has\ttab"), "");
  EXPECT_NE(ValidateSessionId("a/b"), "");
  EXPECT_NE(ValidateSessionId("a\\b"), "");
  EXPECT_NE(ValidateSessionId(".hidden"), "");
}

TEST(SessionManifestTest, ListsOnlyManifestsSorted) {
  const std::string dir = TempPath("veritas_manifest_list_dir");
  std::remove((dir + "/b.session").c_str());
  std::remove((dir + "/a.session").c_str());
  std::remove((dir + "/a.ckpt").c_str());
  ::rmdir(dir.c_str());
  ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
  SessionSpec spec;
  spec.id = "b";
  ASSERT_TRUE(SaveSessionManifest(spec, dir + "/b.session").ok());
  spec.id = "a";
  ASSERT_TRUE(SaveSessionManifest(spec, dir + "/a.session").ok());
  std::ofstream(dir + "/a.ckpt") << "not a manifest";
  auto ids = ListSessionManifests(dir);
  ASSERT_TRUE(ids.ok()) << ids.status();
  ASSERT_EQ(ids->size(), 2u);
  EXPECT_EQ((*ids)[0], "a");
  EXPECT_EQ((*ids)[1], "b");
}

TEST(SessionManifestTest, PathsAreDerivedFromIds) {
  EXPECT_EQ(SessionManifestPath("/tmp/d", "x"), "/tmp/d/x.session");
  EXPECT_EQ(SessionCheckpointPath("/tmp/d", "x"), "/tmp/d/x.ckpt");
}

TEST(SessionManifestTest, RemovesOnlyDeadWritersTempFiles) {
  const std::string dir = TempPath("veritas_manifest_janitor_dir");
  if (DIR* d = ::opendir(dir.c_str())) {  // Residue from a previous run.
    while (struct dirent* entry = ::readdir(d)) {
      ::unlink((dir + "/" + entry->d_name).c_str());
    }
    ::closedir(d);
    ::rmdir(dir.c_str());
  }
  ASSERT_EQ(::mkdir(dir.c_str(), 0777), 0);
  const auto touch = [&](const std::string& name) {
    std::ofstream(dir + "/" + name) << "x";
  };
  // A pid far above any kernel pid_max: guaranteed-dead writer.
  touch("s1.ckpt.tmp.2147483647.5");
  // Our own pid: a writer that is, by construction, alive.
  const std::string ours =
      "s2.ckpt.tmp." + std::to_string(::getpid()) + ".9";
  touch(ours);
  // Names that do not parse as <final>.tmp.<pid>.<serial>: not ours.
  touch("s3.ckpt.tmp.notapid.1");
  touch("s4.ckpt.tmp.12");
  // No ".tmp." at all: untouched.
  touch("s5.session");

  EXPECT_EQ(RemoveOrphanTempFiles(dir), 1u);
  const auto exists = [&](const std::string& name) {
    struct stat st;
    return ::stat((dir + "/" + name).c_str(), &st) == 0;
  };
  EXPECT_FALSE(exists("s1.ckpt.tmp.2147483647.5"));
  EXPECT_TRUE(exists(ours));
  EXPECT_TRUE(exists("s3.ckpt.tmp.notapid.1"));
  EXPECT_TRUE(exists("s4.ckpt.tmp.12"));
  EXPECT_TRUE(exists("s5.session"));
  // A second sweep finds nothing new.
  EXPECT_EQ(RemoveOrphanTempFiles(dir), 0u);
}

}  // namespace
}  // namespace veritas
