// Hard-stop contract across every fusion model the factory can build (the
// ISSUE-6 satellite extending the Accu/TruthFinder/Voting semantics to LCA,
// PooledInvestment and AccuCopy): a hard stop bails the iteration loops at
// the next boundary, the partial result is finite but flagged
// converged() == false, and a *graceful* stop is deliberately invisible to
// the fusion layer (round boundaries belong to the session, not the model).
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "data/synthetic.h"
#include "fusion/fusion_factory.h"
#include "util/cancellation.h"

namespace veritas {
namespace {

class FusionCancellationTest : public ::testing::TestWithParam<std::string> {
 protected:
  FusionCancellationTest() {
    DenseConfig config;
    config.num_items = 30;
    config.num_sources = 8;
    config.density = 0.5;
    config.seed = 19;
    data_ = GenerateDense(config);
  }
  SyntheticDataset data_;
};

TEST_P(FusionCancellationTest, HardStopBailsFiniteAndNonConverged) {
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok()) << model.status();
  CancellationToken token;
  token.RequestHardStop();
  FusionOptions opts;
  opts.cancel = &token;
  const FusionResult result = (*model)->Fuse(data_.db, PriorSet(), opts);
  EXPECT_FALSE(result.converged());
  EXPECT_TRUE(result.AllFinite());  // Bailed, but never half-written.
  EXPECT_EQ(result.num_items(), data_.db.num_items());
}

TEST_P(FusionCancellationTest, GracefulStopIsInvisibleToFusion) {
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok()) << model.status();
  FusionOptions plain;
  const FusionResult baseline = (*model)->Fuse(data_.db, PriorSet(), plain);

  CancellationToken token;
  token.RequestStop();  // Graceful only; fusion must run to its fixed point.
  FusionOptions opts;
  opts.cancel = &token;
  const FusionResult result = (*model)->Fuse(data_.db, PriorSet(), opts);
  EXPECT_EQ(result.converged(), baseline.converged());
  EXPECT_EQ(result.accuracies(), baseline.accuracies());
  for (ItemId i = 0; i < baseline.num_items(); ++i) {
    EXPECT_EQ(result.item_probs(i), baseline.item_probs(i)) << "item " << i;
  }
}

TEST_P(FusionCancellationTest, NullTokenRunsToCompletion) {
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok()) << model.status();
  FusionOptions opts;  // cancel == nullptr.
  const FusionResult result = (*model)->Fuse(data_.db, PriorSet(), opts);
  EXPECT_TRUE(result.AllFinite());
  EXPECT_EQ(result.num_items(), data_.db.num_items());
}

INSTANTIATE_TEST_SUITE_P(AllModels, FusionCancellationTest,
                         ::testing::Values("accu", "accu_copy", "voting",
                                           "truthfinder", "lca",
                                           "pooled_investment"),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace veritas
