// Tests of Approx-MEU (§4.2.3, Appendix A): the Eq. (9) accuracy deltas, the
// Eq. (10) differential estimates (closed form vs literal), the one-hop
// truncation, and the strategy itself.
#include "core/approx_meu.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/meu.h"
#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class ApproxMeuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fusion_ = model_.Fuse(db_, opts_);
    ctx_.db = &db_;
    ctx_.fusion = &fusion_;
    ctx_.priors = &priors_;
    ctx_.model = &model_;
    ctx_.fusion_opts = &opts_;
    ctx_.graph = &graph_;
    ctx_.include_singletons = true;
  }

  Database db_ = MakeMovieDatabase();
  AccuFusion model_;
  FusionOptions opts_ = PaperExampleFusionOptions();
  FusionResult fusion_;
  PriorSet priors_;
  ItemGraph graph_{db_};
  StrategyContext ctx_;
};

TEST_F(ApproxMeuTest, AccuracyDeltasFollowEq9) {
  // Validate O3 = Docter. S3 (votes Docter, N=4) gains (1-p)/4;
  // S2 (votes leFauve, N=3) loses p_leFauve/3.
  const ItemId o3 = *db_.FindItem("Inside Out");
  const ClaimIndex docter = *db_.FindClaim(o3, "Docter");
  const ClaimIndex lefauve = *db_.FindClaim(o3, "leFauve");
  const AccuracyDeltas deltas =
      ComputeAccuracyDeltas(db_, fusion_, o3, docter);
  ASSERT_EQ(deltas.size(), 2u);
  const SourceId s3 = *db_.FindSource("S3");
  const SourceId s2 = *db_.FindSource("S2");
  EXPECT_NEAR(deltas.at(s3), (1.0 - fusion_.prob(o3, docter)) / 4.0, 1e-12);
  EXPECT_NEAR(deltas.at(s2), -fusion_.prob(o3, lefauve) / 3.0, 1e-12);
}

TEST_F(ApproxMeuTest, AccuracyDeltasOnlyTouchVoters) {
  const ItemId dory = *db_.FindItem("Finding Dory");
  const AccuracyDeltas deltas = ComputeAccuracyDeltas(db_, fusion_, dory, 0);
  ASSERT_EQ(deltas.size(), 1u);
  EXPECT_TRUE(deltas.count(*db_.FindSource("S4")));
}

TEST_F(ApproxMeuTest, FastAndLiteralEstimatesAgree) {
  // The closed form dp_r = p_r (g(r) - sum_v p_v g(v)) must match the
  // literal Eq. (10) ratio-of-products implementation.
  for (ItemId validated = 0; validated < db_.num_items(); ++validated) {
    for (ClaimIndex t = 0; t < db_.num_claims(validated); ++t) {
      const AccuracyDeltas deltas =
          ComputeAccuracyDeltas(db_, fusion_, validated, t);
      for (ItemId j = 0; j < db_.num_items(); ++j) {
        if (j == validated) continue;
        const auto fast = EstimateUpdatedProbs(db_, fusion_, j, deltas);
        const auto literal =
            EstimateUpdatedProbsLiteral(db_, fusion_, j, deltas);
        ASSERT_EQ(fast.size(), literal.size());
        for (std::size_t k = 0; k < fast.size(); ++k) {
          EXPECT_NEAR(fast[k], literal[k], 1e-6)
              << "validated=" << validated << " t=" << t << " j=" << j
              << " k=" << k;
        }
      }
    }
  }
}

TEST_F(ApproxMeuTest, FirstOrderChangesSumToZero) {
  // dp over an item's claims cancels: distributions stay normalized to
  // first order (before clamping).
  const ItemId o5 = *db_.FindItem("Minions");
  const AccuracyDeltas deltas = ComputeAccuracyDeltas(db_, fusion_, o5, 0);
  for (ItemId j = 0; j < db_.num_items(); ++j) {
    if (j == o5 || db_.num_claims(j) < 2) continue;
    const auto updated = EstimateUpdatedProbs(db_, fusion_, j, deltas);
    double before = 0.0, after = 0.0;
    for (ClaimIndex k = 0; k < db_.num_claims(j); ++k) {
      before += fusion_.prob(j, k);
      after += updated[k];
    }
    // Clamping can only bite when a probability leaves [0,1].
    EXPECT_NEAR(after, before, 0.05) << "item " << j;
  }
}

TEST_F(ApproxMeuTest, RewardedSourceClaimGainsProbability) {
  // Validating Howard on Zootopia rewards S2; S2's claim on Minions
  // (Renaud) must gain estimated probability.
  const ItemId zootopia = *db_.FindItem("Zootopia");
  const ClaimIndex howard = *db_.FindClaim(zootopia, "Howard");
  const AccuracyDeltas deltas =
      ComputeAccuracyDeltas(db_, fusion_, zootopia, howard);
  const ItemId minions = *db_.FindItem("Minions");
  const ClaimIndex renaud = *db_.FindClaim(minions, "Renaud");
  const auto updated = EstimateUpdatedProbs(db_, fusion_, minions, deltas);
  EXPECT_GT(updated[renaud], fusion_.prob(minions, renaud));
}

TEST_F(ApproxMeuTest, UnaffectedItemUnchanged) {
  // Validating Finding Dory (voter S4) cannot move Minions (voters S1, S2).
  const ItemId dory = *db_.FindItem("Finding Dory");
  const AccuracyDeltas deltas = ComputeAccuracyDeltas(db_, fusion_, dory, 0);
  const ItemId minions = *db_.FindItem("Minions");
  const auto updated = EstimateUpdatedProbs(db_, fusion_, minions, deltas);
  for (ClaimIndex k = 0; k < db_.num_claims(minions); ++k) {
    EXPECT_DOUBLE_EQ(updated[k], fusion_.prob(minions, k));
  }
}

TEST_F(ApproxMeuTest, EstimatesAreClampedProbabilities) {
  for (ItemId validated = 0; validated < db_.num_items(); ++validated) {
    for (ClaimIndex t = 0; t < db_.num_claims(validated); ++t) {
      const AccuracyDeltas deltas =
          ComputeAccuracyDeltas(db_, fusion_, validated, t);
      for (ItemId j = 0; j < db_.num_items(); ++j) {
        if (j == validated) continue;
        for (double p : EstimateUpdatedProbs(db_, fusion_, j, deltas)) {
          EXPECT_GE(p, 0.0);
          EXPECT_LE(p, 1.0);
        }
      }
    }
  }
}

TEST_F(ApproxMeuTest, SingletonValidationIsNeutral) {
  // Mirrors the MEU invariant: "validating" the already-certain O4 has an
  // expected entropy equal to the current one (its deltas are all zero
  // because 1 - p = 0).
  const ItemId dory = *db_.FindItem("Finding Dory");
  const double expected = ApproxMeuStrategy::ExpectedEntropyAfterValidation(
      ctx_, dory, nullptr);
  EXPECT_NEAR(expected, fusion_.TotalEntropy(), 1e-9);
}

TEST_F(ApproxMeuTest, PrefersWellConnectedDisputedItems) {
  // §1.1's motivation: validating Minions (disputed, touches most items via
  // S1/S2) beats validating nothing-at-stake items. The strategy must pick
  // a maximally disputed item, never O4.
  ApproxMeuStrategy strategy;
  const ItemId pick = strategy.SelectNext(ctx_);
  EXPECT_NE(pick, *db_.FindItem("Finding Dory"));
  EXPECT_TRUE(db_.HasConflict(pick));
}

TEST_F(ApproxMeuTest, ImpactFilterRestrictsPropagation) {
  // With an impact filter selecting nothing, only the validated item's own
  // entropy is considered.
  const ItemId o5 = *db_.FindItem("Minions");
  std::vector<bool> nothing(db_.num_items(), false);
  const double expected = ApproxMeuStrategy::ExpectedEntropyAfterValidation(
      ctx_, o5, &nothing);
  EXPECT_NEAR(expected, fusion_.TotalEntropy() - fusion_.ItemEntropy(o5),
              1e-9);
}

TEST_F(ApproxMeuTest, ScoreCandidatesMatchesPerItemComputation) {
  const std::vector<ItemId> candidates = {0, 1, 2, 3, 4, 5};
  const auto scores =
      ApproxMeuStrategy::ScoreCandidates(ctx_, candidates, nullptr);
  ASSERT_EQ(scores.size(), candidates.size());
  for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
    const double expected =
        fusion_.TotalEntropy() -
        ApproxMeuStrategy::ExpectedEntropyAfterValidation(
            ctx_, candidates[idx], nullptr);
    EXPECT_NEAR(scores[idx], expected, 1e-9);
  }
}

TEST_F(ApproxMeuTest, PinnedNeighborsDoNotMove) {
  // A validated (pinned) neighbour's entropy contribution must not change.
  const ItemId minions = *db_.FindItem("Minions");
  ASSERT_TRUE(priors_.SetExact(db_, minions, 0).ok());
  FusionResult updated = model_.Fuse(db_, priors_, opts_);
  ctx_.fusion = &updated;
  // Validate Zootopia=Howard; Minions is a neighbour via S2 but is pinned.
  const ItemId zootopia = *db_.FindItem("Zootopia");
  const double expected = ApproxMeuStrategy::ExpectedEntropyAfterValidation(
      ctx_, zootopia, nullptr);
  // Recompute manually excluding the pinned item from the impact set.
  std::vector<bool> filter(db_.num_items(), true);
  filter[minions] = false;
  const double filtered = ApproxMeuStrategy::ExpectedEntropyAfterValidation(
      ctx_, zootopia, &filter);
  EXPECT_NEAR(expected, filtered, 1e-12);
}

TEST_F(ApproxMeuTest, TheoremDecayOneHopSmallerThanValidated) {
  // Theorem 4.1 sanity check on synthetic dense data: the average absolute
  // first-order change of neighbours is much smaller than the change of the
  // validated item itself.
  DenseConfig config;
  config.num_items = 80;
  config.num_sources = 12;
  config.density = 0.6;
  config.seed = 3;
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion model;
  const FusionResult fusion = model.Fuse(data.db, FusionOptions{});

  double max_neighbor_change = 0.0;
  double validated_change = 0.0;
  const ItemId target = data.db.ConflictingItems().front();
  const ClaimIndex t = fusion.WinningClaim(target) == 0 ? 1 : 0;
  validated_change = 1.0 - fusion.prob(target, t);
  const AccuracyDeltas deltas =
      ComputeAccuracyDeltas(data.db, fusion, target, t);
  for (ItemId j = 0; j < data.db.num_items(); ++j) {
    if (j == target) continue;
    const auto updated = EstimateUpdatedProbs(data.db, fusion, j, deltas);
    for (ClaimIndex k = 0; k < data.db.num_claims(j); ++k) {
      max_neighbor_change = std::max(
          max_neighbor_change, std::fabs(updated[k] - fusion.prob(j, k)));
    }
  }
  EXPECT_LT(max_neighbor_change, validated_change);
}

TEST_F(ApproxMeuTest, Name) {
  EXPECT_EQ(ApproxMeuStrategy().name(), "approx_meu");
}

}  // namespace
}  // namespace veritas
