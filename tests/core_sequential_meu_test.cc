// Tests of the two-step-lookahead strategy (the paper's future-work
// extension beyond myopic VPI).
#include "core/sequential_meu.h"

#include <gtest/gtest.h>

#include "core/meu.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class SequentialMeuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fusion_ = model_.Fuse(db_, opts_);
    ctx_.db = &db_;
    ctx_.fusion = &fusion_;
    ctx_.priors = &priors_;
    ctx_.model = &model_;
    ctx_.fusion_opts = &opts_;
  }

  Database db_ = MakeMovieDatabase();
  AccuFusion model_;
  FusionOptions opts_ = PaperExampleFusionOptions();
  FusionResult fusion_;
  PriorSet priors_;
  StrategyContext ctx_;
};

TEST_F(SequentialMeuTest, TwoStepNeverWorseThanOneStep) {
  // The second validation can only reduce (or keep) the expected entropy:
  // TwoStep(i) <= OneStep(i) for every item, because "do nothing" is
  // always an admissible follow-up.
  for (ItemId i : db_.ConflictingItems()) {
    const double one = MeuStrategy::ExpectedEntropyAfterValidation(ctx_, i);
    const double two =
        SequentialMeuStrategy::TwoStepExpectedEntropy(ctx_, i, 5);
    EXPECT_LE(two, one + 1e-9) << "item " << i;
  }
}

TEST_F(SequentialMeuTest, SelectsFromCandidates) {
  SequentialMeuStrategy strategy;
  const ItemId pick = strategy.SelectNext(ctx_);
  EXPECT_NE(pick, kInvalidItem);
  EXPECT_TRUE(db_.HasConflict(pick));
  EXPECT_FALSE(priors_.Has(pick));
}

TEST_F(SequentialMeuTest, BatchHasDistinctItems) {
  SequentialMeuStrategy strategy;
  const auto batch = strategy.SelectBatch(ctx_, 5);
  EXPECT_EQ(batch.size(), 5u);
  const std::set<ItemId> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), batch.size());
}

TEST_F(SequentialMeuTest, BatchBeyondBeamFallsBackToMyopicOrder) {
  SequentialMeuOptions options;
  options.beam_width = 2;
  SequentialMeuStrategy strategy(options);
  const auto batch = strategy.SelectBatch(ctx_, 5);
  EXPECT_EQ(batch.size(), 5u);  // All candidates still returned.
}

TEST_F(SequentialMeuTest, SkipsValidatedItems) {
  SequentialMeuStrategy strategy;
  const ItemId first = strategy.SelectNext(ctx_);
  ASSERT_TRUE(priors_.SetExact(db_, first, 0).ok());
  FusionResult updated = model_.Fuse(db_, priors_, opts_);
  ctx_.fusion = &updated;
  EXPECT_NE(strategy.SelectNext(ctx_), first);
}

TEST_F(SequentialMeuTest, EmptyCandidates) {
  for (ItemId i : db_.ConflictingItems()) {
    ASSERT_TRUE(priors_.SetExact(db_, i, 0).ok());
  }
  SequentialMeuStrategy strategy;
  EXPECT_TRUE(strategy.SelectBatch(ctx_, 3).empty());
}

TEST_F(SequentialMeuTest, FactoryName) {
  auto strategy = MakeStrategy("meu2");
  ASSERT_TRUE(strategy.ok());
  EXPECT_EQ((*strategy)->name(), "meu2");
}

TEST_F(SequentialMeuTest, OptionsAccessor) {
  SequentialMeuOptions options;
  options.beam_width = 3;
  options.inner_beam = 2;
  SequentialMeuStrategy strategy(options);
  EXPECT_EQ(strategy.options().beam_width, 3u);
  EXPECT_EQ(strategy.options().inner_beam, 2u);
}

TEST(SequentialMeuSyntheticTest, SessionImprovesFusion) {
  DenseConfig config;
  config.num_items = 50;
  config.num_sources = 8;
  config.density = 0.5;
  config.seed = 13;
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion model;
  auto strategy = MakeStrategy("meu2");
  ASSERT_TRUE(strategy.ok());
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = 8;
  Rng rng(1);
  FeedbackSession session(data.db, model, strategy->get(), &oracle,
                          data.truth, options, &rng);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_LT(trace->steps.back().distance, trace->initial_distance);
}

TEST(SequentialMeuSyntheticTest, TwoStepAtLeastMatchesMyopicPlanValue) {
  // On a small dataset, the two-step plan value of meu2's pick must be at
  // least the two-step value of MEU's myopic pick (meu2 optimizes it
  // within the beam, and the beam contains the myopic argmax).
  DenseConfig config;
  config.num_items = 30;
  config.num_sources = 6;
  config.density = 0.5;
  config.seed = 29;
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(data.db, priors, opts);
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;

  MeuStrategy meu;
  SequentialMeuStrategy meu2;
  const ItemId myopic_pick = meu.SelectNext(ctx);
  const ItemId two_step_pick = meu2.SelectNext(ctx);
  const double myopic_value =
      SequentialMeuStrategy::TwoStepExpectedEntropy(ctx, myopic_pick, 5);
  const double two_step_value =
      SequentialMeuStrategy::TwoStepExpectedEntropy(ctx, two_step_pick, 5);
  EXPECT_LE(two_step_value, myopic_value + 1e-9);
}

}  // namespace
}  // namespace veritas
