// Tests of GUB, the ground-truth-utility upper bound (§4.2.1, §5).
#include "core/gub.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "data/example_data.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class GubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fusion_ = model_.Fuse(db_, opts_);
    ctx_.db = &db_;
    ctx_.fusion = &fusion_;
    ctx_.priors = &priors_;
    ctx_.model = &model_;
    ctx_.fusion_opts = &opts_;
    ctx_.ground_truth = &truth_;
  }

  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  AccuFusion model_;
  FusionOptions opts_ = PaperExampleFusionOptions();
  FusionResult fusion_;
  PriorSet priors_;
  StrategyContext ctx_;
};

TEST_F(GubTest, OracleModePicksMaxUtilityGain) {
  GubStrategy gub;
  const ItemId pick = gub.SelectNext(ctx_);
  const double current = GroundTruthUtility(db_, fusion_, truth_);
  // Recompute the gain of every candidate by hand; none may beat the pick.
  double pick_gain = -1.0;
  std::vector<double> gains;
  for (ItemId i : db_.ConflictingItems()) {
    PriorSet pinned = priors_;
    ASSERT_TRUE(pinned.SetExact(db_, i, truth_.TrueClaim(i)).ok());
    const FusionResult r = model_.Fuse(db_, pinned, opts_, &fusion_);
    const double gain = GroundTruthUtility(db_, r, truth_) - current;
    gains.push_back(gain);
    if (i == pick) pick_gain = gain;
  }
  for (double g : gains) EXPECT_LE(g, pick_gain + 1e-9);
}

TEST_F(GubTest, ValidationMaximizesTheItemsOwnUtilityTerm) {
  // Pinning an item's true claim drives that item's own utility term to its
  // maximum (p_true = 1). The *global* utility can still drop on adversarial
  // data like this example — validating the minority truth of Zootopia
  // punishes sources that are right elsewhere — which GUB's argmax handles
  // by simply preferring other items.
  const ItemId zootopia = *db_.FindItem("Zootopia");
  const ClaimIndex howard = truth_.TrueClaim(zootopia);
  PriorSet pinned;
  ASSERT_TRUE(pinned.SetExact(db_, zootopia, howard).ok());
  const FusionResult r = model_.Fuse(db_, pinned, opts_);
  EXPECT_DOUBLE_EQ(r.prob(zootopia, howard), 1.0);
  EXPECT_GT(r.prob(zootopia, howard), fusion_.prob(zootopia, howard));
}

TEST_F(GubTest, SkipsItemsWithoutTruth) {
  GroundTruth partial(db_);
  ASSERT_TRUE(partial.SetByValue(db_, "Minions", "Coffin").ok());
  ctx_.ground_truth = &partial;
  GubStrategy gub;
  // Only Minions can be evaluated; it must be the pick.
  EXPECT_EQ(gub.SelectNext(ctx_), *db_.FindItem("Minions"));
}

TEST_F(GubTest, ExpectationModeUsesDefinition4) {
  GubStrategy gub(GubMode::kExpectation);
  EXPECT_EQ(gub.mode(), GubMode::kExpectation);
  const ItemId pick = gub.SelectNext(ctx_);
  EXPECT_NE(pick, kInvalidItem);
  EXPECT_TRUE(db_.HasConflict(pick));
}

TEST_F(GubTest, ExpectationModeWorksWithoutFullTruthOnItem) {
  // Expectation mode hypothesizes every claim, so it can score items whose
  // truth is unknown (utility simply counts the known ones).
  GroundTruth partial(db_);
  ASSERT_TRUE(partial.SetByValue(db_, "Rio", "Saldanha").ok());
  ctx_.ground_truth = &partial;
  GubStrategy gub(GubMode::kExpectation);
  EXPECT_NE(gub.SelectNext(ctx_), kInvalidItem);
}

TEST_F(GubTest, SkipsValidatedItems) {
  GubStrategy gub;
  const ItemId first = gub.SelectNext(ctx_);
  ASSERT_TRUE(priors_.SetExact(db_, first, truth_.TrueClaim(first)).ok());
  FusionResult updated = model_.Fuse(db_, priors_, opts_);
  ctx_.fusion = &updated;
  EXPECT_NE(gub.SelectNext(ctx_), first);
}

TEST_F(GubTest, BatchOrderedByGain) {
  GubStrategy gub;
  const auto batch = gub.SelectBatch(ctx_, 3);
  EXPECT_EQ(batch.size(), 3u);
  const std::set<ItemId> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), batch.size());
}

TEST_F(GubTest, DefaultModeIsOracle) {
  EXPECT_EQ(GubStrategy().mode(), GubMode::kOracle);
}

TEST_F(GubTest, Name) { EXPECT_EQ(GubStrategy().name(), "gub"); }

TEST_F(GubTest, ParallelScoringMatchesSequential) {
  GubStrategy sequential(GubMode::kOracle, 1);
  GubStrategy parallel(GubMode::kOracle, 4);
  EXPECT_EQ(parallel.num_threads(), 4u);
  EXPECT_EQ(sequential.SelectBatch(ctx_, 5), parallel.SelectBatch(ctx_, 5));
}

TEST_F(GubTest, ZeroThreadsNormalizedToOne) {
  GubStrategy strategy(GubMode::kOracle, 0);
  EXPECT_EQ(strategy.num_threads(), 1u);
  EXPECT_NE(strategy.SelectNext(ctx_), kInvalidItem);
}

}  // namespace
}  // namespace veritas
