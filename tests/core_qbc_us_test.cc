// Tests of the item-level ranking strategies QBC (§4.1.1) and US (§4.1.2).
#include <gtest/gtest.h>

#include "core/qbc.h"
#include "core/us.h"
#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class ItemLevelStrategyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fusion_ = model_.Fuse(db_, opts_);
    ctx_.db = &db_;
    ctx_.fusion = &fusion_;
    ctx_.priors = &priors_;
    ctx_.model = &model_;
    ctx_.fusion_opts = &opts_;
  }

  Database db_ = MakeMovieDatabase();
  AccuFusion model_;
  FusionOptions opts_ = PaperExampleFusionOptions();
  FusionResult fusion_;
  PriorSet priors_;
  StrategyContext ctx_;
};

TEST_F(ItemLevelStrategyTest, QbcPrefersMaximallyDisputedItems) {
  // Example 4.1: QBC validates O2 (vote entropy 0.693) before O1 (0.637).
  QbcStrategy qbc;
  const auto order = qbc.SelectBatch(ctx_, 5);
  ASSERT_EQ(order.size(), 5u);
  // All 0.693-entropy items (O2, O3, O5, O6) precede O1.
  EXPECT_EQ(order.back(), *db_.FindItem("Zootopia"));
  const ItemId o2 = *db_.FindItem("Kung Fu Panda");
  EXPECT_LT(std::find(order.begin(), order.end(), o2) - order.begin(), 4);
}

TEST_F(ItemLevelStrategyTest, QbcNeverPicksSingleton) {
  QbcStrategy qbc;
  const auto order = qbc.SelectBatch(ctx_, 10);
  for (ItemId i : order) EXPECT_TRUE(db_.HasConflict(i));
}

TEST_F(ItemLevelStrategyTest, QbcSkipsValidatedItems) {
  QbcStrategy qbc;
  const ItemId first = qbc.SelectNext(ctx_);
  ASSERT_TRUE(priors_.SetExact(db_, first, 0).ok());
  const ItemId second = qbc.SelectNext(ctx_);
  EXPECT_NE(second, first);
}

TEST_F(ItemLevelStrategyTest, QbcOrderIsStableAcrossFusionChanges) {
  // QBC ignores fusion output: changing the fusion result must not change
  // its ranking (§4.1.1).
  QbcStrategy qbc;
  const auto before = qbc.SelectBatch(ctx_, 5);
  PriorSet pinned;
  ASSERT_TRUE(pinned.SetExact(db_, *db_.FindItem("Zootopia"), 0).ok());
  FusionResult other = model_.Fuse(db_, pinned, opts_);
  ctx_.fusion = &other;
  const auto after = qbc.SelectBatch(ctx_, 5);
  EXPECT_EQ(before, after);
}

TEST_F(ItemLevelStrategyTest, QbcCacheInvalidatedAcrossDatabases) {
  // Reusing one strategy instance against a different database must not
  // replay the previous database's ranking.
  QbcStrategy qbc;
  ASSERT_NE(qbc.SelectNext(ctx_), kInvalidItem);

  DenseConfig config;
  config.num_items = 30;
  config.num_sources = 6;
  config.density = 0.5;
  config.seed = 99;
  const SyntheticDataset other = GenerateDense(config);
  FusionResult other_fusion = model_.Fuse(other.db, opts_);
  PriorSet other_priors;
  StrategyContext other_ctx = ctx_;
  other_ctx.db = &other.db;
  other_ctx.fusion = &other_fusion;
  other_ctx.priors = &other_priors;
  const auto batch = qbc.SelectBatch(other_ctx, 5);
  for (ItemId i : batch) {
    EXPECT_LT(i, other.db.num_items());
    EXPECT_TRUE(other.db.HasConflict(i));
  }
}

TEST_F(ItemLevelStrategyTest, QbcResetClearsCache) {
  QbcStrategy qbc;
  const auto a = qbc.SelectBatch(ctx_, 5);
  qbc.Reset();
  const auto b = qbc.SelectBatch(ctx_, 5);
  EXPECT_EQ(a, b);  // Deterministic rebuild.
}

TEST_F(ItemLevelStrategyTest, UsPicksMinionsLikeExample42) {
  // Example 4.2: O5 has the highest output entropy, US validates it first.
  UsStrategy us;
  EXPECT_EQ(us.SelectNext(ctx_), *db_.FindItem("Minions"));
}

TEST_F(ItemLevelStrategyTest, UsOrdersByOutputEntropy) {
  UsStrategy us;
  const auto order = us.SelectBatch(ctx_, 5);
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_GE(fusion_.ItemEntropy(order[i - 1]),
              fusion_.ItemEntropy(order[i]) - 1e-12);
  }
}

TEST_F(ItemLevelStrategyTest, UsReactsToFusionChanges) {
  // Unlike QBC, US re-ranks when the fusion output changes: pin O5 and its
  // entropy drops to zero, so US must pick a different item.
  UsStrategy us;
  const ItemId minions = *db_.FindItem("Minions");
  ASSERT_EQ(us.SelectNext(ctx_), minions);
  ASSERT_TRUE(priors_.SetExact(db_, minions, 0).ok());
  FusionResult updated = model_.Fuse(db_, priors_, opts_);
  ctx_.fusion = &updated;
  EXPECT_NE(us.SelectNext(ctx_), minions);
}

TEST_F(ItemLevelStrategyTest, Names) {
  EXPECT_EQ(QbcStrategy().name(), "qbc");
  EXPECT_EQ(UsStrategy().name(), "us");
}

// Property sweep over synthetic datasets: both item-level strategies always
// return unvalidated, conflicting, distinct items.
class ItemLevelPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ItemLevelPropertyTest, SelectionsAreSane) {
  DenseConfig config;
  config.num_items = 60;
  config.num_sources = 10;
  config.density = 0.5;
  config.seed = GetParam();
  const SyntheticDataset data = GenerateDense(config);

  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(data.db, priors, opts);
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;

  QbcStrategy qbc;
  UsStrategy us;
  for (Strategy* s : std::initializer_list<Strategy*>{&qbc, &us}) {
    const auto batch = s->SelectBatch(ctx, 10);
    std::set<ItemId> seen;
    for (ItemId i : batch) {
      EXPECT_TRUE(data.db.HasConflict(i)) << s->name();
      EXPECT_FALSE(priors.Has(i)) << s->name();
      EXPECT_TRUE(seen.insert(i).second) << s->name() << " duplicated " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ItemLevelPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13));

}  // namespace
}  // namespace veritas
