// Tests of the deadline/cancellation contract end to end: a graceful stop
// finishes the round, checkpoints, and returns DeadlineExceeded — and a
// session resumed from that checkpoint reproduces the uninterrupted run's
// trace bit for bit (the acceptance criterion). A hard stop discards the
// in-flight round and resumes from the previous checkpoint instead.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/qbc.h"
#include "core/session.h"
#include "core/session_checkpoint.h"
#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"
#include "util/cancellation.h"

namespace veritas {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

void RemoveChain(const std::string& path) {
  std::remove(path.c_str());
  std::remove((path + ".1").c_str());
  std::remove((path + ".2").c_str());
}

// Timing fields excluded: they are the only fields a resume legitimately
// changes.
void ExpectTracesIdentical(const SessionTrace& a, const SessionTrace& b) {
  EXPECT_EQ(a.initial_distance, b.initial_distance);
  EXPECT_EQ(a.initial_uncertainty, b.initial_uncertainty);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    SCOPED_TRACE("step " + std::to_string(s));
    EXPECT_EQ(a.steps[s].num_validated, b.steps[s].num_validated);
    EXPECT_EQ(a.steps[s].items, b.steps[s].items);
    EXPECT_EQ(a.steps[s].distance, b.steps[s].distance);
    EXPECT_EQ(a.steps[s].uncertainty, b.steps[s].uncertainty);
  }
  ASSERT_EQ(a.priors.size(), b.priors.size());
  for (ItemId i : a.priors.Items()) {
    ASSERT_TRUE(b.priors.Has(i)) << "item " << i;
    EXPECT_EQ(a.priors.Get(i), b.priors.Get(i)) << "item " << i;
  }
  EXPECT_EQ(a.final_fusion.accuracies(), b.final_fusion.accuracies());
  for (ItemId i = 0; i < a.final_fusion.num_items(); ++i) {
    EXPECT_EQ(a.final_fusion.item_probs(i), b.final_fusion.item_probs(i))
        << "item " << i;
  }
}

// Decorator that trips the cancellation token after a fixed number of
// answers — a deterministic stand-in for an operator pressing Ctrl-C
// mid-session.
class CancelAfterOracle : public FeedbackOracle {
 public:
  CancelAfterOracle(FeedbackOracle* inner, CancellationToken* token,
                    std::size_t cancel_after, bool hard)
      : inner_(inner), token_(token), cancel_after_(cancel_after),
        hard_(hard) {}

  std::string name() const override { return inner_->name(); }

  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override {
    auto answer = inner_->Answer(db, item, truth, rng);
    if (++answered_ == cancel_after_) {
      if (hard_) {
        token_->RequestHardStop();
      } else {
        token_->RequestStop();
      }
    }
    return answer;
  }

  std::string SerializeState() const override {
    return inner_->SerializeState();
  }
  Status RestoreState(const std::string& state) override {
    return inner_->RestoreState(state);
  }

 private:
  FeedbackOracle* inner_;
  CancellationToken* token_;
  std::size_t cancel_after_;
  bool hard_;
  std::size_t answered_ = 0;
};

class CancellationSessionTest : public ::testing::Test {
 protected:
  CancellationSessionTest() {
    DenseConfig config;
    config.num_items = 40;
    config.num_sources = 8;
    config.density = 0.5;
    config.seed = 11;
    data_ = GenerateDense(config);
  }
  SyntheticDataset data_;
  AccuFusion model_;
};

TEST_F(CancellationSessionTest, ExpiredDeadlineStopsBeforeTheFirstRound) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.deadline = Deadline::AfterMillis(0);
  Rng rng(7);
  FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                          options, &rng);
  const auto trace = session.Run();
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(trace.status().message().find("deadline expired"),
            std::string::npos)
      << trace.status();
}

TEST_F(CancellationSessionTest,
       ExpiredDeadlineStillWritesAResumableCheckpoint) {
  const std::string path = TempPath("veritas_cancel_deadline_ckpt.txt");
  RemoveChain(path);
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.deadline = Deadline::AfterMillis(0);
  options.checkpoint_path = path;
  Rng rng(7);
  FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                          options, &rng);
  const auto trace = session.Run();
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kDeadlineExceeded);
  // The status points the operator at the resume file, and the file loads.
  EXPECT_NE(trace.status().message().find(path), std::string::npos)
      << trace.status();
  const auto cp = LoadSessionCheckpoint(path, data_.db);
  ASSERT_TRUE(cp.ok()) << cp.status();
  EXPECT_EQ(cp->num_validated, 0u);
  RemoveChain(path);
}

// The acceptance scenario. Run A: uninterrupted. Run B: same seeds, token
// tripped (gracefully) mid-run — the round in flight completes and is
// checkpointed. Run C: fresh objects resumed from B's checkpoint. C must
// equal A bit for bit.
TEST_F(CancellationSessionTest, GracefulCancelResumesBitExactly) {
  SessionOptions base;
  base.max_validations = 16;

  SessionTrace trace_a;
  {
    QbcStrategy strategy;
    PerfectOracle oracle;
    Rng rng(7);
    FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                            base, &rng);
    const auto trace = session.Run();
    ASSERT_TRUE(trace.ok()) << trace.status();
    trace_a = *trace;
  }
  ASSERT_GT(trace_a.steps.size(), 7u);  // The cancel point must be mid-run.

  const std::string path = TempPath("veritas_cancel_graceful_ckpt.txt");
  RemoveChain(path);

  {
    QbcStrategy strategy;
    PerfectOracle inner;
    CancellationToken token;
    CancelAfterOracle oracle(&inner, &token, /*cancel_after=*/7,
                             /*hard=*/false);
    Rng rng(7);
    SessionOptions options = base;
    options.checkpoint_path = path;
    options.cancel = &token;
    FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                            options, &rng);
    const auto trace = session.Run();
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(trace.status().message().find("cancellation"),
              std::string::npos)
        << trace.status();
    // Graceful contract: the in-flight round completed and was persisted.
    const auto cp = LoadSessionCheckpoint(path, data_.db);
    ASSERT_TRUE(cp.ok()) << cp.status();
    EXPECT_EQ(cp->num_validated, 7u);
  }

  SessionTrace trace_c;
  {
    QbcStrategy strategy;
    PerfectOracle oracle;
    Rng rng(7);  // Overwritten by the checkpointed engine state.
    SessionOptions options = base;
    options.resume_path = path;
    FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                            options, &rng);
    const auto trace = session.Run();
    ASSERT_TRUE(trace.ok()) << trace.status();
    trace_c = *trace;
  }

  ExpectTracesIdentical(trace_a, trace_c);
  RemoveChain(path);
}

// A hard stop discards the round in flight: the checkpoint stays at the
// previous round, and resuming from it still lands exactly on the
// uninterrupted run.
TEST_F(CancellationSessionTest, HardCancelDiscardsTheRoundAndStillResumes) {
  SessionOptions base;
  base.max_validations = 16;

  SessionTrace trace_a;
  {
    QbcStrategy strategy;
    PerfectOracle oracle;
    Rng rng(7);
    FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                            base, &rng);
    const auto trace = session.Run();
    ASSERT_TRUE(trace.ok()) << trace.status();
    trace_a = *trace;
  }

  const std::string path = TempPath("veritas_cancel_hard_ckpt.txt");
  RemoveChain(path);

  {
    QbcStrategy strategy;
    PerfectOracle inner;
    CancellationToken token;
    // The token goes hard while round 8 is in flight; that answer is
    // discarded, so the checkpoint must still say 7.
    CancelAfterOracle oracle(&inner, &token, /*cancel_after=*/8,
                             /*hard=*/true);
    Rng rng(7);
    SessionOptions options = base;
    options.checkpoint_path = path;
    options.cancel = &token;
    FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                            options, &rng);
    const auto trace = session.Run();
    ASSERT_FALSE(trace.ok());
    EXPECT_EQ(trace.status().code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(trace.status().message().find("hard cancellation"),
              std::string::npos)
        << trace.status();
    const auto cp = LoadSessionCheckpoint(path, data_.db);
    ASSERT_TRUE(cp.ok()) << cp.status();
    EXPECT_EQ(cp->num_validated, 7u);
  }

  SessionTrace trace_c;
  {
    QbcStrategy strategy;
    PerfectOracle oracle;
    Rng rng(7);
    SessionOptions options = base;
    options.resume_path = path;
    FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                            options, &rng);
    const auto trace = session.Run();
    ASSERT_TRUE(trace.ok()) << trace.status();
    trace_c = *trace;
  }

  ExpectTracesIdentical(trace_a, trace_c);
  RemoveChain(path);
}

TEST_F(CancellationSessionTest, InterruptedRunWithoutCheckpointSaysSo) {
  QbcStrategy strategy;
  PerfectOracle inner;
  CancellationToken token;
  CancelAfterOracle oracle(&inner, &token, /*cancel_after=*/2,
                           /*hard=*/false);
  SessionOptions options;
  options.cancel = &token;
  Rng rng(7);
  FeedbackSession session(data_.db, model_, &strategy, &oracle, data_.truth,
                          options, &rng);
  const auto trace = session.Run();
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(trace.status().message().find("not persisted"), std::string::npos)
      << trace.status();
}

TEST_F(CancellationSessionTest, HardCancelledFusionReportsNonConvergence) {
  CancellationToken token;
  token.RequestHardStop();
  FusionOptions opts;
  opts.cancel = &token;
  const FusionResult result =
      model_.Fuse(data_.db, PriorSet(), opts);
  EXPECT_FALSE(result.converged());
  EXPECT_TRUE(result.AllFinite());  // Bailed, but never half-written.
}

TEST_F(CancellationSessionTest, NullTokenAndInfiniteDeadlineRunToCompletion) {
  Database db = MakeMovieDatabase();
  GroundTruth truth = MakeMovieGroundTruth(db);
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;  // cancel == nullptr, deadline infinite.
  Rng rng(5);
  FeedbackSession session(db, model_, &strategy, &oracle, truth, options,
                          &rng);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok()) << trace.status();
  EXPECT_EQ(trace->priors.size(), 5u);
}

}  // namespace
}  // namespace veritas
