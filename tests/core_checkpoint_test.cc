// Tests of session checkpoint/resume. The headline property (the ISSUE's
// acceptance criterion): a session killed mid-run and resumed from its
// checkpoint produces a SessionTrace identical to an uninterrupted run under
// the same seed — including the fault schedule of a flaky oracle.
#include "core/session_checkpoint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "core/qbc.h"
#include "core/resilient_oracle.h"
#include "core/session.h"
#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// Bit-exact trace comparison, excluding wall-clock timing fields (the only
// fields a resume legitimately changes).
void ExpectTracesIdentical(const SessionTrace& a, const SessionTrace& b) {
  EXPECT_EQ(a.initial_distance, b.initial_distance);
  EXPECT_EQ(a.initial_uncertainty, b.initial_uncertainty);
  EXPECT_EQ(a.skipped_items, b.skipped_items);
  EXPECT_EQ(a.total_oracle_retries, b.total_oracle_retries);
  EXPECT_EQ(a.fusion_nonconverged_rounds, b.fusion_nonconverged_rounds);
  EXPECT_EQ(a.fusion_fallback_rounds, b.fusion_fallback_rounds);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    SCOPED_TRACE("step " + std::to_string(s));
    EXPECT_EQ(a.steps[s].num_validated, b.steps[s].num_validated);
    EXPECT_EQ(a.steps[s].items, b.steps[s].items);
    EXPECT_EQ(a.steps[s].skipped, b.steps[s].skipped);
    EXPECT_EQ(a.steps[s].oracle_retries, b.steps[s].oracle_retries);
    EXPECT_EQ(a.steps[s].distance, b.steps[s].distance);
    EXPECT_EQ(a.steps[s].uncertainty, b.steps[s].uncertainty);
  }
  ASSERT_EQ(a.priors.size(), b.priors.size());
  for (ItemId i : a.priors.Items()) {
    ASSERT_TRUE(b.priors.Has(i)) << "item " << i;
    EXPECT_EQ(a.priors.Get(i), b.priors.Get(i)) << "item " << i;
  }
  ASSERT_EQ(a.final_fusion.num_items(), b.final_fusion.num_items());
  for (ItemId i = 0; i < a.final_fusion.num_items(); ++i) {
    EXPECT_EQ(a.final_fusion.item_probs(i), b.final_fusion.item_probs(i))
        << "item " << i;
  }
  EXPECT_EQ(a.final_fusion.accuracies(), b.final_fusion.accuracies());
}

class CheckpointTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  AccuFusion model_;
};

TEST_F(CheckpointTest, SaveLoadRoundTripsEveryField) {
  SessionCheckpoint cp;
  cp.num_validated = 3;
  cp.initial_distance = 0.123456789123456789;
  cp.initial_uncertainty = 2.5;
  cp.total_oracle_retries = 7;
  cp.fusion_nonconverged_rounds = 2;
  cp.fusion_fallback_rounds = 1;
  SessionStep step;
  step.num_validated = 3;
  step.items = {0, 2};
  step.skipped = {4};
  step.oracle_retries = 5;
  step.distance = 0.25;
  step.uncertainty = 1.5;
  cp.steps.push_back(step);
  cp.skipped_items = {4};
  ASSERT_TRUE(cp.priors.SetExact(db_, 0, truth_.TrueClaim(0)).ok());
  cp.fusion = FusionResult(db_, 0.8);
  cp.fusion.set_iterations(9);
  cp.fusion.set_converged(true);
  (*cp.fusion.mutable_item_probs(1))[0] = 0.625;
  cp.rng_state = "12345 67890";
  cp.oracle_state = "0 |";

  const std::string path = TempPath("veritas_ckpt_roundtrip.txt");
  ASSERT_TRUE(SaveSessionCheckpoint(cp, path).ok());
  const auto loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->num_validated, cp.num_validated);
  EXPECT_EQ(loaded->initial_distance, cp.initial_distance);
  EXPECT_EQ(loaded->initial_uncertainty, cp.initial_uncertainty);
  EXPECT_EQ(loaded->total_oracle_retries, cp.total_oracle_retries);
  EXPECT_EQ(loaded->fusion_nonconverged_rounds, cp.fusion_nonconverged_rounds);
  EXPECT_EQ(loaded->fusion_fallback_rounds, cp.fusion_fallback_rounds);
  ASSERT_EQ(loaded->steps.size(), 1u);
  EXPECT_EQ(loaded->steps[0].items, step.items);
  EXPECT_EQ(loaded->steps[0].skipped, step.skipped);
  EXPECT_EQ(loaded->steps[0].oracle_retries, step.oracle_retries);
  EXPECT_EQ(loaded->steps[0].distance, step.distance);
  EXPECT_EQ(loaded->skipped_items, cp.skipped_items);
  ASSERT_TRUE(loaded->priors.Has(0));
  EXPECT_EQ(loaded->priors.Get(0), cp.priors.Get(0));
  ASSERT_EQ(loaded->fusion.num_items(), cp.fusion.num_items());
  EXPECT_EQ(loaded->fusion.item_probs(1), cp.fusion.item_probs(1));
  EXPECT_EQ(loaded->fusion.accuracies(), cp.fusion.accuracies());
  EXPECT_EQ(loaded->fusion.iterations(), 9u);
  EXPECT_TRUE(loaded->fusion.converged());
  EXPECT_EQ(loaded->rng_state, cp.rng_state);
  EXPECT_EQ(loaded->oracle_state, cp.oracle_state);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, MissingFileIsNotFound) {
  const auto loaded =
      LoadSessionCheckpoint(TempPath("veritas_ckpt_nope.txt"), db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CheckpointTest, CorruptFileIsInvalidArgument) {
  const std::string path = TempPath("veritas_ckpt_corrupt.txt");
  {
    std::ofstream out(path);
    out << "not a checkpoint at all\n";
  }
  const auto loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, FutureVersionIsRejected) {
  const std::string path = TempPath("veritas_ckpt_future.txt");
  {
    std::ofstream out(path);
    out << "veritas-checkpoint 999\nend\n";
  }
  const auto loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, SessionWritesCheckpointDuringRun) {
  const std::string path = TempPath("veritas_ckpt_written.txt");
  std::remove(path.c_str());
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.checkpoint_path = path;
  Rng rng(5);
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng);
  ASSERT_TRUE(session.Run().ok());
  const auto cp = LoadSessionCheckpoint(path, db_);
  ASSERT_TRUE(cp.ok()) << cp.status();
  EXPECT_EQ(cp->num_validated, 5u);
  EXPECT_EQ(cp->priors.size(), 5u);
  std::remove(path.c_str());
}

// The acceptance scenario: run A uninterrupted; run B with the same seeds
// but a validation cap, checkpointing (the simulated kill); run C resumes
// from B's checkpoint with fresh strategy/oracle/rng objects. C must equal A
// bit for bit.
TEST_F(CheckpointTest, ResumeMatchesUninterruptedRun) {
  DenseConfig config;
  config.num_items = 40;
  config.num_sources = 8;
  config.density = 0.5;
  config.seed = 11;
  const SyntheticDataset data = GenerateDense(config);
  FaultPlan plan;
  plan.probability = 0.3;

  SessionOptions base;
  base.max_validations = 20;

  // Run A: uninterrupted.
  SessionTrace trace_a;
  {
    QbcStrategy strategy;
    PerfectOracle inner;
    FlakyOracle oracle(&inner, plan, /*seed=*/19);
    Rng rng(7);
    FeedbackSession session(data.db, model_, &strategy, &oracle, data.truth,
                            base, &rng);
    const auto trace = session.Run();
    ASSERT_TRUE(trace.ok()) << trace.status();
    trace_a = *trace;
  }
  ASSERT_GT(trace_a.steps.size(), 8u);  // The kill point must be mid-run.

  const std::string path = TempPath("veritas_ckpt_resume.txt");
  std::remove(path.c_str());

  // Run B: same seeds, killed after 8 validations, checkpointing as it goes.
  {
    QbcStrategy strategy;
    PerfectOracle inner;
    FlakyOracle oracle(&inner, plan, /*seed=*/19);
    Rng rng(7);
    SessionOptions options = base;
    options.max_validations = 8;
    options.checkpoint_path = path;
    FeedbackSession session(data.db, model_, &strategy, &oracle, data.truth,
                            options, &rng);
    ASSERT_TRUE(session.Run().ok());
  }

  // Run C: fresh objects, resumed from B's checkpoint.
  SessionTrace trace_c;
  {
    QbcStrategy strategy;
    PerfectOracle inner;
    FlakyOracle oracle(&inner, plan, /*seed=*/19);
    Rng rng(7);  // Overwritten by the checkpointed engine state.
    SessionOptions options = base;
    options.resume_path = path;
    FeedbackSession session(data.db, model_, &strategy, &oracle, data.truth,
                            options, &rng);
    const auto trace = session.Run();
    ASSERT_TRUE(trace.ok()) << trace.status();
    trace_c = *trace;
  }

  ExpectTracesIdentical(trace_a, trace_c);
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, ResumeFromMissingFileIsAFreshStart) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.resume_path = TempPath("veritas_ckpt_never_written.txt");
  Rng rng(5);
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->priors.size(), 5u);
}

TEST_F(CheckpointTest, ResumeAfterCompletionReplaysTheFinishedTrace) {
  const std::string path = TempPath("veritas_ckpt_done.txt");
  std::remove(path.c_str());
  SessionTrace first;
  {
    QbcStrategy strategy;
    PerfectOracle oracle;
    SessionOptions options;
    options.checkpoint_path = path;
    Rng rng(5);
    FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                            &rng);
    const auto trace = session.Run();
    ASSERT_TRUE(trace.ok());
    first = *trace;
  }
  {
    QbcStrategy strategy;
    PerfectOracle oracle;
    SessionOptions options;
    options.resume_path = path;
    Rng rng(5);
    FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                            &rng);
    const auto trace = session.Run();
    ASSERT_TRUE(trace.ok());
    ExpectTracesIdentical(first, *trace);
  }
  std::remove(path.c_str());
}

TEST_F(CheckpointTest, CorruptResumeFileAbortsTheRun) {
  const std::string path = TempPath("veritas_ckpt_bad_resume.txt");
  {
    std::ofstream out(path);
    out << "garbage\n";
  }
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.resume_path = path;
  Rng rng(5);
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng);
  const auto trace = session.Run();
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kInvalidArgument);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace veritas
