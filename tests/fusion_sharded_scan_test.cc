// Tests of the sharded two-stage candidate scan (fusion/sharded_scan.h,
// DESIGN.md §5h): the coordinator merge, the shards=1 bypass, sharded vs.
// unsharded selection equality across fusion models, the empty-shard edge
// case, and thread-count invariance of the sharded scan (this file is part
// of the concurrency suite, so the latter also runs under TSan).
#include "fusion/sharded_scan.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/approx_meu.h"
#include "core/meu.h"
#include "core/strategy.h"
#include "data/synthetic.h"
#include "fusion/accu.h"
#include "fusion/fusion_factory.h"
#include "fusion/priors.h"
#include "model/compiled_database.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

// ---------- Coordinator merge ----------

// A hand-built database whose partition is easy to reason about: the merge
// tests only need the shard map, not realistic fusion state.
struct MergeFixture {
  MergeFixture() {
    DatabaseBuilder builder;
    // 8 contested items, 2 claims each; per-item vote counts descend with
    // the item id so LPT assignment is exercised.
    for (int i = 0; i < 8; ++i) {
      const std::string item = "i" + std::to_string(i);
      for (int v = 0; v < 9 - i; ++v) {
        EXPECT_TRUE(
            builder.AddObservation("s" + std::to_string(v), item, "a").ok());
      }
      EXPECT_TRUE(builder.AddObservation("sx", item, "b").ok());
    }
    db = builder.Build();
    compiled = std::make_unique<CompiledDatabase>(db);
  }
  Database db;
  std::unique_ptr<CompiledDatabase> compiled;
};

TEST(MergeTopCandidatesTest, KeepsPerShardTopQuotaInAscendingIdOrder) {
  const MergeFixture fx;
  const ShardPartition partition(*fx.compiled, 2);
  std::vector<ItemId> candidates;
  std::vector<double> estimates;
  for (ItemId i = 0; i < fx.db.num_items(); ++i) {
    candidates.push_back(i);
    estimates.push_back(static_cast<double>(i));  // Higher id = better.
  }
  const std::vector<ItemId> pool =
      MergeTopCandidatesPerShard(candidates, estimates, partition, 2);
  // Two shards, quota 2 each: the two highest-estimate items of each shard.
  ASSERT_EQ(pool.size(), 4u);
  EXPECT_TRUE(std::is_sorted(pool.begin(), pool.end()));
  std::vector<std::vector<ItemId>> kept(partition.num_shards());
  for (const ItemId i : pool) kept[partition.shard_of(i)].push_back(i);
  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    ASSERT_EQ(kept[s].size(), 2u) << "shard " << s;
    // Estimates ascend with the id here, so each shard keeps its two
    // highest-id items.
    const std::vector<ItemId>& owned = partition.items(s);
    EXPECT_EQ(kept[s][0], owned[owned.size() - 2]);
    EXPECT_EQ(kept[s][1], owned[owned.size() - 1]);
  }
}

TEST(MergeTopCandidatesTest, TiesBreakTowardLowerItemId) {
  const MergeFixture fx;
  const ShardPartition partition(*fx.compiled, 1);
  const std::vector<ItemId> candidates = {0, 1, 2, 3};
  const std::vector<double> estimates = {1.0, 1.0, 1.0, 1.0};
  const std::vector<ItemId> pool =
      MergeTopCandidatesPerShard(candidates, estimates, partition, 2);
  EXPECT_EQ(pool, (std::vector<ItemId>{0, 1}));
}

TEST(MergeTopCandidatesTest, QuotaLargerThanShardKeepsEverything) {
  const MergeFixture fx;
  const ShardPartition partition(*fx.compiled, 4);
  std::vector<ItemId> candidates;
  std::vector<double> estimates;
  for (ItemId i = 0; i < fx.db.num_items(); ++i) {
    candidates.push_back(i);
    estimates.push_back(0.5);
  }
  const std::vector<ItemId> pool =
      MergeTopCandidatesPerShard(candidates, estimates, partition, 100);
  EXPECT_EQ(pool, candidates);
}

TEST(MergeTopCandidatesTest, CandidateSubsetOnly) {
  // Items missing from `candidates` (validated, singleton, …) never surface
  // in the pool, whatever their shard.
  const MergeFixture fx;
  const ShardPartition partition(*fx.compiled, 2);
  const std::vector<ItemId> candidates = {1, 4, 6};
  const std::vector<double> estimates = {3.0, 2.0, 1.0};
  const std::vector<ItemId> pool =
      MergeTopCandidatesPerShard(candidates, estimates, partition, 8);
  EXPECT_EQ(pool, candidates);
}

// ---------- End-to-end selection equality ----------

struct ShardCase {
  std::string model;
};

class ShardedSelectionTest : public ::testing::TestWithParam<ShardCase> {};

// The sharded scan must select exactly what the classic scan selects —
// the bench enforces this at the million-item scale; here it runs on every
// delta-capable model at test size.
TEST_P(ShardedSelectionTest, ShardedMatchesUnsharded) {
  LongTailConfig config;
  config.num_items = 400;
  config.num_sources = 150;
  config.avg_votes_per_item = 8.0;
  config.seed = 11;
  const SyntheticDataset data = GenerateLongTail(config);
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  FusionOptions opts;
  const FusionResult base = (*model)->Fuse(data.db, PriorSet(), opts);
  const auto engine = DeltaFusionEngine::Create(data.db, **model, opts);
  ASSERT_NE(engine, nullptr);

  const PriorSet priors;
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &base;
  ctx.priors = &priors;
  ctx.model = model->get();
  ctx.ground_truth = &data.truth;
  ctx.delta = engine.get();

  FusionOptions unsharded = opts;
  unsharded.shards = 1;
  ctx.fusion_opts = &unsharded;
  MeuStrategy flat_meu(/*num_threads=*/1);
  const std::vector<ItemId> flat = flat_meu.SelectBatch(ctx, 3);
  ASSERT_FALSE(flat.empty());

  for (const std::size_t shards : {2u, 4u, 7u}) {
    FusionOptions sharded = opts;
    sharded.shards = shards;
    ctx.fusion_opts = &sharded;
    MeuStrategy meu(/*num_threads=*/1);
    EXPECT_EQ(meu.SelectBatch(ctx, 3), flat) << "shards=" << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, ShardedSelectionTest,
                         ::testing::Values(ShardCase{"accu"},
                                           ShardCase{"voting"},
                                           ShardCase{"truthfinder"}),
                         [](const auto& info) { return info.param.model; });

TEST(ShardedSelectionTest, MoreShardsThanItems) {
  // Every populated shard holds one item; the rest are empty and must be
  // skipped cleanly by both the confined scan and the merge.
  DatabaseBuilder builder;
  for (int i = 0; i < 3; ++i) {
    const std::string item = "i" + std::to_string(i);
    ASSERT_TRUE(builder.AddObservation("s0", item, "a").ok());
    ASSERT_TRUE(builder.AddObservation("s1", item, "a").ok());
    ASSERT_TRUE(builder.AddObservation("s2", item, "b").ok());
  }
  const Database db = builder.Build();
  AccuFusion model;
  FusionOptions opts;
  const FusionResult base = model.Fuse(db, PriorSet(), opts);
  const auto engine = DeltaFusionEngine::Create(db, model, opts);
  ASSERT_NE(engine, nullptr);

  const PriorSet priors;
  StrategyContext ctx;
  ctx.db = &db;
  ctx.fusion = &base;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.delta = engine.get();

  FusionOptions unsharded = opts;
  unsharded.shards = 1;
  ctx.fusion_opts = &unsharded;
  MeuStrategy flat_meu;
  const std::vector<ItemId> flat = flat_meu.SelectBatch(ctx, 2);

  FusionOptions sharded = opts;
  sharded.shards = 16;
  ctx.fusion_opts = &sharded;
  MeuStrategy meu;
  EXPECT_EQ(meu.SelectBatch(ctx, 2), flat);
}

// ---------- Thread-count invariance (TSan target) ----------

TEST(ShardedSelectionTest, ThreadCountDoesNotChangeShardedSelections) {
  LongTailConfig config;
  config.num_items = 300;
  config.num_sources = 120;
  config.avg_votes_per_item = 8.0;
  config.seed = 23;
  const SyntheticDataset data = GenerateLongTail(config);
  AccuFusion model;
  FusionOptions opts;
  opts.shards = 4;
  const FusionResult base = model.Fuse(data.db, PriorSet(), opts);
  const auto engine = DeltaFusionEngine::Create(data.db, model, opts);
  ASSERT_NE(engine, nullptr);

  const PriorSet priors;
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &base;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.ground_truth = &data.truth;
  ctx.delta = engine.get();
  ctx.fusion_opts = &opts;

  MeuStrategy serial(/*num_threads=*/1);
  const std::vector<ItemId> expected = serial.SelectBatch(ctx, 3);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    MeuStrategy meu(threads);
    EXPECT_EQ(meu.SelectBatch(ctx, 3), expected) << "threads=" << threads;
    // A second round reuses the seed ranking and the cached shard plan.
    EXPECT_EQ(meu.SelectBatch(ctx, 3), expected) << "threads=" << threads;
  }
}

// ---------- Approx-MEU pooled confined stage 1 ----------

TEST(ShardedSelectionTest, ConfinedScoreMatchesPerShardImpactFilter) {
  // The confinement predicate (one pooled pass over all candidates) must
  // reproduce bit-for-bit the per-shard impact_filter scores it replaced.
  LongTailConfig config;
  config.num_items = 200;
  config.num_sources = 80;
  config.avg_votes_per_item = 6.0;
  config.seed = 7;
  const SyntheticDataset data = GenerateLongTail(config);
  AccuFusion model;
  FusionOptions opts;
  const FusionResult base = model.Fuse(data.db, PriorSet(), opts);
  const auto engine = DeltaFusionEngine::Create(data.db, model, opts);
  ASSERT_NE(engine, nullptr);
  const ItemGraph graph(data.db);

  const PriorSet priors;
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &base;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.graph = &graph;
  ctx.delta = engine.get();

  const std::vector<ItemId> candidates = CandidateItems(ctx);
  ASSERT_FALSE(candidates.empty());
  const ShardPartition partition(engine->compiled(), 3);
  const std::vector<double> confined = ApproxMeuStrategy::ScoreCandidates(
      ctx, candidates, /*impact_filter=*/nullptr, /*pool=*/nullptr,
      &partition);
  ASSERT_EQ(confined.size(), candidates.size());

  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    std::vector<bool> in_shard(data.db.num_items(), false);
    for (ItemId i = 0; i < data.db.num_items(); ++i) {
      in_shard[i] = partition.shard_of(i) == s;
    }
    std::vector<ItemId> bucket;
    std::vector<double> expected;
    for (std::size_t idx = 0; idx < candidates.size(); ++idx) {
      if (partition.shard_of(candidates[idx]) != s) continue;
      bucket.push_back(candidates[idx]);
      expected.push_back(confined[idx]);
    }
    const std::vector<double> filtered = ApproxMeuStrategy::ScoreCandidates(
        ctx, bucket, &in_shard, /*pool=*/nullptr);
    EXPECT_EQ(filtered, expected) << "shard " << s;
  }
}

TEST(ShardedSelectionTest, ApproxMeuShardThreadInvariance) {
  // Selections are bit-identical across thread counts at every shard count:
  // stage-1 gains land in disjoint slots and confinement is a pure function
  // of the partition, so pooling candidates of different shards together
  // cannot perturb the merge or the stage-2 re-score.
  LongTailConfig config;
  config.num_items = 300;
  config.num_sources = 120;
  config.avg_votes_per_item = 8.0;
  config.seed = 31;
  const SyntheticDataset data = GenerateLongTail(config);
  AccuFusion model;
  FusionOptions opts;
  const FusionResult base = model.Fuse(data.db, PriorSet(), opts);
  const auto engine = DeltaFusionEngine::Create(data.db, model, opts);
  ASSERT_NE(engine, nullptr);
  const ItemGraph graph(data.db);

  const PriorSet priors;
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &base;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.graph = &graph;
  ctx.ground_truth = &data.truth;
  ctx.delta = engine.get();

  for (const std::size_t shards : {2u, 4u, 7u}) {
    FusionOptions sharded = opts;
    sharded.shards = shards;
    ctx.fusion_opts = &sharded;
    ApproxMeuStrategy serial(/*num_threads=*/1);
    const std::vector<ItemId> expected = serial.SelectBatch(ctx, 3);
    ASSERT_FALSE(expected.empty()) << "shards=" << shards;
    for (const std::size_t threads : {2u, 4u, 8u}) {
      ApproxMeuStrategy strategy(threads);
      EXPECT_EQ(strategy.SelectBatch(ctx, 3), expected)
          << "shards=" << shards << " threads=" << threads;
      // A second round reuses the cached shard plan.
      EXPECT_EQ(strategy.SelectBatch(ctx, 3), expected)
          << "shards=" << shards << " threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace veritas
