#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace veritas {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctions) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  const Status s = Status::NotFound("item 'x'");
  EXPECT_EQ(s.ToString(), "NotFound: item 'x'");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
}

TEST(StatusTest, StreamOperator) {
  std::ostringstream os;
  os << Status::Internal("boom");
  EXPECT_EQ(os.str(), "Internal: boom");
}

Status FailWhenNegative(int x) {
  VERITAS_RETURN_IF_ERROR(x < 0 ? Status::InvalidArgument("negative")
                                : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailWhenNegative(1).ok());
  EXPECT_EQ(FailWhenNegative(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, ValueOr) {
  Result<int> ok = 3;
  Result<int> bad = Status::Internal("x");
  EXPECT_EQ(ok.value_or(-1), 3);
  EXPECT_EQ(bad.value_or(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "hello");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  VERITAS_ASSIGN_OR_RETURN(*out, ParsePositive(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(5, &out).ok());
  EXPECT_EQ(out, 5);
  EXPECT_EQ(UseAssignOrReturn(-5, &out).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace veritas
