#include "model/item_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

std::vector<std::string> NeighborNames(const Database& db,
                                       const ItemGraph& graph,
                                       const std::string& item) {
  std::vector<ItemId> neighbors;
  graph.CollectNeighbors(*db.FindItem(item), &neighbors);
  std::vector<std::string> names;
  for (ItemId n : neighbors) names.push_back(db.item(n).name);
  std::sort(names.begin(), names.end());
  return names;
}

// Figure 2 of the paper: the item graph of Table 1.
class MovieGraphTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
  ItemGraph graph_{db_};
};

TEST_F(MovieGraphTest, ZootopiaNeighbors) {
  // O1 (Zootopia, voted by S2, S3, S4) touches every other item:
  // S2 -> O3, O5; S3 -> O2, O3, O6; S4 -> O4.
  const auto names = NeighborNames(db_, graph_, "Zootopia");
  EXPECT_EQ(names, (std::vector<std::string>{"Finding Dory", "Inside Out",
                                             "Kung Fu Panda", "Minions",
                                             "Rio"}));
}

TEST_F(MovieGraphTest, FindingDoryNeighbors) {
  // O4 is voted only by S4, which also votes on O1 — a single neighbour
  // (the §1.1 motivation for why validating Finding Dory is low-impact).
  const auto names = NeighborNames(db_, graph_, "Finding Dory");
  EXPECT_EQ(names, (std::vector<std::string>{"Zootopia"}));
}

TEST_F(MovieGraphTest, KungFuPandaNeighbors) {
  // O2 via S1 -> O5, O6 and via S3 -> O1, O3, O6.
  const auto names = NeighborNames(db_, graph_, "Kung Fu Panda");
  EXPECT_EQ(names, (std::vector<std::string>{"Inside Out", "Minions", "Rio",
                                             "Zootopia"}));
}

TEST_F(MovieGraphTest, NeighborsExcludeSelf) {
  std::vector<ItemId> neighbors;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    graph_.CollectNeighbors(i, &neighbors);
    EXPECT_EQ(std::count(neighbors.begin(), neighbors.end(), i), 0) << i;
  }
}

TEST_F(MovieGraphTest, NeighborsAreDistinct) {
  std::vector<ItemId> neighbors;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    graph_.CollectNeighbors(i, &neighbors);
    std::vector<ItemId> sorted = neighbors;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  }
}

TEST_F(MovieGraphTest, AdjacencyIsSymmetric) {
  std::vector<ItemId> neighbors;
  std::vector<ItemId> reverse;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    graph_.CollectNeighbors(i, &neighbors);
    for (ItemId j : neighbors) {
      graph_.CollectNeighbors(j, &reverse);
      EXPECT_NE(std::find(reverse.begin(), reverse.end(), i), reverse.end())
          << i << " -> " << j;
    }
  }
}

TEST_F(MovieGraphTest, Degree) {
  EXPECT_EQ(graph_.Degree(*db_.FindItem("Zootopia")), 5u);
  EXPECT_EQ(graph_.Degree(*db_.FindItem("Finding Dory")), 1u);
}

TEST_F(MovieGraphTest, AverageDegree) {
  // Degrees: O1=5, O2=4, O3=4 (S2:O1,O5 + S3:O1,O2,O6), O4=1,
  // O5=4 (S1:O2,O6 + S2:O1,O3), O6=4.
  EXPECT_NEAR(graph_.AverageDegree(), (5 + 4 + 4 + 1 + 4 + 4) / 6.0, 1e-12);
}

TEST_F(MovieGraphTest, ConnectedViaMultiHopPath) {
  // O2 and O4 are connected via <O2, S3, O1, S4, O4> (§4.2.3).
  EXPECT_TRUE(graph_.Connected(*db_.FindItem("Kung Fu Panda"),
                               *db_.FindItem("Finding Dory")));
}

TEST_F(MovieGraphTest, SelfIsConnected) {
  EXPECT_TRUE(graph_.Connected(0, 0));
}

TEST_F(MovieGraphTest, SingleComponent) {
  EXPECT_EQ(graph_.NumComponents(), 1u);
}

TEST(ItemGraphTest, DisconnectedComponents) {
  DatabaseBuilder builder;
  // Two islands: {a1, a2} via sA, {b1} via sB.
  ASSERT_TRUE(builder.AddObservation("sA", "a1", "x").ok());
  ASSERT_TRUE(builder.AddObservation("sA", "a2", "y").ok());
  ASSERT_TRUE(builder.AddObservation("sB", "b1", "z").ok());
  const Database db = builder.Build();
  const ItemGraph graph(db);
  EXPECT_EQ(graph.NumComponents(), 2u);
  EXPECT_FALSE(graph.Connected(*db.FindItem("a1"), *db.FindItem("b1")));
  EXPECT_TRUE(graph.Connected(*db.FindItem("a1"), *db.FindItem("a2")));
  EXPECT_EQ(graph.Degree(*db.FindItem("b1")), 0u);
}

TEST(ItemGraphTest, EmptyDatabase) {
  DatabaseBuilder builder;
  const Database db = builder.Build();
  const ItemGraph graph(db);
  EXPECT_EQ(graph.NumComponents(), 0u);
  EXPECT_DOUBLE_EQ(graph.AverageDegree(), 0.0);
}

TEST(ItemGraphTest, RepeatedQueriesAreConsistent) {
  const Database db = MakeMovieDatabase();
  const ItemGraph graph(db);
  std::vector<ItemId> first, second;
  graph.CollectNeighbors(0, &first);
  for (int i = 0; i < 100; ++i) {
    graph.CollectNeighbors(0, &second);
    EXPECT_EQ(first, second);
  }
}

}  // namespace
}  // namespace veritas
