#include "util/args.h"

#include <gtest/gtest.h>

namespace veritas {
namespace {

Result<ArgMap> ParseVec(std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return ArgMap::Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgMapTest, EmptyCommandLine) {
  const auto args = ParseVec({});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->command().empty());
}

TEST(ArgMapTest, CommandOnly) {
  const auto args = ParseVec({"stats"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->command(), "stats");
}

TEST(ArgMapTest, KeyValueOptions) {
  const auto args = ParseVec({"fuse", "--data", "obs.csv", "--model", "accu"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->command(), "fuse");
  EXPECT_EQ(args->GetString("data"), "obs.csv");
  EXPECT_EQ(args->GetString("model"), "accu");
  EXPECT_EQ(args->GetString("missing", "fallback"), "fallback");
}

TEST(ArgMapTest, BooleanFlags) {
  const auto args = ParseVec({"fuse", "--verbose", "--data", "x.csv"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->GetBool("verbose"));
  EXPECT_FALSE(args->GetBool("quiet"));
}

TEST(ArgMapTest, TrailingFlag) {
  const auto args = ParseVec({"fuse", "--data", "x.csv", "--dry-run"});
  ASSERT_TRUE(args.ok());
  EXPECT_TRUE(args->GetBool("dry-run"));
}

TEST(ArgMapTest, IntOption) {
  const auto args = ParseVec({"session", "--budget", "25"});
  ASSERT_TRUE(args.ok());
  const auto budget = args->GetInt("budget", 10);
  ASSERT_TRUE(budget.ok());
  EXPECT_EQ(*budget, 25);
  const auto fallback = args->GetInt("other", 7);
  ASSERT_TRUE(fallback.ok());
  EXPECT_EQ(*fallback, 7);
}

TEST(ArgMapTest, BadIntIsError) {
  const auto args = ParseVec({"session", "--budget", "many"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetInt("budget", 10).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ArgMapTest, DoubleOption) {
  const auto args = ParseVec({"generate", "--density", "0.36"});
  ASSERT_TRUE(args.ok());
  const auto density = args->GetDouble("density", 0.5);
  ASSERT_TRUE(density.ok());
  EXPECT_DOUBLE_EQ(*density, 0.36);
}

TEST(ArgMapTest, BadDoubleIsError) {
  const auto args = ParseVec({"generate", "--density", "dense"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetDouble("density", 0.5).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ArgMapTest, SecondPositionalRejected) {
  const auto args = ParseVec({"fuse", "extra"});
  EXPECT_EQ(args.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArgMapTest, EmptyOptionNameRejected) {
  const auto args = ParseVec({"fuse", "--"});
  EXPECT_EQ(args.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArgMapTest, KeysEnumeration) {
  const auto args = ParseVec({"x", "--b", "1", "--a", "2"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->Keys(), (std::vector<std::string>{"a", "b"}));
}

TEST(ArgMapTest, LastOccurrenceWins) {
  const auto args = ParseVec({"x", "--k", "1", "--k", "2"});
  ASSERT_TRUE(args.ok());
  EXPECT_EQ(args->GetString("k"), "2");
}

}  // namespace
}  // namespace veritas
