// Corruption-resilience harness for the durable on-disk formats. A
// fixed-seed byte-mutation fuzzer mutilates a valid checkpoint (and a valid
// CSV) hundreds of ways; loading the result must never crash — every load
// either succeeds with structurally valid state or returns a non-OK Status.
// Targeted cases pin the specific failure modes the v2 trailer exists to
// catch (truncation, bit flips, a missing end tag) and the recovery chain's
// promise: a corrupted head checkpoint falls back to the previous
// generation, and a session resumed from it is bit-exact.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "core/qbc.h"
#include "core/session.h"
#include "core/session_checkpoint.h"
#include "data/example_data.h"
#include "fusion/accu.h"
#include "obs/metrics.h"
#include "util/csv.h"
#include "util/rng.h"

namespace veritas {
namespace {

namespace fs = std::filesystem;

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void Spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  ASSERT_TRUE(out.is_open()) << path;
  out << contents;
}

// One deterministic mutilation of `clean`: a byte flip, a truncation, an
// insertion, or a deletion, chosen by the fixed-seed Rng.
std::string Mutate(const std::string& clean, Rng* rng) {
  std::string bytes = clean;
  switch (rng->UniformIndex(4)) {
    case 0: {  // Flip 1-4 bytes (xor is nonzero, so the byte really changes).
      const std::size_t flips = 1 + rng->UniformIndex(4);
      for (std::size_t f = 0; f < flips && !bytes.empty(); ++f) {
        const std::size_t at = rng->UniformIndex(bytes.size());
        bytes[at] = static_cast<char>(
            bytes[at] ^ static_cast<char>(1 + rng->UniformIndex(255)));
      }
      break;
    }
    case 1:  // Truncate to a random prefix (possibly empty).
      bytes.resize(rng->UniformIndex(bytes.size() + 1));
      break;
    case 2: {  // Insert a random byte.
      const std::size_t at = rng->UniformIndex(bytes.size() + 1);
      bytes.insert(bytes.begin() + static_cast<std::ptrdiff_t>(at),
                   static_cast<char>(rng->UniformIndex(256)));
      break;
    }
    default: {  // Delete a random byte.
      if (bytes.empty()) break;
      const std::size_t at = rng->UniformIndex(bytes.size());
      bytes.erase(bytes.begin() + static_cast<std::ptrdiff_t>(at));
      break;
    }
  }
  return bytes;
}

class DurabilityFuzzTest : public ::testing::Test {
 protected:
  // A dedicated directory per fixture keeps the mutated file free of
  // recovery-chain siblings (`*.1`, `*.2`), so every load exercises exactly
  // the corrupted head.
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/veritas_fuzz";
    fs::remove_all(dir_);
    fs::create_directory(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string MakeValidCheckpointFile() {
    SessionCheckpoint cp;
    cp.num_validated = 2;
    cp.initial_distance = 0.375;
    cp.initial_uncertainty = 1.5;
    SessionStep step;
    step.num_validated = 2;
    step.items = {0, 1};
    step.distance = 0.25;
    step.uncertainty = 1.25;
    cp.steps.push_back(step);
    EXPECT_TRUE(cp.priors.SetExact(db_, 0, truth_.TrueClaim(0)).ok());
    cp.fusion = FusionResult(db_, 0.8);
    cp.fusion.set_iterations(4);
    cp.fusion.set_converged(true);
    cp.rng_state = "123 456";
    const std::string path = dir_ + "/clean_ckpt.txt";
    EXPECT_TRUE(
        SaveSessionCheckpoint(cp, path, /*keep_generations=*/0).ok());
    return path;
  }

  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  std::string dir_;
};

// The headline harness: >= 500 deterministic mutations of a valid v2
// checkpoint. Loading must never crash; success implies structurally valid
// state (the loader validated every id and size against the database).
TEST_F(DurabilityFuzzTest, MutatedCheckpointNeverCrashesTheLoader) {
  const std::string clean = Slurp(MakeValidCheckpointFile());
  const std::string target = dir_ + "/mutated_ckpt.txt";
  Rng rng(0xC0FFEE);
  std::size_t loads_ok = 0;
  for (int trial = 0; trial < 500; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Spit(target, Mutate(clean, &rng));
    const auto loaded = LoadSessionCheckpoint(target, db_);
    if (!loaded.ok()) continue;
    ++loads_ok;
    // A load that verified must hand back state consistent with the db.
    EXPECT_EQ(loaded->fusion.num_items(), db_.num_items());
    for (ItemId item : loaded->priors.Items()) {
      EXPECT_LT(item, db_.num_items());
    }
  }
  // The v2 trailer rejects nearly everything; the occasional survivor is a
  // mutation past the trailer-covered payload. Either way: no crash above.
  EXPECT_LT(loads_ok, 500u);
}

// Same harness over the CSV reader, which backs every dataset load.
TEST_F(DurabilityFuzzTest, MutatedCsvNeverCrashesTheReader) {
  const std::string target = dir_ + "/mutated.csv";
  const std::string clean =
      "source,item,value\n"
      "s1,movie-a,\"120, director's cut\"\n"
      "s2,movie-a,118\n"
      "s2,movie-b,95\n";
  Rng rng(0xFEEDFACE);
  for (int trial = 0; trial < 500; ++trial) {
    SCOPED_TRACE("trial " + std::to_string(trial));
    Spit(target, Mutate(clean, &rng));
    const auto rows = ReadCsvFile(target);
    if (rows.ok()) {
      for (const CsvRow& row : *rows) EXPECT_GE(row.size(), 1u);
    }
  }
}

TEST_F(DurabilityFuzzTest, TruncatedCheckpointIsRejected) {
  const std::string path = MakeValidCheckpointFile();
  const std::string clean = Slurp(path);
  // Every proper prefix (sampled) must be rejected — the trailer records the
  // payload length, so even a truncation ending on a line boundary fails.
  for (std::size_t keep : {clean.size() - 1, clean.size() / 2,
                           clean.size() / 4, std::size_t{1}}) {
    SCOPED_TRACE("keep " + std::to_string(keep));
    Spit(path, clean.substr(0, keep));
    const auto loaded = LoadSessionCheckpoint(path, db_);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(DurabilityFuzzTest, FlippedByteInFusionProbsIsRejected) {
  const std::string path = MakeValidCheckpointFile();
  std::string bytes = Slurp(path);
  // Flip one hex digit inside the first "fprob" line: the value still
  // parses, so only the checksum can catch it.
  const std::size_t line = bytes.find("fprob ");
  ASSERT_NE(line, std::string::npos);
  const std::size_t digit = bytes.find("0x", line);
  ASSERT_NE(digit, std::string::npos);
  bytes[digit + 3] = bytes[digit + 3] == '8' ? '9' : '8';
  Spit(path, bytes);
  const auto loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("checksum"), std::string::npos)
      << loaded.status();
}

TEST_F(DurabilityFuzzTest, MissingEndTagIsRejected) {
  const std::string path = MakeValidCheckpointFile();
  std::string bytes = Slurp(path);
  const std::size_t end = bytes.find("end\n");
  ASSERT_NE(end, std::string::npos);
  bytes.erase(end, 4);
  Spit(path, bytes);
  const auto loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(DurabilityFuzzTest, UnreadableVersionIsDistinguishedFromUnsupported) {
  const std::string path = dir_ + "/version.txt";
  Spit(path, "veritas-checkpoint banana\nend\n");
  auto loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unreadable format version"),
            std::string::npos)
      << loaded.status();

  Spit(path, "veritas-checkpoint 999\nend\n");
  loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unsupported format version 999"),
            std::string::npos)
      << loaded.status();
}

// Recovery-chain behaviour: a corrupted head falls back to `path.1`, bumps
// the checkpoint.recovered metric, and resuming from the recovered
// generation replays the session bit-exactly.
TEST_F(DurabilityFuzzTest, CorruptHeadRecoversFromTheRotatedChain) {
  const std::string path = dir_ + "/chain_ckpt.txt";

  // Two rounds of checkpointing: the second save rotates the first
  // generation to path.1.
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.checkpoint_path = path;
  Rng rng(5);
  AccuFusion model;
  FeedbackSession session(db_, model, &strategy, &oracle, truth_, options,
                          &rng);
  const auto full = session.Run();
  ASSERT_TRUE(full.ok()) << full.status();
  ASSERT_TRUE(fs::exists(path + ".1"));

  const auto previous = LoadSessionCheckpoint(path + ".1", db_);
  ASSERT_TRUE(previous.ok()) << previous.status();

  // Corrupt the head; the loader must fall back to the .1 generation.
  std::string bytes = Slurp(path);
  bytes[bytes.size() / 2] ^= 0x20;
  Spit(path, bytes);

  Counter* recovered =
      MetricsRegistry::Global().GetCounter("checkpoint.recovered");
  const std::uint64_t recovered_before = recovered->value();
  const auto loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(recovered->value(), recovered_before + 1);
  EXPECT_EQ(loaded->num_validated, previous->num_validated);
  EXPECT_EQ(loaded->fusion.accuracies(), previous->fusion.accuracies());
  EXPECT_EQ(loaded->rng_state, previous->rng_state);

  // Resume from the damaged chain: the run completes and lands exactly
  // where the undamaged run did.
  QbcStrategy strategy2;
  PerfectOracle oracle2;
  SessionOptions resume_options;
  resume_options.resume_path = path;
  Rng rng2(5);
  FeedbackSession resumed_session(db_, model, &strategy2, &oracle2, truth_,
                                  resume_options, &rng2);
  const auto resumed = resumed_session.Run();
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  ASSERT_EQ(resumed->steps.size(), full->steps.size());
  for (std::size_t s = 0; s < full->steps.size(); ++s) {
    SCOPED_TRACE("step " + std::to_string(s));
    EXPECT_EQ(resumed->steps[s].items, full->steps[s].items);
    EXPECT_EQ(resumed->steps[s].distance, full->steps[s].distance);
    EXPECT_EQ(resumed->steps[s].uncertainty, full->steps[s].uncertainty);
  }
  EXPECT_EQ(resumed->final_fusion.accuracies(),
            full->final_fusion.accuracies());
}

// When every generation is damaged the loader reports the head's error
// rather than inventing state.
TEST_F(DurabilityFuzzTest, FullyCorruptChainFailsWithTheHeadError) {
  const std::string path = dir_ + "/dead_ckpt.txt";
  Spit(path, "garbage head\n");
  Spit(path + ".1", "garbage gen 1\n");
  Spit(path + ".2", "garbage gen 2\n");
  const auto loaded = LoadSessionCheckpoint(path, db_);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace veritas
