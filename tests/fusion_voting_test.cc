#include "fusion/voting.h"

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

TEST(VotingFusionTest, VoteSharesMatchEq5) {
  const Database db = MakeMovieDatabase();
  // Zootopia: Howard 1/3, Spencer 2/3 (Example 4.1).
  const ItemId zootopia = *db.FindItem("Zootopia");
  const auto shares = VotingFusion::VoteShares(db, zootopia);
  EXPECT_NEAR(shares[*db.FindClaim(zootopia, "Howard")], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(shares[*db.FindClaim(zootopia, "Spencer")], 2.0 / 3.0, 1e-12);
}

TEST(VotingFusionTest, EvenSplit) {
  const Database db = MakeMovieDatabase();
  const ItemId minions = *db.FindItem("Minions");
  const auto shares = VotingFusion::VoteShares(db, minions);
  EXPECT_NEAR(shares[0], 0.5, 1e-12);
  EXPECT_NEAR(shares[1], 0.5, 1e-12);
}

TEST(VotingFusionTest, FuseOutputsVoteShares) {
  const Database db = MakeMovieDatabase();
  VotingFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const auto shares = VotingFusion::VoteShares(db, i);
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      EXPECT_NEAR(r.prob(i, k), shares[k], 1e-12);
    }
  }
  EXPECT_TRUE(r.converged());
  EXPECT_EQ(r.iterations(), 1u);
}

TEST(VotingFusionTest, PriorsArePinned) {
  const Database db = MakeMovieDatabase();
  VotingFusion model;
  PriorSet priors;
  const ItemId minions = *db.FindItem("Minions");
  ASSERT_TRUE(priors.SetExact(db, minions, 1).ok());
  const FusionResult r = model.Fuse(db, priors, FusionOptions{});
  EXPECT_DOUBLE_EQ(r.prob(minions, 1), 1.0);
}

TEST(VotingFusionTest, SourceAccuracyIsMeanVoteShare) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "b").ok());
  const Database db = builder.Build();
  VotingFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  EXPECT_NEAR(r.accuracy(*db.FindSource("s1")), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(r.accuracy(*db.FindSource("s3")), 1.0 / 3.0, 1e-12);
}

TEST(VotingFusionTest, NameIsVoting) {
  EXPECT_EQ(VotingFusion().name(), "voting");
}

}  // namespace
}  // namespace veritas
