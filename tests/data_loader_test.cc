// Tests of dataset I/O (CSV observation + truth files).
#include "data/loader.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "data/synthetic.h"

namespace veritas {
namespace {

class LoaderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs_path_ = ::testing::TempDir() + "/veritas_obs.csv";
    truth_path_ = ::testing::TempDir() + "/veritas_truth.csv";
  }
  void TearDown() override {
    std::remove(obs_path_.c_str());
    std::remove(truth_path_.c_str());
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }

  std::string obs_path_;
  std::string truth_path_;
};

TEST_F(LoaderTest, LoadsTriples) {
  WriteFile(obs_path_,
            "source,item,value\n"
            "s1,movie,alpha\n"
            "s2,movie,beta\n"
            "s1,book,gamma\n");
  const auto db = LoadObservations(obs_path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_items(), 2u);
  EXPECT_EQ(db->num_sources(), 2u);
  EXPECT_EQ(db->num_observations(), 3u);
  EXPECT_TRUE(db->FindItem("movie").ok());
  EXPECT_TRUE(db->FindClaim(*db->FindItem("movie"), "beta").ok());
}

TEST_F(LoaderTest, HeaderIsOptional) {
  WriteFile(obs_path_, "s1,movie,alpha\n");
  const auto db = LoadObservations(obs_path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_observations(), 1u);
}

TEST_F(LoaderTest, CommentsAndBlanksIgnored) {
  WriteFile(obs_path_, "# data\n\ns1,movie,alpha\n");
  const auto db = LoadObservations(obs_path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_observations(), 1u);
}

TEST_F(LoaderTest, QuotedValuesWithCommas) {
  WriteFile(obs_path_, "s1,book,\"Knuth, Donald\"\n");
  const auto db = LoadObservations(obs_path_);
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->FindClaim(*db->FindItem("book"), "Knuth, Donald").ok());
}

TEST_F(LoaderTest, WrongArityIsError) {
  WriteFile(obs_path_, "s1,movie\n");
  const auto db = LoadObservations(obs_path_);
  EXPECT_EQ(db.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(LoaderTest, DoubleVoteIsLastWriteWins) {
  WriteFile(obs_path_, "s1,movie,a\ns1,movie,b\n");
  const auto db = LoadObservations(obs_path_);
  ASSERT_TRUE(db.ok());
  // The second row revises the first: s1's vote moves from "a" to "b".
  EXPECT_EQ(db->num_observations(), 1u);
  const ItemId movie = *db->FindItem("movie");
  const auto a = db->FindClaim(movie, "a");
  const auto b = db->FindClaim(movie, "b");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(db->item(movie).claims[*a].sources.empty());
  EXPECT_EQ(db->item(movie).claims[*b].sources.size(), 1u);
}

TEST_F(LoaderTest, MissingFileIsIoError) {
  EXPECT_EQ(LoadObservations("/no/such/file.csv").status().code(),
            StatusCode::kIoError);
}

TEST_F(LoaderTest, GroundTruthLoads) {
  WriteFile(obs_path_, "s1,movie,a\ns2,movie,b\n");
  WriteFile(truth_path_, "item,value\nmovie,b\n");
  const auto db = LoadObservations(obs_path_);
  ASSERT_TRUE(db.ok());
  const auto report = LoadGroundTruth(truth_path_, *db);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->applied, 1u);
  EXPECT_EQ(report->unknown_item, 0u);
  EXPECT_EQ(report->unknown_claim, 0u);
  const ItemId movie = *db->FindItem("movie");
  EXPECT_TRUE(report->truth.IsTrue(movie, *db->FindClaim(movie, "b")));
}

TEST_F(LoaderTest, GroundTruthCountsMismatches) {
  WriteFile(obs_path_, "s1,movie,a\n");
  WriteFile(truth_path_,
            "movie,zzz\n"        // Unknown claim.
            "nonexistent,a\n"    // Unknown item.
            "movie,a\n");        // Applies.
  const auto db = LoadObservations(obs_path_);
  ASSERT_TRUE(db.ok());
  const auto report = LoadGroundTruth(truth_path_, *db);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->applied, 1u);
  EXPECT_EQ(report->unknown_item, 1u);
  EXPECT_EQ(report->unknown_claim, 1u);
}

TEST_F(LoaderTest, TruthWrongArityIsError) {
  WriteFile(obs_path_, "s1,movie,a\n");
  WriteFile(truth_path_, "movie\n");
  const auto db = LoadObservations(obs_path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(LoadGroundTruth(truth_path_, *db).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LoaderTest, RoundTripMovieDatabase) {
  const Database original = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(original);
  ASSERT_TRUE(SaveObservations(original, obs_path_).ok());
  ASSERT_TRUE(SaveGroundTruth(original, truth, truth_path_).ok());

  const auto loaded = LoadObservations(obs_path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_items(), original.num_items());
  EXPECT_EQ(loaded->num_sources(), original.num_sources());
  EXPECT_EQ(loaded->num_claims(), original.num_claims());
  EXPECT_EQ(loaded->num_observations(), original.num_observations());

  const auto report = LoadGroundTruth(truth_path_, *loaded);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->applied, 6u);
  for (ItemId i = 0; i < original.num_items(); ++i) {
    const ItemId li = *loaded->FindItem(original.item(i).name);
    const ClaimIndex orig_truth = truth.TrueClaim(i);
    const std::string& value = original.item(i).claims[orig_truth].value;
    EXPECT_TRUE(report->truth.IsTrue(li, *loaded->FindClaim(li, value)));
  }
}

TEST_F(LoaderTest, RoundTripSyntheticDataset) {
  DenseConfig config;
  config.num_items = 60;
  config.num_sources = 8;
  config.seed = 44;
  const SyntheticDataset data = GenerateDense(config);
  ASSERT_TRUE(SaveObservations(data.db, obs_path_).ok());
  ASSERT_TRUE(SaveGroundTruth(data.db, data.truth, truth_path_).ok());
  const auto loaded = LoadObservations(obs_path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_observations(), data.db.num_observations());
  const auto report = LoadGroundTruth(truth_path_, *loaded);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->applied, data.truth.num_known());
}

}  // namespace
}  // namespace veritas
