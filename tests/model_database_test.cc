#include "model/database.h"

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

TEST(DatabaseBuilderTest, EmptyBuild) {
  DatabaseBuilder builder;
  const Database db = builder.Build();
  EXPECT_EQ(db.num_items(), 0u);
  EXPECT_EQ(db.num_sources(), 0u);
  EXPECT_EQ(db.num_claims(), 0u);
  EXPECT_EQ(db.num_observations(), 0u);
}

TEST(DatabaseBuilderTest, SingleObservation) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s", "o", "v").ok());
  const Database db = builder.Build();
  EXPECT_EQ(db.num_items(), 1u);
  EXPECT_EQ(db.num_sources(), 1u);
  EXPECT_EQ(db.num_claims(), 1u);
  EXPECT_EQ(db.num_observations(), 1u);
  EXPECT_EQ(db.item(0).name, "o");
  EXPECT_EQ(db.item(0).claims[0].value, "v");
  ASSERT_EQ(db.item(0).claims[0].sources.size(), 1u);
  EXPECT_EQ(db.source(0).name, "s");
}

TEST(DatabaseBuilderTest, DuplicateSameValueIsIdempotent) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s", "o", "v").ok());
  ASSERT_TRUE(builder.AddObservation("s", "o", "v").ok());
  const Database db = builder.Build();
  EXPECT_EQ(db.num_observations(), 1u);
}

TEST(DatabaseBuilderTest, ConflictingDoubleVoteIsLastWriteWins) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s", "o", "v1").ok());
  EXPECT_FALSE(builder.WouldRevise("s", "o", "v1"));
  EXPECT_TRUE(builder.WouldRevise("s", "o", "v2"));
  ASSERT_TRUE(builder.AddObservation("s", "o", "v2").ok());
  const Database db = builder.Build();
  // Still one vote; it moved to the newer claim. The abandoned claim value
  // stays registered (with no supporters).
  EXPECT_EQ(db.num_observations(), 1u);
  EXPECT_EQ(builder.num_revisions(), 1u);
  EXPECT_EQ(builder.num_duplicates(), 0u);
  ASSERT_EQ(db.num_claims(0), 2u);
  EXPECT_TRUE(db.item(0).claims[0].sources.empty());
  ASSERT_EQ(db.item(0).claims[1].sources.size(), 1u);
}

TEST(DatabaseBuilderTest, InterningIsStable) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "o1", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "o1", "b").ok());
  ASSERT_TRUE(builder.AddObservation("s1", "o2", "c").ok());
  const Database db = builder.Build();
  EXPECT_EQ(db.num_items(), 2u);
  EXPECT_EQ(db.num_sources(), 2u);
  // o1 has two claims, o2 one.
  EXPECT_EQ(db.num_claims(0), 2u);
  EXPECT_EQ(db.num_claims(1), 1u);
}

TEST(DatabaseBuilderTest, AddItemAndSourceWithoutVotes) {
  DatabaseBuilder builder;
  const ItemId item = builder.AddItem("lonely");
  const SourceId source = builder.AddSource("mute");
  const Database db = builder.Build();
  EXPECT_EQ(db.item(item).name, "lonely");
  EXPECT_TRUE(db.item(item).claims.empty());
  EXPECT_EQ(db.source(source).name, "mute");
  EXPECT_TRUE(db.source(source).votes.empty());
}

TEST(DatabaseBuilderTest, BuildIsRepeatable) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s", "o", "v").ok());
  const Database a = builder.Build();
  const Database b = builder.Build();
  EXPECT_EQ(a.num_items(), b.num_items());
  EXPECT_EQ(a.num_observations(), b.num_observations());
}

class MovieDatabaseTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
};

TEST_F(MovieDatabaseTest, Table1Shape) {
  EXPECT_EQ(db_.num_items(), 6u);
  EXPECT_EQ(db_.num_sources(), 4u);
  // 2+2+2+1+2+2 = 11 distinct claims (§1.1).
  EXPECT_EQ(db_.num_claims(), 11u);
  // 3+2+2+1+2+2 = 12 observations.
  EXPECT_EQ(db_.num_observations(), 12u);
}

TEST_F(MovieDatabaseTest, FindItemAndSource) {
  const auto zootopia = db_.FindItem("Zootopia");
  ASSERT_TRUE(zootopia.ok());
  EXPECT_EQ(*zootopia, 0u);
  EXPECT_FALSE(db_.FindItem("Cars").ok());
  ASSERT_TRUE(db_.FindSource("S3").ok());
  EXPECT_FALSE(db_.FindSource("S9").ok());
}

TEST_F(MovieDatabaseTest, FindClaim) {
  const ItemId rio = *db_.FindItem("Rio");
  ASSERT_TRUE(db_.FindClaim(rio, "Jones").ok());
  ASSERT_TRUE(db_.FindClaim(rio, "Saldanha").ok());
  const auto missing = db_.FindClaim(rio, "Spielberg");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(MovieDatabaseTest, ClaimSources) {
  // Spencer on Zootopia is claimed by S3 and S4 (Example 1.1 analog).
  const ItemId zootopia = *db_.FindItem("Zootopia");
  const ClaimIndex spencer = *db_.FindClaim(zootopia, "Spencer");
  const auto& sources = db_.item(zootopia).claims[spencer].sources;
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(db_.source(sources[0]).name, "S3");
  EXPECT_EQ(db_.source(sources[1]).name, "S4");
}

TEST_F(MovieDatabaseTest, ItemVotes) {
  const ItemId zootopia = *db_.FindItem("Zootopia");
  EXPECT_EQ(db_.item_votes(zootopia).size(), 3u);
  const ItemId dory = *db_.FindItem("Finding Dory");
  EXPECT_EQ(db_.item_votes(dory).size(), 1u);
}

TEST_F(MovieDatabaseTest, SourceDegree) {
  // N(S1) = 3 (Kung Fu Panda, Minions, Rio), N(S4) = 2.
  EXPECT_EQ(db_.source_degree(*db_.FindSource("S1")), 3u);
  EXPECT_EQ(db_.source_degree(*db_.FindSource("S2")), 3u);
  EXPECT_EQ(db_.source_degree(*db_.FindSource("S3")), 4u);
  EXPECT_EQ(db_.source_degree(*db_.FindSource("S4")), 2u);
}

TEST_F(MovieDatabaseTest, HasConflictAndConflictingItems) {
  EXPECT_TRUE(db_.HasConflict(*db_.FindItem("Zootopia")));
  EXPECT_FALSE(db_.HasConflict(*db_.FindItem("Finding Dory")));
  const auto conflicting = db_.ConflictingItems();
  EXPECT_EQ(conflicting.size(), 5u);  // All but Finding Dory.
}

TEST_F(MovieDatabaseTest, ClaimOf) {
  const SourceId s3 = *db_.FindSource("S3");
  const ItemId zootopia = *db_.FindItem("Zootopia");
  const ItemId dory = *db_.FindItem("Finding Dory");
  EXPECT_EQ(db_.ClaimOf(s3, zootopia), *db_.FindClaim(zootopia, "Spencer"));
  EXPECT_EQ(db_.ClaimOf(s3, dory), kInvalidClaim);
}

TEST_F(MovieDatabaseTest, SourceVotesSortedByItem) {
  for (SourceId j = 0; j < db_.num_sources(); ++j) {
    const auto& votes = db_.source(j).votes;
    for (std::size_t k = 1; k < votes.size(); ++k) {
      EXPECT_LT(votes[k - 1].item, votes[k].item);
    }
  }
}

}  // namespace
}  // namespace veritas
