// FeedbackSession with streaming ingestion: batches interleave with
// validation rounds, truth rows defer until their item arrives, and
// validated items stay pinned across epochs.
#include "core/session.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/oracle.h"
#include "core/strategy_factory.h"
#include "data/synthetic.h"
#include "fusion/accu.h"
#include "model/streaming_database.h"

namespace veritas {
namespace {

TEST(StreamingSessionTest, ConfigValidation) {
  StreamingDatabase stream{Database()};
  GroundTruth truth(stream.db());
  VectorFeed feed({}, {}, 8);
  AccuFusion model;
  auto strategy_or = MakeStrategy("qbc");
  ASSERT_TRUE(strategy_or.ok());
  PerfectOracle oracle;

  const auto run_with = [&](SessionOptions options) {
    FeedbackSession session(stream.db(), model, strategy_or.value().get(),
                            &oracle, truth, options, nullptr);
    return session.Run().status();
  };

  SessionOptions missing_feed;
  missing_feed.streaming.stream = &stream;
  missing_feed.streaming.truth = &truth;
  EXPECT_EQ(run_with(missing_feed).code(), StatusCode::kInvalidArgument);

  GroundTruth other_truth(stream.db());
  SessionOptions wrong_truth;
  wrong_truth.streaming.stream = &stream;
  wrong_truth.streaming.feed = &feed;
  wrong_truth.streaming.truth = &other_truth;  // Does not alias `truth`.
  EXPECT_EQ(run_with(wrong_truth).code(), StatusCode::kInvalidArgument);

  SessionOptions with_checkpoint;
  with_checkpoint.streaming.stream = &stream;
  with_checkpoint.streaming.feed = &feed;
  with_checkpoint.streaming.truth = &truth;
  with_checkpoint.checkpoint_path = "/tmp/never-written.ckpt";
  EXPECT_EQ(run_with(with_checkpoint).code(), StatusCode::kInvalidArgument);
}

TEST(StreamingSessionTest, InterleavesIngestWithValidation) {
  DenseConfig config;
  config.num_items = 60;
  config.num_sources = 15;
  config.seed = 23;
  config.emit_stream = true;
  const SyntheticDataset data = GenerateDense(config);

  StreamingDatabase stream{Database()};
  GroundTruth truth(stream.db());
  VectorFeed feed(data.stream, data.truth_stream, /*batch_size=*/48);
  AccuFusion model;
  auto strategy_or = MakeStrategy("qbc");
  ASSERT_TRUE(strategy_or.ok());
  PerfectOracle oracle;
  Rng rng(5);

  SessionOptions options;
  options.max_validations = 8;
  options.streaming.stream = &stream;
  options.streaming.feed = &feed;
  options.streaming.truth = &truth;
  // The perfect oracle hard-fails on unknown truth; streamed items must wait
  // for their truth row instead of aborting the run.
  options.streaming.require_known_truth = true;

  FeedbackSession session(stream.db(), model, strategy_or.value().get(),
                          &oracle, truth, options, &rng);
  auto trace_or = session.Run();
  ASSERT_TRUE(trace_or.ok()) << trace_or.status();
  const SessionTrace trace = trace_or.value();

  EXPECT_EQ(trace.steps.back().num_validated, 8u);
  EXPECT_GT(trace.ingest_batches, 0u);
  EXPECT_GT(trace.ingested_observations, 0u);
  EXPECT_GT(trace.truths_applied, 0u);
  EXPECT_GT(trace.final_epoch, 0u);
  // Validated pins survived every epoch: each validated item still carries
  // a full-size prior in the final trace.
  for (const SessionStep& step : trace.steps) {
    for (ItemId item : step.items) {
      ASSERT_TRUE(trace.priors.Has(item));
      EXPECT_EQ(trace.priors.Get(item).size(), stream.db().num_claims(item));
    }
  }
  ASSERT_TRUE(trace.final_fusion.AllFinite());
}

TEST(StreamingSessionTest, TruthArrivingBeforeItsItemIsDeferredThenApplied) {
  std::vector<StreamObservation> obs = {
      {"s1", "o1", "a", 0.10}, {"s2", "o1", "b", 0.20},
      {"s1", "o2", "x", 0.30}, {"s2", "o2", "y", 0.40}};
  // o2's truth is disclosed before o2 has any observations: it must ride
  // batch 1, sit deferred, and land after batch 2 brings the item in.
  std::vector<StreamTruth> truths = {{"o2", "x", 0.05}, {"o1", "a", 0.15}};

  StreamingDatabase stream{Database()};
  GroundTruth truth(stream.db());
  VectorFeed feed(obs, truths, /*batch_size=*/2);
  AccuFusion model;
  auto strategy_or = MakeStrategy("qbc");
  ASSERT_TRUE(strategy_or.ok());
  PerfectOracle oracle;

  SessionOptions options;
  options.streaming.stream = &stream;
  options.streaming.feed = &feed;
  options.streaming.truth = &truth;
  options.streaming.require_known_truth = true;

  FeedbackSession session(stream.db(), model, strategy_or.value().get(),
                          &oracle, truth, options, nullptr);
  auto trace_or = session.Run();
  ASSERT_TRUE(trace_or.ok()) << trace_or.status();
  const SessionTrace trace = trace_or.value();

  EXPECT_EQ(trace.ingested_observations, 4u);
  EXPECT_EQ(trace.truths_applied, 2u);
  EXPECT_EQ(trace.truths_deferred, 0u);
  // Both conflicted items became validatable once their truth landed.
  EXPECT_EQ(trace.steps.back().num_validated, 2u);
  const auto o2 = stream.db().FindItem("o2");
  ASSERT_TRUE(o2.ok());
  EXPECT_TRUE(truth.Knows(o2.value()));
}

}  // namespace
}  // namespace veritas
