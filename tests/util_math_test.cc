#include "util/math.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace veritas {
namespace {

TEST(ClampTest, WithinBounds) {
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Clamp(-0.1, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(1.7, 0.0, 1.0), 1.0);
}

TEST(ClampTest, ProbClamping) {
  EXPECT_DOUBLE_EQ(ClampProb(-3.0), 0.0);
  EXPECT_DOUBLE_EQ(ClampProb(0.25), 0.25);
  EXPECT_DOUBLE_EQ(ClampProb(42.0), 1.0);
}

TEST(ClampTest, AccuracyClamping) {
  EXPECT_DOUBLE_EQ(ClampAccuracy(0.5), 0.5);
  EXPECT_DOUBLE_EQ(ClampAccuracy(0.0), kMinAccuracy);
  EXPECT_DOUBLE_EQ(ClampAccuracy(1.0), kMaxAccuracy);
  EXPECT_DOUBLE_EQ(ClampAccuracy(-7.0), kMinAccuracy);
}

TEST(EntropyTest, TermConventions) {
  EXPECT_DOUBLE_EQ(EntropyTerm(0.0), 0.0);  // 0 * ln 0 == 0.
  EXPECT_DOUBLE_EQ(EntropyTerm(1.0), 0.0);
  EXPECT_GT(EntropyTerm(0.5), 0.0);
  // Out-of-range inputs are clamped, not NaN.
  EXPECT_DOUBLE_EQ(EntropyTerm(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(EntropyTerm(2.0), 0.0);
}

TEST(EntropyTest, UniformBinaryIsLn2) {
  EXPECT_NEAR(Entropy({0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(EntropyTest, PaperExample42) {
  // H_5 = -(0.079) ln(0.079) - (0.921) ln(0.921) = 0.276 (natural log).
  EXPECT_NEAR(Entropy({0.921, 0.079}), 0.276, 5e-4);
}

TEST(EntropyTest, PaperExample41VoteEntropies) {
  // H_2 = -(1/2) ln(1/2) * 2 = 0.693 and H_1 = 0.637.
  EXPECT_NEAR(Entropy({0.5, 0.5}), 0.693, 5e-4);
  EXPECT_NEAR(Entropy({1.0 / 3.0, 2.0 / 3.0}), 0.637, 5e-4);
}

TEST(EntropyTest, DegenerateDistributionIsZero) {
  EXPECT_DOUBLE_EQ(Entropy({1.0, 0.0, 0.0}), 0.0);
}

TEST(EntropyTest, MaxEntropy) {
  EXPECT_DOUBLE_EQ(MaxEntropy(0), 0.0);
  EXPECT_DOUBLE_EQ(MaxEntropy(1), 0.0);
  EXPECT_NEAR(MaxEntropy(2), std::log(2.0), 1e-12);
  EXPECT_NEAR(MaxEntropy(10), std::log(10.0), 1e-12);
}

TEST(EntropyTest, BoundedByMaxEntropy) {
  const std::vector<double> p = {0.2, 0.3, 0.1, 0.4};
  EXPECT_LE(Entropy(p), MaxEntropy(p.size()) + 1e-12);
  EXPECT_GE(Entropy(p), 0.0);
}

TEST(LogSumExpTest, EmptyIsNegInf) {
  EXPECT_TRUE(std::isinf(LogSumExp({})));
  EXPECT_LT(LogSumExp({}), 0.0);
}

TEST(LogSumExpTest, SingleValue) {
  EXPECT_NEAR(LogSumExp({3.0}), 3.0, 1e-12);
}

TEST(LogSumExpTest, MatchesDirectComputation) {
  const std::vector<double> xs = {0.1, 1.5, -2.0};
  double direct = 0.0;
  for (double x : xs) direct += std::exp(x);
  EXPECT_NEAR(LogSumExp(xs), std::log(direct), 1e-12);
}

TEST(LogSumExpTest, StableForLargeScores) {
  // Naive exp would overflow; LSE must not.
  const double lse = LogSumExp({1000.0, 1000.0});
  EXPECT_NEAR(lse, 1000.0 + std::log(2.0), 1e-9);
}

TEST(LogSumExpTest, StableForVerySmallScores) {
  const double lse = LogSumExp({-1000.0, -1000.0});
  EXPECT_NEAR(lse, -1000.0 + std::log(2.0), 1e-9);
}

TEST(SoftmaxTest, UniformScores) {
  const auto p = SoftmaxFromLogScores({1.0, 1.0, 1.0, 1.0});
  ASSERT_EQ(p.size(), 4u);
  for (double x : p) EXPECT_NEAR(x, 0.25, 1e-12);
}

TEST(SoftmaxTest, SumsToOne) {
  const auto p = SoftmaxFromLogScores({0.2, -3.0, 5.5, 1.0});
  double sum = 0.0;
  for (double x : p) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(SoftmaxTest, MonotoneInScores) {
  const auto p = SoftmaxFromLogScores({1.0, 2.0, 3.0});
  EXPECT_LT(p[0], p[1]);
  EXPECT_LT(p[1], p[2]);
}

TEST(SoftmaxTest, ExtremeSpreadSaturates) {
  const auto p = SoftmaxFromLogScores({0.0, 800.0});
  EXPECT_NEAR(p[0], 0.0, 1e-12);
  EXPECT_NEAR(p[1], 1.0, 1e-12);
}

TEST(SoftmaxTest, EmptyInput) {
  EXPECT_TRUE(SoftmaxFromLogScores({}).empty());
}

TEST(NormalizeTest, Basic) {
  const auto p = Normalize({1.0, 3.0});
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[1], 0.75, 1e-12);
}

TEST(NormalizeTest, AllZeroBecomesUniform) {
  const auto p = Normalize({0.0, 0.0, 0.0});
  for (double x : p) EXPECT_NEAR(x, 1.0 / 3.0, 1e-12);
}

TEST(NormalizeTest, NegativeWeightsTreatedAsZero) {
  const auto p = Normalize({-5.0, 1.0});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 1.0);
}

TEST(NormalizeTest, EmptyInput) { EXPECT_TRUE(Normalize({}).empty()); }

TEST(ArgMaxTest, FirstOccurrenceWins) {
  EXPECT_EQ(ArgMax({1.0, 3.0, 3.0, 2.0}), 1u);
}

TEST(ArgMaxTest, SingleElement) { EXPECT_EQ(ArgMax({7.0}), 0u); }

TEST(ArgMaxTest, EmptyIsZero) { EXPECT_EQ(ArgMax({}), 0u); }

TEST(NearlyEqualTest, Tolerance) {
  EXPECT_TRUE(NearlyEqual(1.0, 1.0 + 1e-10, 1e-9));
  EXPECT_FALSE(NearlyEqual(1.0, 1.01, 1e-9));
}

// Property sweep: softmax of Accu-style log scores is always a valid
// distribution for a wide range of score magnitudes.
class SoftmaxPropertyTest : public ::testing::TestWithParam<double> {};

TEST_P(SoftmaxPropertyTest, ValidDistribution) {
  const double magnitude = GetParam();
  const std::vector<double> scores = {-magnitude, 0.0, magnitude,
                                      magnitude / 2.0};
  const auto p = SoftmaxFromLogScores(scores);
  double sum = 0.0;
  for (double x : p) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, SoftmaxPropertyTest,
                         ::testing::Values(0.0, 0.1, 1.0, 10.0, 100.0, 1000.0,
                                           10000.0));

}  // namespace
}  // namespace veritas
