#include "util/strings.h"

#include <gtest/gtest.h>

namespace veritas {
namespace {

TEST(SplitTest, Basic) {
  const auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitTest, KeepsEmptyFields) {
  const auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitTest, NoDelimiter) {
  const auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitTest, EmptyInput) {
  const auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t a b \n"), "a b");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("x"), "x");
}

TEST(JoinTest, Basic) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("approx_meu_k:10", "approx_meu_k:"));
  EXPECT_FALSE(StartsWith("approx", "approx_meu_k:"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("", "a"));
}

TEST(ToLowerTest, Basic) {
  EXPECT_EQ(ToLower("PaPeR"), "paper");
  EXPECT_EQ(ToLower("small"), "small");
  EXPECT_EQ(ToLower("MIX3D_9"), "mix3d_9");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 0), "3");
  EXPECT_EQ(FormatDouble(-0.5, 3), "-0.500");
  EXPECT_EQ(FormatDouble(100.0, 1), "100.0");
}

}  // namespace
}  // namespace veritas
