#include "fusion/accu.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "model/database_builder.h"
#include "util/math.h"

namespace veritas {
namespace {

Database TwoSourceConflict() {
  DatabaseBuilder builder;
  // One contested item plus calibration items that separate the sources.
  EXPECT_TRUE(builder.AddObservation("good", "x", "a").ok());
  EXPECT_TRUE(builder.AddObservation("bad", "x", "b").ok());
  // "good" agrees with two corroborators elsewhere; "bad" opposes them.
  EXPECT_TRUE(builder.AddObservation("good", "y", "t").ok());
  EXPECT_TRUE(builder.AddObservation("w1", "y", "t").ok());
  EXPECT_TRUE(builder.AddObservation("w2", "y", "t").ok());
  EXPECT_TRUE(builder.AddObservation("bad", "y", "f").ok());
  return builder.Build();
}

TEST(AccuFusionTest, ProbabilitiesAreDistributions) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  for (ItemId i = 0; i < db.num_items(); ++i) {
    double sum = 0.0;
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      const double p = r.prob(i, k);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "item " << i;
  }
}

TEST(AccuFusionTest, SingletonItemIsCertain) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  const ItemId dory = *db.FindItem("Finding Dory");
  EXPECT_DOUBLE_EQ(r.prob(dory, 0), 1.0);
}

TEST(AccuFusionTest, Table3Winners) {
  // The model's picks must match Table 3: Spencer, Nelson, Docter, Stanton,
  // Coffin, Saldanha.
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  struct Expect {
    const char* item;
    const char* winner;
  };
  const Expect expected[] = {
      {"Zootopia", "Spencer"},  {"Kung Fu Panda", "Nelson"},
      {"Inside Out", "Docter"}, {"Finding Dory", "Stanton"},
      {"Minions", "Coffin"},    {"Rio", "Saldanha"},
  };
  for (const Expect& e : expected) {
    const ItemId item = *db.FindItem(e.item);
    EXPECT_EQ(r.WinningClaim(item), *db.FindClaim(item, e.winner)) << e.item;
  }
}

TEST(AccuFusionTest, Table3ProbabilitiesAtPaperIterationBudget) {
  // With the paper's 5-iteration threshold our probabilities land within
  // 0.01 of Table 3 (0.985 / 0.999 / 0.921 / 0.985).
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, PaperExampleFusionOptions());
  const ItemId o2 = *db.FindItem("Kung Fu Panda");
  const ItemId o3 = *db.FindItem("Inside Out");
  const ItemId o5 = *db.FindItem("Minions");
  const ItemId o6 = *db.FindItem("Rio");
  EXPECT_NEAR(r.prob(o2, *db.FindClaim(o2, "Nelson")), 0.985, 0.01);
  EXPECT_NEAR(r.prob(o3, *db.FindClaim(o3, "Docter")), 0.999, 0.01);
  EXPECT_NEAR(r.prob(o5, *db.FindClaim(o5, "Coffin")), 0.921, 0.01);
  EXPECT_NEAR(r.prob(o6, *db.FindClaim(o6, "Saldanha")), 0.985, 0.01);
}

TEST(AccuFusionTest, AccuracySeparation) {
  const Database db = TwoSourceConflict();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  const SourceId good = *db.FindSource("good");
  const SourceId bad = *db.FindSource("bad");
  EXPECT_GT(r.accuracy(good), r.accuracy(bad));
  // And the contested item goes to the better source.
  const ItemId x = *db.FindItem("x");
  EXPECT_EQ(r.WinningClaim(x), *db.FindClaim(x, "a"));
}

TEST(AccuFusionTest, AccuraciesStayClamped) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  FusionOptions opts;
  opts.max_iterations = 500;
  const FusionResult r = model.Fuse(db, opts);
  for (SourceId j = 0; j < db.num_sources(); ++j) {
    EXPECT_GE(r.accuracy(j), kMinAccuracy);
    EXPECT_LE(r.accuracy(j), kMaxAccuracy);
  }
}

TEST(AccuFusionTest, ConvergenceFlagAndIterationCap) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  FusionOptions tight;
  tight.max_iterations = 2;
  const FusionResult capped = model.Fuse(db, tight);
  EXPECT_EQ(capped.iterations(), 2u);
  EXPECT_FALSE(capped.converged());

  FusionOptions loose;
  loose.max_iterations = 1000;
  const FusionResult converged = model.Fuse(db, loose);
  EXPECT_TRUE(converged.converged());
  EXPECT_LT(converged.iterations(), 1000u);
}

TEST(AccuFusionTest, PriorsArePinned) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  PriorSet priors;
  const ItemId zootopia = *db.FindItem("Zootopia");
  const ClaimIndex howard = *db.FindClaim(zootopia, "Howard");
  ASSERT_TRUE(priors.SetExact(db, zootopia, howard).ok());
  const FusionResult r = model.Fuse(db, priors, FusionOptions{});
  EXPECT_DOUBLE_EQ(r.prob(zootopia, howard), 1.0);
  EXPECT_DOUBLE_EQ(r.prob(zootopia, *db.FindClaim(zootopia, "Spencer")), 0.0);
}

TEST(AccuFusionTest, ValidationPropagatesThroughSources) {
  // Pinning Howard (the *true* claim) punishes S3/S4 and rewards S2;
  // the motivation example of §1.1: fusion reconsiders other items.
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  const FusionOptions opts = PaperExampleFusionOptions();
  const FusionResult before = model.Fuse(db, opts);

  PriorSet priors;
  const ItemId zootopia = *db.FindItem("Zootopia");
  ASSERT_TRUE(
      priors.SetExact(db, zootopia, *db.FindClaim(zootopia, "Howard")).ok());
  const FusionResult after = model.Fuse(db, priors, opts);

  const SourceId s2 = *db.FindSource("S2");
  const SourceId s3 = *db.FindSource("S3");
  EXPECT_GT(after.accuracy(s2), before.accuracy(s2));
  EXPECT_LT(after.accuracy(s3), before.accuracy(s3));
  // S2's other claims gain probability.
  const ItemId o3 = *db.FindItem("Inside Out");
  const ClaimIndex lefauve = *db.FindClaim(o3, "leFauve");
  EXPECT_GT(after.prob(o3, lefauve), before.prob(o3, lefauve));
}

TEST(AccuFusionTest, WarmStartReachesSameFixedPoint) {
  const Database db = TwoSourceConflict();
  AccuFusion model;
  FusionOptions opts;
  const FusionResult cold = model.Fuse(db, opts);
  const FusionResult warm = model.Fuse(db, PriorSet(), opts, &cold);
  EXPECT_TRUE(warm.converged());
  EXPECT_LE(warm.iterations(), cold.iterations());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      EXPECT_NEAR(warm.prob(i, k), cold.prob(i, k), 1e-6);
    }
  }
}

TEST(AccuFusionTest, ClaimLogScoresMatchSoftmax) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  for (ItemId i = 0; i < db.num_items(); ++i) {
    if (db.num_claims(i) < 2) continue;
    const auto scores = AccuFusion::ClaimLogScores(db, i, r.accuracies());
    const auto probs = SoftmaxFromLogScores(scores);
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      EXPECT_NEAR(probs[k], r.prob(i, k), 1e-9);
    }
  }
}

TEST(AccuFusionTest, EqualEvidenceSplitsEvenly) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "b").ok());
  const Database db = builder.Build();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  // Perfect symmetry: no run of the model can break the tie.
  EXPECT_NEAR(r.prob(0, 0), 0.5, 1e-9);
  EXPECT_NEAR(r.prob(0, 1), 0.5, 1e-9);
}

TEST(AccuFusionTest, MoreVotesWinWithDefaultAccuracies) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "b").ok());
  const Database db = builder.Build();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  EXPECT_EQ(r.WinningClaim(0), *db.FindClaim(0, "a"));
}

TEST(AccuFusionTest, ThreeClaimItemUsesFalseCount) {
  // |V_i| - 1 = 2 scales each vote's odds; the fused output must still be a
  // distribution with the double-voted claim winning.
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "b").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "c").ok());
  ASSERT_TRUE(builder.AddObservation("s4", "x", "a").ok());
  const Database db = builder.Build();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  EXPECT_EQ(r.WinningClaim(0), *db.FindClaim(0, "a"));
  double sum = 0.0;
  for (ClaimIndex k = 0; k < 3; ++k) sum += r.prob(0, k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(AccuFusionTest, DistributionPriorContributesToAccuracy) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  PriorSet priors;
  const ItemId minions = *db.FindItem("Minions");
  // 70/30 crowd prior on Minions.
  std::vector<double> dist = {0.7, 0.3};
  ASSERT_TRUE(priors.SetDistribution(db, minions, dist).ok());
  const FusionResult r = model.Fuse(db, priors, FusionOptions{});
  EXPECT_DOUBLE_EQ(r.prob(minions, 0), 0.7);
  EXPECT_DOUBLE_EQ(r.prob(minions, 1), 0.3);
}

TEST(AccuFusionTest, NameIsAccu) {
  EXPECT_EQ(AccuFusion().name(), "accu");
}

}  // namespace
}  // namespace veritas
