// Streaming ingestion: epoch-based CSR appends (model/streaming_database)
// plus the synthetic stream generator that feeds them. The structural
// invariant under test everywhere: a view grown by appends answers every
// query exactly like a fresh CompiledDatabase over the same Database.
#include "model/streaming_database.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "data/dataset_stats.h"
#include "data/synthetic.h"
#include "model/compiled_database.h"
#include "model/database.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

StreamObservation Obs(const std::string& source, const std::string& item,
                      const std::string& value, double ts = 0.0) {
  return StreamObservation{source, item, value, ts};
}

IngestBatch BatchOf(std::vector<StreamObservation> obs) {
  IngestBatch batch;
  batch.observations = std::move(obs);
  return batch;
}

/// Asserts that `view` (possibly carrying tail segments and tombstones)
/// answers structurally identically to a freshly compiled view of `db`.
/// Claim identity is compared through (item, local claim index), which both
/// views share with the Database; global ids may legitimately differ.
void ExpectViewMatchesFresh(const CompiledDatabase& view, const Database& db) {
  const CompiledDatabase fresh(db);
  ASSERT_EQ(view.num_items(), fresh.num_items());
  ASSERT_EQ(view.num_sources(), fresh.num_sources());
  ASSERT_EQ(view.num_claims(), fresh.num_claims());
  ASSERT_EQ(view.num_observations(), fresh.num_observations());

  for (ItemId i = 0; i < db.num_items(); ++i) {
    ASSERT_EQ(view.item_num_claims(i), db.num_claims(i)) << "item " << i;
    for (std::size_t k = 0; k < db.num_claims(i); ++k) {
      const std::uint32_t gv = view.global_claim_id(i, k);
      const std::uint32_t gf = fresh.global_claim_id(i, k);
      EXPECT_EQ(view.claim_num_sources(gv), fresh.claim_num_sources(gf))
          << "item " << i << " claim " << k;
      std::vector<SourceId> sv, sf;
      view.ForEachClaimSource(gv, [&](SourceId s) { sv.push_back(s); });
      fresh.ForEachClaimSource(gf, [&](SourceId s) { sf.push_back(s); });
      std::sort(sv.begin(), sv.end());
      std::sort(sf.begin(), sf.end());
      EXPECT_EQ(sv, sf) << "item " << i << " claim " << k;
    }
    std::vector<std::pair<SourceId, ClaimIndex>> vv, vf;
    view.ForEachItemVote(
        i, [&](SourceId s, ClaimIndex k) { vv.emplace_back(s, k); });
    fresh.ForEachItemVote(
        i, [&](SourceId s, ClaimIndex k) { vf.emplace_back(s, k); });
    std::sort(vv.begin(), vv.end());
    std::sort(vf.begin(), vf.end());
    EXPECT_EQ(vv, vf) << "item " << i;
  }

  for (SourceId j = 0; j < db.num_sources(); ++j) {
    ASSERT_EQ(view.source_degree(j), fresh.source_degree(j)) << "source " << j;
    // Compare source votes as (item, local claim) — global ids differ when
    // the view holds tail claims.
    const auto to_local = [&db](const CompiledDatabase& c, ItemId i,
                                std::uint32_t g) -> ClaimIndex {
      for (std::size_t k = 0; k < db.num_claims(i); ++k) {
        if (c.global_claim_id(i, k) == g) return static_cast<ClaimIndex>(k);
      }
      return kInvalidClaim;
    };
    std::vector<std::pair<ItemId, ClaimIndex>> vv, vf;
    view.ForEachSourceVote(j, [&](ItemId i, std::uint32_t g) {
      vv.emplace_back(i, to_local(view, i, g));
    });
    fresh.ForEachSourceVote(j, [&](ItemId i, std::uint32_t g) {
      vf.emplace_back(i, to_local(fresh, i, g));
    });
    std::sort(vv.begin(), vv.end());
    std::sort(vf.begin(), vf.end());
    EXPECT_EQ(vv, vf) << "source " << j;
  }
}

Database SeedDb() {
  DatabaseBuilder builder;
  EXPECT_TRUE(builder.AddObservation("s1", "o1", "a").ok());
  EXPECT_TRUE(builder.AddObservation("s2", "o1", "b").ok());
  EXPECT_TRUE(builder.AddObservation("s1", "o2", "x").ok());
  return builder.Build();
}

TEST(StreamingDatabaseTest, AppendBatchCountsAndDirtySets) {
  StreamingDatabase stream(SeedDb());
  EXPECT_EQ(stream.epoch(), 0u);

  const auto stats_or = stream.AppendBatch(BatchOf({
      Obs("s3", "o1", "a"),   // fresh vote, new source
      Obs("s1", "o1", "a"),   // duplicate (s1 already votes a)
      Obs("s2", "o1", "a"),   // revision: s2 moves b -> a
      Obs("s4", "o3", "z"),   // new source, new item, new claim
  }));
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  const IngestStats stats = stats_or.value();
  EXPECT_EQ(stats.fresh, 2u);
  EXPECT_EQ(stats.duplicates, 1u);
  EXPECT_EQ(stats.revisions, 1u);
  EXPECT_EQ(stats.new_items, 1u);
  EXPECT_EQ(stats.new_sources, 2u);
  EXPECT_EQ(stats.new_claims, 1u);
  EXPECT_EQ(stream.epoch(), 1u);
  EXPECT_FALSE(stream.compiled().flat());

  std::vector<ItemId> dirty_items;
  std::vector<SourceId> dirty_sources;
  stream.TakeDirty(&dirty_items, &dirty_sources);
  // o1 and o3 changed; o2 did not. Duplicates dirty nothing.
  const auto o1 = stream.db().FindItem("o1");
  const auto o3 = stream.db().FindItem("o3");
  ASSERT_TRUE(o1.ok());
  ASSERT_TRUE(o3.ok());
  EXPECT_EQ(dirty_items,
            (std::vector<ItemId>{o1.value(), o3.value()}));
  EXPECT_EQ(dirty_sources.size(), 3u);  // s2 (revised), s3, s4.

  // TakeDirty clears.
  stream.TakeDirty(&dirty_items, &dirty_sources);
  EXPECT_TRUE(dirty_items.empty());
  EXPECT_TRUE(dirty_sources.empty());

  ExpectViewMatchesFresh(stream.compiled(), stream.db());
}

TEST(StreamingDatabaseTest, PureDuplicateBatchKeepsEpoch) {
  StreamingDatabase stream(SeedDb());
  const auto stats_or =
      stream.AppendBatch(BatchOf({Obs("s1", "o1", "a"), Obs("s1", "o2", "x")}));
  ASSERT_TRUE(stats_or.ok());
  EXPECT_EQ(stats_or.value().duplicates, 2u);
  // No structural change: derived positional state must stay valid.
  EXPECT_EQ(stream.epoch(), 0u);
  EXPECT_TRUE(stream.compiled().flat());
}

TEST(StreamingDatabaseTest, EmptyNamesRejected) {
  StreamingDatabase stream(SeedDb());
  EXPECT_EQ(stream.AppendBatch(BatchOf({Obs("", "o1", "a")})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(stream.AppendBatch(BatchOf({Obs("s1", "", "a")})).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StreamingDatabaseTest, CheckEpochFailsLoudlyOnStaleViews) {
  StreamingDatabase stream(SeedDb());
  const std::uint64_t before = stream.epoch();
  EXPECT_TRUE(stream.compiled().CheckEpoch(before).ok());
  ASSERT_TRUE(stream.AppendBatch(BatchOf({Obs("s9", "o1", "a")})).ok());
  const Status stale = stream.compiled().CheckEpoch(before);
  EXPECT_EQ(stale.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(stream.compiled().CheckEpoch(stream.epoch()).ok());
}

TEST(StreamingDatabaseTest, CompactFoldsTailsAndBumpsEpoch) {
  StreamingDatabase stream(SeedDb());
  ASSERT_TRUE(stream
                  .AppendBatch(BatchOf({Obs("s3", "o2", "y"),
                                        Obs("s2", "o1", "c"),   // revision
                                        Obs("s4", "o4", "q")}))
                  .ok());
  const std::uint64_t epoch_before = stream.epoch();
  const std::size_t obs_before = stream.compiled().num_observations();
  EXPECT_FALSE(stream.compiled().flat());

  stream.Compact();
  EXPECT_TRUE(stream.compiled().flat());
  EXPECT_EQ(stream.compiled().tail_observations(), 0u);
  EXPECT_EQ(stream.compiled().tombstones(), 0u);
  EXPECT_EQ(stream.compiled().compactions(), 1u);
  EXPECT_EQ(stream.epoch(), epoch_before + 1);
  EXPECT_EQ(stream.compiled().num_observations(), obs_before);
  ExpectViewMatchesFresh(stream.compiled(), stream.db());
}

TEST(StreamingDatabaseTest, CompactIfNeededHonorsPolicy) {
  StreamingOptions opts;
  opts.min_tail_before_compact = 2;
  opts.compact_tail_fraction = 0.25;
  StreamingDatabase stream(SeedDb(), opts);
  // One tail vote: below min tail.
  ASSERT_TRUE(stream.AppendBatch(BatchOf({Obs("s3", "o1", "a")})).ok());
  EXPECT_FALSE(stream.CompactIfNeeded());
  // Second tail vote: 2 tail / 5 total = 0.4 >= 0.25 -> compacts.
  ASSERT_TRUE(stream.AppendBatch(BatchOf({Obs("s4", "o1", "b")})).ok());
  EXPECT_TRUE(stream.CompactIfNeeded());
  EXPECT_TRUE(stream.compiled().flat());
}

TEST(StreamingDatabaseTest, RevisionChainsStayConsistent) {
  // Repeated last-write-wins flips across batches, including revising a
  // tail vote and revising back to the original claim.
  StreamingDatabase stream(SeedDb());
  ASSERT_TRUE(stream.AppendBatch(BatchOf({Obs("s3", "o1", "c")})).ok());
  ASSERT_TRUE(stream.AppendBatch(BatchOf({Obs("s3", "o1", "a")})).ok());
  ASSERT_TRUE(stream.AppendBatch(BatchOf({Obs("s2", "o1", "a")})).ok());
  ASSERT_TRUE(stream.AppendBatch(BatchOf({Obs("s2", "o1", "b")})).ok());
  EXPECT_EQ(stream.totals().revisions, 3u);
  ExpectViewMatchesFresh(stream.compiled(), stream.db());
  stream.Compact();
  ExpectViewMatchesFresh(stream.compiled(), stream.db());
}

TEST(VectorFeedTest, TruthRowsRideTheBatchWhoseHorizonReachesThem) {
  std::vector<StreamObservation> obs = {
      Obs("s1", "o1", "a", 0.1), Obs("s2", "o1", "b", 0.2),
      Obs("s1", "o2", "x", 0.3), Obs("s2", "o2", "y", 0.4)};
  std::vector<StreamTruth> truths = {{"o2", "y", 0.35},
                                     {"o1", "a", 0.15},
                                     {"o9", "z", 0.9}};
  VectorFeed feed(obs, truths, /*batch_size=*/2);

  IngestBatch b1;
  ASSERT_TRUE(feed.Next(&b1));
  ASSERT_EQ(b1.observations.size(), 2u);
  ASSERT_EQ(b1.truths.size(), 1u);  // Horizon 0.2 reaches the 0.15 row.
  EXPECT_EQ(b1.truths[0].item, "o1");

  IngestBatch b2;
  ASSERT_TRUE(feed.Next(&b2));
  ASSERT_EQ(b2.observations.size(), 2u);
  // Final batch: the 0.35 row (within horizon 0.4) plus the 0.9 leftover.
  ASSERT_EQ(b2.truths.size(), 2u);
  EXPECT_EQ(b2.truths[0].item, "o2");
  EXPECT_EQ(b2.truths[1].item, "o9");

  IngestBatch b3;
  EXPECT_FALSE(feed.Next(&b3));
}

TEST(SyntheticStreamTest, EmitStreamDoesNotPerturbTheDataset) {
  DenseConfig config;
  config.num_items = 40;
  config.num_sources = 12;
  config.seed = 7;
  const SyntheticDataset plain = GenerateDense(config);
  config.emit_stream = true;
  const SyntheticDataset streamed = GenerateDense(config);

  EXPECT_TRUE(plain.stream.empty());
  ASSERT_EQ(streamed.stream.size(), streamed.db.num_observations());
  ASSERT_EQ(plain.db.num_observations(), streamed.db.num_observations());
  ASSERT_EQ(plain.db.num_items(), streamed.db.num_items());
  ASSERT_EQ(plain.db.num_claims(), streamed.db.num_claims());
  EXPECT_FALSE(streamed.truth_stream.empty());
  // Timestamps preserve emission order strictly.
  for (std::size_t k = 1; k < streamed.stream.size(); ++k) {
    EXPECT_LT(streamed.stream[k - 1].timestamp, streamed.stream[k].timestamp);
  }
}

TEST(SyntheticStreamTest, ReplayReproducesTheBatchBuiltDatabase) {
  LongTailConfig config;
  config.num_items = 60;
  config.num_sources = 15;
  config.seed = 11;
  config.emit_stream = true;
  config.revision_fraction = 0.05;
  const SyntheticDataset data = GenerateLongTail(config);
  ASSERT_GT(data.stream.size(), data.db.num_observations());

  StreamingDatabase stream{Database()};
  VectorFeed feed(data.stream, {}, /*batch_size=*/37);
  IngestBatch batch;
  while (feed.Next(&batch)) {
    ASSERT_TRUE(stream.AppendBatch(batch).ok());
  }
  EXPECT_GT(stream.totals().revisions + stream.totals().duplicates, 0u);

  const Database& replayed = stream.db();
  ASSERT_EQ(replayed.num_items(), data.db.num_items());
  ASSERT_EQ(replayed.num_sources(), data.db.num_sources());
  ASSERT_EQ(replayed.num_claims(), data.db.num_claims());
  ASSERT_EQ(replayed.num_observations(), data.db.num_observations());
  // Identical ids: replay in timestamp order interns names in the same
  // order the batch builder saw them.
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    EXPECT_EQ(replayed.item(i).name, data.db.item(i).name);
    ASSERT_EQ(replayed.num_claims(i), data.db.num_claims(i));
    for (std::size_t k = 0; k < data.db.num_claims(i); ++k) {
      EXPECT_EQ(replayed.item(i).claims[k].value,
                data.db.item(i).claims[k].value);
      EXPECT_EQ(replayed.item(i).claims[k].sources,
                data.db.item(i).claims[k].sources);
    }
  }
  for (SourceId j = 0; j < data.db.num_sources(); ++j) {
    EXPECT_EQ(replayed.source(j).name, data.db.source(j).name);
    EXPECT_EQ(replayed.source(j).votes.size(), data.db.source(j).votes.size());
  }
  ExpectViewMatchesFresh(stream.compiled(), replayed);
}

TEST(DatasetStatsTest, TruthReportFoldsIntoStats) {
  const Database db = SeedDb();
  TruthLoadReport report;
  report.truth = GroundTruth(db);
  report.applied = 1;
  report.unknown_item = 2;
  report.unknown_claim = 3;
  const DatasetStats stats = ComputeStats(db, report);
  EXPECT_TRUE(stats.has_truth);
  EXPECT_EQ(stats.truth_applied, 1u);
  EXPECT_EQ(stats.truth_unknown_item, 2u);
  EXPECT_EQ(stats.truth_unknown_claim, 3u);
  // The plain overload reports no truth.
  EXPECT_FALSE(ComputeStats(db).has_truth);
}

}  // namespace
}  // namespace veritas
