// Tests of the deterministic fault injector — the foundation every
// robustness scenario in the suite is built on, so determinism here is
// load-bearing for all degraded-mode tests.
#include "util/fault_injection.h"

#include <gtest/gtest.h>

#include <vector>

namespace veritas {
namespace {

TEST(FaultInjectorTest, UnknownSiteNeverFaults) {
  FaultInjector injector(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.Next("nowhere").kind, FaultKind::kNone);
  }
  EXPECT_EQ(injector.calls("nowhere"), 0u);
}

TEST(FaultInjectorTest, FailFirstNThenRecovers) {
  FaultInjector injector(1);
  FaultPlan plan;
  plan.fail_first_n = 3;
  injector.SetPlan("oracle", plan);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(injector.Next("oracle").kind, FaultKind::kUnavailable);
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(injector.Next("oracle").kind, FaultKind::kNone);
  }
  EXPECT_EQ(injector.calls("oracle"), 13u);
  EXPECT_EQ(injector.faults("oracle"), 3u);
}

TEST(FaultInjectorTest, FailEveryKthCall) {
  FaultInjector injector(1);
  FaultPlan plan;
  plan.fail_every_k = 5;
  plan.kind = FaultKind::kTimeout;
  injector.SetPlan("oracle", plan);
  for (int call = 1; call <= 20; ++call) {
    const FaultOutcome outcome = injector.Next("oracle");
    if (call % 5 == 0) {
      EXPECT_EQ(outcome.kind, FaultKind::kTimeout) << "call " << call;
    } else {
      EXPECT_EQ(outcome.kind, FaultKind::kNone) << "call " << call;
    }
  }
  EXPECT_EQ(injector.faults("oracle"), 4u);
}

TEST(FaultInjectorTest, ProbabilityPlanTriggersAtApproximateRate) {
  FaultInjector injector(42);
  FaultPlan plan;
  plan.probability = 0.3;
  injector.SetPlan("oracle", plan);
  const int n = 2000;
  int faults = 0;
  for (int i = 0; i < n; ++i) {
    if (injector.Next("oracle").kind != FaultKind::kNone) ++faults;
  }
  EXPECT_GT(faults, n * 0.25);
  EXPECT_LT(faults, n * 0.35);
}

TEST(FaultInjectorTest, DeterministicUnderSameSeed) {
  FaultPlan plan;
  plan.probability = 0.5;
  FaultInjector a(7), b(7);
  a.SetPlan("oracle", plan);
  b.SetPlan("oracle", plan);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Next("oracle").kind, b.Next("oracle").kind) << "call " << i;
  }
}

TEST(FaultInjectorTest, SitesHaveIndependentStreams) {
  FaultPlan plan;
  plan.probability = 0.5;
  // Same plans registered in different orders must not change either
  // site's stream (per-site seeds derive from the site name, not order).
  FaultInjector a(7), b(7);
  a.SetPlan("x", plan);
  a.SetPlan("y", plan);
  b.SetPlan("y", plan);
  b.SetPlan("x", plan);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next("x").kind, b.Next("x").kind);
    EXPECT_EQ(a.Next("y").kind, b.Next("y").kind);
  }
}

TEST(FaultInjectorTest, LatencySpikesCanBeSlowSuccesses) {
  FaultInjector injector(1);
  FaultPlan plan;
  plan.kind = FaultKind::kNone;  // Pure latency spike.
  plan.probability = 1.0;
  plan.latency_seconds = 0.25;
  injector.SetPlan("oracle", plan);
  const FaultOutcome outcome = injector.Next("oracle");
  EXPECT_EQ(outcome.kind, FaultKind::kNone);
  EXPECT_DOUBLE_EQ(outcome.latency_seconds, 0.25);
  EXPECT_EQ(injector.faults("oracle"), 0u);  // A spike is not a fault.
}

TEST(FaultInjectorTest, ResetRewindsCountersAndStreams) {
  FaultPlan plan;
  plan.probability = 0.5;
  FaultInjector injector(3);
  injector.SetPlan("oracle", plan);
  std::vector<FaultKind> first;
  for (int i = 0; i < 50; ++i) first.push_back(injector.Next("oracle").kind);
  injector.Reset();
  EXPECT_EQ(injector.calls("oracle"), 0u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(injector.Next("oracle").kind, first[i]) << "call " << i;
  }
}

TEST(FaultInjectorTest, SerializeRestoreContinuesTheExactStream) {
  FaultPlan plan;
  plan.probability = 0.4;
  plan.fail_every_k = 7;
  FaultInjector original(11);
  original.SetPlan("oracle", plan);
  for (int i = 0; i < 13; ++i) original.Next("oracle");
  const std::string state = original.SerializeState();

  FaultInjector resumed(11);
  resumed.SetPlan("oracle", plan);
  ASSERT_TRUE(resumed.RestoreState(state).ok());
  EXPECT_EQ(resumed.calls("oracle"), 13u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(resumed.Next("oracle").kind, original.Next("oracle").kind)
        << "call " << i;
  }
}

TEST(FaultInjectorTest, RestoreRejectsUnknownSitesAndGarbage) {
  FaultInjector injector(1);
  injector.SetPlan("oracle", FaultPlan{});
  EXPECT_EQ(injector.RestoreState("garbage").code(),
            StatusCode::kInvalidArgument);
  FaultInjector other(1);
  other.SetPlan("elsewhere", FaultPlan{});
  EXPECT_EQ(other.RestoreState(injector.SerializeState()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(FaultPlanParseTest, BareNumberIsProbability) {
  const auto plan = ParseFaultPlan("0.3");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->probability, 0.3);
  EXPECT_EQ(plan->kind, FaultKind::kUnavailable);
}

TEST(FaultPlanParseTest, KeyValueSpec) {
  const auto plan =
      ParseFaultPlan("prob=0.2,kind=timeout,latency=0.05,first=2,every=9");
  ASSERT_TRUE(plan.ok());
  EXPECT_DOUBLE_EQ(plan->probability, 0.2);
  EXPECT_EQ(plan->kind, FaultKind::kTimeout);
  EXPECT_DOUBLE_EQ(plan->latency_seconds, 0.05);
  EXPECT_EQ(plan->fail_first_n, 2u);
  EXPECT_EQ(plan->fail_every_k, 9u);
}

TEST(FaultPlanParseTest, RejectsBadSpecs) {
  EXPECT_FALSE(ParseFaultPlan("").ok());
  EXPECT_FALSE(ParseFaultPlan("prob=abc").ok());
  EXPECT_FALSE(ParseFaultPlan("prob=1.5").ok());
  EXPECT_FALSE(ParseFaultPlan("kind=meltdown").ok());
  EXPECT_FALSE(ParseFaultPlan("volume=11").ok());
  EXPECT_FALSE(ParseFaultPlan("latency=-1").ok());
}

TEST(FaultPlanParseTest, KindNamesRoundTrip) {
  EXPECT_STREQ(FaultKindName(FaultKind::kNone), "none");
  EXPECT_STREQ(FaultKindName(FaultKind::kUnavailable), "unavailable");
  EXPECT_STREQ(FaultKindName(FaultKind::kTimeout), "timeout");
  EXPECT_STREQ(FaultKindName(FaultKind::kAbstain), "abstain");
}

}  // namespace
}  // namespace veritas
