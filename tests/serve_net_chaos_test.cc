// End-to-end drills of the network front end (net/server.h, net/client.h,
// net/chaos_proxy.h; DESIGN.md §5i): request round trips and idempotent
// re-submits, typed overload shedding at both layers, the no-silent-loss
// partition under an actively hostile link, drain -> recover resumability,
// and the bit-identical-to-in-process contract for completed sessions.
// Real accept/handler/pump threads run here, so the file lives in the
// concurrency suite and runs under TSan in CI.
#include <dirent.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "net/chaos_proxy.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/session_supervisor.h"

namespace veritas {
namespace {

std::string UniqueDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  const auto ids = ListSessionManifests(dir);
  if (ids.ok()) {
    for (const std::string& id : *ids) {
      std::remove(SessionManifestPath(dir, id).c_str());
      const std::string ckpt = SessionCheckpointPath(dir, id);
      std::remove(ckpt.c_str());
      std::remove((ckpt + ".1").c_str());
      std::remove((ckpt + ".2").c_str());
    }
  }
  return dir;
}

/// Names of leftover atomic-write temporaries — the durable-file layer
/// guarantees zero of these survive, whatever the chaos plan did.
std::vector<std::string> TmpLitter(const std::string& dir) {
  std::vector<std::string> litter;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return litter;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.find(".tmp.") != std::string::npos) litter.push_back(name);
  }
  ::closedir(d);
  return litter;
}

net::NetAddress Loopback() {
  auto address = net::ParseNetAddress("127.0.0.1:0");
  EXPECT_TRUE(address.ok());
  return *address;
}

double CounterValue(const MetricsSnapshot& snap, const std::string& name) {
  for (const auto& [counter_name, value] : snap.counters) {
    if (counter_name == name) return static_cast<double>(value);
  }
  return 0.0;
}

class NetServeTest : public ::testing::Test {
 protected:
  NetServeTest() {
    DenseConfig config;
    config.num_items = 40;
    config.num_sources = 8;
    config.density = 0.5;
    config.seed = 11;
    data_ = GenerateDense(config);
  }

  SupervisorOptions SupOptions(const std::string& dir) {
    SupervisorOptions options;
    options.sessions_dir = UniqueDir(dir);
    options.max_concurrent_sessions = 2;
    options.max_queue_depth = 16;
    return options;
  }

  SessionSpec QuickSpec(const std::string& id) {
    SessionSpec spec;
    spec.id = id;
    spec.strategy = "qbc";
    spec.model = "accu";
    spec.max_validations = 4;
    return spec;
  }

  net::NetClientOptions ClientOptions(const net::NetAddress& address) {
    net::NetClientOptions options;
    options.address = address;
    options.request_timeout_ms = 5000;
    options.max_attempts = 6;
    options.initial_backoff_seconds = 0.005;
    return options;
  }

  SyntheticDataset data_;
};

TEST_F(NetServeTest, HealthSubmitReportRoundTrip) {
  SessionSupervisor supervisor(data_.db, data_.truth,
                               SupOptions("net_roundtrip"));
  ASSERT_TRUE(supervisor.Start().ok());
  net::NetServerOptions server_options;
  server_options.address = Loopback();
  net::NetServer server(&supervisor, server_options);
  ASSERT_TRUE(server.Start().ok());

  net::NetClient client(ClientOptions(server.bound_address()));
  auto health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_TRUE(health->status.ok());
  EXPECT_EQ(health->fields.at("ready"), "1");

  auto result = client.RunRemoteSession(QuickSpec("rt1"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, "completed");
  EXPECT_TRUE(result->session_status.ok());
  EXPECT_EQ(result->num_validated, 4u);
  EXPECT_EQ(result->resubmits, 0u);

  // Per-tenant observability: the session's steps were recorded under its
  // own id, and the metrics request exposes them remotely.
  auto metrics = client.MetricsJson();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->find("session.step_seconds.rt1"), std::string::npos);
  EXPECT_NE(metrics->find("net.accepted"), std::string::npos);

  server.Stop();
  supervisor.Shutdown();
}

TEST_F(NetServeTest, ResubmitSameIdIsIdempotent) {
  SessionSupervisor supervisor(data_.db, data_.truth,
                               SupOptions("net_idempotent"));
  ASSERT_TRUE(supervisor.Start().ok());
  net::NetServerOptions server_options;
  server_options.address = Loopback();
  net::NetServer server(&supervisor, server_options);
  ASSERT_TRUE(server.Start().ok());
  net::NetClient client(ClientOptions(server.bound_address()));

  const SessionSpec spec = QuickSpec("dup");
  auto first = client.RunRemoteSession(spec);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->outcome, "completed");

  // A blind re-send of the same id answers from the report log — no second
  // run is admitted.
  auto again = client.Submit(spec);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->status.ok());
  EXPECT_EQ(again->fields.at("state"), "done");
  EXPECT_EQ(again->fields.at("deduped"), "1");
  EXPECT_EQ(again->fields.at("outcome"), "completed");

  std::size_t runs = 0;
  for (const SessionReport& report : supervisor.Reports()) {
    if (report.id == "dup") ++runs;
  }
  EXPECT_EQ(runs, 1u);

  server.Stop();
  supervisor.Shutdown();
}

TEST_F(NetServeTest, SupervisorShedArrivesAsTypedResourceExhausted) {
  SupervisorOptions options = SupOptions("net_shed");
  options.max_concurrent_sessions = 1;
  options.max_queue_depth = 1;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  net::NetServerOptions server_options;
  server_options.address = Loopback();
  net::NetServer server(&supervisor, server_options);
  ASSERT_TRUE(server.Start().ok());
  net::NetClient client(ClientOptions(server.bound_address()));

  // Occupy the only worker with a slow session, fill the depth-1 queue,
  // then overflow: the rejection must be the supervisor's typed shed,
  // transported untouched.
  SessionSpec slow = QuickSpec("slow");
  slow.stall_seconds = 0.2;
  slow.max_validations = 2;
  auto admitted = client.Submit(slow);
  ASSERT_TRUE(admitted.ok()) << admitted.status().ToString();
  ASSERT_TRUE(admitted->status.ok()) << admitted->status.ToString();
  while (supervisor.running_sessions() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  auto filler = client.Submit(QuickSpec("filler"));
  ASSERT_TRUE(filler.ok()) << filler.status().ToString();
  ASSERT_TRUE(filler->status.ok()) << filler->status.ToString();

  auto shed = client.Submit(QuickSpec("overflow"));
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status.code(), StatusCode::kResourceExhausted)
      << shed->status.ToString();

  supervisor.Drain();
  server.Stop();
  supervisor.Shutdown();
}

TEST_F(NetServeTest, ConnectionShedIsTypedToo) {
  SessionSupervisor supervisor(data_.db, data_.truth,
                               SupOptions("net_conn_shed"));
  ASSERT_TRUE(supervisor.Start().ok());
  net::NetServerOptions server_options;
  server_options.address = Loopback();
  server_options.max_connections = 1;
  net::NetServer server(&supervisor, server_options);
  ASSERT_TRUE(server.Start().ok());

  // Park one connection so the next lands in the over-capacity tier, which
  // answers a typed ResourceExhausted instead of hanging or dropping.
  net::NetClientOptions parked_options = ClientOptions(server.bound_address());
  auto parked =
      net::Connect(parked_options.address, Deadline::AfterMillis(2000));
  ASSERT_TRUE(parked.ok()) << parked.status().ToString();

  net::NetClientOptions one_shot = ClientOptions(server.bound_address());
  one_shot.max_attempts = 1;  // A retry could land after the parked conn dies.
  net::NetClient client(one_shot);
  auto response = client.Health("probe");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status.code(), StatusCode::kResourceExhausted)
      << response->status.ToString();

  net::CloseFd(*parked);
  server.Stop();
  supervisor.Shutdown();
}

TEST_F(NetServeTest, ChaosDrillHasNoSilentLoss) {
  const auto before = MetricsRegistry::Global().Snapshot();
  SupervisorOptions sup_options = SupOptions("net_chaos");
  SessionSupervisor supervisor(data_.db, data_.truth, sup_options);
  ASSERT_TRUE(supervisor.Start().ok());
  net::NetServerOptions server_options;
  server_options.address = Loopback();
  server_options.request_timeout_ms = 2000;
  net::NetServer server(&supervisor, server_options);
  ASSERT_TRUE(server.Start().ok());

  net::ChaosProxyOptions proxy_options;
  proxy_options.listen = Loopback();
  proxy_options.upstream = server.bound_address();
  proxy_options.seed = 1234;
  proxy_options.chunk_bytes = 64;  // Many chunks per frame = many fault rolls.
  proxy_options.corrupt.probability = 0.05;
  proxy_options.drop.probability = 0.02;
  proxy_options.truncate.probability = 0.02;
  proxy_options.half_close.probability = 0.01;
  net::ChaosProxy proxy(proxy_options);
  ASSERT_TRUE(proxy.Start().ok());

  constexpr int kSessions = 12;
  std::mutex mu;
  std::map<std::string, int> tally;  // outcome/typed-error -> count
  std::vector<std::thread> runners;
  runners.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    runners.emplace_back([&, i] {
      net::NetClientOptions options = ClientOptions(proxy.bound_address());
      options.max_attempts = 8;
      options.overall_deadline = Deadline::AfterMillis(30'000);
      net::NetClient client(options);
      const auto result =
          client.RunRemoteSession(QuickSpec("c" + std::to_string(i)));
      std::lock_guard<std::mutex> lock(mu);
      if (result.ok()) {
        tally[result->outcome] += 1;
      } else {
        tally["error:" + std::string(StatusCodeName(result.status().code()))] +=
            1;
      }
    });
  }
  for (std::thread& t : runners) t.join();

  // The partition: every session is accounted for — a terminal outcome or a
  // typed client error; nothing vanished.
  int accounted = 0;
  for (const auto& [bucket, count] : tally) {
    accounted += count;
    SCOPED_TRACE(bucket);
    EXPECT_GT(count, 0);
  }
  EXPECT_EQ(accounted, kSessions);
  // Under this plan most sessions should actually complete (retries absorb
  // the chaos); at least one must.
  EXPECT_GE(tally["completed"], 1);

  // Completed remote sessions are bit-identical to in-process runs of the
  // same specs: chaos may kill transport attempts but never perturbs what
  // the session computed.
  SupervisorOptions local_options = SupOptions("net_chaos_local");
  SessionSupervisor local(data_.db, data_.truth, local_options);
  ASSERT_TRUE(local.Start().ok());
  for (int i = 0; i < kSessions; ++i) {
    ASSERT_TRUE(local.Submit(QuickSpec("c" + std::to_string(i))).ok());
  }
  local.Drain();
  for (const SessionReport& remote : supervisor.Reports()) {
    if (remote.outcome != SessionOutcome::kCompleted) continue;
    SessionReport reference;
    ASSERT_TRUE(local.FindReport(remote.id, &reference)) << remote.id;
    EXPECT_EQ(remote.num_validated, reference.num_validated) << remote.id;
    EXPECT_EQ(remote.rounds, reference.rounds) << remote.id;
    EXPECT_EQ(remote.status.code(), reference.status.code()) << remote.id;
  }
  local.Shutdown();

  // Corruption was both injected and *detected* — the CRC framing turned
  // flipped bits into typed, retried failures.
  const auto after = MetricsRegistry::Global().Snapshot();
  const double injected = CounterValue(after, "chaos.corrupt") -
                          CounterValue(before, "chaos.corrupt");
  const double detected = CounterValue(after, "net.frames_corrupt") -
                          CounterValue(before, "net.frames_corrupt");
  EXPECT_GT(injected, 0.0);
  EXPECT_GT(detected, 0.0);

  // Chaos or not, the durable layer leaves no atomic-write litter behind.
  EXPECT_TRUE(TmpLitter(sup_options.sessions_dir).empty());

  proxy.Stop();
  server.Stop();
  supervisor.Shutdown();
}

TEST_F(NetServeTest, DrainLeavesQueuedSessionsRecoverable) {
  SupervisorOptions options = SupOptions("net_drain");
  options.max_concurrent_sessions = 1;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  net::NetServerOptions server_options;
  server_options.address = Loopback();
  net::NetServer server(&supervisor, server_options);
  ASSERT_TRUE(server.Start().ok());
  net::NetClient client(ClientOptions(server.bound_address()));

  // One slow runner occupies the worker; two more queue behind it.
  SessionSpec running = QuickSpec("drain_running");
  running.stall_seconds = 0.1;
  ASSERT_TRUE(client.Submit(running).ok());
  auto q1 = client.Submit(QuickSpec("drain_q1"));
  auto q2 = client.Submit(QuickSpec("drain_q2"));
  ASSERT_TRUE(q1.ok() && q1->status.ok());
  ASSERT_TRUE(q2.ok() && q2->status.ok());

  auto drain = client.DrainServer();
  ASSERT_TRUE(drain.ok()) << drain.status().ToString();
  EXPECT_EQ(drain->fields.at("draining"), "1");

  // Draining daemons reject new work with a typed Unavailable but still
  // answer health (observability of the wind-down).
  auto rejected = client.Submit(QuickSpec("too_late"));
  ASSERT_TRUE(rejected.ok()) << rejected.status().ToString();
  EXPECT_EQ(rejected->status.code(), StatusCode::kUnavailable)
      << rejected->status.ToString();
  auto health = client.Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->fields.at("ready"), "0");

  while (supervisor.running_sessions() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  server.Stop();
  supervisor.Shutdown();

  // The queued sessions' manifests survived the drain...
  auto survivors = ListSessionManifests(options.sessions_dir);
  ASSERT_TRUE(survivors.ok());
  int queued_manifests = 0;
  for (const std::string& id : *survivors) {
    if (id == "drain_q1" || id == "drain_q2") ++queued_manifests;
  }
  EXPECT_EQ(queued_manifests, 2);

  // ...and a restarted supervisor recovers and finishes them.
  SessionSupervisor restarted(data_.db, data_.truth, options);
  ASSERT_TRUE(restarted.Start().ok());
  EXPECT_GE(restarted.RecoverSessions(), 2u);
  restarted.Drain();
  for (const char* id : {"drain_q1", "drain_q2"}) {
    SessionReport report;
    ASSERT_TRUE(restarted.FindReport(id, &report)) << id;
    EXPECT_EQ(report.outcome, SessionOutcome::kCompleted) << id;
    EXPECT_EQ(report.num_validated, 4u) << id;
  }
  restarted.Shutdown();
  EXPECT_TRUE(TmpLitter(options.sessions_dir).empty());
}

}  // namespace
}  // namespace veritas
