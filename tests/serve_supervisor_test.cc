// SessionSupervisor behavior under load: typed admission control, budget
// eviction + bit-exact resume through the recovery sweep, watchdog
// escalation on hung sessions, and lifecycle/cleanup invariants. These
// tests run real worker/watchdog threads, so they carry the `concurrency`
// ctest label and run under the TSan preset in CI.
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "obs/metrics.h"
#include "serve/session_supervisor.h"

namespace veritas {
namespace {

std::string UniqueDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  // Fresh per test: remove any stale session files from earlier runs.
  const auto ids = ListSessionManifests(dir);
  if (ids.ok()) {
    for (const std::string& id : *ids) {
      std::remove(SessionManifestPath(dir, id).c_str());
      const std::string ckpt = SessionCheckpointPath(dir, id);
      std::remove(ckpt.c_str());
      std::remove((ckpt + ".1").c_str());
      std::remove((ckpt + ".2").c_str());
    }
  }
  return dir;
}

bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

class SupervisorTest : public ::testing::Test {
 protected:
  SupervisorTest() {
    DenseConfig config;
    config.num_items = 40;
    config.num_sources = 8;
    config.density = 0.5;
    config.seed = 11;
    data_ = GenerateDense(config);
  }

  SessionSpec QuickSpec(const std::string& id) {
    SessionSpec spec;
    spec.id = id;
    spec.strategy = "qbc";
    spec.model = "accu";
    spec.max_validations = 4;
    return spec;
  }

  SyntheticDataset data_;
};

TEST_F(SupervisorTest, SubmitBeforeStartIsFailedPrecondition) {
  SupervisorOptions options;
  options.sessions_dir = UniqueDir("sup_prestart");
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  const Status s = supervisor.Submit(QuickSpec("early"));
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST_F(SupervisorTest, StartRequiresASessionsDir) {
  SupervisorOptions options;  // sessions_dir empty.
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  EXPECT_EQ(supervisor.Start().code(), StatusCode::kInvalidArgument);
}

TEST_F(SupervisorTest, RejectsBadAndDuplicateIds) {
  SupervisorOptions options;
  options.sessions_dir = UniqueDir("sup_ids");
  options.max_concurrent_sessions = 1;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  EXPECT_EQ(supervisor.Submit(QuickSpec("bad id")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(supervisor.Submit(QuickSpec("../escape")).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(supervisor.Submit(QuickSpec("dup")).ok());
  // Queued or running either way: a second "dup" must be rejected.
  const Status again = supervisor.Submit(QuickSpec("dup"));
  if (!again.ok()) {  // It may already have completed on a fast machine.
    EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  }
  supervisor.Drain();
}

TEST_F(SupervisorTest, ShedsPastTheQueueDepthWithATypedStatus) {
  SupervisorOptions options;
  options.sessions_dir = UniqueDir("sup_shed");
  options.max_concurrent_sessions = 1;
  options.max_queue_depth = 2;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  // A hung session occupies the single worker so the queue really fills.
  SessionSpec plug = QuickSpec("plug");
  plug.stall_seconds = 30.0;
  plug.deadline_ms = 300;
  ASSERT_TRUE(supervisor.Submit(plug).ok());
  std::size_t ok = 0, shed = 0;
  for (int i = 0; i < 6; ++i) {
    const Status s = supervisor.Submit(QuickSpec("q" + std::to_string(i)));
    if (s.ok()) {
      ++ok;
    } else {
      ASSERT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
      EXPECT_NE(s.message().find("shed"), std::string::npos) << s.ToString();
      ++shed;
    }
  }
  EXPECT_GE(shed, 4u);  // Depth 2: at most 2 of the 6 can be admitted.
  EXPECT_LE(ok, 2u);
  supervisor.Drain();
  supervisor.Shutdown();
  EXPECT_EQ(supervisor.Submit(QuickSpec("late")).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(SupervisorTest, CompletedSessionCleansUpItsArtifacts) {
  const std::string dir = UniqueDir("sup_cleanup");
  SupervisorOptions options;
  options.sessions_dir = dir;
  options.keep_traces = true;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  ASSERT_TRUE(supervisor.Submit(QuickSpec("clean")).ok());
  supervisor.Drain();
  SessionReport report;
  ASSERT_TRUE(supervisor.FindReport("clean", &report));
  EXPECT_EQ(report.outcome, SessionOutcome::kCompleted);
  EXPECT_TRUE(report.status.ok()) << report.status;
  EXPECT_EQ(report.num_validated, 4u);
  EXPECT_EQ(report.trace.steps.size(), 4u);
  EXPECT_FALSE(report.resumed);
  // Terminal success leaves no durable state behind.
  EXPECT_FALSE(Exists(SessionManifestPath(dir, "clean")));
  EXPECT_FALSE(Exists(SessionCheckpointPath(dir, "clean")));
}

TEST_F(SupervisorTest, UnknownModelFailsTheSessionWithoutRecoveryLoop) {
  const std::string dir = UniqueDir("sup_badmodel");
  SupervisorOptions options;
  options.sessions_dir = dir;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  SessionSpec spec = QuickSpec("broken");
  spec.model = "no_such_model";
  ASSERT_TRUE(supervisor.Submit(spec).ok());
  supervisor.Drain();
  SessionReport report;
  ASSERT_TRUE(supervisor.FindReport("broken", &report));
  EXPECT_EQ(report.outcome, SessionOutcome::kFailed);
  EXPECT_FALSE(report.status.ok());
  // The manifest is gone, so a recovery sweep cannot re-run the failure.
  EXPECT_FALSE(Exists(SessionManifestPath(dir, "broken")));
  EXPECT_EQ(supervisor.RecoverSessions(), 0u);
}

// The tentpole acceptance scenario: a budget-evicted session, resumed via
// the recovery sweep (possibly several times), lands bit-exactly on the
// uninterrupted run's result.
TEST_F(SupervisorTest, EvictedSessionRecoversBitExactly) {
  SessionSpec base = QuickSpec("target");
  base.max_validations = 8;

  // Reference: the same spec run uninterrupted (no budget).
  const std::string ref_dir = UniqueDir("sup_bitexact_ref");
  SessionReport reference;
  {
    SupervisorOptions options;
    options.sessions_dir = ref_dir;
    options.keep_traces = true;
    SessionSupervisor supervisor(data_.db, data_.truth, options);
    ASSERT_TRUE(supervisor.Start().ok());
    ASSERT_TRUE(supervisor.Submit(base).ok());
    supervisor.Drain();
    ASSERT_TRUE(supervisor.FindReport("target", &reference));
    ASSERT_EQ(reference.outcome, SessionOutcome::kCompleted);
  }

  // Interrupted: 3 rounds per admission, evicted + recovered until done.
  const std::string dir = UniqueDir("sup_bitexact");
  SupervisorOptions options;
  options.sessions_dir = dir;
  options.keep_traces = true;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  SessionSpec budgeted = base;
  budgeted.budget.max_rounds_per_run = 3;
  ASSERT_TRUE(supervisor.Submit(budgeted).ok());
  supervisor.Drain();

  SessionReport evicted;
  ASSERT_TRUE(supervisor.FindReport("target", &evicted));
  ASSERT_EQ(evicted.outcome, SessionOutcome::kEvicted);
  EXPECT_EQ(evicted.status.code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(Exists(SessionManifestPath(dir, "target")));
  EXPECT_TRUE(Exists(SessionCheckpointPath(dir, "target")));

  std::size_t sweeps = 0;
  while (supervisor.RecoverSessions() > 0) {
    supervisor.Drain();
    ASSERT_LT(++sweeps, 10u) << "recovery did not converge";
  }
  SessionReport final_report;
  ASSERT_TRUE(supervisor.FindReport("target", &final_report));
  ASSERT_EQ(final_report.outcome, SessionOutcome::kCompleted)
      << final_report.status;
  EXPECT_TRUE(final_report.resumed);
  EXPECT_TRUE(final_report.recovered);
  ASSERT_GE(sweeps, 2u);  // 8 rounds at 3 per admission: 2 recoveries.

  // Bit-exact: the stitched-together run equals the uninterrupted one.
  const SessionTrace& a = reference.trace;
  const SessionTrace& b = final_report.trace;
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (std::size_t s = 0; s < a.steps.size(); ++s) {
    SCOPED_TRACE("step " + std::to_string(s));
    EXPECT_EQ(a.steps[s].items, b.steps[s].items);
    EXPECT_EQ(a.steps[s].distance, b.steps[s].distance);
    EXPECT_EQ(a.steps[s].uncertainty, b.steps[s].uncertainty);
  }
  EXPECT_EQ(a.final_fusion.accuracies(), b.final_fusion.accuracies());
  for (ItemId i = 0; i < a.final_fusion.num_items(); ++i) {
    EXPECT_EQ(a.final_fusion.item_probs(i), b.final_fusion.item_probs(i))
        << "item " << i;
  }
  // Completion cleaned the durable state.
  EXPECT_FALSE(Exists(SessionManifestPath(dir, "target")));
}

// Watchdog contract: a session whose oracle hangs past its deadline is
// escalated graceful -> hard, terminates as kCancelled, and the escalations
// are visible in the obs counters.
TEST_F(SupervisorTest, WatchdogCancelsAHungSession) {
  MetricsRegistry::Global().Reset();
  const std::string dir = UniqueDir("sup_watchdog");
  SupervisorOptions options;
  options.sessions_dir = dir;
  options.watchdog_poll = std::chrono::milliseconds(5);
  options.watchdog_grace = std::chrono::milliseconds(20);
  options.watchdog_hard_grace = std::chrono::milliseconds(40);
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  SessionSpec hung = QuickSpec("hung");
  hung.stall_seconds = 60.0;  // Would block for a minute without the watchdog.
  hung.deadline_ms = 50;
  ASSERT_TRUE(supervisor.Submit(hung).ok());
  supervisor.Drain();

  SessionReport report;
  ASSERT_TRUE(supervisor.FindReport("hung", &report));
  EXPECT_EQ(report.outcome, SessionOutcome::kCancelled);
  EXPECT_EQ(report.status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_LT(report.run_seconds, 10.0);  // Far less than the 60s stall.
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.Value("supervisor.watchdog_graceful"), 1.0);
  EXPECT_GE(snap.Value("supervisor.watchdog_hard"), 1.0);
  // Cancelled sessions stay recoverable.
  EXPECT_TRUE(Exists(SessionManifestPath(dir, "hung")));
}

TEST_F(SupervisorTest, ManySessionsAcrossWorkersAllComplete) {
  const std::string dir = UniqueDir("sup_fleet");
  SupervisorOptions options;
  options.sessions_dir = dir;
  options.max_concurrent_sessions = 4;
  options.max_queue_depth = 64;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  const int kFleet = 12;
  for (int i = 0; i < kFleet; ++i) {
    SessionSpec spec = QuickSpec("fleet" + std::to_string(i));
    spec.seed = 100 + i;
    ASSERT_TRUE(supervisor.Submit(spec).ok());
  }
  supervisor.Drain();
  EXPECT_EQ(supervisor.running_sessions(), 0u);
  EXPECT_EQ(supervisor.queued_sessions(), 0u);
  const auto reports = supervisor.Reports();
  ASSERT_EQ(reports.size(), static_cast<std::size_t>(kFleet));
  for (const SessionReport& report : reports) {
    EXPECT_EQ(report.outcome, SessionOutcome::kCompleted) << report.id;
    EXPECT_EQ(report.num_validated, 4u) << report.id;
  }
  // Identical specs except the seed: every session ran independently (no
  // cross-session state bleed through the shared snapshot).
  EXPECT_EQ(supervisor.RecoverSessions(), 0u);
}

TEST_F(SupervisorTest, OutcomeNamesAreStable) {
  EXPECT_STREQ(SessionOutcomeName(SessionOutcome::kCompleted), "completed");
  EXPECT_STREQ(SessionOutcomeName(SessionOutcome::kEvicted), "evicted");
  EXPECT_STREQ(SessionOutcomeName(SessionOutcome::kCancelled), "cancelled");
  EXPECT_STREQ(SessionOutcomeName(SessionOutcome::kFailed), "failed");
}

}  // namespace
}  // namespace veritas
