// Tests of the wire layer beneath veritas_serve (net/frame.h, net/io.h,
// net/protocol.h; DESIGN.md §5i): CRC-32C framing against single-bit
// corruption and truncation, short-read/short-write and EINTR behavior of
// the deadline-aware socket I/O, and protocol encode/decode round trips
// including the value escaping the manifest codec shares. Lives in the
// concurrency suite so the dribble-writer/reader pairs also run under TSan.
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/frame.h"
#include "net/io.h"
#include "net/protocol.h"
#include "util/cancellation.h"

namespace veritas {
namespace net {
namespace {

// ---------- Frame encode/decode ----------

TEST(FrameTest, RoundTrip) {
  const std::string payload = "hello frame";
  const std::string wire = EncodeFrame(FrameType::kRequest, payload);
  ASSERT_EQ(wire.size(), kFrameHeaderSize + payload.size());
  auto header = DecodeFrameHeader(
      std::string_view(wire).substr(0, kFrameHeaderSize), kMaxFramePayload);
  ASSERT_TRUE(header.ok()) << header.status().ToString();
  EXPECT_EQ(header->type, FrameType::kRequest);
  EXPECT_EQ(header->payload_size, payload.size());
  EXPECT_TRUE(
      VerifyFramePayload(*header, wire.substr(kFrameHeaderSize)).ok());
}

TEST(FrameTest, EmptyPayloadRoundTrip) {
  const std::string wire = EncodeFrame(FrameType::kResponse, "");
  ASSERT_EQ(wire.size(), kFrameHeaderSize);
  auto header = DecodeFrameHeader(wire, kMaxFramePayload);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header->type, FrameType::kResponse);
  EXPECT_EQ(header->payload_size, 0u);
  EXPECT_TRUE(VerifyFramePayload(*header, "").ok());
}

TEST(FrameTest, EveryHeaderBitFlipIsDetected) {
  // A single flipped bit anywhere in the 20-byte header — magic, type,
  // reserved, length, payload CRC or the header CRC itself — must come back
  // as a typed corruption error, never as a garbage-length accept.
  const std::string wire = EncodeFrame(FrameType::kRequest, "payload bytes");
  for (std::size_t byte = 0; byte < kFrameHeaderSize; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = wire.substr(0, kFrameHeaderSize);
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      auto header = DecodeFrameHeader(mutated, kMaxFramePayload);
      ASSERT_FALSE(header.ok()) << "byte " << byte << " bit " << bit;
      EXPECT_TRUE(IsFrameCorrupt(header.status()))
          << header.status().ToString();
    }
  }
}

TEST(FrameTest, PayloadBitFlipIsDetected) {
  const std::string payload(1024, 'x');
  const std::string wire = EncodeFrame(FrameType::kRequest, payload);
  auto header = DecodeFrameHeader(
      std::string_view(wire).substr(0, kFrameHeaderSize), kMaxFramePayload);
  ASSERT_TRUE(header.ok());
  std::string corrupted = wire.substr(kFrameHeaderSize);
  corrupted[512] ^= 0x01;
  const Status status = VerifyFramePayload(*header, corrupted);
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(IsFrameCorrupt(status));
}

TEST(FrameTest, OversizePayloadIsRejectedAtTheHeader) {
  const std::string wire = EncodeFrame(FrameType::kRequest,
                                       std::string(4096, 'y'));
  auto header = DecodeFrameHeader(
      std::string_view(wire).substr(0, kFrameHeaderSize), /*max_payload=*/512);
  ASSERT_FALSE(header.ok());
  EXPECT_TRUE(IsFrameCorrupt(header.status()));
}

// ---------- Socket I/O: short reads/writes, EINTR, truncation ----------

struct SocketPair {
  SocketPair() {
    int fds[2] = {-1, -1};
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    a = fds[0];
    b = fds[1];
  }
  ~SocketPair() {
    CloseFd(a);
    CloseFd(b);
  }
  int a = -1;
  int b = -1;
};

TEST(SocketIoTest, SendRecvRoundTrip) {
  SocketPair pair;
  const std::string payload = "request body";
  ASSERT_TRUE(SendFrame(pair.a, FrameType::kRequest, payload,
                        Deadline::AfterMillis(2000))
                  .ok());
  auto frame = RecvFrame(pair.b, Deadline::AfterMillis(2000), kMaxFramePayload);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->type, FrameType::kRequest);
  EXPECT_EQ(frame->payload, payload);
}

TEST(SocketIoTest, DribbledWriteStillAssemblesOneFrame) {
  // The peer writes the frame one byte at a time with pauses: every read on
  // the receiving side is short, so RecvFrame's ReadFull loop must keep
  // re-polling until the full header and payload arrive.
  SocketPair pair;
  const std::string wire = EncodeFrame(FrameType::kResponse, "dribbled");
  std::thread writer([&] {
    for (char c : wire) {
      ASSERT_EQ(::send(pair.a, &c, 1, 0), 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  auto frame = RecvFrame(pair.b, Deadline::AfterMillis(5000), kMaxFramePayload);
  writer.join();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload, "dribbled");
}

TEST(SocketIoTest, LargeFrameSurvivesTinySocketBuffers) {
  // A payload far above SO_SNDBUF forces WriteFull into many partial
  // writes while the reader drains concurrently.
  SocketPair pair;
  const int small = 4096;
  ::setsockopt(pair.a, SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(pair.b, SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  std::string payload(1 << 20, '\0');
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 2654435761u);
  }
  std::thread writer([&] {
    ASSERT_TRUE(SendFrame(pair.a, FrameType::kRequest, payload,
                          Deadline::AfterMillis(10'000))
                    .ok());
  });
  auto frame =
      RecvFrame(pair.b, Deadline::AfterMillis(10'000), kMaxFramePayload);
  writer.join();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload, payload);
}

TEST(SocketIoTest, PeerCloseMidFrameIsUnavailable) {
  // Truncation: the peer dies after half the frame. The reader must get a
  // typed Unavailable, not hang and not return a partial frame.
  SocketPair pair;
  const std::string wire = EncodeFrame(FrameType::kRequest,
                                       std::string(256, 'z'));
  ASSERT_EQ(::send(pair.a, wire.data(), wire.size() / 2, 0),
            static_cast<ssize_t>(wire.size() / 2));
  CloseFd(pair.a);
  pair.a = -1;  // Destructor must not double-close.
  auto frame = RecvFrame(pair.b, Deadline::AfterMillis(2000), kMaxFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kUnavailable)
      << frame.status().ToString();
}

TEST(SocketIoTest, SilentPeerIsDeadlineExceeded) {
  SocketPair pair;
  auto frame = RecvFrame(pair.b, Deadline::AfterMillis(50), kMaxFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(SocketIoTest, WaitReadableLeavesTheStreamSynchronized) {
  SocketPair pair;
  EXPECT_EQ(WaitReadable(pair.b, Deadline::AfterMillis(30)).code(),
            StatusCode::kDeadlineExceeded);
  // Nothing was consumed: a frame sent now still parses.
  ASSERT_TRUE(SendFrame(pair.a, FrameType::kRequest, "late",
                        Deadline::AfterMillis(2000))
                  .ok());
  ASSERT_TRUE(WaitReadable(pair.b, Deadline::AfterMillis(2000)).ok());
  auto frame = RecvFrame(pair.b, Deadline::AfterMillis(2000), kMaxFramePayload);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->payload, "late");
}

TEST(SocketIoTest, CorruptBytesOnTheWireAreTyped) {
  SocketPair pair;
  std::string wire = EncodeFrame(FrameType::kRequest, "will be corrupted");
  wire[kFrameHeaderSize + 3] ^= 0x10;  // Payload corruption.
  ASSERT_EQ(::send(pair.a, wire.data(), wire.size(), 0),
            static_cast<ssize_t>(wire.size()));
  auto frame = RecvFrame(pair.b, Deadline::AfterMillis(2000), kMaxFramePayload);
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(IsFrameCorrupt(frame.status())) << frame.status().ToString();
}

void IgnoreSignal(int) {}

TEST(SocketIoTest, EintrDuringPollIsRetried) {
  // Pepper the blocked reader with signals (handler installed without
  // SA_RESTART, so poll really returns EINTR), then deliver the frame; the
  // read loops must absorb every interruption.
  struct sigaction action{};
  struct sigaction saved{};
  action.sa_handler = IgnoreSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // Deliberately no SA_RESTART.
  ASSERT_EQ(sigaction(SIGUSR1, &action, &saved), 0);

  SocketPair pair;
  const pthread_t self = pthread_self();
  std::thread pest([&] {
    for (int i = 0; i < 20; ++i) {
      pthread_kill(self, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(SendFrame(pair.a, FrameType::kResponse, "survived",
                          Deadline::AfterMillis(2000))
                    .ok());
  });
  auto frame = RecvFrame(pair.b, Deadline::AfterMillis(5000), kMaxFramePayload);
  pest.join();
  sigaction(SIGUSR1, &saved, nullptr);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_EQ(frame->payload, "survived");
}

// ---------- Addresses ----------

TEST(NetAddressTest, ParseRoundTrips) {
  auto tcp = ParseNetAddress("127.0.0.1:8080");
  ASSERT_TRUE(tcp.ok());
  EXPECT_FALSE(tcp->unix_domain);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 8080);
  EXPECT_EQ(tcp->ToString(), "127.0.0.1:8080");

  auto unix_addr = ParseNetAddress("unix:/tmp/veritas.sock");
  ASSERT_TRUE(unix_addr.ok());
  EXPECT_TRUE(unix_addr->unix_domain);
  EXPECT_EQ(unix_addr->path, "/tmp/veritas.sock");
  EXPECT_EQ(unix_addr->ToString(), "unix:/tmp/veritas.sock");
}

TEST(NetAddressTest, RejectsMalformed) {
  EXPECT_FALSE(ParseNetAddress("").ok());
  EXPECT_FALSE(ParseNetAddress("no-port").ok());
  EXPECT_FALSE(ParseNetAddress("host:notaport").ok());
  EXPECT_FALSE(ParseNetAddress("unix:").ok());
}

// ---------- Protocol messages ----------

SessionSpec TrickySpec() {
  SessionSpec spec;
  spec.id = "s-tricky";
  spec.strategy = "approx_meu";
  spec.model = "accu";
  spec.oracle = "perfect";
  spec.max_validations = 7;
  spec.batch_size = 3;
  spec.seed = 99;
  spec.deadline_ms = 1500;
  spec.flaky_plan = "prob=0.5,kind=unavailable";
  spec.retries = 2;
  spec.stall_seconds = 0.25;
  spec.use_delta_fusion = false;
  spec.threads = 4;
  return spec;
}

TEST(ProtocolTest, SubmitRequestRoundTrip) {
  NetRequest request;
  request.type = RequestType::kSubmit;
  request.request_id = "s-tricky";
  request.spec = TrickySpec();
  auto decoded = DecodeNetRequest(EncodeNetRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->type, RequestType::kSubmit);
  EXPECT_EQ(decoded->request_id, "s-tricky");
  // The wire spec must reproduce the manifest codec byte-for-byte — this is
  // what makes a recovered manifest equal to what the client submitted.
  EXPECT_EQ(SerializeSessionSpecFields(decoded->spec),
            SerializeSessionSpecFields(request.spec));
}

TEST(ProtocolTest, RequestValidation) {
  NetRequest request;
  request.type = RequestType::kReport;
  request.request_id = "";  // Idempotency key is mandatory.
  EXPECT_FALSE(DecodeNetRequest(EncodeNetRequest(request)).ok());

  NetRequest mismatched;
  mismatched.type = RequestType::kSubmit;
  mismatched.request_id = "other";
  mismatched.spec = TrickySpec();
  EXPECT_FALSE(DecodeNetRequest(EncodeNetRequest(mismatched)).ok());

  EXPECT_FALSE(DecodeNetRequest("not a protocol payload").ok());
  EXPECT_FALSE(DecodeNetRequest("").ok());
}

TEST(ProtocolTest, ResponseRoundTripWithEscaping) {
  NetResponse response;
  response.request_id = "req-1";
  response.status =
      Status::ResourceExhausted("queue full\nsecond line\twith -dashes");
  response.fields["state"] = "done";
  response.fields["weird"] = "-leading dash \\ backslash\r\n";
  response.fields["empty"] = "";
  response.body = std::string("binary\0body\nwith newlines", 25);
  auto decoded = DecodeNetResponse(EncodeNetResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->request_id, "req-1");
  EXPECT_EQ(decoded->status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(decoded->status.message(),
            "queue full\nsecond line\twith -dashes");
  EXPECT_EQ(decoded->fields, response.fields);
  EXPECT_EQ(decoded->body, response.body);
}

TEST(ProtocolTest, StatusCodesRoundTripByName) {
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kUnavailable, StatusCode::kNotFound,
        StatusCode::kResourceExhausted, StatusCode::kDeadlineExceeded,
        StatusCode::kIoError, StatusCode::kInvalidArgument}) {
    auto parsed = ParseStatusCode(StatusCodeName(code));
    ASSERT_TRUE(parsed.ok()) << StatusCodeName(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(ParseStatusCode("NoSuchCode").ok());
}

TEST(ProtocolTest, UnknownSpecKeysAreSkipped) {
  // Forward compatibility: a newer client's extra spec fields must not
  // break an older daemon.
  NetRequest request;
  request.type = RequestType::kSubmit;
  request.request_id = "s1";
  request.spec.id = "s1";
  std::string payload = EncodeNetRequest(request);
  const std::string needle = "spec.strategy";
  const auto pos = payload.find(needle);
  ASSERT_NE(pos, std::string::npos);
  payload.insert(payload.find('\n', pos) + 1, "spec.future_knob 17\n");
  auto decoded = DecodeNetRequest(payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->spec.id, "s1");
}

}  // namespace
}  // namespace net
}  // namespace veritas
