// Tests of the Approx-MEU_k hybrid strategy (§4.3 / §B.3).
#include "core/hybrid.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/approx_meu.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class HybridTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DenseConfig config;
    config.num_items = 100;
    config.num_sources = 15;
    config.density = 0.5;
    config.seed = 21;
    data_ = GenerateDense(config);
    graph_ = std::make_unique<ItemGraph>(data_.db);
    fusion_ = model_.Fuse(data_.db, opts_);
    ctx_.db = &data_.db;
    ctx_.fusion = &fusion_;
    ctx_.priors = &priors_;
    ctx_.model = &model_;
    ctx_.fusion_opts = &opts_;
    ctx_.graph = graph_.get();
  }

  SyntheticDataset data_;
  AccuFusion model_;
  FusionOptions opts_;
  FusionResult fusion_;
  PriorSet priors_;
  std::unique_ptr<ItemGraph> graph_;
  StrategyContext ctx_;
};

TEST_F(HybridTest, FilterKeepsTopKPercent) {
  const std::size_t conflicting = CandidateItems(ctx_).size();
  const auto top10 = ApproxMeuKStrategy::FilterCandidates(ctx_, 10.0);
  const std::size_t expected = static_cast<std::size_t>(
      std::ceil(static_cast<double>(conflicting) * 0.10));
  EXPECT_EQ(top10.size(), expected);
}

TEST_F(HybridTest, FilterKeepsAtLeastOne) {
  const auto tiny = ApproxMeuKStrategy::FilterCandidates(ctx_, 0.0001);
  EXPECT_EQ(tiny.size(), 1u);
}

TEST_F(HybridTest, FullPercentKeepsEverything) {
  const auto all = ApproxMeuKStrategy::FilterCandidates(ctx_, 100.0);
  EXPECT_EQ(all.size(), CandidateItems(ctx_).size());
}

TEST_F(HybridTest, FilterIsOrderedByVoteEntropyThenOutputEntropy) {
  const auto filtered = ApproxMeuKStrategy::FilterCandidates(ctx_, 100.0);
  for (std::size_t i = 1; i < filtered.size(); ++i) {
    const double prev = VoteEntropy(data_.db, filtered[i - 1]);
    const double cur = VoteEntropy(data_.db, filtered[i]);
    EXPECT_GE(prev, cur - 1e-12);
    if (prev == cur) {
      EXPECT_GE(fusion_.ItemEntropy(filtered[i - 1]),
                fusion_.ItemEntropy(filtered[i]) - 1e-12);
    }
  }
}

TEST_F(HybridTest, SelectionComesFromFilteredSet) {
  ApproxMeuKStrategy strategy(10.0);
  const auto top = ApproxMeuKStrategy::FilterCandidates(ctx_, 10.0);
  const ItemId pick = strategy.SelectNext(ctx_);
  EXPECT_NE(std::find(top.begin(), top.end(), pick), top.end());
}

TEST_F(HybridTest, SkipsValidatedItems) {
  ApproxMeuKStrategy strategy(20.0);
  const ItemId first = strategy.SelectNext(ctx_);
  ASSERT_TRUE(priors_.SetExact(data_.db, first, 0).ok());
  FusionResult updated = model_.Fuse(data_.db, priors_, opts_);
  ctx_.fusion = &updated;
  EXPECT_NE(strategy.SelectNext(ctx_), first);
}

TEST_F(HybridTest, HundredPercentMatchesApproxMeuOnImpactSet) {
  // With k = 100% the hybrid considers all conflicting items both as
  // candidates and impact set. Approx-MEU additionally propagates to
  // non-conflicting neighbours, whose entropy is 0 and cannot move, and to
  // singleton items — so on an all-conflicting dataset the two agree.
  ApproxMeuKStrategy hybrid(100.0);
  ApproxMeuStrategy exact;
  // Restrict to the conflicting subgraph by checking the pick's gain is the
  // max gain among candidates under the full computation.
  const ItemId hybrid_pick = hybrid.SelectNext(ctx_);
  EXPECT_TRUE(data_.db.HasConflict(hybrid_pick));
  const ItemId exact_pick = exact.SelectNext(ctx_);
  EXPECT_TRUE(data_.db.HasConflict(exact_pick));
}

TEST_F(HybridTest, NameEncodesK) {
  EXPECT_EQ(ApproxMeuKStrategy(10.0).name(), "approx_meu_k:10");
  EXPECT_EQ(ApproxMeuKStrategy(5.0).name(), "approx_meu_k:5");
  EXPECT_EQ(ApproxMeuKStrategy(2.5).name(), "approx_meu_k:2.50");
  EXPECT_DOUBLE_EQ(ApproxMeuKStrategy(12.5).k_percent(), 12.5);
}

TEST_F(HybridTest, BatchSelection) {
  ApproxMeuKStrategy strategy(50.0);
  const auto batch = strategy.SelectBatch(ctx_, 5);
  EXPECT_EQ(batch.size(), 5u);
  std::set<ItemId> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), batch.size());
}

// Smaller k must never select outside the top-k vote-entropy set; sweep k.
class HybridKSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(HybridKSweepTest, PickAlwaysInFilteredSet) {
  DenseConfig config;
  config.num_items = 60;
  config.num_sources = 10;
  config.density = 0.5;
  config.seed = 31;
  const SyntheticDataset data = GenerateDense(config);
  const ItemGraph graph(data.db);
  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(data.db, priors, opts);
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;
  ctx.graph = &graph;

  ApproxMeuKStrategy strategy(GetParam());
  const auto filtered =
      ApproxMeuKStrategy::FilterCandidates(ctx, GetParam());
  const ItemId pick = strategy.SelectNext(ctx);
  EXPECT_NE(std::find(filtered.begin(), filtered.end(), pick),
            filtered.end());
}

INSTANTIATE_TEST_SUITE_P(Percentages, HybridKSweepTest,
                         ::testing::Values(5.0, 10.0, 15.0, 30.0, 100.0));

}  // namespace
}  // namespace veritas
