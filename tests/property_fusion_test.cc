// Property-based sweeps over the fusion substrate: invariants that must
// hold for every dataset shape, seed and fusion model.
#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fusion/accu.h"
#include "fusion/fusion_factory.h"
#include "util/math.h"

namespace veritas {
namespace {

struct FusionPropertyCase {
  std::string model;
  bool dense;
  std::uint64_t seed;
  std::size_t max_false_claims;

  friend std::ostream& operator<<(std::ostream& os,
                                  const FusionPropertyCase& c) {
    return os << c.model << (c.dense ? "_dense_" : "_longtail_") << c.seed
              << "_k" << c.max_false_claims;
  }
};

SyntheticDataset Generate(const FusionPropertyCase& c) {
  if (c.dense) {
    DenseConfig config;
    config.num_items = 150;
    config.num_sources = 18;
    config.density = 0.35;
    config.max_false_claims = c.max_false_claims;
    config.seed = c.seed;
    return GenerateDense(config);
  }
  LongTailConfig config;
  config.num_items = 150;
  config.num_sources = 90;
  config.avg_votes_per_item = 8.0;
  config.max_false_claims = c.max_false_claims;
  config.seed = c.seed;
  return GenerateLongTail(config);
}

class FusionPropertyTest
    : public ::testing::TestWithParam<FusionPropertyCase> {};

TEST_P(FusionPropertyTest, OutputIsValidDistributionPerItem) {
  const SyntheticDataset data = Generate(GetParam());
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  const FusionResult r = (*model)->Fuse(data.db, PriorSet(), FusionOptions{});
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    double sum = 0.0;
    for (ClaimIndex k = 0; k < data.db.num_claims(i); ++k) {
      const double p = r.prob(i, k);
      ASSERT_GE(p, 0.0) << "item " << i;
      ASSERT_LE(p, 1.0) << "item " << i;
      sum += p;
    }
    ASSERT_NEAR(sum, 1.0, 1e-6) << "item " << i;
  }
}

TEST_P(FusionPropertyTest, AccuraciesInClampRange) {
  const SyntheticDataset data = Generate(GetParam());
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  const FusionResult r = (*model)->Fuse(data.db, PriorSet(), FusionOptions{});
  for (double a : r.accuracies()) {
    ASSERT_GE(a, kMinAccuracy);
    ASSERT_LE(a, kMaxAccuracy);
  }
}

TEST_P(FusionPropertyTest, PinnedItemsExactlyKeepTheirPrior) {
  const SyntheticDataset data = Generate(GetParam());
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  PriorSet priors;
  const auto conflicting = data.db.ConflictingItems();
  for (std::size_t idx = 0; idx < conflicting.size(); idx += 3) {
    ASSERT_TRUE(priors.SetExact(data.db, conflicting[idx], 0).ok());
  }
  const FusionResult r = (*model)->Fuse(data.db, priors, FusionOptions{});
  for (const auto& [item, dist] : priors) {
    for (ClaimIndex k = 0; k < dist.size(); ++k) {
      ASSERT_DOUBLE_EQ(r.prob(item, k), dist[k]) << "item " << item;
    }
  }
}

TEST_P(FusionPropertyTest, EntropiesBounded) {
  const SyntheticDataset data = Generate(GetParam());
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  const FusionResult r = (*model)->Fuse(data.db, PriorSet(), FusionOptions{});
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    const double h = r.ItemEntropy(i);
    ASSERT_GE(h, -1e-12);
    ASSERT_LE(h, MaxEntropy(data.db.num_claims(i)) + 1e-9);
  }
  ASSERT_GE(r.TotalEntropy(), -1e-9);
}

TEST_P(FusionPropertyTest, DeterministicAcrossRuns) {
  const SyntheticDataset data = Generate(GetParam());
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  const FusionResult a = (*model)->Fuse(data.db, PriorSet(), FusionOptions{});
  const FusionResult b = (*model)->Fuse(data.db, PriorSet(), FusionOptions{});
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    for (ClaimIndex k = 0; k < data.db.num_claims(i); ++k) {
      ASSERT_DOUBLE_EQ(a.prob(i, k), b.prob(i, k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FusionPropertyTest,
    ::testing::Values(
        FusionPropertyCase{"accu", true, 1, 1},
        FusionPropertyCase{"accu", true, 2, 3},
        FusionPropertyCase{"accu", false, 3, 1},
        FusionPropertyCase{"accu", false, 4, 2},
        FusionPropertyCase{"voting", true, 5, 1},
        FusionPropertyCase{"voting", false, 6, 3},
        FusionPropertyCase{"truthfinder", true, 7, 1},
        FusionPropertyCase{"truthfinder", false, 8, 2},
        FusionPropertyCase{"pooled_investment", true, 9, 1},
        FusionPropertyCase{"pooled_investment", false, 10, 2}));

// Accu-specific fixed-point property: at convergence, one extra iteration
// does not move the output.
class AccuFixedPointTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccuFixedPointTest, ConvergedStateIsStable) {
  DenseConfig config;
  config.num_items = 100;
  config.num_sources = 12;
  config.density = 0.4;
  config.seed = GetParam();
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion model;
  FusionOptions opts;
  opts.max_iterations = 300;
  const FusionResult converged = model.Fuse(data.db, opts);
  if (!converged.converged()) GTEST_SKIP() << "did not converge";
  // Warm-start one more run: it must stop immediately at the same state.
  FusionOptions one;
  one.max_iterations = 1;
  const FusionResult next = model.Fuse(data.db, PriorSet(), one, &converged);
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    for (ClaimIndex k = 0; k < data.db.num_claims(i); ++k) {
      ASSERT_NEAR(next.prob(i, k), converged.prob(i, k), 1e-5);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccuFixedPointTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// Better sources should end with higher estimated accuracies — check rank
// correlation between true and estimated accuracies is positive.
class AccuAccuracyRecoveryTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AccuAccuracyRecoveryTest, EstimatedAccuracyTracksTrueAccuracy) {
  DenseConfig config;
  config.num_items = 400;
  config.num_sources = 15;
  config.density = 0.5;
  config.accuracy_sd = 0.15;
  config.seed = GetParam();
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion model;
  const FusionResult r = model.Fuse(data.db, FusionOptions{});
  // Compare the best-true-accuracy source with the worst.
  std::size_t best = 0, worst = 0;
  for (std::size_t j = 1; j < data.true_accuracies.size(); ++j) {
    if (data.true_accuracies[j] > data.true_accuracies[best]) best = j;
    if (data.true_accuracies[j] < data.true_accuracies[worst]) worst = j;
  }
  EXPECT_GT(r.accuracy(static_cast<SourceId>(best)),
            r.accuracy(static_cast<SourceId>(worst)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccuAccuracyRecoveryTest,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace veritas
