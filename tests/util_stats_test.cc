#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace veritas {
namespace {

TEST(StatsTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Mean({4.0}), 4.0);
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(StatsTest, VarianceBasics) {
  EXPECT_DOUBLE_EQ(Variance({}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(Variance({1.0, 3.0}), 1.0);  // Population variance.
}

TEST(StatsTest, StdDev) {
  EXPECT_DOUBLE_EQ(StdDev({1.0, 3.0}), 1.0);
}

TEST(StatsTest, PearsonPerfectPositive) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
}

TEST(StatsTest, PearsonPerfectNegative) {
  const std::vector<double> xs = {1, 2, 3};
  const std::vector<double> ys = {3, 2, 1};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerateInputs) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2, 3}, {5, 5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1, 2}, {1, 2, 3}), 0.0);
}

TEST(StatsTest, PearsonUncorrelatedNearZero) {
  Rng rng(5);
  std::vector<double> xs, ys;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(rng.Uniform());
    ys.push_back(rng.Uniform());
  }
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 0.0, 0.05);
}

TEST(StatsTest, QuantileBasics) {
  EXPECT_DOUBLE_EQ(Quantile({}, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 1.0), 3.0);
  EXPECT_DOUBLE_EQ(Quantile({3.0, 1.0, 2.0}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0}, 0.5), 1.5);  // Interpolated.
}

TEST(StatsTest, QuantileClampsQ) {
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0}, -1.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile({1.0, 2.0}, 2.0), 2.0);
}

TEST(StatsTest, MinMax) {
  EXPECT_DOUBLE_EQ(Min({}), 0.0);
  EXPECT_DOUBLE_EQ(Max({}), 0.0);
  EXPECT_DOUBLE_EQ(Min({3.0, -1.0, 2.0}), -1.0);
  EXPECT_DOUBLE_EQ(Max({3.0, -1.0, 2.0}), 3.0);
}

TEST(RunningStatsTest, Empty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.mean(), 0.0);
  EXPECT_DOUBLE_EQ(rs.min(), 0.0);
  EXPECT_DOUBLE_EQ(rs.max(), 0.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

TEST(RunningStatsTest, MatchesBatchStats) {
  const std::vector<double> xs = {1.5, -2.0, 4.0, 0.0, 3.25, -1.0};
  RunningStats rs;
  for (double x : xs) rs.Add(x);
  EXPECT_EQ(rs.count(), xs.size());
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-12);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-12);
  EXPECT_NEAR(rs.stddev(), StdDev(xs), 1e-12);
  EXPECT_DOUBLE_EQ(rs.min(), -2.0);
  EXPECT_DOUBLE_EQ(rs.max(), 4.0);
}

TEST(RunningStatsTest, SingleSample) {
  RunningStats rs;
  rs.Add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.min(), 7.0);
  EXPECT_DOUBLE_EQ(rs.max(), 7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

// Property sweep: RunningStats agrees with batch formulas on random data of
// several sizes.
class RunningStatsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RunningStatsPropertyTest, AgreesWithBatch) {
  Rng rng(GetParam());
  std::vector<double> xs;
  RunningStats rs;
  for (int i = 0; i < GetParam() * 10 + 2; ++i) {
    const double x = rng.Normal(0.0, 3.0);
    xs.push_back(x);
    rs.Add(x);
  }
  EXPECT_NEAR(rs.mean(), Mean(xs), 1e-9);
  EXPECT_NEAR(rs.variance(), Variance(xs), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RunningStatsPropertyTest,
                         ::testing::Values(1, 2, 5, 17, 100));

}  // namespace
}  // namespace veritas
