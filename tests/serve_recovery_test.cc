// Crash-recovery sweep semantics: a new supervisor over an old sessions
// directory resumes every interrupted session from its durable state,
// abandons sessions past their recovery-attempt cap (and corrupt
// manifests), and two supervisor workers evicting/restoring *distinct*
// sessions in the same directory never cross-contaminate each other's
// recovery chains or leak temp files. Runs real threads -> `concurrency`
// label, TSan in CI.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "obs/metrics.h"
#include "serve/session_supervisor.h"

namespace veritas {
namespace {

std::string UniqueDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  const auto ids = ListSessionManifests(dir);
  if (ids.ok()) {
    for (const std::string& id : *ids) {
      std::remove(SessionManifestPath(dir, id).c_str());
      const std::string ckpt = SessionCheckpointPath(dir, id);
      std::remove(ckpt.c_str());
      std::remove((ckpt + ".1").c_str());
      std::remove((ckpt + ".2").c_str());
    }
  }
  return dir;
}

bool Exists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

std::vector<std::string> ListWithSubstring(const std::string& dir,
                                           const std::string& needle) {
  std::vector<std::string> hits;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return hits;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.find(needle) != std::string::npos) hits.push_back(name);
  }
  ::closedir(d);
  return hits;
}

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() {
    DenseConfig config;
    config.num_items = 40;
    config.num_sources = 8;
    config.density = 0.5;
    config.seed = 11;
    data_ = GenerateDense(config);
  }

  SessionSpec Spec(const std::string& id, std::uint64_t seed) {
    SessionSpec spec;
    spec.id = id;
    spec.strategy = "qbc";
    spec.model = "accu";
    spec.max_validations = 8;
    spec.seed = seed;
    return spec;
  }

  SyntheticDataset data_;
};

// A process death between admissions: supervisor A evicts a session and is
// destroyed (durable state survives); a brand-new supervisor B over the
// same directory sweeps, resumes, and finishes the session.
TEST_F(RecoveryTest, NewSupervisorResumesWhatTheOldOneLeft) {
  const std::string dir = UniqueDir("rec_restart");
  {
    SupervisorOptions options;
    options.sessions_dir = dir;
    SessionSupervisor first(data_.db, data_.truth, options);
    ASSERT_TRUE(first.Start().ok());
    SessionSpec spec = Spec("carry", 21);
    spec.budget.max_rounds_per_run = 3;
    ASSERT_TRUE(first.Submit(spec).ok());
    first.Drain();
    SessionReport report;
    ASSERT_TRUE(first.FindReport("carry", &report));
    ASSERT_EQ(report.outcome, SessionOutcome::kEvicted);
  }  // "Crash": the supervisor dies; manifest + checkpoint survive.
  ASSERT_TRUE(Exists(SessionManifestPath(dir, "carry")));
  ASSERT_TRUE(Exists(SessionCheckpointPath(dir, "carry")));

  SupervisorOptions options;
  options.sessions_dir = dir;
  options.keep_traces = true;
  SessionSupervisor second(data_.db, data_.truth, options);
  ASSERT_TRUE(second.Start().ok());
  std::size_t sweeps = 0;
  while (second.RecoverSessions() > 0) {
    second.Drain();
    ASSERT_LT(++sweeps, 10u);
  }
  ASSERT_GE(sweeps, 1u);
  SessionReport report;
  ASSERT_TRUE(second.FindReport("carry", &report));
  EXPECT_EQ(report.outcome, SessionOutcome::kCompleted) << report.status;
  EXPECT_TRUE(report.resumed);
  EXPECT_TRUE(report.recovered);
  EXPECT_EQ(report.num_validated, 8u);
  EXPECT_FALSE(Exists(SessionManifestPath(dir, "carry")));
}

TEST_F(RecoveryTest, AbandonsSessionsPastTheAttemptCap) {
  MetricsRegistry::Global().Reset();
  const std::string dir = UniqueDir("rec_cap");
  SupervisorOptions options;
  options.sessions_dir = dir;
  options.max_recovery_attempts = 3;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  // Simulate a session that already burned its recovery budget.
  SessionSpec spec = Spec("doomed", 5);
  spec.recovery_attempts = 3;
  ASSERT_TRUE(
      SaveSessionManifest(spec, SessionManifestPath(dir, "doomed")).ok());
  EXPECT_EQ(supervisor.RecoverSessions(), 0u);
  EXPECT_FALSE(Exists(SessionManifestPath(dir, "doomed")));
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_GE(snap.Value("supervisor.recovery_abandoned"), 1.0);
}

TEST_F(RecoveryTest, RecoveryIncrementsTheDurableAttemptCount) {
  const std::string dir = UniqueDir("rec_count");
  SupervisorOptions options;
  options.sessions_dir = dir;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  SessionSpec spec = Spec("counted", 5);
  spec.budget.max_rounds_per_run = 3;
  ASSERT_TRUE(supervisor.Submit(spec).ok());
  supervisor.Drain();  // Evicted after 3 rounds.
  ASSERT_EQ(supervisor.RecoverSessions(), 1u);
  supervisor.Drain();  // Evicted again after 3 more rounds.
  // The attempt was persisted *before* the re-run: a crash mid-recovery
  // still counts against the cap.
  auto manifest = LoadSessionManifest(SessionManifestPath(dir, "counted"));
  ASSERT_TRUE(manifest.ok()) << manifest.status();
  EXPECT_EQ(manifest->recovery_attempts, 1u);
}

TEST_F(RecoveryTest, CorruptManifestIsAbandonedNotRetried) {
  const std::string dir = UniqueDir("rec_corrupt");
  SupervisorOptions options;
  options.sessions_dir = dir;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  {
    std::ofstream out(SessionManifestPath(dir, "garbled"));
    out << "veritas-session-manifest v1\nid garbled\n";  // No end marker.
  }
  EXPECT_EQ(supervisor.RecoverSessions(), 0u);
  EXPECT_FALSE(Exists(SessionManifestPath(dir, "garbled")));
  // And the next sweep has nothing left to look at.
  EXPECT_EQ(supervisor.RecoverSessions(), 0u);
}

// ISSUE-6 satellite: two workers evicting + restoring *distinct* sessions
// in the same directory. Each session's stitched-together result must equal
// its own uninterrupted reference (no cross-contamination of checkpoint
// chains), and the directory must hold no atomic-write temp litter.
TEST_F(RecoveryTest, ConcurrentEvictRestoreCyclesStayIsolated) {
  // The two sessions must provably differ (different validation budgets and
  // strategies), or the isolation check below could not detect a swapped
  // checkpoint chain.
  const auto spec_for = [this](const std::string& id) {
    SessionSpec spec = Spec(id, id == "alpha" ? 1001 : 2002);
    if (id == "beta") {
      spec.strategy = "us";
      spec.max_validations = 6;
    }
    return spec;
  };
  // References: each spec run alone, uninterrupted.
  std::map<std::string, SessionReport> reference;
  for (const auto& id : {std::string("alpha"), std::string("beta")}) {
    const std::string ref_dir = UniqueDir("rec_iso_ref_" + id);
    SupervisorOptions options;
    options.sessions_dir = ref_dir;
    options.keep_traces = true;
    SessionSupervisor supervisor(data_.db, data_.truth, options);
    ASSERT_TRUE(supervisor.Start().ok());
    ASSERT_TRUE(supervisor.Submit(spec_for(id)).ok());
    supervisor.Drain();
    SessionReport report;
    ASSERT_TRUE(supervisor.FindReport(id, &report));
    ASSERT_EQ(report.outcome, SessionOutcome::kCompleted);
    reference[id] = report;
  }
  ASSERT_NE(reference["alpha"].trace.final_fusion.accuracies(),
            reference["beta"].trace.final_fusion.accuracies());

  const std::string dir = UniqueDir("rec_iso");
  SupervisorOptions options;
  options.sessions_dir = dir;
  options.max_concurrent_sessions = 2;  // Both sessions in flight at once.
  options.keep_traces = true;
  SessionSupervisor supervisor(data_.db, data_.truth, options);
  ASSERT_TRUE(supervisor.Start().ok());
  SessionSpec alpha = spec_for("alpha");
  alpha.budget.max_rounds_per_run = 3;
  SessionSpec beta = spec_for("beta");
  beta.budget.max_rounds_per_run = 2;  // Deliberately out of phase.
  ASSERT_TRUE(supervisor.Submit(alpha).ok());
  ASSERT_TRUE(supervisor.Submit(beta).ok());
  supervisor.Drain();
  std::size_t sweeps = 0;
  while (supervisor.RecoverSessions() > 0) {
    supervisor.Drain();
    ASSERT_LT(++sweeps, 12u);
  }
  for (const auto& id : {std::string("alpha"), std::string("beta")}) {
    SCOPED_TRACE(id);
    SessionReport report;
    ASSERT_TRUE(supervisor.FindReport(id, &report));
    ASSERT_EQ(report.outcome, SessionOutcome::kCompleted) << report.status;
    const SessionTrace& a = reference[id].trace;
    const SessionTrace& b = report.trace;
    ASSERT_EQ(a.steps.size(), b.steps.size());
    for (std::size_t s = 0; s < a.steps.size(); ++s) {
      SCOPED_TRACE("step " + std::to_string(s));
      EXPECT_EQ(a.steps[s].items, b.steps[s].items);
      EXPECT_EQ(a.steps[s].distance, b.steps[s].distance);
    }
    EXPECT_EQ(a.final_fusion.accuracies(), b.final_fusion.accuracies());
  }
  // No manifest, checkpoint, or atomic-write temp file survives success.
  EXPECT_EQ(supervisor.RecoverSessions(), 0u);
  EXPECT_TRUE(ListWithSubstring(dir, ".tmp.").empty());
  EXPECT_TRUE(ListWithSubstring(dir, ".session").empty());
}

}  // namespace
}  // namespace veritas
