// Round-trip and merge semantics of the bench-JSON reader/writer. Several
// bench binaries share BENCH_fusion.json; MergeInto is what keeps one
// binary's run from clobbering another's records.
#include "exp/bench_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"

namespace veritas {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string TempPath(const char* name) {
  return testing::TempDir() + "/" + name;
}

TEST(BenchJsonParseTest, RoundTripsRenderOutput) {
  BenchJsonFile file("veritas-bench-test-v1");
  file.SetMeta("scale", "small");
  file.Add("alpha")
      .Set("items", static_cast<std::size_t>(4000))
      .Set("ns_per_op", 1.25e6)
      .Set("dataset", "books")
      .Set("ok", true);
  file.Add("beta").Set("note", "escaped \"quote\"\nnewline");

  const std::string text = file.Render();
  Result<BenchJsonFile> parsed = BenchJsonFile::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->Render(), text);
}

TEST(BenchJsonParseTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(BenchJsonFile::Parse("").ok());
  EXPECT_FALSE(BenchJsonFile::Parse("[]").ok());
  EXPECT_FALSE(BenchJsonFile::Parse("{\"records\": [{}]}").ok());  // No name.
  EXPECT_FALSE(
      BenchJsonFile::Parse("{\"records\": [{\"name\": \"a\", \"nested\": "
                           "{\"x\": 1}}]}")
          .ok());
  EXPECT_FALSE(BenchJsonFile::Parse("{\"schema\": \"s\"} trailing").ok());
}

TEST(BenchJsonMergeTest, CreatesFileWhenMissing) {
  const std::string path = TempPath("bench_merge_missing.json");
  std::remove(path.c_str());
  BenchJsonFile file("veritas-bench-test-v1");
  file.Add("solo").Set("value", 1.0);
  ASSERT_TRUE(file.MergeInto(path).ok());
  EXPECT_EQ(ReadFile(path), file.Render());
}

TEST(BenchJsonMergeTest, UpsertsByNameAndKeyFields) {
  const std::string path = TempPath("bench_merge_upsert.json");
  BenchJsonFile base("veritas-bench-test-v1");
  base.SetMeta("scale", "full");
  base.Add("sweep").Set("dataset", "books").Set("threads",
                                                static_cast<std::size_t>(1))
      .Set("seconds", 2.0);
  base.Add("sweep").Set("dataset", "books").Set("threads",
                                                static_cast<std::size_t>(2))
      .Set("seconds", 1.0);
  base.Add("other").Set("value", 7.0);
  ASSERT_TRUE(base.Write(path).ok());

  // Re-measure only (books, threads=2) and add (flights, threads=1): the
  // matching record is replaced in place, everything else is untouched.
  BenchJsonFile update("veritas-bench-test-v1");
  update.Add("sweep").Set("dataset", "books").Set("threads",
                                                  static_cast<std::size_t>(2))
      .Set("seconds", 0.5);
  update.Add("sweep").Set("dataset", "flights").Set("threads",
                                                    static_cast<std::size_t>(1))
      .Set("seconds", 3.0);
  ASSERT_TRUE(update.MergeInto(path, {"dataset", "threads"}).ok());

  Result<BenchJsonFile> merged = BenchJsonFile::Parse(ReadFile(path));
  ASSERT_TRUE(merged.ok()) << merged.status();
  const std::string text = merged->Render();
  EXPECT_NE(text.find("\"seconds\": 2"), std::string::npos);
  EXPECT_NE(text.find("\"seconds\": 0.5"), std::string::npos);
  EXPECT_EQ(text.find("\"seconds\": 1,"), std::string::npos);
  EXPECT_EQ(text.find("\"seconds\": 1}"), std::string::npos);
  EXPECT_NE(text.find("\"dataset\": \"flights\""), std::string::npos);
  EXPECT_NE(text.find("\"other\""), std::string::npos);
  // Preserved meta from the original document.
  EXPECT_NE(text.find("\"scale\": \"full\""), std::string::npos);
  // Order: untouched records keep their positions, new ones append.
  EXPECT_LT(text.find("\"seconds\": 2"), text.find("\"seconds\": 0.5"));
  EXPECT_LT(text.find("\"other\""), text.find("flights"));
}

TEST(BenchJsonMergeTest, NameOnlyUpsertReplacesSingleton) {
  const std::string path = TempPath("bench_merge_name_only.json");
  BenchJsonFile base("veritas-bench-test-v1");
  base.Add("ingest").Set("obs_per_second", 100.0);
  base.Add("sweep").Set("threads", static_cast<std::size_t>(1));
  ASSERT_TRUE(base.Write(path).ok());

  BenchJsonFile update("veritas-bench-test-v1");
  update.Add("ingest").Set("obs_per_second", 250.0);
  ASSERT_TRUE(update.MergeInto(path).ok());

  const std::string text = ReadFile(path);
  EXPECT_NE(text.find("250"), std::string::npos);
  EXPECT_EQ(text.find("100"), std::string::npos);
  EXPECT_NE(text.find("\"sweep\""), std::string::npos);
}

TEST(BenchJsonMergeTest, ReplacesForeignFileOutright) {
  const std::string path = TempPath("bench_merge_foreign.json");
  {
    std::ofstream out(path, std::ios::binary);
    out << "not json at all";
  }
  BenchJsonFile file("veritas-bench-test-v1");
  file.Add("fresh").Set("value", 1.0);
  ASSERT_TRUE(file.MergeInto(path).ok());
  EXPECT_EQ(ReadFile(path), file.Render());
}

}  // namespace
}  // namespace veritas
