// Tests of the InteractiveSession ask/answer API.
#include "core/interactive.h"

#include <gtest/gtest.h>

#include "core/approx_meu.h"
#include "core/qbc.h"
#include "core/us.h"
#include "data/example_data.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class InteractiveTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  AccuFusion model_;
  UsStrategy strategy_;
};

TEST_F(InteractiveTest, SuggestsMostValuableItemWithContext) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  const auto suggestion = session.NextSuggestion();
  ASSERT_TRUE(suggestion.ok());
  // US's first pick on the movie example is Minions (Example 4.2).
  EXPECT_EQ(suggestion->item_name, "Minions");
  ASSERT_EQ(suggestion->claim_values.size(), 2u);
  ASSERT_EQ(suggestion->current_probs.size(), 2u);
  double sum = 0.0;
  for (double p : suggestion->current_probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(InteractiveTest, SubmitFeedbackAdvancesTheLoop) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  const auto first = session.NextSuggestion();
  ASSERT_TRUE(first.ok());
  const double before = session.CurrentUncertainty();
  ASSERT_TRUE(
      session.SubmitExactFeedback(first->item, truth_.TrueClaim(first->item))
          .ok());
  EXPECT_EQ(session.num_validated(), 1u);
  EXPECT_LT(session.CurrentUncertainty(), before);
  const auto second = session.NextSuggestion();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->item, first->item);
}

TEST_F(InteractiveTest, SubmitByName) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  ASSERT_TRUE(session.SubmitExactFeedback("Zootopia", "Howard").ok());
  const ItemId zootopia = *db_.FindItem("Zootopia");
  EXPECT_DOUBLE_EQ(
      session.fusion().prob(zootopia, *db_.FindClaim(zootopia, "Howard")),
      1.0);
}

TEST_F(InteractiveTest, SubmitByNameRejectsUnknown) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  EXPECT_EQ(session.SubmitExactFeedback("Cars", "Lasseter").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(session.SubmitExactFeedback("Zootopia", "Lasseter").code(),
            StatusCode::kNotFound);
}

TEST_F(InteractiveTest, DistributionFeedback) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  const ItemId minions = *db_.FindItem("Minions");
  ASSERT_TRUE(session.SubmitFeedback(minions, {0.8, 0.2}).ok());
  EXPECT_DOUBLE_EQ(session.fusion().prob(minions, 0), 0.8);
  EXPECT_EQ(session.SubmitFeedback(minions, {0.8, 0.8}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(InteractiveTest, ExhaustsSuggestionsGracefully) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  for (int i = 0; i < 5; ++i) {
    const auto suggestion = session.NextSuggestion();
    ASSERT_TRUE(suggestion.ok()) << i;
    ASSERT_TRUE(session
                    .SubmitExactFeedback(suggestion->item,
                                         truth_.TrueClaim(suggestion->item))
                    .ok());
  }
  // All 5 conflicting items validated.
  EXPECT_EQ(session.NextSuggestion().status().code(), StatusCode::kNotFound);
}

TEST_F(InteractiveTest, BatchedSuggestions) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  const auto batch = session.NextSuggestions(3);
  ASSERT_EQ(batch.size(), 3u);
  std::set<ItemId> unique;
  for (const Suggestion& s : batch) {
    EXPECT_TRUE(unique.insert(s.item).second);
    EXPECT_FALSE(s.item_name.empty());
  }
}

TEST_F(InteractiveTest, RetractFeedbackRestoresState) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  const double initial_uncertainty = session.CurrentUncertainty();
  const ItemId minions = *db_.FindItem("Minions");
  ASSERT_TRUE(session.SubmitExactFeedback(minions, 0).ok());
  ASSERT_NE(session.CurrentUncertainty(), initial_uncertainty);
  ASSERT_TRUE(session.RetractFeedback(minions).ok());
  EXPECT_EQ(session.num_validated(), 0u);
  EXPECT_NEAR(session.CurrentUncertainty(), initial_uncertainty, 1e-9);
}

TEST_F(InteractiveTest, RetractUnknownFeedbackFails) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  EXPECT_EQ(session.RetractFeedback(0).code(), StatusCode::kNotFound);
}

TEST_F(InteractiveTest, WorksWithGraphDependentStrategy) {
  ApproxMeuStrategy approx;
  InteractiveSession session(db_, model_, &approx,
                             PaperExampleFusionOptions());
  const auto suggestion = session.NextSuggestion();
  ASSERT_TRUE(suggestion.ok());
  EXPECT_TRUE(db_.HasConflict(suggestion->item));
}

TEST_F(InteractiveTest, QbcStateResetBetweenSessions) {
  QbcStrategy qbc;
  {
    InteractiveSession session(db_, model_, &qbc,
                               PaperExampleFusionOptions());
    ASSERT_TRUE(session.NextSuggestion().ok());
  }
  // A new session with the same strategy instance must not inherit stale
  // cached state.
  InteractiveSession session(db_, model_, &qbc, PaperExampleFusionOptions());
  const auto suggestion = session.NextSuggestion();
  ASSERT_TRUE(suggestion.ok());
  EXPECT_TRUE(db_.HasConflict(suggestion->item));
}

TEST_F(InteractiveTest, MarkUnanswerableMovesToTheNextSuggestion) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  const auto first = session.NextSuggestion();
  ASSERT_TRUE(first.ok());
  // The expert cannot answer the top pick; the session must degrade to the
  // strategy's next-best item instead of re-proposing it.
  ASSERT_TRUE(session.MarkUnanswerable(first->item).ok());
  EXPECT_EQ(session.num_unanswerable(), 1u);
  const auto second = session.NextSuggestion();
  ASSERT_TRUE(second.ok());
  EXPECT_NE(second->item, first->item);
  // The expert came back: the item is suggestable again.
  session.ClearUnanswerable(first->item);
  EXPECT_EQ(session.num_unanswerable(), 0u);
  const auto third = session.NextSuggestion();
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third->item, first->item);
}

TEST_F(InteractiveTest, MarkUnanswerableValidatesTheItemId) {
  InteractiveSession session(db_, model_, &strategy_,
                             PaperExampleFusionOptions());
  EXPECT_EQ(session.MarkUnanswerable(db_.num_items()).code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace veritas
