// Tests of the feedback oracles (§4.4).
#include "core/oracle.h"

#include <gtest/gtest.h>

#include "data/example_data.h"

namespace veritas {
namespace {

class OracleTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  Rng rng_{71};
};

double SumOf(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) s += x;
  return s;
}

TEST(SpreadDistributionTest, OneHot) {
  const auto d = SpreadDistribution(3, 1, 1.0);
  EXPECT_EQ(d, (std::vector<double>{0.0, 1.0, 0.0}));
}

TEST(SpreadDistributionTest, ConfidenceSpread) {
  const auto d = SpreadDistribution(3, 0, 0.7);
  EXPECT_NEAR(d[0], 0.7, 1e-12);
  EXPECT_NEAR(d[1], 0.15, 1e-12);
  EXPECT_NEAR(d[2], 0.15, 1e-12);
}

TEST(SpreadDistributionTest, ZeroTruthIsUniformOverRest) {
  const auto d = SpreadDistribution(3, 2, 0.0);
  EXPECT_NEAR(d[0], 0.5, 1e-12);
  EXPECT_NEAR(d[1], 0.5, 1e-12);
  EXPECT_NEAR(d[2], 0.0, 1e-12);
}

TEST(SpreadDistributionTest, SingleClaimAlwaysCertain) {
  EXPECT_EQ(SpreadDistribution(1, 0, 0.3), (std::vector<double>{1.0}));
}

TEST_F(OracleTest, PerfectReturnsTruthOneHot) {
  PerfectOracle oracle;
  const ItemId zootopia = *db_.FindItem("Zootopia");
  const auto answer = oracle.Answer(db_, zootopia, truth_, nullptr);
  ASSERT_TRUE(answer.ok());
  const ClaimIndex howard = *db_.FindClaim(zootopia, "Howard");
  EXPECT_DOUBLE_EQ((*answer)[howard], 1.0);
  EXPECT_NEAR(SumOf(*answer), 1.0, 1e-12);
}

TEST_F(OracleTest, PerfectFailsWithoutTruth) {
  PerfectOracle oracle;
  GroundTruth empty(db_);
  const auto answer = oracle.Answer(db_, 0, empty, nullptr);
  EXPECT_EQ(answer.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(OracleTest, PerfectRejectsBadItem) {
  PerfectOracle oracle;
  EXPECT_EQ(oracle.Answer(db_, 999, truth_, nullptr).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(OracleTest, ConfidenceAssignsStatedMass) {
  ConfidenceOracle oracle(0.8);
  const ItemId minions = *db_.FindItem("Minions");
  const auto answer = oracle.Answer(db_, minions, truth_, nullptr);
  ASSERT_TRUE(answer.ok());
  const ClaimIndex coffin = *db_.FindClaim(minions, "Coffin");
  EXPECT_NEAR((*answer)[coffin], 0.8, 1e-12);
  EXPECT_NEAR(SumOf(*answer), 1.0, 1e-12);
}

TEST_F(OracleTest, ConfidenceOneIsPerfect) {
  ConfidenceOracle oracle(1.0);
  const ItemId minions = *db_.FindItem("Minions");
  const auto answer = oracle.Answer(db_, minions, truth_, nullptr);
  ASSERT_TRUE(answer.ok());
  EXPECT_DOUBLE_EQ((*answer)[truth_.TrueClaim(minions)], 1.0);
}

TEST_F(OracleTest, IncorrectZeroRateIsAlwaysRight) {
  IncorrectOracle oracle(0.0);
  const ItemId rio = *db_.FindItem("Rio");
  for (int i = 0; i < 20; ++i) {
    const auto answer = oracle.Answer(db_, rio, truth_, &rng_);
    ASSERT_TRUE(answer.ok());
    EXPECT_DOUBLE_EQ((*answer)[truth_.TrueClaim(rio)], 1.0);
  }
}

TEST_F(OracleTest, IncorrectFullRateZeroesTruth) {
  IncorrectOracle oracle(1.0);
  const ItemId rio = *db_.FindItem("Rio");
  const auto answer = oracle.Answer(db_, rio, truth_, &rng_);
  ASSERT_TRUE(answer.ok());
  // §4.4(2): truth zeroed, uniform over the rest.
  EXPECT_DOUBLE_EQ((*answer)[truth_.TrueClaim(rio)], 0.0);
  EXPECT_NEAR(SumOf(*answer), 1.0, 1e-12);
}

TEST_F(OracleTest, IncorrectRateIsApproximatelyHonored) {
  IncorrectOracle oracle(0.3);
  const ItemId rio = *db_.FindItem("Rio");
  int wrong = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto answer = oracle.Answer(db_, rio, truth_, &rng_);
    ASSERT_TRUE(answer.ok());
    if ((*answer)[truth_.TrueClaim(rio)] == 0.0) ++wrong;
  }
  EXPECT_NEAR(static_cast<double>(wrong) / n, 0.3, 0.03);
}

TEST_F(OracleTest, ConflictingZeroFractionIsPerfect) {
  ConflictingOracle oracle(0.0, 0.5);
  const ItemId rio = *db_.FindItem("Rio");
  for (int i = 0; i < 20; ++i) {
    const auto answer = oracle.Answer(db_, rio, truth_, &rng_);
    ASSERT_TRUE(answer.ok());
    EXPECT_DOUBLE_EQ((*answer)[truth_.TrueClaim(rio)], 1.0);
  }
}

TEST_F(OracleTest, ConflictingFullFractionUsesConsensus) {
  ConflictingOracle oracle(1.0, 0.7);
  const ItemId rio = *db_.FindItem("Rio");
  const auto answer = oracle.Answer(db_, rio, truth_, &rng_);
  ASSERT_TRUE(answer.ok());
  EXPECT_NEAR((*answer)[truth_.TrueClaim(rio)], 0.7, 1e-12);
  EXPECT_NEAR(SumOf(*answer), 1.0, 1e-12);
}

TEST_F(OracleTest, SingletonItemAnswersAreCertainRegardlessOfErrors) {
  const ItemId dory = *db_.FindItem("Finding Dory");
  IncorrectOracle incorrect(1.0);
  const auto a = incorrect.Answer(db_, dory, truth_, &rng_);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*a, std::vector<double>{1.0});
  ConflictingOracle conflicting(1.0, 0.2);
  const auto b = conflicting.Answer(db_, dory, truth_, &rng_);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*b, std::vector<double>{1.0});
}

TEST_F(OracleTest, Names) {
  EXPECT_EQ(PerfectOracle().name(), "perfect");
  EXPECT_EQ(ConfidenceOracle(0.9).name(), "confidence:0.90");
  EXPECT_EQ(IncorrectOracle(0.25).name(), "incorrect:0.25");
  EXPECT_EQ(ConflictingOracle(0.3, 0.7).name(), "conflicting:0.30,0.70");
}

TEST(MakeOracleTest, ParsesAllSpecs) {
  struct Case {
    const char* spec;
    const char* expected_name;
  };
  const Case cases[] = {
      {"perfect", "perfect"},
      {"confidence:0.9", "confidence:0.90"},
      {"incorrect:0.25", "incorrect:0.25"},
      {"conflicting:0.3,0.7", "conflicting:0.30,0.70"},
  };
  for (const Case& c : cases) {
    auto oracle = MakeOracle(c.spec);
    ASSERT_TRUE(oracle.ok()) << c.spec;
    EXPECT_EQ((*oracle)->name(), c.expected_name);
  }
}

TEST(MakeOracleTest, RejectsBadSpecs) {
  EXPECT_EQ(MakeOracle("psychic").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(MakeOracle("confidence:abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeOracle("confidence:1.5").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeOracle("incorrect:-0.1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeOracle("conflicting:0.5").status().code(),
            StatusCode::kInvalidArgument);  // Needs two parameters.
  EXPECT_EQ(MakeOracle("conflicting:0.5,2.0").status().code(),
            StatusCode::kInvalidArgument);
}

// Every oracle's answer is always a valid distribution over the item's
// claims — sweep all (oracle, item) combinations.
class OracleDistributionTest
    : public ::testing::TestWithParam<int> {};

TEST_P(OracleDistributionTest, AnswersAreDistributions) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  Rng rng(GetParam());
  PerfectOracle perfect;
  ConfidenceOracle confidence(0.85);
  IncorrectOracle incorrect(0.4);
  ConflictingOracle conflicting(0.5, 0.6);
  for (FeedbackOracle* oracle :
       std::initializer_list<FeedbackOracle*>{&perfect, &confidence,
                                              &incorrect, &conflicting}) {
    for (ItemId i = 0; i < db.num_items(); ++i) {
      const auto answer = oracle->Answer(db, i, truth, &rng);
      ASSERT_TRUE(answer.ok()) << oracle->name();
      ASSERT_EQ(answer->size(), db.num_claims(i));
      double sum = 0.0;
      for (double p : *answer) {
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        sum += p;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9) << oracle->name() << " item " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleDistributionTest,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace veritas
