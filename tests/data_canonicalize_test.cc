// Tests of claim-value canonicalization (the paper's 10-minute flights
// preprocessing).
#include "data/canonicalize.h"

#include <gtest/gtest.h>

#include "model/database_builder.h"

namespace veritas {
namespace {

TEST(ParseNumericValueTest, PlainNumbers) {
  EXPECT_DOUBLE_EQ(*ParseNumericValue("42", false), 42.0);
  EXPECT_DOUBLE_EQ(*ParseNumericValue("-3.5", false), -3.5);
  EXPECT_DOUBLE_EQ(*ParseNumericValue("0", false), 0.0);
}

TEST(ParseNumericValueTest, ClockTimes) {
  EXPECT_DOUBLE_EQ(*ParseNumericValue("14:30", true), 14 * 60 + 30);
  EXPECT_DOUBLE_EQ(*ParseNumericValue("0:05", true), 5.0);
  EXPECT_DOUBLE_EQ(*ParseNumericValue("23:59", true), 23 * 60 + 59);
}

TEST(ParseNumericValueTest, ClockTimesDisabled) {
  EXPECT_FALSE(ParseNumericValue("14:30", false).has_value());
}

TEST(ParseNumericValueTest, Rejections) {
  EXPECT_FALSE(ParseNumericValue("", true).has_value());
  EXPECT_FALSE(ParseNumericValue("abc", true).has_value());
  EXPECT_FALSE(ParseNumericValue("12:3", true).has_value());   // 1-digit mins.
  EXPECT_FALSE(ParseNumericValue("25:00", true).has_value());  // Bad hour.
  EXPECT_FALSE(ParseNumericValue("12:61", true).has_value());  // Bad minute.
  EXPECT_FALSE(ParseNumericValue("12:", true).has_value());
  EXPECT_FALSE(ParseNumericValue(":30", true).has_value());
  EXPECT_FALSE(ParseNumericValue("12a", true).has_value());
}

Database FlightTimes() {
  DatabaseBuilder builder;
  // Three sources report close times, one reports a very different time.
  EXPECT_TRUE(builder.AddObservation("s1", "UA100-arr", "14:30").ok());
  EXPECT_TRUE(builder.AddObservation("s2", "UA100-arr", "14:35").ok());
  EXPECT_TRUE(builder.AddObservation("s3", "UA100-arr", "14:38").ok());
  EXPECT_TRUE(builder.AddObservation("s4", "UA100-arr", "16:00").ok());
  return builder.Build();
}

TEST(CanonicalizeTest, MergesValuesWithinTolerance) {
  const Database db = FlightTimes();
  ASSERT_EQ(db.num_claims(0), 4u);
  const auto report = CanonicalizeValues(db, CanonicalizeOptions{});
  ASSERT_TRUE(report.ok());
  // 14:30/14:35/14:38 chain-merge (gaps 5 and 3 <= 10); 16:00 stays.
  EXPECT_EQ(report->db.num_claims(0), 2u);
  EXPECT_EQ(report->merged_claims, 2u);
  EXPECT_EQ(report->numeric_items, 1u);
  // Votes preserved: 3 on the merged claim, 1 on 16:00.
  const ItemId item = *report->db.FindItem("UA100-arr");
  std::size_t total_votes = 0;
  for (const Claim& claim : report->db.item(item).claims) {
    total_votes += claim.sources.size();
  }
  EXPECT_EQ(total_votes, 4u);
}

TEST(CanonicalizeTest, RepresentativeIsMostVoted) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "100").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "105").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "105").ok());
  const auto report = CanonicalizeValues(builder.Build());
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->db.num_claims(0), 1u);
  EXPECT_EQ(report->db.item(0).claims[0].value, "105");
}

TEST(CanonicalizeTest, NoMergeBeyondTolerance) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "100").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "150").ok());
  const auto report = CanonicalizeValues(builder.Build());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->db.num_claims(0), 2u);
  EXPECT_EQ(report->merged_claims, 0u);
}

TEST(CanonicalizeTest, NonNumericValuesUntouched) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "book", "Knuth").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "book", "Knueth").ok());
  const auto report = CanonicalizeValues(builder.Build());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->db.num_claims(0), 2u);
  EXPECT_EQ(report->numeric_items, 0u);
}

TEST(CanonicalizeTest, MixedNumericAndLiteralClaims) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "10").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "12").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "unknown").ok());
  const auto report = CanonicalizeValues(builder.Build());
  ASSERT_TRUE(report.ok());
  // 10/12 merge; "unknown" survives.
  EXPECT_EQ(report->db.num_claims(0), 2u);
  EXPECT_TRUE(report->db.FindClaim(0, "unknown").ok());
}

TEST(CanonicalizeTest, SourceVotingForTwoMergedValuesCollapses) {
  // Two items: on "y", s1 votes 20 and s2 votes 21 -> merge; both vote the
  // same canonical value afterwards.
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "y", "20").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "y", "21").ok());
  const auto report = CanonicalizeValues(builder.Build());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->db.num_claims(0), 1u);
  EXPECT_EQ(report->db.item(0).claims[0].sources.size(), 2u);
}

TEST(CanonicalizeTest, ChainMergingIsSingleLinkage) {
  // 0, 8, 16, 24: each adjacent gap is 8 <= 10, so ALL merge even though
  // the extremes are 24 apart (single linkage, as with time-lag chains).
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "0").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "8").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "16").ok());
  ASSERT_TRUE(builder.AddObservation("s4", "x", "24").ok());
  const auto report = CanonicalizeValues(builder.Build());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->db.num_claims(0), 1u);
}

TEST(CanonicalizeTest, ZeroToleranceMergesExactDuplicatesOnly) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "5").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "5.0").ok());  // Same number.
  ASSERT_TRUE(builder.AddObservation("s3", "x", "6").ok());
  CanonicalizeOptions options;
  options.numeric_tolerance = 0.0;
  const auto report = CanonicalizeValues(builder.Build(), options);
  ASSERT_TRUE(report.ok());
  // "5" and "5.0" parse equal -> merge; "6" stays.
  EXPECT_EQ(report->db.num_claims(0), 2u);
}

TEST(CanonicalizeTest, NegativeToleranceRejected) {
  CanonicalizeOptions options;
  options.numeric_tolerance = -1.0;
  const auto report = CanonicalizeValues(FlightTimes(), options);
  EXPECT_EQ(report.status().code(), StatusCode::kInvalidArgument);
}

TEST(CanonicalizeTest, PreservesItemAndSourceUniverse) {
  const Database db = FlightTimes();
  const auto report = CanonicalizeValues(db);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->db.num_items(), db.num_items());
  EXPECT_EQ(report->db.num_sources(), db.num_sources());
  EXPECT_EQ(report->db.num_observations(), db.num_observations());
}

}  // namespace
}  // namespace veritas
