// Tests of the crowd substrate: simulated worker pool, majority and EM
// consolidation, and the CrowdOracle feedback pipeline (§4.4).
#include <gtest/gtest.h>

#include "core/session.h"
#include "core/qbc.h"
#include "crowd/consolidation.h"
#include "crowd/worker_pool.h"
#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

WorkerPoolConfig SmallPool() {
  WorkerPoolConfig config;
  config.num_workers = 10;
  config.accuracy_mean = 0.8;
  config.accuracy_sd = 0.1;
  config.answers_per_item = 5;
  config.seed = 5;
  return config;
}

TEST(WorkerPoolTest, AccuraciesWithinBounds) {
  WorkerPool pool(SmallPool());
  EXPECT_EQ(pool.num_workers(), 10u);
  for (WorkerId w = 0; w < pool.num_workers(); ++w) {
    EXPECT_GE(pool.true_accuracy(w), 0.05);
    EXPECT_LE(pool.true_accuracy(w), 0.99);
  }
}

TEST(WorkerPoolTest, AskReturnsDistinctWorkers) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  WorkerPool pool(SmallPool());
  const auto answers = pool.Ask(db, *db.FindItem("Minions"), truth);
  ASSERT_EQ(answers.size(), 5u);
  std::set<WorkerId> workers;
  for (const WorkerAnswer& a : answers) {
    EXPECT_TRUE(workers.insert(a.worker).second);
    EXPECT_LT(a.claim, db.num_claims(*db.FindItem("Minions")));
  }
}

TEST(WorkerPoolTest, AskCappedByPoolSize) {
  WorkerPoolConfig config = SmallPool();
  config.num_workers = 3;
  config.answers_per_item = 10;
  WorkerPool pool(config);
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  EXPECT_EQ(pool.Ask(db, 0, truth).size(), 3u);
}

TEST(WorkerPoolTest, AnswerAccuracyTracksWorkerAccuracy) {
  WorkerPoolConfig config = SmallPool();
  config.num_workers = 1;
  config.accuracy_mean = 0.9;
  config.accuracy_sd = 0.0;
  config.answers_per_item = 1;
  WorkerPool pool(config);
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  const ItemId minions = *db.FindItem("Minions");
  int correct = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) {
    const auto answers = pool.Ask(db, minions, truth);
    if (answers[0].claim == truth.TrueClaim(minions)) ++correct;
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, pool.true_accuracy(0), 0.03);
}

TEST(WorkerPoolTest, AnswerCountsTracked) {
  WorkerPool pool(SmallPool());
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  pool.Ask(db, 0, truth);
  pool.Ask(db, 1, truth);
  std::size_t total = 0;
  for (std::size_t c : pool.answer_counts()) total += c;
  EXPECT_EQ(total, 10u);  // 2 items x 5 answers.
}

TEST(MajorityConsolidationTest, CountsAnswers) {
  ItemAnswers answers;
  answers.num_claims = 3;
  answers.answers = {{0, 0}, {1, 0}, {2, 1}, {3, 0}, {4, 2}};
  const auto dist = ConsolidateByMajority(answers);
  EXPECT_NEAR(dist[0], 0.6, 1e-12);
  EXPECT_NEAR(dist[1], 0.2, 1e-12);
  EXPECT_NEAR(dist[2], 0.2, 1e-12);
}

TEST(MajorityConsolidationTest, NoAnswersIsUniform) {
  ItemAnswers answers;
  answers.num_claims = 2;
  const auto dist = ConsolidateByMajority(answers);
  EXPECT_NEAR(dist[0], 0.5, 1e-12);
  EXPECT_NEAR(dist[1], 0.5, 1e-12);
}

TEST(EmConsolidationTest, UnanimousAnswersConverge) {
  std::vector<ItemAnswers> items(1);
  items[0].num_claims = 2;
  items[0].answers = {{0, 1}, {1, 1}, {2, 1}};
  const EmConsolidation em = ConsolidateByEm(items, 3);
  EXPECT_TRUE(em.converged);
  EXPECT_GT(em.item_distributions[0][1], 0.95);
}

TEST(EmConsolidationTest, OutvotesUnreliableWorker) {
  // Worker 0 disagrees with workers 1..3 on every item; EM should learn
  // worker 0 is unreliable and side with the majority — including on an
  // item where only worker 0 and worker 1 answered.
  std::vector<ItemAnswers> items;
  for (int i = 0; i < 6; ++i) {
    ItemAnswers item;
    item.num_claims = 2;
    item.answers = {{0, 0}, {1, 1}, {2, 1}, {3, 1}};
    items.push_back(item);
  }
  ItemAnswers tie;  // Worker 0 says claim 0, worker 1 says claim 1.
  tie.num_claims = 2;
  tie.answers = {{0, 0}, {1, 1}};
  items.push_back(tie);

  const EmConsolidation em = ConsolidateByEm(items, 4);
  EXPECT_LT(em.worker_accuracies[0], em.worker_accuracies[1]);
  // The tie breaks toward the reliable worker.
  EXPECT_GT(em.item_distributions.back()[1], 0.5);
}

TEST(EmConsolidationTest, DistributionsValid) {
  std::vector<ItemAnswers> items(3);
  items[0].num_claims = 2;
  items[0].answers = {{0, 0}, {1, 1}};
  items[1].num_claims = 3;
  items[1].answers = {{0, 2}, {1, 2}, {2, 0}};
  items[2].num_claims = 2;
  items[2].answers = {{2, 0}};
  const EmConsolidation em = ConsolidateByEm(items, 3);
  for (const auto& dist : em.item_distributions) {
    double sum = 0.0;
    for (double p : dist) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  for (double a : em.worker_accuracies) {
    EXPECT_GE(a, 0.0);
    EXPECT_LE(a, 1.0);
  }
}

TEST(EmConsolidationTest, RecoverWorkerQualityOnSimulatedCrowd) {
  // Generate many items answered by the pool and check EM ranks the best
  // and worst workers correctly.
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  WorkerPoolConfig config;
  config.num_workers = 8;
  config.accuracy_mean = 0.75;
  config.accuracy_sd = 0.15;
  config.answers_per_item = 8;  // Everyone answers.
  config.seed = 17;
  WorkerPool pool(config);

  std::vector<ItemAnswers> history;
  for (int round = 0; round < 40; ++round) {
    for (ItemId i : db.ConflictingItems()) {
      ItemAnswers item;
      item.item = i;
      item.num_claims = db.num_claims(i);
      item.answers = pool.Ask(db, i, truth);
      history.push_back(item);
    }
  }
  const EmConsolidation em = ConsolidateByEm(history, pool.num_workers());
  WorkerId best = 0, worst = 0;
  for (WorkerId w = 1; w < pool.num_workers(); ++w) {
    if (pool.true_accuracy(w) > pool.true_accuracy(best)) best = w;
    if (pool.true_accuracy(w) < pool.true_accuracy(worst)) worst = w;
  }
  EXPECT_GT(em.worker_accuracies[best], em.worker_accuracies[worst]);
}

TEST(CrowdOracleTest, MajorityModeAnswersAreDistributions) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  WorkerPool pool(SmallPool());
  CrowdOracle oracle(&pool, CrowdOracle::Mode::kMajority);
  EXPECT_EQ(oracle.name(), "crowd:majority");
  const auto answer = oracle.Answer(db, *db.FindItem("Minions"), truth,
                                    nullptr);
  ASSERT_TRUE(answer.ok());
  double sum = 0.0;
  for (double p : *answer) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(oracle.history().size(), 1u);
}

TEST(CrowdOracleTest, EmModeUsesHistory) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  WorkerPool pool(SmallPool());
  CrowdOracle oracle(&pool, CrowdOracle::Mode::kEm);
  EXPECT_EQ(oracle.name(), "crowd:em");
  for (ItemId i : db.ConflictingItems()) {
    const auto answer = oracle.Answer(db, i, truth, nullptr);
    ASSERT_TRUE(answer.ok());
  }
  EXPECT_EQ(oracle.history().size(), 5u);
}

TEST(CrowdOracleTest, RequiresTruth) {
  const Database db = MakeMovieDatabase();
  GroundTruth empty(db);
  WorkerPool pool(SmallPool());
  CrowdOracle oracle(&pool, CrowdOracle::Mode::kMajority);
  EXPECT_EQ(oracle.Answer(db, 0, empty, nullptr).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(CrowdOracleTest, FullSessionWithCrowdFeedback) {
  DenseConfig config;
  config.num_items = 60;
  config.num_sources = 10;
  config.density = 0.5;
  config.seed = 33;
  const SyntheticDataset data = GenerateDense(config);
  WorkerPoolConfig pool_config;
  pool_config.num_workers = 15;
  pool_config.accuracy_mean = 0.85;
  pool_config.answers_per_item = 7;
  pool_config.seed = 2;
  WorkerPool pool(pool_config);
  CrowdOracle oracle(&pool, CrowdOracle::Mode::kEm);

  AccuFusion model;
  QbcStrategy strategy;
  SessionOptions options;
  options.max_validations = 15;
  Rng rng(4);
  FeedbackSession session(data.db, model, &strategy, &oracle, data.truth,
                          options, &rng);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->priors.size(), 15u);
  // A reasonably accurate crowd should still improve fusion.
  EXPECT_LT(trace->steps.back().distance, trace->initial_distance);
}

TEST(WorkerPoolTest, InjectedNoShowsReduceTheAnswerSet) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  WorkerPool pool(SmallPool());
  FaultInjector injector(6);
  FaultPlan plan;
  plan.probability = 1.0;  // Every sampled worker no-shows.
  injector.SetPlan("worker", plan);
  pool.set_fault_injector(&injector);
  EXPECT_TRUE(pool.Ask(db, 0, truth).empty());
  EXPECT_EQ(pool.num_no_shows(), 5u);
  // Detaching restores full attendance.
  pool.set_fault_injector(nullptr);
  EXPECT_EQ(pool.Ask(db, 0, truth).size(), 5u);
  EXPECT_EQ(pool.num_no_shows(), 5u);
}

TEST(WorkerPoolTest, NoShowsDoNotCountAsAnswers) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  WorkerPool pool(SmallPool());
  FaultInjector injector(6);
  FaultPlan plan;
  plan.fail_first_n = 2;  // First two sampled workers are absent.
  injector.SetPlan("worker", plan);
  pool.set_fault_injector(&injector);
  const auto answers = pool.Ask(db, 0, truth);
  EXPECT_EQ(answers.size(), 3u);
  EXPECT_EQ(pool.num_no_shows(), 2u);
  std::size_t total_answers = 0;
  for (std::size_t c : pool.answer_counts()) total_answers += c;
  EXPECT_EQ(total_answers, 3u);  // Absent workers earn no credit.
}

}  // namespace
}  // namespace veritas
