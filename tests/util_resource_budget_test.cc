// Resource budget semantics: zero fields mean unlimited, the byte limit is
// exclusive (`>`), the per-run round quota is inclusive (`>=`, the quota is
// "rounds allowed this run"), and a byte breach outranks a round breach in
// the verdict (memory pressure is the more urgent eviction signal).
#include <gtest/gtest.h>

#include "util/resource_budget.h"

namespace veritas {
namespace {

TEST(ResourceBudgetTest, DefaultIsUnlimited) {
  ResourceBudget budget;
  EXPECT_FALSE(budget.limited());
  ResourceUsage usage;
  usage.approx_bytes = 1u << 30;
  usage.rounds_this_run = 1000000;
  EXPECT_EQ(CheckBudget(budget, usage), BudgetVerdict::kWithin);
}

TEST(ResourceBudgetTest, EitherFieldMakesItLimited) {
  ResourceBudget bytes_only;
  bytes_only.max_approx_bytes = 1;
  EXPECT_TRUE(bytes_only.limited());
  ResourceBudget rounds_only;
  rounds_only.max_rounds_per_run = 1;
  EXPECT_TRUE(rounds_only.limited());
}

TEST(ResourceBudgetTest, ByteLimitIsExclusive) {
  ResourceBudget budget;
  budget.max_approx_bytes = 100;
  ResourceUsage usage;
  usage.approx_bytes = 100;
  EXPECT_EQ(CheckBudget(budget, usage), BudgetVerdict::kWithin);
  usage.approx_bytes = 101;
  EXPECT_EQ(CheckBudget(budget, usage), BudgetVerdict::kBytesExceeded);
}

TEST(ResourceBudgetTest, RoundQuotaIsInclusive) {
  ResourceBudget budget;
  budget.max_rounds_per_run = 3;
  ResourceUsage usage;
  usage.rounds_this_run = 2;
  EXPECT_EQ(CheckBudget(budget, usage), BudgetVerdict::kWithin);
  usage.rounds_this_run = 3;  // Quota spent: the 3rd round was the last.
  EXPECT_EQ(CheckBudget(budget, usage), BudgetVerdict::kRoundsExceeded);
}

TEST(ResourceBudgetTest, BytesOutrankRounds) {
  ResourceBudget budget;
  budget.max_approx_bytes = 10;
  budget.max_rounds_per_run = 1;
  ResourceUsage usage;
  usage.approx_bytes = 11;
  usage.rounds_this_run = 5;
  EXPECT_EQ(CheckBudget(budget, usage), BudgetVerdict::kBytesExceeded);
}

TEST(ResourceBudgetTest, BreachDescriptionNamesTheNumbers) {
  ResourceBudget budget;
  budget.max_approx_bytes = 10;
  budget.max_rounds_per_run = 2;
  ResourceUsage usage;
  usage.approx_bytes = 11;
  usage.rounds_this_run = 2;
  const std::string bytes_msg =
      DescribeBudgetBreach(BudgetVerdict::kBytesExceeded, budget, usage);
  EXPECT_NE(bytes_msg.find("11"), std::string::npos) << bytes_msg;
  EXPECT_NE(bytes_msg.find("10"), std::string::npos) << bytes_msg;
  const std::string rounds_msg =
      DescribeBudgetBreach(BudgetVerdict::kRoundsExceeded, budget, usage);
  EXPECT_NE(rounds_msg.find("2"), std::string::npos) << rounds_msg;
}

}  // namespace
}  // namespace veritas
