// Tests of the deterministic item partition behind the sharded candidate
// scan (model/shard_partition.h, DESIGN.md §5h).
#include "model/shard_partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "data/synthetic.h"
#include "model/compiled_database.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

SyntheticDataset MakeLongTail() {
  LongTailConfig config;
  config.num_items = 300;
  config.num_sources = 120;
  config.avg_votes_per_item = 6.0;
  config.seed = 7;
  return GenerateLongTail(config);
}

TEST(ShardPartitionTest, EveryItemInExactlyOneShard) {
  const SyntheticDataset data = MakeLongTail();
  const CompiledDatabase compiled(data.db);
  const ShardPartition partition(compiled, 4);
  ASSERT_EQ(partition.num_shards(), 4u);

  std::vector<int> seen(compiled.num_items(), 0);
  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    for (const ItemId i : partition.items(s)) {
      ASSERT_LT(i, compiled.num_items());
      EXPECT_EQ(partition.shard_of(i), s);
      ++seen[i];
    }
    // Ascending item-id order within a shard.
    EXPECT_TRUE(std::is_sorted(partition.items(s).begin(),
                               partition.items(s).end()));
  }
  for (ItemId i = 0; i < compiled.num_items(); ++i) {
    EXPECT_EQ(seen[i], 1) << "item " << i;
  }
}

TEST(ShardPartitionTest, RebuildIsBitIdentical) {
  const SyntheticDataset data = MakeLongTail();
  const CompiledDatabase compiled(data.db);
  const ShardPartition a(compiled, 8);
  const ShardPartition b(compiled, 8);
  EXPECT_EQ(a.shard_map(), b.shard_map());
  ASSERT_EQ(a.num_shards(), b.num_shards());
  for (std::size_t s = 0; s < a.num_shards(); ++s) {
    EXPECT_EQ(a.items(s), b.items(s));
    EXPECT_EQ(a.conflict_items(s), b.conflict_items(s));
    EXPECT_EQ(a.weight(s), b.weight(s));
  }
  // A fresh compile of the same database yields the same map too: the
  // partition is a pure function of the compiled view's content.
  const CompiledDatabase recompiled(data.db);
  const ShardPartition c(recompiled, 8);
  EXPECT_EQ(a.shard_map(), c.shard_map());
}

TEST(ShardPartitionTest, ConflictItemsAreExactlyTheMultiClaimItems) {
  const SyntheticDataset data = MakeLongTail();
  const CompiledDatabase compiled(data.db);
  const ShardPartition partition(compiled, 3);
  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    std::vector<ItemId> expected;
    for (const ItemId i : partition.items(s)) {
      if (compiled.item_num_claims(i) > 1) expected.push_back(i);
    }
    EXPECT_EQ(partition.conflict_items(s), expected) << "shard " << s;
  }
}

TEST(ShardPartitionTest, WeightsSumVoteMass) {
  const SyntheticDataset data = MakeLongTail();
  const CompiledDatabase compiled(data.db);
  const ShardPartition partition(compiled, 5);
  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    std::size_t votes = 0;
    for (const ItemId i : partition.items(s)) {
      votes += compiled.item_votes_end(i) - compiled.item_votes_begin(i);
    }
    EXPECT_EQ(partition.weight(s), votes) << "shard " << s;
  }
}

TEST(ShardPartitionTest, MoreShardsThanItemsLeavesEmptyShards) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s0", "i0", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s1", "i0", "b").ok());
  ASSERT_TRUE(builder.AddObservation("s0", "i1", "c").ok());
  const Database db = builder.Build();
  const CompiledDatabase compiled(db);
  const ShardPartition partition(compiled, 6);
  ASSERT_EQ(partition.num_shards(), 6u);
  std::size_t assigned = 0;
  std::size_t empty = 0;
  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    assigned += partition.items(s).size();
    if (partition.items(s).empty()) {
      ++empty;
      EXPECT_TRUE(partition.conflict_items(s).empty());
      EXPECT_EQ(partition.weight(s), 0u);
    }
  }
  EXPECT_EQ(assigned, compiled.num_items());
  EXPECT_GE(empty, 4u);
}

TEST(ShardPartitionTest, ShardCountClampedToOne) {
  const SyntheticDataset data = MakeLongTail();
  const CompiledDatabase compiled(data.db);
  const ShardPartition partition(compiled, 0);
  ASSERT_EQ(partition.num_shards(), 1u);
  EXPECT_EQ(partition.items(0).size(), compiled.num_items());
  EXPECT_EQ(partition.epoch(), compiled.epoch());
}

}  // namespace
}  // namespace veritas
