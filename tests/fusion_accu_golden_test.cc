// Hand-computed golden tests of Eq. (1): single probability passes with
// known accuracies, checked against closed-form arithmetic (no iteration).
#include <cmath>

#include <gtest/gtest.h>

#include "fusion/accu.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

// Three sources, one 2-claim item: a (s1, s2) vs b (s3).
Database TwoClaimItem() {
  DatabaseBuilder builder;
  EXPECT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  EXPECT_TRUE(builder.AddObservation("s2", "x", "a").ok());
  EXPECT_TRUE(builder.AddObservation("s3", "x", "b").ok());
  return builder.Build();
}

TEST(AccuGoldenTest, TwoClaimSingleApplication) {
  // With A = (0.9, 0.6, 0.8) and |V|-1 = 1:
  //   w(s) = A/(1-A):  s1 -> 9, s2 -> 1.5, s3 -> 4
  //   score(a) = 9 * 1.5 = 13.5, score(b) = 4
  //   p(a) = 13.5 / 17.5.
  const Database db = TwoClaimItem();
  std::vector<double> accuracies(3);
  accuracies[*db.FindSource("s1")] = 0.9;
  accuracies[*db.FindSource("s2")] = 0.6;
  accuracies[*db.FindSource("s3")] = 0.8;
  const auto probs = AccuFusion::ClaimProbabilities(db, 0, accuracies);
  const ClaimIndex a = *db.FindClaim(0, "a");
  const ClaimIndex b = *db.FindClaim(0, "b");
  EXPECT_NEAR(probs[a], 13.5 / 17.5, 1e-12);
  EXPECT_NEAR(probs[b], 4.0 / 17.5, 1e-12);
}

TEST(AccuGoldenTest, SingleVoteEachSideReducesToOddsRatio) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("p", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("q", "x", "b").ok());
  const Database db = builder.Build();
  std::vector<double> accuracies(2);
  accuracies[*db.FindSource("p")] = 0.75;  // Odds 3.
  accuracies[*db.FindSource("q")] = 0.5;   // Odds 1.
  const auto probs = AccuFusion::ClaimProbabilities(db, 0, accuracies);
  EXPECT_NEAR(probs[*db.FindClaim(0, "a")], 3.0 / 4.0, 1e-12);
}

TEST(AccuGoldenTest, ThreeClaimFalseValueFactor) {
  // |V| = 3 so each vote's weight is 2A/(1-A):
  //   A = 0.8 everywhere -> weight 8 per vote.
  //   votes: a x2, b x1, c x1 -> scores 64, 8, 8 -> p(a) = 64/80 = 0.8.
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "b").ok());
  ASSERT_TRUE(builder.AddObservation("s4", "x", "c").ok());
  const Database db = builder.Build();
  const std::vector<double> accuracies(4, 0.8);
  const auto probs = AccuFusion::ClaimProbabilities(db, 0, accuracies);
  EXPECT_NEAR(probs[*db.FindClaim(0, "a")], 0.8, 1e-12);
  EXPECT_NEAR(probs[*db.FindClaim(0, "b")], 0.1, 1e-12);
  EXPECT_NEAR(probs[*db.FindClaim(0, "c")], 0.1, 1e-12);
}

TEST(AccuGoldenTest, LogScoresMatchHandComputation) {
  const Database db = TwoClaimItem();
  std::vector<double> accuracies(3, 0.8);
  const auto scores = AccuFusion::ClaimLogScores(db, 0, accuracies);
  // Each vote contributes ln(1 * 0.8 / 0.2) = ln 4.
  EXPECT_NEAR(scores[*db.FindClaim(0, "a")], 2.0 * std::log(4.0), 1e-12);
  EXPECT_NEAR(scores[*db.FindClaim(0, "b")], std::log(4.0), 1e-12);
}

TEST(AccuGoldenTest, AccuracyUpdateIsMeanOfClaimProbabilities) {
  // Eq. (2) after one probability pass with initial A = 0.8 everywhere.
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "b").ok());
  ASSERT_TRUE(builder.AddObservation("s1", "y", "c").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "y", "c").ok());
  const Database db = builder.Build();
  AccuFusion model;
  FusionOptions opts;
  opts.max_iterations = 1;
  const FusionResult r = model.Fuse(db, opts);
  // After iteration 1: p(x:a) = p(x:b) = 0.5, p(y:c) = 1.
  // A(s1) = (0.5 + 1) / 2 = 0.75 (same for s2); the final probability pass
  // re-applies Eq. (1) with those accuracies — x stays split by symmetry.
  EXPECT_NEAR(r.accuracy(*db.FindSource("s1")), 0.75, 1e-9);
  EXPECT_NEAR(r.accuracy(*db.FindSource("s2")), 0.75, 1e-9);
  EXPECT_NEAR(r.prob(*db.FindItem("x"), 0), 0.5, 1e-9);
}

TEST(AccuGoldenTest, ExtremeAccuracySourceDominates) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("expert", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("n1", "x", "b").ok());
  ASSERT_TRUE(builder.AddObservation("n2", "x", "b").ok());
  ASSERT_TRUE(builder.AddObservation("n3", "x", "b").ok());
  const Database db = builder.Build();
  std::vector<double> accuracies(4, 0.6);  // Odds 1.5 each.
  accuracies[*db.FindSource("expert")] = 0.99;  // Odds 99.
  const auto probs = AccuFusion::ClaimProbabilities(db, 0, accuracies);
  // score(a) = 99 vs score(b) = 1.5^3 = 3.375 -> expert wins big.
  EXPECT_NEAR(probs[*db.FindClaim(0, "a")], 99.0 / (99.0 + 3.375), 1e-9);
}

}  // namespace
}  // namespace veritas
