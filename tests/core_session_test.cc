// Tests of the FeedbackSession validation loop (§5's evaluation protocol).
#include "core/session.h"

#include <gtest/gtest.h>

#include "core/qbc.h"
#include "core/random_strategy.h"
#include "core/us.h"
#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  AccuFusion model_;
  Rng rng_{17};
};

TEST_F(SessionTest, ValidatesAllConflictingItems) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->steps.size(), 5u);  // 5 conflicting items.
  EXPECT_EQ(trace->steps.back().num_validated, 5u);
  EXPECT_EQ(trace->priors.size(), 5u);
}

TEST_F(SessionTest, PerfectFeedbackDrivesDistanceToZero) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  // All conflicting items pinned to truth; singletons are trivially right.
  EXPECT_NEAR(trace->steps.back().distance, 0.0, 1e-9);
  EXPECT_NEAR(trace->steps.back().uncertainty, 0.0, 1e-9);
}

TEST_F(SessionTest, MaxValidationsIsHonored) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = 2;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->steps.size(), 2u);
  EXPECT_EQ(trace->priors.size(), 2u);
}

TEST_F(SessionTest, CumulativeValidationCountsAreMonotone) {
  RandomStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  std::size_t prev = 0;
  for (const SessionStep& step : trace->steps) {
    EXPECT_GT(step.num_validated, prev);
    prev = step.num_validated;
  }
}

TEST_F(SessionTest, BatchModeValidatesInGroups) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.batch_size = 2;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  // 5 conflicting items in batches of 2: 2 + 2 + 1.
  ASSERT_EQ(trace->steps.size(), 3u);
  EXPECT_EQ(trace->steps[0].items.size(), 2u);
  EXPECT_EQ(trace->steps[1].items.size(), 2u);
  EXPECT_EQ(trace->steps[2].items.size(), 1u);
  EXPECT_EQ(trace->steps.back().num_validated, 5u);
}

TEST_F(SessionTest, BatchCappedByRemainingBudget) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.batch_size = 4;
  options.max_validations = 3;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->priors.size(), 3u);
}

TEST_F(SessionTest, NoItemValidatedTwice) {
  RandomStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  std::set<ItemId> validated;
  for (const SessionStep& step : trace->steps) {
    for (ItemId i : step.items) {
      EXPECT_TRUE(validated.insert(i).second) << "item " << i << " repeated";
    }
  }
}

TEST_F(SessionTest, InitialMetricsRecorded) {
  UsStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = 1;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_GT(trace->initial_distance, 0.0);
  EXPECT_GT(trace->initial_uncertainty, 0.0);
}

TEST_F(SessionTest, ReductionPercentagesAreConsistent) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  const std::size_t last = trace->steps.size() - 1;
  // Distance hits zero at the end, so the reduction is -100%.
  EXPECT_NEAR(trace->DistanceReductionPercent(last), -100.0, 1e-6);
  EXPECT_NEAR(trace->UncertaintyReductionPercent(last), -100.0, 1e-6);
  // Out-of-range index is 0 by convention.
  EXPECT_DOUBLE_EQ(trace->DistanceReductionPercent(999), 0.0);
}

TEST_F(SessionTest, FinalFusionMatchesPriors) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  for (ItemId i : trace->priors.Items()) {
    EXPECT_DOUBLE_EQ(trace->final_fusion.prob(i, truth_.TrueClaim(i)), 1.0);
  }
}

TEST_F(SessionTest, FailsWhenOracleCannotAnswer) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  GroundTruth empty(db_);  // No truth -> oracle must fail.
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, empty, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SessionTest, WarmAndColdSessionsAgreeOnFinalState) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions warm_opts;
  warm_opts.warm_start = true;
  SessionOptions cold_opts;
  cold_opts.warm_start = false;
  Rng rng_a(5), rng_b(5);
  FeedbackSession warm(db_, model_, &strategy, &oracle, truth_, warm_opts,
                       &rng_a);
  const auto warm_trace = warm.Run();
  strategy.Reset();
  FeedbackSession cold(db_, model_, &strategy, &oracle, truth_, cold_opts,
                       &rng_b);
  const auto cold_trace = cold.Run();
  ASSERT_TRUE(warm_trace.ok());
  ASSERT_TRUE(cold_trace.ok());
  EXPECT_NEAR(warm_trace->steps.back().distance,
              cold_trace->steps.back().distance, 1e-6);
}

TEST_F(SessionTest, MeanSelectSecondsIsFinite) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_GE(trace->MeanSelectSeconds(), 0.0);
  EXPECT_LT(trace->MeanSelectSeconds(), 10.0);
}

TEST_F(SessionTest, RecordMetricsOffSkipsMetricComputation) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.record_metrics = false;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  for (const SessionStep& step : trace->steps) {
    EXPECT_DOUBLE_EQ(step.distance, 0.0);
    EXPECT_DOUBLE_EQ(step.uncertainty, 0.0);
  }
}

TEST_F(SessionTest, NoisyOracleSessionStillTerminates) {
  RandomStrategy strategy;
  IncorrectOracle oracle(0.5);
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->steps.back().num_validated, 5u);
}

TEST_F(SessionTest, LargerSyntheticSessionReachesZeroDistance) {
  DenseConfig config;
  config.num_items = 80;
  config.num_sources = 12;
  config.density = 0.5;
  config.seed = 8;
  const SyntheticDataset data = GenerateDense(config);
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  Rng rng(3);
  FeedbackSession session(data.db, model_, &strategy, &oracle, data.truth,
                          options, &rng);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  // All conflicting items validated with the truth; the only remaining
  // distance would come from items whose true claim no source provided
  // (those are non-conflicting and not validatable).
  for (ItemId i : data.db.ConflictingItems()) {
    EXPECT_TRUE(trace->priors.Has(i));
  }
  EXPECT_LT(trace->steps.back().distance, trace->initial_distance);
}

}  // namespace
}  // namespace veritas
