// Property sweeps over the extension modules: canonicalization invariants,
// crowd-EM validity, AccuCopy false-positive behaviour, LCA conformance
// corners, and export/load round-trips across generator shapes and seeds.
#include <gtest/gtest.h>

#include "crowd/consolidation.h"
#include "data/canonicalize.h"
#include "data/synthetic.h"
#include "exp/export.h"
#include "fusion/accu.h"
#include "fusion/accu_copy.h"
#include "fusion/lca.h"
#include "model/database_builder.h"
#include "util/math.h"
#include "util/csv.h"
#include "util/stats.h"

namespace veritas {
namespace {

// ---------- Canonicalization properties ----------

class CanonicalizePropertyTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// Numeric datasets: generated items get numeric values "0","10","20",...
// with per-source jitter, so clustering has real work to do.
Database NumericJitterDatabase(std::uint64_t seed) {
  Rng rng(seed);
  DatabaseBuilder builder;
  for (int i = 0; i < 50; ++i) {
    const int base = i * 1000;
    for (int s = 0; s < 6; ++s) {
      // Jitter within +-4 (mergeable) or a far-off value (distinct claim).
      const bool outlier = rng.Bernoulli(0.2);
      const int value =
          outlier ? base + 500 : base + static_cast<int>(rng.UniformIndex(9)) - 4;
      const Status st =
          builder.AddObservation("s" + std::to_string(s),
                                 "item" + std::to_string(i),
                                 std::to_string(value));
      EXPECT_TRUE(st.ok());
    }
  }
  return builder.Build();
}

TEST_P(CanonicalizePropertyTest, Idempotent) {
  const Database db = NumericJitterDatabase(GetParam());
  const auto once = CanonicalizeValues(db);
  ASSERT_TRUE(once.ok());
  const auto twice = CanonicalizeValues(once->db);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(twice->merged_claims, 0u);
  EXPECT_EQ(twice->db.num_claims(), once->db.num_claims());
}

TEST_P(CanonicalizePropertyTest, PreservesObservationsAndNeverAddsClaims) {
  const Database db = NumericJitterDatabase(GetParam());
  const auto report = CanonicalizeValues(db);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->db.num_observations(), db.num_observations());
  EXPECT_LE(report->db.num_claims(), db.num_claims());
  EXPECT_EQ(report->db.num_items(), db.num_items());
  EXPECT_EQ(db.num_claims() - report->db.num_claims(),
            report->merged_claims);
}

TEST_P(CanonicalizePropertyTest, ClusterGapsRespectTolerance) {
  const Database db = NumericJitterDatabase(GetParam());
  CanonicalizeOptions options;
  options.numeric_tolerance = 8.0;
  const auto report = CanonicalizeValues(db, options);
  ASSERT_TRUE(report.ok());
  // After canonicalization, any two surviving numeric claims of an item
  // must be more than the tolerance apart.
  for (ItemId i = 0; i < report->db.num_items(); ++i) {
    std::vector<double> parsed;
    for (const Claim& claim : report->db.item(i).claims) {
      const auto value = ParseNumericValue(claim.value, true);
      if (value.has_value()) parsed.push_back(*value);
    }
    std::sort(parsed.begin(), parsed.end());
    for (std::size_t k = 1; k < parsed.size(); ++k) {
      EXPECT_GT(parsed[k] - parsed[k - 1], options.numeric_tolerance)
          << "item " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalizePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- Crowd EM properties ----------

class CrowdEmPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CrowdEmPropertyTest, EmAtLeastMatchesMajorityOnAccuracy) {
  DenseConfig config;
  config.num_items = 80;
  config.num_sources = 10;
  config.density = 0.5;
  config.seed = GetParam();
  const SyntheticDataset data = GenerateDense(config);

  WorkerPoolConfig pool_config;
  pool_config.num_workers = 12;
  pool_config.accuracy_mean = 0.7;
  pool_config.accuracy_sd = 0.15;
  pool_config.answers_per_item = 5;
  pool_config.seed = GetParam() + 100;

  auto label_accuracy = [&](CrowdOracle::Mode mode) {
    WorkerPool pool(pool_config);
    CrowdOracle oracle(&pool, mode);
    std::size_t right = 0, total = 0;
    for (ItemId i : data.db.ConflictingItems()) {
      const auto answer = oracle.Answer(data.db, i, data.truth, nullptr);
      EXPECT_TRUE(answer.ok());
      ++total;
      if (ArgMax(*answer) == data.truth.TrueClaim(i)) ++right;
    }
    return total ? static_cast<double>(right) / static_cast<double>(total)
                 : 0.0;
  };
  const double majority = label_accuracy(CrowdOracle::Mode::kMajority);
  const double em = label_accuracy(CrowdOracle::Mode::kEm);
  // EM learns worker quality; across seeds it should not be meaningfully
  // worse than counting and is usually better.
  EXPECT_GE(em, majority - 0.05) << "majority=" << majority << " em=" << em;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrowdEmPropertyTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------- AccuCopy properties ----------

class AccuCopyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AccuCopyPropertyTest, NoFalseAlarmsWithoutCopying) {
  DenseConfig config;
  config.num_items = 150;
  config.num_sources = 12;
  config.density = 0.5;
  config.copier_fraction = 0.0;
  config.seed = GetParam();
  const SyntheticDataset data = GenerateDense(config);
  AccuCopyFusion model;
  model.Fuse(data.db, PriorSet(), FusionOptions{});
  RunningStats deps;
  for (SourceId a = 0; a < data.db.num_sources(); ++a) {
    for (SourceId b = a + 1; b < data.db.num_sources(); ++b) {
      deps.Add(model.DependenceProbability(a, b));
    }
  }
  EXPECT_LT(deps.mean(), 0.05);
  EXPECT_LT(deps.max(), 0.5);
}

TEST_P(AccuCopyPropertyTest, DetectsSomeCliqueWithHeavyCopying) {
  DenseConfig config;
  config.num_items = 200;
  config.num_sources = 14;
  config.density = 0.5;
  config.accuracy_mean = 0.75;
  config.copier_fraction = 0.5;
  config.seed = GetParam();
  const SyntheticDataset data = GenerateDense(config);
  AccuCopyFusion model;
  model.Fuse(data.db, PriorSet(), FusionOptions{});
  double max_dep = 0.0;
  for (SourceId a = 0; a < data.db.num_sources(); ++a) {
    for (SourceId b = a + 1; b < data.db.num_sources(); ++b) {
      max_dep = std::max(max_dep, model.DependenceProbability(a, b));
    }
  }
  EXPECT_GT(max_dep, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AccuCopyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------- LCA-specific corner ----------

TEST(SimpleLcaTest, SmoothingAccessorAndName) {
  EXPECT_DOUBLE_EQ(SimpleLcaFusion().smoothing(), 1.0);
  EXPECT_DOUBLE_EQ(SimpleLcaFusion(2.5).smoothing(), 2.5);
  EXPECT_EQ(SimpleLcaFusion().name(), "lca");
}

TEST(SimpleLcaTest, SmoothingKeepsSingleVoteSourcesModerate) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("onevote", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "b").ok());
  const Database db = builder.Build();
  SimpleLcaFusion model;
  const FusionResult r = model.Fuse(db, PriorSet(), FusionOptions{});
  // A one-vote source's honesty stays pulled toward the prior, not 0/1.
  const double h = r.accuracy(*db.FindSource("onevote"));
  EXPECT_GT(h, 0.5);
  EXPECT_LT(h, 0.95);
}

// ---------- Export round-trip across generator shapes ----------

struct ExportCase {
  bool dense;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const ExportCase& c) {
    return os << (c.dense ? "dense_" : "longtail_") << c.seed;
  }
};

class ExportPropertyTest : public ::testing::TestWithParam<ExportCase> {};

TEST_P(ExportPropertyTest, FusionCsvHasOneWinnerPerItem) {
  SyntheticDataset data;
  if (GetParam().dense) {
    DenseConfig config;
    config.num_items = 60;
    config.num_sources = 10;
    config.seed = GetParam().seed;
    data = GenerateDense(config);
  } else {
    LongTailConfig config;
    config.num_items = 60;
    config.num_sources = 40;
    config.avg_votes_per_item = 6.0;
    config.seed = GetParam().seed;
    data = GenerateLongTail(config);
  }
  AccuFusion model;
  const FusionResult fused = model.Fuse(data.db, FusionOptions{});
  const std::string path = ::testing::TempDir() + "/veritas_export_prop.csv";
  ASSERT_TRUE(WriteFusionCsv(data.db, fused, path).ok());
  const auto rows = ReadCsvFile(path);
  ASSERT_TRUE(rows.ok());
  std::size_t winners = 0;
  for (std::size_t r = 1; r < rows->size(); ++r) {
    if ((*rows)[r][3] == "1") ++winners;
  }
  EXPECT_EQ(winners, data.db.num_items());
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Shapes, ExportPropertyTest,
                         ::testing::Values(ExportCase{true, 1},
                                           ExportCase{true, 2},
                                           ExportCase{false, 3},
                                           ExportCase{false, 4}));

}  // namespace
}  // namespace veritas
