// Tests of the trace recorder: the Chrome trace_event JSON it emits must be
// syntactically valid (checked with a minimal recursive-descent JSON
// parser), spans must nest and merge across threads, and a disabled
// recorder must emit nothing.
#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace veritas {
namespace {

// Minimal recursive-descent JSON syntax checker. Accepts exactly the RFC
// 8259 grammar (minus \uXXXX digit validation); no values are materialized.
class JsonChecker {
 public:
  static bool Valid(const std::string& text) {
    JsonChecker checker(text);
    checker.SkipWs();
    if (!checker.Value()) return false;
    checker.SkipWs();
    return checker.pos_ == text.size();
  }

 private:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  bool Eat(char c) {
    if (Peek() != c) return false;
    ++pos_;
    return true;
  }
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Literal(const char* word) {
    for (const char* c = word; *c != '\0'; ++c) {
      if (!Eat(*c)) return false;
    }
    return true;
  }

  bool Value() {
    switch (Peek()) {
      case '{': return Object();
      case '[': return Array();
      case '"': return String();
      case 't': return Literal("true");
      case 'f': return Literal("false");
      case 'n': return Literal("null");
      default: return Number();
    }
  }

  bool Object() {
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat('}')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool Array() {
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      if (!Value()) return false;
      SkipWs();
      if (Eat(']')) return true;
      if (!Eat(',')) return false;
    }
  }

  bool String() {
    if (!Eat('"')) return false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        if (esc == 'u') pos_ += 4;
        else if (std::string("\"\\/bfnrt").find(esc) == std::string::npos)
          return false;
      }
    }
    return false;
  }

  bool Number() {
    const std::size_t start = pos_;
    Eat('-');
    if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    if (Eat('.')) {
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    if (Peek() == 'e' || Peek() == 'E') {
      ++pos_;
      if (Peek() == '+' || Peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(Peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(Peek()))) ++pos_;
    }
    return pos_ > start;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

TEST(JsonCheckerTest, SanityOnKnownInputs) {
  EXPECT_TRUE(JsonChecker::Valid("{}"));
  EXPECT_TRUE(JsonChecker::Valid(R"({"a": [1, 2.5, -3e4], "b": "x\n"})"));
  EXPECT_TRUE(JsonChecker::Valid("[true, false, null]"));
  EXPECT_FALSE(JsonChecker::Valid("{"));
  EXPECT_FALSE(JsonChecker::Valid(R"({"a": })"));
  EXPECT_FALSE(JsonChecker::Valid("[1, 2,]"));
  EXPECT_FALSE(JsonChecker::Valid("{} trailing"));
}

TEST(TraceRecorderTest, DisabledRecordsNothing) {
  TraceRecorder recorder;
  recorder.RecordSpan("ignored", "test", 0.0, 1.0);
  EXPECT_TRUE(recorder.Flush().empty());
  const std::string json = recorder.ToChromeJson();
  EXPECT_TRUE(JsonChecker::Valid(json));
  EXPECT_EQ(json.find("ignored"), std::string::npos);
}

TEST(TraceRecorderTest, DisabledGlobalSpanEmitsNothing) {
  TraceRecorder& global = TraceRecorder::Global();
  global.Disable();
  global.Clear();
  {
    VERITAS_SPAN("should.not.appear");
  }
  EXPECT_TRUE(global.Flush().empty());
  EXPECT_EQ(global.ToChromeJson().find("should.not.appear"),
            std::string::npos);
}

TEST(TraceRecorderTest, GlobalSpansNestAndContain) {
  TraceRecorder& global = TraceRecorder::Global();
  global.Clear();
  global.Enable();
  {
    VERITAS_SPAN("outer");
    VERITAS_SPAN("inner");
  }
  global.Disable();
  const std::vector<TraceEvent> events = global.Flush();
  global.Clear();
  ASSERT_EQ(events.size(), 2u);
  const auto find = [&events](const std::string& name) -> const TraceEvent& {
    return *std::find_if(
        events.begin(), events.end(),
        [&name](const TraceEvent& e) { return e.name == name; });
  };
  const TraceEvent& outer = find("outer");
  const TraceEvent& inner = find("inner");
  // The inner interval lies within the outer one.
  EXPECT_LE(outer.ts_us, inner.ts_us);
  EXPECT_GE(outer.ts_us + outer.dur_us, inner.ts_us + inner.dur_us);
}

TEST(TraceRecorderTest, ChromeJsonIsValidAndCarriesEvents) {
  TraceRecorder recorder;
  recorder.Enable();
  recorder.RecordSpan("fuse", "veritas", 10.0, 5.0);
  recorder.RecordSpan("select \"q\"", "veritas", 20.0, 2.5);
  const std::string json = recorder.ToChromeJson();
  ASSERT_TRUE(JsonChecker::Valid(json)) << json;
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"fuse\""), std::string::npos);
  EXPECT_NE(json.find("select \\\"q\\\""), std::string::npos);
}

TEST(TraceRecorderTest, MergesPerThreadBuffersSortedByStart) {
  TraceRecorder recorder;
  recorder.Enable();
  recorder.RecordSpan("main", "t", 50.0, 1.0);
  std::vector<std::thread> pool;
  for (int t = 0; t < 3; ++t) {
    pool.emplace_back([&recorder, t] {
      recorder.RecordSpan("worker", "t", 10.0 * (t + 1), 1.0);
    });
  }
  for (std::thread& t : pool) t.join();
  const std::vector<TraceEvent> events = recorder.Flush();
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
  // Each thread gets a distinct tid; the main-thread span keeps its own.
  EXPECT_EQ(events.back().name, "main");
  std::vector<std::uint32_t> tids;
  for (const TraceEvent& e : events) tids.push_back(e.tid);
  std::sort(tids.begin(), tids.end());
  EXPECT_EQ(std::unique(tids.begin(), tids.end()), tids.end());
}

TEST(TraceRecorderTest, WriteChromeJsonRoundTripsThroughDisk) {
  TraceRecorder recorder;
  recorder.Enable();
  recorder.RecordSpan("disk", "t", 1.0, 2.0);
  const std::string path = ::testing::TempDir() + "/veritas_trace_test.json";
  ASSERT_TRUE(recorder.WriteChromeJson(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), recorder.ToChromeJson());
  EXPECT_TRUE(JsonChecker::Valid(buffer.str()));
  in.close();
  std::remove(path.c_str());
}

TEST(TraceRecorderTest, WriteChromeJsonBadPathIsIoError) {
  TraceRecorder recorder;
  EXPECT_EQ(recorder.WriteChromeJson("/nonexistent/dir/trace.json").code(),
            StatusCode::kIoError);
}

TEST(TraceRecorderTest, ClearDropsEvents) {
  TraceRecorder recorder;
  recorder.Enable();
  recorder.RecordSpan("gone", "t", 0.0, 1.0);
  recorder.Clear();
  EXPECT_TRUE(recorder.Flush().empty());
}

}  // namespace
}  // namespace veritas
