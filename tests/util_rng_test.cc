#include "util/rng.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace veritas {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.Uniform(), b.Uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Uniform() != b.Uniform()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformCustomRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform(-2.0, 3.0);
    EXPECT_GE(u, -2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(11);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformIndex(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 4u);
}

TEST(RngTest, UniformIndexSingleton) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformIndex(1), 0u);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, BernoulliClampsOutOfRange) {
  Rng rng(5);
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
}

TEST(RngTest, NormalMoments) {
  Rng rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(2.0, 0.5);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.02);
  EXPECT_NEAR(var, 0.25, 0.02);
}

TEST(RngTest, ParetoIsHeavyTailedAndAtLeastOne) {
  Rng rng(13);
  int huge = 0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.Pareto(0.7);
    EXPECT_GE(x, 1.0);
    if (x > 100.0) ++huge;
  }
  // A heavy tail must produce some very large draws.
  EXPECT_GT(huge, 0);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  const std::vector<double> w = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, CategoricalAllZeroFallsBackToUniform) {
  Rng rng(19);
  const std::vector<double> w = {0.0, 0.0};
  int counts[2] = {0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_GT(counts[0], 3000);
  EXPECT_GT(counts[1], 3000);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleChangesOrderEventually) {
  Rng rng(29);
  std::vector<int> v(32);
  for (int i = 0; i < 32; ++i) v[i] = i;
  const std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // 32! permutations; identity is astronomically rare.
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.Fork();
  // Child must be deterministic given the parent seed...
  Rng parent2(31);
  Rng child2 = parent2.Fork();
  for (int i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(child.Uniform(), child2.Uniform());
  }
}

}  // namespace
}  // namespace veritas
