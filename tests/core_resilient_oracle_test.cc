// Tests of the resilient oracle decorators (FlakyOracle, RetryingOracle)
// and of a FeedbackSession's graceful degradation when answers fail.
#include "core/resilient_oracle.h"

#include <gtest/gtest.h>

#include <set>

#include "core/qbc.h"
#include "core/session.h"
#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"
#include "obs/metrics.h"

namespace veritas {
namespace {

class ResilientOracleTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  AccuFusion model_;
  Rng rng_{17};

  ItemId FirstConflicting() const { return db_.ConflictingItems().front(); }
};

TEST_F(ResilientOracleTest, FlakyOracleInjectsTheConfiguredCode) {
  const struct {
    FaultKind kind;
    StatusCode expected;
  } cases[] = {
      {FaultKind::kUnavailable, StatusCode::kUnavailable},
      {FaultKind::kTimeout, StatusCode::kDeadlineExceeded},
      {FaultKind::kAbstain, StatusCode::kAbstained},
  };
  for (const auto& c : cases) {
    PerfectOracle inner;
    FaultPlan plan;
    plan.kind = c.kind;
    plan.fail_first_n = 1;
    FlakyOracle flaky(&inner, plan);
    const auto first = flaky.Answer(db_, FirstConflicting(), truth_, &rng_);
    ASSERT_FALSE(first.ok());
    EXPECT_EQ(first.status().code(), c.expected)
        << FaultKindName(c.kind);
    // After the injected outage the inner answer comes through.
    const auto second = flaky.Answer(db_, FirstConflicting(), truth_, &rng_);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(flaky.num_calls(), 2u);
    EXPECT_EQ(flaky.num_faults(), 1u);
  }
}

TEST_F(ResilientOracleTest, FlakyOracleIsDeterministicUnderFixedSeed) {
  FaultPlan plan;
  plan.probability = 0.5;
  PerfectOracle inner_a, inner_b;
  FlakyOracle a(&inner_a, plan, /*seed=*/9);
  FlakyOracle b(&inner_b, plan, /*seed=*/9);
  const ItemId item = FirstConflicting();
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Answer(db_, item, truth_, &rng_).ok(),
              b.Answer(db_, item, truth_, &rng_).ok())
        << "call " << i;
  }
  EXPECT_EQ(a.num_faults(), b.num_faults());
}

TEST_F(ResilientOracleTest, FlakyOracleAccumulatesLatencySpikes) {
  FaultPlan plan;
  plan.kind = FaultKind::kNone;  // Slow successes, not failures.
  plan.probability = 1.0;
  plan.latency_seconds = 0.5;
  PerfectOracle inner;
  FlakyOracle flaky(&inner, plan);
  const ItemId item = FirstConflicting();
  ASSERT_TRUE(flaky.Answer(db_, item, truth_, &rng_).ok());
  ASSERT_TRUE(flaky.Answer(db_, item, truth_, &rng_).ok());
  EXPECT_DOUBLE_EQ(flaky.simulated_latency_seconds(), 1.0);
  EXPECT_EQ(flaky.num_faults(), 0u);
}

TEST_F(ResilientOracleTest, NamesDescribeTheDecoration) {
  PerfectOracle inner;
  FlakyOracle flaky(&inner, FaultPlan{});
  EXPECT_EQ(flaky.name(), "flaky(perfect)");
  RetryingOracle retrying(&flaky, RetryPolicy{});
  EXPECT_EQ(retrying.name(), "retrying(flaky(perfect))");
}

TEST_F(ResilientOracleTest, RetryingOracleRecoversFromTransientOutage) {
  PerfectOracle inner;
  FaultPlan plan;
  plan.fail_first_n = 2;
  FlakyOracle flaky(&inner, plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingOracle oracle(&flaky, policy);
  const ItemId item = FirstConflicting();
  const auto answer = oracle.Answer(db_, item, truth_, &rng_);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(oracle.last_attempts(), 3u);
  EXPECT_EQ(oracle.stats().total_attempts, 3u);
  EXPECT_EQ(oracle.stats().total_retries, 2u);
  EXPECT_EQ(oracle.stats().exhausted, 0u);
  ASSERT_TRUE(oracle.attempts_per_item().count(item));
  EXPECT_EQ(oracle.attempts_per_item().at(item), 3u);
}

TEST_F(ResilientOracleTest, RetryingOracleGivesUpAfterExhaustion) {
  PerfectOracle inner;
  FaultPlan plan;
  plan.fail_first_n = 10;
  FlakyOracle flaky(&inner, plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingOracle oracle(&flaky, policy);
  const auto answer = oracle.Answer(db_, FirstConflicting(), truth_, &rng_);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(oracle.last_attempts(), 3u);
  EXPECT_EQ(oracle.stats().exhausted, 1u);
}

TEST_F(ResilientOracleTest, RetryingOracleDoesNotRetryAbstentions) {
  PerfectOracle inner;
  FaultPlan plan;
  plan.kind = FaultKind::kAbstain;
  plan.fail_first_n = 10;
  FlakyOracle flaky(&inner, plan);
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryingOracle oracle(&flaky, policy);
  const auto answer = oracle.Answer(db_, FirstConflicting(), truth_, &rng_);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kAbstained);
  EXPECT_EQ(oracle.last_attempts(), 1u);  // Re-asking a refusal is futile.
}

TEST_F(ResilientOracleTest, SessionSkipsUnanswerableItemsAndCompletes) {
  // The ISSUE acceptance scenario: a 30%-flaky oracle (no retries) must not
  // abort the session; failed items are skipped and recorded.
  DenseConfig config;
  config.num_items = 60;
  config.num_sources = 10;
  config.density = 0.5;
  config.seed = 4;
  const SyntheticDataset data = GenerateDense(config);
  QbcStrategy strategy;
  PerfectOracle inner;
  FaultPlan plan;
  plan.probability = 0.3;
  FlakyOracle oracle(&inner, plan, /*seed=*/21);
  SessionOptions options;
  Rng rng(3);
  FeedbackSession session(data.db, model_, &strategy, &oracle, data.truth,
                          options, &rng);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_GT(trace->skipped_items.size(), 0u);  // 30% faults must hit.
  EXPECT_GT(trace->priors.size(), 0u);
  // Every conflicting item ends up either validated or skipped, never lost.
  std::set<ItemId> accounted(trace->skipped_items.begin(),
                             trace->skipped_items.end());
  for (ItemId i : trace->priors.Items()) {
    EXPECT_TRUE(accounted.insert(i).second) << "item " << i << " twice";
  }
  for (ItemId i : data.db.ConflictingItems()) {
    EXPECT_TRUE(accounted.count(i)) << "item " << i << " unaccounted";
  }
  // Per-step skip records agree with the trace-level list.
  std::size_t step_skips = 0;
  for (const SessionStep& step : trace->steps) step_skips += step.skipped.size();
  EXPECT_EQ(step_skips, trace->skipped_items.size());
}

TEST_F(ResilientOracleTest, SessionWithRetriesRecordsRetryCounts) {
  QbcStrategy strategy;
  PerfectOracle inner;
  FaultPlan plan;
  plan.fail_first_n = 2;  // Cold outage: first item needs three attempts.
  FlakyOracle flaky(&inner, plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingOracle oracle(&flaky, policy);
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->total_oracle_retries, 2u);
  EXPECT_TRUE(trace->skipped_items.empty());  // Retries rescued every item.
  EXPECT_EQ(trace->priors.size(), 5u);
  EXPECT_EQ(trace->steps.front().oracle_retries, 2u);
}

TEST_F(ResilientOracleTest, RetriesAccrueEvenWhenTheRoundAborts) {
  // Regression: retry accrual used to be folded into the trace only after a
  // whole batch succeeded, so a round that aborted dropped every retry
  // already spent. The trace itself is discarded on abort (Run returns the
  // error), so the registry counter is the surviving observable.
  MetricsRegistry::Global().Reset();
  QbcStrategy strategy;
  PerfectOracle inner;
  FaultPlan plan;
  plan.fail_first_n = 100;  // Permanent outage: retries always exhaust.
  FlakyOracle flaky(&inner, plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0;
  RetryingOracle oracle(&flaky, policy);
  SessionOptions options;
  options.skip_unanswerable = false;  // Exhaustion aborts the round.
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kUnavailable);
  // The aborting item burned max_attempts - 1 = 2 retries; they must be
  // visible despite the abort.
  EXPECT_EQ(oracle.stats().total_retries, 2u);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.Value("session.oracle_retries"), 2.0);
  EXPECT_EQ(snap.Value("oracle.retry.retries"), 2.0);
  EXPECT_EQ(snap.Value("oracle.retry.exhausted"), 1.0);
}

TEST_F(ResilientOracleTest, SkippedItemRetriesStayCounted) {
  // A skippable failure mid-batch (abstention after retries on transient
  // faults elsewhere) must keep the per-step retry count it accrued.
  MetricsRegistry::Global().Reset();
  QbcStrategy strategy;
  PerfectOracle inner;
  FaultPlan plan;
  plan.fail_first_n = 2;  // First item: two transient faults, then success.
  FlakyOracle flaky(&inner, plan);
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_seconds = 0.0;
  RetryingOracle oracle(&flaky, policy);
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->total_oracle_retries, 2u);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snap.Value("session.oracle_retries"),
            static_cast<double>(trace->total_oracle_retries));
}

TEST_F(ResilientOracleTest, SkipDisabledSurfacesTheTransientError) {
  QbcStrategy strategy;
  PerfectOracle inner;
  FaultPlan plan;
  plan.fail_first_n = 100;
  FlakyOracle oracle(&inner, plan);
  SessionOptions options;
  options.skip_unanswerable = false;
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kUnavailable);
}

TEST_F(ResilientOracleTest, HardOracleFailuresStillAbort) {
  QbcStrategy strategy;
  PerfectOracle inner;
  FlakyOracle oracle(&inner, FaultPlan{});  // No faults injected.
  GroundTruth empty(db_);                   // Unknown truth = hard error.
  SessionOptions options;
  FeedbackSession session(db_, model_, &strategy, &oracle, empty, options,
                          &rng_);
  const auto trace = session.Run();
  ASSERT_FALSE(trace.ok());
  EXPECT_EQ(trace.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ResilientOracleTest, FlakyStateRoundTripsThroughSerialization) {
  FaultPlan plan;
  plan.probability = 0.5;
  PerfectOracle inner_a, inner_b;
  FlakyOracle original(&inner_a, plan, /*seed=*/13);
  const ItemId item = FirstConflicting();
  for (int i = 0; i < 7; ++i) original.Answer(db_, item, truth_, &rng_);
  FlakyOracle resumed(&inner_b, plan, /*seed=*/13);
  ASSERT_TRUE(resumed.RestoreState(original.SerializeState()).ok());
  EXPECT_EQ(resumed.num_calls(), original.num_calls());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(original.Answer(db_, item, truth_, &rng_).ok(),
              resumed.Answer(db_, item, truth_, &rng_).ok())
        << "call " << i;
  }
}

}  // namespace
}  // namespace veritas
