// Tests of the Strategy base helpers: candidate enumeration, top-k
// selection, vote entropy, and the Random baseline.
#include "core/strategy.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/random_strategy.h"
#include "data/example_data.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class StrategyHelpersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fusion_ = model_.Fuse(db_, opts_);
    ctx_.db = &db_;
    ctx_.fusion = &fusion_;
    ctx_.priors = &priors_;
    ctx_.model = &model_;
    ctx_.fusion_opts = &opts_;
    ctx_.rng = &rng_;
  }

  Database db_ = MakeMovieDatabase();
  AccuFusion model_;
  FusionOptions opts_ = PaperExampleFusionOptions();
  FusionResult fusion_;
  PriorSet priors_;
  Rng rng_{1};
  StrategyContext ctx_;
};

TEST_F(StrategyHelpersTest, CandidatesExcludeSingletonsByDefault) {
  const auto candidates = CandidateItems(ctx_);
  EXPECT_EQ(candidates.size(), 5u);
  EXPECT_EQ(std::count(candidates.begin(), candidates.end(),
                       *db_.FindItem("Finding Dory")),
            0);
}

TEST_F(StrategyHelpersTest, CandidatesIncludeSingletonsWhenAsked) {
  ctx_.include_singletons = true;
  EXPECT_EQ(CandidateItems(ctx_).size(), 6u);
}

TEST_F(StrategyHelpersTest, CandidatesExcludeValidated) {
  ASSERT_TRUE(priors_.SetExact(db_, *db_.FindItem("Minions"), 0).ok());
  const auto candidates = CandidateItems(ctx_);
  EXPECT_EQ(candidates.size(), 4u);
  EXPECT_EQ(std::count(candidates.begin(), candidates.end(),
                       *db_.FindItem("Minions")),
            0);
}

TEST_F(StrategyHelpersTest, CandidatesEmptyWhenAllValidated) {
  for (ItemId i : db_.ConflictingItems()) {
    ASSERT_TRUE(priors_.SetExact(db_, i, 0).ok());
  }
  EXPECT_TRUE(CandidateItems(ctx_).empty());
}

TEST(TopKByScoreTest, OrdersDescending) {
  const std::vector<ItemId> items = {10, 20, 30};
  const std::vector<double> scores = {0.5, 2.0, 1.0};
  EXPECT_EQ(TopKByScore(items, scores, 3),
            (std::vector<ItemId>{20, 30, 10}));
}

TEST(TopKByScoreTest, TruncatesToK) {
  const std::vector<ItemId> items = {1, 2, 3, 4};
  const std::vector<double> scores = {4, 3, 2, 1};
  EXPECT_EQ(TopKByScore(items, scores, 2), (std::vector<ItemId>{1, 2}));
}

TEST(TopKByScoreTest, TiesBrokenByLowerItemId) {
  const std::vector<ItemId> items = {9, 3, 7};
  const std::vector<double> scores = {1.0, 1.0, 1.0};
  EXPECT_EQ(TopKByScore(items, scores, 3), (std::vector<ItemId>{3, 7, 9}));
}

TEST(TopKByScoreTest, KLargerThanInput) {
  const std::vector<ItemId> items = {1};
  const std::vector<double> scores = {0.0};
  EXPECT_EQ(TopKByScore(items, scores, 10), (std::vector<ItemId>{1}));
}

TEST(TopKByScoreTest, EmptyInput) {
  EXPECT_TRUE(TopKByScore({}, {}, 3).empty());
}

TEST_F(StrategyHelpersTest, VoteEntropyMatchesExample41) {
  // H_1 = 0.637 (1/3 vs 2/3), H_2 = 0.693 (1/2 vs 1/2).
  EXPECT_NEAR(VoteEntropy(db_, *db_.FindItem("Zootopia")), 0.637, 5e-4);
  EXPECT_NEAR(VoteEntropy(db_, *db_.FindItem("Kung Fu Panda")), 0.693, 5e-4);
  EXPECT_DOUBLE_EQ(VoteEntropy(db_, *db_.FindItem("Finding Dory")), 0.0);
}

TEST_F(StrategyHelpersTest, SelectNextReturnsFirstOfBatch) {
  RandomStrategy strategy;
  const std::vector<ItemId> batch = strategy.SelectBatch(ctx_, 3);
  ASSERT_FALSE(batch.empty());
  // SelectNext uses a fresh draw, so just verify it returns a candidate.
  const ItemId next = strategy.SelectNext(ctx_);
  EXPECT_NE(next, kInvalidItem);
  EXPECT_FALSE(priors_.Has(next));
}

TEST_F(StrategyHelpersTest, RandomReturnsDistinctCandidates) {
  RandomStrategy strategy;
  const std::vector<ItemId> batch = strategy.SelectBatch(ctx_, 5);
  EXPECT_EQ(batch.size(), 5u);
  const std::set<ItemId> unique(batch.begin(), batch.end());
  EXPECT_EQ(unique.size(), batch.size());
}

TEST_F(StrategyHelpersTest, RandomRespectsBatchSize) {
  RandomStrategy strategy;
  EXPECT_EQ(strategy.SelectBatch(ctx_, 2).size(), 2u);
}

TEST_F(StrategyHelpersTest, RandomIsSeedDeterministic) {
  RandomStrategy strategy;
  Rng rng_a(5), rng_b(5);
  ctx_.rng = &rng_a;
  const auto a = strategy.SelectBatch(ctx_, 3);
  ctx_.rng = &rng_b;
  const auto b = strategy.SelectBatch(ctx_, 3);
  EXPECT_EQ(a, b);
}

TEST_F(StrategyHelpersTest, RandomExhaustsCandidates) {
  RandomStrategy strategy;
  for (ItemId i : db_.ConflictingItems()) {
    ASSERT_TRUE(priors_.SetExact(db_, i, 0).ok());
  }
  EXPECT_TRUE(strategy.SelectBatch(ctx_, 1).empty());
  EXPECT_EQ(strategy.SelectNext(ctx_), kInvalidItem);
}

TEST(RandomStrategyTest, Name) { EXPECT_EQ(RandomStrategy().name(), "random"); }

}  // namespace
}  // namespace veritas
