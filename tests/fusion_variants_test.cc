// Tests of the TruthFinder and PooledInvestment variants plus the factory —
// exercising the black-box property of the feedback framework (§6).
#include <gtest/gtest.h>

#include "data/example_data.h"
#include "data/synthetic.h"
#include "core/metrics.h"
#include "fusion/fusion_factory.h"
#include "fusion/pooled_investment.h"
#include "fusion/truthfinder.h"
#include "model/database_builder.h"
#include "util/math.h"

namespace veritas {
namespace {

// Shared conformance suite: every fusion model must emit valid
// distributions, respect priors, and stay clamped.
class FusionConformanceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(FusionConformanceTest, OutputsValidDistributions) {
  const Database db = MakeMovieDatabase();
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok());
  const FusionResult r = (*model)->Fuse(db, PriorSet(), FusionOptions{});
  for (ItemId i = 0; i < db.num_items(); ++i) {
    double sum = 0.0;
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      EXPECT_GE(r.prob(i, k), 0.0);
      EXPECT_LE(r.prob(i, k), 1.0);
      sum += r.prob(i, k);
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << GetParam() << " item " << i;
  }
}

TEST_P(FusionConformanceTest, RespectsPriors) {
  const Database db = MakeMovieDatabase();
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok());
  PriorSet priors;
  const ItemId zootopia = *db.FindItem("Zootopia");
  const ClaimIndex howard = *db.FindClaim(zootopia, "Howard");
  ASSERT_TRUE(priors.SetExact(db, zootopia, howard).ok());
  const FusionResult r = (*model)->Fuse(db, priors, FusionOptions{});
  EXPECT_DOUBLE_EQ(r.prob(zootopia, howard), 1.0);
}

TEST_P(FusionConformanceTest, SingletonItemsCertain) {
  const Database db = MakeMovieDatabase();
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok());
  const FusionResult r = (*model)->Fuse(db, PriorSet(), FusionOptions{});
  EXPECT_DOUBLE_EQ(r.prob(*db.FindItem("Finding Dory"), 0), 1.0);
}

TEST_P(FusionConformanceTest, BeatsCoinFlipOnSyntheticData) {
  DenseConfig config;
  config.num_items = 120;
  config.num_sources = 20;
  config.density = 0.5;
  config.seed = 77;
  const SyntheticDataset dataset = GenerateDense(config);
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok());
  const FusionResult r =
      (*model)->Fuse(dataset.db, PriorSet(), FusionOptions{});
  // With mostly-accurate sources every reasonable fusion model should pick
  // the true claim for well over half of the items.
  EXPECT_GT(FusionAccuracy(dataset.db, r, dataset.truth), 0.7)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllModels, FusionConformanceTest,
                         ::testing::Values("accu", "accu_copy", "voting",
                                           "truthfinder", "lca",
                                           "pooled_investment"));

TEST(TruthFinderTest, TrustSeparatesGoodFromBad) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("good", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("bad", "x", "b").ok());
  ASSERT_TRUE(builder.AddObservation("good", "y", "t").ok());
  ASSERT_TRUE(builder.AddObservation("w1", "y", "t").ok());
  ASSERT_TRUE(builder.AddObservation("w2", "y", "t").ok());
  ASSERT_TRUE(builder.AddObservation("bad", "y", "f").ok());
  const Database db = builder.Build();
  TruthFinderFusion model;
  const FusionResult r = model.Fuse(db, PriorSet(), FusionOptions{});
  EXPECT_GT(r.accuracy(*db.FindSource("good")),
            r.accuracy(*db.FindSource("bad")));
  EXPECT_EQ(r.WinningClaim(*db.FindItem("x")), *db.FindClaim(0, "a"));
}

TEST(TruthFinderTest, GammaAccessor) {
  EXPECT_DOUBLE_EQ(TruthFinderFusion().gamma(), 0.3);
  EXPECT_DOUBLE_EQ(TruthFinderFusion(0.5).gamma(), 0.5);
}

TEST(PooledInvestmentTest, GrowthAccessor) {
  EXPECT_DOUBLE_EQ(PooledInvestmentFusion().growth(), 1.4);
  EXPECT_DOUBLE_EQ(PooledInvestmentFusion(1.2).growth(), 1.2);
}

TEST(PooledInvestmentTest, MajorityWinsSymmetricSetup) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s3", "x", "b").ok());
  const Database db = builder.Build();
  PooledInvestmentFusion model;
  const FusionResult r = model.Fuse(db, PriorSet(), FusionOptions{});
  EXPECT_EQ(r.WinningClaim(0), *db.FindClaim(0, "a"));
}

TEST(FusionFactoryTest, KnownNames) {
  for (const std::string& name : FusionModelNames()) {
    auto model = MakeFusionModel(name);
    ASSERT_TRUE(model.ok()) << name;
    EXPECT_EQ((*model)->name(), name);
  }
}

TEST(FusionFactoryTest, UnknownName) {
  EXPECT_EQ(MakeFusionModel("bayes9000").status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace veritas
