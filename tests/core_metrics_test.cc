#include "core/metrics.h"

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "fusion/accu.h"
#include "fusion/voting.h"

namespace veritas {
namespace {

class MetricsTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  AccuFusion model_;
};

TEST_F(MetricsTest, DistanceZeroWhenFusionMatchesTruth) {
  // Pin every item to its true claim: distance must be exactly 0.
  PriorSet priors;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    ASSERT_TRUE(priors.SetExact(db_, i, truth_.TrueClaim(i)).ok());
  }
  const FusionResult r = model_.Fuse(db_, priors, FusionOptions{});
  EXPECT_DOUBLE_EQ(DistanceToGroundTruth(db_, r, truth_), 0.0);
}

TEST_F(MetricsTest, DistanceCountsOnlyTrueClaims) {
  const FusionResult r = model_.Fuse(db_, FusionOptions{});
  // Manual: sum over items of (1 - p_true) / |O|.
  double expected = 0.0;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    expected += (1.0 - r.prob(i, truth_.TrueClaim(i)));
  }
  expected /= static_cast<double>(db_.num_items());
  EXPECT_NEAR(DistanceToGroundTruth(db_, r, truth_), expected, 1e-12);
}

TEST_F(MetricsTest, DistanceIgnoresUnknownTruth) {
  GroundTruth partial(db_);
  ASSERT_TRUE(partial.SetByValue(db_, "Zootopia", "Howard").ok());
  const FusionResult r = model_.Fuse(db_, FusionOptions{});
  const double d = DistanceToGroundTruth(db_, r, partial);
  const ItemId zootopia = *db_.FindItem("Zootopia");
  const double manual =
      (1.0 - r.prob(zootopia, *db_.FindClaim(zootopia, "Howard"))) / 6.0;
  EXPECT_NEAR(d, manual, 1e-12);
}

TEST_F(MetricsTest, DistanceBounds) {
  const FusionResult r = model_.Fuse(db_, FusionOptions{});
  const double d = DistanceToGroundTruth(db_, r, truth_);
  EXPECT_GE(d, 0.0);
  EXPECT_LE(d, 1.0);
}

TEST_F(MetricsTest, UncertaintyIsTotalEntropy) {
  const FusionResult r = model_.Fuse(db_, FusionOptions{});
  EXPECT_DOUBLE_EQ(Uncertainty(r), r.TotalEntropy());
  EXPECT_DOUBLE_EQ(EntropyUtility(r), -r.TotalEntropy());
}

TEST_F(MetricsTest, UncertaintyAtPaperBudgetMatchesExample43) {
  // EU(D, F) = 0.437 in Example 4.3 (we land within 0.02 with the same
  // iteration budget).
  const FusionResult r = model_.Fuse(db_, PaperExampleFusionOptions());
  EXPECT_NEAR(Uncertainty(r), 0.437, 0.02);
}

TEST_F(MetricsTest, GroundTruthUtilityDefinition3) {
  const FusionResult r = model_.Fuse(db_, FusionOptions{});
  double expected = 0.0;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    expected += r.prob(i, truth_.TrueClaim(i)) /
                static_cast<double>(db_.num_claims(i));
  }
  expected /= static_cast<double>(db_.num_claims());
  EXPECT_NEAR(GroundTruthUtility(db_, r, truth_), expected, 1e-12);
}

TEST_F(MetricsTest, GroundTruthUtilityPerfectWhenPinnedToTruth) {
  PriorSet priors;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    ASSERT_TRUE(priors.SetExact(db_, i, truth_.TrueClaim(i)).ok());
  }
  const FusionResult r = model_.Fuse(db_, priors, FusionOptions{});
  // U = (1/|V|) sum_i 1 / |V_i|; with 5 binary items and 1 singleton:
  // (5 * 0.5 + 1) / 11.
  EXPECT_NEAR(GroundTruthUtility(db_, r, truth_), (5 * 0.5 + 1.0) / 11.0,
              1e-12);
}

TEST_F(MetricsTest, FusionAccuracyCountsWinners) {
  const FusionResult r = model_.Fuse(db_, FusionOptions{});
  // Fusion gets 4 of 6 right (it misses Zootopia=Howard and
  // Kung Fu Panda=Stevenson, per Table 3 vs the stars of Table 1).
  EXPECT_NEAR(FusionAccuracy(db_, r, truth_), 4.0 / 6.0, 1e-12);
}

TEST_F(MetricsTest, FusionAccuracyEmptyTruth) {
  const FusionResult r = model_.Fuse(db_, FusionOptions{});
  GroundTruth empty(db_);
  EXPECT_DOUBLE_EQ(FusionAccuracy(db_, r, empty), 0.0);
}

TEST_F(MetricsTest, ValidationZeroesTheItemsOwnError) {
  // Validating the true claim of a mispredicted item removes that item's
  // contribution to the distance entirely. (Globally, a single validation
  // can even hurt on adversarial data like this example — the minority
  // truth of Zootopia punishes sources that are right elsewhere — which is
  // exactly why the paper orders validations instead of assuming any one
  // helps.)
  const FusionOptions opts = PaperExampleFusionOptions();
  const FusionResult before = model_.Fuse(db_, opts);
  PriorSet priors;
  const ItemId zootopia = *db_.FindItem("Zootopia");
  const ClaimIndex howard = truth_.TrueClaim(zootopia);
  ASSERT_TRUE(priors.SetExact(db_, zootopia, howard).ok());
  const FusionResult after = model_.Fuse(db_, priors, opts);
  EXPECT_LT(1.0 - before.prob(zootopia, howard), 1.0 + 1e-12);
  EXPECT_DOUBLE_EQ(1.0 - after.prob(zootopia, howard), 0.0);
  // Validating *all* items always lands at distance zero.
  PriorSet all;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    ASSERT_TRUE(all.SetExact(db_, i, truth_.TrueClaim(i)).ok());
  }
  const FusionResult full = model_.Fuse(db_, all, opts);
  EXPECT_NEAR(DistanceToGroundTruth(db_, full, truth_), 0.0, 1e-12);
}

}  // namespace
}  // namespace veritas
