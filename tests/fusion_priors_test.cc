#include "fusion/priors.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "data/example_data.h"

namespace veritas {
namespace {

class PriorSetTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
};

TEST_F(PriorSetTest, EmptyByDefault) {
  PriorSet priors;
  EXPECT_TRUE(priors.empty());
  EXPECT_EQ(priors.size(), 0u);
  EXPECT_FALSE(priors.Has(0));
}

TEST_F(PriorSetTest, SetExactIsOneHot) {
  PriorSet priors;
  const ItemId zootopia = *db_.FindItem("Zootopia");
  ASSERT_TRUE(priors.SetExact(db_, zootopia, 0).ok());
  ASSERT_TRUE(priors.Has(zootopia));
  const auto& dist = priors.Get(zootopia);
  ASSERT_EQ(dist.size(), 2u);
  EXPECT_DOUBLE_EQ(dist[0], 1.0);
  EXPECT_DOUBLE_EQ(dist[1], 0.0);
}

TEST_F(PriorSetTest, SetExactValidatesRanges) {
  PriorSet priors;
  EXPECT_EQ(priors.SetExact(db_, 999, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(priors.SetExact(db_, 0, 7).code(), StatusCode::kOutOfRange);
}

TEST_F(PriorSetTest, SetDistributionValidatesShape) {
  PriorSet priors;
  EXPECT_EQ(priors.SetDistribution(db_, 0, {0.5}).code(),
            StatusCode::kInvalidArgument);  // Wrong arity.
  EXPECT_EQ(priors.SetDistribution(db_, 0, {0.7, 0.7}).code(),
            StatusCode::kInvalidArgument);  // Does not sum to 1.
  EXPECT_EQ(priors.SetDistribution(db_, 0, {1.5, -0.5}).code(),
            StatusCode::kInvalidArgument);  // Out of [0, 1].
  EXPECT_TRUE(priors.SetDistribution(db_, 0, {0.3, 0.7}).ok());
}

TEST_F(PriorSetTest, OverwriteReplaces) {
  PriorSet priors;
  ASSERT_TRUE(priors.SetExact(db_, 0, 0).ok());
  ASSERT_TRUE(priors.SetDistribution(db_, 0, {0.2, 0.8}).ok());
  EXPECT_DOUBLE_EQ(priors.Get(0)[1], 0.8);
  EXPECT_EQ(priors.size(), 1u);
}

TEST_F(PriorSetTest, EraseAndClear) {
  PriorSet priors;
  ASSERT_TRUE(priors.SetExact(db_, 0, 0).ok());
  ASSERT_TRUE(priors.SetExact(db_, 1, 0).ok());
  priors.Erase(0);
  EXPECT_FALSE(priors.Has(0));
  EXPECT_TRUE(priors.Has(1));
  priors.Clear();
  EXPECT_TRUE(priors.empty());
}

TEST_F(PriorSetTest, ItemsEnumeration) {
  PriorSet priors;
  ASSERT_TRUE(priors.SetExact(db_, 2, 0).ok());
  ASSERT_TRUE(priors.SetExact(db_, 4, 0).ok());
  auto items = priors.Items();
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, (std::vector<ItemId>{2, 4}));
}

TEST_F(PriorSetTest, CopySemantics) {
  PriorSet priors;
  ASSERT_TRUE(priors.SetExact(db_, 0, 0).ok());
  PriorSet copy = priors;
  ASSERT_TRUE(copy.SetExact(db_, 1, 0).ok());
  EXPECT_EQ(priors.size(), 1u);  // Original untouched.
  EXPECT_EQ(copy.size(), 2u);
}

}  // namespace
}  // namespace veritas
