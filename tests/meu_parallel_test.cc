// Equivalence suite for the pruned, work-stealing MEU lookahead scan
// (DESIGN.md §5f): selections must be identical to the unpruned serial scan
// for every fusion model and thread count, pruning must actually fire, and
// the scan must stay correct across seeded rounds. Lives in the concurrency
// binary so CI reruns it under ThreadSanitizer.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/meu.h"
#include "core/strategy.h"
#include "data/synthetic.h"
#include "fusion/accu.h"
#include "fusion/delta_fusion.h"
#include "fusion/truthfinder.h"
#include "fusion/voting.h"
#include "obs/metrics.h"

namespace veritas {
namespace {

std::unique_ptr<FusionModel> MakeModel(const std::string& name) {
  if (name == "voting") return std::make_unique<VotingFusion>();
  if (name == "truthfinder") return std::make_unique<TruthFinderFusion>();
  return std::make_unique<AccuFusion>();
}

// One synthetic dataset + fused state + delta engine per fusion model, with
// a StrategyContext wired the way FeedbackSession wires it (delta path on).
struct ScanFixture {
  explicit ScanFixture(const std::string& model_name, std::uint64_t seed = 47) {
    DenseConfig config;
    config.num_items = 80;
    config.num_sources = 12;
    config.density = 0.5;
    config.seed = seed;
    data = GenerateDense(config);
    model = MakeModel(model_name);
    fusion = model->Fuse(data.db, priors, opts);
    delta = DeltaFusionEngine::Create(data.db, *model, opts);
    ctx.db = &data.db;
    ctx.fusion = &fusion;
    ctx.priors = &priors;
    ctx.model = model.get();
    ctx.fusion_opts = &opts;
    ctx.delta = delta.get();
  }

  // Pins `item` to claim 0 and re-fuses, as one feedback round would.
  void Validate(ItemId item) {
    ASSERT_TRUE(priors.SetExact(data.db, item, 0).ok());
    fusion = model->Fuse(data.db, priors, opts, &fusion);
  }

  SyntheticDataset data;
  std::unique_ptr<FusionModel> model;
  FusionOptions opts;
  PriorSet priors;
  FusionResult fusion;
  std::unique_ptr<DeltaFusionEngine> delta;
  StrategyContext ctx;
};

constexpr const char* kModels[] = {"accu", "voting", "truthfinder"};
constexpr std::size_t kThreadCounts[] = {1, 2, 4, 8};

TEST(MeuPrunedParallelTest, SelectionsMatchUnprunedSerialScan) {
  for (const char* model_name : kModels) {
    ScanFixture fx(model_name);
    ASSERT_NE(fx.delta, nullptr) << model_name;

    MeuScanOptions off;
    off.prune = false;
    MeuStrategy reference(1, off);
    const std::vector<ItemId> want = reference.SelectBatch(fx.ctx, 5);
    ASSERT_EQ(want.size(), 5u) << model_name;

    for (const std::size_t threads : kThreadCounts) {
      MeuStrategy pruned(threads);
      EXPECT_EQ(pruned.SelectBatch(fx.ctx, 5), want)
          << model_name << " with " << threads << " thread(s)";
    }
  }
}

TEST(MeuPrunedParallelTest, UnprunedGainsAreBitIdenticalAcrossThreadCounts) {
  // Without pruning every candidate runs the exact same per-candidate
  // arithmetic against the same base state, so the gains must agree to the
  // last bit no matter which lane scored them.
  for (const char* model_name : kModels) {
    ScanFixture fx(model_name);
    const std::vector<ItemId> candidates = CandidateItems(fx.ctx);
    ASSERT_FALSE(candidates.empty()) << model_name;

    MeuScanOptions off;
    off.prune = false;
    MeuStrategy serial(1, off);
    const std::vector<double> want =
        serial.ScoreCandidateGains(fx.ctx, candidates, 5, false);

    for (const std::size_t threads : {std::size_t{4}, std::size_t{8}}) {
      MeuScanOptions scan = off;
      scan.serial_cutoff = 1;  // Force the pool even on this small set.
      MeuStrategy parallel(threads, scan);
      const std::vector<double> got =
          parallel.ScoreCandidateGains(fx.ctx, candidates, 5, false);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_DOUBLE_EQ(got[i], want[i])
            << model_name << " candidate " << candidates[i] << " at "
            << threads << " thread(s)";
      }
    }
  }
}

TEST(MeuPrunedParallelTest, PruningFiresOnTheDeltaPath) {
  ScanFixture fx("accu");
  // Isolate this scan's metrics (Reset keeps cached instrument pointers, so
  // the strategy's statics stay valid).
  MetricsRegistry::Global().Reset();
  MeuStrategy pruned(2);
  ASSERT_NE(pruned.SelectNext(fx.ctx), kInvalidItem);
  const MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  // A batch-1 scan over ~80 conflicting items must abandon most of them.
  EXPECT_GT(after.Value("meu.candidates_pruned"), 0.0);
  // The empirical check on the prune_margin_rel bound: no observed gain may
  // come near the assumed (1 + margin) * H_item ceiling.
  EXPECT_LT(after.Value("meu.max_gain_bound_ratio"),
            1.0 + pruned.scan_options().prune_margin_rel);
}

TEST(MeuPrunedParallelTest, GainBoundMarginHoldsOnEveryModel) {
  // Score every candidate exactly (pruning off) and check the largest
  // observed gain / H_item quotient against the bound the pruner assumes:
  // exactly 1 for Voting (a pin moves nothing else), 1 + prune_margin_rel
  // for the models with cross-item influence.
  for (const char* model_name : kModels) {
    ScanFixture fx(model_name);
    ASSERT_NE(fx.delta, nullptr) << model_name;
    MetricsRegistry::Global().Reset();
    MeuScanOptions off;
    off.prune = false;
    MeuStrategy exact(1, off);
    const std::vector<ItemId> candidates = CandidateItems(fx.ctx);
    exact.ScoreCandidateGains(fx.ctx, candidates, 5, false);
    const double ratio =
        MetricsRegistry::Global().Snapshot().Value("meu.max_gain_bound_ratio");
    const double ceiling = fx.delta->cross_item_influence()
                               ? 1.0 + off.prune_margin_rel
                               : 1.0 + 1e-9;
    EXPECT_LT(ratio, ceiling) << model_name;
    EXPECT_GT(ratio, 0.0) << model_name;
  }
}

TEST(MeuPrunedParallelTest, SeededSecondRoundStillMatches) {
  // The cross-round seed ranking reorders the scan; selections must not
  // change. Run three feedback rounds, comparing pruned strategies (which
  // carry their seed state forward) against a fresh unpruned reference.
  for (const char* model_name : kModels) {
    ScanFixture fx(model_name);
    MeuScanOptions off;
    off.prune = false;
    MeuStrategy pruned_1t(1);
    MeuStrategy pruned_4t(4);
    for (int round = 0; round < 3; ++round) {
      MeuStrategy reference(1, off);
      const std::vector<ItemId> want = reference.SelectBatch(fx.ctx, 3);
      ASSERT_FALSE(want.empty()) << model_name << " round " << round;
      EXPECT_EQ(pruned_1t.SelectBatch(fx.ctx, 3), want)
          << model_name << " round " << round;
      EXPECT_EQ(pruned_4t.SelectBatch(fx.ctx, 3), want)
          << model_name << " round " << round;
      fx.Validate(want.front());
    }
  }
}

TEST(MeuPrunedParallelTest, ResetClearsTheSeedRanking) {
  ScanFixture fx("accu");
  MeuStrategy pruned(2);
  const std::vector<ItemId> first = pruned.SelectBatch(fx.ctx, 3);
  pruned.Reset();
  // A reset strategy must reproduce the fresh-strategy scan exactly.
  EXPECT_EQ(pruned.SelectBatch(fx.ctx, 3), first);
}

}  // namespace
}  // namespace veritas
