// Convergence-behaviour tests of the iterative fusion models: iteration
// accounting, tolerance semantics, warm-start savings, and the §3 caveat
// that convergence is not guaranteed but is always reported honestly.
#include <gtest/gtest.h>

#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"
#include "fusion/fusion_factory.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

TEST(ConvergenceTest, TighterToleranceNeedsMoreIterations) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  FusionOptions loose;
  loose.tolerance = 1e-2;
  FusionOptions tight;
  tight.tolerance = 1e-10;
  const FusionResult a = model.Fuse(db, loose);
  const FusionResult b = model.Fuse(db, tight);
  ASSERT_TRUE(a.converged());
  ASSERT_TRUE(b.converged());
  EXPECT_LE(a.iterations(), b.iterations());
}

TEST(ConvergenceTest, IterationCapIsExact) {
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  for (std::size_t cap : {1u, 2u, 3u, 7u}) {
    FusionOptions opts;
    opts.max_iterations = cap;
    opts.tolerance = 0.0;  // Never satisfied.
    const FusionResult r = model.Fuse(db, opts);
    EXPECT_EQ(r.iterations(), cap);
    EXPECT_FALSE(r.converged());
  }
}

TEST(ConvergenceTest, PinnedEverythingConvergesInstantly) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  AccuFusion model;
  PriorSet priors;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    ASSERT_TRUE(priors.SetExact(db, i, truth.TrueClaim(i)).ok());
  }
  const FusionResult r = model.Fuse(db, priors, FusionOptions{});
  EXPECT_TRUE(r.converged());
  // With every item pinned, accuracies settle after two iterations.
  EXPECT_LE(r.iterations(), 3u);
}

TEST(ConvergenceTest, WarmStartSavesIterationsAfterSmallPerturbation) {
  DenseConfig config;
  config.num_items = 200;
  config.num_sources = 20;
  config.density = 0.4;
  config.seed = 5;
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion model;
  FusionOptions opts;
  const FusionResult base = model.Fuse(data.db, opts);
  ASSERT_TRUE(base.converged());

  PriorSet one_pin;
  ASSERT_TRUE(
      one_pin.SetExact(data.db, data.db.ConflictingItems().front(), 0).ok());
  const FusionResult cold = model.Fuse(data.db, one_pin, opts);
  const FusionResult warm = model.Fuse(data.db, one_pin, opts, &base);
  ASSERT_TRUE(cold.converged());
  ASSERT_TRUE(warm.converged());
  EXPECT_LE(warm.iterations(), cold.iterations());
  // And both land on the same fixed point.
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    for (ClaimIndex k = 0; k < data.db.num_claims(i); ++k) {
      EXPECT_NEAR(warm.prob(i, k), cold.prob(i, k), 1e-4);
    }
  }
}

TEST(ConvergenceTest, FinalProbabilitiesConsistentWithFinalAccuracies) {
  // The contract: the returned P is one application of Eq. (1) under the
  // returned A, even when the run hit the iteration cap mid-flight.
  const Database db = MakeMovieDatabase();
  AccuFusion model;
  FusionOptions opts;
  opts.max_iterations = 3;  // Deliberately unconverged.
  const FusionResult r = model.Fuse(db, opts);
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const auto probs = AccuFusion::ClaimProbabilities(db, i, r.accuracies());
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      EXPECT_NEAR(r.prob(i, k), probs[k], 1e-12);
    }
  }
}

// All iterative models report meaningful iteration counts and converge on
// easy data within the default budget.
class IterativeModelConvergenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(IterativeModelConvergenceTest, ConvergesOnEasyData) {
  DenseConfig config;
  config.num_items = 100;
  config.num_sources = 12;
  config.density = 0.5;
  config.accuracy_mean = 0.85;
  config.seed = 9;
  const SyntheticDataset data = GenerateDense(config);
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok());
  const FusionResult r = (*model)->Fuse(data.db, PriorSet(), FusionOptions{});
  EXPECT_TRUE(r.converged()) << GetParam();
  EXPECT_GE(r.iterations(), 1u);
  EXPECT_LE(r.iterations(), FusionOptions{}.max_iterations);
}

INSTANTIATE_TEST_SUITE_P(Models, IterativeModelConvergenceTest,
                         ::testing::Values("accu", "accu_copy",
                                           "truthfinder", "lca",
                                           "pooled_investment"));

TEST(ConvergenceTest, OscillationIsReportedNotHidden) {
  // Craft a perfectly symmetric dataset: two 1v1 items cross-voted so the
  // fixed point keeps accuracies at 0.5; the run converges immediately to
  // the symmetric point and says so.
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "b").ok());
  ASSERT_TRUE(builder.AddObservation("s1", "y", "c").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "y", "d").ok());
  const Database db = builder.Build();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  EXPECT_TRUE(r.converged());
  EXPECT_NEAR(r.prob(0, 0), 0.5, 1e-9);
  EXPECT_NEAR(r.accuracy(0), 0.5, 1e-9);
}

}  // namespace
}  // namespace veritas
