// Append-equivalence of the incremental fusion path: folding a stream of
// observations into a converged result via FuseWithAppends must land on the
// same fixed point as a cold full Fuse over the final database — per claim
// probability, per source accuracy, and total entropy — for every supported
// model, including across compactions and with pins held through epochs.
// Lives in the concurrency binary so the read-only-lookahead-between-appends
// test runs under ThreadSanitizer in CI.
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "fusion/delta_fusion.h"
#include "fusion/fusion_factory.h"
#include "fusion/fusion_result.h"
#include "fusion/priors.h"
#include "model/streaming_database.h"
#include "obs/metrics.h"

namespace veritas {
namespace {

// The incremental path absorbs per-source accuracy moves below a small
// fraction of the convergence tolerance, so agreement is within the
// tolerance band the full model itself stops at — not bit-exact.
constexpr double kProbTol = 5e-5;
constexpr double kAccTol = 5e-5;
constexpr double kEntropyTol = 1e-3;

struct StreamCase {
  std::string model;
  std::string shape;
};

class AppendEquivalenceTest : public ::testing::TestWithParam<StreamCase> {};

SyntheticDataset MakeData(const std::string& shape, double revisions) {
  if (shape == "dense") {
    DenseConfig config;
    config.num_items = 80;
    config.num_sources = 20;
    config.seed = 17;
    config.emit_stream = true;
    config.revision_fraction = revisions;
    return GenerateDense(config);
  }
  LongTailConfig config;
  config.num_items = 80;
  config.num_sources = 20;
  config.seed = 17;
  config.emit_stream = true;
  config.revision_fraction = revisions;
  return GenerateLongTail(config);
}

void ExpectSameFixedPoint(const FusionResult& incremental,
                          const FusionResult& full, const Database& db) {
  ASSERT_EQ(incremental.num_items(), full.num_items());
  ASSERT_EQ(incremental.accuracies().size(), full.accuracies().size());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      EXPECT_NEAR(incremental.prob(i, k), full.prob(i, k), kProbTol)
          << "item " << i << " claim " << k;
    }
  }
  for (SourceId j = 0; j < db.num_sources(); ++j) {
    EXPECT_NEAR(incremental.accuracy(j), full.accuracy(j), kAccTol)
        << "source " << j;
  }
  EXPECT_NEAR(incremental.TotalEntropy(), full.TotalEntropy(), kEntropyTol);
}

TEST_P(AppendEquivalenceTest, StreamedAppendsMatchColdRebuild) {
  const StreamCase& param = GetParam();
  const SyntheticDataset data = MakeData(param.shape, 0.03);
  auto model_or = MakeFusionModel(param.model);
  ASSERT_TRUE(model_or.ok());
  const FusionModel& model = *model_or.value();

  StreamingDatabase stream{Database()};
  FusionOptions opts;
  const auto engine = DeltaFusionEngine::Create(stream, model, opts);
  ASSERT_NE(engine, nullptr) << param.model;

  const PriorSet priors;
  FusionResult rolling = model.Fuse(stream.db(), priors, opts);
  VectorFeed feed(data.stream, {}, /*batch_size=*/61);
  IngestBatch batch;
  std::vector<ItemId> dirty_items;
  std::vector<SourceId> dirty_sources;
  while (feed.Next(&batch)) {
    ASSERT_TRUE(stream.AppendBatch(batch).ok());
    stream.TakeDirty(&dirty_items, &dirty_sources);
    if (dirty_items.empty() && dirty_sources.empty()) continue;
    auto next =
        engine->FuseWithAppends(rolling, priors, dirty_items, dirty_sources);
    ASSERT_TRUE(next.ok()) << next.status();
    rolling = std::move(next).value();
    ASSERT_TRUE(rolling.AllFinite());
  }

  const FusionResult full = model.Fuse(stream.db(), priors, opts);
  ExpectSameFixedPoint(rolling, full, stream.db());
}

TEST_P(AppendEquivalenceTest, PinsSurviveAppendsAndCompaction) {
  const StreamCase& param = GetParam();
  const SyntheticDataset data = MakeData(param.shape, 0.0);
  auto model_or = MakeFusionModel(param.model);
  ASSERT_TRUE(model_or.ok());
  const FusionModel& model = *model_or.value();

  StreamingDatabase stream{Database()};
  FusionOptions opts;
  const auto engine = DeltaFusionEngine::Create(stream, model, opts);
  ASSERT_NE(engine, nullptr);

  PriorSet priors;
  FusionResult rolling = model.Fuse(stream.db(), priors, opts);
  VectorFeed feed(data.stream, {}, /*batch_size=*/83);
  IngestBatch batch;
  std::vector<ItemId> dirty_items;
  std::vector<SourceId> dirty_sources;
  std::size_t ticks = 0;
  ItemId pinned = kInvalidItem;
  while (feed.Next(&batch)) {
    ASSERT_TRUE(stream.AppendBatch(batch).ok());
    stream.TakeDirty(&dirty_items, &dirty_sources);
    // Pins acquired earlier must be zero-extended when their item grows.
    priors.ExtendForNewClaims(stream.db());
    if (!(dirty_items.empty() && dirty_sources.empty())) {
      auto next =
          engine->FuseWithAppends(rolling, priors, dirty_items, dirty_sources);
      ASSERT_TRUE(next.ok()) << next.status();
      rolling = std::move(next).value();
    }
    ++ticks;
    if (ticks == 2) {
      // Validate the first conflicting item one-hot on its first claim,
      // mid-stream, then keep streaming across a compaction.
      for (ItemId i = 0; i < stream.db().num_items(); ++i) {
        if (stream.db().HasConflict(i)) {
          pinned = i;
          break;
        }
      }
      ASSERT_NE(pinned, kInvalidItem);
      std::vector<double> pin(stream.db().num_claims(pinned), 0.0);
      pin[0] = 1.0;
      ASSERT_TRUE(priors.SetDistribution(stream.db(), pinned, pin).ok());
      rolling = engine->FuseWithPins(rolling, priors, {pinned});
      ASSERT_TRUE(rolling.AllFinite());
    }
    if (ticks == 3) {
      stream.Compact();  // Epoch bump; the rolling result stays shape-valid.
    }
  }

  const FusionResult full = model.Fuse(stream.db(), priors, opts);
  ExpectSameFixedPoint(rolling, full, stream.db());
  // The pin itself is intact (zero-extended if the item grew).
  ASSERT_TRUE(priors.Has(pinned));
  EXPECT_NEAR(rolling.prob(pinned, 0), 1.0, kProbTol);
  for (ClaimIndex k = 1; k < stream.db().num_claims(pinned); ++k) {
    EXPECT_NEAR(rolling.prob(pinned, k), 0.0, kProbTol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModelsAndShapes, AppendEquivalenceTest,
    ::testing::Values(StreamCase{"accu", "dense"},
                      StreamCase{"accu", "longtail"},
                      StreamCase{"voting", "dense"},
                      StreamCase{"voting", "longtail"},
                      StreamCase{"truthfinder", "dense"},
                      StreamCase{"truthfinder", "longtail"}),
    [](const ::testing::TestParamInfo<StreamCase>& info) {
      return info.param.model + "_" + info.param.shape;
    });

TEST(StaleViewTest, LookaheadOnStaleBaseDegradesAndCounts) {
  const SyntheticDataset data = MakeData("dense", 0.0);
  StreamingDatabase stream{data.db};
  auto model_or = MakeFusionModel("accu");
  ASSERT_TRUE(model_or.ok());
  FusionOptions opts;
  const auto engine = DeltaFusionEngine::Create(stream, *model_or.value(), opts);
  ASSERT_NE(engine, nullptr);

  const PriorSet priors;
  const FusionResult fused = model_or.value()->Fuse(stream.db(), priors, opts);
  const DeltaFusionEngine::BaseState base = engine->PrepareBase(fused);
  EXPECT_EQ(base.epoch, stream.epoch());

  ItemId conflicted = kInvalidItem;
  for (ItemId i = 0; i < stream.db().num_items(); ++i) {
    if (stream.db().HasConflict(i)) {
      conflicted = i;
      break;
    }
  }
  ASSERT_NE(conflicted, kInvalidItem);

  DeltaFusionEngine::Workspace ws;
  const double live =
      engine->EntropyAfterExactPin(base, ws, priors, conflicted, 0);
  EXPECT_NE(live, base.total_entropy);  // A real lookahead moved the entropy.

  // Appending invalidates every BaseState derived from the old epoch.
  IngestBatch batch;
  batch.observations.push_back({"fresh_source", "item0000", "streamed", 0.0});
  ASSERT_TRUE(stream.AppendBatch(batch).ok());

  Counter* violations = MetricsRegistry::Global().GetCounter(
      "delta.stale_view_violations");
  const std::uint64_t before = violations->value();
  // Release builds (all presets define NDEBUG) degrade instead of asserting:
  // the lookahead returns the base entropy unchanged and counts the hazard.
  const double stale =
      engine->EntropyAfterExactPin(base, ws, priors, conflicted, 0);
  EXPECT_EQ(stale, base.total_entropy);
  EXPECT_EQ(violations->value(), before + 1);
}

TEST(StaleViewTest, ParallelLookaheadsBetweenAppendsAreRaceFree) {
  // The documented contract: parallel read-only lookahead workers only run
  // between ingest ticks. This drives exactly that interleaving so TSan can
  // vet the const paths (shared CompiledDatabase view, shared BaseState,
  // per-thread workspaces).
  const SyntheticDataset data = MakeData("dense", 0.0);
  StreamingDatabase stream{data.db};
  auto model_or = MakeFusionModel("accu");
  ASSERT_TRUE(model_or.ok());
  FusionOptions opts;
  const auto engine = DeltaFusionEngine::Create(stream, *model_or.value(), opts);
  ASSERT_NE(engine, nullptr);

  const PriorSet priors;
  FusionResult rolling = model_or.value()->Fuse(stream.db(), priors, opts);

  std::vector<ItemId> conflicted;
  for (ItemId i = 0; i < stream.db().num_items(); ++i) {
    if (stream.db().HasConflict(i)) conflicted.push_back(i);
  }
  ASSERT_GE(conflicted.size(), 4u);

  std::vector<ItemId> dirty_items;
  std::vector<SourceId> dirty_sources;
  for (int round = 0; round < 3; ++round) {
    const DeltaFusionEngine::BaseState base = engine->PrepareBase(rolling);
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
      workers.emplace_back([&, w] {
        DeltaFusionEngine::Workspace ws;
        for (std::size_t c = w; c < conflicted.size(); c += 4) {
          const double entropy = engine->EntropyAfterExactPin(
              base, ws, priors, conflicted[c], 0);
          ASSERT_TRUE(entropy == entropy);  // Not NaN.
        }
      });
    }
    for (std::thread& t : workers) t.join();

    // Single-writer ingest tick between scans.
    IngestBatch batch;
    batch.observations.push_back({"streamer_" + std::to_string(round),
                                  stream.db().item(conflicted[0]).name,
                                  "late_claim_" + std::to_string(round), 0.0});
    ASSERT_TRUE(stream.AppendBatch(batch).ok());
    stream.TakeDirty(&dirty_items, &dirty_sources);
    auto next =
        engine->FuseWithAppends(rolling, priors, dirty_items, dirty_sources);
    ASSERT_TRUE(next.ok()) << next.status();
    rolling = std::move(next).value();
  }
  ASSERT_TRUE(rolling.AllFinite());
}

}  // namespace
}  // namespace veritas
