// Equivalence and consistency suite for the incremental DeltaFusion engine
// and the CompiledDatabase CSR view: on randomized synthetic databases, a
// delta re-fusion after a pin must agree with the full warm-started
// re-fusion it replaces (within the convergence tolerance both paths stop
// at), the entropy-only MEU lookahead must agree with materializing the
// re-fusion and summing, the frontier-overflow fallback must produce the
// full path's result verbatim, and the CSR view must index exactly the
// observations the nested Database holds.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "data/synthetic.h"
#include "fusion/accu_copy.h"
#include "fusion/delta_fusion.h"
#include "fusion/fusion_factory.h"
#include "model/compiled_database.h"
#include "util/math.h"

namespace veritas {
namespace {

// Both paths stop when the L-infinity accuracy change drops below
// `tolerance` (1e-6), so each can sit up to ~tolerance * rho / (1 - rho)
// from the shared fixed point; the bounds leave room for that without
// masking real divergence.
constexpr double kProbTol = 5e-5;
constexpr double kAccTol = 5e-5;
constexpr double kEntropyTol = 1e-3;

struct DeltaCase {
  std::string model;
  bool dense;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const DeltaCase& c) {
    return os << c.model << (c.dense ? "_dense_" : "_longtail_") << c.seed;
  }
};

SyntheticDataset Generate(const DeltaCase& c) {
  if (c.dense) {
    DenseConfig config;
    config.num_items = 120;
    config.num_sources = 16;
    config.density = 0.4;
    config.max_false_claims = 3;
    config.seed = c.seed;
    return GenerateDense(config);
  }
  LongTailConfig config;
  config.num_items = 120;
  config.num_sources = 70;
  config.avg_votes_per_item = 7.0;
  config.max_false_claims = 3;
  config.seed = c.seed;
  return GenerateLongTail(config);
}

double MaxProbDiff(const Database& db, const FusionResult& a,
                   const FusionResult& b) {
  double max_diff = 0.0;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      max_diff = std::max(max_diff, std::fabs(a.prob(i, k) - b.prob(i, k)));
    }
  }
  return max_diff;
}

double MaxAccDiff(const FusionResult& a, const FusionResult& b) {
  double max_diff = 0.0;
  for (std::size_t j = 0; j < a.accuracies().size(); ++j) {
    max_diff = std::max(
        max_diff, std::fabs(a.accuracies()[j] - b.accuracies()[j]));
  }
  return max_diff;
}

class DeltaEquivalenceTest : public ::testing::TestWithParam<DeltaCase> {};

TEST_P(DeltaEquivalenceTest, FuseWithPinsMatchesFullRefusion) {
  const SyntheticDataset data = Generate(GetParam());
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  const FusionOptions opts;
  const FusionResult base = (*model)->Fuse(data.db, PriorSet(), opts);
  const auto engine = DeltaFusionEngine::Create(data.db, **model, opts);
  ASSERT_NE(engine, nullptr);

  const std::vector<ItemId> conflicting = data.db.ConflictingItems();
  ASSERT_FALSE(conflicting.empty());
  for (std::size_t idx = 0; idx < std::min<std::size_t>(4, conflicting.size());
       ++idx) {
    const ItemId pin = conflicting[idx];
    for (ClaimIndex k = 0; k < std::min<std::size_t>(2, data.db.num_claims(pin));
         ++k) {
      PriorSet priors;
      priors.SetExact(data.db, pin, k);
      DeltaFusionStats stats;
      const FusionResult delta =
          engine->FuseWithPins(base, priors, {pin}, &stats);
      const FusionResult full = (*model)->Fuse(data.db, priors, opts, &base);
      EXPECT_LE(MaxProbDiff(data.db, delta, full), kProbTol)
          << "pin " << pin << "/" << k << " fell_back=" << stats.fell_back;
      EXPECT_LE(MaxAccDiff(delta, full), kAccTol) << "pin " << pin << "/" << k;
      // The pin itself must be copied verbatim.
      for (ClaimIndex kk = 0; kk < data.db.num_claims(pin); ++kk) {
        EXPECT_EQ(delta.prob(pin, kk), kk == k ? 1.0 : 0.0);
      }
    }
  }
}

TEST_P(DeltaEquivalenceTest, EntropyAfterPinMatchesMaterializedRefusion) {
  const SyntheticDataset data = Generate(GetParam());
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  const FusionOptions opts;
  const FusionResult base = (*model)->Fuse(data.db, PriorSet(), opts);
  const auto engine = DeltaFusionEngine::Create(data.db, **model, opts);
  ASSERT_NE(engine, nullptr);
  const DeltaFusionEngine::BaseState state = engine->PrepareBase(base);
  DeltaFusionEngine::Workspace ws;
  const PriorSet no_priors;

  const std::vector<ItemId> conflicting = data.db.ConflictingItems();
  ASSERT_FALSE(conflicting.empty());
  for (std::size_t idx = 0; idx < std::min<std::size_t>(4, conflicting.size());
       ++idx) {
    const ItemId pin = conflicting[idx];
    for (ClaimIndex k = 0; k < std::min<std::size_t>(2, data.db.num_claims(pin));
         ++k) {
      const double h_delta =
          engine->EntropyAfterExactPin(state, ws, no_priors, pin, k);
      PriorSet lookahead;
      lookahead.SetExact(data.db, pin, k);
      const double h_full =
          (*model)->Fuse(data.db, lookahead, opts, &base).TotalEntropy();
      EXPECT_NEAR(h_delta, h_full, kEntropyTol) << "pin " << pin << "/" << k;
      // The workspace must restore itself after each call: repeating the
      // same pin from the same base must reproduce the value exactly.
      EXPECT_EQ(h_delta,
                engine->EntropyAfterExactPin(state, ws, no_priors, pin, k));
    }
  }
}

TEST_P(DeltaEquivalenceTest, FrontierOverflowFallsBackToFullPath) {
  const SyntheticDataset data = Generate(GetParam());
  auto model = MakeFusionModel(GetParam().model);
  ASSERT_TRUE(model.ok());
  const FusionOptions opts;
  // A zero coverage budget forces the materializing path to fall back on
  // the first propagation round, whatever the pin touches.
  DeltaFusionOptions tight;
  tight.max_frontier_fraction = 0.0;
  const auto engine = DeltaFusionEngine::Create(data.db, **model, opts, tight);
  ASSERT_NE(engine, nullptr);
  const FusionResult base = (*model)->Fuse(data.db, PriorSet(), opts);

  const ItemId pin = data.db.ConflictingItems().front();
  PriorSet priors;
  priors.SetExact(data.db, pin, 0);
  DeltaFusionStats stats;
  const FusionResult delta = engine->FuseWithPins(base, priors, {pin}, &stats);
  EXPECT_TRUE(stats.fell_back);
  // The fallback *is* the full warm path, so agreement is exact.
  const FusionResult full = (*model)->Fuse(data.db, priors, opts, &base);
  EXPECT_EQ(MaxProbDiff(data.db, delta, full), 0.0);
  EXPECT_EQ(MaxAccDiff(delta, full), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Models, DeltaEquivalenceTest,
    ::testing::Values(DeltaCase{"accu", true, 11}, DeltaCase{"accu", true, 12},
                      DeltaCase{"accu", false, 13},
                      DeltaCase{"accu", false, 14},
                      DeltaCase{"voting", true, 21},
                      DeltaCase{"voting", false, 22},
                      DeltaCase{"truthfinder", true, 31},
                      DeltaCase{"truthfinder", false, 32}));

TEST(DeltaFusionSupportTest, CreateCoversExactlyTheLocalUpdateModels) {
  const SyntheticDataset data = Generate({"accu", true, 5});
  const FusionOptions opts;
  for (const char* name : {"accu", "voting", "truthfinder"}) {
    auto model = MakeFusionModel(name);
    ASSERT_TRUE(model.ok());
    EXPECT_TRUE(DeltaFusionEngine::Supports(**model)) << name;
    EXPECT_NE(DeltaFusionEngine::Create(data.db, **model, opts), nullptr)
        << name;
  }
  // AccuCopy re-estimates source dependence from all pairwise agreements, so
  // a pin is never a local update; the engine must refuse it.
  AccuCopyFusion accu_copy;
  EXPECT_FALSE(DeltaFusionEngine::Supports(accu_copy));
  EXPECT_EQ(DeltaFusionEngine::Create(data.db, accu_copy, opts), nullptr);
}

// The CSR view must be a faithful re-indexing of the nested Database: same
// counts, and every observation reachable through each of the three indexes.
TEST(CompiledDatabaseTest, ViewMatchesDatabase) {
  for (std::uint64_t seed : {3u, 7u}) {
    const SyntheticDataset data = Generate({"accu", seed % 2 == 1, seed});
    const Database& db = data.db;
    const CompiledDatabase c(db);

    ASSERT_EQ(c.num_items(), db.num_items());
    ASSERT_EQ(c.num_sources(), db.num_sources());
    ASSERT_EQ(c.num_observations(), db.num_observations());

    std::size_t total_claims = 0;
    for (ItemId i = 0; i < db.num_items(); ++i) {
      ASSERT_EQ(c.item_num_claims(i), db.num_claims(i)) << "item " << i;
      ASSERT_EQ(c.claim_offset(i), total_claims) << "item " << i;
      total_claims += db.num_claims(i);
      if (db.num_claims(i) > 1) {
        EXPECT_DOUBLE_EQ(
            c.log_false_values(i),
            std::log(static_cast<double>(db.num_claims(i)) - 1.0));
      }
    }
    ASSERT_EQ(c.num_claims(), total_claims);

    // claim -> sources mirrors Item::claims[k].sources, in order.
    for (ItemId i = 0; i < db.num_items(); ++i) {
      const Item& o = db.item(i);
      for (ClaimIndex k = 0; k < o.claims.size(); ++k) {
        const std::uint32_t g = c.claim_offset(i) + k;
        ASSERT_EQ(c.claim_sources_end(g) - c.claim_sources_begin(g),
                  o.claims[k].sources.size());
        for (std::uint32_t v = c.claim_sources_begin(g);
             v < c.claim_sources_end(g); ++v) {
          EXPECT_EQ(c.claim_sources()[v],
                    o.claims[k].sources[v - c.claim_sources_begin(g)]);
        }
      }
    }

    // item -> votes holds every (source, local claim) pair cast on the item.
    for (ItemId i = 0; i < db.num_items(); ++i) {
      const Item& o = db.item(i);
      std::size_t expected = 0;
      for (const Claim& cl : o.claims) expected += cl.sources.size();
      ASSERT_EQ(c.item_votes_end(i) - c.item_votes_begin(i), expected);
      for (std::uint32_t v = c.item_votes_begin(i); v < c.item_votes_end(i);
           ++v) {
        const ClaimIndex k = c.item_vote_claims()[v];
        const SourceId s = c.item_vote_sources()[v];
        ASSERT_LT(k, o.claims.size());
        bool found = false;
        for (SourceId cs : o.claims[k].sources) found |= (cs == s);
        EXPECT_TRUE(found) << "item " << i << " claim " << k << " source " << s;
      }
    }

    // source -> votes mirrors Source::votes with global claim ids.
    for (SourceId j = 0; j < db.num_sources(); ++j) {
      const Source& s = db.source(j);
      ASSERT_EQ(c.source_degree(j), s.votes.size());
      for (std::uint32_t v = c.source_votes_begin(j); v < c.source_votes_end(j);
           ++v) {
        const Vote& vote = s.votes[v - c.source_votes_begin(j)];
        EXPECT_EQ(c.source_vote_items()[v], vote.item);
        EXPECT_EQ(c.source_vote_claims()[v],
                  c.claim_offset(vote.item) + vote.claim);
      }
    }
  }
}

}  // namespace
}  // namespace veritas
