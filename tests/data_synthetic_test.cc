// Tests of the synthetic dataset generators (§B.2 dense + long-tail).
#include "data/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/dataset_stats.h"
#include "fusion/accu.h"
#include "core/metrics.h"

namespace veritas {
namespace {

TEST(SyntheticValueTest, Naming) {
  EXPECT_EQ(SyntheticTrueValue(7), "T7");
  EXPECT_EQ(SyntheticFalseValue(7, 0), "F7_0");
  EXPECT_EQ(SyntheticFalseValue(12, 3), "F12_3");
}

TEST(GenerateDenseTest, ShapeMatchesConfig) {
  DenseConfig config;
  config.num_items = 200;
  config.num_sources = 20;
  config.density = 0.4;
  config.seed = 1;
  const SyntheticDataset data = GenerateDense(config);
  EXPECT_EQ(data.db.num_items(), 200u);
  // PatchCoverage may add a handful of fallback votes but never sources.
  EXPECT_EQ(data.db.num_sources(), 20u);
  EXPECT_EQ(data.true_accuracies.size(), 20u);
}

TEST(GenerateDenseTest, DensityApproximatelyHonored) {
  DenseConfig config;
  config.num_items = 500;
  config.num_sources = 30;
  config.density = 0.4;
  config.seed = 2;
  const SyntheticDataset data = GenerateDense(config);
  const DatasetStats stats = ComputeStats(data.db);
  EXPECT_NEAR(stats.density, 0.4, 0.05);
}

TEST(GenerateDenseTest, EveryItemHasVotes) {
  DenseConfig config;
  config.num_items = 300;
  config.num_sources = 10;
  config.density = 0.05;  // Sparse enough that patching must kick in.
  config.seed = 3;
  const SyntheticDataset data = GenerateDense(config);
  EXPECT_EQ(data.db.num_items(), 300u);
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    EXPECT_GE(data.db.item_votes(i).size(), 1u) << "item " << i;
  }
}

TEST(GenerateDenseTest, ClaimsPerItemCapped) {
  DenseConfig config;
  config.num_items = 200;
  config.num_sources = 25;
  config.density = 0.6;
  config.max_false_claims = 1;
  config.seed = 4;
  const SyntheticDataset data = GenerateDense(config);
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    EXPECT_LE(data.db.num_claims(i), 2u);
  }
}

TEST(GenerateDenseTest, MultiClaimGeneration) {
  DenseConfig config;
  config.num_items = 100;
  config.num_sources = 25;
  config.density = 0.6;
  config.max_false_claims = 3;
  config.seed = 5;
  const SyntheticDataset data = GenerateDense(config);
  std::size_t max_claims = 0;
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    max_claims = std::max(max_claims, data.db.num_claims(i));
    EXPECT_LE(data.db.num_claims(i), 4u);
  }
  EXPECT_GT(max_claims, 2u);  // Some item should actually use the room.
}

TEST(GenerateDenseTest, TruthMatchesGeneratedTrueValues) {
  DenseConfig config;
  config.num_items = 150;
  config.num_sources = 15;
  config.density = 0.5;
  config.seed = 6;
  const SyntheticDataset data = GenerateDense(config);
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    if (!data.truth.Knows(i)) continue;
    const ClaimIndex t = data.truth.TrueClaim(i);
    // True claims carry the "T<index>" value.
    EXPECT_EQ(data.db.item(i).claims[t].value[0], 'T');
  }
}

TEST(GenerateDenseTest, ConflictingItemsAlwaysHaveKnownTruth) {
  // With max_false_claims = 1 an item conflicts only when both the true and
  // the false value were voted, so truth is always expressible.
  DenseConfig config;
  config.num_items = 400;
  config.num_sources = 20;
  config.density = 0.3;
  config.seed = 7;
  const SyntheticDataset data = GenerateDense(config);
  for (ItemId i : data.db.ConflictingItems()) {
    EXPECT_TRUE(data.truth.Knows(i)) << "item " << i;
  }
}

TEST(GenerateDenseTest, EnsureTrueClaimMakesTruthTotal) {
  DenseConfig config;
  config.num_items = 200;
  config.num_sources = 8;
  config.density = 0.2;
  config.max_false_claims = 2;
  config.ensure_true_claim = true;
  config.seed = 8;
  const SyntheticDataset data = GenerateDense(config);
  EXPECT_EQ(data.truth.num_known(), data.db.num_items());
}

TEST(GenerateDenseTest, DeterministicForSeed) {
  DenseConfig config;
  config.num_items = 100;
  config.num_sources = 10;
  config.seed = 9;
  const SyntheticDataset a = GenerateDense(config);
  const SyntheticDataset b = GenerateDense(config);
  EXPECT_EQ(a.db.num_observations(), b.db.num_observations());
  EXPECT_EQ(a.db.num_claims(), b.db.num_claims());
  EXPECT_EQ(a.true_accuracies, b.true_accuracies);
}

TEST(GenerateDenseTest, DifferentSeedsDiffer) {
  DenseConfig config;
  config.num_items = 100;
  config.num_sources = 10;
  config.seed = 10;
  const SyntheticDataset a = GenerateDense(config);
  config.seed = 11;
  const SyntheticDataset b = GenerateDense(config);
  EXPECT_NE(a.db.num_observations(), b.db.num_observations());
}

TEST(GenerateDenseTest, SourceAccuracyReflectedInData) {
  // Empirical per-source truth rate should correlate with the assigned
  // accuracy: check the best and worst sources are ordered correctly.
  DenseConfig config;
  config.num_items = 2000;
  config.num_sources = 10;
  config.density = 0.5;
  config.seed = 12;
  const SyntheticDataset data = GenerateDense(config);
  std::size_t best = 0, worst = 0;
  for (std::size_t j = 1; j < data.true_accuracies.size(); ++j) {
    if (data.true_accuracies[j] > data.true_accuracies[best]) best = j;
    if (data.true_accuracies[j] < data.true_accuracies[worst]) worst = j;
  }
  auto truth_rate = [&](SourceId j) {
    const Source& s = data.db.source(j);
    std::size_t right = 0;
    for (const Vote& v : s.votes) {
      if (data.truth.IsTrue(v.item, v.claim)) ++right;
    }
    return static_cast<double>(right) / static_cast<double>(s.votes.size());
  };
  EXPECT_GT(truth_rate(static_cast<SourceId>(best)),
            truth_rate(static_cast<SourceId>(worst)));
}

TEST(GenerateDenseTest, CopiersReplicateTheirParentsVotes) {
  DenseConfig config;
  config.num_items = 300;
  config.num_sources = 20;
  config.density = 0.5;
  config.copier_fraction = 0.5;
  config.seed = 90;
  const SyntheticDataset data = GenerateDense(config);
  // With half the sources copying, votes on shared items must agree far
  // more often than independent 0.8-accurate observers would: count pairs
  // of sources that agree on > 95% of their shared items.
  std::size_t near_clones = 0;
  for (SourceId a = 0; a < data.db.num_sources(); ++a) {
    for (SourceId b = a + 1; b < data.db.num_sources(); ++b) {
      std::size_t shared = 0, agree = 0;
      for (const Vote& v : data.db.source(a).votes) {
        const ClaimIndex other = data.db.ClaimOf(b, v.item);
        if (other == kInvalidClaim) continue;
        ++shared;
        if (other == v.claim) ++agree;
      }
      if (shared >= 20 &&
          static_cast<double>(agree) / static_cast<double>(shared) > 0.95) {
        ++near_clones;
      }
    }
  }
  EXPECT_GT(near_clones, 0u);
}

TEST(GenerateDenseTest, CopyingCreatesConfidentMistakes) {
  // The purpose of the copier knob: correlated wrong claims that fusion
  // trusts. Compare confidently-wrong counts with and without copying.
  auto confident_wrong = [](double copier_fraction) {
    DenseConfig config;
    config.num_items = 400;
    config.num_sources = 38;
    config.density = 0.36;
    config.accuracy_mean = 0.75;
    config.copier_fraction = copier_fraction;
    config.seed = 91;
    const SyntheticDataset data = GenerateDense(config);
    AccuFusion model;
    const FusionResult r = model.Fuse(data.db, FusionOptions{});
    std::size_t count = 0;
    for (ItemId i = 0; i < data.db.num_items(); ++i) {
      if (!data.truth.Knows(i)) continue;
      if (r.prob(i, data.truth.TrueClaim(i)) < 0.1) ++count;
    }
    return count;
  };
  EXPECT_GT(confident_wrong(0.5), confident_wrong(0.0));
}

TEST(GenerateDenseTest, CopierAccuracyInheritedFromParent) {
  DenseConfig config;
  config.num_items = 100;
  config.num_sources = 10;
  config.copier_fraction = 0.4;
  config.seed = 92;
  const SyntheticDataset data = GenerateDense(config);
  // true_accuracies of copiers equal some independent source's accuracy.
  // (Weaker check: all values drawn from the independent prefix's set.)
  const std::size_t independents = 10 - 4;
  for (std::size_t j = independents; j < 10; ++j) {
    bool found = false;
    for (std::size_t p = 0; p < independents; ++p) {
      if (data.true_accuracies[j] == data.true_accuracies[p]) found = true;
    }
    EXPECT_TRUE(found) << "copier " << j;
  }
}

TEST(GenerateLongTailTest, CopiersCoverSubsetOfParentCatalog) {
  LongTailConfig config;
  config.num_items = 400;
  config.num_sources = 60;
  config.avg_votes_per_item = 12.0;
  config.copier_fraction = 0.5;
  config.seed = 93;
  const SyntheticDataset data = GenerateLongTail(config);
  // At least one pair of sources must share a large, highly-agreeing
  // overlap (a copier on its parent's catalog).
  bool found_catalog_copy = false;
  for (SourceId a = 0; a < data.db.num_sources() && !found_catalog_copy;
       ++a) {
    for (SourceId b = a + 1; b < data.db.num_sources(); ++b) {
      std::size_t shared = 0, agree = 0;
      for (const Vote& v : data.db.source(a).votes) {
        const ClaimIndex other = data.db.ClaimOf(b, v.item);
        if (other == kInvalidClaim) continue;
        ++shared;
        if (other == v.claim) ++agree;
      }
      if (shared >= 5 && agree == shared) {
        found_catalog_copy = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_catalog_copy);
}

TEST(GenerateLongTailTest, ShapeMatchesConfig) {
  LongTailConfig config;
  config.num_items = 400;
  config.num_sources = 300;
  config.avg_votes_per_item = 10.0;
  config.seed = 21;
  const SyntheticDataset data = GenerateLongTail(config);
  EXPECT_EQ(data.db.num_items(), 400u);
  EXPECT_EQ(data.db.num_sources(), 300u);
  const DatasetStats stats = ComputeStats(data.db);
  EXPECT_NEAR(stats.avg_votes_per_item, 10.0, 2.5);
}

TEST(GenerateLongTailTest, CoverageIsLongTailed) {
  // Figure 8 / §B.1: most sources cover a small fraction of items.
  LongTailConfig config;
  config.num_items = 1000;
  config.num_sources = 700;
  config.avg_votes_per_item = 19.0;
  config.pareto_alpha = 0.7;
  config.seed = 22;
  const SyntheticDataset data = GenerateLongTail(config);
  // A clear majority of sources covers < 4% of the items...
  EXPECT_GT(CoverageBelow(data.db, 0.04), 0.75);
  // ...while a few heavy sources cover a lot.
  const auto coverages = SourceCoverages(data.db);
  EXPECT_GT(*std::max_element(coverages.begin(), coverages.end()), 0.2);
}

TEST(GenerateLongTailTest, PopulationLikeSparsity) {
  LongTailConfig config;
  config.num_items = 2000;
  config.num_sources = 150;
  config.avg_votes_per_item = 1.15;
  config.seed = 23;
  const SyntheticDataset data = GenerateLongTail(config);
  const DatasetStats stats = ComputeStats(data.db);
  // Only a small share of items should be conflicting (paper: ~2.5%).
  const double conflict_share =
      static_cast<double>(stats.conflicting_items) /
      static_cast<double>(stats.items);
  EXPECT_LT(conflict_share, 0.25);
  EXPECT_GT(conflict_share, 0.0);
}

TEST(GenerateLongTailTest, EveryItemCovered) {
  LongTailConfig config;
  config.num_items = 500;
  config.num_sources = 100;
  config.avg_votes_per_item = 1.0;
  config.seed = 24;
  const SyntheticDataset data = GenerateLongTail(config);
  EXPECT_EQ(data.db.num_items(), 500u);
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    EXPECT_GE(data.db.item_votes(i).size(), 1u);
  }
}

TEST(GenerateLongTailTest, Deterministic) {
  LongTailConfig config;
  config.num_items = 200;
  config.num_sources = 100;
  config.seed = 25;
  const SyntheticDataset a = GenerateLongTail(config);
  const SyntheticDataset b = GenerateLongTail(config);
  EXPECT_EQ(a.db.num_observations(), b.db.num_observations());
}

// Fusion on generated data recovers most truths — a sanity property across
// generator shapes and seeds.
struct GenCase {
  bool dense;
  std::uint64_t seed;
};

class GeneratorFusionPropertyTest
    : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorFusionPropertyTest, FusionBeatsChance) {
  const GenCase param = GetParam();
  SyntheticDataset data;
  if (param.dense) {
    DenseConfig config;
    config.num_items = 250;
    config.num_sources = 25;
    config.density = 0.4;
    config.seed = param.seed;
    data = GenerateDense(config);
  } else {
    LongTailConfig config;
    config.num_items = 250;
    config.num_sources = 150;
    config.avg_votes_per_item = 12.0;
    config.seed = param.seed;
    data = GenerateLongTail(config);
  }
  AccuFusion model;
  const FusionResult r = model.Fuse(data.db, FusionOptions{});
  EXPECT_GT(FusionAccuracy(data.db, r, data.truth), 0.75);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorFusionPropertyTest,
    ::testing::Values(GenCase{true, 1}, GenCase{true, 2}, GenCase{true, 3},
                      GenCase{false, 1}, GenCase{false, 2},
                      GenCase{false, 3}));

// ---------- Declarative spec front-end ----------

TEST(GenerateFromSpecTest, DispatchesToDense) {
  DatasetSpec spec;
  spec.shape = "dense";
  spec.num_items = 120;
  spec.num_sources = 20;
  spec.seed = 5;
  spec.params["density"] = "0.4";
  GenerationReport report;
  const Result<SyntheticDataset> data = GenerateFromSpec(spec, &report);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(data->db.num_items(), 120u);
  EXPECT_EQ(report.generator, "dense");
  EXPECT_EQ(report.num_items, data->db.num_items());
  EXPECT_EQ(report.num_observations, data->db.num_observations());

  // The spec path must produce exactly what the native config produces.
  DenseConfig config;
  config.num_items = 120;
  config.num_sources = 20;
  config.density = 0.4;
  config.seed = 5;
  const SyntheticDataset direct = GenerateDense(config);
  EXPECT_EQ(data->db.num_observations(), direct.db.num_observations());
}

TEST(GenerateFromSpecTest, RejectsUnknownShapeAndParams) {
  DatasetSpec spec;
  spec.shape = "mystery";
  EXPECT_FALSE(GenerateFromSpec(spec).ok());

  spec.shape = "dense";
  spec.params["densty"] = "0.4";  // Typo must not silently default.
  EXPECT_FALSE(GenerateFromSpec(spec).ok());

  spec.params.clear();
  spec.params["density"] = "not-a-number";
  EXPECT_FALSE(GenerateFromSpec(spec).ok());

  spec.params.clear();
  spec.shape = "scaled_longtail";
  spec.params["max_hot_logit"] = "-1";  // Out of domain.
  EXPECT_FALSE(GenerateFromSpec(spec).ok());
}

TEST(GenerateFromSpecTest, ScaledLongTailShape) {
  DatasetSpec spec;
  spec.shape = "scaled_longtail";
  spec.name = "scale-test";
  spec.num_items = 20000;
  spec.num_sources = 4096;
  spec.seed = 9;
  spec.params["hot_items"] = "64";
  spec.params["head_sources"] = "8";
  GenerationReport report;
  const Result<SyntheticDataset> data = GenerateFromSpec(spec, &report);
  ASSERT_TRUE(data.ok()) << data.status().ToString();
  EXPECT_EQ(report.generator, "scaled_longtail");
  EXPECT_EQ(report.dataset_name, "scale-test");
  EXPECT_EQ(report.num_items, 20000u);
  EXPECT_EQ(report.head_sources, 8u);
  // Exactly the hot items are contested; the whole tail is single-claim.
  EXPECT_EQ(report.contested_items, 64u);
  std::size_t contested = 0;
  for (ItemId i = 0; i < data->db.num_items(); ++i) {
    if (data->db.num_claims(i) > 1) ++contested;
  }
  EXPECT_EQ(contested, 64u);
  // Heads jointly cover every item.
  std::vector<bool> covered(data->db.num_items(), false);
  for (SourceId j = 0; j < 8; ++j) {
    for (const Vote& vote : data->db.source(j).votes) {
      covered[vote.item] = true;
    }
  }
  EXPECT_TRUE(std::all_of(covered.begin(), covered.end(),
                          [](bool c) { return c; }));
}

TEST(GenerateFromSpecTest, SameSeedSameData) {
  DatasetSpec spec;
  spec.shape = "scaled_longtail";
  spec.num_items = 5000;
  spec.num_sources = 4096;
  spec.seed = 17;
  const Result<SyntheticDataset> a = GenerateFromSpec(spec);
  const Result<SyntheticDataset> b = GenerateFromSpec(spec);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->db.num_observations(), b->db.num_observations());
  ASSERT_EQ(a->db.num_items(), b->db.num_items());
  for (ItemId i = 0; i < a->db.num_items(); ++i) {
    ASSERT_EQ(a->db.num_claims(i), b->db.num_claims(i)) << "item " << i;
  }
}

}  // namespace
}  // namespace veritas
