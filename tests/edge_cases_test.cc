// Edge-case and failure-injection tests: degenerate databases, adversarial
// data, exhausted budgets, and hostile file inputs.
#include <fstream>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "data/canonicalize.h"
#include "data/loader.h"
#include "fusion/accu.h"
#include "fusion/fusion_factory.h"
#include "model/database_builder.h"
#include "util/math.h"

namespace veritas {
namespace {

// ---------- Degenerate databases ----------

TEST(EdgeCaseTest, EmptyDatabaseFusesToNothing) {
  DatabaseBuilder builder;
  const Database db = builder.Build();
  for (const std::string& name : FusionModelNames()) {
    auto model = MakeFusionModel(name);
    ASSERT_TRUE(model.ok());
    const FusionResult r = (*model)->Fuse(db, PriorSet(), FusionOptions{});
    EXPECT_EQ(r.num_items(), 0u) << name;
    EXPECT_DOUBLE_EQ(r.TotalEntropy(), 0.0) << name;
  }
}

TEST(EdgeCaseTest, EmptyDatabaseStrategiesReturnNothing) {
  DatabaseBuilder builder;
  const Database db = builder.Build();
  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(db, priors, opts);
  const ItemGraph graph(db);
  GroundTruth truth(db);
  Rng rng(1);
  StrategyContext ctx;
  ctx.db = &db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;
  ctx.ground_truth = &truth;
  ctx.graph = &graph;
  ctx.rng = &rng;
  for (const std::string& name : StrategyNames()) {
    auto strategy = MakeStrategy(name);
    ASSERT_TRUE(strategy.ok()) << name;
    EXPECT_TRUE((*strategy)->SelectBatch(ctx, 3).empty()) << name;
    EXPECT_EQ((*strategy)->SelectNext(ctx), kInvalidItem) << name;
  }
}

TEST(EdgeCaseTest, SingleSourceDatabase) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("solo", "a", "1").ok());
  ASSERT_TRUE(builder.AddObservation("solo", "b", "2").ok());
  const Database db = builder.Build();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  // No conflicts: everything certain, entropy zero.
  EXPECT_DOUBLE_EQ(r.TotalEntropy(), 0.0);
  EXPECT_DOUBLE_EQ(r.prob(0, 0), 1.0);
}

TEST(EdgeCaseTest, AllSourcesAgreeEverywhere) {
  DatabaseBuilder builder;
  for (int s = 0; s < 5; ++s) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(builder.AddObservation("s" + std::to_string(s),
                                         "o" + std::to_string(i),
                                         "v" + std::to_string(i)).ok());
    }
  }
  const Database db = builder.Build();
  EXPECT_TRUE(db.ConflictingItems().empty());
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  EXPECT_TRUE(r.converged());
  for (SourceId j = 0; j < db.num_sources(); ++j) {
    EXPECT_NEAR(r.accuracy(j), kMaxAccuracy, 1e-9);
  }
}

TEST(EdgeCaseTest, TotallyAdversarialMajority) {
  // Four sources vote the same wrong value, one votes the truth: fusion is
  // confidently wrong; validating the item flips it regardless.
  DatabaseBuilder builder;
  for (int s = 0; s < 4; ++s) {
    ASSERT_TRUE(builder.AddObservation("liar" + std::to_string(s), "x",
                                       "wrong").ok());
  }
  ASSERT_TRUE(builder.AddObservation("honest", "x", "right").ok());
  const Database db = builder.Build();
  GroundTruth truth(db);
  ASSERT_TRUE(truth.SetByValue(db, "x", "right").ok());
  AccuFusion model;
  const FusionResult before = model.Fuse(db, FusionOptions{});
  EXPECT_EQ(before.WinningClaim(0), *db.FindClaim(0, "wrong"));
  PriorSet priors;
  ASSERT_TRUE(priors.SetExact(db, 0, *db.FindClaim(0, "right")).ok());
  const FusionResult after = model.Fuse(db, priors, FusionOptions{});
  EXPECT_DOUBLE_EQ(after.prob(0, *db.FindClaim(0, "right")), 1.0);
  EXPECT_DOUBLE_EQ(DistanceToGroundTruth(db, after, truth), 0.0);
}

TEST(EdgeCaseTest, ManyClaimsPerItem) {
  // 26 distinct claims on one item: |V_i| - 1 = 25 false values.
  DatabaseBuilder builder;
  for (char c = 'a'; c <= 'z'; ++c) {
    ASSERT_TRUE(builder.AddObservation(std::string("s") + c, "x",
                                       std::string(1, c)).ok());
  }
  const Database db = builder.Build();
  AccuFusion model;
  const FusionResult r = model.Fuse(db, FusionOptions{});
  double sum = 0.0;
  for (ClaimIndex k = 0; k < 26; ++k) sum += r.prob(0, k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_NEAR(r.ItemEntropy(0), MaxEntropy(26), 1e-6);  // Fully symmetric.
}

// ---------- Session edge cases ----------

TEST(EdgeCaseTest, SessionWithZeroBudget) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "b").ok());
  const Database db = builder.Build();
  GroundTruth truth(db);
  ASSERT_TRUE(truth.SetByValue(db, "x", "a").ok());
  AccuFusion model;
  auto strategy = MakeStrategy("qbc");
  ASSERT_TRUE(strategy.ok());
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = 0;
  FeedbackSession session(db, model, strategy->get(), &oracle, truth,
                          options, nullptr);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->steps.empty());
  EXPECT_GT(trace->initial_uncertainty, 0.0);
}

TEST(EdgeCaseTest, SessionOnConflictFreeDatabase) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "a").ok());
  const Database db = builder.Build();
  GroundTruth truth(db);
  ASSERT_TRUE(truth.SetByValue(db, "x", "a").ok());
  AccuFusion model;
  auto strategy = MakeStrategy("us");
  ASSERT_TRUE(strategy.ok());
  PerfectOracle oracle;
  SessionOptions options;
  FeedbackSession session(db, model, strategy->get(), &oracle, truth,
                          options, nullptr);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->steps.empty());  // Nothing to validate.
}

TEST(EdgeCaseTest, BudgetExceedingCandidatesStopsCleanly) {
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("s1", "x", "a").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "x", "b").ok());
  ASSERT_TRUE(builder.AddObservation("s1", "y", "c").ok());
  ASSERT_TRUE(builder.AddObservation("s2", "y", "d").ok());
  const Database db = builder.Build();
  GroundTruth truth(db);
  ASSERT_TRUE(truth.SetByValue(db, "x", "a").ok());
  ASSERT_TRUE(truth.SetByValue(db, "y", "c").ok());
  AccuFusion model;
  auto strategy = MakeStrategy("qbc");
  ASSERT_TRUE(strategy.ok());
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = 1000;  // Far more than the 2 candidates.
  FeedbackSession session(db, model, strategy->get(), &oracle, truth,
                          options, nullptr);
  const auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  EXPECT_EQ(trace->priors.size(), 2u);
}

// ---------- Hostile file inputs ----------

class HostileFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/veritas_hostile.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }
  std::string path_;
};

TEST_F(HostileFileTest, EmptyFileLoadsEmptyDatabase) {
  WriteFile("");
  const auto db = LoadObservations(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_items(), 0u);
}

TEST_F(HostileFileTest, OnlyCommentsAndBlankLines) {
  WriteFile("# nothing\n\n   \n# here\n");
  const auto db = LoadObservations(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_observations(), 0u);
}

TEST_F(HostileFileTest, ExtraFieldsRejected) {
  WriteFile("s,i,v,extra\n");
  EXPECT_EQ(LoadObservations(path_).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HostileFileTest, UnterminatedQuoteStillTerminates) {
  WriteFile("s,i,\"unterminated\n");
  const auto db = LoadObservations(path_);
  // Parser treats the rest of the line as the field; must not hang/crash.
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_observations(), 1u);
}

TEST_F(HostileFileTest, VeryLongValues) {
  const std::string huge(100000, 'x');
  WriteFile("s,i," + huge + "\n");
  const auto db = LoadObservations(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->item(0).claims[0].value.size(), huge.size());
}

TEST_F(HostileFileTest, CrlfLineEndings) {
  WriteFile("s1,i,a\r\ns2,i,b\r\n");
  const auto db = LoadObservations(path_);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_claims(0), 2u);
  EXPECT_TRUE(db->FindClaim(0, "b").ok());  // No trailing \r in the value.
}

TEST_F(HostileFileTest, CanonicalizeOnHostileNumerics) {
  WriteFile("s1,x,1e308\ns2,x,-1e308\ns3,x,nonsense\n");
  const auto db = LoadObservations(path_);
  ASSERT_TRUE(db.ok());
  const auto report = CanonicalizeValues(*db);
  ASSERT_TRUE(report.ok());
  // Extremes do not merge; the literal survives.
  EXPECT_EQ(report->db.num_claims(0), 3u);
}

}  // namespace
}  // namespace veritas
