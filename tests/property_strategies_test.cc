// Property-based sweeps over the feedback strategies: contracts that every
// strategy must honor on every dataset shape and seed, plus the key
// analytical invariants of the decision-theoretic framework.
#include <gtest/gtest.h>

#include "core/approx_meu.h"
#include "core/meu.h"
#include "core/strategy_factory.h"
#include "data/synthetic.h"
#include "fusion/accu.h"
#include "util/math.h"

namespace veritas {
namespace {

struct StrategyPropertyCase {
  std::string strategy;
  bool dense;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os,
                                  const StrategyPropertyCase& c) {
    std::string name = c.strategy;
    for (char& ch : name) {
      if (ch == ':') ch = '_';
    }
    return os << name << (c.dense ? "_dense_" : "_longtail_") << c.seed;
  }
};

SyntheticDataset Generate(bool dense, std::uint64_t seed) {
  if (dense) {
    DenseConfig config;
    config.num_items = 90;
    config.num_sources = 12;
    config.density = 0.4;
    config.seed = seed;
    return GenerateDense(config);
  }
  LongTailConfig config;
  config.num_items = 90;
  config.num_sources = 60;
  config.avg_votes_per_item = 8.0;
  config.seed = seed;
  return GenerateLongTail(config);
}

class StrategyContractTest
    : public ::testing::TestWithParam<StrategyPropertyCase> {};

TEST_P(StrategyContractTest, BatchIsDistinctUnvalidatedConflicting) {
  const auto& param = GetParam();
  const SyntheticDataset data = Generate(param.dense, param.seed);
  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  // Pre-validate a third of the conflicting items.
  const auto conflicting = data.db.ConflictingItems();
  for (std::size_t i = 0; i < conflicting.size(); i += 3) {
    ASSERT_TRUE(
        priors.SetExact(data.db, conflicting[i],
                        data.truth.TrueClaim(conflicting[i])).ok());
  }
  const FusionResult fusion = model.Fuse(data.db, priors, opts);
  const ItemGraph graph(data.db);
  const GroundTruth& truth = data.truth;
  Rng rng(param.seed);

  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;
  ctx.ground_truth = &truth;
  ctx.graph = &graph;
  ctx.rng = &rng;

  auto strategy = MakeStrategy(param.strategy);
  ASSERT_TRUE(strategy.ok());
  const auto batch = (*strategy)->SelectBatch(ctx, 8);
  EXPECT_FALSE(batch.empty());
  std::set<ItemId> seen;
  for (ItemId i : batch) {
    EXPECT_LT(i, data.db.num_items());
    EXPECT_FALSE(priors.Has(i)) << "picked validated item " << i;
    EXPECT_TRUE(data.db.HasConflict(i)) << "picked singleton " << i;
    EXPECT_TRUE(seen.insert(i).second) << "duplicate " << i;
  }
}

TEST_P(StrategyContractTest, SelectionIsDeterministicGivenSeed) {
  const auto& param = GetParam();
  const SyntheticDataset data = Generate(param.dense, param.seed);
  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(data.db, priors, opts);
  const ItemGraph graph(data.db);

  auto run_once = [&]() {
    Rng rng(42);
    StrategyContext ctx;
    ctx.db = &data.db;
    ctx.fusion = &fusion;
    ctx.priors = &priors;
    ctx.model = &model;
    ctx.fusion_opts = &opts;
    ctx.ground_truth = &data.truth;
    ctx.graph = &graph;
    ctx.rng = &rng;
    auto strategy = MakeStrategy(param.strategy);
    EXPECT_TRUE(strategy.ok());
    return (*strategy)->SelectBatch(ctx, 5);
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StrategyContractTest,
    ::testing::Values(
        StrategyPropertyCase{"random", true, 1},
        StrategyPropertyCase{"random", false, 2},
        StrategyPropertyCase{"qbc", true, 3},
        StrategyPropertyCase{"qbc", false, 4},
        StrategyPropertyCase{"us", true, 5},
        StrategyPropertyCase{"us", false, 6},
        StrategyPropertyCase{"meu", true, 7},
        StrategyPropertyCase{"approx_meu", true, 8},
        StrategyPropertyCase{"approx_meu", false, 9},
        StrategyPropertyCase{"approx_meu_k:20", true, 10},
        StrategyPropertyCase{"gub", true, 11},
        StrategyPropertyCase{"gub", false, 12}));

// Analytical invariant of the differential estimate: the first-order
// updates preserve total probability mass per item (before clamping), on
// every dataset and for every hypothesized validation.
class DifferentialInvariantTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DifferentialInvariantTest, FastEqualsLiteralEverywhere) {
  const SyntheticDataset data = Generate(/*dense=*/true, GetParam());
  AccuFusion model;
  const FusionResult fusion = model.Fuse(data.db, FusionOptions{});
  const auto conflicting = data.db.ConflictingItems();
  // Spot-check a handful of validations on a handful of neighbours.
  for (std::size_t c = 0; c < conflicting.size(); c += 7) {
    const ItemId validated = conflicting[c];
    for (ClaimIndex t = 0; t < data.db.num_claims(validated); ++t) {
      const AccuracyDeltas deltas =
          ComputeAccuracyDeltas(data.db, fusion, validated, t);
      for (std::size_t j = 0; j < data.db.num_items(); j += 11) {
        if (j == validated) continue;
        const auto fast =
            EstimateUpdatedProbs(data.db, fusion, static_cast<ItemId>(j),
                                 deltas);
        const auto literal = EstimateUpdatedProbsLiteral(
            data.db, fusion, static_cast<ItemId>(j), deltas);
        for (std::size_t k = 0; k < fast.size(); ++k) {
          ASSERT_NEAR(fast[k], literal[k], 1e-5)
              << "validated=" << validated << " j=" << j;
        }
      }
    }
  }
}

TEST_P(DifferentialInvariantTest, MeuAndApproxAgreeOnObviousWinner) {
  // Construct a dataset with one overwhelmingly important disputed item:
  // both the exact and the approximate frameworks should rank an item
  // touching many sources above an isolated one. We verify the weaker,
  // robust property that Approx-MEU's top pick is within MEU's top half.
  DenseConfig config;
  config.num_items = 40;
  config.num_sources = 8;
  config.density = 0.5;
  config.seed = GetParam();
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(data.db, priors, opts);
  const ItemGraph graph(data.db);
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;
  ctx.graph = &graph;

  MeuStrategy meu;
  ApproxMeuStrategy approx;
  const auto meu_ranking =
      meu.SelectBatch(ctx, data.db.ConflictingItems().size());
  const ItemId approx_pick = approx.SelectNext(ctx);
  const auto pos = std::find(meu_ranking.begin(), meu_ranking.end(),
                             approx_pick) -
                   meu_ranking.begin();
  EXPECT_LT(static_cast<std::size_t>(pos),
            (meu_ranking.size() + 1) / 2 + 1)
      << "Approx-MEU pick ranked " << pos << " of " << meu_ranking.size()
      << " by exact MEU";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialInvariantTest,
                         ::testing::Values(41, 42, 43, 44));

}  // namespace
}  // namespace veritas
