// Tests of the persistent work-stealing ThreadPool (DESIGN.md §5f). Lives
// in the concurrency binary so CI reruns it under ThreadSanitizer.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

namespace veritas {
namespace {

TEST(ThreadPoolTest, EveryIndexRunsExactlyOnce) {
  for (const std::size_t lanes : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(lanes);
    for (const std::size_t n : {0u, 1u, 7u, 33u, 1000u}) {
      std::vector<std::atomic<int>> hits(n);
      for (auto& h : hits) h.store(0, std::memory_order_relaxed);
      pool.ParallelFor(n, 8,
                       [&](std::size_t, std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           hits[i].fetch_add(1, std::memory_order_relaxed);
                         }
                       });
      for (std::size_t i = 0; i < n; ++i) {
        EXPECT_EQ(hits[i].load(), 1)
            << "lanes=" << lanes << " n=" << n << " index " << i;
      }
    }
  }
}

TEST(ThreadPoolTest, LaneIndexStaysBelowLaneCount) {
  ThreadPool pool(4);
  std::atomic<bool> ok{true};
  pool.ParallelFor(256, 2, [&](std::size_t lane, std::size_t, std::size_t) {
    if (lane >= pool.lanes()) ok.store(false, std::memory_order_relaxed);
  });
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(pool.lanes(), 4u);
}

TEST(ThreadPoolTest, ZeroLanesNormalizedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.lanes(), 1u);
  std::size_t sum = 0;
  pool.ParallelFor(10, 4, [&](std::size_t lane, std::size_t begin,
                              std::size_t end) {
    EXPECT_EQ(lane, 0u);
    sum += end - begin;  // Serial path: no synchronization needed.
  });
  EXPECT_EQ(sum, 10u);
}

TEST(ThreadPoolTest, SingleChunkRunsInlineWithZeroSteals) {
  ThreadPool pool(4);
  std::size_t calls = 0;
  // n <= chunk_size collapses to one chunk, which runs inline on the
  // caller: one body call covering the full range, nothing to steal.
  const std::uint64_t stolen =
      pool.ParallelFor(5, 8, [&](std::size_t lane, std::size_t begin,
                                 std::size_t end) {
        EXPECT_EQ(lane, 0u);
        EXPECT_EQ(begin, 0u);
        EXPECT_EQ(end, 5u);
        ++calls;
      });
  EXPECT_EQ(calls, 1u);
  EXPECT_EQ(stolen, 0u);
}

TEST(ThreadPoolTest, DisjointWritesAreVisibleAfterReturn) {
  ThreadPool pool(4);
  const std::size_t n = 777;
  std::vector<double> out(n, 0.0);
  pool.ParallelFor(n, 8, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = static_cast<double>(i) * 2.0;
    }
  });
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], static_cast<double>(i) * 2.0) << "index " << i;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRounds) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const std::size_t n = 64 + static_cast<std::size_t>(round);
    std::atomic<std::size_t> covered{0};
    pool.ParallelFor(n, 4,
                     [&](std::size_t, std::size_t begin, std::size_t end) {
                       covered.fetch_add(end - begin,
                                         std::memory_order_relaxed);
                     });
    ASSERT_EQ(covered.load(), n) << "round " << round;
  }
}

TEST(ThreadPoolTest, IdleLanesStealFromABlockedOwner) {
  ThreadPool pool(4);
  // Lane 0 (the caller) owns chunk ordinals {0, 4}; stalling it inside its
  // first chunk forces a worker to take ordinal 4 off its deque's back.
  std::atomic<std::uint64_t> stolen_total{0};
  const std::uint64_t stolen =
      pool.ParallelFor(8, 1, [&](std::size_t lane, std::size_t begin,
                                 std::size_t) {
        if (lane == 0 && begin == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
      });
  stolen_total.fetch_add(stolen);
  EXPECT_GT(stolen_total.load(), 0u);
  EXPECT_GE(pool.steals(), stolen_total.load());
}

}  // namespace
}  // namespace veritas
