// Tests of the CSV export of traces, curves and fusion outputs.
#include "exp/export.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "core/qbc.h"
#include "data/example_data.h"
#include "fusion/accu.h"
#include "util/csv.h"

namespace veritas {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/veritas_export.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  SessionTrace MakeTrace() {
    QbcStrategy strategy;
    PerfectOracle oracle;
    SessionOptions options;
    Rng rng(1);
    FeedbackSession session(db_, model_, &strategy, &oracle, truth_,
                            options, &rng);
    auto trace = session.Run();
    EXPECT_TRUE(trace.ok());
    return std::move(trace).value();
  }

  Database db_ = MakeMovieDatabase();
  GroundTruth truth_ = MakeMovieGroundTruth(db_);
  AccuFusion model_;
  std::string path_;
};

TEST_F(ExportTest, TraceCsvRoundTrips) {
  const SessionTrace trace = MakeTrace();
  ASSERT_TRUE(WriteTraceCsv(trace, db_, path_).ok());
  const auto rows = ReadCsvFile(path_);
  ASSERT_TRUE(rows.ok());
  // Header + baseline row + one row per step.
  ASSERT_EQ(rows->size(), 2 + trace.steps.size());
  EXPECT_EQ((*rows)[0][0], "step");
  // Baseline row carries the initial metrics.
  EXPECT_EQ((*rows)[1][1], "0");
  EXPECT_NEAR(std::stod((*rows)[1][3]), trace.initial_distance, 1e-6);
  // Final row reaches -100% distance reduction (perfect oracle, full run).
  EXPECT_NEAR(std::stod(rows->back()[7]), -100.0, 1e-3);
  // Item names are resolvable.
  EXPECT_FALSE(rows->back()[2].empty());
}

TEST_F(ExportTest, TraceCsvBatchItemsJoined) {
  QbcStrategy strategy;
  PerfectOracle oracle;
  SessionOptions options;
  options.batch_size = 2;
  Rng rng(1);
  FeedbackSession session(db_, model_, &strategy, &oracle, truth_, options,
                          &rng);
  auto trace = session.Run();
  ASSERT_TRUE(trace.ok());
  ASSERT_TRUE(WriteTraceCsv(*trace, db_, path_).ok());
  const auto rows = ReadCsvFile(path_);
  ASSERT_TRUE(rows.ok());
  // The first step validated two items joined with '|'.
  EXPECT_NE((*rows)[2][2].find('|'), std::string::npos);
}

TEST_F(ExportTest, CurvesCsvLongFormat) {
  CurveResult a;
  a.strategy = "qbc";
  a.mean_select_seconds = 0.001;
  a.points = {{0.05, 3, -10.0, -12.0}, {0.10, 6, -20.0, -25.0}};
  CurveResult b;
  b.strategy = "us";
  b.points = {{0.05, 3, -8.0, -9.0}};
  ASSERT_TRUE(WriteCurvesCsv({a, b}, path_).ok());
  const auto rows = ReadCsvFile(path_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);  // Header + 2 + 1.
  EXPECT_EQ((*rows)[1][0], "qbc");
  EXPECT_EQ((*rows)[3][0], "us");
  EXPECT_NEAR(std::stod((*rows)[2][3]), -20.0, 1e-9);
}

TEST_F(ExportTest, FusionCsvMarksWinners) {
  const FusionResult fused = model_.Fuse(db_, FusionOptions{});
  ASSERT_TRUE(WriteFusionCsv(db_, fused, path_).ok());
  const auto rows = ReadCsvFile(path_);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1 + db_.num_claims());
  // Exactly one winner per item.
  std::map<std::string, int> winners;
  for (std::size_t r = 1; r < rows->size(); ++r) {
    if ((*rows)[r][3] == "1") ++winners[(*rows)[r][0]];
  }
  EXPECT_EQ(winners.size(), db_.num_items());
  for (const auto& [item, count] : winners) EXPECT_EQ(count, 1) << item;
}

TEST_F(ExportTest, BadPathFails) {
  const SessionTrace trace = MakeTrace();
  EXPECT_EQ(WriteTraceCsv(trace, db_, "/no/such/dir/x.csv").code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace veritas
