// Unit tests of the FusionResult container (<P, A> of Definition 2).
#include "fusion/fusion_result.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "util/math.h"

namespace veritas {
namespace {

TEST(FusionResultTest, ConstructorShapesFromDatabase) {
  const Database db = MakeMovieDatabase();
  FusionResult r(db, 0.8);
  EXPECT_EQ(r.num_items(), db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    EXPECT_EQ(r.item_probs(i).size(), db.num_claims(i));
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      EXPECT_DOUBLE_EQ(r.prob(i, k), 0.0);
    }
  }
  ASSERT_EQ(r.accuracies().size(), db.num_sources());
  for (double a : r.accuracies()) EXPECT_DOUBLE_EQ(a, 0.8);
}

TEST(FusionResultTest, DefaultConstructedIsEmpty) {
  FusionResult r;
  EXPECT_EQ(r.num_items(), 0u);
  EXPECT_DOUBLE_EQ(r.TotalEntropy(), 0.0);
  EXPECT_EQ(r.iterations(), 0u);
  EXPECT_FALSE(r.converged());
}

TEST(FusionResultTest, WinningClaimFirstMaxWins) {
  const Database db = MakeMovieDatabase();
  FusionResult r(db, 0.8);
  const ItemId zootopia = *db.FindItem("Zootopia");
  *r.mutable_item_probs(zootopia) = {0.5, 0.5};  // Tie: first wins.
  EXPECT_EQ(r.WinningClaim(zootopia), 0u);
  *r.mutable_item_probs(zootopia) = {0.3, 0.7};
  EXPECT_EQ(r.WinningClaim(zootopia), 1u);
}

TEST(FusionResultTest, ItemEntropyMatchesFormula) {
  const Database db = MakeMovieDatabase();
  FusionResult r(db, 0.8);
  const ItemId minions = *db.FindItem("Minions");
  *r.mutable_item_probs(minions) = {0.921, 0.079};
  EXPECT_NEAR(r.ItemEntropy(minions), Entropy({0.921, 0.079}), 1e-12);
  EXPECT_NEAR(r.ItemEntropy(minions), 0.276, 5e-4);  // Example 4.2.
}

TEST(FusionResultTest, TotalEntropySumsItems) {
  const Database db = MakeMovieDatabase();
  FusionResult r(db, 0.8);
  double expected = 0.0;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    std::vector<double> probs(db.num_claims(i),
                              1.0 / static_cast<double>(db.num_claims(i)));
    *r.mutable_item_probs(i) = probs;
    expected += Entropy(probs);
  }
  EXPECT_NEAR(r.TotalEntropy(), expected, 1e-12);
}

TEST(FusionResultTest, IterationAndConvergenceFlags) {
  FusionResult r;
  r.set_iterations(13);
  r.set_converged(true);
  EXPECT_EQ(r.iterations(), 13u);
  EXPECT_TRUE(r.converged());
}

TEST(FusionResultTest, MutableAccuracies) {
  const Database db = MakeMovieDatabase();
  FusionResult r(db, 0.8);
  (*r.mutable_accuracies())[0] = 0.33;
  EXPECT_DOUBLE_EQ(r.accuracy(0), 0.33);
}

TEST(FusionResultTest, CopySemantics) {
  const Database db = MakeMovieDatabase();
  FusionResult a(db, 0.8);
  *a.mutable_item_probs(0) = {0.25, 0.75};
  FusionResult b = a;
  *b.mutable_item_probs(0) = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(a.prob(0, 1), 0.75);  // Deep copy.
  EXPECT_DOUBLE_EQ(b.prob(0, 1), 0.0);
}

}  // namespace
}  // namespace veritas
