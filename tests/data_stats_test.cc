// Tests of dataset statistics (Table 10 / Figure 8 support).
#include "data/dataset_stats.h"

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "model/database_builder.h"

namespace veritas {
namespace {

TEST(DatasetStatsTest, MovieExample) {
  const Database db = MakeMovieDatabase();
  const DatasetStats stats = ComputeStats(db);
  EXPECT_EQ(stats.items, 6u);
  EXPECT_EQ(stats.sources, 4u);
  EXPECT_EQ(stats.observations, 12u);
  EXPECT_EQ(stats.distinct_claims, 11u);
  EXPECT_EQ(stats.conflicting_items, 5u);
  EXPECT_NEAR(stats.density, 12.0 / (6.0 * 4.0), 1e-12);
  EXPECT_NEAR(stats.avg_claims_per_item, 11.0 / 6.0, 1e-12);
  EXPECT_NEAR(stats.avg_votes_per_item, 2.0, 1e-12);
}

TEST(DatasetStatsTest, EmptyDatabase) {
  DatabaseBuilder builder;
  const DatasetStats stats = ComputeStats(builder.Build());
  EXPECT_EQ(stats.items, 0u);
  EXPECT_DOUBLE_EQ(stats.density, 0.0);
  EXPECT_DOUBLE_EQ(stats.avg_claims_per_item, 0.0);
}

TEST(SourceCoveragesTest, MovieExample) {
  const Database db = MakeMovieDatabase();
  const auto coverages = SourceCoverages(db);
  ASSERT_EQ(coverages.size(), 4u);
  // S3 votes on 4 of 6 items.
  EXPECT_NEAR(coverages[*db.FindSource("S3")], 4.0 / 6.0, 1e-12);
  EXPECT_NEAR(coverages[*db.FindSource("S4")], 2.0 / 6.0, 1e-12);
}

TEST(CoverageBelowTest, Thresholds) {
  const Database db = MakeMovieDatabase();
  // Coverages: S1 = S2 = 0.5, S3 = 0.667, S4 = 0.333.
  EXPECT_DOUBLE_EQ(CoverageBelow(db, 0.34), 0.25);   // Only S4.
  EXPECT_DOUBLE_EQ(CoverageBelow(db, 0.51), 0.75);   // S1, S2, S4.
  EXPECT_DOUBLE_EQ(CoverageBelow(db, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(CoverageBelow(db, 0.0), 0.0);
}

TEST(CoverageBelowTest, EmptyDatabase) {
  DatabaseBuilder builder;
  EXPECT_DOUBLE_EQ(CoverageBelow(builder.Build(), 0.5), 0.0);
}

}  // namespace
}  // namespace veritas
