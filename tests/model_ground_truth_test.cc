#include "model/ground_truth.h"

#include <gtest/gtest.h>

#include "data/example_data.h"

namespace veritas {
namespace {

class GroundTruthTest : public ::testing::Test {
 protected:
  Database db_ = MakeMovieDatabase();
};

TEST_F(GroundTruthTest, EmptyKnowsNothing) {
  GroundTruth truth(db_);
  EXPECT_EQ(truth.num_known(), 0u);
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    EXPECT_FALSE(truth.Knows(i));
    EXPECT_EQ(truth.TrueClaim(i), kInvalidClaim);
  }
}

TEST_F(GroundTruthTest, SetAndQuery) {
  GroundTruth truth(db_);
  const ItemId rio = *db_.FindItem("Rio");
  const ClaimIndex saldanha = *db_.FindClaim(rio, "Saldanha");
  ASSERT_TRUE(truth.Set(db_, rio, saldanha).ok());
  EXPECT_TRUE(truth.Knows(rio));
  EXPECT_EQ(truth.TrueClaim(rio), saldanha);
  EXPECT_TRUE(truth.IsTrue(rio, saldanha));
  EXPECT_FALSE(truth.IsTrue(rio, *db_.FindClaim(rio, "Jones")));
}

TEST_F(GroundTruthTest, SetByValue) {
  GroundTruth truth(db_);
  ASSERT_TRUE(truth.SetByValue(db_, "Minions", "Coffin").ok());
  const ItemId minions = *db_.FindItem("Minions");
  EXPECT_TRUE(truth.IsTrue(minions, *db_.FindClaim(minions, "Coffin")));
}

TEST_F(GroundTruthTest, SetByValueUnknownItem) {
  GroundTruth truth(db_);
  EXPECT_EQ(truth.SetByValue(db_, "Cars", "Lasseter").code(),
            StatusCode::kNotFound);
}

TEST_F(GroundTruthTest, SetByValueUnknownClaim) {
  GroundTruth truth(db_);
  EXPECT_EQ(truth.SetByValue(db_, "Rio", "Spielberg").code(),
            StatusCode::kNotFound);
}

TEST_F(GroundTruthTest, SetOutOfRange) {
  GroundTruth truth(db_);
  EXPECT_EQ(truth.Set(db_, 999, 0).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(truth.Set(db_, 0, 99).code(), StatusCode::kOutOfRange);
}

TEST_F(GroundTruthTest, IsTrueOnUnknownItemIsFalse) {
  GroundTruth truth(db_);
  EXPECT_FALSE(truth.IsTrue(0, 0));
  EXPECT_FALSE(truth.IsTrue(12345, 0));  // Out of range, not UB.
}

TEST_F(GroundTruthTest, KnownItems) {
  GroundTruth truth(db_);
  ASSERT_TRUE(truth.SetByValue(db_, "Rio", "Saldanha").ok());
  ASSERT_TRUE(truth.SetByValue(db_, "Zootopia", "Howard").ok());
  const auto known = truth.KnownItems();
  ASSERT_EQ(known.size(), 2u);
  EXPECT_EQ(known[0], *db_.FindItem("Zootopia"));
  EXPECT_EQ(known[1], *db_.FindItem("Rio"));
}

TEST_F(GroundTruthTest, OverwriteTruth) {
  GroundTruth truth(db_);
  ASSERT_TRUE(truth.SetByValue(db_, "Rio", "Jones").ok());
  ASSERT_TRUE(truth.SetByValue(db_, "Rio", "Saldanha").ok());
  const ItemId rio = *db_.FindItem("Rio");
  EXPECT_TRUE(truth.IsTrue(rio, *db_.FindClaim(rio, "Saldanha")));
  EXPECT_EQ(truth.num_known(), 1u);
}

TEST_F(GroundTruthTest, MovieTruthMatchesStars) {
  // The starred claims of Table 1.
  const GroundTruth truth = MakeMovieGroundTruth(db_);
  EXPECT_EQ(truth.num_known(), 6u);
  struct Expect {
    const char* item;
    const char* value;
  };
  const Expect expected[] = {
      {"Zootopia", "Howard"},   {"Kung Fu Panda", "Stevenson"},
      {"Inside Out", "Docter"}, {"Finding Dory", "Stanton"},
      {"Minions", "Coffin"},    {"Rio", "Saldanha"},
  };
  for (const Expect& e : expected) {
    const ItemId item = *db_.FindItem(e.item);
    EXPECT_EQ(truth.TrueClaim(item), *db_.FindClaim(item, e.value))
        << e.item;
  }
}

TEST_F(GroundTruthTest, DefaultConstructedIsEmpty) {
  GroundTruth truth;
  EXPECT_EQ(truth.num_known(), 0u);
  EXPECT_FALSE(truth.Knows(0));
}

}  // namespace
}  // namespace veritas
