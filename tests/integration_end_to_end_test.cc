// End-to-end integration: full feedback sessions on synthetic datasets,
// across strategies, fusion models and oracles — the pipelines the §5
// evaluation is made of.
#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "data/synthetic.h"
#include "exp/harness.h"
#include "fusion/fusion_factory.h"

namespace veritas {
namespace {

SyntheticDataset SmallDense(std::uint64_t seed) {
  DenseConfig config;
  config.num_items = 120;
  config.num_sources = 15;
  config.density = 0.4;
  config.seed = seed;
  return GenerateDense(config);
}

SyntheticDataset SmallLongTail(std::uint64_t seed) {
  LongTailConfig config;
  config.num_items = 150;
  config.num_sources = 100;
  config.avg_votes_per_item = 10.0;
  config.seed = seed;
  return GenerateLongTail(config);
}

// Every strategy, run for 20% of conflicting items with perfect feedback,
// must improve (or at least not worsen) the distance to ground truth.
class StrategyEndToEndTest : public ::testing::TestWithParam<std::string> {};

TEST_P(StrategyEndToEndTest, ImprovesFusionOnDenseData) {
  const SyntheticDataset data = SmallDense(101);
  auto model = MakeFusionModel("accu");
  ASSERT_TRUE(model.ok());
  CurveOptions options;
  options.report_fractions = {0.2};
  options.seed = 5;
  const auto curve =
      RunCurvePerfect(data.db, data.truth, **model, GetParam(), options);
  ASSERT_TRUE(curve.ok()) << curve.status();
  EXPECT_LT(curve->trace.steps.back().distance,
            curve->trace.initial_distance)
      << GetParam();
}

TEST_P(StrategyEndToEndTest, ImprovesFusionOnLongTailData) {
  const SyntheticDataset data = SmallLongTail(202);
  auto model = MakeFusionModel("accu");
  ASSERT_TRUE(model.ok());
  CurveOptions options;
  options.report_fractions = {0.2};
  options.seed = 6;
  const auto curve =
      RunCurvePerfect(data.db, data.truth, **model, GetParam(), options);
  ASSERT_TRUE(curve.ok()) << curve.status();
  EXPECT_LE(curve->trace.steps.back().distance,
            curve->trace.initial_distance)
      << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategyEndToEndTest,
                         ::testing::Values("random", "qbc", "us", "meu",
                                           "approx_meu", "approx_meu_k:25",
                                           "gub"));

// The feedback framework treats fusion as a black box (§3): sessions must
// run against every fusion model.
class FusionAgnosticTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FusionAgnosticTest, QbcSessionRunsOnEveryFusionModel) {
  const SyntheticDataset data = SmallDense(303);
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok());
  CurveOptions options;
  options.report_fractions = {0.3};
  const auto curve =
      RunCurvePerfect(data.db, data.truth, **model, "qbc", options);
  ASSERT_TRUE(curve.ok()) << GetParam();
  EXPECT_LT(curve->trace.steps.back().distance,
            curve->trace.initial_distance + 1e-9)
      << GetParam();
}

TEST_P(FusionAgnosticTest, ApproxMeuSessionRunsOnEveryFusionModel) {
  // Approx-MEU's propagation formulae are Accu-specific (§6), but the
  // strategy still runs (as a heuristic) on any model's output.
  const SyntheticDataset data = SmallDense(304);
  auto model = MakeFusionModel(GetParam());
  ASSERT_TRUE(model.ok());
  CurveOptions options;
  options.report_fractions = {0.2};
  const auto curve =
      RunCurvePerfect(data.db, data.truth, **model, "approx_meu", options);
  ASSERT_TRUE(curve.ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFusionModels, FusionAgnosticTest,
                         ::testing::Values("accu", "voting", "truthfinder",
                                           "pooled_investment"));

TEST(EndToEndTest, GuidedBeatsRandomOnAverage) {
  // Figure 3's headline: guided selection converges faster than Random.
  // Compare area-under-curve of distance across several seeds.
  double random_total = 0.0;
  double guided_total = 0.0;
  auto model = MakeFusionModel("accu");
  ASSERT_TRUE(model.ok());
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    const SyntheticDataset data = SmallDense(seed);
    CurveOptions options;
    options.report_fractions = {0.05, 0.10, 0.15, 0.20};
    options.seed = seed;
    const auto random =
        RunCurvePerfect(data.db, data.truth, **model, "random", options);
    const auto guided =
        RunCurvePerfect(data.db, data.truth, **model, "approx_meu", options);
    ASSERT_TRUE(random.ok());
    ASSERT_TRUE(guided.ok());
    for (const SessionStep& s : random->trace.steps) {
      random_total += s.distance;
    }
    for (const SessionStep& s : guided->trace.steps) {
      guided_total += s.distance;
    }
  }
  EXPECT_LT(guided_total, random_total);
}

TEST(EndToEndTest, RetainedValidationsAccumulate) {
  // Distances at increasing budgets are produced by ONE session with
  // retained validations; the 20% budget result can never be worse than
  // the 5% result by more than noise introduced via re-fusion.
  const SyntheticDataset data = SmallDense(404);
  auto model = MakeFusionModel("accu");
  ASSERT_TRUE(model.ok());
  CurveOptions options;
  options.report_fractions = {0.05, 0.20};
  const auto curve =
      RunCurvePerfect(data.db, data.truth, **model, "qbc", options);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->points.size(), 2u);
  EXPECT_LE(curve->points[1].distance_reduction_pct,
            curve->points[0].distance_reduction_pct + 5.0);
}

TEST(EndToEndTest, BatchSessionsCoverSameItemsForQbc) {
  // §B.4: QBC's validated set after N actions is independent of batch size.
  const SyntheticDataset data = SmallDense(505);
  auto model = MakeFusionModel("accu");
  ASSERT_TRUE(model.ok());

  auto run = [&](std::size_t batch) {
    auto strategy = MakeStrategy("qbc");
    PerfectOracle oracle;
    SessionOptions options;
    options.batch_size = batch;
    options.max_validations = 20;
    Rng rng(1);
    FeedbackSession session(data.db, **model, strategy->get(), &oracle,
                            data.truth, options, &rng);
    auto trace = session.Run();
    EXPECT_TRUE(trace.ok());
    auto items = trace->priors.Items();
    std::sort(items.begin(), items.end());
    return items;
  };
  EXPECT_EQ(run(1), run(10));
}

TEST(EndToEndTest, NoisyFeedbackDegradesButRuns) {
  const SyntheticDataset data = SmallDense(606);
  auto model = MakeFusionModel("accu");
  ASSERT_TRUE(model.ok());
  CurveOptions options;
  options.report_fractions = {0.3};
  options.seed = 77;

  PerfectOracle perfect;
  IncorrectOracle noisy(0.5);
  const auto clean = RunCurve(data.db, data.truth, **model, "qbc", &perfect,
                              options);
  const auto dirty =
      RunCurve(data.db, data.truth, **model, "qbc", &noisy, options);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(dirty.ok());
  EXPECT_LE(clean->trace.steps.back().distance,
            dirty->trace.steps.back().distance + 1e-9);
}

TEST(EndToEndTest, MultiClaimItemsWorkThroughTheFullPipeline) {
  DenseConfig config;
  config.num_items = 80;
  config.num_sources = 15;
  config.density = 0.5;
  config.max_false_claims = 3;
  config.ensure_true_claim = true;
  config.seed = 707;
  const SyntheticDataset data = GenerateDense(config);
  auto model = MakeFusionModel("accu");
  ASSERT_TRUE(model.ok());
  CurveOptions options;
  options.report_fractions = {0.25};
  for (const char* name : {"qbc", "us", "approx_meu", "gub"}) {
    const auto curve =
        RunCurvePerfect(data.db, data.truth, **model, name, options);
    ASSERT_TRUE(curve.ok()) << name;
    EXPECT_LE(curve->trace.steps.back().distance,
              curve->trace.initial_distance + 1e-9)
        << name;
  }
}

}  // namespace
}  // namespace veritas
