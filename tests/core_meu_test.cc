// Tests of the exact decision-theoretic strategy MEU (§4.2.2).
#include "core/meu.h"

#include <gtest/gtest.h>

#include "data/example_data.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

class MeuTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fusion_ = model_.Fuse(db_, opts_);
    ctx_.db = &db_;
    ctx_.fusion = &fusion_;
    ctx_.priors = &priors_;
    ctx_.model = &model_;
    ctx_.fusion_opts = &opts_;
    ctx_.include_singletons = true;
    ctx_.warm_start_lookahead = false;  // The worked example cold-starts.
  }

  Database db_ = MakeMovieDatabase();
  AccuFusion model_;
  FusionOptions opts_ = PaperExampleFusionOptions();
  FusionResult fusion_;
  PriorSet priors_;
  StrategyContext ctx_;
};

TEST_F(MeuTest, SingletonValidationIsExactlyNeutral) {
  // Table 6's key invariant: validating O4 (already certain, p = 1) cannot
  // change anything — its expected entropy equals the current entropy, so
  // the utility gain is exactly 0.
  const ItemId dory = *db_.FindItem("Finding Dory");
  const double expected =
      MeuStrategy::ExpectedEntropyAfterValidation(ctx_, dory);
  EXPECT_NEAR(expected, fusion_.TotalEntropy(), 1e-9);
}

TEST_F(MeuTest, ExpectedEntropyWeightsByClaimProbability) {
  // For Inside Out (p = {0.999, 0.001}) the expectation is dominated by the
  // Docter branch: it must be close to the Docter-pinned entropy.
  const ItemId o3 = *db_.FindItem("Inside Out");
  PriorSet docter_pinned;
  ASSERT_TRUE(
      docter_pinned.SetExact(db_, o3, *db_.FindClaim(o3, "Docter")).ok());
  const double docter_entropy =
      model_.Fuse(db_, docter_pinned, opts_).TotalEntropy();
  const double expected =
      MeuStrategy::ExpectedEntropyAfterValidation(ctx_, o3);
  // Docter branch has weight ~0.999.
  EXPECT_NEAR(expected, docter_entropy, 0.05);
}

TEST_F(MeuTest, SelectsItemWithMaximumGain) {
  MeuStrategy meu;
  const double current = fusion_.TotalEntropy();
  const ItemId pick = meu.SelectNext(ctx_);
  const double pick_gain =
      current - MeuStrategy::ExpectedEntropyAfterValidation(ctx_, pick);
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    const double gain =
        current - MeuStrategy::ExpectedEntropyAfterValidation(ctx_, i);
    EXPECT_LE(gain, pick_gain + 1e-9) << "item " << i;
  }
}

TEST_F(MeuTest, SkipsValidatedItems) {
  MeuStrategy meu;
  const ItemId first = meu.SelectNext(ctx_);
  ASSERT_TRUE(priors_.SetExact(db_, first, 0).ok());
  FusionResult updated = model_.Fuse(db_, priors_, opts_);
  ctx_.fusion = &updated;
  EXPECT_NE(meu.SelectNext(ctx_), first);
}

TEST_F(MeuTest, BatchIsOrderedByGain) {
  MeuStrategy meu;
  const auto batch = meu.SelectBatch(ctx_, 4);
  ASSERT_EQ(batch.size(), 4u);
  const double current = fusion_.TotalEntropy();
  double prev_gain = 1e300;
  for (ItemId i : batch) {
    const double gain =
        current - MeuStrategy::ExpectedEntropyAfterValidation(ctx_, i);
    EXPECT_LE(gain, prev_gain + 1e-9);
    prev_gain = gain;
  }
}

TEST_F(MeuTest, ExcludesSingletonsWhenConfigured) {
  ctx_.include_singletons = false;
  MeuStrategy meu;
  const auto batch = meu.SelectBatch(ctx_, 6);
  EXPECT_EQ(batch.size(), 5u);
  for (ItemId i : batch) EXPECT_TRUE(db_.HasConflict(i));
}

TEST_F(MeuTest, WarmAndColdLookaheadAgreeAtConvergence) {
  // At full convergence the warm start is purely a speed optimization.
  FusionOptions converged;
  converged.max_iterations = 500;
  FusionResult base = model_.Fuse(db_, converged);
  ctx_.fusion = &base;
  ctx_.fusion_opts = &converged;

  ctx_.warm_start_lookahead = false;
  const double cold =
      MeuStrategy::ExpectedEntropyAfterValidation(ctx_, 0);
  ctx_.warm_start_lookahead = true;
  const double warm =
      MeuStrategy::ExpectedEntropyAfterValidation(ctx_, 0);
  EXPECT_NEAR(cold, warm, 1e-3);
}

TEST_F(MeuTest, Name) { EXPECT_EQ(MeuStrategy().name(), "meu"); }

TEST_F(MeuTest, ParallelScoringMatchesSequential) {
  MeuStrategy sequential(1);
  MeuStrategy parallel(4);
  EXPECT_EQ(parallel.num_threads(), 4u);
  const auto a = sequential.SelectBatch(ctx_, 6);
  const auto b = parallel.SelectBatch(ctx_, 6);
  EXPECT_EQ(a, b);
}

TEST_F(MeuTest, ZeroThreadsNormalizedToOne) {
  MeuStrategy strategy(0);
  EXPECT_EQ(strategy.num_threads(), 1u);
  EXPECT_NE(strategy.SelectNext(ctx_), kInvalidItem);
}

TEST(MeuParallelTest, LargerDatasetParallelEquivalence) {
  DenseConfig config;
  config.num_items = 80;
  config.num_sources = 10;
  config.density = 0.5;
  config.seed = 47;
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(data.db, priors, opts);
  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;

  MeuStrategy sequential(1);
  MeuStrategy parallel(8);
  EXPECT_EQ(sequential.SelectBatch(ctx, 10), parallel.SelectBatch(ctx, 10));
}

}  // namespace
}  // namespace veritas
