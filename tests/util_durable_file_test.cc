// Tests of the crash-safe write helper and the CRC-32C checksum it backs.
#include "util/durable_file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

namespace veritas {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

TEST(Crc32cTest, MatchesTheReferenceCheckVector) {
  // The canonical CRC-32C check value ("123456789" -> 0xE3069283), shared by
  // iSCSI, leveldb, and the SSE4.2 crc32 instruction.
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, EmptyInputIsZero) { EXPECT_EQ(Crc32c(""), 0u); }

TEST(Crc32cTest, SeedChainsPartialChecksums) {
  const std::string a = "stage the feedback, ";
  const std::string b = "resolve the conflicts";
  EXPECT_EQ(Crc32c(b, Crc32c(a)), Crc32c(a + b));
}

TEST(Crc32cTest, SingleBitFlipChangesTheChecksum) {
  std::string data = "veritas-checkpoint payload";
  const std::uint32_t clean = Crc32c(data);
  for (std::size_t byte = 0; byte < data.size(); ++byte) {
    data[byte] ^= 0x01;
    EXPECT_NE(Crc32c(data), clean) << "flip at byte " << byte;
    data[byte] ^= 0x01;
  }
}

TEST(AtomicWriteFileTest, WritesNewFile) {
  const std::string path = TempPath("durable_new.txt");
  std::remove(path.c_str());
  ASSERT_TRUE(AtomicWriteFile(path, "hello durable world\n").ok());
  EXPECT_EQ(Slurp(path), "hello durable world\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, ReplacesExistingFileCompletely) {
  const std::string path = TempPath("durable_replace.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "a much longer first version\n").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "short\n").ok());
  EXPECT_EQ(Slurp(path), "short\n");  // No tail of the old contents.
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, LeavesNoTempLitterOnSuccess) {
  namespace fs = std::filesystem;
  const std::string dir = TempPath("durable_clean_dir");
  fs::create_directory(dir);
  const std::string path = dir + "/artifact.json";
  ASSERT_TRUE(AtomicWriteFile(path, "{}\n").ok());
  std::size_t entries = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(entry.path().filename().string(), "artifact.json");
  }
  EXPECT_EQ(entries, 1u);
  fs::remove_all(dir);
}

TEST(AtomicWriteFileTest, FailsCleanlyWhenDirectoryDoesNotExist) {
  namespace fs = std::filesystem;
  const std::string dir = TempPath("durable_no_such_dir");
  fs::remove_all(dir);
  const Status status = AtomicWriteFile(dir + "/x.txt", "data");
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(fs::exists(dir));  // No resurrected directory, no litter.
}

TEST(AtomicWriteFileTest, FailureDoesNotTouchThePreviousFile) {
  // Writing "through" an existing file as if it were a directory fails; the
  // original file must survive unmodified.
  const std::string path = TempPath("durable_keep.txt");
  ASSERT_TRUE(AtomicWriteFile(path, "precious\n").ok());
  EXPECT_FALSE(AtomicWriteFile(path + "/sub.txt", "clobber").ok());
  EXPECT_EQ(Slurp(path), "precious\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, UnsyncedModeStillWritesAtomically) {
  const std::string path = TempPath("durable_nosync.txt");
  AtomicWriteOptions options;
  options.sync = false;
  ASSERT_TRUE(AtomicWriteFile(path, "fast path\n", options).ok());
  EXPECT_EQ(Slurp(path), "fast path\n");
  std::remove(path.c_str());
}

TEST(AtomicWriteFileTest, HandlesLargeContents) {
  const std::string path = TempPath("durable_large.bin");
  std::string contents;
  contents.reserve(1 << 20);
  for (int i = 0; contents.size() < (1u << 20); ++i) {
    contents += "chunk " + std::to_string(i) + "\n";
  }
  ASSERT_TRUE(AtomicWriteFile(path, contents).ok());
  EXPECT_EQ(Slurp(path), contents);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace veritas
