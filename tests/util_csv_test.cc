#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

namespace veritas {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  const CsvRow row = ParseCsvLine("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(ParseCsvLineTest, EmptyFields) {
  const CsvRow row = ParseCsvLine(",,");
  ASSERT_EQ(row.size(), 3u);
  for (const auto& f : row) EXPECT_TRUE(f.empty());
}

TEST(ParseCsvLineTest, QuotedFieldWithDelimiter) {
  const CsvRow row = ParseCsvLine(R"(src,"Smith, John",value)");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "Smith, John");
}

TEST(ParseCsvLineTest, EscapedQuotes) {
  const CsvRow row = ParseCsvLine(R"("say ""hi""",x)");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "say \"hi\"");
}

TEST(ParseCsvLineTest, IgnoresCarriageReturn) {
  const CsvRow row = ParseCsvLine("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(ParseCsvLineTest, CustomDelimiter) {
  const CsvRow row = ParseCsvLine("a|b|c", '|');
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "b");
}

TEST(EscapeCsvFieldTest, PlainUnchanged) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
}

TEST(EscapeCsvFieldTest, QuotesWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\"b"), "\"a\"\"b\"");
}

TEST(FormatCsvRowTest, RoundTripsThroughParse) {
  const CsvRow original = {"plain", "with,comma", "with\"quote", ""};
  const CsvRow parsed = ParseCsvLine(FormatCsvRow(original));
  EXPECT_EQ(parsed, original);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/veritas_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvFileTest, WriteThenRead) {
  const std::vector<CsvRow> rows = {{"s1", "i1", "v1"}, {"s2", "i2", "v,2"}};
  ASSERT_TRUE(WriteCsvFile(path_, rows).ok());
  const auto read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
}

TEST_F(CsvFileTest, SkipsCommentsAndBlankLines) {
  std::ofstream out(path_);
  out << "# comment\n\na,b\n   \nc,d\n";
  out.close();
  const auto read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0][0], "a");
  EXPECT_EQ((*read)[1][1], "d");
}

TEST_F(CsvFileTest, MissingFileIsIoError) {
  const auto read = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(CsvFileTest, WriteToBadPathIsIoError) {
  const Status st = WriteCsvFile("/nonexistent/dir/file.csv", {{"a"}});
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace veritas
