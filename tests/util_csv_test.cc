#include "util/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace veritas {
namespace {

TEST(ParseCsvLineTest, PlainFields) {
  const CsvRow row = ParseCsvLine("a,b,c");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], "a");
  EXPECT_EQ(row[2], "c");
}

TEST(ParseCsvLineTest, EmptyFields) {
  const CsvRow row = ParseCsvLine(",,");
  ASSERT_EQ(row.size(), 3u);
  for (const auto& f : row) EXPECT_TRUE(f.empty());
}

TEST(ParseCsvLineTest, QuotedFieldWithDelimiter) {
  const CsvRow row = ParseCsvLine(R"(src,"Smith, John",value)");
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "Smith, John");
}

TEST(ParseCsvLineTest, EscapedQuotes) {
  const CsvRow row = ParseCsvLine(R"("say ""hi""",x)");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], "say \"hi\"");
}

TEST(ParseCsvLineTest, IgnoresCarriageReturn) {
  const CsvRow row = ParseCsvLine("a,b\r");
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[1], "b");
}

TEST(ParseCsvLineTest, CustomDelimiter) {
  const CsvRow row = ParseCsvLine("a|b|c", '|');
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], "b");
}

TEST(EscapeCsvFieldTest, PlainUnchanged) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
}

TEST(EscapeCsvFieldTest, QuotesWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\"b"), "\"a\"\"b\"");
}

TEST(FormatCsvRowTest, RoundTripsThroughParse) {
  const CsvRow original = {"plain", "with,comma", "with\"quote", ""};
  const CsvRow parsed = ParseCsvLine(FormatCsvRow(original));
  EXPECT_EQ(parsed, original);
}

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/veritas_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(CsvFileTest, WriteThenRead) {
  const std::vector<CsvRow> rows = {{"s1", "i1", "v1"}, {"s2", "i2", "v,2"}};
  ASSERT_TRUE(WriteCsvFile(path_, rows).ok());
  const auto read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
}

TEST_F(CsvFileTest, SkipsCommentsAndBlankLines) {
  std::ofstream out(path_);
  out << "# comment\n\na,b\n   \nc,d\n";
  out.close();
  const auto read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0][0], "a");
  EXPECT_EQ((*read)[1][1], "d");
}

TEST_F(CsvFileTest, MultiLineQuotedFieldRoundTrips) {
  const std::vector<CsvRow> rows = {
      {"s1", "line one\nline two", "v1"},
      {"s2", "a,b\n\"quoted\"\nend", "v2"},
  };
  ASSERT_TRUE(WriteCsvFile(path_, rows).ok());
  const auto read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, rows);
}

TEST_F(CsvFileTest, CommentInsideOpenQuoteIsContent) {
  std::ofstream out(path_);
  out << "a,\"x\n# not a comment\ny\",b\n# real comment\nc,d,e\n";
  out.close();
  const auto read = ReadCsvFile(path_);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->size(), 2u);
  EXPECT_EQ((*read)[0][1], "x\n# not a comment\ny");
  EXPECT_EQ((*read)[1][0], "c");
}

TEST_F(CsvFileTest, RandomRowsRoundTrip) {
  // Property check: any table WriteCsvFile emits, ReadCsvFile must parse
  // back verbatim — including fields with delimiters, quotes and embedded
  // newlines. First fields are kept non-empty and non-'#' so no formatted
  // line is mistakable for a blank/comment line between rows.
  const std::string charset = "ab,\"\n |;#x ";
  Rng rng(20260806);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<CsvRow> rows(1 + rng.UniformIndex(6));
    for (CsvRow& row : rows) {
      row.resize(1 + rng.UniformIndex(4));
      for (std::size_t f = 0; f < row.size(); ++f) {
        std::string field;
        const std::size_t len = rng.UniformIndex(8);
        for (std::size_t i = 0; i < len; ++i) {
          field.push_back(charset[rng.UniformIndex(charset.size())]);
        }
        row[f] = std::move(field);
      }
      row[0] = "r" + row[0];
    }
    ASSERT_TRUE(WriteCsvFile(path_, rows).ok());
    const auto read = ReadCsvFile(path_);
    ASSERT_TRUE(read.ok());
    ASSERT_EQ(*read, rows) << "trial " << trial;
  }
}

TEST_F(CsvFileTest, MissingFileIsIoError) {
  const auto read = ReadCsvFile("/nonexistent/dir/file.csv");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIoError);
}

TEST_F(CsvFileTest, WriteToBadPathIsIoError) {
  const Status st = WriteCsvFile("/nonexistent/dir/file.csv", {{"a"}});
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace veritas
