// Tests of the metrics registry: instrument identity, concurrent updates,
// histogram bucket edges, snapshots and the JSON/text renderings.
#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace veritas {
namespace {

TEST(CounterTest, SameNameSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Add(2);
  b->Add(3);
  EXPECT_EQ(a->value(), 5u);
}

TEST(CounterTest, ConcurrentAddsSumExactly) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("concurrent");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      // Re-resolve by name per thread: the hot-path pattern caches the
      // pointer, and both must hit the same instrument.
      Counter* c = registry.GetCounter("concurrent");
      for (int i = 0; i < kAddsPerThread; ++i) c->Add(1);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(counter->value(),
            static_cast<std::uint64_t>(kThreads) * kAddsPerThread);
}

TEST(GaugeTest, SetAddAndConcurrency) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(1.5);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.5);
  gauge->Add(0.25);
  EXPECT_DOUBLE_EQ(gauge->value(), 1.75);

  gauge->Set(0.0);
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([gauge] {
      for (int i = 0; i < 1000; ++i) gauge->Add(0.5);
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_DOUBLE_EQ(gauge->value(), 2000.0);  // CAS loop loses no update.
}

TEST(HistogramTest, BucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("h", {1.0, 2.0, 4.0});
  // A value lands in the first bucket whose edge is >= value; above the last
  // edge it lands in the overflow bucket.
  hist->Observe(0.5);   // <= 1.0
  hist->Observe(1.0);   // == 1.0, still the first bucket
  hist->Observe(1.001); // <= 2.0
  hist->Observe(4.0);   // == 4.0, last finite bucket
  hist->Observe(100.0); // overflow
  const HistogramSnapshot snap = hist->Snapshot();
  ASSERT_EQ(snap.edges.size(), 3u);
  ASSERT_EQ(snap.buckets.size(), 4u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 1u);
  EXPECT_EQ(snap.buckets[2], 1u);
  EXPECT_EQ(snap.buckets[3], 1u);
  EXPECT_EQ(snap.count, 5u);
  EXPECT_DOUBLE_EQ(snap.min, 0.5);
  EXPECT_DOUBLE_EQ(snap.max, 100.0);
}

TEST(HistogramTest, WelfordMeanAndStddev) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("welford", {10.0});
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) hist->Observe(v);
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, 8u);
  EXPECT_DOUBLE_EQ(snap.sum, 40.0);
  EXPECT_DOUBLE_EQ(snap.mean, 5.0);
  EXPECT_NEAR(snap.stddev, 2.0, 1e-12);  // Classic population-stddev example.
}

TEST(HistogramTest, ConcurrentObservesKeepExactCount) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("hc", {0.5});
  constexpr int kThreads = 4;
  constexpr int kObs = 5000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([hist] {
      for (int i = 0; i < kObs; ++i) hist->Observe(1.0);
    });
  }
  for (std::thread& t : pool) t.join();
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_EQ(snap.count, static_cast<std::uint64_t>(kThreads) * kObs);
  EXPECT_DOUBLE_EQ(snap.mean, 1.0);
  EXPECT_DOUBLE_EQ(snap.stddev, 0.0);
}

TEST(HistogramTest, FirstGetFixesEdges) {
  MetricsRegistry registry;
  Histogram* a = registry.GetHistogram("edges", {1.0, 2.0});
  Histogram* b = registry.GetHistogram("edges", {99.0});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a->Snapshot().edges, (std::vector<double>{1.0, 2.0}));
}

TEST(HistogramTest, QuantileOfEmptyHistogramIsZero) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("q.empty", {1.0});
  const HistogramSnapshot snap = hist->Snapshot();
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 0.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinTheBucket) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("q.interp", {10.0, 20.0});
  hist->Observe(5.0);
  hist->Observe(15.0);
  hist->Observe(15.0);
  hist->Observe(15.0);
  const HistogramSnapshot snap = hist->Snapshot();
  // Rank 1 of 4 falls in the first bucket [min=5, 10]; the linear
  // interpolation walks the whole single-observation bucket.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.25), 10.0);
  // Rank 2 of 4 is the first of three observations in (10, 20].
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 10.0 + 10.0 / 3.0);
  // Rank 4 interpolates to the bucket's upper edge, then clamps to max.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 15.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 15.0);
}

TEST(HistogramTest, QuantileClampsToObservedRange) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("q.clamp", {10.0});
  hist->Observe(4.0);
  hist->Observe(6.0);
  const HistogramSnapshot snap = hist->Snapshot();
  // Bucket interpolation would give 7.0 and 10.0; the true observations
  // never exceeded 6, so the estimate is clamped there.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.5), 6.0);
  EXPECT_DOUBLE_EQ(snap.Quantile(1.0), 6.0);
  EXPECT_GE(snap.Quantile(0.0), 4.0);
}

TEST(HistogramTest, QuantileUsesMaxAsTheOverflowEdge) {
  MetricsRegistry registry;
  Histogram* hist = registry.GetHistogram("q.overflow", {1.0});
  hist->Observe(0.5);
  hist->Observe(100.0);
  const HistogramSnapshot snap = hist->Snapshot();
  // The overflow bucket has no finite edge; max stands in for it.
  EXPECT_DOUBLE_EQ(snap.Quantile(0.99), 100.0);
}

TEST(MetricsRegistryTest, ResetZeroesButKeepsInstruments) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* hist = registry.GetHistogram("h", {1.0});
  counter->Add(7);
  hist->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(hist->count(), 0u);
  // The cached pointers stay valid and usable after Reset.
  counter->Add(1);
  EXPECT_EQ(registry.GetCounter("c"), counter);
  EXPECT_EQ(counter->value(), 1u);
}

TEST(MetricsSnapshotTest, ValueAndFindHistogram) {
  MetricsRegistry registry;
  registry.GetCounter("a.count")->Add(3);
  registry.GetGauge("b.gauge")->Set(2.5);
  registry.GetHistogram("c.hist", {1.0})->Observe(0.1);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Value("a.count"), 3.0);
  EXPECT_DOUBLE_EQ(snap.Value("b.gauge"), 2.5);
  EXPECT_DOUBLE_EQ(snap.Value("c.hist"), 1.0);  // Histogram count.
  EXPECT_DOUBLE_EQ(snap.Value("missing", -1.0), -1.0);
  const HistogramSnapshot* h = snap.FindHistogram("c.hist");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 1u);
  EXPECT_EQ(snap.FindHistogram("a.count"), nullptr);
}

TEST(MetricsSnapshotTest, JsonAndTextContainInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("session.rounds")->Add(4);
  registry.GetHistogram("select_seconds", {0.1, 1.0})->Observe(0.05);
  const MetricsSnapshot snap = registry.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"session.rounds\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"select_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  const std::string text = snap.ToText();
  EXPECT_NE(text.find("session.rounds"), std::string::npos);
  EXPECT_NE(text.find("select_seconds"), std::string::npos);
}

TEST(MetricsRegistryTest, WriteJsonFileRoundTripsThroughDisk) {
  MetricsRegistry registry;
  registry.GetCounter("written")->Add(1);
  const std::string path = ::testing::TempDir() + "/veritas_metrics_test.json";
  ASSERT_TRUE(registry.WriteJsonFile(path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), registry.Snapshot().ToJson());
  in.close();
  std::remove(path.c_str());
}

TEST(MetricsRegistryTest, WriteJsonFileBadPathIsIoError) {
  MetricsRegistry registry;
  const Status st = registry.WriteJsonFile("/nonexistent/dir/metrics.json");
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(MetricsRegistryTest, GlobalIsStable) {
  MetricsRegistry& a = MetricsRegistry::Global();
  MetricsRegistry& b = MetricsRegistry::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace veritas
