// Tests of the retry policy: backoff schedule, deadline expiry,
// success-after-N, and fail-fast on non-retryable codes.
#include "util/retry.h"

#include <gtest/gtest.h>

#include <cstddef>
#include <string>

#include "util/result.h"
#include "util/rng.h"

namespace veritas {
namespace {

// A callable that fails `failures` times with `code` before succeeding.
struct FlakyFn {
  std::size_t failures = 0;
  StatusCode code = StatusCode::kUnavailable;
  std::size_t calls = 0;

  Result<int> operator()() {
    ++calls;
    if (calls <= failures) {
      return Status(code, "transient #" + std::to_string(calls));
    }
    return 17;
  }
};

TEST(RetryCallTest, FirstTrySuccessMakesOneAttempt) {
  RetryPolicy policy;
  RetryStats stats;
  FlakyFn fn;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 17);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_DOUBLE_EQ(stats.total_backoff_seconds, 0.0);
  EXPECT_FALSE(stats.deadline_expired);
}

TEST(RetryCallTest, SucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 2;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 17);
  EXPECT_EQ(stats.attempts, 3u);
  // Backoffs before retries 1 and 2: 0.1 + 0.2.
  EXPECT_DOUBLE_EQ(stats.total_backoff_seconds, 0.1 + 0.2);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kUnavailable);
}

TEST(RetryCallTest, ExhaustionReturnsLastTransientError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 10;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("#3"), std::string::npos);
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_FALSE(stats.deadline_expired);
}

TEST(RetryCallTest, NonRetryableFailsFast) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 10;
  fn.code = StatusCode::kInvalidArgument;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(stats.attempts, 1u);
}

TEST(RetryCallTest, AbstainedIsNotRetriedByDefault) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 10;
  fn.code = StatusCode::kAbstained;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kAbstained);
  EXPECT_EQ(stats.attempts, 1u);  // Re-asking will not change a refusal.
}

TEST(RetryCallTest, DeadlineStopsTheLoop) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.deadline_seconds = 2.5;  // 1.0 fits; 1.0 + 2.0 would not.
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 100;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(stats.deadline_expired);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_DOUBLE_EQ(stats.total_backoff_seconds, 1.0);
  EXPECT_EQ(stats.last_error.code(), StatusCode::kUnavailable);
}

TEST(RetryCallTest, ZeroMaxAttemptsStillTriesOnce) {
  RetryPolicy policy;
  policy.max_attempts = 0;
  RetryStats stats;
  FlakyFn fn;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.attempts, 1u);
}

TEST(RetryPolicyTest, BackoffIsExponentialAndCapped) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_seconds = 5.0;
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(1, nullptr), 1.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(2, nullptr), 2.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(3, nullptr), 4.0);
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(4, nullptr), 5.0);  // Capped.
  EXPECT_DOUBLE_EQ(policy.BackoffSeconds(5, nullptr), 5.0);
}

TEST(RetryPolicyTest, JitterStaysWithinTheConfiguredBand) {
  RetryPolicy policy;
  policy.initial_backoff_seconds = 1.0;
  policy.backoff_multiplier = 1.0;
  policy.jitter_fraction = 0.25;
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const double backoff = policy.BackoffSeconds(1, &rng);
    EXPECT_GE(backoff, 0.75);
    EXPECT_LE(backoff, 1.25);
  }
}

TEST(RetryCallTest, ExpiredSessionDeadlineAbandonsAfterTheCurrentAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.session_deadline = Deadline::AfterMillis(0);
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 10;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  // The attempts made so far are reported, and no schedule was burned past
  // the wall clock.
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_TRUE(stats.deadline_expired);
  EXPECT_FALSE(stats.cancelled);
  EXPECT_NE(result.status().message().find("session deadline"),
            std::string::npos)
      << result.status();
  EXPECT_NE(result.status().message().find("1 attempt"), std::string::npos)
      << result.status();
  EXPECT_EQ(fn.calls, 1u);
}

TEST(RetryCallTest, BackoffThatWouldOverrunTheSessionDeadlineIsNotTaken) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_seconds = 3600.0;  // Far beyond any test deadline.
  policy.max_backoff_seconds = 3600.0;      // Keep the cap out of the way.
  policy.session_deadline = Deadline::AfterMillis(60000);
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 10;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_TRUE(stats.deadline_expired);
}

TEST(RetryCallTest, GenerousSessionDeadlineDoesNotChangeTheSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.session_deadline = Deadline::AfterMillis(60000);
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 2;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_FALSE(stats.deadline_expired);
}

TEST(RetryCallTest, CancellationAbandonsBeforeTheNextAttempt) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  CancellationToken token;
  token.RequestStop();  // Graceful is enough: no backoff should be waited.
  policy.cancel = &token;
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 10;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(stats.cancelled);
  EXPECT_FALSE(stats.deadline_expired);
  EXPECT_EQ(fn.calls, 1u);  // The in-flight attempt finished; no retry.
  EXPECT_NE(result.status().message().find("cancellation requested"),
            std::string::npos)
      << result.status();
}

TEST(RetryCallTest, CancellationMidLoopStopsFurtherRetries) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  CancellationToken token;
  policy.cancel = &token;
  RetryStats stats;
  std::size_t calls = 0;
  const auto fn = [&]() -> Result<int> {
    if (++calls == 2) token.RequestStop();  // Operator cancels mid-retry.
    return Status::Unavailable("transient");
  };
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(calls, 2u);
  EXPECT_EQ(stats.attempts, 2u);
  EXPECT_TRUE(stats.cancelled);
}

TEST(RetryCallTest, NullCancelTokenRetriesAsBefore) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.cancel = nullptr;
  RetryStats stats;
  FlakyFn fn;
  fn.failures = 2;
  const auto result = RetryCall<int>(policy, fn, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(stats.attempts, 3u);
  EXPECT_FALSE(stats.cancelled);
}

TEST(RetryPolicyTest, RetryableCodesAreConfigurable) {
  RetryPolicy policy;
  EXPECT_TRUE(policy.IsRetryable(StatusCode::kUnavailable));
  EXPECT_TRUE(policy.IsRetryable(StatusCode::kDeadlineExceeded));
  EXPECT_FALSE(policy.IsRetryable(StatusCode::kAbstained));
  EXPECT_FALSE(policy.IsRetryable(StatusCode::kInternal));
  policy.retryable_codes = {StatusCode::kInternal};
  EXPECT_TRUE(policy.IsRetryable(StatusCode::kInternal));
  EXPECT_FALSE(policy.IsRetryable(StatusCode::kUnavailable));
}

}  // namespace
}  // namespace veritas
