// Tests of the cooperative cancellation token and wall-clock deadline.
#include "util/cancellation.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace veritas {
namespace {

TEST(CancellationTokenTest, StartsRunning) {
  CancellationToken token;
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.hard_stop_requested());
}

TEST(CancellationTokenTest, FirstRequestIsGraceful) {
  CancellationToken token;
  token.RequestStop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_FALSE(token.hard_stop_requested());
}

TEST(CancellationTokenTest, SecondRequestEscalatesToHard) {
  CancellationToken token;
  token.RequestStop();
  token.RequestStop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.hard_stop_requested());
  token.RequestStop();  // Further requests stay hard (no wraparound).
  EXPECT_TRUE(token.hard_stop_requested());
}

TEST(CancellationTokenTest, HardStopSkipsTheGracefulLevel) {
  CancellationToken token;
  token.RequestHardStop();
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(token.hard_stop_requested());
}

TEST(CancellationTokenTest, ResetReArmsTheToken) {
  CancellationToken token;
  token.RequestStop();
  token.RequestStop();
  token.Reset();
  EXPECT_FALSE(token.stop_requested());
  EXPECT_FALSE(token.hard_stop_requested());
}

TEST(CancellationTokenTest, NullTolerantHelpersTreatNullAsRunning) {
  EXPECT_FALSE(StopRequested(nullptr));
  EXPECT_FALSE(HardStopRequested(nullptr));
  CancellationToken token;
  token.RequestStop();
  EXPECT_TRUE(StopRequested(&token));
  EXPECT_FALSE(HardStopRequested(&token));
}

TEST(DeadlineTest, DefaultNeverExpires) {
  const Deadline deadline;
  EXPECT_FALSE(deadline.has_deadline());
  EXPECT_FALSE(deadline.expired());
  EXPECT_EQ(deadline.remaining(), std::chrono::nanoseconds::max());
}

TEST(DeadlineTest, InfiniteMatchesDefault) {
  EXPECT_FALSE(Deadline::Infinite().has_deadline());
}

TEST(DeadlineTest, ZeroMillisIsAlreadyExpired) {
  const Deadline deadline = Deadline::AfterMillis(0);
  EXPECT_TRUE(deadline.has_deadline());
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining(), std::chrono::nanoseconds::zero());
}

TEST(DeadlineTest, FutureDeadlineHasTimeRemaining) {
  const Deadline deadline = Deadline::AfterMillis(60'000);
  EXPECT_TRUE(deadline.has_deadline());
  EXPECT_FALSE(deadline.expired());
  EXPECT_GT(deadline.remaining(), std::chrono::seconds(30));
}

TEST(DeadlineTest, ExpiresAfterTheBudgetElapses) {
  const Deadline deadline = Deadline::AfterMillis(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(deadline.expired());
  EXPECT_EQ(deadline.remaining(), std::chrono::nanoseconds::zero());
}

TEST(DescribeStopTest, ReportsTheHighestSeverityCause) {
  CancellationToken token;
  EXPECT_EQ(DescribeStop(nullptr, Deadline()), "no stop requested");
  EXPECT_EQ(DescribeStop(&token, Deadline::AfterMillis(0)),
            "deadline expired");
  token.RequestStop();
  EXPECT_EQ(DescribeStop(&token, Deadline::AfterMillis(0)), "cancellation");
  token.RequestStop();
  EXPECT_EQ(DescribeStop(&token, Deadline()), "hard cancellation");
}

}  // namespace
}  // namespace veritas
