// Tests of AccuCopy: copy detection and independence-discounted voting
// (Dong et al. 2009 — the full model behind the paper's AccuNoDep).
#include "fusion/accu_copy.h"

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "data/synthetic.h"
#include "fusion/accu.h"
#include "model/database_builder.h"
#include "util/stats.h"

namespace veritas {
namespace {

// The classic copy scenario (Dong et al. 2009): a clique of three sources
// (an error-prone "parent" and two exact copiers) faces three honest
// independent sources. On the contested items the vote is 3-vs-3; plain
// Accu breaks the tie toward the clique (whose members look flawlessly
// consistent and earn inflated accuracies), while copy detection discounts
// the copiers and lets the honest majority win.
Database CopierClique() {
  DatabaseBuilder builder;
  for (int i = 0; i < 60; ++i) {
    const std::string item = "o" + std::to_string(i);
    const std::string truth = "t" + std::to_string(i);
    const std::string parent_value =
        i < 8 ? "lie" + std::to_string(i) : truth;
    EXPECT_TRUE(builder.AddObservation("parent", item, parent_value).ok());
    EXPECT_TRUE(builder.AddObservation("copy1", item, parent_value).ok());
    EXPECT_TRUE(builder.AddObservation("copy2", item, parent_value).ok());
    // Honest sources err independently, on disjoint items with distinct
    // values — the signature that separates them from copiers.
    const std::string h1 =
        (i >= 10 && i < 16) ? "e1_" + std::to_string(i) : truth;
    const std::string h2 =
        (i >= 20 && i < 26) ? "e2_" + std::to_string(i) : truth;
    const std::string h3 =
        (i >= 30 && i < 36) ? "e3_" + std::to_string(i) : truth;
    EXPECT_TRUE(builder.AddObservation("honest1", item, h1).ok());
    EXPECT_TRUE(builder.AddObservation("honest2", item, h2).ok());
    EXPECT_TRUE(builder.AddObservation("honest3", item, h3).ok());
  }
  return builder.Build();
}

GroundTruth CliqueTruth(const Database& db) {
  GroundTruth truth(db);
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const std::string value = "t" + db.item(i).name.substr(1);
    EXPECT_TRUE(truth.SetByValue(db, db.item(i).name, value).ok());
  }
  return truth;
}

TEST(AccuCopyTest, DetectsTheCopierClique) {
  const Database db = CopierClique();
  AccuCopyFusion model;
  model.Fuse(db, PriorSet(), FusionOptions{});
  const SourceId parent = *db.FindSource("parent");
  const SourceId copy1 = *db.FindSource("copy1");
  const SourceId copy2 = *db.FindSource("copy2");
  const SourceId honest1 = *db.FindSource("honest1");
  const SourceId honest2 = *db.FindSource("honest2");
  // Sharing eight idiosyncratic *false* values plus perfect agreement is
  // overwhelming evidence of dependence.
  EXPECT_GT(model.DependenceProbability(parent, copy1), 0.95);
  EXPECT_GT(model.DependenceProbability(copy1, copy2), 0.95);
  // Honest pairs agree on truths and disagree on their independent errors.
  EXPECT_LT(model.DependenceProbability(honest1, honest2), 0.05);
  EXPECT_LT(model.DependenceProbability(parent, honest1), 0.05);
}

TEST(AccuCopyTest, DiscountedVotesFlipCliqueDominatedItems) {
  const Database db = CopierClique();
  const GroundTruth truth = CliqueTruth(db);
  AccuFusion plain;
  AccuCopyFusion with_copy;
  const FusionResult plain_result = plain.Fuse(db, FusionOptions{});
  const FusionResult copy_result =
      with_copy.Fuse(db, PriorSet(), FusionOptions{});
  // Plain Accu loses every contested item to the clique...
  std::size_t plain_right = 0, copy_right = 0;
  for (ItemId i = 0; i < 8; ++i) {
    if (plain_result.WinningClaim(i) == truth.TrueClaim(i)) ++plain_right;
    if (copy_result.WinningClaim(i) == truth.TrueClaim(i)) ++copy_right;
  }
  EXPECT_EQ(plain_right, 0u);
  // ...while copy-aware fusion wins them all.
  EXPECT_EQ(copy_right, 8u);
  EXPECT_DOUBLE_EQ(FusionAccuracy(db, copy_result, truth), 1.0);
  EXPECT_GT(FusionAccuracy(db, copy_result, truth),
            FusionAccuracy(db, plain_result, truth));
}

TEST(AccuCopyTest, MatchesAccuNoDepWithoutCopying) {
  DenseConfig config;
  config.num_items = 150;
  config.num_sources = 12;
  config.density = 0.5;
  config.copier_fraction = 0.0;
  config.seed = 61;
  const SyntheticDataset data = GenerateDense(config);
  AccuFusion plain;
  AccuCopyFusion with_copy;
  const FusionResult a = plain.Fuse(data.db, FusionOptions{});
  const FusionResult b = with_copy.Fuse(data.db, PriorSet(), FusionOptions{});
  // With no real copying all dependence posteriors are tiny and the
  // discounted scores coincide with the plain ones.
  for (ItemId i = 0; i < data.db.num_items(); ++i) {
    for (ClaimIndex k = 0; k < data.db.num_claims(i); ++k) {
      EXPECT_NEAR(a.prob(i, k), b.prob(i, k), 0.05) << "item " << i;
    }
  }
}

TEST(AccuCopyTest, SeparatesCopierPairsFromIndependentPairs) {
  DenseConfig config;
  config.num_items = 300;
  config.num_sources = 20;
  config.density = 0.4;
  config.accuracy_mean = 0.75;
  config.copier_fraction = 0.5;
  config.seed = 11;
  const SyntheticDataset data = GenerateDense(config);
  AccuCopyFusion model;
  model.Fuse(data.db, PriorSet(), FusionOptions{});
  // Copiers are the trailing half of the source ids (generator layout).
  const SourceId independents = 10;
  RunningStats with_copier, independent_only;
  double max_with_copier = 0.0;
  for (SourceId a = 0; a < data.db.num_sources(); ++a) {
    for (SourceId b = a + 1; b < data.db.num_sources(); ++b) {
      const double dep = model.DependenceProbability(a, b);
      if (a >= independents || b >= independents) {
        with_copier.Add(dep);
        max_with_copier = std::max(max_with_copier, dep);
      } else {
        independent_only.Add(dep);
      }
    }
  }
  EXPECT_GT(max_with_copier, 0.9);             // Parent-copier pairs found.
  EXPECT_LT(independent_only.mean(), 0.05);    // No false alarms on average.
  EXPECT_GT(with_copier.mean(), independent_only.mean());
}

TEST(AccuCopyTest, DependenceMatrixShape) {
  const Database db = CopierClique();
  AccuCopyFusion model;
  model.Fuse(db, PriorSet(), FusionOptions{});
  EXPECT_EQ(model.last_dependence().size(),
            db.num_sources() * db.num_sources());
  for (SourceId a = 0; a < db.num_sources(); ++a) {
    EXPECT_DOUBLE_EQ(model.DependenceProbability(a, a), 0.0);
    for (SourceId b = 0; b < db.num_sources(); ++b) {
      EXPECT_DOUBLE_EQ(model.DependenceProbability(a, b),
                       model.DependenceProbability(b, a));
    }
  }
  // Out-of-range queries are safe.
  EXPECT_DOUBLE_EQ(model.DependenceProbability(0, 999), 0.0);
}

TEST(AccuCopyTest, MinOverlapGuard) {
  // Two sources overlapping on a single item are assumed independent even
  // if they agree on a false value.
  DatabaseBuilder builder;
  ASSERT_TRUE(builder.AddObservation("a", "x", "wrong").ok());
  ASSERT_TRUE(builder.AddObservation("b", "x", "wrong").ok());
  ASSERT_TRUE(builder.AddObservation("c", "x", "right").ok());
  const Database db = builder.Build();
  AccuCopyFusion model;
  model.Fuse(db, PriorSet(), FusionOptions{});
  EXPECT_DOUBLE_EQ(
      model.DependenceProbability(*db.FindSource("a"), *db.FindSource("b")),
      0.0);
}

TEST(AccuCopyTest, RespectsPriors) {
  const Database db = CopierClique();
  AccuCopyFusion model;
  PriorSet priors;
  ASSERT_TRUE(priors.SetExact(db, 0, 0).ok());
  const FusionResult r = model.Fuse(db, priors, FusionOptions{});
  EXPECT_DOUBLE_EQ(r.prob(0, 0), 1.0);
}

TEST(AccuCopyTest, OptionsAccessors) {
  AccuCopyOptions options;
  options.prior_copy_probability = 0.2;
  options.copy_rate = 0.9;
  AccuCopyFusion model(options);
  EXPECT_DOUBLE_EQ(model.copy_options().prior_copy_probability, 0.2);
  EXPECT_DOUBLE_EQ(model.copy_options().copy_rate, 0.9);
  EXPECT_EQ(model.name(), "accu_copy");
}

}  // namespace
}  // namespace veritas
