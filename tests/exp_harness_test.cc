// Tests of the experiment harness (curve runner, scale presets, reporting).
#include "exp/harness.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/strategy_factory.h"
#include "data/example_data.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

namespace veritas {
namespace {

TEST(StrategyFactoryTest, AllAdvertisedNamesConstruct) {
  for (const std::string& name : StrategyNames()) {
    auto strategy = MakeStrategy(name);
    ASSERT_TRUE(strategy.ok()) << name;
    EXPECT_FALSE((*strategy)->name().empty());
  }
}

TEST(StrategyFactoryTest, HybridParsesPercent) {
  auto strategy = MakeStrategy("approx_meu_k:15");
  ASSERT_TRUE(strategy.ok());
  EXPECT_EQ((*strategy)->name(), "approx_meu_k:15");
}

TEST(StrategyFactoryTest, HybridRejectsBadPercent) {
  EXPECT_EQ(MakeStrategy("approx_meu_k:0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeStrategy("approx_meu_k:150").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MakeStrategy("approx_meu_k:abc").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(StrategyFactoryTest, UnknownName) {
  EXPECT_EQ(MakeStrategy("skynet").status().code(), StatusCode::kNotFound);
}

TEST(SampleCurveTest, PicksStepsAtFractions) {
  SessionTrace trace;
  trace.initial_distance = 1.0;
  trace.initial_uncertainty = 2.0;
  for (std::size_t n = 1; n <= 10; ++n) {
    SessionStep step;
    step.num_validated = n;
    step.distance = 1.0 - 0.1 * static_cast<double>(n);
    step.uncertainty = 2.0 - 0.2 * static_cast<double>(n);
    trace.steps.push_back(step);
  }
  const auto points = SampleCurve(trace, /*conflicting=*/10, {0.2, 0.5, 1.0});
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].validated, 2u);
  EXPECT_EQ(points[1].validated, 5u);
  EXPECT_EQ(points[2].validated, 10u);
  EXPECT_NEAR(points[0].distance_reduction_pct, -20.0, 1e-9);
  EXPECT_NEAR(points[2].distance_reduction_pct, -100.0, 1e-9);
  EXPECT_NEAR(points[1].uncertainty_reduction_pct, -50.0, 1e-9);
}

TEST(SampleCurveTest, ShortTraceSamplesLastStep) {
  SessionTrace trace;
  trace.initial_distance = 1.0;
  SessionStep step;
  step.num_validated = 3;
  step.distance = 0.7;
  trace.steps.push_back(step);
  const auto points = SampleCurve(trace, 100, {0.5});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].validated, 3u);
}

TEST(SampleCurveTest, ZeroFractionReportsBaseline) {
  SessionTrace trace;
  trace.initial_distance = 1.0;
  trace.initial_uncertainty = 2.0;
  SessionStep step;
  step.num_validated = 4;
  step.distance = 0.5;
  step.uncertainty = 1.0;
  trace.steps.push_back(step);
  const auto points = SampleCurve(trace, /*conflicting=*/10, {0.0, 0.4});
  ASSERT_EQ(points.size(), 2u);
  // x = 0 is the pre-feedback baseline, not the state after the first batch.
  EXPECT_EQ(points[0].validated, 0u);
  EXPECT_EQ(points[0].distance_reduction_pct, 0.0);
  EXPECT_EQ(points[0].uncertainty_reduction_pct, 0.0);
  EXPECT_EQ(points[1].validated, 4u);
  EXPECT_NEAR(points[1].distance_reduction_pct, -50.0, 1e-9);
}

TEST(SampleCurveTest, EmptyTrace) {
  SessionTrace trace;
  const auto points = SampleCurve(trace, 10, {0.5});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].validated, 0u);
}

TEST(RunCurveTest, BudgetBoundByMaxFraction) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  AccuFusion model;
  CurveOptions options;
  options.report_fractions = {0.2, 0.4};  // 40% of 5 conflicting -> 2 items.
  const auto curve = RunCurvePerfect(db, truth, model, "qbc", options);
  ASSERT_TRUE(curve.ok());
  EXPECT_EQ(curve->trace.steps.back().num_validated, 2u);
  EXPECT_EQ(curve->points.size(), 2u);
}

TEST(RunCurveTest, LeadingZeroFractionYieldsBaselinePoint) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  AccuFusion model;
  CurveOptions options;
  options.report_fractions = {0.0, 0.4};
  const auto curve = RunCurvePerfect(db, truth, model, "qbc", options);
  ASSERT_TRUE(curve.ok());
  ASSERT_EQ(curve->points.size(), 2u);
  EXPECT_EQ(curve->points[0].validated, 0u);
  EXPECT_EQ(curve->points[0].distance_reduction_pct, 0.0);
  EXPECT_GT(curve->points[1].validated, 0u);
}

TEST(RunCurveTest, UnknownStrategyPropagates) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  AccuFusion model;
  const auto curve =
      RunCurvePerfect(db, truth, model, "bogus", CurveOptions{});
  EXPECT_EQ(curve.status().code(), StatusCode::kNotFound);
}

TEST(RunCurveTest, DeterministicForSeed) {
  const Database db = MakeMovieDatabase();
  const GroundTruth truth = MakeMovieGroundTruth(db);
  AccuFusion model;
  CurveOptions options;
  options.report_fractions = {1.0};
  options.seed = 9;
  const auto a = RunCurvePerfect(db, truth, model, "random", options);
  const auto b = RunCurvePerfect(db, truth, model, "random", options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->trace.steps.size(), b->trace.steps.size());
  for (std::size_t i = 0; i < a->trace.steps.size(); ++i) {
    EXPECT_EQ(a->trace.steps[i].items, b->trace.steps[i].items);
  }
}

TEST(ScaleTest, DefaultIsSmall) {
  unsetenv("VERITAS_SCALE");
  EXPECT_EQ(GetScaleMode(), ScaleMode::kSmall);
}

TEST(ScaleTest, EnvOverrides) {
  setenv("VERITAS_SCALE", "paper", 1);
  EXPECT_EQ(GetScaleMode(), ScaleMode::kPaper);
  setenv("VERITAS_SCALE", "MEDIUM", 1);
  EXPECT_EQ(GetScaleMode(), ScaleMode::kMedium);
  setenv("VERITAS_SCALE", "garbage", 1);
  EXPECT_EQ(GetScaleMode(), ScaleMode::kSmall);
  unsetenv("VERITAS_SCALE");
}

TEST(ScaleTest, ModeNames) {
  EXPECT_EQ(ScaleModeName(ScaleMode::kSmall), "small");
  EXPECT_EQ(ScaleModeName(ScaleMode::kMedium), "medium");
  EXPECT_EQ(ScaleModeName(ScaleMode::kPaper), "paper");
}

TEST(ScaleTest, PresetsGenerateNamedDatasets) {
  const NamedDataset books = MakeBooksLike(ScaleMode::kSmall);
  EXPECT_EQ(books.name, "Books-like");
  EXPECT_EQ(books.data.db.num_items(), 300u);
  const NamedDataset flights = MakeFlightsDayLike(ScaleMode::kSmall);
  EXPECT_EQ(flights.data.db.num_sources(), 38u);
  const NamedDataset population = MakePopulationLike(ScaleMode::kSmall);
  EXPECT_GT(population.data.db.num_items(), 1000u);
}

TEST(ReportTest, TextTableAlignsAndCounts) {
  TextTable table({"a", "long-header", "c"});
  table.AddRow({"1", "2", "3"});
  table.AddRow({"wide-cell", "x"});  // Short row padded.
  EXPECT_EQ(table.num_rows(), 2u);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("wide-cell"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(ReportTest, CsvOutput) {
  TextTable table({"x", "y"});
  table.AddRow({"1", "two words"});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "x,y\n1,two words\n");
}

TEST(ReportTest, Formatters) {
  EXPECT_EQ(Pct(12.345), "12.3%");
  EXPECT_EQ(Pct(12.345, 2), "12.35%");
  EXPECT_EQ(Num(1.23456, 2), "1.23");
  EXPECT_EQ(Secs(0.00123), "0.00123 s");
  EXPECT_EQ(Secs(0.123), "0.1230 s");
  EXPECT_EQ(Secs(12.3), "12.30 s");
}

TEST(ReportTest, MaybeExportCsvRespectsEnv) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  unsetenv("VERITAS_CSV_DIR");
  EXPECT_FALSE(MaybeExportCsv("report_test", table));
  const std::string dir = ::testing::TempDir();
  setenv("VERITAS_CSV_DIR", dir.c_str(), 1);
  EXPECT_TRUE(MaybeExportCsv("report_test", table));
  unsetenv("VERITAS_CSV_DIR");
  const std::string path = dir + "/report_test.csv";
  std::ifstream in(path);
  ASSERT_TRUE(in.is_open());
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  in.close();
  std::remove(path.c_str());
}

TEST(ReportTest, MaybeExportCsvBadDirectoryFailsGracefully) {
  TextTable table({"a"});
  setenv("VERITAS_CSV_DIR", "/no/such/dir", 1);
  EXPECT_FALSE(MaybeExportCsv("report_test", table));
  unsetenv("VERITAS_CSV_DIR");
}

TEST(ReportTest, Banner) {
  std::ostringstream os;
  PrintBanner(os, "Figure 3");
  EXPECT_NE(os.str().find("Figure 3"), std::string::npos);
  EXPECT_NE(os.str().find("====="), std::string::npos);
}

}  // namespace
}  // namespace veritas
