// Figure 8: long-tail characteristics of the Books-like and Population-like
// datasets — the cumulative distribution of per-source coverage.
//
// Paper shape: power-law — ">90% of sources provide information on fewer
// than 4% of data items" while a few sources cover a large fraction.
#include <algorithm>
#include <iostream>
#include <vector>

#include "data/dataset_stats.h"
#include "exp/report.h"
#include "exp/scale.h"

using namespace veritas;

namespace {

void RunPanel(const NamedDataset& dataset) {
  PrintBanner(std::cout, "Figure 8 — source coverage distribution (" +
                             dataset.name + ")");
  const std::vector<double> thresholds = {0.005, 0.01, 0.02, 0.04,
                                          0.08,  0.16, 0.32};
  TextTable table({"coverage < x", "fraction of sources"});
  for (double t : thresholds) {
    table.AddRow({Num(t * 100.0, 1) + "%",
                  Pct(CoverageBelow(dataset.data.db, t) * 100.0)});
  }
  table.Print(std::cout);
  auto coverages = SourceCoverages(dataset.data.db);
  std::sort(coverages.begin(), coverages.end());
  std::cout << "max coverage: " << Num(coverages.back() * 100.0, 1)
            << "% of items; median: "
            << Num(coverages[coverages.size() / 2] * 100.0, 2) << "%\n";
  std::cout << "long-tail check (paper: >90% of sources below 4%): "
            << Pct(CoverageBelow(dataset.data.db, 0.04) * 100.0) << "\n";
}

}  // namespace

int main() {
  const ScaleMode mode = GetScaleMode();
  RunPanel(MakeBooksLike(mode));
  RunPanel(MakePopulationLike(mode));
  // Contrast: the dense FlightsDay-like dataset has NO long tail.
  RunPanel(MakeFlightsDayLike(mode));
  return 0;
}
