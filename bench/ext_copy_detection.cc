// Extension experiment: copy detection (AccuCopy vs AccuNoDep).
//
// The paper's fusion substrate assumes source independence (§3, AccuNoDep)
// while its real datasets are known to contain copiers — the full Accu
// model of Dong et al. [7] detects them. This experiment measures, on
// synthetic data with a known copier ground truth, (a) how well the
// dependence posteriors separate copier pairs from independent pairs and
// (b) what copy-aware fusion buys before any user feedback is spent.
#include <iostream>

#include "core/metrics.h"
#include "data/synthetic.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"
#include "fusion/accu_copy.h"
#include "util/stats.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  PrintBanner(std::cout,
              "Extension — copy detection (AccuCopy vs AccuNoDep)");
  TextTable table({"copiers", "accu acc", "accu_copy acc",
                   "dep: pairs w/ copier", "dep: independent pairs",
                   "max dep"});
  for (double copier_fraction : {0.0, 0.3, 0.5}) {
    DenseConfig config;
    config.num_items = mode == ScaleMode::kSmall ? 300 : 1000;
    config.num_sources = 20;
    config.density = 0.4;
    config.accuracy_mean = 0.75;
    config.copier_fraction = copier_fraction;
    config.seed = 11;
    const SyntheticDataset data = GenerateDense(config);

    AccuFusion plain;
    AccuCopyFusion with_copy;
    const FusionResult plain_result = plain.Fuse(data.db, FusionOptions{});
    const FusionResult copy_result =
        with_copy.Fuse(data.db, PriorSet(), FusionOptions{});

    // Copiers occupy the trailing source ids (generator layout).
    const SourceId independents = static_cast<SourceId>(
        data.db.num_sources() -
        static_cast<std::size_t>(copier_fraction *
                                 static_cast<double>(data.db.num_sources())));
    RunningStats with_copier, independent_only;
    for (SourceId a = 0; a < data.db.num_sources(); ++a) {
      for (SourceId b = a + 1; b < data.db.num_sources(); ++b) {
        const double dep = with_copy.DependenceProbability(a, b);
        if (a >= independents || b >= independents) {
          with_copier.Add(dep);
        } else {
          independent_only.Add(dep);
        }
      }
    }
    table.AddRow({Num(copier_fraction * 100.0, 0) + "%",
                  Num(FusionAccuracy(data.db, plain_result, data.truth), 3),
                  Num(FusionAccuracy(data.db, copy_result, data.truth), 3),
                  Num(with_copier.count() ? with_copier.mean() : 0.0, 3),
                  Num(independent_only.mean(), 3),
                  Num(std::max(with_copier.max(), independent_only.max()),
                      3)});
  }
  table.Print(std::cout);
  std::cout << "(copier pairs light up while independent pairs stay near "
               "zero; fusion accuracy gains appear where cliques dominate "
               "items)\n";
  return 0;
}
