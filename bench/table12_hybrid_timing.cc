// Table 12 (§B.3): time per validation for QBC, US and Approx-MEU_k with
// increasing k.
//
// Paper reference (seconds/action):
//                  Books  FlightsDay  Flights
//   QBC            0.08   0.07        6.0
//   US             0.09   0.12        1.8
//   Approx-MEU_5   0.04   0.23        156
//   Approx-MEU_10  0.09   0.73        323
//   Approx-MEU_15  0.15   0.98        475
//
// Shape to reproduce: time grows with k; on long-tail data small k is
// QBC-cheap, on large dense data Approx-MEU_k dominates the budget.
#include <iostream>
#include <vector>

#include "core/oracle.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"
#include "obs/obs_flags.h"

using namespace veritas;

namespace {

double MeanSelectSeconds(const NamedDataset& dataset,
                         const std::string& strategy_name) {
  AccuFusion model;
  auto strategy = MakeStrategy(strategy_name);
  if (!strategy.ok()) return -1.0;
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = 5;
  options.record_metrics = false;
  Rng rng(29);
  FeedbackSession session(dataset.data.db, model, strategy->get(), &oracle,
                          dataset.data.truth, options, &rng);
  auto trace = session.Run();
  if (!trace.ok()) return -1.0;
  return trace->MeanSelectSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  const ScaleMode mode = GetScaleMode();
  const ObsOutputs obs = ScanObsFlags(argc, argv);
  PrintBanner(std::cout,
              "Table 12: seconds/action for QBC, US and Approx-MEU_k "
              "(scale=" + ScaleModeName(mode) + ")");
  const std::vector<std::string> strategies = {
      "qbc", "us", "approx_meu_k:5", "approx_meu_k:10", "approx_meu_k:15"};
  TextTable table({"strategy", "Books-like", "FlightsDay-like",
                   "Flights-like"});
  const NamedDataset datasets[] = {MakeBooksLike(mode),
                                   MakeFlightsDayLike(mode),
                                   MakeFlightsLike(mode)};
  for (const std::string& strategy : strategies) {
    std::vector<std::string> row = {strategy};
    for (const NamedDataset& dataset : datasets) {
      row.push_back(Secs(MeanSelectSeconds(dataset, strategy)));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "(paper shape: cost grows with k; QBC/US remain cheap)\n";
  const Status obs_status = WriteObsOutputs(obs);
  if (!obs_status.ok()) {
    std::cerr << "error: " << obs_status.ToString() << "\n";
    return 1;
  }
  return 0;
}
