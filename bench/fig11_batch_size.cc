// Figure 11 (§B.4): effect of batch size on effectiveness and on the total
// time to validate a fixed number of claims, on the FlightsDay-like data.
//
// Paper shape:
//   (a) QBC is unaffected by batch size (same validated set); US degrades
//       steadily; Approx-MEU first improves slightly, then degrades past
//       batch ~50.
//   (b) Total time for Approx-MEU drops by more than an order of magnitude
//       from batch 1 to batch 200; QBC/US stay nearly flat.
#include <iostream>
#include <vector>

#include "core/metrics.h"
#include "core/oracle.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"
#include "util/timer.h"

using namespace veritas;

namespace {

struct BatchRun {
  double distance_reduction_pct = 0.0;
  double total_seconds = 0.0;
};

BatchRun RunWithBatch(const NamedDataset& dataset,
                      const std::string& strategy_name, std::size_t batch,
                      std::size_t budget) {
  AccuFusion model;
  auto strategy = MakeStrategy(strategy_name);
  BatchRun out;
  if (!strategy.ok()) return out;
  PerfectOracle oracle;
  SessionOptions options;
  options.batch_size = batch;
  options.max_validations = budget;
  Rng rng(31);
  Timer timer;
  FeedbackSession session(dataset.data.db, model, strategy->get(), &oracle,
                          dataset.data.truth, options, &rng);
  auto trace = session.Run();
  out.total_seconds = timer.ElapsedSeconds();
  if (trace.ok() && !trace->steps.empty()) {
    out.distance_reduction_pct =
        trace->DistanceReductionPercent(trace->steps.size() - 1);
  }
  return out;
}

}  // namespace

namespace {

void RunPanel(const NamedDataset& dataset, ScaleMode mode) {
  // The paper validates 200 claims; scale the budget with the dataset.
  const std::size_t conflicting = dataset.data.db.ConflictingItems().size();
  const std::size_t budget =
      std::min<std::size_t>(mode == ScaleMode::kSmall ? 60 : 200,
                            conflicting);
  const std::vector<std::size_t> batches = {1, 10, 25, 50, budget};
  const std::vector<std::string> strategies = {"qbc", "us", "approx_meu"};

  PrintBanner(std::cout,
              "Figure 11 — batch size on " + dataset.name + " (" +
                  std::to_string(budget) + " validations)");
  TextTable effectiveness({"batch", "qbc", "us", "approx_meu"});
  TextTable timing({"batch", "qbc", "us", "approx_meu"});
  for (std::size_t batch : batches) {
    std::vector<std::string> erow = {std::to_string(batch)};
    std::vector<std::string> trow = {std::to_string(batch)};
    for (const std::string& strategy : strategies) {
      const BatchRun run = RunWithBatch(dataset, strategy, batch, budget);
      erow.push_back(Pct(run.distance_reduction_pct));
      trow.push_back(Secs(run.total_seconds));
    }
    effectiveness.AddRow(erow);
    timing.AddRow(trow);
  }
  std::cout << "(a) distance reduction after " << budget
            << " validations:\n";
  effectiveness.Print(std::cout);
  std::cout << "\n(b) total wall time for all validations:\n";
  timing.Print(std::cout);
}

}  // namespace

int main() {
  const ScaleMode mode = GetScaleMode();
  RunPanel(MakeFlightsDayLike(mode), mode);
  // A long-tail panel too: adaptivity matters more there (a validation can
  // swing low-coverage sources), so batching costs more effectiveness.
  RunPanel(MakeBooksLike(mode), mode);
  std::cout << "\n(paper shape: QBC invariant to batch; US degrades; "
               "Approx-MEU time collapses with larger batches)\n";
  return 0;
}
