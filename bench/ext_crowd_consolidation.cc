// Extension experiment: the full §4.4 crowd pipeline.
//
// The paper assumes "the crowdsourcing system processes conflicting
// answers from workers and provides the most accurate label". Here that
// system is real: a simulated worker pool answers each validation request
// and the answers are consolidated by majority vote or by Dawid-Skene-
// style EM (which jointly learns worker accuracies). We measure how much
// consolidation quality matters to the feedback loop.
#include <iostream>

#include "core/strategy_factory.h"
#include "crowd/consolidation.h"
#include "data/synthetic.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

namespace {

Result<double> RunCrowdSession(const SyntheticDataset& data,
                               FeedbackOracle* oracle, std::size_t budget) {
  AccuFusion model;
  VERITAS_ASSIGN_OR_RETURN(auto strategy, MakeStrategy("approx_meu"));
  SessionOptions options;
  options.max_validations = budget;
  Rng rng(9);
  FeedbackSession session(data.db, model, strategy.get(), oracle,
                          data.truth, options, &rng);
  VERITAS_ASSIGN_OR_RETURN(SessionTrace trace, session.Run());
  return trace.DistanceReductionPercent(trace.steps.size() - 1);
}

}  // namespace

int main() {
  const ScaleMode mode = GetScaleMode();
  DenseConfig config;
  config.num_items = mode == ScaleMode::kSmall ? 200 : 600;
  config.num_sources = 20;
  config.density = 0.4;
  config.accuracy_mean = 0.72;
  config.copier_fraction = 0.4;
  config.seed = 55;
  const SyntheticDataset data = GenerateDense(config);
  const std::size_t budget =
      std::max<std::size_t>(10, data.db.ConflictingItems().size() / 5);

  PrintBanner(std::cout,
              "Extension — crowd feedback pipeline (Approx-MEU, " +
                  std::to_string(budget) + " validations)");
  TextTable table({"feedback source", "distance reduction"});

  {
    PerfectOracle perfect;
    auto reduction = RunCrowdSession(data, &perfect, budget);
    table.AddRow({"perfect expert", reduction.ok() ? Pct(*reduction) : "ERR"});
  }
  for (double worker_accuracy : {0.9, 0.75, 0.6}) {
    for (const auto mode_pair :
         {std::pair<CrowdOracle::Mode, const char*>{
              CrowdOracle::Mode::kMajority, "majority"},
          std::pair<CrowdOracle::Mode, const char*>{CrowdOracle::Mode::kEm,
                                                    "EM"}}) {
      WorkerPoolConfig pool_config;
      pool_config.num_workers = 25;
      pool_config.accuracy_mean = worker_accuracy;
      pool_config.accuracy_sd = 0.15;
      pool_config.answers_per_item = 5;
      pool_config.seed = 7;
      WorkerPool pool(pool_config);
      CrowdOracle oracle(&pool, mode_pair.first);
      auto reduction = RunCrowdSession(data, &oracle, budget);
      table.AddRow({"crowd acc=" + Num(worker_accuracy, 2) + " (" +
                        mode_pair.second + ")",
                    reduction.ok() ? Pct(*reduction) : "ERR"});
    }
  }
  table.Print(std::cout);
  std::cout << "(EM consolidation should track majority at high worker "
               "accuracy and beat it as workers get noisy)\n";
  return 0;
}
