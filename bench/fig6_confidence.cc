// Figure 6: feedback confidence (worker quality) on the Books-like dataset.
//
// Every answer pins the true claim with probability c in {1.0, 0.9, 0.8}
// (the rest spread over the other claims). Paper shape: performance
// deteriorates as confidence drops; QBC/US stop improving fusion well
// before Approx-MEU does; Approx-MEU at 0.8 still achieves an improvement
// comparable to error-free QBC/US.
#include <iostream>
#include <vector>

#include "core/oracle.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  const NamedDataset books = MakeBooksLike(mode);
  AccuFusion model;

  CurveOptions options;
  options.report_fractions = {0.02, 0.05, 0.08, 0.10, 0.15};
  options.seed = 13;

  const std::vector<double> confidences = {1.0, 0.9, 0.8};
  const std::vector<std::string> strategies = {"qbc", "us", "approx_meu"};

  PrintBanner(std::cout, "Figure 6 — feedback confidence (" + books.name +
                             ")");
  for (const std::string& strategy : strategies) {
    std::cout << "\n" << strategy << ":\n";
    TextTable table({"% validated", "conf=1.0", "conf=0.9", "conf=0.8"});
    std::vector<CurveResult> curves;
    for (double confidence : confidences) {
      ConfidenceOracle oracle(confidence);
      auto curve = RunCurve(books.data.db, books.data.truth, model, strategy,
                            &oracle, options);
      if (!curve.ok()) {
        std::cerr << strategy << " failed: " << curve.status() << "\n";
        return 1;
      }
      curves.push_back(std::move(curve).value());
    }
    for (std::size_t p = 0; p < options.report_fractions.size(); ++p) {
      std::vector<std::string> row = {
          Num(options.report_fractions[p] * 100.0, 0) + "%"};
      for (const CurveResult& curve : curves) {
        row.push_back(Pct(curve.points[p].distance_reduction_pct));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\n(more negative = better; paper shape: lower confidence "
               "-> weaker improvement, Approx-MEU most resilient)\n";
  return 0;
}
