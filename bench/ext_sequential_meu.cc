// Extension experiment: two-step lookahead (meu2) vs myopic MEU.
//
// The paper explicitly leaves sequential (non-myopic) validation as future
// work (§4.2.2). This experiment quantifies what a beam-bounded two-step
// lookahead buys over the myopic strategy on small datasets, and what it
// costs.
#include <iostream>

#include "data/synthetic.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  PrintBanner(std::cout,
              "Extension — two-step lookahead (meu2) vs myopic MEU");

  AccuFusion model;
  CurveOptions options;
  options.report_fractions = {0.05, 0.10, 0.20};
  options.seed = 5;

  TextTable table({"seed", "strategy", "5%", "10%", "20%", "s/action"});
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    DenseConfig config;
    config.num_items = mode == ScaleMode::kSmall ? 100 : 250;
    config.num_sources = 12;
    config.density = 0.4;
    config.accuracy_mean = 0.72;
    config.copier_fraction = 0.4;
    config.seed = seed;
    const SyntheticDataset data = GenerateDense(config);
    for (const char* strategy : {"meu", "meu2"}) {
      const auto curve =
          RunCurvePerfect(data.db, data.truth, model, strategy, options);
      if (!curve.ok()) {
        std::cerr << strategy << " failed: " << curve.status() << "\n";
        return 1;
      }
      table.AddRow({std::to_string(seed), strategy,
                    Pct(curve->points[0].distance_reduction_pct),
                    Pct(curve->points[1].distance_reduction_pct),
                    Pct(curve->points[2].distance_reduction_pct),
                    Secs(curve->mean_select_seconds)});
    }
  }
  table.Print(std::cout);
  std::cout << "(meu2 should match or beat meu in effectiveness at a "
               "multiple of the decision cost)\n";
  return 0;
}
