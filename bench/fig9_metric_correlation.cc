// Figure 9 (§B.2): relation between the two performance metrics.
//
// Replays the paper's synthetic study: data generated with the §B.2
// generator (a_mean = 0.8, a_sd = 0.1, d = 0.4), validations applied with
// GUB and MEU, and (distance_to_ground_truth, uncertainty) sampled after
// each action. Paper result: strong positive correlation, Pearson
// rho = 0.86 on synthetic data (0.71-0.72 on real data).
#include <iostream>
#include <vector>

#include "core/metrics.h"
#include "core/oracle.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "data/synthetic.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"
#include "util/stats.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  const std::size_t items = mode == ScaleMode::kSmall ? 150
                            : mode == ScaleMode::kMedium ? 400
                                                         : 1000;
  PrintBanner(std::cout,
              "Figure 9 — distance vs uncertainty correlation "
              "(B.2 generator: a_mean=0.8, a_sd=0.1, d=0.4)");

  std::vector<double> distances;
  std::vector<double> uncertainties;
  AccuFusion model;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    DenseConfig config;
    config.num_items = items;
    config.num_sources = 20;
    config.density = 0.4;
    config.accuracy_mean = 0.8;
    config.accuracy_sd = 0.1;
    config.seed = seed;
    const SyntheticDataset data = GenerateDense(config);
    for (const char* strategy_name : {"gub", "meu"}) {
      auto strategy = MakeStrategy(strategy_name);
      if (!strategy.ok()) return 1;
      PerfectOracle oracle;
      SessionOptions options;
      options.max_validations =
          std::min<std::size_t>(20, data.db.ConflictingItems().size());
      Rng rng(seed);
      FeedbackSession session(data.db, model, strategy->get(), &oracle,
                              data.truth, options, &rng);
      const auto trace = session.Run();
      if (!trace.ok()) {
        std::cerr << trace.status() << "\n";
        return 1;
      }
      distances.push_back(trace->initial_distance);
      uncertainties.push_back(trace->initial_uncertainty);
      for (const SessionStep& step : trace->steps) {
        distances.push_back(step.distance);
        uncertainties.push_back(step.uncertainty);
      }
    }
  }

  const double rho = PearsonCorrelation(distances, uncertainties);
  std::cout << "samples: " << distances.size()
            << " (5 seeds x {GUB, MEU} x ~20 validations)\n";
  std::cout << "Pearson rho(distance, uncertainty) = " << Num(rho, 3)
            << "   (paper: 0.86 synthetic; 0.71-0.72 real)\n";

  // Compact scatter summary: distance quartiles vs mean uncertainty.
  TextTable table({"distance quantile", "distance", "mean uncertainty"});
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double dq = Quantile(distances, q);
    // Mean uncertainty of samples whose distance is within the band.
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < distances.size(); ++i) {
      if (std::abs(distances[i] - dq) <
          0.1 * (Quantile(distances, 1.0) + 1e-9)) {
        sum += uncertainties[i];
        ++n;
      }
    }
    table.AddRow({Num(q, 2), Num(dq, 4),
                  n ? Num(sum / static_cast<double>(n), 3) : "-"});
  }
  table.Print(std::cout);
  return 0;
}
