// Ablation: accuracy of Approx-MEU's differential estimate (Eq. 10) and
// empirical check of Theorem 4.1's hop-distance decay.
//
// For a sample of hypothesized validations we compare the estimated
// post-validation probabilities against the *true* ones obtained by
// actually re-running fusion, split by hop distance from the validated
// item (0 = validated, 1 = shares a source, 2 = further away). The paper
// predicts the change (and hence the estimation error) decays sharply with
// hop distance — this justifies the one-hop truncation.
#include <cmath>
#include <iostream>
#include <vector>

#include "core/approx_meu.h"
#include "data/synthetic.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"
#include "util/stats.h"

using namespace veritas;

namespace {

void RunPanel(const std::string& name, const SyntheticDataset& data) {
  AccuFusion model;
  FusionOptions opts;
  const FusionResult fusion = model.Fuse(data.db, opts);
  const ItemGraph graph(data.db);

  // Hop-1 neighbourhood marker reused across samples.
  std::vector<ItemId> neighbors;
  std::vector<int> hop(data.db.num_items(), 2);

  RunningStats true_change_hop1, true_change_hop2;
  RunningStats est_error_hop1, est_error_hop2;
  RunningStats validated_change;

  const auto conflicting = data.db.ConflictingItems();
  const std::size_t step = std::max<std::size_t>(1, conflicting.size() / 25);
  for (std::size_t c = 0; c < conflicting.size(); c += step) {
    const ItemId validated = conflicting[c];
    // Flip hypothesis: assume the runner-up claim true (the informative
    // branch).
    const ClaimIndex t = fusion.WinningClaim(validated) == 0 ? 1 : 0;
    validated_change.Add(1.0 - fusion.prob(validated, t));

    std::fill(hop.begin(), hop.end(), 2);
    hop[validated] = 0;
    graph.CollectNeighbors(validated, &neighbors);
    for (ItemId j : neighbors) hop[j] = 1;

    // True post-validation probabilities by re-fusing.
    PriorSet pinned;
    pinned.SetExact(data.db, validated, t);
    const FusionResult refused = model.Fuse(data.db, pinned, opts, &fusion);
    // Estimated ones by the differential formula.
    const AccuracyDeltas deltas =
        ComputeAccuracyDeltas(data.db, fusion, validated, t);

    for (ItemId j = 0; j < data.db.num_items(); ++j) {
      if (j == validated || data.db.num_claims(j) < 2) continue;
      const auto estimated = EstimateUpdatedProbs(data.db, fusion, j, deltas);
      for (ClaimIndex k = 0; k < data.db.num_claims(j); ++k) {
        const double truth_move =
            std::fabs(refused.prob(j, k) - fusion.prob(j, k));
        const double est_error =
            std::fabs(estimated[k] - refused.prob(j, k));
        if (hop[j] == 1) {
          true_change_hop1.Add(truth_move);
          est_error_hop1.Add(est_error);
        } else {
          true_change_hop2.Add(truth_move);
          est_error_hop2.Add(est_error);
        }
      }
    }
  }

  PrintBanner(std::cout, "Ablation — differential-estimate accuracy (" +
                             name + ")");
  TextTable table({"quantity", "mean", "max"});
  table.AddRow({"|dp| of validated item", Num(validated_change.mean(), 4),
                Num(validated_change.max(), 4)});
  table.AddRow({"true |dp| at hop 1", Num(true_change_hop1.mean(), 5),
                Num(true_change_hop1.max(), 4)});
  table.AddRow({"true |dp| at hop 2+", Num(true_change_hop2.mean(), 5),
                Num(true_change_hop2.max(), 4)});
  table.AddRow({"estimate error at hop 1", Num(est_error_hop1.mean(), 5),
                Num(est_error_hop1.max(), 4)});
  table.AddRow({"estimate error at hop 2+", Num(est_error_hop2.mean(), 5),
                Num(est_error_hop2.max(), 4)});
  table.Print(std::cout);
  if (true_change_hop2.count() > 0 && true_change_hop2.mean() > 0.0) {
    std::cout << "hop-1 : hop-2+ mean-change ratio = "
              << Num(true_change_hop1.mean() /
                         std::max(true_change_hop2.mean(), 1e-12),
                     1)
              << "x  (Theorem 4.1 predicts a sharp decay)\n";
  } else {
    std::cout << "no hop-2+ items moved at all (decay is total)\n";
  }
}

}  // namespace

int main() {
  const ScaleMode mode = GetScaleMode();
  {
    DenseConfig config;
    config.num_items = mode == ScaleMode::kSmall ? 300 : 1000;
    config.num_sources = 38;
    config.density = 0.36;
    config.accuracy_mean = 0.75;
    config.copier_fraction = 0.5;
    config.seed = 81;
    RunPanel("dense", GenerateDense(config));
  }
  {
    LongTailConfig config;
    config.num_items = mode == ScaleMode::kSmall ? 300 : 1000;
    config.num_sources = mode == ScaleMode::kSmall ? 210 : 700;
    config.avg_votes_per_item = 19.0;
    config.accuracy_mean = 0.7;
    config.accuracy_sd = 0.15;
    config.copier_fraction = 0.3;
    config.seed = 82;
    RunPanel("long-tail", GenerateLongTail(config));
  }
  return 0;
}
