// Figure 5: conflicting (crowd) feedback on the Books-like dataset.
//
// The crowd disagrees on x% of the items (x in 10..50); when it disagrees,
// the true claim only receives `consensus` probability mass (0.9 down to
// 0.1). Paper shape: all methods deteriorate as consensus drops; at 90%
// consensus performance is close to error-free; Approx-MEU is the most
// robust and only collapses when consensus is very low on many items.
#include <iostream>
#include <vector>

#include "core/oracle.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  const NamedDataset books = MakeBooksLike(mode);
  AccuFusion model;

  CurveOptions options;
  options.report_fractions = {0.05, 0.10, 0.15};
  options.seed = 11;

  const std::vector<double> fractions = {0.1, 0.3, 0.5};
  const std::vector<double> consensuses = {0.9, 0.7, 0.5, 0.1};
  const std::vector<std::string> strategies = {"qbc", "us", "approx_meu"};

  PrintBanner(std::cout, "Figure 5 — conflicting feedback (" + books.name +
                             "); cells: distance reduction after 15% of "
                             "items validated");
  for (double fraction : fractions) {
    std::cout << "\ncrowd disagrees on " << Num(fraction * 100.0, 0)
              << "% of items:\n";
    TextTable table({"consensus", "qbc", "us", "approx_meu"});
    for (double consensus : consensuses) {
      std::vector<std::string> row = {Num(consensus, 1)};
      for (const std::string& strategy : strategies) {
        ConflictingOracle oracle(fraction, consensus);
        const auto curve = RunCurve(books.data.db, books.data.truth, model,
                                    strategy, &oracle, options);
        if (!curve.ok()) {
          row.push_back("ERR");
          continue;
        }
        row.push_back(Pct(curve->points.back().distance_reduction_pct));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }
  std::cout << "\n(more negative = better; paper shape: degradation as "
               "consensus drops, Approx-MEU most robust)\n";
  return 0;
}
