// Figure 3: effectiveness of the ranking strategies, measured as the
// reduction in distance_to_ground_truth against the number of items
// validated, on all four dataset shapes with a perfect oracle.
//
// Paper shape to reproduce: GUB steepest; MEU/Approx-MEU beat the
// item-level strategies (QBC, US); Random is roughly linear; QBC > US.
// On the large dense Flights dataset Approx-MEU runs as Approx-MEU_10.
#include <iostream>
#include <vector>

#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

namespace {

void RunPanel(const NamedDataset& dataset,
              const std::vector<std::string>& strategies,
              const CurveOptions& options) {
  AccuFusion model;
  PrintBanner(std::cout,
              "Figure 3 — " + dataset.name + " (" +
                  std::to_string(dataset.data.db.num_items()) + " items, " +
                  std::to_string(dataset.data.db.ConflictingItems().size()) +
                  " conflicting)");
  std::vector<std::string> header = {"% validated"};
  for (const std::string& s : strategies) header.push_back(s);
  TextTable table(header);

  std::vector<CurveResult> curves;
  for (const std::string& strategy : strategies) {
    auto curve = RunCurvePerfect(dataset.data.db, dataset.data.truth, model,
                                 strategy, options);
    if (!curve.ok()) {
      std::cerr << strategy << " failed: " << curve.status() << "\n";
      return;
    }
    curves.push_back(std::move(curve).value());
  }
  for (std::size_t p = 0; p < options.report_fractions.size(); ++p) {
    std::vector<std::string> row = {
        Num(options.report_fractions[p] * 100.0, 0) + "%"};
    for (const CurveResult& curve : curves) {
      row.push_back(Pct(curve.points[p].distance_reduction_pct));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  MaybeExportCsv("fig3_" + dataset.name, table);
  std::cout << "(values: change in distance_to_ground_truth vs no feedback; "
               "more negative = better)\n";
}

}  // namespace

int main() {
  const ScaleMode mode = GetScaleMode();
  CurveOptions options;
  options.report_fractions = {0.01, 0.02, 0.05, 0.10, 0.15, 0.20};
  options.seed = 1234;

  // Books-like and FlightsDay-like: all six methods (MEU included — these
  // are the sizes MEU can still handle, §4.2.2).
  RunPanel(MakeBooksLike(mode),
           {"random", "qbc", "us", "meu", "approx_meu", "gub"}, options);
  RunPanel(MakeFlightsDayLike(mode),
           {"random", "qbc", "us", "meu", "approx_meu", "gub"}, options);
  // Population-like: MEU is already impractical at paper scale (Table 11
  // reports "> 5 min"); we keep it at small scale only.
  {
    const NamedDataset population = MakePopulationLike(mode);
    std::vector<std::string> strategies = {"random", "qbc", "us",
                                           "approx_meu", "gub"};
    if (mode == ScaleMode::kSmall) strategies.push_back("meu");
    RunPanel(population, strategies, options);
  }
  // Flights-like (large dense): Approx-MEU_10, per §5.1.
  {
    CurveOptions flights_options = options;
    flights_options.report_fractions = {0.01, 0.02, 0.05, 0.10};
    RunPanel(MakeFlightsLike(mode),
             {"random", "qbc", "us", "approx_meu_k:10"}, flights_options);
  }
  return 0;
}
