// Table 10: statistics of the (synthetic stand-in) datasets.
//
// Paper reference:
//            Books  FlightsDay  Population  Flights
//   Items    1263   5836        40696       121567
//   Sources  894    38          2545        38
//   Claims   24303  80452       46734       1931701
//
// Our synthetic stand-ins reproduce the structural shape (long-tail vs
// dense, votes/item, claim caps) at a scale selected by VERITAS_SCALE.
#include <iostream>

#include "data/dataset_stats.h"
#include "exp/report.h"
#include "exp/scale.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  PrintBanner(std::cout, "Table 10: statistics of datasets (scale=" +
                             ScaleModeName(mode) + ")");

  TextTable table({"dataset", "items", "sources", "observations",
                   "distinct-claims", "conflicting", "density",
                   "votes/item"});
  for (const NamedDataset& dataset :
       {MakeBooksLike(mode), MakeFlightsDayLike(mode),
        MakePopulationLike(mode), MakeFlightsLike(mode)}) {
    const DatasetStats stats = ComputeStats(dataset.data.db);
    table.AddRow({dataset.name, std::to_string(stats.items),
                  std::to_string(stats.sources),
                  std::to_string(stats.observations),
                  std::to_string(stats.distinct_claims),
                  std::to_string(stats.conflicting_items),
                  Num(stats.density, 4), Num(stats.avg_votes_per_item, 2)});
  }
  table.Print(std::cout);
  std::cout << "\nCSV:\n";
  table.PrintCsv(std::cout);
  return 0;
}
