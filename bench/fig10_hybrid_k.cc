// Figure 10 (§B.3): the hybrid approach combining QBC and Approx-MEU —
// effect of expanding the candidate/impact set (k% of items) on
// effectiveness.
//
// Paper shape: larger k converges faster; full Approx-MEU starts slower
// but eventually surpasses the k-limited variants; for early validations a
// small k already beats the full method's cost-effectiveness.
#include <iostream>
#include <vector>

#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

namespace {

void RunPanel(const NamedDataset& dataset, const CurveOptions& options) {
  AccuFusion model;
  const std::vector<std::string> strategies = {
      "approx_meu_k:5", "approx_meu_k:15", "approx_meu_k:30", "approx_meu"};
  PrintBanner(std::cout, "Figure 10 — Approx-MEU_k sweep (" + dataset.name +
                             ")");
  TextTable table({"% validated", "k=5", "k=15", "k=30", "full"});
  std::vector<CurveResult> curves;
  for (const std::string& strategy : strategies) {
    auto curve = RunCurvePerfect(dataset.data.db, dataset.data.truth, model,
                                 strategy, options);
    if (!curve.ok()) {
      std::cerr << strategy << " failed: " << curve.status() << "\n";
      return;
    }
    curves.push_back(std::move(curve).value());
  }
  for (std::size_t p = 0; p < options.report_fractions.size(); ++p) {
    std::vector<std::string> row = {
        Num(options.report_fractions[p] * 100.0, 0) + "%"};
    for (const CurveResult& curve : curves) {
      // A k-limited line "ends" when its candidate pool is exhausted
      // (§B.3); mark sampled-beyond-end points.
      const CurvePoint& point = curve.points[p];
      std::string cell = Pct(point.distance_reduction_pct);
      const std::size_t target = static_cast<std::size_t>(
          std::ceil(options.report_fractions[p] *
                    static_cast<double>(
                        dataset.data.db.ConflictingItems().size())));
      if (point.validated + 1 < target) cell += " (ended)";
      row.push_back(cell);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  const ScaleMode mode = GetScaleMode();
  CurveOptions options;
  options.report_fractions = {0.02, 0.05, 0.08, 0.10, 0.15, 0.20};
  options.seed = 23;
  RunPanel(MakeBooksLike(mode), options);
  RunPanel(MakeFlightsDayLike(mode), options);
  return 0;
}
