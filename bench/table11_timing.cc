// Table 11: average time to determine the next action.
//
// Paper reference (seconds/action, Java, 2.7 GHz laptop):
//              QBC     US     MEU       Approx-MEU
//   Books      0.01    0.001  11.73     0.231
//   FlightsDay 0.045   0.002  90.00     4.401
//   Population 0.14    0.011  > 5 min   9.728
//   Flights    7       4      --        146 (Approx-MEU_5) / 348 (_10)
//
// Shape to reproduce: QBC/US orders of magnitude faster than the
// decision-theoretic methods; Approx-MEU roughly two orders of magnitude
// faster than MEU. Absolute numbers differ (C++ vs Java, scaled datasets).
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/meu.h"
#include "core/oracle.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "exp/bench_json.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"
#include "fusion/delta_fusion.h"
#include "obs/metrics.h"
#include "obs/obs_flags.h"
#include "util/math.h"
#include "util/timer.h"

using namespace veritas;

namespace {

// The warm-start full-re-fusion path exactly as it existed before the
// incremental engine and the CompiledDatabase CSR views landed: Eq. (1)
// evaluated by pointer-chasing the nested Item/Claim/Source adjacency with a
// std::log per (claim, source) pair per iteration. Kept verbatim as the
// reference baseline the BENCH_fusion.json speedups are measured against.
class ReferenceAccuFusion : public FusionModel {
 public:
  std::string name() const override { return "accu_reference"; }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts) const override {
    return Fuse(db, priors, opts, nullptr);
  }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts,
                    const FusionResult* warm) const override {
    FusionResult result(db, opts.initial_accuracy);
    std::vector<double> accuracies =
        warm != nullptr ? warm->accuracies()
                        : std::vector<double>(db.num_sources(),
                                              opts.initial_accuracy);
    for (double& a : accuracies) a = ClampAccuracy(a);
    bool converged = false;
    std::size_t iter = 0;
    while (iter < opts.max_iterations) {
      ++iter;
      UpdateProbabilities(db, priors, accuracies, &result);
      const double delta = UpdateAccuracies(db, result, &accuracies);
      if (delta < opts.tolerance) {
        converged = true;
        break;
      }
    }
    UpdateProbabilities(db, priors, accuracies, &result);
    *result.mutable_accuracies() = std::move(accuracies);
    result.set_iterations(iter);
    result.set_converged(converged);
    return result;
  }

 private:
  static std::vector<double> ClaimProbabilities(
      const Database& db, ItemId item, const std::vector<double>& accuracies) {
    const Item& o = db.item(item);
    const double false_values = static_cast<double>(o.claims.size()) - 1.0;
    std::vector<double> scores(o.claims.size(), 0.0);
    for (ClaimIndex k = 0; k < o.claims.size(); ++k) {
      double score = 0.0;
      for (SourceId s : o.claims[k].sources) {
        const double a = ClampAccuracy(accuracies[s]);
        score += std::log(false_values * a / (1.0 - a));
      }
      scores[k] = score;
    }
    return SoftmaxFromLogScores(scores);
  }

  static void UpdateProbabilities(const Database& db, const PriorSet& priors,
                                  const std::vector<double>& accuracies,
                                  FusionResult* result) {
    for (ItemId i = 0; i < db.num_items(); ++i) {
      std::vector<double>* probs = result->mutable_item_probs(i);
      if (priors.Has(i)) {
        *probs = priors.Get(i);
        continue;
      }
      if (db.num_claims(i) == 1) {
        (*probs)[0] = 1.0;
        continue;
      }
      *probs = ClaimProbabilities(db, i, accuracies);
    }
  }

  static double UpdateAccuracies(const Database& db, const FusionResult& result,
                                 std::vector<double>* accuracies) {
    double max_delta = 0.0;
    for (SourceId j = 0; j < db.num_sources(); ++j) {
      const Source& s = db.source(j);
      if (s.votes.empty()) continue;
      double sum = 0.0;
      for (const Vote& v : s.votes) sum += result.prob(v.item, v.claim);
      const double updated =
          ClampAccuracy(sum / static_cast<double>(s.votes.size()));
      max_delta = std::max(max_delta, std::fabs(updated - (*accuracies)[j]));
      (*accuracies)[j] = updated;
    }
    return max_delta;
  }
};

// Mean select-time over a few validations (metrics recording off so only
// strategy time is measured). `use_delta` toggles the incremental engine
// for the MEU lookaheads and post-feedback re-fusions.
double MeanSelectSeconds(const NamedDataset& dataset, const FusionModel& model,
                         const std::string& strategy_name, std::size_t actions,
                         bool use_delta) {
  auto strategy = MakeStrategy(strategy_name);
  if (!strategy.ok()) return -1.0;
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = actions;
  options.record_metrics = false;
  options.fusion.use_delta_fusion = use_delta;
  Rng rng(7);
  FeedbackSession session(dataset.data.db, model, strategy->get(), &oracle,
                          dataset.data.truth, options, &rng);
  auto trace = session.Run();
  if (!trace.ok()) return -1.0;
  return trace->MeanSelectSeconds();
}

double MeanSelectSeconds(const NamedDataset& dataset,
                         const std::string& strategy_name,
                         std::size_t actions, bool use_delta = true) {
  AccuFusion model;
  return MeanSelectSeconds(dataset, model, strategy_name, actions, use_delta);
}

// One pruned delta-MEU session at a given lane count: mean select time, the
// exact selected-item sequence (the determinism witness CI diffs across
// thread counts), and the scan's pruning/steal counters.
struct ThreadSweepRun {
  double mean_select_seconds = -1.0;
  std::string selected;  // Space-joined item ids in validation order.
  std::size_t candidates_pruned = 0;
  std::size_t pool_steals = 0;
};

ThreadSweepRun RunMeuSession(const NamedDataset& dataset, Strategy* strategy,
                             std::size_t actions) {
  ThreadSweepRun out;
  AccuFusion model;
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = actions;
  options.record_metrics = false;
  options.fusion.use_delta_fusion = true;
  Rng rng(7);
  MetricsRegistry::Global().Reset();
  FeedbackSession session(dataset.data.db, model, strategy, &oracle,
                          dataset.data.truth, options, &rng);
  auto trace = session.Run();
  if (!trace.ok()) return out;
  out.mean_select_seconds = trace->MeanSelectSeconds();
  std::ostringstream sel;
  bool first = true;
  for (const SessionStep& step : trace->steps) {
    for (ItemId item : step.items) {
      if (!first) sel << " ";
      sel << item;
      first = false;
    }
  }
  out.selected = sel.str();
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  out.candidates_pruned =
      static_cast<std::size_t>(snap.Value("meu.candidates_pruned"));
  out.pool_steals = static_cast<std::size_t>(snap.Value("meu.pool_steals"));
  return out;
}

template <typename Fn>
double SecondsPerOp(Fn&& fn, std::size_t min_reps = 3,
                    double min_seconds = 0.2) {
  Timer timer;
  std::size_t reps = 0;
  do {
    fn();
    ++reps;
  } while (reps < min_reps || timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / static_cast<double>(reps);
}

// Folds a histogram's summary stats into a bench record under
// `prefix`_{count,mean,stddev,min,max} (all zero when never observed).
void SetHistStats(BenchJsonRecord& record, const std::string& prefix,
                  const MetricsSnapshot& snap, const std::string& name) {
  const HistogramSnapshot* h = snap.FindHistogram(name);
  HistogramSnapshot empty;
  if (h == nullptr) h = &empty;
  record.Set(prefix + "_count", static_cast<std::size_t>(h->count))
      .Set(prefix + "_mean", h->mean)
      .Set(prefix + "_stddev", h->stddev)
      .Set(prefix + "_min", h->count > 0 ? h->min : 0.0)
      .Set(prefix + "_max", h->max);
}

// Largest |p_delta - p_full| over all claims between a delta re-fusion and
// the warm full re-fusion it replaces (both after the same pin).
double MaxProbDiff(const Database& db, const FusionResult& a,
                   const FusionResult& b) {
  double max_diff = 0.0;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      max_diff = std::max(max_diff, std::fabs(a.prob(i, k) - b.prob(i, k)));
    }
  }
  return max_diff;
}

// Machine-readable baseline: per-dataset fusion timings (reference vs full
// vs warm vs delta), exact-MEU step latency on the pre-optimization
// reference path, on the current full path, and with the delta engine, the
// speedups, and the probability agreement between the paths. "baseline"
// fields always mean the ReferenceAccuFusion pointer-chasing path that the
// CompiledDatabase + DeltaFusion work replaced.
int WriteBenchJson(const std::string& path, ScaleMode mode) {
  BenchJsonFile json("veritas-bench-fusion-v1");
  json.SetMeta("scale", ScaleModeName(mode));
  json.SetMeta("workload", "table 11 (MEU datasets)");
  json.SetMeta("baseline", "pre-CSR warm-start full re-fusion (accu_reference)");

  double total_baseline_s = 0.0;
  double total_full_s = 0.0;
  double total_delta_s = 0.0;
  for (const NamedDataset& dataset :
       {MakeBooksLike(mode), MakeFlightsDayLike(mode),
        MakePopulationLike(mode)}) {
    const Database& db = dataset.data.db;
    AccuFusion model;
    ReferenceAccuFusion reference;
    FusionOptions opts;
    const FusionResult base = model.Fuse(db, PriorSet(), opts);
    const auto engine = DeltaFusionEngine::Create(db, model, opts);
    const ItemId pin = db.ConflictingItems().front();
    PriorSet priors;
    priors.SetExact(db, pin, 0);

    const double baseline_s =
        SecondsPerOp([&] { reference.Fuse(db, priors, opts, &base); });
    const double full_s =
        SecondsPerOp([&] { model.Fuse(db, priors, opts); });
    const double warm_s =
        SecondsPerOp([&] { model.Fuse(db, priors, opts, &base); });
    const double delta_s =
        SecondsPerOp([&] { engine->FuseWithPins(base, priors, {pin}); });
    const double prob_diff =
        MaxProbDiff(db, engine->FuseWithPins(base, priors, {pin}),
                    model.Fuse(db, priors, opts, &base));
    const double prob_diff_vs_baseline =
        MaxProbDiff(db, engine->FuseWithPins(base, priors, {pin}),
                    reference.Fuse(db, priors, opts, &base));

    const std::size_t actions = 3;
    const double meu_baseline_s = MeanSelectSeconds(
        dataset, reference, "meu", actions, /*use_delta=*/false);
    const double meu_full_s =
        MeanSelectSeconds(dataset, "meu", actions, /*use_delta=*/false);
    // Isolate the delta-path run in the registry so the per-phase record
    // below describes exactly this session (Reset keeps cached pointers).
    MetricsRegistry::Global().Reset();
    const double meu_delta_s =
        MeanSelectSeconds(dataset, "meu", actions, /*use_delta=*/true);
    const MetricsSnapshot phases = MetricsRegistry::Global().Snapshot();
    total_baseline_s += meu_baseline_s;
    total_full_s += meu_full_s;
    total_delta_s += meu_delta_s;

    json.Add("table11_meu")
        .Set("dataset", dataset.name)
        .Set("items", db.num_items())
        .Set("sources", db.num_sources())
        .Set("observations", db.num_observations())
        .Set("fusion_baseline_warm_ns_per_op", baseline_s * 1e9)
        .Set("fusion_full_ns_per_op", full_s * 1e9)
        .Set("fusion_warm_ns_per_op", warm_s * 1e9)
        .Set("fusion_delta_ns_per_op", delta_s * 1e9)
        .Set("max_abs_prob_diff", prob_diff)
        .Set("max_abs_prob_diff_vs_baseline", prob_diff_vs_baseline)
        .Set("fusion_tolerance", opts.tolerance)
        .Set("meu_step_baseline_seconds", meu_baseline_s)
        .Set("meu_step_full_seconds", meu_full_s)
        .Set("meu_step_delta_seconds", meu_delta_s)
        .Set("meu_step_speedup_vs_baseline", meu_baseline_s / meu_delta_s)
        .Set("meu_step_speedup_vs_full", meu_full_s / meu_delta_s);

    // Per-phase breakdown of the delta-path MEU session, straight from the
    // metrics registry: where the wall time went and what the fusion and
    // delta engines did to earn it.
    BenchJsonRecord& phase_rec =
        json.Add("table11_phases").Set("dataset", dataset.name);
    SetHistStats(phase_rec, "select_seconds", phases,
                 "session.select_seconds");
    SetHistStats(phase_rec, "fuse_seconds", phases, "session.fuse_seconds");
    SetHistStats(phase_rec, "oracle_seconds", phases,
                 "session.oracle_seconds");
    SetHistStats(phase_rec, "accu_iterations", phases,
                 "fusion.accu.iterations");
    phase_rec
        .Set("accu_fuse_calls",
             static_cast<std::size_t>(phases.Value("fusion.accu.fuse_calls")))
        .Set("meu_lookaheads",
             static_cast<std::size_t>(phases.Value("strategy.meu.lookaheads")))
        .Set("delta_lookahead_pins",
             static_cast<std::size_t>(phases.Value("delta.lookahead_pins")))
        .Set("delta_fuse_with_pins",
             static_cast<std::size_t>(phases.Value("delta.fuse_with_pins")))
        .Set("delta_fallbacks",
             static_cast<std::size_t>(phases.Value("delta.fallbacks")))
        .Set("oracle_retry_attempts",
             static_cast<std::size_t>(phases.Value("oracle.retry.attempts")))
        .Set("oracle_retry_retries",
             static_cast<std::size_t>(phases.Value("oracle.retry.retries")));

    // Thread sweep over the pruned work-stealing scan. The selected
    // sequence must be identical at every lane count (the pool's
    // determinism contract); CI diffs the 1-thread and 2-thread strings and
    // asserts candidates_pruned > 0.
    MeuScanOptions no_prune;
    no_prune.prune = false;
    MeuStrategy unpruned_meu(1, no_prune);
    const double meu_delta_unpruned_s =
        RunMeuSession(dataset, &unpruned_meu, actions).mean_select_seconds;
    ThreadSweepRun one_thread;
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2},
                                      std::size_t{4}, std::size_t{8}}) {
      MeuStrategy pruned_meu(threads);
      const ThreadSweepRun run = RunMeuSession(dataset, &pruned_meu, actions);
      if (threads == 1) one_thread = run;
      json.Add("table11_threads")
          .Set("dataset", dataset.name)
          .Set("threads", threads)
          .Set("meu_step_delta_seconds", run.mean_select_seconds)
          .Set("meu_step_unpruned_seconds", meu_delta_unpruned_s)
          .Set("candidates_pruned", run.candidates_pruned)
          .Set("pool_steals", run.pool_steals)
          .Set("selected", run.selected)
          .Set("selected_matches_1t", run.selected == one_thread.selected)
          .Set("speedup_vs_1t",
               run.mean_select_seconds > 0.0
                   ? one_thread.mean_select_seconds / run.mean_select_seconds
                   : 0.0)
          .Set("speedup_vs_unpruned",
               run.mean_select_seconds > 0.0
                   ? meu_delta_unpruned_s / run.mean_select_seconds
                   : 0.0);
    }
  }
  json.Add("meu_speedup")
      .Set("total_baseline_seconds", total_baseline_s)
      .Set("total_full_seconds", total_full_s)
      .Set("total_delta_seconds", total_delta_s)
      .Set("speedup_vs_baseline", total_baseline_s / total_delta_s)
      .Set("speedup_vs_full", total_full_s / total_delta_s);

  // Merge-upsert instead of overwrite: other bench binaries (scale_sweep,
  // replay) land their records in the same BENCH_fusion.json, keyed so a
  // re-run replaces its own rows and leaves everyone else's alone.
  const Status status = json.MergeInto(path, {"dataset", "threads"});
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote fusion baseline to " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ScaleMode mode = GetScaleMode();
  const ObsOutputs obs = ScanObsFlags(argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      const int rc = WriteBenchJson(argv[i + 1], mode);
      const Status obs_status = WriteObsOutputs(obs);
      if (!obs_status.ok()) {
        std::cerr << "error: " << obs_status.ToString() << "\n";
        return 1;
      }
      return rc;
    }
  }
  PrintBanner(std::cout,
              "Table 11: seconds to determine the next action (scale=" +
                  ScaleModeName(mode) + ")");

  {
    TextTable table({"dataset", "qbc", "us", "meu", "approx_meu"});
    for (const NamedDataset& dataset :
         {MakeBooksLike(mode), MakeFlightsDayLike(mode),
          MakePopulationLike(mode)}) {
      std::vector<std::string> row = {dataset.name};
      for (const char* strategy : {"qbc", "us", "meu", "approx_meu"}) {
        // MEU on the Population-like shape is the paper's "> 5 min" cell;
        // keep it tractable by skipping at larger scales.
        if (std::string(strategy) == "meu" &&
            dataset.name == "Population-like" && mode != ScaleMode::kSmall) {
          row.push_back("(skipped)");
          continue;
        }
        const std::size_t actions = std::string(strategy) == "meu" ? 3 : 5;
        row.push_back(Secs(MeanSelectSeconds(dataset, strategy, actions)));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }

  // The large dense dataset: QBC / US / Approx-MEU_5 / Approx-MEU_10
  // (MEU cannot scale there, §5.1).
  {
    const NamedDataset flights = MakeFlightsLike(mode);
    TextTable table(
        {"dataset", "qbc", "us", "approx_meu_k:5", "approx_meu_k:10"});
    std::vector<std::string> row = {flights.name};
    for (const char* strategy :
         {"qbc", "us", "approx_meu_k:5", "approx_meu_k:10"}) {
      row.push_back(Secs(MeanSelectSeconds(flights, strategy, 3)));
    }
    table.AddRow(row);
    table.Print(std::cout);
  }
  std::cout << "(paper shape: QBC/US << Approx-MEU << MEU; absolute values "
               "differ by hardware/scale)\n";
  const Status obs_status = WriteObsOutputs(obs);
  if (!obs_status.ok()) {
    std::cerr << "error: " << obs_status.ToString() << "\n";
    return 1;
  }
  return 0;
}
