// Table 11: average time to determine the next action.
//
// Paper reference (seconds/action, Java, 2.7 GHz laptop):
//              QBC     US     MEU       Approx-MEU
//   Books      0.01    0.001  11.73     0.231
//   FlightsDay 0.045   0.002  90.00     4.401
//   Population 0.14    0.011  > 5 min   9.728
//   Flights    7       4      --        146 (Approx-MEU_5) / 348 (_10)
//
// Shape to reproduce: QBC/US orders of magnitude faster than the
// decision-theoretic methods; Approx-MEU roughly two orders of magnitude
// faster than MEU. Absolute numbers differ (C++ vs Java, scaled datasets).
#include <iostream>
#include <vector>

#include "core/oracle.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

namespace {

// Mean select-time over a few validations (metrics recording off so only
// strategy time is measured).
double MeanSelectSeconds(const NamedDataset& dataset,
                         const std::string& strategy_name,
                         std::size_t actions) {
  AccuFusion model;
  auto strategy = MakeStrategy(strategy_name);
  if (!strategy.ok()) return -1.0;
  PerfectOracle oracle;
  SessionOptions options;
  options.max_validations = actions;
  options.record_metrics = false;
  Rng rng(7);
  FeedbackSession session(dataset.data.db, model, strategy->get(), &oracle,
                          dataset.data.truth, options, &rng);
  auto trace = session.Run();
  if (!trace.ok()) return -1.0;
  return trace->MeanSelectSeconds();
}

}  // namespace

int main() {
  const ScaleMode mode = GetScaleMode();
  PrintBanner(std::cout,
              "Table 11: seconds to determine the next action (scale=" +
                  ScaleModeName(mode) + ")");

  {
    TextTable table({"dataset", "qbc", "us", "meu", "approx_meu"});
    for (const NamedDataset& dataset :
         {MakeBooksLike(mode), MakeFlightsDayLike(mode),
          MakePopulationLike(mode)}) {
      std::vector<std::string> row = {dataset.name};
      for (const char* strategy : {"qbc", "us", "meu", "approx_meu"}) {
        // MEU on the Population-like shape is the paper's "> 5 min" cell;
        // keep it tractable by skipping at larger scales.
        if (std::string(strategy) == "meu" &&
            dataset.name == "Population-like" && mode != ScaleMode::kSmall) {
          row.push_back("(skipped)");
          continue;
        }
        const std::size_t actions = std::string(strategy) == "meu" ? 3 : 5;
        row.push_back(Secs(MeanSelectSeconds(dataset, strategy, actions)));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  }

  // The large dense dataset: QBC / US / Approx-MEU_5 / Approx-MEU_10
  // (MEU cannot scale there, §5.1).
  {
    const NamedDataset flights = MakeFlightsLike(mode);
    TextTable table(
        {"dataset", "qbc", "us", "approx_meu_k:5", "approx_meu_k:10"});
    std::vector<std::string> row = {flights.name};
    for (const char* strategy :
         {"qbc", "us", "approx_meu_k:5", "approx_meu_k:10"}) {
      row.push_back(Secs(MeanSelectSeconds(flights, strategy, 3)));
    }
    table.AddRow(row);
    table.Print(std::cout);
  }
  std::cout << "(paper shape: QBC/US << Approx-MEU << MEU; absolute values "
               "differ by hardware/scale)\n";
  return 0;
}
