// Figure 7: incorrect feedback on the FlightsDay-like (dense) dataset.
//
// The user is plainly wrong on w% of the validated items (truth zeroed,
// uniform over the rest) for w in {0, 10, 20, 30}. Paper shape: methods
// worsen as w grows, but on dense data QBC and Approx-MEU with w = 10%
// still beat error-free US.
#include <iostream>
#include <vector>

#include "core/oracle.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  const NamedDataset flights = MakeFlightsDayLike(mode);
  AccuFusion model;

  CurveOptions options;
  options.report_fractions = {0.05, 0.10, 0.15, 0.20};
  options.seed = 17;

  const std::vector<double> wrong_rates = {0.0, 0.1, 0.2, 0.3};
  const std::vector<std::string> strategies = {"qbc", "us", "approx_meu"};

  PrintBanner(std::cout, "Figure 7 — incorrect feedback (" + flights.name +
                             "); cells: distance reduction after 20% of "
                             "items validated");
  TextTable table({"strategy", "wrong=0%", "wrong=10%", "wrong=20%",
                   "wrong=30%"});
  for (const std::string& strategy : strategies) {
    std::vector<std::string> row = {strategy};
    for (double rate : wrong_rates) {
      IncorrectOracle oracle(rate);
      const auto curve = RunCurve(flights.data.db, flights.data.truth, model,
                                  strategy, &oracle, options);
      if (!curve.ok()) {
        row.push_back("ERR");
        continue;
      }
      row.push_back(Pct(curve->points.back().distance_reduction_pct));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "\n(more negative = better; paper shape: higher wrong-rate "
               "-> worse, QBC/Approx-MEU with 10% errors still competitive "
               "with error-free US)\n";
  return 0;
}
