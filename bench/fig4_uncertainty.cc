// Figure 4: practicability of the entropy utility — reduction in
// uncertainty (total output entropy) for the entropy-utility methods (MEU,
// Approx-MEU) against the ground-truth-based method (GUB).
//
// Paper shape to reproduce: MEU and Approx-MEU reduce *uncertainty* at
// least as fast as GUB (they optimize it directly), while GUB converges to
// ground truth fastest — the two metrics are correlated but not identical.
#include <iostream>
#include <vector>

#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

namespace {

void RunPanel(const NamedDataset& dataset, const CurveOptions& options) {
  AccuFusion model;
  const std::vector<std::string> strategies = {"gub", "meu", "approx_meu"};
  PrintBanner(std::cout, "Figure 4 — " + dataset.name);
  TextTable uncertainty({"% validated", "gub", "meu", "approx_meu"});
  TextTable distance({"% validated", "gub", "meu", "approx_meu"});

  std::vector<CurveResult> curves;
  for (const std::string& strategy : strategies) {
    auto curve = RunCurvePerfect(dataset.data.db, dataset.data.truth, model,
                                 strategy, options);
    if (!curve.ok()) {
      std::cerr << strategy << " failed: " << curve.status() << "\n";
      return;
    }
    curves.push_back(std::move(curve).value());
  }
  for (std::size_t p = 0; p < options.report_fractions.size(); ++p) {
    std::vector<std::string> urow = {
        Num(options.report_fractions[p] * 100.0, 0) + "%"};
    std::vector<std::string> drow = urow;
    for (const CurveResult& curve : curves) {
      urow.push_back(Pct(curve.points[p].uncertainty_reduction_pct));
      drow.push_back(Pct(curve.points[p].distance_reduction_pct));
    }
    uncertainty.AddRow(urow);
    distance.AddRow(drow);
  }
  std::cout << "reduction in uncertainty (entropy):\n";
  uncertainty.Print(std::cout);
  MaybeExportCsv("fig4_uncertainty_" + dataset.name, uncertainty);
  std::cout << "reduction in distance_to_ground_truth (context):\n";
  distance.Print(std::cout);
}

}  // namespace

int main() {
  const ScaleMode mode = GetScaleMode();
  CurveOptions options;
  options.report_fractions = {0.02, 0.05, 0.10, 0.15, 0.20};
  options.seed = 91;
  RunPanel(MakeBooksLike(mode), options);
  RunPanel(MakeFlightsDayLike(mode), options);
  return 0;
}
