// google-benchmark micro-benchmarks for the fusion substrate: iteration
// cost of each model, warm-start benefit, incremental (delta) re-fusion,
// and Eq. (1) primitives.
//
// `--json <path>` skips the google-benchmark run and instead writes the
// machine-readable fusion baseline (full vs warm vs delta ns/op, MEU
// entropy-pin latency, dataset sizes) via exp/bench_json.h.
#include <benchmark/benchmark.h>

#include <iostream>
#include <string>

#include "data/synthetic.h"
#include "exp/bench_json.h"
#include "fusion/accu.h"
#include "fusion/delta_fusion.h"
#include "fusion/fusion_factory.h"
#include "util/timer.h"

using namespace veritas;

namespace {

SyntheticDataset MakeDataset(std::size_t items) {
  DenseConfig config;
  config.num_items = items;
  config.num_sources = 38;
  config.density = 0.36;
  config.seed = 99;
  return GenerateDense(config);
}

void BM_AccuFuse(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(state.range(0));
  AccuFusion model;
  FusionOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Fuse(data.db, opts));
  }
  state.SetItemsProcessed(state.iterations() * data.db.num_items());
}
BENCHMARK(BM_AccuFuse)->Arg(200)->Arg(1000)->Arg(4000);

void BM_AccuFuseWarmStart(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(state.range(0));
  AccuFusion model;
  FusionOptions opts;
  const FusionResult warm = model.Fuse(data.db, opts);
  PriorSet priors;
  priors.SetExact(data.db, data.db.ConflictingItems().front(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Fuse(data.db, priors, opts, &warm));
  }
  state.SetItemsProcessed(state.iterations() * data.db.num_items());
}
BENCHMARK(BM_AccuFuseWarmStart)->Arg(200)->Arg(1000)->Arg(4000);

void BM_AccuDeltaFuse(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(state.range(0));
  AccuFusion model;
  FusionOptions opts;
  const FusionResult warm = model.Fuse(data.db, opts);
  const auto engine = DeltaFusionEngine::Create(data.db, model, opts);
  const ItemId pin = data.db.ConflictingItems().front();
  PriorSet priors;
  priors.SetExact(data.db, pin, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->FuseWithPins(warm, priors, {pin}));
  }
  state.SetItemsProcessed(state.iterations() * data.db.num_items());
}
BENCHMARK(BM_AccuDeltaFuse)->Arg(200)->Arg(1000)->Arg(4000);

// The MEU inner loop: expected entropy of one hypothetical pin, computed
// from a shared base state with O(frontier) scratch.
void BM_MeuEntropyAfterPin(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(state.range(0));
  AccuFusion model;
  FusionOptions opts;
  const FusionResult warm = model.Fuse(data.db, opts);
  const auto engine = DeltaFusionEngine::Create(data.db, model, opts);
  const DeltaFusionEngine::BaseState base = engine->PrepareBase(warm);
  DeltaFusionEngine::Workspace ws;
  const PriorSet priors;
  const std::vector<ItemId> conflicting = data.db.ConflictingItems();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine->EntropyAfterExactPin(
        base, ws, priors, conflicting[i], 0));
    i = (i + 1) % conflicting.size();
  }
}
BENCHMARK(BM_MeuEntropyAfterPin)->Arg(200)->Arg(1000)->Arg(4000);

void BM_FusionModelComparison(benchmark::State& state,
                              const std::string& name) {
  const SyntheticDataset data = MakeDataset(1000);
  auto model = MakeFusionModel(name);
  FusionOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*model)->Fuse(data.db, PriorSet(), opts));
  }
}
BENCHMARK_CAPTURE(BM_FusionModelComparison, voting, "voting");
BENCHMARK_CAPTURE(BM_FusionModelComparison, accu, "accu");
BENCHMARK_CAPTURE(BM_FusionModelComparison, truthfinder, "truthfinder");
BENCHMARK_CAPTURE(BM_FusionModelComparison, pooled, "pooled_investment");

void BM_ClaimProbabilities(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(1000);
  AccuFusion model;
  const FusionResult fused = model.Fuse(data.db, FusionOptions{});
  ItemId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AccuFusion::ClaimProbabilities(
        data.db, i, fused.accuracies()));
    i = (i + 1) % static_cast<ItemId>(data.db.num_items());
  }
}
BENCHMARK(BM_ClaimProbabilities);

void BM_TotalEntropy(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(4000);
  AccuFusion model;
  const FusionResult fused = model.Fuse(data.db, FusionOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused.TotalEntropy());
  }
}
BENCHMARK(BM_TotalEntropy);

// Wall-clock seconds per call, measured with enough repetitions to swamp
// timer noise (used by the --json path; google-benchmark handles the rest).
template <typename Fn>
double SecondsPerOp(Fn&& fn, std::size_t min_reps = 5,
                    double min_seconds = 0.2) {
  Timer timer;
  std::size_t reps = 0;
  do {
    fn();
    ++reps;
  } while (reps < min_reps || timer.ElapsedSeconds() < min_seconds);
  return timer.ElapsedSeconds() / static_cast<double>(reps);
}

int WriteJsonBaseline(const std::string& path) {
  BenchJsonFile json("veritas-bench-fusion-micro-v1");
  json.SetMeta("workload", "dense synthetic, 38 sources, density 0.36");
  for (const std::size_t items : {std::size_t{200}, std::size_t{1000},
                                  std::size_t{4000}}) {
    const SyntheticDataset data = MakeDataset(items);
    AccuFusion model;
    FusionOptions opts;
    const FusionResult warm = model.Fuse(data.db, opts);
    const auto engine = DeltaFusionEngine::Create(data.db, model, opts);
    const ItemId pin = data.db.ConflictingItems().front();
    PriorSet priors;
    priors.SetExact(data.db, pin, 0);

    const double full_s =
        SecondsPerOp([&] { model.Fuse(data.db, priors, opts); });
    const double warm_s =
        SecondsPerOp([&] { model.Fuse(data.db, priors, opts, &warm); });
    const double delta_s =
        SecondsPerOp([&] { engine->FuseWithPins(warm, priors, {pin}); });

    const DeltaFusionEngine::BaseState base = engine->PrepareBase(warm);
    DeltaFusionEngine::Workspace ws;
    const PriorSet no_priors;
    const std::vector<ItemId> conflicting = data.db.ConflictingItems();
    std::size_t i = 0;
    const double pin_s = SecondsPerOp([&] {
      benchmark::DoNotOptimize(engine->EntropyAfterExactPin(
          base, ws, no_priors, conflicting[i], 0));
      i = (i + 1) % conflicting.size();
    });

    json.Add("accu_refusion")
        .Set("items", data.db.num_items())
        .Set("sources", data.db.num_sources())
        .Set("observations", data.db.num_observations())
        .Set("full_ns_per_op", full_s * 1e9)
        .Set("warm_ns_per_op", warm_s * 1e9)
        .Set("delta_ns_per_op", delta_s * 1e9)
        .Set("entropy_pin_ns_per_op", pin_s * 1e9)
        .Set("delta_vs_warm_speedup", warm_s / delta_s);
  }
  // Upsert by record name: the file is shared with the other bench binaries,
  // each of which owns its own record names.
  const Status status = json.MergeInto(path);
  if (!status.ok()) {
    std::cerr << "error: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote fusion micro baseline to " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      return WriteJsonBaseline(argv[i + 1]);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
