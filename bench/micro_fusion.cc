// google-benchmark micro-benchmarks for the fusion substrate: iteration
// cost of each model, warm-start benefit, and Eq. (1) primitives.
#include <benchmark/benchmark.h>

#include "data/synthetic.h"
#include "fusion/accu.h"
#include "fusion/fusion_factory.h"

using namespace veritas;

namespace {

SyntheticDataset MakeDataset(std::size_t items) {
  DenseConfig config;
  config.num_items = items;
  config.num_sources = 38;
  config.density = 0.36;
  config.seed = 99;
  return GenerateDense(config);
}

void BM_AccuFuse(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(state.range(0));
  AccuFusion model;
  FusionOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Fuse(data.db, opts));
  }
  state.SetItemsProcessed(state.iterations() * data.db.num_items());
}
BENCHMARK(BM_AccuFuse)->Arg(200)->Arg(1000)->Arg(4000);

void BM_AccuFuseWarmStart(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(state.range(0));
  AccuFusion model;
  FusionOptions opts;
  const FusionResult warm = model.Fuse(data.db, opts);
  PriorSet priors;
  priors.SetExact(data.db, data.db.ConflictingItems().front(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Fuse(data.db, priors, opts, &warm));
  }
  state.SetItemsProcessed(state.iterations() * data.db.num_items());
}
BENCHMARK(BM_AccuFuseWarmStart)->Arg(200)->Arg(1000)->Arg(4000);

void BM_FusionModelComparison(benchmark::State& state,
                              const std::string& name) {
  const SyntheticDataset data = MakeDataset(1000);
  auto model = MakeFusionModel(name);
  FusionOptions opts;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*model)->Fuse(data.db, PriorSet(), opts));
  }
}
BENCHMARK_CAPTURE(BM_FusionModelComparison, voting, "voting");
BENCHMARK_CAPTURE(BM_FusionModelComparison, accu, "accu");
BENCHMARK_CAPTURE(BM_FusionModelComparison, truthfinder, "truthfinder");
BENCHMARK_CAPTURE(BM_FusionModelComparison, pooled, "pooled_investment");

void BM_ClaimProbabilities(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(1000);
  AccuFusion model;
  const FusionResult fused = model.Fuse(data.db, FusionOptions{});
  ItemId i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(AccuFusion::ClaimProbabilities(
        data.db, i, fused.accuracies()));
    i = (i + 1) % static_cast<ItemId>(data.db.num_items());
  }
}
BENCHMARK(BM_ClaimProbabilities);

void BM_TotalEntropy(benchmark::State& state) {
  const SyntheticDataset data = MakeDataset(4000);
  AccuFusion model;
  const FusionResult fused = model.Fuse(data.db, FusionOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(fused.TotalEntropy());
  }
}
BENCHMARK(BM_TotalEntropy);

}  // namespace

BENCHMARK_MAIN();
