// Ablation: the two readings of GUB (§4.2.1 / Definition 4).
//
// The paper defines VPI as an expectation over hypothesized claims
// (Definition 4) but describes GUB as "selects an action that results in
// the highest ground truth utility gain". We implement both: kOracle pins
// the known-true claim directly; kExpectation weights every hypothesized
// claim by its fusion probability. This ablation compares them.
#include <iostream>

#include "data/synthetic.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  DenseConfig config;
  config.num_items = mode == ScaleMode::kSmall ? 200 : 600;
  config.num_sources = 20;
  config.density = 0.4;
  config.accuracy_mean = 0.75;
  config.copier_fraction = 0.4;
  config.seed = 91;
  const SyntheticDataset data = GenerateDense(config);

  AccuFusion model;
  CurveOptions options;
  options.report_fractions = {0.02, 0.05, 0.10, 0.20};
  options.seed = 17;

  PrintBanner(std::cout, "Ablation — GUB modes (oracle vs Definition-4 "
                         "expectation)");
  TextTable table({"% validated", "gub (oracle)", "gub (expectation)",
                   "meu (no truth)"});
  std::vector<CurveResult> curves;
  for (const char* strategy : {"gub", "gub_expectation", "meu"}) {
    auto curve =
        RunCurvePerfect(data.db, data.truth, model, strategy, options);
    if (!curve.ok()) {
      std::cerr << strategy << " failed: " << curve.status() << "\n";
      return 1;
    }
    curves.push_back(std::move(curve).value());
  }
  for (std::size_t p = 0; p < options.report_fractions.size(); ++p) {
    table.AddRow({Num(options.report_fractions[p] * 100.0, 0) + "%",
                  Pct(curves[0].points[p].distance_reduction_pct),
                  Pct(curves[1].points[p].distance_reduction_pct),
                  Pct(curves[2].points[p].distance_reduction_pct)});
  }
  table.Print(std::cout);
  TextTable timing({"strategy", "s/action"});
  timing.AddRow({"gub (oracle)", Secs(curves[0].mean_select_seconds)});
  timing.AddRow({"gub (expectation)", Secs(curves[1].mean_select_seconds)});
  timing.AddRow({"meu", Secs(curves[2].mean_select_seconds)});
  timing.Print(std::cout);
  std::cout
      << "(the oracle mode is the clear upper bound. The literal\n"
         " Definition-4 expectation degenerates: weighting hypothesized\n"
         " claims by fusion's own beliefs makes already-certain items look\n"
         " best — their expected utility change is ~0 while uncertain\n"
         " items' minority branches look harmful — so it validates items\n"
         " that change nothing. This is the same quirk that makes the\n"
         " paper's worked MEU example select the no-op item O4 in Table 6,\n"
         " and it is why GUB is implemented in oracle mode by default.)\n";
  return 0;
}
