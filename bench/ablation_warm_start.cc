// Ablation: warm-started vs cold-started lookahead re-fusions in MEU.
//
// DESIGN.md calls out warm starting as an implementation choice on top of
// the paper (which does not specify the lookahead schedule). This ablation
// verifies the two executions pick (nearly always) the same actions while
// the warm start saves a large constant factor in fusion iterations.
#include <iostream>

#include "core/meu.h"
#include "data/synthetic.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"
#include "util/timer.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  DenseConfig config;
  config.num_items = mode == ScaleMode::kSmall ? 150 : 400;
  config.num_sources = 20;
  config.density = 0.4;
  config.accuracy_mean = 0.75;
  config.copier_fraction = 0.3;
  config.seed = 71;
  const SyntheticDataset data = GenerateDense(config);

  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(data.db, priors, opts);

  PrintBanner(std::cout,
              "Ablation — MEU lookahead: warm-started vs cold-started "
              "re-fusion (" + std::to_string(data.db.num_items()) +
                  " items)");

  StrategyContext ctx;
  ctx.db = &data.db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;

  MeuStrategy meu;
  const std::size_t picks = 5;

  ctx.warm_start_lookahead = true;
  Timer warm_timer;
  const auto warm_batch = meu.SelectBatch(ctx, picks);
  const double warm_seconds = warm_timer.ElapsedSeconds();

  ctx.warm_start_lookahead = false;
  Timer cold_timer;
  const auto cold_batch = meu.SelectBatch(ctx, picks);
  const double cold_seconds = cold_timer.ElapsedSeconds();

  std::size_t agreement = 0;
  for (std::size_t i = 0; i < picks; ++i) {
    if (i < warm_batch.size() && i < cold_batch.size() &&
        warm_batch[i] == cold_batch[i]) {
      ++agreement;
    }
  }

  TextTable table({"variant", "decision time", "top pick", "top-5 overlap"});
  table.AddRow({"warm start", Secs(warm_seconds),
                data.db.item(warm_batch.front()).name,
                std::to_string(agreement) + "/" + std::to_string(picks)});
  table.AddRow({"cold start", Secs(cold_seconds),
                data.db.item(cold_batch.front()).name, "-"});
  table.Print(std::cout);
  std::cout << "speedup: " << Num(cold_seconds / warm_seconds, 1)
            << "x; identical top pick: "
            << (warm_batch.front() == cold_batch.front() ? "yes" : "no")
            << "\n";
  return 0;
}
