// Scale sweep: the sharded MEU scale-out (DESIGN.md §5h) measured on the
// million-item scaled_longtail shape (data/synthetic.h GenerateFromSpec).
//
// For each swept database size this driver times one MEU SelectBatch step
// unsharded (FusionOptions::shards = 1, the classic scan) and sharded, on
// the same single-thread budget, and checks two contracts:
//   * selections: the sharded two-stage scan must pick exactly the items
//     the unsharded scan picks, at every size (exit nonzero on mismatch);
//   * cost: at full scale the sharded step must be at least 3x faster than
//     the unsharded step, and the sharded step time must grow sub-linearly
//     in the item count from the smallest to the largest size (the stage-1
//     confined lookaheads are independent of total database size; only the
//     constant-size stage-2 pool pays full-reach lookaheads).
// Results land as `scale_sweep` records in BENCH_fusion.json via the
// merge-safe upsert (--json <path>), keyed by (dataset, items, shards).
//
// VERITAS_SCALE=small runs a single 50k-item size with shards {1, 4} and
// only enforces the selection contract — the CI scale-smoke configuration.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "core/meu.h"
#include "core/strategy.h"
#include "data/synthetic.h"
#include "exp/bench_json.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/accu.h"
#include "fusion/delta_fusion.h"
#include "fusion/priors.h"
#include "obs/metrics.h"
#include "util/timer.h"

using namespace veritas;

namespace {

constexpr std::size_t kBatch = 2;
constexpr double kRequiredSpeedup = 3.0;

struct StepRun {
  double seconds = -1.0;
  std::vector<ItemId> selected;
  /// Exact lookahead pins and branch-and-bound prunes per step (where the
  /// wall time goes: a pruned candidate costs O(1), a pin O(its ripple)).
  std::size_t lookahead_pins = 0;
  std::size_t candidates_pruned = 0;
};

std::string JoinIds(const std::vector<ItemId>& ids) {
  std::ostringstream out;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out << " ";
    out << ids[i];
  }
  return out.str();
}

// One timed MEU step at a given shard count. A fresh strategy per
// configuration; the untimed warmup pays the one-time costs a session
// amortizes across rounds (workspace sync, shard partition build), so the
// timed reps measure the steady-state per-step cost.
StepRun TimeStep(const StrategyContext& ctx, std::size_t reps) {
  MeuStrategy meu(/*num_threads=*/1);
  StepRun run;
  run.selected = meu.SelectBatch(ctx, kBatch);  // Warmup.
  MetricsRegistry::Global().Reset();
  double total = 0.0;
  for (std::size_t r = 0; r < reps; ++r) {
    meu.Reset();
    Timer timer;
    const std::vector<ItemId> selected = meu.SelectBatch(ctx, kBatch);
    total += timer.ElapsedSeconds();
    if (selected != run.selected) {
      // A step must be reproducible against a fixed fusion state.
      std::cerr << "error: non-deterministic selection across reps\n";
      run.seconds = -1.0;
      return run;
    }
  }
  run.seconds = total / static_cast<double>(reps);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  run.lookahead_pins =
      static_cast<std::size_t>(snap.Value("delta.lookahead_pins")) / reps;
  run.candidates_pruned =
      static_cast<std::size_t>(snap.Value("meu.candidates_pruned")) / reps;
  return run;
}

int RunSweep(const std::string& json_path, ScaleMode mode) {
  const bool small = mode == ScaleMode::kSmall;
  const std::vector<std::size_t> sizes =
      small ? std::vector<std::size_t>{50'000}
            : std::vector<std::size_t>{10'000, 100'000, 1'000'000};
  const std::size_t shard_count = small ? 4 : 8;

  BenchJsonFile json("veritas-bench-fusion-v1");
  json.SetMeta("scale_sweep_mode", ScaleModeName(mode));

  TextTable table({"items", "sources", "observations", "contested",
                   "t_shards1_s", "t_sharded_s", "speedup", "pins_1",
                   "pins_sharded", "match"});
  bool failed = false;
  std::vector<double> sharded_seconds;
  std::vector<double> unsharded_seconds;
  double speedup_at_max = 0.0;

  for (const std::size_t n : sizes) {
    DatasetSpec spec;
    spec.name = "scaled_longtail";
    spec.shape = "scaled_longtail";
    spec.num_items = n;
    spec.num_sources = std::max<std::size_t>(4096, n / 10);
    spec.seed = 42;
    GenerationReport report;
    Result<SyntheticDataset> data = GenerateFromSpec(spec, &report);
    if (!data.ok()) {
      std::cerr << "error: " << data.status().ToString() << "\n";
      return 1;
    }
    const Database& db = data->db;

    AccuFusion model;
    FusionOptions opts;
    const FusionResult base = model.Fuse(db, PriorSet(), opts);
    const auto engine = DeltaFusionEngine::Create(db, model, opts);
    if (engine == nullptr) {
      std::cerr << "error: delta engine unavailable for accu\n";
      return 1;
    }

    const PriorSet priors;
    StrategyContext ctx;
    ctx.db = &db;
    ctx.fusion = &base;
    ctx.priors = &priors;
    ctx.model = &model;
    ctx.ground_truth = &data->truth;
    ctx.delta = engine.get();

    const std::size_t reps = n >= 500'000 ? 1 : 3;
    FusionOptions unsharded_opts = opts;
    unsharded_opts.shards = 1;
    ctx.fusion_opts = &unsharded_opts;
    const StepRun flat = TimeStep(ctx, reps);
    FusionOptions sharded_opts = opts;
    sharded_opts.shards = shard_count;
    ctx.fusion_opts = &sharded_opts;
    const StepRun sharded = TimeStep(ctx, reps);
    if (flat.seconds < 0.0 || sharded.seconds < 0.0) return 1;

    const bool match = sharded.selected == flat.selected;
    const double speedup = sharded.seconds > 0.0
                               ? flat.seconds / sharded.seconds
                               : 0.0;
    if (!match) {
      std::cerr << "error: shards=" << shard_count
                << " selected [" << JoinIds(sharded.selected)
                << "] but shards=1 selected [" << JoinIds(flat.selected)
                << "] at " << n << " items\n";
      failed = true;
    }
    unsharded_seconds.push_back(flat.seconds);
    sharded_seconds.push_back(sharded.seconds);
    speedup_at_max = speedup;

    for (const bool is_sharded : {false, true}) {
      const StepRun& run = is_sharded ? sharded : flat;
      json.Add("scale_sweep")
          .Set("dataset", spec.name)
          .Set("items", report.num_items)
          .Set("shards", is_sharded ? shard_count : std::size_t{1})
          .Set("sources", report.num_sources)
          .Set("observations", report.num_observations)
          .Set("contested", report.contested_items)
          .Set("head_sources", report.head_sources)
          .Set("batch", kBatch)
          .Set("threads", std::size_t{1})
          .Set("step_seconds", run.seconds)
          .Set("lookahead_pins", run.lookahead_pins)
          .Set("candidates_pruned", run.candidates_pruned)
          .Set("selected", JoinIds(run.selected))
          .Set("selections_match_unsharded", is_sharded ? match : true)
          .Set("speedup_vs_unsharded", is_sharded ? speedup : 1.0);
    }
    table.AddRow({std::to_string(n), std::to_string(report.num_sources),
                  std::to_string(report.num_observations),
                  std::to_string(report.contested_items), Secs(flat.seconds),
                  Secs(sharded.seconds),
                  std::to_string(speedup).substr(0, 5),
                  std::to_string(flat.lookahead_pins),
                  std::to_string(sharded.lookahead_pins),
                  match ? "yes" : "NO"});
  }

  // Growth: fit t ~ n^alpha between the smallest and largest size. The
  // sharded exponent is the scale-out claim; the unsharded one is context.
  double sharded_exponent = 0.0;
  double unsharded_exponent = 0.0;
  const bool multi_size = sizes.size() > 1;
  if (multi_size) {
    const double n_ratio = static_cast<double>(sizes.back()) /
                           static_cast<double>(sizes.front());
    sharded_exponent =
        std::log(sharded_seconds.back() / sharded_seconds.front()) /
        std::log(n_ratio);
    unsharded_exponent =
        std::log(unsharded_seconds.back() / unsharded_seconds.front()) /
        std::log(n_ratio);
  }

  json.Add("scale_sweep_growth")
      .Set("dataset", "scaled_longtail")
      .Set("shards", shard_count)
      .Set("min_items", sizes.front())
      .Set("max_items", sizes.back())
      .Set("sharded_growth_exponent", sharded_exponent)
      .Set("unsharded_growth_exponent", unsharded_exponent)
      .Set("sub_linear", multi_size ? sharded_exponent < 1.0 : true)
      .Set("speedup_at_max_items", speedup_at_max)
      .Set("required_speedup", kRequiredSpeedup);

  PrintBanner(std::cout, "Sharded MEU scale sweep (shards=" +
                             std::to_string(shard_count) +
                             ", scale=" + ScaleModeName(mode) + ")");
  table.Print(std::cout);
  if (multi_size) {
    std::cout << "step-time growth exponent (t ~ items^a): sharded a="
              << sharded_exponent << ", unsharded a=" << unsharded_exponent
              << "\n";
    if (!(sharded_exponent < 1.0)) {
      std::cerr << "error: sharded step time grew super-linearly (a="
                << sharded_exponent << ")\n";
      failed = true;
    }
    if (speedup_at_max < kRequiredSpeedup) {
      std::cerr << "error: speedup at " << sizes.back() << " items is "
                << speedup_at_max << "x, required >= " << kRequiredSpeedup
                << "x\n";
      failed = true;
    }
  }

  if (!json_path.empty()) {
    const Status status =
        json.MergeInto(json_path, {"dataset", "items", "shards"});
    if (!status.ok()) {
      std::cerr << "error: " << status.ToString() << "\n";
      return 1;
    }
    std::cout << "merged scale_sweep records into " << json_path << "\n";
  }
  return failed ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--json" && i + 1 < argc) {
      json_path = argv[i + 1];
      ++i;
    }
  }
  return RunSweep(json_path, GetScaleMode());
}
