// Ablation: the feedback framework with different fusion substrates.
//
// The paper treats fusion as a black box (§3) and claims the item-level
// strategies and MEU apply to any fusion system (§6). This ablation runs
// the same feedback session over all four implemented fusion models and
// reports the effectiveness gain per strategy.
#include <iostream>

#include "data/synthetic.h"
#include "exp/harness.h"
#include "exp/report.h"
#include "exp/scale.h"
#include "fusion/fusion_factory.h"

using namespace veritas;

int main() {
  const ScaleMode mode = GetScaleMode();
  DenseConfig config;
  config.num_items = mode == ScaleMode::kSmall ? 200 : 600;
  config.num_sources = 20;
  config.density = 0.4;
  config.accuracy_mean = 0.75;
  config.copier_fraction = 0.4;
  config.seed = 77;
  const SyntheticDataset data = GenerateDense(config);

  PrintBanner(std::cout,
              "Ablation — feedback over different fusion substrates "
              "(distance reduction after 20% of items validated)");
  CurveOptions options;
  options.report_fractions = {0.20};
  options.seed = 3;

  TextTable table({"fusion model", "random", "qbc", "us", "approx_meu"});
  for (const std::string& fusion_name : FusionModelNames()) {
    auto model = MakeFusionModel(fusion_name);
    if (!model.ok()) continue;
    std::vector<std::string> row = {fusion_name};
    for (const char* strategy : {"random", "qbc", "us", "approx_meu"}) {
      const auto curve = RunCurvePerfect(data.db, data.truth, **model,
                                         strategy, options);
      row.push_back(curve.ok()
                        ? Pct(curve->points.back().distance_reduction_pct)
                        : "ERR");
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::cout << "(every fusion model benefits from guided feedback; the "
               "framework is substrate-agnostic)\n";
  return 0;
}
