// google-benchmark micro-benchmarks for the feedback strategies: cost of
// one next-action decision per strategy and of the Approx-MEU primitives.
#include <benchmark/benchmark.h>

#include "core/approx_meu.h"
#include "core/strategy_factory.h"
#include "data/synthetic.h"
#include "fusion/accu.h"

using namespace veritas;

namespace {

struct Fixture {
  explicit Fixture(std::size_t items) {
    DenseConfig config;
    config.num_items = items;
    config.num_sources = 38;
    config.density = 0.36;
    config.seed = 7;
    data = GenerateDense(config);
    graph = std::make_unique<ItemGraph>(data.db);
    fusion = model.Fuse(data.db, opts);
    ctx.db = &data.db;
    ctx.fusion = &fusion;
    ctx.priors = &priors;
    ctx.model = &model;
    ctx.fusion_opts = &opts;
    ctx.ground_truth = &data.truth;
    ctx.graph = graph.get();
    ctx.rng = &rng;
  }

  SyntheticDataset data;
  AccuFusion model;
  FusionOptions opts;
  FusionResult fusion;
  PriorSet priors;
  std::unique_ptr<ItemGraph> graph;
  Rng rng{3};
  StrategyContext ctx;
};

void BM_SelectNext(benchmark::State& state, const std::string& name,
                   std::size_t items) {
  Fixture fixture(items);
  auto strategy = MakeStrategy(name);
  for (auto _ : state) {
    benchmark::DoNotOptimize((*strategy)->SelectNext(fixture.ctx));
  }
}
BENCHMARK_CAPTURE(BM_SelectNext, qbc_400, "qbc", 400);
BENCHMARK_CAPTURE(BM_SelectNext, us_400, "us", 400);
BENCHMARK_CAPTURE(BM_SelectNext, approx_meu_400, "approx_meu", 400);
BENCHMARK_CAPTURE(BM_SelectNext, approx_meu_k10_400, "approx_meu_k:10", 400);
BENCHMARK_CAPTURE(BM_SelectNext, meu_100, "meu", 100);
BENCHMARK_CAPTURE(BM_SelectNext, gub_100, "gub", 100);

void BM_AccuracyDeltas(benchmark::State& state) {
  Fixture fixture(1000);
  const ItemId item = fixture.data.db.ConflictingItems().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ComputeAccuracyDeltas(fixture.data.db, fixture.fusion, item, 0));
  }
}
BENCHMARK(BM_AccuracyDeltas);

void BM_EstimateUpdatedProbs(benchmark::State& state) {
  Fixture fixture(1000);
  const auto conflicting = fixture.data.db.ConflictingItems();
  const ItemId item = conflicting.front();
  const AccuracyDeltas deltas =
      ComputeAccuracyDeltas(fixture.data.db, fixture.fusion, item, 0);
  const ItemId neighbor = conflicting.back();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EstimateUpdatedProbs(fixture.data.db, fixture.fusion, neighbor,
                             deltas));
  }
}
BENCHMARK(BM_EstimateUpdatedProbs);

void BM_CollectNeighbors(benchmark::State& state) {
  Fixture fixture(2000);
  std::vector<ItemId> scratch;
  ItemId i = 0;
  for (auto _ : state) {
    fixture.graph->CollectNeighbors(i, &scratch);
    benchmark::DoNotOptimize(scratch.data());
    i = (i + 1) % static_cast<ItemId>(fixture.data.db.num_items());
  }
}
BENCHMARK(BM_CollectNeighbors);

}  // namespace

BENCHMARK_MAIN();
