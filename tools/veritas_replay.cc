// veritas_replay — stream a generated dataset in timestamp order through a
// feedback session and measure steady-state ingest rate against fusion
// staleness (the wall time from batch receipt to the re-fused state that
// includes it).
//
// The generator stamps every observation with an order-preserving timestamp
// (data/synthetic.h, emit_stream), so replaying the sorted stream into an
// initially empty StreamingDatabase reproduces the batch-built database with
// identical ids. Ground-truth rows are disclosed at their own timestamps and
// ride the first batch whose horizon reaches them; the session defers rows
// whose item has not arrived yet.
//
// Usage:
//   veritas_replay [--shape dense|longtail] [--items 300] [--sources 40]
//                  [--density 0.4] [--copiers 0] [--seed 42]
//                  [--revisions 0.0]       fraction of late corrective
//                                          re-observations (last-write-wins)
//                  [--batch-obs 64]        observations per ingest batch
//                  [--budget 20] [--batch 1] [--strategy approx_meu]
//                  [--oracle perfect] [--model accu] [--no-delta]
//                  [--deadline-ms N]
//                  [--compact-tail-fraction 0.25] [--compact-min-tail 256]
//                  [--json BENCH_fusion.json]   merge a replay_ingest record
//                  [--metrics-out metrics.json]
#include <algorithm>
#include <csignal>
#include <iostream>
#include <string>
#include <utility>

#include "core/oracle.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "data/synthetic.h"
#include "exp/bench_json.h"
#include "exp/report.h"
#include "fusion/fusion_factory.h"
#include "model/streaming_database.h"
#include "obs/metrics.h"
#include "util/args.h"
#include "util/cancellation.h"
#include "util/timer.h"

namespace veritas {
namespace {

CancellationToken g_cancel;

extern "C" void HandleStopSignal(int /*signum*/) { g_cancel.RequestStop(); }

Status RunReplay(const ArgMap& args) {
  VERITAS_ASSIGN_OR_RETURN(long items, args.GetInt("items", 300));
  VERITAS_ASSIGN_OR_RETURN(long sources, args.GetInt("sources", 40));
  VERITAS_ASSIGN_OR_RETURN(double density, args.GetDouble("density", 0.4));
  VERITAS_ASSIGN_OR_RETURN(double copiers, args.GetDouble("copiers", 0.0));
  VERITAS_ASSIGN_OR_RETURN(long seed, args.GetInt("seed", 42));
  VERITAS_ASSIGN_OR_RETURN(double revisions, args.GetDouble("revisions", 0.0));
  VERITAS_ASSIGN_OR_RETURN(long batch_obs, args.GetInt("batch-obs", 64));
  VERITAS_ASSIGN_OR_RETURN(long budget, args.GetInt("budget", 20));
  VERITAS_ASSIGN_OR_RETURN(long batch, args.GetInt("batch", 1));
  const std::string shape = args.GetString("shape", "dense");
  if (batch_obs < 1) {
    return Status::InvalidArgument("--batch-obs must be >= 1");
  }

  // Compaction policy: defaults match StreamingOptions, overridable so a
  // sweep can force frequent (or suppress) tail folds.
  StreamingOptions stream_opts;
  VERITAS_ASSIGN_OR_RETURN(
      stream_opts.compact_tail_fraction,
      args.GetDouble("compact-tail-fraction",
                     stream_opts.compact_tail_fraction));
  VERITAS_ASSIGN_OR_RETURN(
      long min_tail,
      args.GetInt("compact-min-tail",
                  static_cast<long>(stream_opts.min_tail_before_compact)));
  if (stream_opts.compact_tail_fraction <= 0.0 ||
      stream_opts.compact_tail_fraction > 1.0 || min_tail < 0) {
    return Status::InvalidArgument(
        "--compact-tail-fraction must be in (0, 1] and --compact-min-tail "
        ">= 0");
  }
  stream_opts.min_tail_before_compact = static_cast<std::size_t>(min_tail);

  SyntheticDataset data;
  if (shape == "dense") {
    DenseConfig config;
    config.num_items = static_cast<std::size_t>(items);
    config.num_sources = static_cast<std::size_t>(sources);
    config.density = density;
    config.copier_fraction = copiers;
    config.seed = static_cast<std::uint64_t>(seed);
    config.emit_stream = true;
    config.revision_fraction = revisions;
    data = GenerateDense(config);
  } else if (shape == "longtail") {
    LongTailConfig config;
    config.num_items = static_cast<std::size_t>(items);
    config.num_sources = static_cast<std::size_t>(sources);
    config.copier_fraction = copiers;
    config.seed = static_cast<std::uint64_t>(seed);
    config.emit_stream = true;
    config.revision_fraction = revisions;
    data = GenerateLongTail(config);
  } else {
    return Status::InvalidArgument("--shape must be dense or longtail");
  }

  // Replay strictly in timestamp order. The generator's stamps are
  // order-preserving, so this sort is a no-op for untouched datasets and an
  // explicit contract for anything that reorders the log upstream.
  std::stable_sort(data.stream.begin(), data.stream.end(),
                   [](const StreamObservation& a, const StreamObservation& b) {
                     return a.timestamp < b.timestamp;
                   });

  // The session starts against an *empty* database; everything arrives
  // through the feed.
  StreamingDatabase stream{Database(), stream_opts};
  GroundTruth truth(stream.db());
  VectorFeed feed(std::move(data.stream), std::move(data.truth_stream),
                  static_cast<std::size_t>(batch_obs));

  VERITAS_ASSIGN_OR_RETURN(
      auto strategy, MakeStrategy(args.GetString("strategy", "approx_meu")));
  VERITAS_ASSIGN_OR_RETURN(auto oracle,
                           MakeOracle(args.GetString("oracle", "perfect")));
  VERITAS_ASSIGN_OR_RETURN(auto model,
                           MakeFusionModel(args.GetString("model", "accu")));

  SessionOptions options;
  options.fusion.use_delta_fusion = !args.GetBool("no-delta");
  options.max_validations = static_cast<std::size_t>(budget);
  options.batch_size = static_cast<std::size_t>(batch);
  options.streaming.stream = &stream;
  options.streaming.feed = &feed;
  options.streaming.truth = &truth;
  options.streaming.compaction = stream_opts;
  // The perfect oracle hard-fails on unknown truth; with the filter on, an
  // item whose truth row has not streamed in yet simply waits its turn.
  options.streaming.require_known_truth = true;
  options.cancel = &g_cancel;
  if (args.Has("deadline-ms")) {
    VERITAS_ASSIGN_OR_RETURN(long deadline_ms, args.GetInt("deadline-ms", 0));
    if (deadline_ms < 0) {
      return Status::InvalidArgument("--deadline-ms must be >= 0");
    }
    options.deadline = Deadline::AfterMillis(deadline_ms);
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  Rng rng(static_cast<std::uint64_t>(seed));
  FeedbackSession session(stream.db(), *model, strategy.get(), oracle.get(),
                          truth, options, &rng);
  Timer run_timer;
  auto trace_or = session.Run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  VERITAS_RETURN_IF_ERROR(trace_or.status());
  const SessionTrace trace = std::move(trace_or).value();

  // The validation budget usually ends the session before the feed runs dry;
  // drain the rest so the replay covers the whole dataset (no fusion behind
  // these batches — the staleness histogram measures only interleaved ticks).
  IngestBatch rest;
  std::size_t drained_batches = 0;
  while (feed.Next(&rest)) {
    VERITAS_RETURN_IF_ERROR(stream.AppendBatch(rest).status());
    stream.CompactIfNeeded();
    ++drained_batches;
  }
  const double run_seconds = run_timer.ElapsedSeconds();
  const IngestStats& totals = stream.totals();

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* staleness =
      snap.FindHistogram("ingest.staleness_seconds");
  const double stale_p50 = staleness != nullptr ? staleness->Quantile(0.50) : 0;
  const double stale_p90 = staleness != nullptr ? staleness->Quantile(0.90) : 0;
  const double stale_p99 = staleness != nullptr ? staleness->Quantile(0.99) : 0;
  const double stale_max = staleness != nullptr ? staleness->max : 0;
  const double ingest_rate =
      run_seconds > 0.0
          ? static_cast<double>(totals.fresh + totals.revisions) / run_seconds
          : 0.0;
  const std::size_t stale_violations = static_cast<std::size_t>(
      snap.Value("delta.stale_view_violations", 0.0));

  TextTable table({"metric", "value"});
  table.AddRow({"stream shape", shape});
  table.AddRow({"ingest batches (interleaved)",
                std::to_string(trace.ingest_batches)});
  table.AddRow({"ingest batches (drained)",
                std::to_string(drained_batches)});
  table.AddRow({"observations ingested", std::to_string(totals.fresh)});
  table.AddRow({"revisions (last-write-wins)",
                std::to_string(totals.revisions)});
  table.AddRow({"duplicates ignored", std::to_string(totals.duplicates)});
  table.AddRow({"truths applied", std::to_string(trace.truths_applied)});
  table.AddRow({"truths still deferred",
                std::to_string(trace.truths_deferred)});
  table.AddRow({"compactions",
                std::to_string(stream.compiled().compactions())});
  table.AddRow({"final epoch", std::to_string(stream.epoch())});
  table.AddRow({"items validated",
                std::to_string(trace.steps.empty()
                                   ? 0
                                   : trace.steps.back().num_validated)});
  table.AddRow({"steady-state ingest rate", Num(ingest_rate, 1) + " obs/s"});
  table.AddRow({"fusion staleness p50", Secs(stale_p50)});
  table.AddRow({"fusion staleness p90", Secs(stale_p90)});
  table.AddRow({"fusion staleness p99", Secs(stale_p99)});
  table.AddRow({"fusion staleness max", Secs(stale_max)});
  table.AddRow({"stale-view violations", std::to_string(stale_violations)});
  table.Print(std::cout);
  if (!trace.steps.empty()) {
    std::cout << "final distance reduction: "
              << Pct(trace.DistanceReductionPercent(trace.steps.size() - 1))
              << "\n";
  }

  const std::string metrics_out = args.GetString("metrics-out");
  if (!metrics_out.empty()) {
    VERITAS_RETURN_IF_ERROR(
        MetricsRegistry::Global().WriteJsonFile(metrics_out));
    std::cout << "wrote metrics snapshot to " << metrics_out << "\n";
  }

  const std::string json_out = args.GetString("json");
  if (!json_out.empty()) {
    BenchJsonFile doc("veritas-bench-fusion-v1");
    BenchJsonRecord& rec = doc.Add("replay_ingest");
    rec.Set("shape", shape)
        .Set("items", static_cast<std::size_t>(items))
        .Set("sources", static_cast<std::size_t>(sources))
        .Set("batch_obs", static_cast<std::size_t>(batch_obs))
        .Set("revision_fraction", revisions)
        .Set("ingest_batches", trace.ingest_batches + drained_batches)
        .Set("observations_ingested", totals.fresh)
        .Set("revisions", totals.revisions)
        .Set("compactions", stream.compiled().compactions())
        .Set("final_epoch", static_cast<std::size_t>(stream.epoch()))
        .Set("run_seconds", run_seconds)
        .Set("ingest_obs_per_second", ingest_rate)
        .Set("staleness_p50_seconds", stale_p50)
        .Set("staleness_p90_seconds", stale_p90)
        .Set("staleness_p99_seconds", stale_p99)
        .Set("staleness_max_seconds", stale_max)
        .Set("stale_view_violations", stale_violations);
    // Upsert by name only: reruns replace the previous replay_ingest record,
    // every other bench binary's records survive untouched.
    VERITAS_RETURN_IF_ERROR(doc.MergeInto(json_out));
    std::cout << "merged replay_ingest record into " << json_out << "\n";
  }
  return Status::OK();
}

}  // namespace
}  // namespace veritas

int main(int argc, char** argv) {
  const auto args = veritas::ArgMap::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n";
    return 2;
  }
  const veritas::Status status = veritas::RunReplay(*args);
  if (!status.ok()) {
    if (status.code() == veritas::StatusCode::kDeadlineExceeded) {
      std::cerr << "interrupted: " << status << "\n";
      return 3;
    }
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  return 0;
}
