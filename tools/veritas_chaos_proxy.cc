// veritas_chaos_proxy: stand-alone fault-injecting forwarder for drilling a
// veritas_serve daemon over a genuinely hostile link (see net/chaos_proxy.h
// and DESIGN.md §5i). CI's serve-net-smoke job points veritas_stress
// --remote through this proxy and asserts the no-silent-loss partition.
#include <signal.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "net/chaos_proxy.h"
#include "util/args.h"
#include "util/fault_injection.h"

namespace veritas {
namespace {

constexpr const char* kUsage = R"(veritas_chaos_proxy -- fault-injecting forwarder

usage: veritas_chaos_proxy [run] --upstream ADDR [flags]

  --listen ADDR       where clients connect (default 127.0.0.1:0; the bound
                      address is printed and optionally written)
  --addr-file PATH    write the bound address here (for scripts/CI)
  --upstream ADDR     the real daemon (required)
  --seed N            fault determinism seed (default 42)
  --drop PLAN         FaultPlan for connection drops (e.g. prob=0.05)
  --delay PLAN        FaultPlan for chunk delays (use latency=SECONDS)
  --corrupt PLAN      FaultPlan for single-bit corruption
  --truncate PLAN     FaultPlan for mid-frame truncation + close
  --half-close PLAN   FaultPlan for one-direction shutdowns
                      (plans default empty = fault never fires; give
                      drop/corrupt/truncate/half-close plans a non-none
                      kind, e.g. prob=0.1,kind=unavailable)
  --chunk-bytes N     forwarding chunk size (default 4096)

Runs until SIGTERM/SIGINT.
)";

volatile std::sig_atomic_t g_stop_signal = 0;

void HandleStopSignal(int) { g_stop_signal = 1; }

FaultPlan PlanFlag(const ArgMap& args, const std::string& key) {
  const std::string spec = args.GetString(key);
  if (spec.empty()) {
    FaultPlan never;  // All triggers zero: the site never fires.
    never.kind = FaultKind::kNone;
    return never;
  }
  auto plan = ParseFaultPlan(spec);
  if (!plan.ok()) {
    std::cerr << "veritas_chaos_proxy: --" << key << ": "
              << plan.status().ToString() << "\n";
    std::exit(2);
  }
  return *plan;
}

int Run(int argc, const char* const* argv) {
  auto args_or = ArgMap::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << "veritas_chaos_proxy: " << args_or.status().ToString()
              << "\n";
    return 2;
  }
  const ArgMap& args = *args_or;
  if (args.command() == "help" || args.GetBool("help") ||
      !args.Has("upstream")) {
    std::cout << kUsage;
    return args.Has("upstream") || args.GetBool("help") ? 0 : 2;
  }

  net::ChaosProxyOptions options;
  auto listen = net::ParseNetAddress(args.GetString("listen", "127.0.0.1:0"));
  auto upstream = net::ParseNetAddress(args.GetString("upstream"));
  if (!listen.ok() || !upstream.ok()) {
    const Status& bad = !listen.ok() ? listen.status() : upstream.status();
    std::cerr << "veritas_chaos_proxy: " << bad.ToString() << "\n";
    return 2;
  }
  options.listen = *listen;
  options.upstream = *upstream;
  auto seed = args.GetInt("seed", 42);
  options.seed = static_cast<std::uint64_t>(seed.ok() ? *seed : 42);
  options.drop = PlanFlag(args, "drop");
  options.delay = PlanFlag(args, "delay");
  options.corrupt = PlanFlag(args, "corrupt");
  options.truncate = PlanFlag(args, "truncate");
  options.half_close = PlanFlag(args, "half-close");
  auto chunk = args.GetInt("chunk-bytes", 4096);
  options.chunk_bytes = static_cast<std::size_t>(chunk.ok() ? *chunk : 4096);

  net::ChaosProxy proxy(options);
  if (Status s = proxy.Start(); !s.ok()) {
    std::cerr << "veritas_chaos_proxy: " << s.ToString() << "\n";
    return 1;
  }
  const std::string bound = proxy.bound_address().ToString();
  std::cout << "proxying " << bound << " -> " << options.upstream.ToString()
            << std::endl;
  const std::string addr_file = args.GetString("addr-file");
  if (!addr_file.empty()) {
    std::ofstream out(addr_file);
    out << bound << "\n";
  }

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);
  while (g_stop_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  proxy.Stop();
  return 0;
}

}  // namespace
}  // namespace veritas

int main(int argc, char** argv) { return veritas::Run(argc, argv); }
