// veritas_stress: load generator + chaos harness for the session supervisor
// (see DESIGN.md §5e and README "Running under load").
//
// Drives a SessionSupervisor with a Poisson arrival stream of feedback
// sessions over one shared synthetic snapshot. A configurable slice of the
// fleet is hostile: flaky oracles (fault injection + retries), hung oracles
// (StallOracle, to exercise the watchdog's graceful->hard escalation) and
// byte/round budgets (to exercise eviction-to-checkpoint). Publishes
// p50/p99 step latency, admitted/shed/evicted/recovered counts and
// throughput to a BENCH_serve.json document.
//
// Kill-and-recover mode: `--kill-after-ms N` SIGKILLs the process mid-run;
// a second invocation with `--sessions 0 --recover --drain-recovered`
// sweeps the sessions directory, resumes every interrupted session from its
// newest verifying checkpoint, and reports the recovery counts. CI's
// serve-smoke job asserts on exactly that sequence.
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "data/synthetic.h"
#include "exp/bench_json.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "serve/session_supervisor.h"
#include "util/args.h"
#include "util/rng.h"
#include "util/timer.h"

namespace veritas {
namespace {

constexpr const char* kUsage = R"(veritas_stress -- supervisor load harness

usage: veritas_stress [run] [flags]

load shape
  --sessions N            new sessions to submit (default 24)
  --arrival-hz R          Poisson arrival rate, sessions/second (default 200)
  --workers N             concurrent sessions (default 4)
  --queue-depth N         admissions waiting beyond the running (default 8)

per-session work
  --items N --sources N   synthetic snapshot size (default 60 x 10)
  --max-validations N     validation budget per session (default 6)
  --strategy S --model M  session configuration (default approx_meu / accu)
  --threads N             lookahead-scan threads per session (default 1;
                          the supervisor caps workers x threads at
                          --max-total-threads)
  --seed N                base seed (default 42)

chaos mix (fractions of the fleet, deterministic per seed)
  --flaky-fraction F      sessions with an injected-fault oracle (default 0.25)
  --flaky-plan SPEC       FaultPlan for those sessions (default prob=0.3,kind=unavailable)
  --retries N             retry attempts for flaky sessions (default 2)
  --evict-fraction F      sessions with a round budget (default 0.25)
  --budget-rounds N       rounds per run for those sessions (default 3)
  --hang-fraction F       sessions with a hung oracle (default 0.1)
  --stall-seconds S       how long a hung oracle blocks (default 30)
  --hang-deadline-ms N    deadline for hung sessions (default 150)

supervision
  --dir PATH              sessions directory (default stress_sessions)
  --deadline-ms N         default session deadline (default 0 = none)
  --watchdog-poll-ms N    watchdog scan period (default 5)
  --watchdog-grace-ms N   grace past deadline before graceful stop (def. 25)
  --watchdog-hard-ms N    grace before escalating to hard stop (default 50)
  --max-recovery N        recovery attempts before abandoning (default 3)
  --max-total-threads N   host-wide lookahead-thread budget shared by the
                          workers (default 0 = hardware concurrency)

modes
  --recover               run a recovery sweep before submitting
  --drain-recovered       keep sweeping+draining until no manifest remains
  --kill-after-ms N       SIGKILL this process after N ms (crash drill)
  --json PATH             upsert the bench document here, keyed by mode so
                          local and remote records coexist (default
                          BENCH_serve.json; "-" = stdout only)

remote mode (drive a veritas_serve daemon instead of an in-process
supervisor; the chaos mix travels inside the submitted specs)
  --remote ADDR           daemon address, host:port or unix:<path>
  --poll-ms N             report polling interval (default 20)
  --request-timeout-ms N  per-attempt transport budget (default 5000)
  --attempts N            transport retries per call incl. first (default 4)
  --client-deadline-ms N  overall budget per session incl. polling
                          (default 60000)
)";

long IntFlag(const ArgMap& args, const std::string& key, long fallback) {
  auto v = args.GetInt(key, fallback);
  if (!v.ok()) {
    std::cerr << "veritas_stress: " << v.status().ToString() << "\n";
    std::exit(2);
  }
  return *v;
}

double DoubleFlag(const ArgMap& args, const std::string& key,
                  double fallback) {
  auto v = args.GetDouble(key, fallback);
  if (!v.ok()) {
    std::cerr << "veritas_stress: " << v.status().ToString() << "\n";
    std::exit(2);
  }
  return *v;
}

/// The session shape shared by the local and remote drivers.
struct FleetConfig {
  std::string strategy;
  std::string model;
  std::string flaky_plan;
  long max_validations = 6;
  long threads = 1;
  long retries = 2;
  long budget_rounds = 3;
  long hang_deadline_ms = 150;
  double flaky_fraction = 0.25;
  double evict_fraction = 0.25;
  double hang_fraction = 0.1;
  double stall_seconds = 30.0;
  long seed = 42;
};

FleetConfig ParseFleetConfig(const ArgMap& args) {
  FleetConfig config;
  config.strategy = args.GetString("strategy", "approx_meu");
  config.model = args.GetString("model", "accu");
  config.max_validations = IntFlag(args, "max-validations", 6);
  config.threads = IntFlag(args, "threads", 1);
  config.seed = IntFlag(args, "seed", 42);
  config.flaky_fraction = DoubleFlag(args, "flaky-fraction", 0.25);
  config.flaky_plan = args.GetString("flaky-plan", "prob=0.3,kind=unavailable");
  config.retries = IntFlag(args, "retries", 2);
  config.evict_fraction = DoubleFlag(args, "evict-fraction", 0.25);
  config.budget_rounds = IntFlag(args, "budget-rounds", 3);
  config.hang_fraction = DoubleFlag(args, "hang-fraction", 0.1);
  config.stall_seconds = DoubleFlag(args, "stall-seconds", 30.0);
  config.hang_deadline_ms = IntFlag(args, "hang-deadline-ms", 150);
  return config;
}

/// Session `i` of the fleet; `mix` in [0, 1) picks its chaos bucket.
SessionSpec FleetSpec(const FleetConfig& config, long i, double mix) {
  SessionSpec spec;
  spec.id = "s";
  spec.id += std::to_string(i);
  spec.strategy = config.strategy;
  spec.model = config.model;
  spec.max_validations = static_cast<std::size_t>(config.max_validations);
  spec.threads =
      static_cast<std::size_t>(config.threads > 0 ? config.threads : 1);
  spec.seed = static_cast<std::uint64_t>(config.seed + i);
  if (mix < config.hang_fraction) {
    spec.stall_seconds = config.stall_seconds;
    spec.deadline_ms = config.hang_deadline_ms;
  } else if (mix < config.hang_fraction + config.flaky_fraction) {
    spec.flaky_plan = config.flaky_plan;
    spec.retries = static_cast<std::size_t>(config.retries);
  } else if (mix < config.hang_fraction + config.flaky_fraction +
                       config.evict_fraction) {
    spec.budget.max_rounds_per_run =
        static_cast<std::size_t>(config.budget_rounds);
  }
  return spec;
}

/// First number following `"name":` in a flat metrics JSON document, or
/// `fallback`. Enough of a scanner for counters out of
/// MetricsSnapshot::ToJson without a JSON dependency.
double ExtractJsonNumber(const std::string& json, const std::string& name,
                         double fallback) {
  const std::string needle = "\"" + name + "\":";
  const std::size_t at = json.find(needle);
  if (at == std::string::npos) return fallback;
  return std::strtod(json.c_str() + at + needle.size(), nullptr);
}

/// Drives a remote veritas_serve daemon with the same Poisson arrivals and
/// chaos mix as the local mode, then proves the no-silent-loss partition:
/// every submitted session lands in exactly one tallied bucket.
int RunRemote(const ArgMap& args) {
  const std::string remote = args.GetString("remote");
  auto address = net::ParseNetAddress(remote);
  if (!address.ok()) {
    std::cerr << "veritas_stress: --remote: " << address.status().ToString()
              << "\n";
    return 2;
  }
  const long num_sessions = IntFlag(args, "sessions", 24);
  const double arrival_hz = DoubleFlag(args, "arrival-hz", 200.0);
  const FleetConfig config = ParseFleetConfig(args);
  const long poll_ms = IntFlag(args, "poll-ms", 20);
  const long request_timeout_ms = IntFlag(args, "request-timeout-ms", 5000);
  const long attempts = IntFlag(args, "attempts", 4);
  const long client_deadline_ms = IntFlag(args, "client-deadline-ms", 60'000);
  const std::string json_path = args.GetString("json", "BENCH_serve.json");

  net::NetClientOptions client_options;
  client_options.address = *address;
  client_options.request_timeout_ms = request_timeout_ms;
  client_options.max_attempts =
      static_cast<std::size_t>(attempts > 0 ? attempts : 1);
  {
    net::NetClient probe(client_options);
    auto health = probe.Health();
    if (!health.ok()) {
      std::cerr << "veritas_stress: daemon at " << remote
                << " not healthy: " << health.status().ToString() << "\n";
      return 1;
    }
  }

  // Outcome partition (no silent loss): terminal report outcomes, typed
  // rejections, transport failures. Every launched session increments
  // exactly one bucket.
  std::mutex tally_mu;
  std::size_t completed = 0, evicted = 0, cancelled = 0, failed = 0;
  std::size_t shed_typed = 0, unavailable_typed = 0, transport_errors = 0;
  std::size_t resubmits = 0, validations = 0;

  Timer wall;
  Rng rng(static_cast<std::uint64_t>(config.seed) ^ 0x5eedu);
  std::exponential_distribution<double> gap(arrival_hz > 0 ? arrival_hz
                                                           : 1e9);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<std::thread> fleet;
  fleet.reserve(static_cast<std::size_t>(num_sessions));
  for (long i = 0; i < num_sessions; ++i) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(gap(rng.engine())));
    SessionSpec spec = FleetSpec(config, i, coin(rng.engine()));
    fleet.emplace_back([spec = std::move(spec), client_options,
                        client_deadline_ms, poll_ms, &tally_mu, &completed,
                        &evicted, &cancelled, &failed, &shed_typed,
                        &unavailable_typed, &transport_errors, &resubmits,
                        &validations] {
      net::NetClientOptions options = client_options;
      options.overall_deadline = Deadline::AfterMillis(client_deadline_ms);
      net::NetClient client(options);
      auto result = client.RunRemoteSession(spec, poll_ms);
      std::lock_guard<std::mutex> lock(tally_mu);
      if (result.ok()) {
        resubmits += result->resubmits;
        validations += result->num_validated;
        if (result->outcome == "completed") {
          ++completed;
        } else if (result->outcome == "evicted") {
          ++evicted;
        } else if (result->outcome == "cancelled") {
          ++cancelled;
        } else {
          ++failed;
        }
        return;
      }
      switch (result.status().code()) {
        case StatusCode::kResourceExhausted:
          ++shed_typed;  // Admission-queue or connection-limit shed.
          break;
        case StatusCode::kUnavailable:
          ++unavailable_typed;  // Draining daemon or dead link.
          break;
        default:
          ++transport_errors;
      }
    });
  }
  for (std::thread& t : fleet) t.join();
  const double wall_seconds = wall.ElapsedSeconds();

  // Remote + local counters. The daemon's snapshot is best-effort: a
  // drained/dead daemon just leaves the remote numbers at 0.
  net::NetClient client(client_options);
  std::string remote_metrics;
  if (auto json = client.MetricsJson(); json.ok()) {
    remote_metrics = *json;
  }
  const MetricsSnapshot local = MetricsRegistry::Global().Snapshot();
  const std::size_t unaccounted =
      static_cast<std::size_t>(num_sessions) - completed - evicted -
      cancelled - failed - shed_typed - unavailable_typed - transport_errors;

  BenchJsonFile bench("veritas-serve-bench-v1");
  bench.SetMeta("tool", "veritas_stress");
  BenchJsonRecord& rec = bench.Add("serve_stress");
  rec.Set("mode", "remote");
  rec.Set("remote_address", remote);
  rec.Set("sessions_requested", static_cast<std::size_t>(num_sessions));
  rec.Set("completed", completed);
  rec.Set("evicted", evicted);
  rec.Set("cancelled", cancelled);
  rec.Set("failed", failed);
  rec.Set("shed_typed", shed_typed);
  rec.Set("unavailable_typed", unavailable_typed);
  rec.Set("transport_errors", transport_errors);
  rec.Set("unaccounted", unaccounted);
  rec.Set("resubmits", resubmits);
  rec.Set("validations", validations);
  rec.Set("wall_seconds", wall_seconds);
  rec.Set("client_retries", static_cast<std::size_t>(
                                local.Value("net.retries")));
  rec.Set("client_frames_corrupt", static_cast<std::size_t>(
                                       local.Value("net.frames_corrupt")));
  rec.Set("daemon_shed",
          ExtractJsonNumber(remote_metrics, "supervisor.shed", 0.0) +
              ExtractJsonNumber(remote_metrics, "net.shed", 0.0));
  rec.Set("daemon_frames_corrupt",
          ExtractJsonNumber(remote_metrics, "net.frames_corrupt", 0.0));
  rec.Set("daemon_accepted",
          ExtractJsonNumber(remote_metrics, "net.accepted", 0.0));

  std::cout << bench.Render() << "\n";
  if (json_path != "-") {
    if (Status s = bench.MergeInto(json_path, {"mode"}); !s.ok()) {
      std::cerr << "veritas_stress: " << s.ToString() << "\n";
      return 1;
    }
  }
  if (unaccounted != 0) {
    std::cerr << "veritas_stress: " << unaccounted
              << " session(s) unaccounted for — silent loss!\n";
    return 1;
  }
  return 0;
}

int Run(int argc, const char* const* argv) {
  auto args_or = ArgMap::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << "veritas_stress: " << args_or.status().ToString() << "\n";
    return 2;
  }
  const ArgMap& args = *args_or;
  if (args.command() == "help" || args.GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }
  if (args.Has("remote")) return RunRemote(args);

  const long num_sessions = IntFlag(args, "sessions", 24);
  const double arrival_hz = DoubleFlag(args, "arrival-hz", 200.0);
  const long workers = IntFlag(args, "workers", 4);
  const long queue_depth = IntFlag(args, "queue-depth", 8);
  const long num_items = IntFlag(args, "items", 60);
  const long num_sources = IntFlag(args, "sources", 10);
  const FleetConfig config = ParseFleetConfig(args);
  const std::string strategy = config.strategy;
  const std::string model = config.model;
  const long seed = config.seed;
  const std::string dir = args.GetString("dir", "stress_sessions");
  const long default_deadline_ms = IntFlag(args, "deadline-ms", 0);
  const long watchdog_poll_ms = IntFlag(args, "watchdog-poll-ms", 5);
  const long watchdog_grace_ms = IntFlag(args, "watchdog-grace-ms", 25);
  const long watchdog_hard_ms = IntFlag(args, "watchdog-hard-ms", 50);
  const long max_recovery = IntFlag(args, "max-recovery", 3);
  const long max_total_threads = IntFlag(args, "max-total-threads", 0);
  const long kill_after_ms = IntFlag(args, "kill-after-ms", 0);
  const std::string json_path = args.GetString("json", "BENCH_serve.json");

  if (kill_after_ms > 0) {
    // Crash drill: die mid-run with no cleanup, exactly like a power cut.
    std::thread([kill_after_ms] {
      std::this_thread::sleep_for(std::chrono::milliseconds(kill_after_ms));
      ::kill(::getpid(), SIGKILL);
    }).detach();
  }

  DenseConfig data_config;
  data_config.num_items = static_cast<std::size_t>(num_items);
  data_config.num_sources = static_cast<std::size_t>(num_sources);
  data_config.seed = static_cast<std::uint64_t>(seed);
  const SyntheticDataset dataset = GenerateDense(data_config);

  MetricsRegistry::Global().Reset();

  SupervisorOptions options;
  options.max_concurrent_sessions = static_cast<std::size_t>(workers);
  options.max_queue_depth = static_cast<std::size_t>(queue_depth);
  options.sessions_dir = dir;
  options.default_deadline_ms = default_deadline_ms;
  options.watchdog_poll = std::chrono::milliseconds(watchdog_poll_ms);
  options.watchdog_grace = std::chrono::milliseconds(watchdog_grace_ms);
  options.watchdog_hard_grace = std::chrono::milliseconds(watchdog_hard_ms);
  options.max_recovery_attempts = static_cast<std::size_t>(max_recovery);
  options.max_total_threads = static_cast<std::size_t>(max_total_threads);

  SessionSupervisor supervisor(dataset.db, dataset.truth, options);
  if (Status s = supervisor.Start(); !s.ok()) {
    std::cerr << "veritas_stress: " << s.ToString() << "\n";
    return 1;
  }

  Timer wall;
  std::size_t recovered_at_startup = 0;
  if (args.GetBool("recover") || args.GetBool("drain-recovered")) {
    recovered_at_startup = supervisor.RecoverSessions();
    std::cout << "recovery sweep: re-admitted " << recovered_at_startup
              << " session(s)\n";
  }

  // Poisson arrivals: exponential inter-arrival gaps, deterministic per
  // seed. The chaos mix is drawn per session from the same stream.
  Rng rng(static_cast<std::uint64_t>(seed) ^ 0x5eedu);
  std::exponential_distribution<double> gap(arrival_hz > 0 ? arrival_hz
                                                           : 1e9);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::size_t submitted = 0, shed = 0, rejected = 0;
  for (long i = 0; i < num_sessions; ++i) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(gap(rng.engine())));
    SessionSpec spec = FleetSpec(config, i, coin(rng.engine()));
    const Status s = supervisor.Submit(std::move(spec));
    if (s.ok()) {
      ++submitted;
    } else if (s.code() == StatusCode::kResourceExhausted) {
      ++shed;  // Typed overload signal: expected under pressure.
    } else {
      ++rejected;
      std::cerr << "veritas_stress: submit: " << s.ToString() << "\n";
    }
  }
  supervisor.Drain();

  // Evicted/cancelled sessions left durable state behind; keep sweeping
  // until the directory is clean (completed or abandoned).
  std::size_t recovered_total = recovered_at_startup;
  if (args.GetBool("drain-recovered")) {
    std::size_t swept;
    while ((swept = supervisor.RecoverSessions()) > 0) {
      recovered_total += swept;
      supervisor.Drain();
    }
  }
  const double wall_seconds = wall.ElapsedSeconds();
  supervisor.Shutdown();

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const HistogramSnapshot* steps = snap.FindHistogram("session.step_seconds");
  const HistogramSnapshot* waits =
      snap.FindHistogram("supervisor.queue_wait_seconds");
  const double validated = snap.Value("session.items_validated");

  BenchJsonFile bench("veritas-serve-bench-v1");
  bench.SetMeta("tool", "veritas_stress");
  bench.SetMeta("strategy", strategy);
  bench.SetMeta("model", model);
  BenchJsonRecord& rec = bench.Add("serve_stress");
  rec.Set("mode", "local");
  rec.Set("items", static_cast<std::size_t>(num_items));
  rec.Set("sources", static_cast<std::size_t>(num_sources));
  rec.Set("sessions_requested", static_cast<std::size_t>(num_sessions));
  rec.Set("workers", static_cast<std::size_t>(workers));
  rec.Set("queue_depth", static_cast<std::size_t>(queue_depth));
  rec.Set("submitted", submitted);
  rec.Set("shed", static_cast<std::size_t>(snap.Value("supervisor.shed")));
  rec.Set("admitted",
          static_cast<std::size_t>(snap.Value("supervisor.admitted")));
  rec.Set("completed",
          static_cast<std::size_t>(snap.Value("supervisor.completed")));
  rec.Set("evicted",
          static_cast<std::size_t>(snap.Value("supervisor.evicted")));
  rec.Set("cancelled",
          static_cast<std::size_t>(snap.Value("supervisor.cancelled")));
  rec.Set("failed",
          static_cast<std::size_t>(snap.Value("supervisor.failed")));
  rec.Set("recovered",
          static_cast<std::size_t>(snap.Value("supervisor.recovered")));
  rec.Set("recovery_abandoned", static_cast<std::size_t>(snap.Value(
                                    "supervisor.recovery_abandoned")));
  rec.Set("watchdog_graceful", static_cast<std::size_t>(snap.Value(
                                   "supervisor.watchdog_graceful")));
  rec.Set("watchdog_hard", static_cast<std::size_t>(snap.Value(
                               "supervisor.watchdog_hard")));
  rec.Set("submit_rejected", rejected);
  rec.Set("validations", static_cast<std::size_t>(validated));
  rec.Set("wall_seconds", wall_seconds);
  rec.Set("validations_per_second",
          wall_seconds > 0 ? validated / wall_seconds : 0.0);
  rec.Set("step_p50_seconds", steps ? steps->Quantile(0.5) : 0.0);
  rec.Set("step_p99_seconds", steps ? steps->Quantile(0.99) : 0.0);
  rec.Set("queue_wait_p50_seconds", waits ? waits->Quantile(0.5) : 0.0);
  rec.Set("queue_wait_p99_seconds", waits ? waits->Quantile(0.99) : 0.0);

  std::cout << bench.Render() << "\n";
  if (json_path != "-") {
    // Upsert keyed by mode: a remote run against the same baseline file
    // must not clobber the local record, and vice versa.
    if (Status s = bench.MergeInto(json_path, {"mode"}); !s.ok()) {
      std::cerr << "veritas_stress: " << s.ToString() << "\n";
      return 1;
    }
  }
  return rejected == 0 ? 0 : 1;
}

}  // namespace
}  // namespace veritas

int main(int argc, char** argv) { return veritas::Run(argc, argv); }
