// veritas_cli — run fusion and guided feedback on CSV datasets from the
// command line.
//
// Commands:
//   stats        --data obs.csv [--truth truth.csv]
//   fuse         --data obs.csv [--model accu] [--out probs.csv]
//   rank         --data obs.csv [--strategy qbc] [--top 10]
//                [--truth truth.csv]            (needed for gub)
//   session      --data obs.csv --truth truth.csv [--strategy approx_meu]
//                [--budget 20] [--oracle perfect] [--batch 1] [--seed 42]
//   generate     [--shape dense|longtail] [--items 500] [--sources 38]
//                [--density 0.4] [--copiers 0.0] [--seed 42]
//                --out obs.csv [--truth-out truth.csv]
//   canonicalize --data obs.csv [--tolerance 10] --out canonical.csv
//
// All observation files are CSV triples `source,item,value`; truth files
// are CSV pairs `item,value` (see data/loader.h).
#include <csignal>
#include <cstdio>
#include <iostream>

#include "core/metrics.h"
#include "core/oracle.h"
#include "core/resilient_oracle.h"
#include "core/session.h"
#include "core/strategy_factory.h"
#include "data/canonicalize.h"
#include "data/dataset_stats.h"
#include "data/loader.h"
#include "data/synthetic.h"
#include "exp/export.h"
#include "exp/report.h"
#include "fusion/accu.h"
#include "fusion/fusion_factory.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/args.h"
#include "util/cancellation.h"
#include "util/csv.h"

namespace veritas {
namespace {

// Session cancellation, tripped by SIGINT/SIGTERM. RequestStop escalates on
// repeat delivery: the first signal asks the session to finish the current
// round, checkpoint, and exit; a second one bails the inner fusion/lookahead
// loops too. CancellationToken is a single atomic int, so calling it from a
// signal handler is async-signal-safe.
CancellationToken g_session_cancel;

extern "C" void HandleStopSignal(int /*signum*/) {
  g_session_cancel.RequestStop();
}

void PrintUsage() {
  std::cout <<
      "veritas_cli <command> [options]\n"
      "\n"
      "commands:\n"
      "  stats        --data obs.csv [--truth truth.csv]\n"
      "  fuse         --data obs.csv [--model accu] [--out probs.csv]\n"
      "  rank         --data obs.csv [--strategy qbc] [--top 10]\n"
      "               [--truth truth.csv]\n"
      "  session      --data obs.csv --truth truth.csv\n"
      "               [--strategy approx_meu] [--budget 20]\n"
      "               [--oracle perfect] [--batch 1] [--seed 42]\n"
      "               [--model accu] [--threads 1] [--no-delta]\n"
      "               [--shards 1]\n"
      "               [--flaky <p|plan>] [--retries 3]\n"
      "               [--checkpoint ckpt] [--checkpoint-every 1]\n"
      "               [--resume ckpt] [--deadline-ms N]\n"
      "               [--steps-out steps.csv]\n"
      "               [--metrics-out metrics.json] [--trace-out trace.json]\n"
      "  generate     [--shape dense|longtail] [--items 500] [--sources 38]\n"
      "               [--density 0.4] [--copiers 0] [--seed 42]\n"
      "               --out obs.csv [--truth-out truth.csv]\n"
      "  canonicalize --data obs.csv [--tolerance 10] --out canonical.csv\n";
}

Result<Database> RequireData(const ArgMap& args) {
  const std::string path = args.GetString("data");
  if (path.empty()) {
    return Status::InvalidArgument("--data <observations.csv> is required");
  }
  return LoadObservations(path);
}

Result<GroundTruth> RequireTruth(const ArgMap& args, const Database& db) {
  const std::string path = args.GetString("truth");
  if (path.empty()) {
    return Status::InvalidArgument("--truth <truth.csv> is required");
  }
  VERITAS_ASSIGN_OR_RETURN(TruthLoadReport report, LoadGroundTruth(path, db));
  if (report.unknown_item + report.unknown_claim > 0) {
    std::cerr << "note: skipped " << report.unknown_item
              << " unknown items, " << report.unknown_claim
              << " unknown claims in truth file\n";
  }
  return report.truth;
}

Status RunStats(const ArgMap& args) {
  VERITAS_ASSIGN_OR_RETURN(Database db, RequireData(args));
  const DatasetStats stats = ComputeStats(db);
  TextTable table({"metric", "value"});
  table.AddRow({"items", std::to_string(stats.items)});
  table.AddRow({"sources", std::to_string(stats.sources)});
  table.AddRow({"observations", std::to_string(stats.observations)});
  table.AddRow({"distinct claims", std::to_string(stats.distinct_claims)});
  table.AddRow({"conflicting items", std::to_string(stats.conflicting_items)});
  table.AddRow({"density", Num(stats.density, 4)});
  table.AddRow({"avg claims/item", Num(stats.avg_claims_per_item, 2)});
  table.AddRow({"avg votes/item", Num(stats.avg_votes_per_item, 2)});
  table.AddRow({"sources covering <4% of items",
                Pct(CoverageBelow(db, 0.04) * 100.0)});
  if (args.Has("truth")) {
    VERITAS_ASSIGN_OR_RETURN(
        TruthLoadReport report,
        LoadGroundTruth(args.GetString("truth"), db));
    const DatasetStats truth_stats = ComputeStats(db, report);
    table.AddRow({"items with known truth",
                  std::to_string(report.truth.num_known())});
    table.AddRow({"truth rows applied",
                  std::to_string(truth_stats.truth_applied)});
    // Mismatches are normal for silver standards, but a nonzero unknown-item
    // count on a stream usually means truth arrived before the observations.
    table.AddRow({"truth rows: unknown item",
                  std::to_string(truth_stats.truth_unknown_item)});
    table.AddRow({"truth rows: unknown claim",
                  std::to_string(truth_stats.truth_unknown_claim)});
  }
  table.Print(std::cout);
  return Status::OK();
}

Status RunFuse(const ArgMap& args) {
  VERITAS_ASSIGN_OR_RETURN(Database db, RequireData(args));
  VERITAS_ASSIGN_OR_RETURN(auto model,
                           MakeFusionModel(args.GetString("model", "accu")));
  VERITAS_ASSIGN_OR_RETURN(long iterations, args.GetInt("iterations", 100));
  FusionOptions opts;
  opts.max_iterations = static_cast<std::size_t>(iterations);
  const FusionResult result = model->Fuse(db, PriorSet(), opts);

  std::vector<CsvRow> rows;
  rows.push_back({"item", "value", "probability", "winner"});
  for (ItemId i = 0; i < db.num_items(); ++i) {
    const ClaimIndex winner = result.WinningClaim(i);
    for (ClaimIndex k = 0; k < db.num_claims(i); ++k) {
      rows.push_back({db.item(i).name, db.item(i).claims[k].value,
                      Num(result.prob(i, k), 6),
                      k == winner ? "1" : "0"});
    }
  }
  const std::string out = args.GetString("out");
  if (out.empty()) {
    for (const CsvRow& row : rows) std::cout << FormatCsvRow(row) << "\n";
  } else {
    VERITAS_RETURN_IF_ERROR(WriteCsvFile(out, rows));
    std::cout << "wrote " << rows.size() - 1 << " claim probabilities to "
              << out << "\n";
  }
  std::cout << "# fusion: model=" << model->name()
            << " iterations=" << result.iterations()
            << " converged=" << (result.converged() ? "yes" : "no") << "\n";
  return Status::OK();
}

Status RunRank(const ArgMap& args) {
  VERITAS_ASSIGN_OR_RETURN(Database db, RequireData(args));
  const std::string strategy_name = args.GetString("strategy", "qbc");
  VERITAS_ASSIGN_OR_RETURN(auto strategy, MakeStrategy(strategy_name));
  VERITAS_ASSIGN_OR_RETURN(long top, args.GetInt("top", 10));

  AccuFusion model;
  FusionOptions opts;
  PriorSet priors;
  const FusionResult fusion = model.Fuse(db, priors, opts);
  const ItemGraph graph(db);
  Rng rng(42);
  GroundTruth truth(db);
  if (args.Has("truth")) {
    VERITAS_ASSIGN_OR_RETURN(truth, RequireTruth(args, db));
  }

  StrategyContext ctx;
  ctx.db = &db;
  ctx.fusion = &fusion;
  ctx.priors = &priors;
  ctx.model = &model;
  ctx.fusion_opts = &opts;
  ctx.ground_truth = &truth;
  ctx.graph = &graph;
  ctx.rng = &rng;

  const std::vector<ItemId> ranked =
      strategy->SelectBatch(ctx, static_cast<std::size_t>(top));
  TextTable table({"#", "item", "vote entropy", "output entropy"});
  for (std::size_t r = 0; r < ranked.size(); ++r) {
    table.AddRow({std::to_string(r + 1), db.item(ranked[r]).name,
                  Num(VoteEntropy(db, ranked[r]), 3),
                  Num(fusion.ItemEntropy(ranked[r]), 3)});
  }
  std::cout << "next items to validate (strategy=" << strategy_name
            << "):\n";
  table.Print(std::cout);
  return Status::OK();
}

Status RunSession(const ArgMap& args) {
  // Observability sinks. The trace recorder must be live before any
  // instrumented code runs, so this precedes the session construction.
  const std::string metrics_out = args.GetString("metrics-out");
  const std::string chrome_trace_out = args.GetString("trace-out");
  if (!chrome_trace_out.empty()) TraceRecorder::Global().Enable();

  VERITAS_ASSIGN_OR_RETURN(Database db, RequireData(args));
  VERITAS_ASSIGN_OR_RETURN(GroundTruth truth, RequireTruth(args, db));
  VERITAS_ASSIGN_OR_RETURN(long threads, args.GetInt("threads", 1));
  if (threads < 1) {
    return Status::InvalidArgument("--threads must be >= 1");
  }
  VERITAS_ASSIGN_OR_RETURN(
      auto strategy, MakeStrategy(args.GetString("strategy", "approx_meu"),
                                  static_cast<std::size_t>(threads)));
  VERITAS_ASSIGN_OR_RETURN(auto oracle,
                           MakeOracle(args.GetString("oracle", "perfect")));
  VERITAS_ASSIGN_OR_RETURN(long budget, args.GetInt("budget", 20));
  VERITAS_ASSIGN_OR_RETURN(long batch, args.GetInt("batch", 1));
  VERITAS_ASSIGN_OR_RETURN(long seed, args.GetInt("seed", 42));

  // Optional resilience decorators: --flaky injects deterministic oracle
  // faults (testing degraded mode), --retries wraps the chain in a
  // RetryPolicy so transient faults are retried before the session skips.
  FeedbackOracle* oracle_ptr = oracle.get();
  std::unique_ptr<FlakyOracle> flaky;
  if (args.Has("flaky")) {
    VERITAS_ASSIGN_OR_RETURN(FaultPlan plan,
                             ParseFaultPlan(args.GetString("flaky")));
    flaky = std::make_unique<FlakyOracle>(
        oracle_ptr, plan, static_cast<std::uint64_t>(seed));
    oracle_ptr = flaky.get();
  }
  // The wall-clock budget is parsed before the retry decorator so the retry
  // policy can refuse backoffs that would overrun it (see below where the
  // same deadline bounds the session itself).
  Deadline session_deadline;
  if (args.Has("deadline-ms")) {
    VERITAS_ASSIGN_OR_RETURN(long deadline_ms, args.GetInt("deadline-ms", 0));
    if (deadline_ms < 0) {
      return Status::InvalidArgument("--deadline-ms must be >= 0");
    }
    session_deadline = Deadline::AfterMillis(deadline_ms);
  }
  std::unique_ptr<RetryingOracle> retrying;
  VERITAS_ASSIGN_OR_RETURN(long retries, args.GetInt("retries", 0));
  if (retries > 0) {
    RetryPolicy policy;
    policy.max_attempts = static_cast<std::size_t>(retries) + 1;
    // Retrying must not outlive the session: stop scheduling backoff once
    // the deadline is near, and abandon the loop outright on Ctrl-C.
    policy.session_deadline = session_deadline;
    policy.cancel = &g_session_cancel;
    retrying = std::make_unique<RetryingOracle>(oracle_ptr, policy);
    oracle_ptr = retrying.get();
  }

  VERITAS_ASSIGN_OR_RETURN(auto model,
                           MakeFusionModel(args.GetString("model", "accu")));
  SessionOptions options;
  // --no-delta forces every re-fusion (lookahead and post-feedback) onto the
  // full path; with the flag absent, models with local-update structure use
  // the incremental DeltaFusionEngine.
  options.fusion.use_delta_fusion = !args.GetBool("no-delta");
  // --shards > 1 routes the MEU-family candidate scans through the
  // two-stage sharded protocol (DESIGN.md §5h); 1 is the classic flat scan.
  VERITAS_ASSIGN_OR_RETURN(long shards, args.GetInt("shards", 1));
  if (shards < 1) {
    return Status::InvalidArgument("--shards must be >= 1");
  }
  options.fusion.shards = static_cast<std::size_t>(shards);
  options.max_validations = static_cast<std::size_t>(budget);
  options.batch_size = static_cast<std::size_t>(batch);
  options.checkpoint_path = args.GetString("checkpoint");
  options.resume_path = args.GetString("resume");
  VERITAS_ASSIGN_OR_RETURN(long every, args.GetInt("checkpoint-every", 1));
  if (every < 1) {
    return Status::InvalidArgument("--checkpoint-every must be >= 1");
  }
  options.checkpoint_every_rounds = static_cast<std::size_t>(every);

  // Wall-clock budget and Ctrl-C support. Both stop paths surface as
  // DeadlineExceeded, which main() maps to exit code 3 (distinct from hard
  // errors) so scripts can distinguish "interrupted, resume me" from
  // "failed".
  options.deadline = session_deadline;
  options.cancel = &g_session_cancel;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  Rng rng(static_cast<std::uint64_t>(seed));
  FeedbackSession session(db, *model, strategy.get(), oracle_ptr, truth,
                          options, &rng);
  auto trace_or = session.Run();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  if (!trace_or.ok()) {
    if (trace_or.status().code() == StatusCode::kDeadlineExceeded &&
        !options.checkpoint_path.empty()) {
      std::cerr << "note: re-run with --resume " << options.checkpoint_path
                << " to continue where this session left off\n";
    }
    return trace_or.status();
  }
  SessionTrace trace = std::move(trace_or).value();

  TextTable table({"validated", "item(s)", "distance", "uncertainty",
                   "select time"});
  for (const SessionStep& step : trace.steps) {
    std::string items;
    for (std::size_t j = 0; j < step.items.size(); ++j) {
      if (j > 0) items += ", ";
      items += db.item(step.items[j]).name;
    }
    table.AddRow({std::to_string(step.num_validated), items,
                  Num(step.distance, 4), Num(step.uncertainty, 3),
                  Secs(step.select_seconds)});
  }
  std::cout << "initial: distance=" << Num(trace.initial_distance, 4)
            << " uncertainty=" << Num(trace.initial_uncertainty, 3) << "\n";
  table.Print(std::cout);
  const std::string steps_out = args.GetString("steps-out");
  if (!steps_out.empty()) {
    VERITAS_RETURN_IF_ERROR(WriteTraceCsv(trace, db, steps_out));
    std::cout << "wrote per-step trace to " << steps_out << "\n";
  }
  if (!metrics_out.empty()) {
    VERITAS_RETURN_IF_ERROR(
        MetricsRegistry::Global().WriteJsonFile(metrics_out));
    std::cout << "wrote metrics snapshot to " << metrics_out << "\n";
  }
  if (!chrome_trace_out.empty()) {
    VERITAS_RETURN_IF_ERROR(
        TraceRecorder::Global().WriteChromeJson(chrome_trace_out));
    std::cout << "wrote Chrome trace to " << chrome_trace_out
              << " (open in Perfetto or chrome://tracing)\n";
  }
  if (!trace.steps.empty()) {
    std::cout << "final distance reduction: "
              << Pct(trace.DistanceReductionPercent(trace.steps.size() - 1))
              << "\n";
  }
  if (!trace.skipped_items.empty() || trace.total_oracle_retries > 0 ||
      trace.fusion_nonconverged_rounds > 0 ||
      trace.fusion_fallback_rounds > 0) {
    std::cout << "resilience: skipped=" << trace.skipped_items.size()
              << " retries=" << trace.total_oracle_retries
              << " nonconverged_rounds=" << trace.fusion_nonconverged_rounds
              << " fusion_fallbacks=" << trace.fusion_fallback_rounds << "\n";
  }
  if (!options.checkpoint_path.empty()) {
    std::cout << "checkpoint written to " << options.checkpoint_path << "\n";
  }
  return Status::OK();
}

Status RunGenerate(const ArgMap& args) {
  const std::string out = args.GetString("out");
  if (out.empty()) {
    return Status::InvalidArgument("--out <observations.csv> is required");
  }
  VERITAS_ASSIGN_OR_RETURN(long items, args.GetInt("items", 500));
  VERITAS_ASSIGN_OR_RETURN(long sources, args.GetInt("sources", 38));
  VERITAS_ASSIGN_OR_RETURN(double density, args.GetDouble("density", 0.4));
  VERITAS_ASSIGN_OR_RETURN(double copiers, args.GetDouble("copiers", 0.0));
  VERITAS_ASSIGN_OR_RETURN(long seed, args.GetInt("seed", 42));
  const std::string shape = args.GetString("shape", "dense");

  SyntheticDataset data;
  if (shape == "dense") {
    DenseConfig config;
    config.num_items = static_cast<std::size_t>(items);
    config.num_sources = static_cast<std::size_t>(sources);
    config.density = density;
    config.copier_fraction = copiers;
    config.seed = static_cast<std::uint64_t>(seed);
    data = GenerateDense(config);
  } else if (shape == "longtail") {
    LongTailConfig config;
    config.num_items = static_cast<std::size_t>(items);
    config.num_sources = static_cast<std::size_t>(sources);
    config.copier_fraction = copiers;
    config.seed = static_cast<std::uint64_t>(seed);
    data = GenerateLongTail(config);
  } else {
    return Status::InvalidArgument("--shape must be dense or longtail");
  }
  VERITAS_RETURN_IF_ERROR(SaveObservations(data.db, out));
  std::cout << "wrote " << data.db.num_observations() << " observations to "
            << out << "\n";
  const std::string truth_out = args.GetString("truth-out");
  if (!truth_out.empty()) {
    VERITAS_RETURN_IF_ERROR(SaveGroundTruth(data.db, data.truth, truth_out));
    std::cout << "wrote " << data.truth.num_known() << " truths to "
              << truth_out << "\n";
  }
  return Status::OK();
}

Status RunCanonicalize(const ArgMap& args) {
  VERITAS_ASSIGN_OR_RETURN(Database db, RequireData(args));
  const std::string out = args.GetString("out");
  if (out.empty()) {
    return Status::InvalidArgument("--out <canonical.csv> is required");
  }
  CanonicalizeOptions options;
  VERITAS_ASSIGN_OR_RETURN(options.numeric_tolerance,
                           args.GetDouble("tolerance", 10.0));
  VERITAS_ASSIGN_OR_RETURN(CanonicalizeReport report,
                           CanonicalizeValues(db, options));
  VERITAS_RETURN_IF_ERROR(SaveObservations(report.db, out));
  std::cout << "merged " << report.merged_claims << " claims across "
            << report.numeric_items << " numeric items; wrote " << out
            << "\n";
  return Status::OK();
}

Status Dispatch(const ArgMap& args) {
  const std::string& command = args.command();
  if (command == "stats") return RunStats(args);
  if (command == "fuse") return RunFuse(args);
  if (command == "rank") return RunRank(args);
  if (command == "session") return RunSession(args);
  if (command == "generate") return RunGenerate(args);
  if (command == "canonicalize") return RunCanonicalize(args);
  if (command.empty() || command == "help") {
    PrintUsage();
    return Status::OK();
  }
  return Status::NotFound("unknown command: " + command);
}

}  // namespace
}  // namespace veritas

int main(int argc, char** argv) {
  const auto args = veritas::ArgMap::Parse(argc, argv);
  if (!args.ok()) {
    std::cerr << "error: " << args.status() << "\n";
    return 2;
  }
  const veritas::Status status = veritas::Dispatch(*args);
  if (!status.ok()) {
    // Deadline expiry / Ctrl-C is an orderly, resumable stop, not a failure:
    // give it its own exit code so wrappers can tell the two apart.
    if (status.code() == veritas::StatusCode::kDeadlineExceeded) {
      std::cerr << "interrupted: " << status << "\n";
      return 3;
    }
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  return 0;
}
