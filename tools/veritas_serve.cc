// veritas_serve: long-lived network daemon wrapping the SessionSupervisor
// (DESIGN.md §5i; README "Serving over the network"). Clients submit
// SessionSpecs over the CRC-framed protocol (net/frame, net/protocol),
// poll reports, scrape metrics and request a drain; the supervisor beneath
// provides admission shedding, budgets, the watchdog and durable
// manifest/checkpoint recovery exactly as in-process callers get.
//
// Lifecycle:
//   * SIGTERM / SIGINT / a kDrain request begin a graceful drain — stop
//     admitting, let running sessions checkpoint, answer report polls for a
//     short linger, exit 0. Queued sessions stay behind as durable
//     manifests; the next invocation with --recover resumes them.
//   * SIGKILL needs no cooperation at all: every admitted session's
//     manifest + checkpoint chain is already on disk, so a restarted daemon
//     with --recover sweeps them back in (CI's serve-net-smoke job drills
//     exactly this).
#include <signal.h>

#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "data/synthetic.h"
#include "net/server.h"
#include "obs/metrics.h"
#include "serve/session_supervisor.h"
#include "util/args.h"

namespace veritas {
namespace {

constexpr const char* kUsage = R"(veritas_serve -- network fusion daemon

usage: veritas_serve [run] [flags]

network
  --listen ADDR           host:port or unix:<path> (default 127.0.0.1:0 =
                          ephemeral; the bound address is printed and
                          optionally written to --addr-file)
  --addr-file PATH        write the bound address here (for scripts/CI)
  --max-connections N     concurrent connections before typed shedding
                          (default 32)
  --request-timeout-ms N  per-request read/write budget (default 10000)

snapshot (shared by every session)
  --items N --sources N   synthetic snapshot size (default 60 x 10)
  --data-seed N           snapshot seed (default 42)

supervision (see veritas_stress for semantics)
  --dir PATH              sessions directory (default serve_sessions)
  --workers N             concurrent sessions (default 4)
  --queue-depth N         waiting admissions before shedding (default 16)
  --deadline-ms N         default session deadline (default 0 = none)
  --watchdog-poll-ms N    watchdog scan period (default 5)
  --watchdog-grace-ms N   grace before graceful stop (default 25)
  --watchdog-hard-ms N    grace before hard stop (default 50)
  --max-recovery N        recovery attempts per session (default 3)
  --max-total-threads N   host-wide lookahead-thread budget (default 0)

lifecycle
  --recover               recovery-sweep the sessions dir at startup
  --recover-every-ms N    re-sweep periodically (0 = off); picks up
                          sessions evicted mid-serve without a restart
  --drain-linger-ms N     after a drain, keep answering report polls this
                          long before exiting (default 500)
)";

volatile std::sig_atomic_t g_stop_signal = 0;

void HandleStopSignal(int) { g_stop_signal = 1; }

long IntFlag(const ArgMap& args, const std::string& key, long fallback) {
  auto v = args.GetInt(key, fallback);
  if (!v.ok()) {
    std::cerr << "veritas_serve: " << v.status().ToString() << "\n";
    std::exit(2);
  }
  return *v;
}

int Run(int argc, const char* const* argv) {
  auto args_or = ArgMap::Parse(argc, argv);
  if (!args_or.ok()) {
    std::cerr << "veritas_serve: " << args_or.status().ToString() << "\n";
    return 2;
  }
  const ArgMap& args = *args_or;
  if (args.command() == "help" || args.GetBool("help")) {
    std::cout << kUsage;
    return 0;
  }

  auto address = net::ParseNetAddress(args.GetString("listen", "127.0.0.1:0"));
  if (!address.ok()) {
    std::cerr << "veritas_serve: --listen: " << address.status().ToString()
              << "\n";
    return 2;
  }

  DenseConfig data_config;
  data_config.num_items =
      static_cast<std::size_t>(IntFlag(args, "items", 60));
  data_config.num_sources =
      static_cast<std::size_t>(IntFlag(args, "sources", 10));
  data_config.seed = static_cast<std::uint64_t>(IntFlag(args, "data-seed", 42));
  const SyntheticDataset dataset = GenerateDense(data_config);

  SupervisorOptions supervisor_options;
  supervisor_options.max_concurrent_sessions =
      static_cast<std::size_t>(IntFlag(args, "workers", 4));
  supervisor_options.max_queue_depth =
      static_cast<std::size_t>(IntFlag(args, "queue-depth", 16));
  supervisor_options.sessions_dir = args.GetString("dir", "serve_sessions");
  supervisor_options.default_deadline_ms = IntFlag(args, "deadline-ms", 0);
  supervisor_options.watchdog_poll =
      std::chrono::milliseconds(IntFlag(args, "watchdog-poll-ms", 5));
  supervisor_options.watchdog_grace =
      std::chrono::milliseconds(IntFlag(args, "watchdog-grace-ms", 25));
  supervisor_options.watchdog_hard_grace =
      std::chrono::milliseconds(IntFlag(args, "watchdog-hard-ms", 50));
  supervisor_options.max_recovery_attempts =
      static_cast<std::size_t>(IntFlag(args, "max-recovery", 3));
  supervisor_options.max_total_threads =
      static_cast<std::size_t>(IntFlag(args, "max-total-threads", 0));

  SessionSupervisor supervisor(dataset.db, dataset.truth, supervisor_options);
  if (Status s = supervisor.Start(); !s.ok()) {
    std::cerr << "veritas_serve: " << s.ToString() << "\n";
    return 1;
  }
  if (args.GetBool("recover")) {
    const std::size_t recovered = supervisor.RecoverSessions();
    std::cout << "recovery sweep: re-admitted " << recovered << " session(s)"
              << std::endl;
  }

  net::NetServerOptions server_options;
  server_options.address = *address;
  server_options.max_connections =
      static_cast<std::size_t>(IntFlag(args, "max-connections", 32));
  server_options.request_timeout_ms = IntFlag(args, "request-timeout-ms",
                                              10'000);
  net::NetServer server(&supervisor, server_options);
  if (Status s = server.Start(); !s.ok()) {
    std::cerr << "veritas_serve: " << s.ToString() << "\n";
    return 1;
  }
  const std::string bound = server.bound_address().ToString();
  std::cout << "listening on " << bound << std::endl;
  const std::string addr_file = args.GetString("addr-file");
  if (!addr_file.empty()) {
    std::ofstream out(addr_file);
    out << bound << "\n";
  }

  std::signal(SIGTERM, HandleStopSignal);
  std::signal(SIGINT, HandleStopSignal);

  const long recover_every_ms = IntFlag(args, "recover-every-ms", 0);
  const long drain_linger_ms = IntFlag(args, "drain-linger-ms", 500);
  auto last_sweep = std::chrono::steady_clock::now();
  while (g_stop_signal == 0 && !server.draining()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (recover_every_ms > 0 &&
        std::chrono::steady_clock::now() - last_sweep >=
            std::chrono::milliseconds(recover_every_ms)) {
      // Periodic sweep: evicted sessions resume without a daemon restart.
      supervisor.RecoverSessions();
      last_sweep = std::chrono::steady_clock::now();
    }
  }

  std::cout << "draining" << std::endl;
  server.RequestDrain();
  // Running sessions observe the graceful stop at their next round boundary
  // and checkpoint; queued ones stay durable for the next --recover.
  while (supervisor.running_sessions() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  // Linger so clients polling reports see their terminal state instead of a
  // dead socket (they would recover via re-submit anyway, but this is
  // cheaper for everyone).
  std::this_thread::sleep_for(std::chrono::milliseconds(drain_linger_ms));
  server.Stop();
  supervisor.Shutdown();
  std::cout << "drained; " << supervisor.queued_sessions()
            << " session(s) left queued as durable manifests" << std::endl;
  return 0;
}

}  // namespace
}  // namespace veritas

int main(int argc, char** argv) { return veritas::Run(argc, argv); }
