#include "util/thread_pool.h"

namespace veritas {

namespace {

constexpr std::uint64_t PackRange(std::uint32_t head, std::uint32_t tail) {
  return (static_cast<std::uint64_t>(head) << 32) | tail;
}
constexpr std::uint32_t RangeHead(std::uint64_t r) {
  return static_cast<std::uint32_t>(r >> 32);
}
constexpr std::uint32_t RangeTail(std::uint64_t r) {
  return static_cast<std::uint32_t>(r);
}

// Owner path: claim the front local index, or fail when the range is empty.
bool PopFront(std::atomic<std::uint64_t>& range, std::uint32_t* local) {
  std::uint64_t cur = range.load(std::memory_order_relaxed);
  while (true) {
    const std::uint32_t head = RangeHead(cur);
    const std::uint32_t tail = RangeTail(cur);
    if (head >= tail) return false;
    if (range.compare_exchange_weak(cur, PackRange(head + 1, tail),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      *local = head;
      return true;
    }
  }
}

// Thief path: claim the back local index (the victim's least-promising
// chunk under the front-loaded scan order).
bool PopBack(std::atomic<std::uint64_t>& range, std::uint32_t* local) {
  std::uint64_t cur = range.load(std::memory_order_relaxed);
  while (true) {
    const std::uint32_t head = RangeHead(cur);
    const std::uint32_t tail = RangeTail(cur);
    if (head >= tail) return false;
    if (range.compare_exchange_weak(cur, PackRange(head, tail - 1),
                                    std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      *local = tail - 1;
      return true;
    }
  }
}

}  // namespace

ThreadPool::ThreadPool(std::size_t lanes) : lanes_(lanes == 0 ? 1 : lanes) {
  workers_.reserve(lanes_ - 1);
  for (std::size_t w = 1; w < lanes_; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::ExecuteChunk(Job& job, std::size_t lane,
                              std::size_t ordinal) const {
  const std::size_t begin = ordinal * job.chunk_size;
  const std::size_t end = std::min(job.n, begin + job.chunk_size);
  (*job.body)(lane, begin, end);
  // The last chunk to finish wakes the caller. Taking done_mu before the
  // notify pairs with the caller's predicate re-check, so the wakeup cannot
  // slip between its check and its wait.
  if (job.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      job.num_chunks) {
    { std::lock_guard<std::mutex> lock(job.done_mu); }
    job.done_cv.notify_all();
  }
}

void ThreadPool::RunLane(Job& job, std::size_t lane) const {
  // Own chunks, front to back.
  std::uint32_t local = 0;
  while (PopFront(job.deques[lane].range, &local)) {
    ExecuteChunk(job, lane, lane + static_cast<std::size_t>(local) * lanes_);
  }
  // Steal from the back of the other lanes, round-robin from our right
  // neighbour. One full silent sweep means every deque is empty (in-flight
  // chunks may still be running on their claimant).
  while (true) {
    bool stole = false;
    for (std::size_t off = 1; off < lanes_; ++off) {
      const std::size_t victim = (lane + off) % lanes_;
      if (PopBack(job.deques[victim].range, &local)) {
        job.steals.fetch_add(1, std::memory_order_relaxed);
        ExecuteChunk(job, lane,
                     victim + static_cast<std::size_t>(local) * lanes_);
        stole = true;
        break;
      }
    }
    if (!stole) return;
  }
}

void ThreadPool::WorkerLoop(std::size_t lane) {
  std::uint64_t seen = 0;
  while (true) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(job_mu_);
      job_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
      job = job_;
    }
    if (job != nullptr) RunLane(*job, lane);
  }
}

std::uint64_t ThreadPool::ParallelFor(std::size_t n, std::size_t chunk_size,
                                      const Body& body) {
  if (n == 0) return 0;
  if (chunk_size == 0) chunk_size = 1;
  const std::size_t num_chunks = (n + chunk_size - 1) / chunk_size;
  // Serial fast path: nothing to share, run inline with zero synchronization.
  if (lanes_ <= 1 || num_chunks <= 1) {
    body(0, 0, n);
    return 0;
  }

  auto job = std::make_shared<Job>();
  job->n = n;
  job->chunk_size = chunk_size;
  job->num_chunks = num_chunks;
  job->body = &body;
  job->deques.reset(new LaneDeque[lanes_]);
  for (std::size_t w = 0; w < lanes_; ++w) {
    // Lane w owns ordinals {w, w + L, ...} below num_chunks.
    const std::size_t owned =
        w < num_chunks ? (num_chunks - w + lanes_ - 1) / lanes_ : 0;
    job->deques[w].range.store(PackRange(0, static_cast<std::uint32_t>(owned)),
                               std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(job_mu_);
    job_ = job;
    ++epoch_;
  }
  job_cv_.notify_all();

  RunLane(*job, /*lane=*/0);

  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] {
      return job->chunks_done.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
  }
  {
    // Drop the pool's reference so a straggler waking next round sees either
    // this (fully drained) job or the next one — never a stale body.
    std::lock_guard<std::mutex> lock(job_mu_);
    if (job_ == job) job_.reset();
  }
  const std::uint64_t stolen = job->steals.load(std::memory_order_relaxed);
  total_steals_.fetch_add(stolen, std::memory_order_relaxed);
  return stolen;
}

}  // namespace veritas
