#include "util/rng.h"

#include <cassert>
#include <cmath>

#include "util/math.h"

namespace veritas {

double Rng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::Uniform(double lo, double hi) {
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t Rng::UniformIndex(std::size_t n) {
  assert(n > 0);
  return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

bool Rng::Bernoulli(double p) {
  p = ClampProb(p);
  return Uniform() < p;
}

double Rng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::Pareto(double alpha) {
  assert(alpha > 0.0);
  double u = Uniform();
  if (u <= 0.0) u = 1e-12;
  return std::pow(u, -1.0 / alpha);
}

std::size_t Rng::Categorical(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0.0;
  for (double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return UniformIndex(weights.size());
  double r = Uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(engine_()); }

}  // namespace veritas
