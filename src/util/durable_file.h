// Crash-safe file output. Every writer that produces an artifact a later
// process depends on (checkpoints, metrics snapshots, traces, bench
// baselines, CSV exports) goes through AtomicWriteFile: the contents land in
// a process-unique temp file first, are flushed and fsync'd, and only then
// renamed over the destination — with a final fsync of the parent directory
// so the rename itself survives a power cut. A crash at any point leaves
// either the complete old file or the complete new file, never a torn one.
//
// Crc32c provides the content checksum the durable formats (checkpoint v2)
// embed so that silent corruption *after* a successful write — bit rot, a
// torn sector, a truncating copy — is detected at load time instead of being
// parsed into garbage state.
#ifndef VERITAS_UTIL_DURABLE_FILE_H_
#define VERITAS_UTIL_DURABLE_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace veritas {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) of `size` bytes.
/// `seed` chains partial checksums: Crc32c(b, Crc32c(a)) == Crc32c(a + b).
/// Matches the widely deployed variant (iSCSI, leveldb, SSE4.2 crc32
/// instruction); Crc32c("123456789") == 0xE3069283.
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);
inline std::uint32_t Crc32c(std::string_view data, std::uint32_t seed = 0) {
  return Crc32c(data.data(), data.size(), seed);
}

struct AtomicWriteOptions {
  /// fsync the temp file before the rename and the parent directory after
  /// it. Off skips both syncs (still atomic against process crashes via the
  /// rename, but not against power loss); useful for high-frequency
  /// non-critical artifacts.
  bool sync = true;
};

/// Writes `contents` to `path` atomically: temp file with a process-unique
/// suffix (pid + counter, so concurrent writers to the same path never race
/// on the temp name), write + flush + fsync, rename into place, fsync of the
/// parent directory. On any failure the temp file is unlinked — failed
/// writes leave no litter and never touch the previous `path` contents.
Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       const AtomicWriteOptions& options = {});

}  // namespace veritas

#endif  // VERITAS_UTIL_DURABLE_FILE_H_
