// ThreadPool: a persistent work-stealing pool for the lookahead scans.
//
// The MEU-family strategies used to spawn fresh std::threads for every
// SelectNext round — thousands of thread creations per session, each paying
// kernel setup and cold stacks. This pool is created once per strategy and
// reused: N-1 background workers sleep on a condition variable between
// rounds, and the caller participates as lane 0, so a ParallelFor costs one
// notify + one join-free completion wait instead of N thread spawns.
//
// Scheduling: the index range is cut into fixed-size chunks and chunk
// ordinals are dealt to lanes round-robin (lane w owns chunks w, w+L,
// w+2L, ...). A strided deal means every lane starts near the *front* of the
// range, which the MEU scan exploits by placing last round's best candidates
// first — the branch-and-bound threshold tightens early no matter which lane
// runs first. Each lane pops its own chunks front-to-back; an idle lane
// steals a victim's *back* chunk (the least-promising work). A lane's deque
// is a single packed head|tail atomic, so owner pops and steals are one CAS
// each and a chunk can never execute twice — TSan-clean by construction.
//
// Determinism contract: the pool guarantees every index in [0, n) is
// executed exactly once, but NOT in a fixed order and NOT on a fixed lane.
// Callers that need deterministic results must write to disjoint slots and
// reduce after ParallelFor returns (see MeuStrategy for the pattern).
//
// Not reentrant: ParallelFor must not be called from inside a body, and a
// pool must not run two ParallelFors concurrently. Bodies poll their own
// cancellation tokens; a cancelled body should return quickly and let the
// remaining chunks drain as no-ops.
#ifndef VERITAS_UTIL_THREAD_POOL_H_
#define VERITAS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace veritas {

class ThreadPool {
 public:
  /// Runs on a half-open index range [begin, end); `lane` in [0, lanes()) is
  /// stable within one chunk and indexes per-lane scratch (workspaces).
  using Body =
      std::function<void(std::size_t lane, std::size_t begin, std::size_t end)>;

  /// `lanes` including the caller; 0 and 1 both mean "serial" (no workers).
  explicit ThreadPool(std::size_t lanes);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t lanes() const { return lanes_; }

  /// Executes body over [0, n) in chunks of `chunk_size`, blocking until
  /// every index ran. Returns the number of successful steals (0 on the
  /// inline serial path). The caller participates as lane 0.
  std::uint64_t ParallelFor(std::size_t n, std::size_t chunk_size,
                            const Body& body);

  /// Lifetime total of successful steals across all ParallelFor calls.
  std::uint64_t steals() const {
    return total_steals_.load(std::memory_order_relaxed);
  }

 private:
  // One packed [head, tail) range of chunk ordinals in *local* index space
  // (local t on lane w = global chunk w + t * lanes). head sits in the high
  // 32 bits. Owner pops advance head, steals retreat tail; both are a single
  // CAS on the same word, so the range can never be claimed twice.
  struct alignas(64) LaneDeque {
    std::atomic<std::uint64_t> range{0};
  };

  // Heap-allocated per ParallelFor and shared with the workers, so a
  // straggler waking after the next round started only ever sees a fully
  // drained old job — never a half-initialized new one.
  struct Job {
    std::size_t n = 0;
    std::size_t chunk_size = 0;
    std::size_t num_chunks = 0;
    const Body* body = nullptr;
    std::unique_ptr<LaneDeque[]> deques;  // One per lane (atomics don't move).
    std::atomic<std::size_t> chunks_done{0};
    std::atomic<std::uint64_t> steals{0};
    std::mutex done_mu;
    std::condition_variable done_cv;
  };

  void WorkerLoop(std::size_t lane);
  /// Drains lane's own deque front-to-back, then steals round-robin.
  void RunLane(Job& job, std::size_t lane) const;
  void ExecuteChunk(Job& job, std::size_t lane, std::size_t ordinal) const;

  const std::size_t lanes_;
  std::atomic<std::uint64_t> total_steals_{0};

  std::mutex job_mu_;
  std::condition_variable job_cv_;
  std::shared_ptr<Job> job_;       // Current round's job (guarded by job_mu_).
  std::uint64_t epoch_ = 0;        // Bumped per ParallelFor (guarded).
  bool stop_ = false;              // Guarded by job_mu_.
  std::vector<std::thread> workers_;
};

}  // namespace veritas

#endif  // VERITAS_UTIL_THREAD_POOL_H_
