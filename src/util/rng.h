// Deterministic random number generation. All stochastic components in
// Veritas (synthetic data generators, Random strategy, noisy oracles) draw
// from an explicitly seeded Rng so that every experiment is reproducible.
#ifndef VERITAS_UTIL_RNG_H_
#define VERITAS_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

namespace veritas {

/// A seeded Mersenne-Twister wrapper with the distributions the library
/// needs. Not thread-safe; use one Rng per thread.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n-1]. n must be > 0.
  std::size_t UniformIndex(std::size_t n);

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Normal sample with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Pareto-like heavy-tail sample in [1, inf): 1 / U^{1/alpha}.
  /// Larger alpha -> lighter tail.
  double Pareto(double alpha);

  /// Samples an index from an (unnormalized) non-negative weight vector.
  /// All-zero weights fall back to uniform. Weights must not be empty.
  std::size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->size() < 2) return;
    for (std::size_t i = v->size() - 1; i > 0; --i) {
      std::swap((*v)[i], (*v)[UniformIndex(i + 1)]);
    }
  }

  /// Derives an independent child generator (for per-component streams).
  Rng Fork();

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace veritas

#endif  // VERITAS_UTIL_RNG_H_
