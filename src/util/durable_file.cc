#include "util/durable_file.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#if defined(_WIN32)
#include <fstream>
#else
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace veritas {

namespace {

// CRC-32C lookup table (reflected 0x1EDC6F41), built once on first use.
const std::uint32_t* Crc32cTable() {
  static const std::uint32_t* table = [] {
    static std::uint32_t t[256];
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc & 1u) ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + ": " + path + " (" + std::strerror(errno) + ")";
}

// Directory part of `path` ("." when the path has no separator), for the
// parent fsync that makes the rename itself durable.
std::string ParentDirectory(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const std::uint32_t* table = Crc32cTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

Status AtomicWriteFile(const std::string& path, std::string_view contents,
                       const AtomicWriteOptions& options) {
  // Unique temp name: two processes (or threads) checkpointing the same
  // path must not scribble into each other's temp file, and a failed write
  // must not clobber a concurrent writer's in-flight data.
  static std::atomic<std::uint64_t> write_counter{0};
  const std::uint64_t serial =
      write_counter.fetch_add(1, std::memory_order_relaxed);
#if defined(_WIN32)
  const std::string tmp = path + ".tmp." + std::to_string(serial);
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::IoError("cannot open temp file for writing: " + tmp);
    }
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    out.flush();
    if (!out.good()) {
      std::remove(tmp.c_str());
      return Status::IoError("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot move temp file into place: " + path);
  }
  (void)options;
  return Status::OK();
#else
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(serial);
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open temp file", tmp));
  }
  const auto fail = [&](const std::string& what) {
    const Status status = Status::IoError(ErrnoMessage(what, tmp));
    ::close(fd);
    ::unlink(tmp.c_str());  // Failed writes leave no litter behind.
    return status;
  };
  const char* p = contents.data();
  std::size_t remaining = contents.size();
  while (remaining > 0) {
    const ::ssize_t n = ::write(fd, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      return fail("write failed");
    }
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  if (options.sync && ::fsync(fd) != 0) {
    return fail("fsync failed");
  }
  if (::close(fd) != 0) {
    const Status status = Status::IoError(ErrnoMessage("close failed", tmp));
    ::unlink(tmp.c_str());
    return status;
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const Status status =
        Status::IoError(ErrnoMessage("cannot move temp file into place", path));
    ::unlink(tmp.c_str());
    return status;
  }
  if (options.sync) {
    // The rename is only durable once the directory entry itself is synced.
    const std::string dir = ParentDirectory(path);
    const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (dfd >= 0) {
      // Some filesystems refuse fsync on directories; the rename already
      // happened, so a sync failure here downgrades durability but must not
      // report the (complete, visible) write as failed.
      (void)::fsync(dfd);
      ::close(dfd);
    }
  }
  return Status::OK();
#endif
}

}  // namespace veritas
