#include "util/retry.h"

#include <algorithm>
#include <cmath>

namespace veritas {

bool RetryPolicy::IsRetryable(StatusCode code) const {
  return std::find(retryable_codes.begin(), retryable_codes.end(), code) !=
         retryable_codes.end();
}

double RetryPolicy::BackoffSeconds(std::size_t retry, Rng* rng) const {
  if (retry == 0) retry = 1;
  double backoff = initial_backoff_seconds *
                   std::pow(backoff_multiplier,
                            static_cast<double>(retry - 1));
  backoff = std::min(backoff, max_backoff_seconds);
  if (rng != nullptr && jitter_fraction > 0.0) {
    backoff *= 1.0 + rng->Uniform(-jitter_fraction, jitter_fraction);
  }
  return std::max(backoff, 0.0);
}

}  // namespace veritas
