// Minimal command-line argument parsing for the veritas_cli tool:
// one positional command followed by --key value pairs and --flag switches.
#ifndef VERITAS_UTIL_ARGS_H_
#define VERITAS_UTIL_ARGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace veritas {

/// Parsed command line: `prog <command> [--key value | --flag]...`.
class ArgMap {
 public:
  /// Parses argv. Every token starting with "--" is an option; if the next
  /// token exists and is not an option, it becomes the value, otherwise the
  /// option is a boolean flag. The first non-option token is the command.
  static Result<ArgMap> Parse(int argc, const char* const* argv);

  const std::string& command() const { return command_; }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  /// String option with fallback.
  std::string GetString(const std::string& key,
                        const std::string& fallback = "") const;

  /// Integer option; InvalidArgument if present but unparsable.
  Result<long> GetInt(const std::string& key, long fallback) const;

  /// Double option; InvalidArgument if present but unparsable.
  Result<double> GetDouble(const std::string& key, double fallback) const;

  /// True when --key appeared (with or without a value).
  bool GetBool(const std::string& key) const { return Has(key); }

  /// Keys present (for error messages / debugging).
  std::vector<std::string> Keys() const;

 private:
  std::string command_;
  std::map<std::string, std::string> values_;
};

}  // namespace veritas

#endif  // VERITAS_UTIL_ARGS_H_
