// Status: lightweight error propagation without exceptions, in the spirit of
// absl::Status / rocksdb::Status. Public Veritas APIs that can fail return a
// Status (or Result<T>, see result.h) instead of throwing.
#ifndef VERITAS_UTIL_STATUS_H_
#define VERITAS_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace veritas {

/// Canonical error space for the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kUnimplemented,
  kUnavailable,        ///< Transient failure; retrying may succeed.
  kDeadlineExceeded,   ///< The operation (or its retry budget) timed out.
  kAbstained,          ///< The answering party declined; retrying is futile.
  kResourceExhausted,  ///< A quota/capacity limit tripped (admission queue
                       ///< full, session budget spent); retry later or with
                       ///< a smaller request. Evicted sessions are resumable.
};

/// Returns a stable human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy on the OK path (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Abstained(std::string msg) {
    return Status(StatusCode::kAbstained, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

}  // namespace veritas

/// Propagates a non-OK Status to the caller. Usage:
///   VERITAS_RETURN_IF_ERROR(DoThing());
#define VERITAS_RETURN_IF_ERROR(expr)           \
  do {                                          \
    ::veritas::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // VERITAS_UTIL_STATUS_H_
