#include "util/stats.h"

#include <algorithm>
#include <cmath>

namespace veritas {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = Mean(xs);
  double sum = 0.0;
  for (double x : xs) sum += (x - m) * (x - m);
  return sum / static_cast<double>(xs.size());
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  q = std::min(std::max(q, 0.0), 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace veritas
