// Per-session resource budgets for the multi-session supervisor. A server
// hosting many concurrent feedback sessions over a shared snapshot cannot
// let one tenant grow its priors/trace/fusion state without bound or spin
// validation rounds forever: when a session's budget is spent it is evicted
// to its durable checkpoint (the PR 4 recovery chain) and can be re-admitted
// later, instead of degrading every co-resident session.
//
// Accounting is *approximate by design*: the tracked bytes are an estimate
// of the session's dominant heap state (priors, recorded steps, fusion
// posteriors), not an allocator audit. The point is a stable, cheap,
// deterministic trip wire — the same session always evicts at the same
// round — not a malloc-accurate gauge.
#ifndef VERITAS_UTIL_RESOURCE_BUDGET_H_
#define VERITAS_UTIL_RESOURCE_BUDGET_H_

#include <cstddef>
#include <string>

namespace veritas {

/// Limits for one session. Zero means unlimited for each field, so the
/// struct can sit in an options struct without an optional wrapper.
struct ResourceBudget {
  /// Cap on the session's approximate resident bytes (see ResourceUsage).
  std::size_t max_approx_bytes = 0;
  /// Cap on validation rounds executed in one admission ("per run", not
  /// lifetime): a resumed session gets a fresh quota, so eviction/resume
  /// cycles always make progress and terminate.
  std::size_t max_rounds_per_run = 0;

  /// True when any limit is set.
  bool limited() const {
    return max_approx_bytes > 0 || max_rounds_per_run > 0;
  }
};

/// A session's consumption, measured at a round boundary.
struct ResourceUsage {
  std::size_t approx_bytes = 0;
  std::size_t rounds_this_run = 0;
};

/// Which limit (if any) `usage` has tripped.
enum class BudgetVerdict {
  kWithin = 0,
  kBytesExceeded,
  kRoundsExceeded,
};

/// Checks `usage` against `budget`. Byte pressure outranks the round quota
/// when both trip (memory is the limit that endangers co-resident sessions).
BudgetVerdict CheckBudget(const ResourceBudget& budget,
                          const ResourceUsage& usage);

/// Human-readable breach description for eviction status messages, e.g.
/// "approx bytes 123456 > budget 65536". Empty for kWithin.
std::string DescribeBudgetBreach(BudgetVerdict verdict,
                                 const ResourceBudget& budget,
                                 const ResourceUsage& usage);

}  // namespace veritas

#endif  // VERITAS_UTIL_RESOURCE_BUDGET_H_
