#include "util/fault_injection.h"

#include <cstdlib>
#include <sstream>

#include "util/strings.h"

namespace veritas {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kNone:
      return "none";
    case FaultKind::kUnavailable:
      return "unavailable";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kAbstain:
      return "abstain";
  }
  return "unknown";
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

std::uint64_t FaultInjector::SiteSeed(const std::string& site) const {
  // FNV-1a: stable across platforms, unlike std::hash.
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : site) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h ^ seed_;
}

void FaultInjector::SetPlan(const std::string& site, FaultPlan plan) {
  Site s;
  s.plan = plan;
  s.engine.seed(SiteSeed(site));
  sites_[site] = std::move(s);
}

bool FaultInjector::HasPlan(const std::string& site) const {
  return sites_.count(site) > 0;
}

FaultOutcome FaultInjector::Next(const std::string& site) {
  FaultOutcome outcome;
  auto it = sites_.find(site);
  if (it == sites_.end()) return outcome;
  Site& s = it->second;
  ++s.calls;
  bool triggered = s.calls <= s.plan.fail_first_n;
  if (!triggered && s.plan.fail_every_k > 0) {
    triggered = s.calls % s.plan.fail_every_k == 0;
  }
  if (!triggered && s.plan.probability > 0.0) {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    triggered = dist(s.engine) < s.plan.probability;
  }
  if (triggered) {
    outcome.kind = s.plan.kind;
    outcome.latency_seconds = s.plan.latency_seconds;
    if (outcome.kind != FaultKind::kNone) ++s.faults;
  }
  return outcome;
}

std::size_t FaultInjector::calls(const std::string& site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

std::size_t FaultInjector::faults(const std::string& site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.faults;
}

void FaultInjector::Reset() {
  for (auto& [site, s] : sites_) {
    s.calls = 0;
    s.faults = 0;
    s.engine.seed(SiteSeed(site));
  }
}

std::string FaultInjector::SerializeState() const {
  std::ostringstream out;
  out << sites_.size();
  for (const auto& [site, s] : sites_) {
    out << " " << site << " " << s.calls << " " << s.faults << " "
        << s.engine;  // mt19937_64 streams as space-separated integers.
  }
  return out.str();
}

Status FaultInjector::RestoreState(const std::string& state) {
  std::istringstream in(state);
  std::size_t n = 0;
  if (!(in >> n)) {
    return Status::InvalidArgument("fault injector state: missing site count");
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::string site;
    std::size_t calls = 0, faults = 0;
    if (!(in >> site >> calls >> faults)) {
      return Status::InvalidArgument(
          "fault injector state: truncated site record");
    }
    auto it = sites_.find(site);
    if (it == sites_.end()) {
      return Status::FailedPrecondition(
          "fault injector state names unknown site '" + site +
          "'; install its plan before restoring");
    }
    it->second.calls = calls;
    it->second.faults = faults;
    if (!(in >> it->second.engine)) {
      return Status::InvalidArgument(
          "fault injector state: bad RNG stream for site '" + site + "'");
    }
  }
  return Status::OK();
}

namespace {

Result<double> ParsePlanNumber(const std::string& text) {
  char* end = nullptr;
  const double parsed = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad fault plan number: '" + text + "'");
  }
  return parsed;
}

}  // namespace

Result<FaultPlan> ParseFaultPlan(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) {
    return Status::InvalidArgument("empty fault plan spec");
  }
  for (const std::string& part : Split(spec, ',')) {
    const std::size_t eq = part.find('=');
    if (eq == std::string::npos) {
      // Bare number: shorthand for prob=<number>.
      VERITAS_ASSIGN_OR_RETURN(plan.probability, ParsePlanNumber(part));
      continue;
    }
    const std::string key = part.substr(0, eq);
    const std::string value = part.substr(eq + 1);
    if (key == "prob") {
      VERITAS_ASSIGN_OR_RETURN(plan.probability, ParsePlanNumber(value));
    } else if (key == "first") {
      VERITAS_ASSIGN_OR_RETURN(double v, ParsePlanNumber(value));
      plan.fail_first_n = static_cast<std::size_t>(v);
    } else if (key == "every") {
      VERITAS_ASSIGN_OR_RETURN(double v, ParsePlanNumber(value));
      plan.fail_every_k = static_cast<std::size_t>(v);
    } else if (key == "latency") {
      VERITAS_ASSIGN_OR_RETURN(plan.latency_seconds, ParsePlanNumber(value));
    } else if (key == "kind") {
      if (value == "unavailable") {
        plan.kind = FaultKind::kUnavailable;
      } else if (value == "timeout") {
        plan.kind = FaultKind::kTimeout;
      } else if (value == "abstain") {
        plan.kind = FaultKind::kAbstain;
      } else if (value == "none") {
        plan.kind = FaultKind::kNone;
      } else {
        return Status::InvalidArgument("unknown fault kind: '" + value + "'");
      }
    } else {
      return Status::InvalidArgument("unknown fault plan key: '" + key + "'");
    }
  }
  if (plan.probability < 0.0 || plan.probability > 1.0) {
    return Status::InvalidArgument("fault probability must be in [0, 1]");
  }
  if (plan.latency_seconds < 0.0) {
    return Status::InvalidArgument("fault latency must be >= 0");
  }
  return plan;
}

}  // namespace veritas
