#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace veritas {

std::vector<std::string> Split(std::string_view text, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view text) {
  std::size_t b = 0;
  std::size_t e = text.size();
  while (b < e && std::isspace(static_cast<unsigned char>(text[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(text[e - 1]))) --e;
  return std::string(text.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return std::string(buf);
}

}  // namespace veritas
