// Minimal CSV reading/writing, sufficient for the (source,item,value) triple
// files and ground-truth files used by data/loader.*. Supports RFC-4180-style
// double-quoted fields containing the delimiter or escaped quotes.
#ifndef VERITAS_UTIL_CSV_H_
#define VERITAS_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace veritas {

/// One parsed CSV row.
using CsvRow = std::vector<std::string>;

/// Parses a single CSV line into fields. Handles quoted fields; does not
/// handle embedded newlines (rows are line-delimited in Veritas files).
CsvRow ParseCsvLine(std::string_view line, char delim = ',');

/// Escapes a field for CSV output (quotes it when needed).
std::string EscapeCsvField(std::string_view field, char delim = ',');

/// Serializes a row.
std::string FormatCsvRow(const CsvRow& row, char delim = ',');

/// Reads an entire CSV file. Skips blank lines and lines starting with '#'
/// (only between rows); a quoted field left open at a line break continues
/// the row across physical lines, so WriteCsvFile output with embedded
/// newlines round-trips.
Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path,
                                        char delim = ',');

/// Writes rows to a file, overwriting it.
Status WriteCsvFile(const std::string& path,
                    const std::vector<CsvRow>& rows, char delim = ',');

}  // namespace veritas

#endif  // VERITAS_UTIL_CSV_H_
