#include "util/csv.h"

#include <fstream>

#include "util/strings.h"

namespace veritas {

CsvRow ParseCsvLine(std::string_view line, char delim) {
  CsvRow out;
  std::string field;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == delim) {
      out.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // Ignore stray carriage returns from CRLF files.
    } else {
      field.push_back(c);
    }
  }
  out.push_back(std::move(field));
  return out;
}

std::string EscapeCsvField(std::string_view field, char delim) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatCsvRow(const CsvRow& row, char delim) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(delim);
    out += EscapeCsvField(row[i], delim);
  }
  return out;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open file: " + path);
  }
  std::vector<CsvRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    rows.push_back(ParseCsvLine(line, delim));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char delim) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::IoError("cannot open file for writing: " + path);
  }
  for (const CsvRow& row : rows) {
    out << FormatCsvRow(row, delim) << '\n';
  }
  if (!out.good()) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace veritas
