#include "util/csv.h"

#include <fstream>

#include "util/durable_file.h"
#include "util/strings.h"

namespace veritas {

namespace {

// Feeds one physical line into a partially parsed row. A quote left open at
// the end of the line means the row continues on the next physical line
// (the field contains an embedded newline); the caller re-feeds with the
// same state. Does not push the trailing field — the caller does that once
// the row is complete.
void ConsumeCsvLine(std::string_view line, char delim, CsvRow* row,
                    std::string* field, bool* in_quotes) {
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (*in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field->push_back('"');
          ++i;
        } else {
          *in_quotes = false;
        }
      } else {
        field->push_back(c);
      }
    } else if (c == '"' && field->empty()) {
      *in_quotes = true;
    } else if (c == delim) {
      row->push_back(std::move(*field));
      field->clear();
    } else if (c == '\r') {
      // Ignore stray carriage returns from CRLF files.
    } else {
      field->push_back(c);
    }
  }
}

}  // namespace

CsvRow ParseCsvLine(std::string_view line, char delim) {
  CsvRow out;
  std::string field;
  bool in_quotes = false;
  ConsumeCsvLine(line, delim, &out, &field, &in_quotes);
  out.push_back(std::move(field));
  return out;
}

std::string EscapeCsvField(std::string_view field, char delim) {
  bool needs_quotes = false;
  for (char c : field) {
    if (c == delim || c == '"' || c == '\n' || c == '\r') {
      needs_quotes = true;
      break;
    }
  }
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string FormatCsvRow(const CsvRow& row, char delim) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(delim);
    out += EscapeCsvField(row[i], delim);
  }
  return out;
}

Result<std::vector<CsvRow>> ReadCsvFile(const std::string& path, char delim) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open file: " + path);
  }
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  std::string line;
  while (std::getline(in, line)) {
    // Comment/blank skipping applies only between rows: inside an open
    // quoted field these are literal content of the row being continued.
    if (!in_quotes) {
      const std::string trimmed = Trim(line);
      if (trimmed.empty() || trimmed[0] == '#') continue;
    }
    ConsumeCsvLine(line, delim, &row, &field, &in_quotes);
    if (in_quotes) {
      // WriteCsvFile escaped an embedded newline into a quoted field; the
      // getline boundary is part of the field, and the row goes on.
      field.push_back('\n');
      continue;
    }
    row.push_back(std::move(field));
    field.clear();
    rows.push_back(std::move(row));
    row.clear();
  }
  // Unterminated quote at EOF: keep the partial row rather than drop data
  // (mirrors the lenient line parser, which closes the field at line end).
  if (in_quotes || !field.empty() || !row.empty()) {
    row.push_back(std::move(field));
    rows.push_back(std::move(row));
  }
  return rows;
}

Status WriteCsvFile(const std::string& path, const std::vector<CsvRow>& rows,
                    char delim) {
  std::string contents;
  for (const CsvRow& row : rows) {
    contents += FormatCsvRow(row, delim);
    contents.push_back('\n');
  }
  // Atomic replace (temp + fsync + rename): a crash or disk-full failure
  // mid-write leaves the previous file intact, never a truncated CSV.
  return AtomicWriteFile(path, contents);
}

}  // namespace veritas
