// String helpers for CSV parsing and report formatting.
#ifndef VERITAS_UTIL_STRINGS_H_
#define VERITAS_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace veritas {

/// Splits on a single-character delimiter. Keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view text);

/// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lowercases ASCII characters.
std::string ToLower(std::string_view text);

/// Formats a double with fixed precision (no trailing-garbage guarantee of
/// std::to_string).
std::string FormatDouble(double value, int precision);

}  // namespace veritas

#endif  // VERITAS_UTIL_STRINGS_H_
