#include "util/math.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

namespace veritas {

double Clamp(double x, double lo, double hi) {
  return std::min(std::max(x, lo), hi);
}

double ClampProb(double p) { return Clamp(p, 0.0, 1.0); }

double ClampAccuracy(double a) { return Clamp(a, kMinAccuracy, kMaxAccuracy); }

double EntropyTerm(double p) {
  if (!std::isfinite(p)) return 0.0;
  p = ClampProb(p);
  if (p <= 0.0) return 0.0;
  return -p * std::log(p);
}

double Entropy(const std::vector<double>& probs) {
  double h = 0.0;
  for (double p : probs) h += EntropyTerm(p);
  return h;
}

double MaxEntropy(std::size_t n) {
  if (n <= 1) return 0.0;
  return std::log(static_cast<double>(n));
}

double LogSumExp(const std::vector<double>& xs) {
  if (xs.empty()) return -std::numeric_limits<double>::infinity();
  const double m = *std::max_element(xs.begin(), xs.end());
  if (!std::isfinite(m)) return m;
  double sum = 0.0;
  for (double x : xs) sum += std::exp(x - m);
  return m + std::log(sum);
}

std::vector<double> SoftmaxFromLogScores(const std::vector<double>& scores) {
  std::vector<double> out;
  if (scores.empty()) return out;
  const double lse = LogSumExp(scores);
  out.reserve(scores.size());
  for (double s : scores) out.push_back(std::exp(s - lse));
  return out;
}

std::vector<double> Normalize(const std::vector<double>& weights) {
  std::vector<double> out(weights.size(), 0.0);
  const auto usable = [](double w) { return std::isfinite(w) && w > 0.0; };
  double sum = 0.0;
  for (double w : weights) {
    if (usable(w)) sum += w;
  }
  if (sum <= 0.0 || !std::isfinite(sum)) {
    if (!out.empty()) {
      const double u = 1.0 / static_cast<double>(out.size());
      std::fill(out.begin(), out.end(), u);
    }
    return out;
  }
  for (std::size_t i = 0; i < weights.size(); ++i) {
    out[i] = usable(weights[i]) ? weights[i] / sum : 0.0;
  }
  return out;
}

Status CheckFinite(const std::vector<double>& values, const char* what) {
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (!std::isfinite(values[i])) {
      return Status::Internal(std::string(what) + ": non-finite value at index " +
                              std::to_string(i));
    }
  }
  return Status::OK();
}

std::size_t ArgMax(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  return static_cast<std::size_t>(
      std::max_element(xs.begin(), xs.end()) - xs.begin());
}

bool NearlyEqual(double a, double b, double tol) {
  return std::fabs(a - b) <= tol;
}

}  // namespace veritas
