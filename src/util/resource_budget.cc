#include "util/resource_budget.h"

namespace veritas {

BudgetVerdict CheckBudget(const ResourceBudget& budget,
                          const ResourceUsage& usage) {
  if (budget.max_approx_bytes > 0 &&
      usage.approx_bytes > budget.max_approx_bytes) {
    return BudgetVerdict::kBytesExceeded;
  }
  if (budget.max_rounds_per_run > 0 &&
      usage.rounds_this_run >= budget.max_rounds_per_run) {
    return BudgetVerdict::kRoundsExceeded;
  }
  return BudgetVerdict::kWithin;
}

std::string DescribeBudgetBreach(BudgetVerdict verdict,
                                 const ResourceBudget& budget,
                                 const ResourceUsage& usage) {
  switch (verdict) {
    case BudgetVerdict::kWithin:
      return "";
    case BudgetVerdict::kBytesExceeded:
      return "approx bytes " + std::to_string(usage.approx_bytes) +
             " > budget " + std::to_string(budget.max_approx_bytes);
    case BudgetVerdict::kRoundsExceeded:
      return "validation rounds this run " +
             std::to_string(usage.rounds_this_run) + " >= quota " +
             std::to_string(budget.max_rounds_per_run);
  }
  return "";
}

}  // namespace veritas
