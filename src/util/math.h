// Numerical helpers shared across fusion and feedback code: entropies,
// log-sum-exp softmax, probability clamping.
//
// All entropies in Veritas use the natural logarithm; this matches the worked
// numbers in the paper (e.g. H = 0.276 nats for p = {0.921, 0.079}).
#ifndef VERITAS_UTIL_MATH_H_
#define VERITAS_UTIL_MATH_H_

#include <cstddef>
#include <vector>

#include "util/status.h"

namespace veritas {

/// Probabilities are clamped to [kProbEpsilon, 1 - kProbEpsilon] wherever a
/// log or odds ratio would otherwise diverge.
inline constexpr double kProbEpsilon = 1e-12;

/// Source accuracies are clamped to [kMinAccuracy, kMaxAccuracy] so the odds
/// A/(1-A) in the Accu formula (Eq. 1) stay finite.
inline constexpr double kMinAccuracy = 1e-4;
inline constexpr double kMaxAccuracy = 1.0 - 1e-4;

/// Clamps x into [lo, hi].
double Clamp(double x, double lo, double hi);

/// Clamps a probability into [0, 1].
double ClampProb(double p);

/// Clamps a source accuracy into [kMinAccuracy, kMaxAccuracy].
double ClampAccuracy(double a);

/// -p*ln(p), with the 0*ln(0) = 0 convention. p outside [0,1] is clamped;
/// NaN/Inf inputs contribute 0 instead of poisoning the sum.
double EntropyTerm(double p);

/// Shannon entropy (nats) of a distribution. Does not require the input to be
/// normalized exactly; each term is computed independently.
double Entropy(const std::vector<double>& probs);

/// Maximum possible entropy of a distribution over n outcomes: ln(n).
double MaxEntropy(std::size_t n);

/// log(sum_i exp(x_i)) computed stably. Empty input yields -inf.
double LogSumExp(const std::vector<double>& xs);

/// Normalized softmax of log-scores: out_i = exp(x_i) / sum_j exp(x_j).
/// Stable for widely spread scores. Empty input yields empty output.
std::vector<double> SoftmaxFromLogScores(const std::vector<double>& scores);

/// Normalizes a non-negative vector to sum to 1. All-zero input becomes the
/// uniform distribution. Negative and non-finite weights are treated as 0 so
/// a single NaN/Inf cannot poison the whole distribution.
std::vector<double> Normalize(const std::vector<double>& weights);

/// Internal error when any value is NaN or +/-Inf; `what` names the vector
/// in the message (e.g. "prior distribution"). Use this at trust boundaries
/// so non-finite numbers surface as a Status instead of propagating into
/// strategy scores.
Status CheckFinite(const std::vector<double>& values, const char* what);

/// Index of the maximum element; first occurrence wins. Empty input yields 0.
std::size_t ArgMax(const std::vector<double>& xs);

/// True when |a - b| <= tol.
bool NearlyEqual(double a, double b, double tol);

}  // namespace veritas

#endif  // VERITAS_UTIL_MATH_H_
