// Generic retry execution for Result<T>-returning callables. Transient
// failures (Status::Unavailable, Status::DeadlineExceeded) are the norm once
// a real expert or crowdsourcing platform answers validation requests; a
// RetryPolicy bounds how hard the system tries before giving up so one
// silent worker cannot stall a whole feedback session.
//
// Backoff is *virtual*: the schedule is computed and accounted against the
// overall deadline, but never slept. That keeps retrying sessions
// deterministic and fast in tests; a production transport can sleep for
// RetryStats::total_backoff_seconds if it wants wall-clock pacing.
#ifndef VERITAS_UTIL_RETRY_H_
#define VERITAS_UTIL_RETRY_H_

#include <chrono>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/cancellation.h"
#include "util/result.h"
#include "util/rng.h"

namespace veritas {

/// Bounds on the retry loop.
struct RetryPolicy {
  /// Total tries including the first (1 = no retries).
  std::size_t max_attempts = 3;
  /// Backoff before retry i (1-based) is
  /// initial * multiplier^(i-1), capped at `max_backoff_seconds`.
  double initial_backoff_seconds = 0.1;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 10.0;
  /// Each backoff is scaled by 1 + U(-jitter, +jitter) when an Rng is
  /// provided (decorrelates retry storms; 0 = deterministic schedule).
  double jitter_fraction = 0.0;
  /// Overall virtual-time budget: retrying stops once the accumulated
  /// backoff would exceed this.
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Wall-clock session deadline (e.g. SessionOptions::deadline). Retrying
  /// stops — reporting the attempts made so far — once the deadline has
  /// expired or the next backoff would overrun the time remaining, instead
  /// of burning schedule past `--deadline-ms`. Default: never expires.
  Deadline session_deadline;
  /// Cooperative cancellation (not owned; may be null). A stop request of
  /// any severity abandons the retry loop before the next attempt: an
  /// operator cancelling a session must not wait out a backoff schedule.
  const CancellationToken* cancel = nullptr;
  /// Codes worth retrying; everything else fails fast.
  std::vector<StatusCode> retryable_codes = {StatusCode::kUnavailable,
                                             StatusCode::kDeadlineExceeded};

  bool IsRetryable(StatusCode code) const;

  /// Backoff before the `retry`-th retry (1-based), jittered by `rng` (may
  /// be null).
  double BackoffSeconds(std::size_t retry, Rng* rng) const;
};

/// What happened during one RetryCall.
struct RetryStats {
  std::size_t attempts = 0;               ///< Tries actually made.
  double total_backoff_seconds = 0.0;     ///< Virtual backoff accumulated.
  bool deadline_expired = false;          ///< Stopped by a deadline (virtual
                                          ///< budget or session wall clock).
  bool cancelled = false;                 ///< Stopped by a cancel request.
  Status last_error = Status::OK();       ///< Last non-OK status observed.
};

/// Runs `fn` (returning Result<T>) until it succeeds, a non-retryable error
/// occurs, attempts run out, the virtual deadline expires, the session
/// deadline is (or would be) overrun, or a cancellation is requested.
/// `stats` and `rng` may be null. Returns the successful value, the first
/// non-retryable error, or — after exhaustion — the last transient error
/// (wrapped in DeadlineExceeded when a deadline or cancellation ended the
/// loop, with the attempts made so far in the message).
template <typename T, typename Fn>
Result<T> RetryCall(const RetryPolicy& policy, Fn&& fn, Rng* rng = nullptr,
                    RetryStats* stats = nullptr) {
  RetryStats local;
  RetryStats& s = stats ? *stats : local;
  s = RetryStats();
  const auto abandoned = [&s](const char* why) {
    return Status::DeadlineExceeded(
        std::string("retry abandoned (") + why + ") after " +
        std::to_string(s.attempts) + " attempt(s); last error: " +
        s.last_error.ToString());
  };
  const std::size_t max_attempts = policy.max_attempts > 0
                                       ? policy.max_attempts
                                       : static_cast<std::size_t>(1);
  for (std::size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    ++s.attempts;
    Result<T> result = fn();
    if (result.ok()) return result;
    s.last_error = result.status();
    if (!policy.IsRetryable(result.status().code())) return result;
    if (attempt == max_attempts) return result;
    // Real-time bounds, checked before the backoff is even scheduled: a
    // cancelled or out-of-time session must not keep consuming schedule.
    if (StopRequested(policy.cancel)) {
      s.cancelled = true;
      return abandoned("cancellation requested");
    }
    const double backoff = policy.BackoffSeconds(attempt, rng);
    if (policy.session_deadline.has_deadline()) {
      const double remaining =
          std::chrono::duration<double>(policy.session_deadline.remaining())
              .count();
      // Virtual backoff accounts against the wall clock left: retrying past
      // the session deadline would only delay the eviction/stop path.
      if (remaining <= 0.0 || s.total_backoff_seconds + backoff > remaining) {
        s.deadline_expired = true;
        return abandoned("session deadline would be overrun");
      }
    }
    if (s.total_backoff_seconds + backoff > policy.deadline_seconds) {
      s.deadline_expired = true;
      return Status::DeadlineExceeded(
          "retry deadline exceeded after " + std::to_string(s.attempts) +
          " attempt(s); last error: " + s.last_error.ToString());
    }
    s.total_backoff_seconds += backoff;
  }
  return s.last_error;  // Unreachable; loop always returns.
}

}  // namespace veritas

#endif  // VERITAS_UTIL_RETRY_H_
