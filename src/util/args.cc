#include "util/args.h"

#include <cstdlib>

#include "util/strings.h"

namespace veritas {

Result<ArgMap> ArgMap::Parse(int argc, const char* const* argv) {
  ArgMap out;
  int i = 1;  // Skip program name.
  while (i < argc) {
    const std::string token = argv[i];
    if (StartsWith(token, "--")) {
      const std::string key = token.substr(2);
      if (key.empty()) {
        return Status::InvalidArgument("empty option name '--'");
      }
      if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
        out.values_[key] = argv[i + 1];
        i += 2;
      } else {
        out.values_[key] = "";
        ++i;
      }
    } else {
      if (!out.command_.empty()) {
        return Status::InvalidArgument("unexpected positional argument: " +
                                       token);
      }
      out.command_ = token;
      ++i;
    }
  }
  return out;
}

std::string ArgMap::GetString(const std::string& key,
                              const std::string& fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

Result<long> ArgMap::GetInt(const std::string& key, long fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(it->second.c_str(), &end, 10);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option --" + key +
                                   " expects an integer, got '" +
                                   it->second + "'");
  }
  return parsed;
}

Result<double> ArgMap::GetDouble(const std::string& key,
                                 double fallback) const {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    return Status::InvalidArgument("option --" + key +
                                   " expects a number, got '" + it->second +
                                   "'");
  }
  return parsed;
}

std::vector<std::string> ArgMap::Keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, _] : values_) out.push_back(key);
  return out;
}

}  // namespace veritas
