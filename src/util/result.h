// Result<T>: value-or-Status, in the spirit of absl::StatusOr<T>.
#ifndef VERITAS_UTIL_RESULT_H_
#define VERITAS_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace veritas {

/// Holds either a value of type T or a non-OK Status explaining why the value
/// is absent. Accessing the value of a failed Result is a programming error
/// (checked with assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit from value (success).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error Status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace veritas

/// Evaluates `rexpr` (a Result<T>); on error returns the Status, otherwise
/// move-assigns the value into `lhs`. Usage:
///   VERITAS_ASSIGN_OR_RETURN(auto db, LoadDatabase(path));
#define VERITAS_ASSIGN_OR_RETURN(lhs, rexpr)                 \
  VERITAS_ASSIGN_OR_RETURN_IMPL_(                            \
      VERITAS_CONCAT_(_veritas_result_, __LINE__), lhs, rexpr)

#define VERITAS_CONCAT_INNER_(a, b) a##b
#define VERITAS_CONCAT_(a, b) VERITAS_CONCAT_INNER_(a, b)

#define VERITAS_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                   \
  if (!tmp.ok()) return tmp.status();                   \
  lhs = std::move(tmp).value()

#endif  // VERITAS_UTIL_RESULT_H_
