// Deterministic fault injection for robustness testing. Real deployments of
// the feedback loop face experts who go silent, crowdsourcing platforms that
// time out and workers who never show up; a FaultInjector lets any component
// consult a seeded, reproducible plan of such faults so degraded-mode
// behavior can be exercised in tests and experiments bit-for-bit identically
// across runs.
//
// A plan combines schedule-based triggers (fail the first N calls, fail
// every k-th call) with a probability-based trigger; triggered calls carry a
// FaultKind (unavailable / timeout / abstain) and an optional simulated
// latency spike. Plans are registered per "site" — a short label like
// "oracle" or "worker" — each with an independent deterministic stream.
#ifndef VERITAS_UTIL_FAULT_INJECTION_H_
#define VERITAS_UTIL_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <random>
#include <string>

#include "util/result.h"

namespace veritas {

/// What a triggered fault looks like to the consulting component.
enum class FaultKind {
  kNone = 0,     ///< No fault (or a pure latency spike).
  kUnavailable,  ///< Transient outage; maps to Status::Unavailable.
  kTimeout,      ///< The call timed out; maps to Status::DeadlineExceeded.
  kAbstain,      ///< The answering party declined; maps to Status::Abstained.
};

/// Stable name ("none", "unavailable", "timeout", "abstain").
const char* FaultKindName(FaultKind kind);

/// A reproducible fault schedule for one site. All triggers compose: a call
/// faults when it is among the first `fail_first_n`, or lands on the
/// `fail_every_k` schedule, or the per-call Bernoulli(probability) fires.
struct FaultPlan {
  /// Kind of the injected fault. kNone turns triggers into pure latency
  /// spikes (slow successes).
  FaultKind kind = FaultKind::kUnavailable;
  /// Per-call failure probability in [0, 1].
  double probability = 0.0;
  /// The first N calls fail (fail-N-times; models a cold outage).
  std::size_t fail_first_n = 0;
  /// Every k-th call fails (1-based; 0 disables the schedule).
  std::size_t fail_every_k = 0;
  /// Simulated latency attached to triggered calls, seconds. Never slept;
  /// reported to the caller for virtual-time accounting.
  double latency_seconds = 0.0;
};

/// The injector's verdict for one call.
struct FaultOutcome {
  FaultKind kind = FaultKind::kNone;
  double latency_seconds = 0.0;
};

/// Seeded registry of per-site fault plans. Sites without a plan never
/// fault. Not thread-safe; use one injector per session/thread.
class FaultInjector {
 public:
  explicit FaultInjector(std::uint64_t seed = 42);

  /// Installs (or replaces) the plan for `site` and resets its counters.
  /// Site names must not contain whitespace (they appear in serialized
  /// checkpoint state).
  void SetPlan(const std::string& site, FaultPlan plan);

  bool HasPlan(const std::string& site) const;

  /// Advances `site`'s call counter and returns the verdict for this call.
  /// Unknown sites always yield kNone.
  FaultOutcome Next(const std::string& site);

  /// Convenience: true when Next(site) triggers a real fault.
  bool ShouldFail(const std::string& site) {
    return Next(site).kind != FaultKind::kNone;
  }

  /// Calls consulted / faults triggered so far for `site`.
  std::size_t calls(const std::string& site) const;
  std::size_t faults(const std::string& site) const;

  /// Rewinds every site to its initial state (counters and streams).
  void Reset();

  /// Single-line opaque state (counters + RNG streams) for checkpointing a
  /// session mid-run; plans themselves are configuration, not state, and
  /// must be re-installed before RestoreState.
  std::string SerializeState() const;
  Status RestoreState(const std::string& state);

 private:
  struct Site {
    FaultPlan plan;
    std::size_t calls = 0;
    std::size_t faults = 0;
    std::mt19937_64 engine;
  };

  /// Stable per-site seed (FNV-1a over the site name, mixed with seed_) so
  /// streams do not depend on registration order.
  std::uint64_t SiteSeed(const std::string& site) const;

  std::uint64_t seed_;
  std::map<std::string, Site> sites_;  // Ordered for stable serialization.
};

/// Parses a plan spec: comma-separated key=value pairs with keys `prob`,
/// `first`, `every`, `latency`, `kind` (unavailable|timeout|abstain|none),
/// e.g. "prob=0.3,kind=timeout,latency=0.05". A bare number is shorthand
/// for "prob=<number>".
Result<FaultPlan> ParseFaultPlan(const std::string& spec);

}  // namespace veritas

#endif  // VERITAS_UTIL_FAULT_INJECTION_H_
