// Small descriptive-statistics helpers used by the experiment harness
// (Figure 9 correlation study, dataset characterization, timing summaries).
#ifndef VERITAS_UTIL_STATS_H_
#define VERITAS_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace veritas {

/// Arithmetic mean; 0 for empty input.
double Mean(const std::vector<double>& xs);

/// Population variance; 0 for inputs with fewer than 2 elements.
double Variance(const std::vector<double>& xs);

/// Population standard deviation.
double StdDev(const std::vector<double>& xs);

/// Pearson correlation coefficient of two equally sized vectors.
/// Returns 0 when either input is degenerate (constant or < 2 points).
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Linearly interpolated quantile, q in [0, 1]; 0 for empty input.
double Quantile(std::vector<double> xs, double q);

/// Minimum; 0 for empty input.
double Min(const std::vector<double>& xs);

/// Maximum; 0 for empty input.
double Max(const std::vector<double>& xs);

/// Online accumulator for mean/min/max/stddev without storing samples.
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Population variance (Welford).
  double variance() const { return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace veritas

#endif  // VERITAS_UTIL_STATS_H_
