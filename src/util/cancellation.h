// Cooperative cancellation and deadlines for long-running work. A feedback
// session that drives a real expert (or a large benchmark) runs for minutes
// to hours; an operator pressing Ctrl-C or a wall-clock budget expiring must
// end it with a clean, resumable checkpoint instead of a dead process.
//
// Two stop severities, matching the classic CLI contract:
//
//  * graceful (first Ctrl-C, expired Deadline): observed only at round
//    boundaries. The in-flight round completes bit-exactly, is
//    checkpointed, and the session returns Status::DeadlineExceeded —
//    resuming reproduces the uninterrupted run's trace exactly.
//  * hard (second Ctrl-C): observed inside the fusion iteration loops and
//    the strategy lookahead scans, which bail at the next iteration. The
//    in-flight round is discarded (its partial results are never recorded),
//    and the last checkpoint on disk — end of the previous completed round —
//    remains the resume point.
//
// CancellationToken is a single lock-free atomic, so RequestStop() is safe
// to call from a signal handler and the per-iteration checks in hot loops
// cost one relaxed load.
#ifndef VERITAS_UTIL_CANCELLATION_H_
#define VERITAS_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <string>

namespace veritas {

/// Shared stop flag. The owner (CLI, test) keeps the token alive for the
/// duration of the work; workers hold a const pointer and poll.
class CancellationToken {
 public:
  /// Requests a stop, escalating on repeat: the first call requests a
  /// graceful stop, any further call a hard stop. Async-signal-safe.
  void RequestStop() {
    int level = level_.load(std::memory_order_relaxed);
    while (level < kHard &&
           !level_.compare_exchange_weak(level, level + 1,
                                         std::memory_order_relaxed)) {
    }
  }

  /// Jumps straight to a hard stop (discard the in-flight round).
  void RequestHardStop() { level_.store(kHard, std::memory_order_relaxed); }

  /// A stop of any severity has been requested.
  bool stop_requested() const {
    return level_.load(std::memory_order_relaxed) != kRun;
  }

  /// A hard stop has been requested (inner loops should bail).
  bool hard_stop_requested() const {
    return level_.load(std::memory_order_relaxed) >= kHard;
  }

  /// Re-arms the token (e.g. before resuming a cancelled session).
  void Reset() { level_.store(kRun, std::memory_order_relaxed); }

 private:
  static constexpr int kRun = 0;
  static constexpr int kGraceful = 1;
  static constexpr int kHard = 2;
  std::atomic<int> level_{kRun};
};

/// Null-tolerant helpers so call sites can poll an optional token without
/// branching on the pointer themselves.
inline bool StopRequested(const CancellationToken* token) {
  return token != nullptr && token->stop_requested();
}
inline bool HardStopRequested(const CancellationToken* token) {
  return token != nullptr && token->hard_stop_requested();
}

/// A wall-clock budget. Default-constructed deadlines never expire, so the
/// type can sit in an options struct without an optional wrapper.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never expires.
  Deadline() = default;

  /// Expires `ms` milliseconds from now (0 = already expired).
  static Deadline AfterMillis(long ms) {
    Deadline d;
    d.has_deadline_ = true;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  static Deadline Infinite() { return Deadline(); }

  bool has_deadline() const { return has_deadline_; }

  bool expired() const {
    return has_deadline_ && Clock::now() >= at_;
  }

  /// Time left, clamped at zero; the maximum duration when infinite.
  std::chrono::nanoseconds remaining() const {
    if (!has_deadline_) return std::chrono::nanoseconds::max();
    const auto left = at_ - Clock::now();
    return left.count() > 0
               ? std::chrono::duration_cast<std::chrono::nanoseconds>(left)
               : std::chrono::nanoseconds::zero();
  }

 private:
  bool has_deadline_ = false;
  Clock::time_point at_{};
};

/// Human-readable stop cause, priority-ordered (hard > graceful > deadline),
/// for status messages: "hard cancellation", "cancellation",
/// "deadline expired", or "no stop requested".
std::string DescribeStop(const CancellationToken* token,
                         const Deadline& deadline);

}  // namespace veritas

#endif  // VERITAS_UTIL_CANCELLATION_H_
