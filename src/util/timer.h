// Wall-clock timing for the efficiency experiments (Tables 11/12, Fig. 11b).
#ifndef VERITAS_UTIL_TIMER_H_
#define VERITAS_UTIL_TIMER_H_

#include <chrono>

namespace veritas {

/// Monotonic stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Resets the start point to now.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace veritas

#endif  // VERITAS_UTIL_TIMER_H_
