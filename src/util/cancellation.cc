#include "util/cancellation.h"

#include <string>

namespace veritas {

std::string DescribeStop(const CancellationToken* token,
                         const Deadline& deadline) {
  if (HardStopRequested(token)) return "hard cancellation";
  if (StopRequested(token)) return "cancellation";
  if (deadline.expired()) return "deadline expired";
  return "no stop requested";
}

}  // namespace veritas
