#include "fusion/priors.h"

#include <cmath>

#include "util/math.h"

namespace veritas {

Status PriorSet::SetExact(const Database& db, ItemId item, ClaimIndex claim) {
  if (item >= db.num_items()) {
    return Status::OutOfRange("prior: item id out of range");
  }
  if (claim >= db.num_claims(item)) {
    return Status::OutOfRange("prior: claim index out of range for item '" +
                              db.item(item).name + "'");
  }
  std::vector<double> probs(db.num_claims(item), 0.0);
  probs[claim] = 1.0;
  priors_[item] = std::move(probs);
  return Status::OK();
}

Status PriorSet::SetDistribution(const Database& db, ItemId item,
                                 std::vector<double> probs) {
  if (item >= db.num_items()) {
    return Status::OutOfRange("prior: item id out of range");
  }
  if (probs.size() != db.num_claims(item)) {
    return Status::InvalidArgument(
        "prior: distribution size does not match claim count of item '" +
        db.item(item).name + "'");
  }
  // NaN compares false against every bound, so the range checks below would
  // silently accept a poisoned distribution; reject non-finite values first.
  VERITAS_RETURN_IF_ERROR(CheckFinite(probs, "prior distribution"));
  double sum = 0.0;
  for (double p : probs) {
    if (p < -1e-12 || p > 1.0 + 1e-12) {
      return Status::InvalidArgument("prior: probability out of [0,1]");
    }
    sum += p;
  }
  if (std::fabs(sum - 1.0) > 1e-6) {
    return Status::InvalidArgument("prior: distribution does not sum to 1");
  }
  priors_[item] = std::move(probs);
  return Status::OK();
}

std::size_t PriorSet::ExtendForNewClaims(const Database& db) {
  std::size_t extended = 0;
  for (auto& [item, probs] : priors_) {
    if (item < db.num_items() && probs.size() < db.num_claims(item)) {
      probs.resize(db.num_claims(item), 0.0);
      ++extended;
    }
  }
  return extended;
}

std::vector<ItemId> PriorSet::Items() const {
  std::vector<ItemId> out;
  out.reserve(priors_.size());
  for (const auto& [item, _] : priors_) out.push_back(item);
  return out;
}

}  // namespace veritas
