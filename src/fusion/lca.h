// SimpleLCA — Latent Credibility Analysis (Pasternack & Roth, WWW 2013),
// simple variant. Cited in the paper's related work ([30]) as a
// probabilistic-graphical-model approach to fusion; included as the fourth
// alternative substrate behind the FusionModel interface.
//
// Each source has an honesty parameter H(s); a claim's posterior is
// proportional to
//   prod_{s in S(v)} H(s) * prod_{s votes elsewhere on the item}
//     (1 - H(s)) / (|V_i| - 1),
// which in log space is a softmax over
//   score(v) = sum_{s in S(v)} [ ln H(s) - ln((1-H(s))/(|V_i|-1)) ]
// (per-item constants cancel). Honesty updates as the expected fraction of
// a source's claims that are true, smoothed toward the initial value.
#ifndef VERITAS_FUSION_LCA_H_
#define VERITAS_FUSION_LCA_H_

#include "fusion/fusion_model.h"

namespace veritas {

/// SimpleLCA-style fusion.
class SimpleLcaFusion : public FusionModel {
 public:
  using FusionModel::Fuse;

  /// `smoothing` is the pseudo-count pulling honesty toward the initial
  /// accuracy (stabilizes sources with few claims).
  explicit SimpleLcaFusion(double smoothing = 1.0) : smoothing_(smoothing) {}

  std::string name() const override { return "lca"; }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts) const override;

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts,
                    const FusionResult* warm) const override;

  double smoothing() const { return smoothing_; }

 private:
  double smoothing_;
};

}  // namespace veritas

#endif  // VERITAS_FUSION_LCA_H_
