// Construction of fusion models by name, for command-line experiment tools.
#ifndef VERITAS_FUSION_FUSION_FACTORY_H_
#define VERITAS_FUSION_FUSION_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "fusion/fusion_model.h"
#include "util/result.h"

namespace veritas {

/// Creates a fusion model from its name: "accu", "voting", "truthfinder",
/// or "pooled_investment". Unknown names yield NotFound.
Result<std::unique_ptr<FusionModel>> MakeFusionModel(const std::string& name);

/// Names accepted by MakeFusionModel.
std::vector<std::string> FusionModelNames();

}  // namespace veritas

#endif  // VERITAS_FUSION_FUSION_FACTORY_H_
