// PooledInvestment (Pasternack & Roth, COLING 2010): sources "invest" their
// trust uniformly across their claims; claim returns are grown by a
// super-linear function G(x) = x^g before being normalized per item.
//
// Third fusion variant, again to exercise the black-box property of the
// feedback framework. Adapted (like TruthFinder) to emit normalized per-item
// claim distributions and a [0,1] trust value per source.
#ifndef VERITAS_FUSION_POOLED_INVESTMENT_H_
#define VERITAS_FUSION_POOLED_INVESTMENT_H_

#include "fusion/fusion_model.h"

namespace veritas {

/// PooledInvestment-style fusion.
class PooledInvestmentFusion : public FusionModel {
 public:
  using FusionModel::Fuse;

  /// `g` is the investment growth exponent (1.4 in the original paper).
  explicit PooledInvestmentFusion(double g = 1.4) : g_(g) {}

  std::string name() const override { return "pooled_investment"; }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts) const override;

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts,
                    const FusionResult* warm) const override;

  double growth() const { return g_; }

 private:
  double g_;
};

}  // namespace veritas

#endif  // VERITAS_FUSION_POOLED_INVESTMENT_H_
