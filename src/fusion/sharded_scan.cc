#include "fusion/sharded_scan.h"

#include <algorithm>

namespace veritas {

void ShardedScanPlan::Prepare(const CompiledDatabase& compiled,
                              std::size_t shards) {
  if (shards == 0) shards = 1;
  if (partition_ != nullptr && compiled_ == &compiled && shards_ == shards &&
      partition_->epoch() == compiled.epoch()) {
    return;
  }
  partition_ = std::make_unique<ShardPartition>(compiled, shards);
  compiled_ = &compiled;
  shards_ = shards;
}

std::vector<ItemId> MergeTopCandidatesPerShard(
    const std::vector<ItemId>& candidates, const std::vector<double>& estimates,
    const ShardPartition& partition, std::size_t quota) {
  // Bucket candidate indices by shard, preserving candidate order.
  std::vector<std::vector<std::size_t>> by_shard(partition.num_shards());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    by_shard[partition.shard_of(candidates[i])].push_back(i);
  }

  std::vector<ItemId> pool;
  for (std::vector<std::size_t>& bucket : by_shard) {
    if (bucket.empty()) continue;
    const std::size_t keep = std::min(quota, bucket.size());
    std::partial_sort(bucket.begin(), bucket.begin() + keep, bucket.end(),
                      [&](std::size_t a, std::size_t b) {
                        if (estimates[a] != estimates[b]) {
                          return estimates[a] > estimates[b];
                        }
                        return candidates[a] < candidates[b];
                      });
    for (std::size_t r = 0; r < keep; ++r) {
      pool.push_back(candidates[bucket[r]]);
    }
  }
  // A canonical pool order (ascending item id) makes the stage-2 input — and
  // with it the whole selection — independent of shard enumeration order.
  std::sort(pool.begin(), pool.end());
  return pool;
}

}  // namespace veritas
