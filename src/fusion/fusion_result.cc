#include "fusion/fusion_result.h"

#include <cmath>

#include "util/math.h"

namespace veritas {

FusionResult::FusionResult(const Database& db, double initial_accuracy) {
  probs_.resize(db.num_items());
  for (ItemId i = 0; i < db.num_items(); ++i) {
    probs_[i].assign(db.num_claims(i), 0.0);
  }
  accuracies_.assign(db.num_sources(), initial_accuracy);
}

ClaimIndex FusionResult::WinningClaim(ItemId item) const {
  return static_cast<ClaimIndex>(ArgMax(probs_[item]));
}

double FusionResult::ItemEntropy(ItemId item) const {
  return Entropy(probs_[item]);
}

double FusionResult::TotalEntropy() const {
  double total = 0.0;
  for (const auto& p : probs_) total += Entropy(p);
  return total;
}

bool FusionResult::AllFinite() const {
  for (const auto& item : probs_) {
    for (double p : item) {
      if (!std::isfinite(p)) return false;
    }
  }
  for (double a : accuracies_) {
    if (!std::isfinite(a)) return false;
  }
  return true;
}

}  // namespace veritas
