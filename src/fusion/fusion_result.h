// FusionResult: the <P, A> output of a fusion system (Definition 2) —
// per-claim correctness probabilities plus source accuracies.
#ifndef VERITAS_FUSION_FUSION_RESULT_H_
#define VERITAS_FUSION_FUSION_RESULT_H_

#include <vector>

#include "model/database.h"
#include "model/types.h"

namespace veritas {

/// Probabilities of claims and accuracies of sources after fusion.
class FusionResult {
 public:
  FusionResult() = default;
  /// Allocates per-item probability vectors shaped like `db` (all zero) and
  /// source accuracies initialized to `initial_accuracy`.
  FusionResult(const Database& db, double initial_accuracy);

  /// p_i^k: probability that claim k of item i is true.
  double prob(ItemId item, ClaimIndex claim) const {
    return probs_[item][claim];
  }
  const std::vector<double>& item_probs(ItemId item) const {
    return probs_[item];
  }
  std::vector<double>* mutable_item_probs(ItemId item) {
    return &probs_[item];
  }
  std::size_t num_items() const { return probs_.size(); }

  /// A_j: accuracy of source j.
  double accuracy(SourceId source) const { return accuracies_[source]; }
  const std::vector<double>& accuracies() const { return accuracies_; }
  std::vector<double>* mutable_accuracies() { return &accuracies_; }

  /// Claim with the highest probability (the model's pick, §3).
  ClaimIndex WinningClaim(ItemId item) const;

  /// Shannon entropy (nats) of item i's claim distribution (Eq. 3).
  double ItemEntropy(ItemId item) const;

  /// Sum of entropies over all items — the uncertainty metric (§5) and the
  /// negated entropy utility of Definition 5.
  double TotalEntropy() const;

  /// Iterations the fusion model ran.
  std::size_t iterations() const { return iterations_; }
  void set_iterations(std::size_t n) { iterations_ = n; }

  /// Whether the accuracy fixed-point iteration converged (the model is not
  /// guaranteed to converge, §3).
  bool converged() const { return converged_; }
  void set_converged(bool c) { converged_ = c; }

  /// True when every probability and accuracy is finite — the sanity gate a
  /// session checks before accepting a re-fusion (a NaN here would silently
  /// poison every downstream strategy score).
  bool AllFinite() const;

 private:
  std::vector<std::vector<double>> probs_;
  std::vector<double> accuracies_;
  std::size_t iterations_ = 0;
  bool converged_ = false;
};

}  // namespace veritas

#endif  // VERITAS_FUSION_FUSION_RESULT_H_
