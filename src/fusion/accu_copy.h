// AccuCopy — Accu with source-dependence (copy) detection, after Dong,
// Berti-Equille, Srivastava, "Integrating conflicting data: the role of
// source dependence" (PVLDB 2009). The paper's §3 fusion model (AccuNoDep)
// is the independence special case of this model; the paper cites the full
// model as the basis of the Accu family [6,7,24].
//
// Core ideas implemented here:
//  * Pairwise dependence: for each pair of sources with enough overlapping
//    items, a Bayesian posterior P(dependent | observations) is computed
//    from how often the pair shares the (currently believed) true value,
//    shares a false value — strong evidence of copying — or differs:
//      P(same true | indep) = A1 A2
//      P(same false | indep) = (1-A1)(1-A2)/n
//      P(same true | copy)  = c A2 + (1-c) A1 A2
//      P(same false | copy) = c (1-A2) + (1-c)(1-A1)(1-A2)/n
//      P(diff | copy)       = (1-c) P(diff | indep)
//    with copy rate c and n false values per item.
//  * Vote discounting: when scoring a claim, the vote of source s is
//    weighted by its independence factor
//      I(s | v) = prod_{s' also voting v} (1 - c P(s ~ s')),
//    so a clique of copiers contributes barely more than one vote.
//  * The usual Accu alternation between claim probabilities and source
//    accuracies, with the dependence matrix re-estimated each round.
//
// Complexity: O(|S|^2 * overlap) per dependence update — intended for up to
// a few hundred sources (flights-style data); the paper's datasets with
// thousands of sources would use blocking, which is out of scope here.
#ifndef VERITAS_FUSION_ACCU_COPY_H_
#define VERITAS_FUSION_ACCU_COPY_H_

#include <mutex>
#include <vector>

#include "fusion/fusion_model.h"

namespace veritas {

/// Knobs of the copy-detection model.
struct AccuCopyOptions {
  /// Prior probability that an arbitrary source pair is dependent (alpha).
  double prior_copy_probability = 0.1;
  /// Probability that a dependent source copies (rather than independently
  /// provides) any particular shared item (c).
  double copy_rate = 0.8;
  /// Pairs with fewer overlapping items than this are assumed independent.
  std::size_t min_overlap = 3;
  /// Rounds of (dependence, probabilities, accuracies) alternation.
  std::size_t dependence_rounds = 3;
};

/// Accu with pairwise copy detection and vote discounting.
class AccuCopyFusion : public FusionModel {
 public:
  using FusionModel::Fuse;

  explicit AccuCopyFusion(AccuCopyOptions copy_options = {})
      : copy_options_(copy_options) {}

  std::string name() const override { return "accu_copy"; }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts) const override;

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts,
                    const FusionResult* warm) const override;

  /// Posterior dependence probabilities of the last completed Fuse call, as
  /// a dense symmetric matrix indexed [s1 * num_sources + s2] (diagonal 0).
  /// Exposed for diagnostics, tests and the copy-detection bench. Fuse works
  /// on per-call scratch and publishes here once at the end, so concurrent
  /// Fuse calls are safe; do not read the reference while a Fuse is running.
  const std::vector<double>& last_dependence() const { return dependence_; }

  /// Convenience accessor into last_dependence(). Safe to call concurrently
  /// with Fuse (reads under the publish lock).
  double DependenceProbability(SourceId a, SourceId b) const;

  const AccuCopyOptions& copy_options() const { return copy_options_; }

 private:
  AccuCopyOptions copy_options_;
  // Diagnostics snapshot of the last Fuse, published under diag_mutex_
  // (mutable: Fuse is logically const). The fusion itself never reads it.
  mutable std::mutex diag_mutex_;
  mutable std::vector<double> dependence_;
  mutable std::size_t last_num_sources_ = 0;
};

}  // namespace veritas

#endif  // VERITAS_FUSION_ACCU_COPY_H_
