#include "fusion/voting.h"

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math.h"

namespace veritas {

std::vector<double> VotingFusion::VoteShares(const Database& db, ItemId item) {
  const Item& o = db.item(item);
  std::vector<double> counts(o.claims.size(), 0.0);
  for (ClaimIndex k = 0; k < o.claims.size(); ++k) {
    counts[k] = static_cast<double>(o.claims[k].sources.size());
  }
  return Normalize(counts);
}

FusionResult VotingFusion::Fuse(const Database& db, const PriorSet& priors,
                                const FusionOptions& opts) const {
  VERITAS_SPAN("fuse.voting");
  static Counter* fuse_calls =
      MetricsRegistry::Global().GetCounter("fusion.voting.fuse_calls");
  fuse_calls->Add(1);
  FusionResult result(db, opts.initial_accuracy);
  bool cancelled = false;
  for (ItemId i = 0; i < db.num_items(); ++i) {
    // Single-pass model, so the hard-stop poll sits in the item loop
    // (every 256 items — one relaxed load, invisible next to the
    // per-item allocations).
    if ((i & 0xFFu) == 0 && HardStopRequested(opts.cancel)) {
      cancelled = true;
      break;
    }
    std::vector<double>* probs = result.mutable_item_probs(i);
    if (priors.Has(i)) {
      *probs = priors.Get(i);
    } else {
      *probs = VoteShares(db, i);
    }
  }
  std::vector<double>* accuracies = result.mutable_accuracies();
  for (SourceId j = 0; j < db.num_sources(); ++j) {
    const Source& s = db.source(j);
    if (s.votes.empty()) continue;
    double sum = 0.0;
    for (const Vote& v : s.votes) sum += result.prob(v.item, v.claim);
    // Clamped like the iterative models so downstream odds ratios stay
    // finite when a strategy consumes these accuracies.
    (*accuracies)[j] =
        ClampAccuracy(sum / static_cast<double>(s.votes.size()));
  }
  result.set_iterations(1);
  result.set_converged(!cancelled);
  return result;
}

}  // namespace veritas
