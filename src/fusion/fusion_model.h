// FusionModel: the abstract data fusion system F : D -> <P, A> of
// Definition 2. The feedback framework treats fusion as a black box (§3),
// so every strategy works with any FusionModel implementation.
#ifndef VERITAS_FUSION_FUSION_MODEL_H_
#define VERITAS_FUSION_FUSION_MODEL_H_

#include <cstddef>
#include <string>

#include "fusion/fusion_result.h"
#include "fusion/priors.h"
#include "model/database.h"
#include "util/cancellation.h"

namespace veritas {

/// Knobs shared by the iterative fusion models.
struct FusionOptions {
  /// Default accuracy assigned to sources before the first iteration (§3).
  double initial_accuracy = 0.8;
  /// Hard cap on the alternation between claim and accuracy updates.
  std::size_t max_iterations = 100;
  /// Convergence threshold on the L-infinity change of source accuracies.
  double tolerance = 1e-6;
  /// Use the incremental DeltaFusionEngine for lookahead and post-feedback
  /// re-fusions when the model supports it (Accu, Voting, TruthFinder; see
  /// fusion/delta_fusion.h). Models without local-update structure (AccuCopy)
  /// ignore the flag and always re-fuse fully. Only takes effect together
  /// with warm starts — cold-started runs stay on the full path so the
  /// paper's worked examples remain bit-exact.
  bool use_delta_fusion = true;
  /// Number of item-disjoint shards for the MEU-family candidate scans
  /// (DESIGN.md §5h). <= 1 keeps the classic single-view scan. With N > 1
  /// the scan runs a shard-confined estimate pass per shard, merges the
  /// per-shard top candidates, and re-ranks the merged pool with exact
  /// unconfined lookaheads — selections stay deterministic for any shard
  /// count × thread count. Fusion itself (Fuse) is unaffected; only the
  /// strategies' lookahead scans read this.
  std::size_t shards = 1;
  /// Optional hard-stop token (not owned; may be null). Iterative models
  /// poll it once per claim/accuracy alternation and bail at the next
  /// iteration boundary when a hard stop is requested, returning the
  /// partial result with converged() == false. Graceful stops never
  /// interrupt a fusion in flight — that keeps completed rounds bit-exact.
  const CancellationToken* cancel = nullptr;
};

/// Interface of a data fusion system.
class FusionModel {
 public:
  virtual ~FusionModel() = default;

  /// Short identifier ("accu", "voting", ...).
  virtual std::string name() const = 0;

  /// Runs fusion on `db` with validated knowledge `priors` pinned.
  /// Pinned items keep their prior distribution but still contribute to
  /// source accuracy estimation.
  virtual FusionResult Fuse(const Database& db, const PriorSet& priors,
                            const FusionOptions& opts) const = 0;

  /// Warm-started variant: `warm` (if non-null) provides the starting source
  /// accuracies. The default implementation ignores the hint; iterative
  /// models override it to converge faster on the lookahead re-fusions that
  /// MEU/GUB issue (§4.2.2).
  virtual FusionResult Fuse(const Database& db, const PriorSet& priors,
                            const FusionOptions& opts,
                            const FusionResult* warm) const;

  /// Convenience overload with no priors.
  FusionResult Fuse(const Database& db, const FusionOptions& opts) const {
    return Fuse(db, PriorSet(), opts);
  }
};

}  // namespace veritas

#endif  // VERITAS_FUSION_FUSION_MODEL_H_
