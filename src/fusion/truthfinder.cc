#include "fusion/truthfinder.h"

#include <cmath>

#include "model/compiled_database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math.h"

namespace veritas {

FusionResult TruthFinderFusion::Fuse(const Database& db,
                                     const PriorSet& priors,
                                     const FusionOptions& opts) const {
  return Fuse(db, priors, opts, nullptr);
}

// Trust/confidence alternation over the CSR view. The per-source score
// tau(s) = -ln(1 - t(s)) is tabulated once per iteration, so the claim
// confidence loop is additions over flat arrays.
FusionResult TruthFinderFusion::Fuse(const Database& db,
                                     const PriorSet& priors,
                                     const FusionOptions& opts,
                                     const FusionResult* warm) const {
  VERITAS_SPAN("fuse.truthfinder");
  static Counter* fuse_calls =
      MetricsRegistry::Global().GetCounter("fusion.truthfinder.fuse_calls");
  static Counter* nonconverged =
      MetricsRegistry::Global().GetCounter("fusion.truthfinder.nonconverged");
  static Histogram* iterations_hist = MetricsRegistry::Global().GetHistogram(
      "fusion.truthfinder.iterations", MetricsRegistry::CountEdges());
  static Histogram* residual_hist = MetricsRegistry::Global().GetHistogram(
      "fusion.truthfinder.residual",
      {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
  fuse_calls->Add(1);

  const CompiledDatabase c(db);
  std::vector<double> trust =
      warm != nullptr ? warm->accuracies()
                      : std::vector<double>(c.num_sources(),
                                            opts.initial_accuracy);
  for (double& t : trust) t = ClampAccuracy(t);

  std::vector<double> probs(c.num_claims(), 0.0);
  // Constant distributions: pinned items copy their prior, singletons are 1.
  std::vector<char> fixed(c.num_items(), 0);
  for (ItemId i = 0; i < c.num_items(); ++i) {
    const std::uint32_t g = c.claim_offset(i);
    if (priors.Has(i)) {
      const std::vector<double>& p = priors.Get(i);
      for (std::size_t k = 0; k < p.size(); ++k) probs[g + k] = p[k];
      fixed[i] = 1;
    } else if (c.item_num_claims(i) == 1) {
      probs[g] = 1.0;
      fixed[i] = 1;
    }
  }

  const std::vector<SourceId>& claim_sources = c.claim_sources();
  const std::vector<std::uint32_t>& source_claims = c.source_vote_claims();
  std::vector<double> tau(c.num_sources(), 0.0);

  bool converged = false;
  std::size_t iter = 0;
  double last_residual = 0.0;
  while (iter < opts.max_iterations) {
    // Hard stop: bail at the iteration boundary with converged=false.
    if (HardStopRequested(opts.cancel)) break;
    ++iter;
    // Claim confidences -> per-item distributions.
    for (SourceId j = 0; j < c.num_sources(); ++j) {
      tau[j] = -std::log(1.0 - ClampAccuracy(trust[j]));
    }
    for (ItemId i = 0; i < c.num_items(); ++i) {
      if (fixed[i]) continue;
      const std::uint32_t g = c.claim_offset(i);
      const std::size_t n = c.item_num_claims(i);
      double total = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        double sigma = 0.0;
        const std::uint32_t begin = c.claim_sources_begin(g + k);
        const std::uint32_t end = c.claim_sources_end(g + k);
        for (std::uint32_t v = begin; v < end; ++v) {
          sigma += tau[claim_sources[v]];
        }
        const double conf = 1.0 / (1.0 + std::exp(-gamma_ * sigma));
        probs[g + k] = conf;
        total += conf;
      }
      for (std::size_t k = 0; k < n; ++k) probs[g + k] /= total;
    }
    // Trust update.
    double max_delta = 0.0;
    for (SourceId j = 0; j < c.num_sources(); ++j) {
      const std::uint32_t begin = c.source_votes_begin(j);
      const std::uint32_t end = c.source_votes_end(j);
      if (begin == end) continue;
      double sum = 0.0;
      for (std::uint32_t v = begin; v < end; ++v) sum += probs[source_claims[v]];
      const double updated = ClampAccuracy(sum / static_cast<double>(end - begin));
      max_delta = std::max(max_delta, std::fabs(updated - trust[j]));
      trust[j] = updated;
    }
    last_residual = max_delta;
    if (max_delta < opts.tolerance) {
      converged = true;
      break;
    }
  }
  iterations_hist->Observe(static_cast<double>(iter));
  residual_hist->Observe(last_residual);
  if (!converged) nonconverged->Add(1);

  FusionResult result(db, opts.initial_accuracy);
  for (ItemId i = 0; i < c.num_items(); ++i) {
    std::vector<double>* out = result.mutable_item_probs(i);
    const std::uint32_t g = c.claim_offset(i);
    for (std::size_t k = 0; k < out->size(); ++k) (*out)[k] = probs[g + k];
  }
  *result.mutable_accuracies() = std::move(trust);
  result.set_iterations(iter);
  result.set_converged(converged);
  return result;
}

}  // namespace veritas
