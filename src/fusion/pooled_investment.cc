#include "fusion/pooled_investment.h"

#include <cmath>

#include "util/math.h"

namespace veritas {

FusionResult PooledInvestmentFusion::Fuse(const Database& db,
                                          const PriorSet& priors,
                                          const FusionOptions& opts) const {
  return Fuse(db, priors, opts, nullptr);
}

FusionResult PooledInvestmentFusion::Fuse(const Database& db,
                                          const PriorSet& priors,
                                          const FusionOptions& opts,
                                          const FusionResult* warm) const {
  FusionResult result(db, opts.initial_accuracy);
  std::vector<double> trust =
      warm != nullptr ? warm->accuracies()
                      : std::vector<double>(db.num_sources(),
                                            opts.initial_accuracy);
  for (double& t : trust) t = ClampAccuracy(t);

  bool converged = false;
  std::size_t iter = 0;
  std::vector<double> returns;
  while (iter < opts.max_iterations) {
    // Hard stop: bail at the iteration boundary with converged=false.
    if (HardStopRequested(opts.cancel)) break;
    ++iter;
    // Claim pooled returns H(v) = sum_s trust(s)/N(s), grown by G, then
    // normalized per item into a distribution.
    for (ItemId i = 0; i < db.num_items(); ++i) {
      std::vector<double>* probs = result.mutable_item_probs(i);
      if (priors.Has(i)) {
        *probs = priors.Get(i);
        continue;
      }
      const Item& o = db.item(i);
      if (o.claims.size() == 1) {
        (*probs)[0] = 1.0;
        continue;
      }
      returns.assign(o.claims.size(), 0.0);
      for (ClaimIndex k = 0; k < o.claims.size(); ++k) {
        double h = 0.0;
        for (SourceId s : o.claims[k].sources) {
          h += trust[s] / static_cast<double>(db.source_degree(s));
        }
        returns[k] = std::pow(h, g_);
      }
      *probs = Normalize(returns);
    }
    // Trust update: mean probability of the source's claims.
    double max_delta = 0.0;
    for (SourceId j = 0; j < db.num_sources(); ++j) {
      const Source& s = db.source(j);
      if (s.votes.empty()) continue;
      double sum = 0.0;
      for (const Vote& v : s.votes) sum += result.prob(v.item, v.claim);
      const double updated =
          ClampAccuracy(sum / static_cast<double>(s.votes.size()));
      max_delta = std::max(max_delta, std::fabs(updated - trust[j]));
      trust[j] = updated;
    }
    if (max_delta < opts.tolerance) {
      converged = true;
      break;
    }
  }
  *result.mutable_accuracies() = std::move(trust);
  result.set_iterations(iter);
  result.set_converged(converged);
  return result;
}

}  // namespace veritas
