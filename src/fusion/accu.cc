#include "fusion/accu.h"

#include <cmath>

#include "model/compiled_database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/math.h"

namespace veritas {

namespace {

// Stable softmax of scores[0..n) written into probs[0..n).
void SoftmaxInto(const double* scores, std::size_t n, double* probs) {
  double max_score = scores[0];
  for (std::size_t k = 1; k < n; ++k) {
    if (scores[k] > max_score) max_score = scores[k];
  }
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) sum += std::exp(scores[k] - max_score);
  const double lse = max_score + std::log(sum);
  for (std::size_t k = 0; k < n; ++k) probs[k] = std::exp(scores[k] - lse);
}

// Items whose distribution never changes across iterations: pinned items
// copy their prior once, single-claim items are certainly true. Returns one
// flag per item and writes the constant distributions into `probs` (indexed
// by global claim id).
std::vector<char> MarkFixedItems(const CompiledDatabase& c,
                                 const PriorSet& priors,
                                 std::vector<double>* probs) {
  std::vector<char> fixed(c.num_items(), 0);
  for (ItemId i = 0; i < c.num_items(); ++i) {
    const std::uint32_t g = c.claim_offset(i);
    if (priors.Has(i)) {
      const std::vector<double>& p = priors.Get(i);
      for (std::size_t k = 0; k < p.size(); ++k) (*probs)[g + k] = p[k];
      fixed[i] = 1;
    } else if (c.item_num_claims(i) == 1) {
      (*probs)[g] = 1.0;
      fixed[i] = 1;
    }
  }
  return fixed;
}

}  // namespace

std::vector<double> AccuFusion::ClaimLogScores(
    const Database& db, ItemId item, const std::vector<double>& accuracies) {
  const Item& o = db.item(item);
  const double false_values = static_cast<double>(o.claims.size()) - 1.0;
  std::vector<double> scores(o.claims.size(), 0.0);
  for (ClaimIndex k = 0; k < o.claims.size(); ++k) {
    double score = 0.0;
    for (SourceId s : o.claims[k].sources) {
      const double a = ClampAccuracy(accuracies[s]);
      score += std::log(false_values * a / (1.0 - a));
    }
    scores[k] = score;
  }
  return scores;
}

std::vector<double> AccuFusion::ClaimProbabilities(
    const Database& db, ItemId item, const std::vector<double>& accuracies) {
  if (db.num_claims(item) == 1) return {1.0};
  return SoftmaxFromLogScores(ClaimLogScores(db, item, accuracies));
}

FusionResult AccuFusion::Fuse(const Database& db, const PriorSet& priors,
                              const FusionOptions& opts) const {
  return Fuse(db, priors, opts, nullptr);
}

// The alternation of Eq. (1) and Eq. (2) over the CSR view: all state lives
// in flat arrays indexed by global claim id / source id, and the per-source
// log-odds ln(A/(1-A)) is tabulated once per iteration so the claim-scoring
// loop does lookups instead of a std::log per (claim, source) pair. The
// per-item factor ln(|V_i|-1) folds in as voters * log_false_values(i).
FusionResult AccuFusion::Fuse(const Database& db, const PriorSet& priors,
                              const FusionOptions& opts,
                              const FusionResult* warm) const {
  VERITAS_SPAN("fuse.accu");
  static Counter* fuse_calls =
      MetricsRegistry::Global().GetCounter("fusion.accu.fuse_calls");
  static Counter* nonconverged =
      MetricsRegistry::Global().GetCounter("fusion.accu.nonconverged");
  static Histogram* iterations_hist = MetricsRegistry::Global().GetHistogram(
      "fusion.accu.iterations", MetricsRegistry::CountEdges());
  static Histogram* residual_hist = MetricsRegistry::Global().GetHistogram(
      "fusion.accu.residual",
      {1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
  fuse_calls->Add(1);

  const CompiledDatabase c(db);
  std::vector<double> accuracies =
      warm != nullptr ? warm->accuracies()
                      : std::vector<double>(c.num_sources(),
                                            opts.initial_accuracy);
  for (double& a : accuracies) a = ClampAccuracy(a);

  std::vector<double> probs(c.num_claims(), 0.0);
  const std::vector<char> fixed = MarkFixedItems(c, priors, &probs);

  const std::vector<SourceId>& claim_sources = c.claim_sources();
  std::vector<double> logit(c.num_sources(), 0.0);
  std::vector<double> scores;

  const auto update_probabilities = [&]() {
    for (SourceId j = 0; j < c.num_sources(); ++j) {
      const double a = ClampAccuracy(accuracies[j]);
      logit[j] = std::log(a / (1.0 - a));
    }
    for (ItemId i = 0; i < c.num_items(); ++i) {
      if (fixed[i]) continue;
      const std::uint32_t g = c.claim_offset(i);
      const std::size_t n = c.item_num_claims(i);
      const double lf = c.log_false_values(i);
      scores.resize(n);
      for (std::size_t k = 0; k < n; ++k) {
        const std::uint32_t begin = c.claim_sources_begin(g + k);
        const std::uint32_t end = c.claim_sources_end(g + k);
        double score = static_cast<double>(end - begin) * lf;
        for (std::uint32_t v = begin; v < end; ++v) {
          score += logit[claim_sources[v]];
        }
        scores[k] = score;
      }
      SoftmaxInto(scores.data(), n, probs.data() + g);
    }
  };

  const std::vector<std::uint32_t>& source_claims = c.source_vote_claims();
  bool converged = false;
  std::size_t iter = 0;
  double last_residual = 0.0;
  while (iter < opts.max_iterations) {
    // Hard stop: bail at the iteration boundary with converged=false. The
    // final probability pass below still runs, so the partial result is
    // internally consistent (P matches the current A).
    if (HardStopRequested(opts.cancel)) break;
    ++iter;
    update_probabilities();
    // Eq. (2): accuracy of a source is the mean probability of its claims.
    double max_delta = 0.0;
    for (SourceId j = 0; j < c.num_sources(); ++j) {
      const std::uint32_t begin = c.source_votes_begin(j);
      const std::uint32_t end = c.source_votes_end(j);
      if (begin == end) continue;
      double sum = 0.0;
      for (std::uint32_t v = begin; v < end; ++v) sum += probs[source_claims[v]];
      const double updated = ClampAccuracy(sum / static_cast<double>(end - begin));
      max_delta = std::max(max_delta, std::fabs(updated - accuracies[j]));
      accuracies[j] = updated;
    }
    last_residual = max_delta;
    if (max_delta < opts.tolerance) {
      converged = true;
      break;
    }
  }
  iterations_hist->Observe(static_cast<double>(iter));
  residual_hist->Observe(last_residual);
  if (!converged) nonconverged->Add(1);
  // Final probability pass so P is consistent with the final A.
  update_probabilities();

  FusionResult result(db, opts.initial_accuracy);
  for (ItemId i = 0; i < c.num_items(); ++i) {
    std::vector<double>* out = result.mutable_item_probs(i);
    const std::uint32_t g = c.claim_offset(i);
    for (std::size_t k = 0; k < out->size(); ++k) (*out)[k] = probs[g + k];
  }
  *result.mutable_accuracies() = std::move(accuracies);
  result.set_iterations(iter);
  result.set_converged(converged);
  return result;
}

}  // namespace veritas
