#include "fusion/accu.h"

#include <cmath>

#include "util/math.h"

namespace veritas {

namespace {

// One full pass of Eq. (1) over all items. Pinned items copy their prior.
void UpdateProbabilities(const Database& db, const PriorSet& priors,
                         const std::vector<double>& accuracies,
                         FusionResult* result) {
  for (ItemId i = 0; i < db.num_items(); ++i) {
    std::vector<double>* probs = result->mutable_item_probs(i);
    if (priors.Has(i)) {
      *probs = priors.Get(i);
      continue;
    }
    const std::size_t n_claims = db.num_claims(i);
    if (n_claims == 1) {
      (*probs)[0] = 1.0;
      continue;
    }
    *probs = AccuFusion::ClaimProbabilities(db, i, accuracies);
  }
}

// One full pass of Eq. (2): accuracy of a source is the mean probability of
// the claims it votes for. Sources with no votes keep their current value.
// Returns the L-infinity change.
double UpdateAccuracies(const Database& db, const FusionResult& result,
                        std::vector<double>* accuracies) {
  double max_delta = 0.0;
  for (SourceId j = 0; j < db.num_sources(); ++j) {
    const Source& s = db.source(j);
    if (s.votes.empty()) continue;
    double sum = 0.0;
    for (const Vote& v : s.votes) {
      sum += result.prob(v.item, v.claim);
    }
    const double updated =
        ClampAccuracy(sum / static_cast<double>(s.votes.size()));
    max_delta = std::max(max_delta, std::fabs(updated - (*accuracies)[j]));
    (*accuracies)[j] = updated;
  }
  return max_delta;
}

}  // namespace

std::vector<double> AccuFusion::ClaimLogScores(
    const Database& db, ItemId item, const std::vector<double>& accuracies) {
  const Item& o = db.item(item);
  const double false_values = static_cast<double>(o.claims.size()) - 1.0;
  std::vector<double> scores(o.claims.size(), 0.0);
  for (ClaimIndex k = 0; k < o.claims.size(); ++k) {
    double score = 0.0;
    for (SourceId s : o.claims[k].sources) {
      const double a = ClampAccuracy(accuracies[s]);
      score += std::log(false_values * a / (1.0 - a));
    }
    scores[k] = score;
  }
  return scores;
}

std::vector<double> AccuFusion::ClaimProbabilities(
    const Database& db, ItemId item, const std::vector<double>& accuracies) {
  if (db.num_claims(item) == 1) return {1.0};
  return SoftmaxFromLogScores(ClaimLogScores(db, item, accuracies));
}

FusionResult AccuFusion::Fuse(const Database& db, const PriorSet& priors,
                              const FusionOptions& opts) const {
  return Fuse(db, priors, opts, nullptr);
}

FusionResult AccuFusion::Fuse(const Database& db, const PriorSet& priors,
                              const FusionOptions& opts,
                              const FusionResult* warm) const {
  FusionResult result(db, opts.initial_accuracy);
  std::vector<double> accuracies =
      warm != nullptr ? warm->accuracies()
                      : std::vector<double>(db.num_sources(),
                                            opts.initial_accuracy);
  for (double& a : accuracies) a = ClampAccuracy(a);

  bool converged = false;
  std::size_t iter = 0;
  while (iter < opts.max_iterations) {
    ++iter;
    UpdateProbabilities(db, priors, accuracies, &result);
    const double delta = UpdateAccuracies(db, result, &accuracies);
    if (delta < opts.tolerance) {
      converged = true;
      break;
    }
  }
  // Final probability pass so P is consistent with the final A.
  UpdateProbabilities(db, priors, accuracies, &result);
  *result.mutable_accuracies() = std::move(accuracies);
  result.set_iterations(iter);
  result.set_converged(converged);
  return result;
}

}  // namespace veritas
