#include "fusion/lca.h"

#include <cmath>

#include "util/math.h"

namespace veritas {

FusionResult SimpleLcaFusion::Fuse(const Database& db, const PriorSet& priors,
                                   const FusionOptions& opts) const {
  return Fuse(db, priors, opts, nullptr);
}

FusionResult SimpleLcaFusion::Fuse(const Database& db, const PriorSet& priors,
                                   const FusionOptions& opts,
                                   const FusionResult* warm) const {
  FusionResult result(db, opts.initial_accuracy);
  std::vector<double> honesty =
      warm != nullptr ? warm->accuracies()
                      : std::vector<double>(db.num_sources(),
                                            opts.initial_accuracy);
  for (double& h : honesty) h = ClampAccuracy(h);

  bool converged = false;
  std::size_t iter = 0;
  std::vector<double> scores;
  while (iter < opts.max_iterations) {
    // Hard stop: bail at the iteration boundary with converged=false; the
    // posteriors from the completed E-steps stay internally consistent.
    if (HardStopRequested(opts.cancel)) break;
    ++iter;
    // E-step: claim posteriors from source honesty.
    for (ItemId i = 0; i < db.num_items(); ++i) {
      std::vector<double>* probs = result.mutable_item_probs(i);
      if (priors.Has(i)) {
        *probs = priors.Get(i);
        continue;
      }
      const Item& item = db.item(i);
      if (item.claims.size() == 1) {
        (*probs)[0] = 1.0;
        continue;
      }
      const double false_values =
          static_cast<double>(item.claims.size()) - 1.0;
      scores.assign(item.claims.size(), 0.0);
      for (ClaimIndex k = 0; k < item.claims.size(); ++k) {
        double score = 0.0;
        for (SourceId s : item.claims[k].sources) {
          const double h = ClampAccuracy(honesty[s]);
          // A vote for v (vs. the source's counterfactual dishonest vote
          // spread over the other claims).
          score += std::log(h) - std::log((1.0 - h) / false_values);
        }
        scores[k] = score;
      }
      *probs = SoftmaxFromLogScores(scores);
    }
    // M-step: smoothed honesty.
    double max_delta = 0.0;
    for (SourceId j = 0; j < db.num_sources(); ++j) {
      const Source& s = db.source(j);
      if (s.votes.empty()) continue;
      double sum = 0.0;
      for (const Vote& v : s.votes) sum += result.prob(v.item, v.claim);
      const double updated = ClampAccuracy(
          (sum + smoothing_ * opts.initial_accuracy) /
          (static_cast<double>(s.votes.size()) + smoothing_));
      max_delta = std::max(max_delta, std::fabs(updated - honesty[j]));
      honesty[j] = updated;
    }
    if (max_delta < opts.tolerance) {
      converged = true;
      break;
    }
  }
  *result.mutable_accuracies() = std::move(honesty);
  result.set_iterations(iter);
  result.set_converged(converged);
  return result;
}

}  // namespace veritas
