// DeltaFusion: incremental re-fusion after pinning one or a few items.
//
// MEU's exact lookahead re-fuses the whole database O(m * kappa) times per
// action (§4.2.2, Table 11) even though a single pin barely moves most of the
// fixed point: from a converged <P, A>, pinning item o_i only changes the
// accuracies of sources voting on o_i, which only changes the probabilities
// of items those sources touch, and so on. This engine propagates exactly
// that dirty frontier over a CompiledDatabase CSR view:
//
//   pin item(s)  ->  sources voting on them get new vote-probability sums
//                ->  accuracy update restricted to those sources
//                ->  probability update restricted to items the *changed*
//                    sources vote on (Eq. 1 over cached per-source log-odds)
//                ->  repeat until the frontier's L-infinity accuracy change
//                    falls below the fusion tolerance.
//
// Sources whose accuracy moved by less than a small fraction of the
// tolerance do not enroll their items, so the active subgraph stops growing
// once the perturbation decays; the dropped mass is below the convergence
// tolerance the full model itself stops at, which is why the result agrees
// with a full warm-started Fuse within that tolerance (see DESIGN.md for the
// exact semantics). When a *materializing* re-fusion (FuseWithPins) touches
// more items than a coverage threshold, the engine abandons propagation and
// falls back to a full warm-started Fuse; the entropy-only MEU lookahead
// never falls back — even a global relaxation on the flat workspace arrays
// beats a full Fuse, which must also rebuild its views and allocate a
// result.
//
// Supported models: Accu, Voting (exact — probabilities do not depend on
// accuracies), TruthFinder. AccuCopy re-estimates its dependence matrix from
// *all* pairwise agreements, so a pin is never local; Create() returns null
// for it and every other unsupported model.
#ifndef VERITAS_FUSION_DELTA_FUSION_H_
#define VERITAS_FUSION_DELTA_FUSION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "fusion/fusion_model.h"
#include "fusion/fusion_result.h"
#include "fusion/priors.h"
#include "model/compiled_database.h"
#include "model/database.h"
#include "util/result.h"

namespace veritas {

class StreamingDatabase;

/// Knobs of the incremental engine.
struct DeltaFusionOptions {
  /// Fall back to a full warm-started Fuse when more than this fraction of
  /// all items has been touched by the propagation.
  double max_frontier_fraction = 0.5;
  /// A source re-dirties the items it votes on only when its accuracy moved
  /// by at least `propagation_epsilon_factor * tolerance`. Below that the
  /// change is absorbed (it is orders of magnitude under the convergence
  /// tolerance of the full model, so the absorbed drift — roughly
  /// eps / (1 - rho) per score term, rho being the model's contraction rate
  /// — stays well inside the tolerance the full path itself stops at).
  double propagation_epsilon_factor = 1e-3;
};

/// Restricts a lookahead's propagation to one shard of an item partition
/// (DESIGN.md §5h). Items outside the scope never enter the frontier, so the
/// ripple of a hypothetical pin is confined to the shard and a lookahead
/// costs O(shard reach) instead of O(reach of the heaviest shared source) —
/// the mechanism behind the sharded scan's per-candidate speedup. The
/// confined entropy is an *estimate* (cross-shard coupling is dropped); the
/// sharded scan re-ranks the merged candidate pool with unconfined exact
/// lookaheads before anything is selected.
struct ItemScope {
  /// Shard id per ItemId (ShardPartition::shard_map().data()); not owned.
  /// Null admits every item (no confinement).
  const std::uint32_t* shard_of = nullptr;
  std::uint32_t shard = 0;
  /// Optional enrollment fast path: the shard's multi-claim items,
  /// ascending (ShardPartition::conflict_items(shard)); not owned. When a
  /// source's vote list is longer than this list, the confined propagation
  /// enrolls from here instead of scanning the votes — a head source
  /// covering the whole database then costs O(shard conflicts), not
  /// O(degree), per lookahead. May over-enroll in-scope items the source
  /// does not vote on; recomputing an item whose scores did not move is a
  /// no-op, so the confined estimate is unchanged up to floating-point
  /// noise far below the merge's decision margins.
  const std::vector<ItemId>* conflict_items = nullptr;

  bool Contains(ItemId i) const {
    return shard_of == nullptr || shard_of[i] == shard;
  }
};

/// Per-call observability of one incremental re-fusion.
struct DeltaFusionStats {
  bool fell_back = false;           ///< Propagation abandoned for full Fuse.
  std::size_t iterations = 0;       ///< Frontier rounds run.
  std::size_t touched_items = 0;    ///< Distinct items whose probs changed.
  std::size_t peak_frontier = 0;    ///< Largest single-round item frontier.
};

/// Incremental re-fusion engine for one (Database, FusionModel) pair.
/// All methods are const and thread-safe; concurrent callers need their own
/// Workspace (see MEU's per-worker workspaces).
class DeltaFusionEngine {
 public:
  /// Reusable scratch for the hot path: flat working copies of a BaseState,
  /// mutated in place during a call and restored (touched entries only)
  /// before it returns, so a lookahead costs O(active subgraph) with direct
  /// array access — no per-element indirection. The copies are synced lazily
  /// the first time a workspace sees a given BaseState (O(database) once,
  /// then amortized over the whole candidate scan). One per thread; contents
  /// are meaningless between calls.
  class Workspace {
   public:
    Workspace() = default;

   private:
    friend class DeltaFusionEngine;
    // Which BaseState the working copies currently mirror.
    const void* synced_base_ = nullptr;
    std::uint64_t synced_id_ = 0;
    std::uint64_t ticket_ = 0;       // Dedupe stamp for the touched lists.
    std::size_t claims_ = 0, sources_ = 0, items_ = 0;
    // Flat working copies of the base state.
    std::vector<double> prob_;
    std::vector<double> acc_;
    std::vector<double> sum_;
    std::vector<double> term_;
    std::vector<double> item_entropy_;
    // The active subgraph (cumulative; membership = tick equals ticket_).
    // touched_items_ includes pinned items; frontier_ is the recompute list
    // (touched minus fixed items), relaxed every round.
    std::vector<std::uint64_t> item_touch_tick_;
    std::vector<ItemId> touched_items_;
    std::vector<std::uint64_t> source_touch_tick_;
    std::vector<SourceId> touched_sources_;
    std::vector<std::uint64_t> source_enroll_tick_;
    std::vector<ItemId> frontier_;
    std::vector<double> scores_;
    std::vector<double> new_probs_;
    // Flat SoA buffers for the batched frontier recompute: per-claim scores
    // and probabilities for the whole frontier live in one contiguous run
    // (offsets per item), so the gather/softmax/scatter passes are tight
    // loops over dense arrays instead of per-item resized scratch.
    std::vector<std::size_t> frontier_offsets_;
    std::vector<double> frontier_scores_;
    std::vector<double> frontier_probs_;
    std::vector<double> frontier_entropy_;
  };

  /// Flat snapshot of a converged base <P, A>, reusable across many pins of
  /// the same base (one per MEU candidate scan). `origin` must outlive the
  /// state; it backs the full-Fuse fallback warm start. `id` is a globally
  /// unique generation stamp so workspaces can tell bases apart even when
  /// one is rebuilt at the same address.
  struct BaseState {
    const FusionResult* origin = nullptr;
    std::uint64_t id = 0;
    /// CompiledDatabase epoch this state was flattened against. Every lookup
    /// into `probs`/`source_sums` is positional in that epoch's layout; the
    /// engine checks it before each use and fails loudly on mismatch instead
    /// of silently reading through a stale view (see
    /// `delta.stale_view_violations`).
    std::uint64_t epoch = 0;
    std::vector<double> probs;        ///< By global claim id.
    std::vector<double> accuracies;   ///< Clamped.
    std::vector<double> source_sums;  ///< Sum of vote probabilities.
    std::vector<double> terms;        ///< Per-source score term (model kind).
    std::vector<double> item_entropy;
    double total_entropy = 0.0;
  };

  /// True when `model` has the local-update structure the engine exploits.
  static bool Supports(const FusionModel& model);

  /// Builds an engine, or null when the model is unsupported. Owns its
  /// CompiledDatabase view (frozen databases — the view never changes).
  static std::unique_ptr<DeltaFusionEngine> Create(
      const Database& db, const FusionModel& model, FusionOptions fusion_opts,
      DeltaFusionOptions delta_opts = {});

  /// Streaming variant: borrows the StreamingDatabase's live view instead of
  /// compiling a private copy, so ingest batches become visible to the engine
  /// as soon as they land (each bumping the shared epoch). `stream` must
  /// outlive the engine.
  static std::unique_ptr<DeltaFusionEngine> Create(
      const StreamingDatabase& stream, const FusionModel& model,
      FusionOptions fusion_opts, DeltaFusionOptions delta_opts = {});

  const CompiledDatabase& compiled() const { return *compiled_; }
  const FusionOptions& fusion_options() const { return fusion_opts_; }
  const DeltaFusionOptions& delta_options() const { return delta_opts_; }

  /// True when a pin on one item can move *other* items' probabilities
  /// (through the shared-source accuracy coupling). Voting has no such
  /// coupling: a pin changes exactly the pinned item, so MEU's pruning bound
  /// is exact for it instead of a margin-padded heuristic.
  bool cross_item_influence() const { return kind_ != Kind::kVoting; }

  /// Flattens a converged fusion result for repeated pinning.
  BaseState PrepareBase(const FusionResult& base) const;

  /// Full re-fusion result after pinning `items` to the distributions
  /// `priors` holds for them. `priors` must already contain every entry of
  /// `items`; `base` is the converged result *without* those pins (the warm
  /// state the session carries). Falls back to model.Fuse on frontier
  /// overflow.
  FusionResult FuseWithPins(const FusionResult& base, const PriorSet& priors,
                            const std::vector<ItemId>& items,
                            DeltaFusionStats* stats = nullptr) const;

  /// MEU fast path: the total entropy of the hypothetical state where `item`
  /// is pinned one-hot to `claim`, without materializing a FusionResult.
  /// `priors` is the current prior set (NOT yet containing `item`). A
  /// non-null `scope` confines the propagation frontier to the scope's items
  /// (shard-local estimate; see ItemScope).
  double EntropyAfterExactPin(const BaseState& base, Workspace& ws,
                              const PriorSet& priors, ItemId item,
                              ClaimIndex claim,
                              DeltaFusionStats* stats = nullptr,
                              const ItemScope* scope = nullptr) const;

  /// Streaming re-fusion: folds freshly appended observations into a
  /// converged result instead of re-fusing from scratch. `base` is the
  /// converged result from *before* the appends (its shape may lag the
  /// database — missing the new items/sources/claims); `dirty_items` /
  /// `dirty_sources` are the entities the appends touched (from
  /// StreamingDatabase::TakeDirty). The engine extends `base` to the current
  /// shape (new claims at probability 0, new sources at the initial
  /// accuracy, new single-claim items pinned), seeds the propagation
  /// frontier from the dirty set — an append enrolls exactly like a
  /// pin-ripple — and relaxes to convergence. Falls back to a full
  /// warm-started Fuse on frontier overflow. Fails (InvalidArgument) when
  /// `base` is from a *newer* shape than the database, which indicates caller
  /// confusion rather than staleness.
  Result<FusionResult> FuseWithAppends(const FusionResult& base,
                                       const PriorSet& priors,
                                       const std::vector<ItemId>& dirty_items,
                                       const std::vector<SourceId>& dirty_sources,
                                       DeltaFusionStats* stats = nullptr) const;

 private:
  enum class Kind { kAccu, kVoting, kTruthFinder };

  DeltaFusionEngine(const Database& db, const FusionModel& model, Kind kind,
                    double gamma, FusionOptions fusion_opts,
                    DeltaFusionOptions delta_opts,
                    const CompiledDatabase* external_view);

  double ScoreTerm(double accuracy) const;
  /// Copies `base` into the workspace's flat working arrays.
  void SyncWorkspace(const BaseState& base, Workspace& ws) const;
  void ApplyPin(Workspace& ws, ItemId item, const double* pin,
                std::size_t n) const;
  /// Batched probability pass: recomputes every frontier item in order via
  /// three flat passes (score gather, softmax + entropy, vote-sum scatter)
  /// over the workspace's contiguous SoA buffers. Bit-identical to updating
  /// the items one at a time — scores depend only on term_, which the pass
  /// never writes, and the scatter preserves per-item order.
  void RecomputeItems(Workspace& ws) const;
  /// Relaxes the active subgraph to convergence. With `enforce_coverage`,
  /// returns false as soon as the touched-item set exceeds the coverage
  /// threshold (caller must fall back to a full Fuse); without it the
  /// relaxation simply degrades into a full-database alternation on the
  /// workspace arrays. `extra_pin` marks a pinned item absent from `priors`;
  /// a non-null `scope` keeps out-of-scope items off the frontier.
  bool Propagate(Workspace& ws, const PriorSet& priors, ItemId extra_pin,
                 bool enforce_coverage, bool* converged,
                 std::size_t* iterations, DeltaFusionStats* stats,
                 const ItemScope* scope = nullptr) const;

  /// Seeds `ws` for a propagation over an already-pinned/extended state:
  /// marks `dirty_items` touched (multi-claim unpinned ones enter the
  /// frontier) and `dirty_sources` touched.
  void SeedDirty(Workspace& ws, const PriorSet& priors,
                 const std::vector<ItemId>& dirty_items,
                 const std::vector<SourceId>& dirty_sources) const;

  const Database& db_;
  const FusionModel& model_;
  Kind kind_;
  double gamma_;
  FusionOptions fusion_opts_;
  DeltaFusionOptions delta_opts_;
  // The CSR view: owned for frozen databases, borrowed from a
  // StreamingDatabase when the engine follows a live stream.
  std::unique_ptr<CompiledDatabase> owned_compiled_;
  const CompiledDatabase* compiled_;
};

}  // namespace veritas

#endif  // VERITAS_FUSION_DELTA_FUSION_H_
