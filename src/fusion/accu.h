// AccuNoDep (Dong, Berti-Equille, Srivastava, PVLDB 2009): Bayesian fusion
// with independent sources — the fusion substrate the paper builds on (§3).
//
// The model alternates between
//   (1) claim probabilities from source accuracies (Eq. 1), computed here in
//       log space as a softmax over per-claim scores
//         score(v) = sum_{s in S(v)} ln((|V_i|-1) * A(s) / (1 - A(s))),
//   (2) source accuracies as the mean probability of their claims (Eq. 2),
// until the accuracies converge or the iteration cap is hit. Convergence is
// not guaranteed (§3); the result records whether it was reached.
#ifndef VERITAS_FUSION_ACCU_H_
#define VERITAS_FUSION_ACCU_H_

#include "fusion/fusion_model.h"

namespace veritas {

/// The AccuNoDep fusion model.
class AccuFusion : public FusionModel {
 public:
  using FusionModel::Fuse;

  std::string name() const override { return "accu"; }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts) const override;

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts,
                    const FusionResult* warm) const override;

  /// Recomputes the probabilities of a single item from given source
  /// accuracies (one application of Eq. 1). Exposed for Approx-MEU tests and
  /// diagnostics. `accuracies` are clamped internally.
  static std::vector<double> ClaimProbabilities(
      const Database& db, ItemId item, const std::vector<double>& accuracies);

  /// Log-space claim scores for one item:
  /// score_k = sum_{s in S(v_i^k)} ln((|V_i|-1) A(s) / (1 - A(s))).
  static std::vector<double> ClaimLogScores(
      const Database& db, ItemId item, const std::vector<double>& accuracies);
};

}  // namespace veritas

#endif  // VERITAS_FUSION_ACCU_H_
