#include "fusion/fusion_model.h"

namespace veritas {

FusionResult FusionModel::Fuse(const Database& db, const PriorSet& priors,
                               const FusionOptions& opts,
                               const FusionResult* /*warm*/) const {
  return Fuse(db, priors, opts);
}

}  // namespace veritas
