#include "fusion/delta_fusion.h"

#include <atomic>
#include <cassert>
#include <cmath>

#include "fusion/accu.h"
#include "fusion/truthfinder.h"
#include "fusion/voting.h"
#include "model/streaming_database.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancellation.h"
#include "util/math.h"

namespace veritas {

namespace {

// Generation stamps for BaseState so a workspace can tell two bases apart
// even when one is rebuilt at the same address.
std::atomic<std::uint64_t> g_base_state_counter{0};

Counter* StaleViewCounter() {
  static Counter* stale =
      MetricsRegistry::Global().GetCounter("delta.stale_view_violations");
  return stale;
}

}  // namespace

bool DeltaFusionEngine::Supports(const FusionModel& model) {
  return dynamic_cast<const AccuFusion*>(&model) != nullptr ||
         dynamic_cast<const VotingFusion*>(&model) != nullptr ||
         dynamic_cast<const TruthFinderFusion*>(&model) != nullptr;
}

std::unique_ptr<DeltaFusionEngine> DeltaFusionEngine::Create(
    const Database& db, const FusionModel& model, FusionOptions fusion_opts,
    DeltaFusionOptions delta_opts) {
  Kind kind;
  double gamma = 0.0;
  if (dynamic_cast<const AccuFusion*>(&model) != nullptr) {
    kind = Kind::kAccu;
  } else if (dynamic_cast<const VotingFusion*>(&model) != nullptr) {
    kind = Kind::kVoting;
  } else if (const auto* tf =
                 dynamic_cast<const TruthFinderFusion*>(&model)) {
    kind = Kind::kTruthFinder;
    gamma = tf->gamma();
  } else {
    return nullptr;
  }
  return std::unique_ptr<DeltaFusionEngine>(new DeltaFusionEngine(
      db, model, kind, gamma, fusion_opts, delta_opts,
      /*external_view=*/nullptr));
}

std::unique_ptr<DeltaFusionEngine> DeltaFusionEngine::Create(
    const StreamingDatabase& stream, const FusionModel& model,
    FusionOptions fusion_opts, DeltaFusionOptions delta_opts) {
  Kind kind;
  double gamma = 0.0;
  if (dynamic_cast<const AccuFusion*>(&model) != nullptr) {
    kind = Kind::kAccu;
  } else if (dynamic_cast<const VotingFusion*>(&model) != nullptr) {
    kind = Kind::kVoting;
  } else if (const auto* tf =
                 dynamic_cast<const TruthFinderFusion*>(&model)) {
    kind = Kind::kTruthFinder;
    gamma = tf->gamma();
  } else {
    return nullptr;
  }
  return std::unique_ptr<DeltaFusionEngine>(new DeltaFusionEngine(
      stream.db(), model, kind, gamma, fusion_opts, delta_opts,
      &stream.compiled()));
}

DeltaFusionEngine::DeltaFusionEngine(const Database& db,
                                     const FusionModel& model, Kind kind,
                                     double gamma, FusionOptions fusion_opts,
                                     DeltaFusionOptions delta_opts,
                                     const CompiledDatabase* external_view)
    : db_(db),
      model_(model),
      kind_(kind),
      gamma_(gamma),
      fusion_opts_(fusion_opts),
      delta_opts_(delta_opts) {
  if (external_view != nullptr) {
    compiled_ = external_view;
  } else {
    owned_compiled_ = std::make_unique<CompiledDatabase>(db);
    compiled_ = owned_compiled_.get();
  }
}

double DeltaFusionEngine::ScoreTerm(double accuracy) const {
  const double a = ClampAccuracy(accuracy);
  switch (kind_) {
    case Kind::kAccu:
      return std::log(a / (1.0 - a));
    case Kind::kTruthFinder:
      return -std::log(1.0 - a);
    case Kind::kVoting:
      return 0.0;
  }
  return 0.0;
}

DeltaFusionEngine::BaseState DeltaFusionEngine::PrepareBase(
    const FusionResult& base) const {
  const CompiledDatabase& c = *compiled_;
  BaseState s;
  s.origin = &base;
  s.id = ++g_base_state_counter;
  s.epoch = c.epoch();
  s.probs.resize(c.num_claims());
  s.item_entropy.resize(c.num_items());
  for (ItemId i = 0; i < c.num_items(); ++i) {
    const std::vector<double>& p = base.item_probs(i);
    assert(p.size() == c.item_num_claims(i));
    double h = 0.0;
    if (c.item_claims_flat(i)) {
      const std::uint32_t g = c.claim_offset(i);
      for (std::size_t k = 0; k < p.size(); ++k) {
        s.probs[g + k] = p[k];
        h += EntropyTerm(p[k]);
      }
    } else {
      for (std::size_t k = 0; k < p.size(); ++k) {
        s.probs[c.global_claim_id(i, k)] = p[k];
        h += EntropyTerm(p[k]);
      }
    }
    s.item_entropy[i] = h;
    s.total_entropy += h;
  }
  s.accuracies = base.accuracies();
  for (double& a : s.accuracies) a = ClampAccuracy(a);
  s.terms.resize(c.num_sources());
  s.source_sums.assign(c.num_sources(), 0.0);
  for (SourceId j = 0; j < c.num_sources(); ++j) {
    s.terms[j] = ScoreTerm(s.accuracies[j]);
    double sum = 0.0;
    c.ForEachSourceVote(
        j, [&](ItemId, std::uint32_t g) { sum += s.probs[g]; });
    s.source_sums[j] = sum;
  }
  return s;
}

void DeltaFusionEngine::SyncWorkspace(const BaseState& base,
                                      Workspace& ws) const {
  const CompiledDatabase& c = *compiled_;
  ws.claims_ = c.num_claims();
  ws.sources_ = c.num_sources();
  ws.items_ = c.num_items();
  ws.prob_ = base.probs;
  ws.acc_ = base.accuracies;
  ws.sum_ = base.source_sums;
  ws.term_ = base.terms;
  ws.item_entropy_ = base.item_entropy;
  ws.item_touch_tick_.assign(ws.items_, 0);
  ws.source_touch_tick_.assign(ws.sources_, 0);
  ws.source_enroll_tick_.assign(ws.sources_, 0);
  ws.ticket_ = 0;
  ws.synced_base_ = &base;
  ws.synced_id_ = base.id;
}

void DeltaFusionEngine::ApplyPin(Workspace& ws, ItemId item, const double* pin,
                                 std::size_t n) const {
  const CompiledDatabase& c = *compiled_;
  // Touch the item (pinned items join touched_items_ but never frontier_:
  // they are fixed and must not be recomputed).
  if (ws.item_touch_tick_[item] != ws.ticket_) {
    ws.item_touch_tick_[item] = ws.ticket_;
    ws.touched_items_.push_back(item);
  }
  // Claim deltas, then vote-sum updates, then the new probabilities.
  ws.scores_.resize(n);
  double h = 0.0;
  if (c.item_claims_flat(item)) {
    const std::uint32_t g = c.claim_offset(item);
    for (std::size_t k = 0; k < n; ++k) {
      ws.scores_[k] = pin[k] - ws.prob_[g + k];
      h += EntropyTerm(pin[k]);
    }
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      ws.scores_[k] = pin[k] - ws.prob_[c.global_claim_id(item, k)];
      h += EntropyTerm(pin[k]);
    }
  }
  c.ForEachItemVote(item, [&](SourceId j, ClaimIndex k) {
    const double dp = ws.scores_[k];
    if (dp == 0.0) return;
    ws.sum_[j] += dp;
    if (ws.source_touch_tick_[j] != ws.ticket_) {
      ws.source_touch_tick_[j] = ws.ticket_;
      ws.touched_sources_.push_back(j);
    }
  });
  if (c.item_claims_flat(item)) {
    const std::uint32_t g = c.claim_offset(item);
    for (std::size_t k = 0; k < n; ++k) ws.prob_[g + k] = pin[k];
  } else {
    for (std::size_t k = 0; k < n; ++k) {
      ws.prob_[c.global_claim_id(item, k)] = pin[k];
    }
  }
  ws.item_entropy_[item] = h;
}

void DeltaFusionEngine::RecomputeItems(Workspace& ws) const {
  const CompiledDatabase& c = *compiled_;
  const std::size_t m = ws.frontier_.size();
  if (m == 0) return;
  const bool view_flat = c.flat();
  const std::vector<SourceId>& claim_sources = c.claim_sources();

  // Pass 0: lay the frontier's claims out flat (one prefix-sum of offsets),
  // so the hot passes below run over dense contiguous buffers instead of
  // per-item resized scratch.
  ws.frontier_offsets_.resize(m + 1);
  std::size_t flat = 0;
  for (std::size_t f = 0; f < m; ++f) {
    ws.frontier_offsets_[f] = flat;
    flat += c.item_num_claims(ws.frontier_[f]);
  }
  ws.frontier_offsets_[m] = flat;
  if (ws.frontier_scores_.size() < flat) ws.frontier_scores_.resize(flat);
  if (ws.frontier_probs_.size() < flat) ws.frontier_probs_.resize(flat);
  if (ws.frontier_entropy_.size() < m) ws.frontier_entropy_.resize(m);

  // Pass 1: score gather — one CSR sweep over claim_sources accumulating
  // the cached per-source terms. term_ is never written during this pass,
  // so batching across items cannot change any item's arithmetic.
  const double* term = ws.term_.data();
  double* scores = ws.frontier_scores_.data();
  if (kind_ == Kind::kAccu) {
    if (view_flat) {
      for (std::size_t f = 0; f < m; ++f) {
        const ItemId item = ws.frontier_[f];
        const std::uint32_t g = c.claim_offset(item);
        const std::size_t n = c.item_base_claims(item);
        const double lf = c.log_false_values(item);
        double* out = scores + ws.frontier_offsets_[f];
        for (std::size_t k = 0; k < n; ++k) {
          const std::uint32_t begin = c.claim_sources_begin(g + k);
          const std::uint32_t end = c.claim_sources_end(g + k);
          double score = static_cast<double>(end - begin) * lf;
          for (std::uint32_t v = begin; v < end; ++v) {
            score += term[claim_sources[v]];
          }
          out[k] = score;
        }
      }
    } else {
      for (std::size_t f = 0; f < m; ++f) {
        const ItemId item = ws.frontier_[f];
        const std::size_t n = c.item_num_claims(item);
        const double lf = c.log_false_values(item);
        double* out = scores + ws.frontier_offsets_[f];
        for (std::size_t k = 0; k < n; ++k) {
          const std::uint32_t g = c.global_claim_id(item, k);
          double score =
              static_cast<double>(c.claim_num_sources(g)) * lf;
          c.ForEachClaimSource(g, [&](SourceId j) { score += term[j]; });
          out[k] = score;
        }
      }
    }
  } else if (kind_ == Kind::kTruthFinder) {
    if (view_flat) {
      for (std::size_t f = 0; f < m; ++f) {
        const ItemId item = ws.frontier_[f];
        const std::uint32_t g = c.claim_offset(item);
        const std::size_t n = c.item_base_claims(item);
        double* out = scores + ws.frontier_offsets_[f];
        for (std::size_t k = 0; k < n; ++k) {
          const std::uint32_t begin = c.claim_sources_begin(g + k);
          const std::uint32_t end = c.claim_sources_end(g + k);
          double sigma = 0.0;
          for (std::uint32_t v = begin; v < end; ++v) {
            sigma += term[claim_sources[v]];
          }
          out[k] = sigma;
        }
      }
    } else {
      for (std::size_t f = 0; f < m; ++f) {
        const ItemId item = ws.frontier_[f];
        const std::size_t n = c.item_num_claims(item);
        double* out = scores + ws.frontier_offsets_[f];
        for (std::size_t k = 0; k < n; ++k) {
          const std::uint32_t g = c.global_claim_id(item, k);
          double sigma = 0.0;
          c.ForEachClaimSource(g, [&](SourceId j) { sigma += term[j]; });
          out[k] = sigma;
        }
      }
    }
  } else {  // kVoting: scores are live per-claim vote counts. Voting items
            // never enter the frontier through source enrollment (no
            // accuracy coupling), but streaming appends do dirty them, so
            // this branch recomputes exactly VotingFusion's share update.
    for (std::size_t f = 0; f < m; ++f) {
      const ItemId item = ws.frontier_[f];
      const std::size_t n = c.item_num_claims(item);
      double* out = scores + ws.frontier_offsets_[f];
      for (std::size_t k = 0; k < n; ++k) {
        out[k] = static_cast<double>(
            c.claim_num_sources(c.global_claim_id(item, k)));
      }
    }
  }

  // Pass 2: probabilities + entropies from the flat scores, per item (the
  // same arithmetic, in the same order, as the old one-item-at-a-time
  // update).
  double* probs = ws.frontier_probs_.data();
  for (std::size_t f = 0; f < m; ++f) {
    const std::size_t off = ws.frontier_offsets_[f];
    const std::size_t n = ws.frontier_offsets_[f + 1] - off;
    const double* s = scores + off;
    double* p = probs + off;
    double h = 0.0;
    if (kind_ == Kind::kAccu) {
      if (n == 2) {
        // Two-claim fast path: one exp + one log1p for both the
        // probabilities and the entropy H = log1p(e) + |d| * p_minor
        // (softmax in sigmoid form; d is the score gap).
        const double d = s[0] - s[1];
        if (d >= 0.0) {
          const double e = std::exp(-d);
          const double p1 = e / (1.0 + e);
          p[1] = p1;
          p[0] = 1.0 - p1;
          h = std::log1p(e) + d * p1;
        } else {
          const double e = std::exp(d);
          const double p0 = e / (1.0 + e);
          p[0] = p0;
          p[1] = 1.0 - p0;
          h = std::log1p(e) - d * p0;
        }
      } else {
        double max_score = s[0];
        for (std::size_t k = 1; k < n; ++k) {
          if (s[k] > max_score) max_score = s[k];
        }
        double sum = 0.0;
        for (std::size_t k = 0; k < n; ++k) {
          const double w = std::exp(s[k] - max_score);
          p[k] = w;
          sum += w;
        }
        // p_k = exp(s_k - lse)  =>  H = sum_k p_k * (lse - s_k), no logs
        // per claim.
        const double lse = max_score + std::log(sum);
        const double inv = 1.0 / sum;
        for (std::size_t k = 0; k < n; ++k) {
          const double pk = p[k] * inv;
          p[k] = pk;
          h += pk * (lse - s[k]);
        }
      }
    } else if (kind_ == Kind::kTruthFinder) {
      double total = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        const double conf = 1.0 / (1.0 + std::exp(-gamma_ * s[k]));
        p[k] = conf;
        total += conf;
      }
      for (std::size_t k = 0; k < n; ++k) {
        p[k] /= total;
        h += EntropyTerm(p[k]);
      }
    } else {  // kVoting: normalized vote counts (VotingFusion::VoteShares).
      double total = 0.0;
      for (std::size_t k = 0; k < n; ++k) total += s[k];
      const double inv = total > 0.0 ? 1.0 / total : 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        p[k] = s[k] * inv;
        h += EntropyTerm(p[k]);
      }
    }
    ws.frontier_entropy_[f] = h;
  }

  // Pass 3: vote-sum delta scatter + writeback, item by item in frontier
  // order — the accumulation order into sum_ is exactly the old loop's.
  for (std::size_t f = 0; f < m; ++f) {
    const ItemId item = ws.frontier_[f];
    const std::size_t off = ws.frontier_offsets_[f];
    const std::size_t n = ws.frontier_offsets_[f + 1] - off;
    const double* p = probs + off;
    const bool item_flat = c.item_claims_flat(item);
    const std::uint32_t g = c.claim_offset(item);
    c.ForEachItemVote(item, [&](SourceId j, ClaimIndex k) {
      const std::uint32_t gk =
          item_flat ? g + k : c.global_claim_id(item, k);
      const double dp = p[k] - ws.prob_[gk];
      if (dp == 0.0) return;
      ws.sum_[j] += dp;
      if (ws.source_touch_tick_[j] != ws.ticket_) {
        ws.source_touch_tick_[j] = ws.ticket_;
        ws.touched_sources_.push_back(j);
      }
    });
    if (item_flat) {
      for (std::size_t k = 0; k < n; ++k) ws.prob_[g + k] = p[k];
    } else {
      for (std::size_t k = 0; k < n; ++k) {
        ws.prob_[c.global_claim_id(item, k)] = p[k];
      }
    }
    ws.item_entropy_[item] = ws.frontier_entropy_[f];
  }
}

bool DeltaFusionEngine::Propagate(Workspace& ws, const PriorSet& priors,
                                  ItemId extra_pin, bool enforce_coverage,
                                  bool* converged, std::size_t* iterations,
                                  DeltaFusionStats* stats,
                                  const ItemScope* scope) const {
  const CompiledDatabase& c = *compiled_;
  const double eps =
      delta_opts_.propagation_epsilon_factor * fusion_opts_.tolerance;
  const std::size_t max_touched = static_cast<std::size_t>(
      delta_opts_.max_frontier_fraction * static_cast<double>(c.num_items()));

  // Each round is one accuracy + probability alternation of the full model,
  // restricted to the active subgraph: every source whose vote-sum ever
  // moved, every non-fixed item any of them enrolled. The subgraph only
  // grows (a source whose accuracy moved by >= eps enrolls all its items),
  // so the rounds converge like a full warm-started Fuse instead of
  // trickling influence one hop at a time.
  bool conv = false;
  std::size_t iter = 0;
  while (iter < fusion_opts_.max_iterations) {
    ++iter;

    // Hard cancel: abandon the relaxation mid-flight. The caller's touched
    // lists stay valid (EntropyAfterExactPin still restores them), and every
    // caller of a non-converged lookahead is itself on an abandon path.
    if (HardStopRequested(fusion_opts_.cancel)) break;

    // Accuracy pass over the active sources. Sources whose sum did not move
    // since their last update fall through at `delta == 0.0` in O(1).
    double max_delta = 0.0;
    for (SourceId j : ws.touched_sources_) {
      const std::size_t degree = c.source_degree(j);
      if (degree == 0) continue;
      const double updated =
          ClampAccuracy(ws.sum_[j] / static_cast<double>(degree));
      const double delta = std::fabs(updated - ws.acc_[j]);
      if (delta == 0.0) continue;
      ws.acc_[j] = updated;
      ws.term_[j] = ScoreTerm(updated);
      if (delta > max_delta) max_delta = delta;
      // Only a non-negligible move enrolls the source's items; smaller
      // changes are absorbed (they are far below the convergence tolerance).
      // Enrollment is idempotent (a source always enrolls all its non-fixed
      // items), so each source scans its vote list at most once per call.
      if (kind_ != Kind::kVoting && delta >= eps &&
          ws.source_enroll_tick_[j] != ws.ticket_) {
        ws.source_enroll_tick_[j] = ws.ticket_;
        if (scope != nullptr && scope->conflict_items != nullptr &&
            scope->conflict_items->size() < degree) {
          // Confined fast path: enroll from the shard's (small) conflict
          // list instead of walking a heavy source's whole vote list. This
          // may over-enroll in-scope items the source does not vote on —
          // their scores have not moved, so the recompute is a no-op — and
          // is what keeps a confined lookahead independent of the degree of
          // a database-spanning head source.
          for (const ItemId i : *scope->conflict_items) {
            if (ws.item_touch_tick_[i] == ws.ticket_) continue;
            if (i == extra_pin || priors.Has(i)) continue;
            ws.item_touch_tick_[i] = ws.ticket_;
            ws.touched_items_.push_back(i);
            ws.frontier_.push_back(i);
          }
          continue;
        }
        c.ForEachSourceVote(j, [&](ItemId i, std::uint32_t) {
          if (ws.item_touch_tick_[i] == ws.ticket_) return;
          if (i == extra_pin || c.item_num_claims(i) <= 1 || priors.Has(i)) {
            return;
          }
          // Shard confinement: the ripple stops at the scope boundary. The
          // source's accuracy/sum still update from in-scope prob changes —
          // only the re-enrollment of foreign items is cut.
          if (scope != nullptr && !scope->Contains(i)) return;
          ws.item_touch_tick_[i] = ws.ticket_;
          ws.touched_items_.push_back(i);
          ws.frontier_.push_back(i);
        });
      }
    }

    // Coverage gate: when the update is global, materializing a delta result
    // has no edge over a full pass — bail out before paying for both.
    if (enforce_coverage && ws.touched_items_.size() > max_touched) {
      if (stats != nullptr) {
        stats->iterations = iter;
        stats->touched_items = ws.touched_items_.size();
        if (ws.frontier_.size() > stats->peak_frontier) {
          stats->peak_frontier = ws.frontier_.size();
        }
      }
      return false;
    }
    if (stats != nullptr && ws.frontier_.size() > stats->peak_frontier) {
      stats->peak_frontier = ws.frontier_.size();
    }

    // Probability pass over the active items (the converged-base analogue of
    // the full model's probability update, including its trailing pass:
    // probabilities are refreshed once more on the round that converges).
    RecomputeItems(ws);
    if (max_delta < fusion_opts_.tolerance) {
      conv = true;
      break;
    }
  }

  *converged = conv;
  *iterations = iter;
  if (stats != nullptr) {
    stats->iterations = iter;
    stats->touched_items = ws.touched_items_.size();
  }
  return true;
}

FusionResult DeltaFusionEngine::FuseWithPins(const FusionResult& base,
                                             const PriorSet& priors,
                                             const std::vector<ItemId>& items,
                                             DeltaFusionStats* stats) const {
  VERITAS_SPAN("delta.fuse_with_pins");
  static Counter* calls =
      MetricsRegistry::Global().GetCounter("delta.fuse_with_pins");
  static Counter* fallbacks =
      MetricsRegistry::Global().GetCounter("delta.fallbacks");
  static Histogram* iterations_hist = MetricsRegistry::Global().GetHistogram(
      "delta.iterations", MetricsRegistry::CountEdges());
  static Histogram* touched_hist = MetricsRegistry::Global().GetHistogram(
      "delta.touched_items", MetricsRegistry::CountEdges());
  static Histogram* frontier_hist = MetricsRegistry::Global().GetHistogram(
      "delta.peak_frontier", MetricsRegistry::CountEdges());
  calls->Add(1);

  // Shape guard: a base from before an ingest batch no longer matches the
  // view — flattening it positionally would scatter probabilities into the
  // wrong claims. Count the violation and re-fuse cold (the result is
  // correct, just not incremental). FuseWithAppends is the intended path for
  // folding appends into a stale base.
  const CompiledDatabase& c = *compiled_;
  if (base.num_items() != c.num_items() ||
      base.accuracies().size() != c.num_sources()) {
    assert(false && "FuseWithPins called with a stale-shaped base");
    StaleViewCounter()->Add(1);
    if (stats != nullptr) stats->fell_back = true;
    fallbacks->Add(1);
    return model_.Fuse(db_, priors, fusion_opts_);
  }

  const BaseState state = PrepareBase(base);
  Workspace ws;
  SyncWorkspace(state, ws);
  ++ws.ticket_;
  for (ItemId item : items) {
    const std::vector<double>& pin = priors.Get(item);
    ApplyPin(ws, item, pin.data(), pin.size());
  }
  DeltaFusionStats local_stats;
  DeltaFusionStats* out_stats = stats != nullptr ? stats : &local_stats;
  bool conv = false;
  std::size_t iters = 0;
  if (!Propagate(ws, priors, kInvalidItem, /*enforce_coverage=*/true, &conv,
                 &iters, out_stats)) {
    out_stats->fell_back = true;
    fallbacks->Add(1);
    iterations_hist->Observe(static_cast<double>(out_stats->iterations));
    touched_hist->Observe(static_cast<double>(out_stats->touched_items));
    frontier_hist->Observe(static_cast<double>(out_stats->peak_frontier));
    return model_.Fuse(db_, priors, fusion_opts_, &base);
  }
  iterations_hist->Observe(static_cast<double>(out_stats->iterations));
  touched_hist->Observe(static_cast<double>(out_stats->touched_items));
  frontier_hist->Observe(static_cast<double>(out_stats->peak_frontier));
  FusionResult out = base;
  for (ItemId i : ws.touched_items_) {
    std::vector<double>* probs = out.mutable_item_probs(i);
    if (c.item_claims_flat(i)) {
      const std::uint32_t g = c.claim_offset(i);
      for (std::size_t k = 0; k < probs->size(); ++k) {
        (*probs)[k] = ws.prob_[g + k];
      }
    } else {
      for (std::size_t k = 0; k < probs->size(); ++k) {
        (*probs)[k] = ws.prob_[c.global_claim_id(i, k)];
      }
    }
  }
  std::vector<double>* accuracies = out.mutable_accuracies();
  for (SourceId j : ws.touched_sources_) (*accuracies)[j] = ws.acc_[j];
  out.set_iterations(iters);
  out.set_converged(conv);
  return out;
}

double DeltaFusionEngine::EntropyAfterExactPin(
    const BaseState& base, Workspace& ws, const PriorSet& priors, ItemId item,
    ClaimIndex claim, DeltaFusionStats* stats, const ItemScope* scope) const {
  // The MEU inner loop: instrumentation here is a single relaxed atomic add
  // (no span, no histogram) so thousands of lookahead pins per select stay
  // cheap with metrics always on.
  static Counter* lookahead_pins =
      MetricsRegistry::Global().GetCounter("delta.lookahead_pins");
  lookahead_pins->Add(1);
  const CompiledDatabase& c = *compiled_;
  // Epoch guard: the base flattened a particular view generation; an ingest
  // batch (or compaction) since then moved claim/vote addresses under it.
  // Using it would read through the stale layout, so fail loudly in debug
  // and degrade to "no information" (the unpinned entropy) in release —
  // never a silently wrong lookahead score.
  if (base.epoch != c.epoch()) {
    assert(false && "EntropyAfterExactPin on a stale base state");
    StaleViewCounter()->Add(1);
    return base.total_entropy;
  }
  // First sight of this base: copy it into the flat working arrays. Later
  // calls only pay for what they touch (and restore below).
  if (ws.synced_base_ != &base || ws.synced_id_ != base.id) {
    SyncWorkspace(base, ws);
  }
  ++ws.ticket_;
  ws.touched_items_.clear();
  ws.touched_sources_.clear();
  ws.frontier_.clear();

  const std::size_t n = c.item_num_claims(item);
  ws.new_probs_.assign(n, 0.0);
  ws.new_probs_[claim] = 1.0;
  // ApplyPin reads deltas into scores_, so new_probs_ survives the call.
  ApplyPin(ws, item, ws.new_probs_.data(), n);

  // No coverage gate on the lookahead path: even when the pin's influence is
  // global, relaxing on the workspace arrays still skips the view rebuild,
  // allocations, and result materialization a fallback Fuse would pay for.
  bool conv = false;
  std::size_t iters = 0;
  Propagate(ws, priors, item, /*enforce_coverage=*/false, &conv, &iters,
            stats, scope);

  double total = base.total_entropy;
  for (ItemId i : ws.touched_items_) {
    total += ws.item_entropy_[i] - base.item_entropy[i];
  }

  // Restore the touched entries so the workspace mirrors the base again.
  for (ItemId i : ws.touched_items_) {
    const std::size_t ni = c.item_num_claims(i);
    if (c.item_claims_flat(i)) {
      const std::uint32_t g = c.claim_offset(i);
      for (std::size_t k = 0; k < ni; ++k) {
        ws.prob_[g + k] = base.probs[g + k];
      }
    } else {
      for (std::size_t k = 0; k < ni; ++k) {
        const std::uint32_t gk = c.global_claim_id(i, k);
        ws.prob_[gk] = base.probs[gk];
      }
    }
    ws.item_entropy_[i] = base.item_entropy[i];
  }
  for (SourceId j : ws.touched_sources_) {
    ws.acc_[j] = base.accuracies[j];
    ws.term_[j] = base.terms[j];
    ws.sum_[j] = base.source_sums[j];
  }
  return total;
}

void DeltaFusionEngine::SeedDirty(Workspace& ws, const PriorSet& priors,
                                  const std::vector<ItemId>& dirty_items,
                                  const std::vector<SourceId>& dirty_sources) const {
  const CompiledDatabase& c = *compiled_;
  for (ItemId i : dirty_items) {
    if (ws.item_touch_tick_[i] == ws.ticket_) continue;
    ws.item_touch_tick_[i] = ws.ticket_;
    ws.touched_items_.push_back(i);
    // Pinned and single-claim items are fixed; everything else must be
    // recomputed against the new vote structure.
    if (c.item_num_claims(i) > 1 && !priors.Has(i)) {
      ws.frontier_.push_back(i);
    }
  }
  for (SourceId j : dirty_sources) {
    if (ws.source_touch_tick_[j] == ws.ticket_) continue;
    ws.source_touch_tick_[j] = ws.ticket_;
    ws.touched_sources_.push_back(j);
  }
}

Result<FusionResult> DeltaFusionEngine::FuseWithAppends(
    const FusionResult& base, const PriorSet& priors,
    const std::vector<ItemId>& dirty_items,
    const std::vector<SourceId>& dirty_sources,
    DeltaFusionStats* stats) const {
  VERITAS_SPAN("delta.fuse_with_appends");
  static Counter* calls =
      MetricsRegistry::Global().GetCounter("delta.fuse_with_appends");
  static Counter* fallbacks =
      MetricsRegistry::Global().GetCounter("delta.fallbacks");
  calls->Add(1);

  const CompiledDatabase& c = *compiled_;
  if (base.num_items() > c.num_items() ||
      base.accuracies().size() > c.num_sources()) {
    return Status::InvalidArgument(
        "FuseWithAppends: base result is from a newer shape than the view");
  }

  // Extend the stale base to the current shape: existing probabilities and
  // accuracies carry over verbatim, appended claims start at probability 0
  // (no support yet under the old state), appended sources start at the
  // model's initial accuracy, and pinned items take their (already
  // zero-extended) prior distributions. Every approximation introduced here
  // lives on the dirty set, which is exactly what the propagation below
  // recomputes.
  FusionResult seed(db_, fusion_opts_.initial_accuracy);
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    std::vector<double>* probs = seed.mutable_item_probs(i);
    if (priors.Has(i)) {
      const std::vector<double>& pin = priors.Get(i);
      if (pin.size() != probs->size()) {
        return Status::InvalidArgument(
            "FuseWithAppends: pinned prior not extended to the current "
            "claim count of item " +
            std::to_string(i));
      }
      *probs = pin;
      continue;
    }
    if (i < base.num_items()) {
      const std::vector<double>& old = base.item_probs(i);
      if (old.size() > probs->size()) {
        return Status::InvalidArgument(
            "FuseWithAppends: item " + std::to_string(i) +
            " lost claims relative to the base result");
      }
      for (std::size_t k = 0; k < old.size(); ++k) (*probs)[k] = old[k];
      // New claims of an existing item stay at 0; the item is dirty and gets
      // recomputed.
    } else if (probs->size() == 1) {
      // Brand-new single-claim item: unanimous, probability 1 (what any
      // model's normalization yields, and never recomputed).
      (*probs)[0] = 1.0;
    } else {
      // Brand-new conflicted item: uniform seed; it is dirty by construction
      // and recomputed on the first round.
      const double u = 1.0 / static_cast<double>(probs->size());
      for (double& p : *probs) p = u;
    }
  }
  std::vector<double>* accuracies = seed.mutable_accuracies();
  for (SourceId j = 0; j < base.accuracies().size(); ++j) {
    (*accuracies)[j] = base.accuracies()[j];
  }

  // Flatten against the *current* structure (source sums are recomputed from
  // scratch here, so revised votes are already reflected), then propagate
  // from the dirty set exactly like a pin-ripple.
  const BaseState state = PrepareBase(seed);
  Workspace ws;
  SyncWorkspace(state, ws);
  ++ws.ticket_;
  SeedDirty(ws, priors, dirty_items, dirty_sources);

  DeltaFusionStats local_stats;
  DeltaFusionStats* out_stats = stats != nullptr ? stats : &local_stats;
  bool conv = false;
  std::size_t iters = 0;
  if (!Propagate(ws, priors, kInvalidItem, /*enforce_coverage=*/true, &conv,
                 &iters, out_stats)) {
    out_stats->fell_back = true;
    fallbacks->Add(1);
    return model_.Fuse(db_, priors, fusion_opts_, &seed);
  }

  FusionResult out = std::move(seed);
  for (ItemId i : ws.touched_items_) {
    std::vector<double>* probs = out.mutable_item_probs(i);
    if (c.item_claims_flat(i)) {
      const std::uint32_t g = c.claim_offset(i);
      for (std::size_t k = 0; k < probs->size(); ++k) {
        (*probs)[k] = ws.prob_[g + k];
      }
    } else {
      for (std::size_t k = 0; k < probs->size(); ++k) {
        (*probs)[k] = ws.prob_[c.global_claim_id(i, k)];
      }
    }
  }
  std::vector<double>* out_acc = out.mutable_accuracies();
  for (SourceId j : ws.touched_sources_) (*out_acc)[j] = ws.acc_[j];
  out.set_iterations(iters);
  out.set_converged(conv);
  return out;
}

}  // namespace veritas
