// TruthFinder (Yin, Han, Yu, TKDE 2008): iterative trust/confidence fusion.
//
// Included as a second Bayesian fusion variant to demonstrate that the
// feedback framework is fusion-model-agnostic (paper §6: "the item-level
// ranking algorithms and the general decision-theoretic algorithm (MEU) are
// applicable to any generic data fusion system").
//
// Per iteration:
//   tau(s)    = -ln(1 - t(s))                       (source trust score)
//   sigma(v)  = sum_{s in S(v)} tau(s)              (claim raw confidence)
//   conf(v)   = 1 / (1 + exp(-gamma * sigma(v)))    (dampened logistic)
//   p_i^k     = conf normalized per item            (so P is a distribution)
//   t(s)      = mean of p over the source's claims
// Pinned (validated) items keep their prior distribution.
#ifndef VERITAS_FUSION_TRUTHFINDER_H_
#define VERITAS_FUSION_TRUTHFINDER_H_

#include "fusion/fusion_model.h"

namespace veritas {

/// TruthFinder-style fusion adapted to emit per-item distributions.
class TruthFinderFusion : public FusionModel {
 public:
  using FusionModel::Fuse;

  /// `gamma` is TruthFinder's dampening factor (0.3 in the original paper).
  explicit TruthFinderFusion(double gamma = 0.3) : gamma_(gamma) {}

  std::string name() const override { return "truthfinder"; }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts) const override;

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts,
                    const FusionResult* warm) const override;

  double gamma() const { return gamma_; }

 private:
  double gamma_;
};

}  // namespace veritas

#endif  // VERITAS_FUSION_TRUTHFINDER_H_
