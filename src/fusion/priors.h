// PriorSet: validated knowledge injected into fusion (paper §2, §4.4).
//
// A prior pins an item's claim distribution: fusion models do not recompute
// the item's probabilities, but the pinned probabilities still drive source
// accuracy updates. Exact validation pins a one-hot distribution;
// confidence-weighted or conflicting (crowd) feedback pins an arbitrary
// distribution over the item's claims.
#ifndef VERITAS_FUSION_PRIORS_H_
#define VERITAS_FUSION_PRIORS_H_

#include <unordered_map>
#include <vector>

#include "model/database.h"
#include "model/types.h"
#include "util/status.h"

namespace veritas {

/// Fixed claim distributions for validated items.
class PriorSet {
 public:
  /// Pins `item` to the one-hot distribution with `claim` true (p = 1).
  Status SetExact(const Database& db, ItemId item, ClaimIndex claim);

  /// Pins `item` to an arbitrary distribution over its claims. `probs` must
  /// have one entry per claim, each in [0, 1], summing to 1 (tolerance 1e-6).
  Status SetDistribution(const Database& db, ItemId item,
                         std::vector<double> probs);

  /// Removes the prior on `item` (no-op if absent).
  void Erase(ItemId item) { priors_.erase(item); }

  /// True when `item` has a pinned distribution.
  bool Has(ItemId item) const { return priors_.count(item) > 0; }

  /// The pinned distribution. Precondition: Has(item).
  const std::vector<double>& Get(ItemId item) const {
    return priors_.at(item);
  }

  /// Zero-extends every pinned distribution to its item's current claim
  /// count. Streaming appends can add claims to an already-validated item;
  /// the validated answer keeps probability 1 and the newcomer claims get 0
  /// (the oracle's verdict stands — a late claim is not evidence against
  /// it). Returns the number of priors extended.
  std::size_t ExtendForNewClaims(const Database& db);

  std::size_t size() const { return priors_.size(); }
  bool empty() const { return priors_.empty(); }
  void Clear() { priors_.clear(); }

  /// Ids of all pinned items (unordered).
  std::vector<ItemId> Items() const;

  auto begin() const { return priors_.begin(); }
  auto end() const { return priors_.end(); }

 private:
  std::unordered_map<ItemId, std::vector<double>> priors_;
};

}  // namespace veritas

#endif  // VERITAS_FUSION_PRIORS_H_
