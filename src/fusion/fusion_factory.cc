#include "fusion/fusion_factory.h"

#include "fusion/accu.h"
#include "fusion/accu_copy.h"
#include "fusion/lca.h"
#include "fusion/pooled_investment.h"
#include "fusion/truthfinder.h"
#include "fusion/voting.h"

namespace veritas {

Result<std::unique_ptr<FusionModel>> MakeFusionModel(const std::string& name) {
  if (name == "accu") {
    return std::unique_ptr<FusionModel>(new AccuFusion());
  }
  if (name == "accu_copy") {
    return std::unique_ptr<FusionModel>(new AccuCopyFusion());
  }
  if (name == "voting") {
    return std::unique_ptr<FusionModel>(new VotingFusion());
  }
  if (name == "truthfinder") {
    return std::unique_ptr<FusionModel>(new TruthFinderFusion());
  }
  if (name == "lca") {
    return std::unique_ptr<FusionModel>(new SimpleLcaFusion());
  }
  if (name == "pooled_investment") {
    return std::unique_ptr<FusionModel>(new PooledInvestmentFusion());
  }
  return Status::NotFound("unknown fusion model: " + name);
}

std::vector<std::string> FusionModelNames() {
  return {"accu",        "accu_copy", "voting",
          "truthfinder", "lca",       "pooled_investment"};
}

}  // namespace veritas
