// Sharded candidate-scan coordination (DESIGN.md §5h). The MEU-family
// lookahead scans decouple from the single flat CSR by a two-stage protocol
// behind FusionOptions::shards:
//
//   stage 1 (per shard): candidates are scored with *shard-confined*
//     lookaheads — the delta engine's propagation frontier never leaves the
//     candidate's shard (fusion/delta_fusion.h ItemScope), so a lookahead
//     costs O(shard reach) instead of O(reach of the heaviest shared
//     source). Per-shard branch-and-bound keeps only each shard's top
//     `quota` candidates competitive.
//   coordinator: the per-shard top-quota pools (item-disjoint by
//     construction) are merged deterministically.
//   stage 2: exact *unconfined* lookaheads re-rank the merged pool — the
//     only place full-precision gains are paid for, on a pool whose size is
//     O(shards · quota), independent of the database size.
//
// Determinism: the partition is a pure function of the compiled view
// (model/shard_partition.h), stage-1 thresholds are fed only exact confined
// gains (the same admissibility argument as the unsharded scan, per shard),
// and the merge orders by (estimate desc, item id asc) — so selections are
// identical for any thread count at a fixed shard count. shards <= 1
// bypasses all of this and IS the classic scan.
#ifndef VERITAS_FUSION_SHARDED_SCAN_H_
#define VERITAS_FUSION_SHARDED_SCAN_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "fusion/delta_fusion.h"
#include "model/shard_partition.h"

namespace veritas {

/// Caches the deterministic ShardPartition for a strategy's sharded scans
/// and answers per-item propagation scopes. Rebuilds lazily when the view
/// epoch or the requested shard count changes (streaming appends invalidate
/// the map — an appended item has no shard).
class ShardedScanPlan {
 public:
  /// Ensures the cached partition matches (compiled.epoch(), shards).
  void Prepare(const CompiledDatabase& compiled, std::size_t shards);

  bool ready() const { return partition_ != nullptr; }
  const ShardPartition& partition() const { return *partition_; }
  std::size_t num_shards() const { return partition_->num_shards(); }
  std::uint32_t shard_of(ItemId i) const { return partition_->shard_of(i); }

  /// Propagation scope of `item`'s shard. Valid while the plan's partition
  /// is alive (it borrows the shard map and conflict list).
  ItemScope ScopeFor(ItemId item) const {
    ItemScope scope;
    scope.shard_of = partition_->shard_map().data();
    scope.shard = partition_->shard_of(item);
    scope.conflict_items = &partition_->conflict_items(scope.shard);
    return scope;
  }

  /// Per-shard candidate quota for the coordinator merge: 2x the batch with
  /// a small floor, so confined-estimate mis-rankings (dropped cross-shard
  /// coupling) stay inside the pool while stage 2 — whose unconfined
  /// lookaheads over the shards·quota pool are the scan's residual
  /// full-reach cost — stays small enough that sharding wins wall-clock
  /// even single-threaded.
  static std::size_t MergeQuota(std::size_t batch) {
    const std::size_t q = 2 * batch;
    return q < 4 ? 4 : q;
  }

 private:
  const CompiledDatabase* compiled_ = nullptr;  ///< Identity of the cache key.
  std::unique_ptr<ShardPartition> partition_;
  std::size_t shards_ = 0;
};

/// Coordinator merge: for each shard, the top-`quota` of its candidates by
/// estimate (ties: lower item id), concatenated over shards and returned in
/// ascending item-id order. `estimates` is parallel to `candidates`; pruned
/// entries may hold upper bounds strictly below their shard's quota-th best
/// exact estimate, which cannot alter the per-shard top-quota. Empty shards
/// contribute nothing.
std::vector<ItemId> MergeTopCandidatesPerShard(
    const std::vector<ItemId>& candidates, const std::vector<double>& estimates,
    const ShardPartition& partition, std::size_t quota);

}  // namespace veritas

#endif  // VERITAS_FUSION_SHARDED_SCAN_H_
