#include "fusion/accu_copy.h"

#include <algorithm>
#include <cmath>

#include "fusion/accu.h"
#include "util/math.h"

namespace veritas {

namespace {

constexpr double kMinPosterior = 1e-6;

// Accuracies are capped inside the dependence likelihoods: with estimated
// accuracies near 1 the "shared true value" likelihood ratio degenerates to
// exactly 1 and total agreement stops being evidence of anything. Dong et
// al. bound the accuracy used for dependence detection for the same reason.
constexpr double kDepMinAccuracy = 0.2;
constexpr double kDepMaxAccuracy = 0.9;

// Evidence counts of one source pair over their overlapping items.
struct PairEvidence {
  std::size_t same_true = 0;   // Same value, currently believed true.
  std::size_t same_false = 0;  // Same value, currently believed false.
  std::size_t different = 0;   // Different values on the same item.
  double mean_false_count = 1.0;  // Average #false values of overlap items.
};

// Posterior probability that the pair is dependent, given evidence and the
// two accuracies (Bayes with the Dong et al. likelihoods, computed in log
// space). `c` is the copy rate, `alpha` the prior.
double DependencePosterior(const PairEvidence& ev, double a1, double a2,
                           double c, double alpha) {
  const double n = std::max(ev.mean_false_count, 1.0);
  const double p_same_true_ind = Clamp(a1 * a2, 1e-12, 1.0);
  const double p_same_false_ind =
      Clamp((1.0 - a1) * (1.0 - a2) / n, 1e-12, 1.0);
  const double p_diff_ind = Clamp(1.0 - p_same_true_ind - p_same_false_ind,
                                  1e-12, 1.0);
  const double p_same_true_dep =
      Clamp(c * a2 + (1.0 - c) * p_same_true_ind, 1e-12, 1.0);
  const double p_same_false_dep =
      Clamp(c * (1.0 - a2) + (1.0 - c) * p_same_false_ind, 1e-12, 1.0);
  const double p_diff_dep = Clamp((1.0 - c) * p_diff_ind, 1e-12, 1.0);

  const double log_ind = static_cast<double>(ev.same_true) *
                             std::log(p_same_true_ind) +
                         static_cast<double>(ev.same_false) *
                             std::log(p_same_false_ind) +
                         static_cast<double>(ev.different) *
                             std::log(p_diff_ind);
  const double log_dep = static_cast<double>(ev.same_true) *
                             std::log(p_same_true_dep) +
                         static_cast<double>(ev.same_false) *
                             std::log(p_same_false_dep) +
                         static_cast<double>(ev.different) *
                             std::log(p_diff_dep);
  // posterior = alpha e^{log_dep} / (alpha e^{log_dep} + (1-alpha) e^{log_ind})
  const double log_num = std::log(alpha) + log_dep;
  const double log_den = LogSumExp({log_num, std::log(1.0 - alpha) + log_ind});
  return Clamp(std::exp(log_num - log_den), kMinPosterior,
               1.0 - kMinPosterior);
}

// Collects evidence for the pair (a, b) by merging their sorted vote lists.
// "True" is whatever the current fusion believes (winner claim).
PairEvidence CollectEvidence(const Database& db, const FusionResult& fusion,
                             SourceId a, SourceId b) {
  PairEvidence ev;
  const auto& va = db.source(a).votes;
  const auto& vb = db.source(b).votes;
  std::size_t i = 0, j = 0;
  double false_count_sum = 0.0;
  std::size_t overlap = 0;
  while (i < va.size() && j < vb.size()) {
    if (va[i].item < vb[j].item) {
      ++i;
    } else if (vb[j].item < va[i].item) {
      ++j;
    } else {
      const ItemId item = va[i].item;
      ++overlap;
      false_count_sum +=
          static_cast<double>(std::max<std::size_t>(db.num_claims(item), 2) -
                              1);
      if (va[i].claim == vb[j].claim) {
        if (va[i].claim == fusion.WinningClaim(item)) {
          ++ev.same_true;
        } else {
          ++ev.same_false;
        }
      } else {
        ++ev.different;
      }
      ++i;
      ++j;
    }
  }
  if (overlap > 0) {
    ev.mean_false_count = false_count_sum / static_cast<double>(overlap);
  }
  return ev;
}

}  // namespace

double AccuCopyFusion::DependenceProbability(SourceId a, SourceId b) const {
  std::lock_guard<std::mutex> lock(diag_mutex_);
  if (a == b || a >= last_num_sources_ || b >= last_num_sources_) return 0.0;
  return dependence_[static_cast<std::size_t>(a) * last_num_sources_ + b];
}

FusionResult AccuCopyFusion::Fuse(const Database& db, const PriorSet& priors,
                                  const FusionOptions& opts) const {
  return Fuse(db, priors, opts, nullptr);
}

FusionResult AccuCopyFusion::Fuse(const Database& db, const PriorSet& priors,
                                  const FusionOptions& opts,
                                  const FusionResult* warm) const {
  const std::size_t n_sources = db.num_sources();
  // Per-call dependence matrix: Fuse must not touch shared members while
  // running (MEU scores candidates with concurrent lookahead Fuse calls).
  // The result is published to the diagnostics members once, at the end.
  std::vector<double> dependence(n_sources * n_sources, 0.0);

  // Bootstrap from a *single* AccuNoDep iteration, not a converged run:
  // dependence evidence must be collected before the truth estimate
  // polarizes, otherwise a clique that owns an item's majority gets its
  // shared lies labelled "true" and escapes detection (and, worse, honest
  // minority pairs get flagged). At this stage the dominant, non-circular
  // signal is the pair's raw agreement rate: copiers never disagree on
  // shared items, independent sources do.
  AccuFusion base;
  FusionOptions bootstrap = opts;
  bootstrap.max_iterations = 1;
  FusionResult result = base.Fuse(db, priors, bootstrap, warm);

  std::vector<double> accuracies = result.accuracies();
  std::vector<double> independence_weight;  // Scratch per claim scoring.

  // Hard stop (see FusionOptions::cancel): the O(sources²) dependence scan
  // and the inner EM loop both poll at their boundaries and bail with
  // converged=false; the bootstrap result above keeps the output well
  // formed. Graceful stops never interrupt a fusion in flight.
  bool stopped = false;
  for (std::size_t round = 0;
       round < copy_options_.dependence_rounds && !stopped; ++round) {
    // 1. Re-estimate pairwise dependence under the current beliefs.
    for (SourceId a = 0; a < n_sources && !stopped; ++a) {
      if (HardStopRequested(opts.cancel)) {
        stopped = true;
        break;
      }
      for (SourceId b = a + 1; b < n_sources; ++b) {
        const PairEvidence ev = CollectEvidence(db, result, a, b);
        const std::size_t overlap = ev.same_true + ev.same_false +
                                    ev.different;
        double posterior = 0.0;
        if (overlap >= copy_options_.min_overlap) {
          // Direction-symmetric evidence: take the max of "a copies b" and
          // "b copies a" (discounting only needs undirected dependence).
          const double cap_a =
              Clamp(accuracies[a], kDepMinAccuracy, kDepMaxAccuracy);
          const double cap_b =
              Clamp(accuracies[b], kDepMinAccuracy, kDepMaxAccuracy);
          const double ab = DependencePosterior(
              ev, cap_a, cap_b, copy_options_.copy_rate,
              copy_options_.prior_copy_probability);
          const double ba = DependencePosterior(
              ev, cap_b, cap_a, copy_options_.copy_rate,
              copy_options_.prior_copy_probability);
          posterior = std::max(ab, ba);
        }
        dependence[static_cast<std::size_t>(a) * n_sources + b] = posterior;
        dependence[static_cast<std::size_t>(b) * n_sources + a] = posterior;
      }
    }

    // 2. Re-solve truth discovery under the refined dependence model,
    //    starting from fresh accuracies: carrying accuracies polarized by a
    //    previous round's (possibly clique-dominated) solution would anchor
    //    the very errors the discounting is meant to undo.
    if (stopped) break;
    std::fill(accuracies.begin(), accuracies.end(), opts.initial_accuracy);
    bool converged = false;
    std::size_t iter = 0;
    while (iter < opts.max_iterations) {
      if (HardStopRequested(opts.cancel)) {
        stopped = true;
        break;
      }
      ++iter;
      for (ItemId i = 0; i < db.num_items(); ++i) {
        std::vector<double>* probs = result.mutable_item_probs(i);
        if (priors.Has(i)) {
          *probs = priors.Get(i);
          continue;
        }
        const Item& item = db.item(i);
        if (item.claims.size() == 1) {
          (*probs)[0] = 1.0;
          continue;
        }
        const double false_values =
            static_cast<double>(item.claims.size()) - 1.0;
        std::vector<double> scores(item.claims.size(), 0.0);
        std::vector<SourceId> ordered;
        for (ClaimIndex k = 0; k < item.claims.size(); ++k) {
          const auto& voters = item.claims[k].sources;
          // Ordered discounting (Dong et al.): count the most accurate
          // voter in full, then discount each further voter by its
          // dependence on the voters already counted — so a clique of
          // copiers contributes barely more than its best member.
          ordered.assign(voters.begin(), voters.end());
          std::sort(ordered.begin(), ordered.end(),
                    [&](SourceId x, SourceId y) {
                      if (accuracies[x] != accuracies[y]) {
                        return accuracies[x] > accuracies[y];
                      }
                      return x < y;
                    });
          independence_weight.assign(ordered.size(), 1.0);
          for (std::size_t x = 1; x < ordered.size(); ++x) {
            for (std::size_t y = 0; y < x; ++y) {
              const double dep =
                  dependence[static_cast<std::size_t>(ordered[x]) *
                                 n_sources +
                             ordered[y]];
              independence_weight[x] *=
                  1.0 - copy_options_.copy_rate * dep;
            }
          }
          double score = 0.0;
          for (std::size_t x = 0; x < ordered.size(); ++x) {
            const double a = ClampAccuracy(accuracies[ordered[x]]);
            score += independence_weight[x] *
                     std::log(false_values * a / (1.0 - a));
          }
          scores[k] = score;
        }
        *probs = SoftmaxFromLogScores(scores);
      }
      // Accuracy update (Eq. 2).
      double max_delta = 0.0;
      for (SourceId j = 0; j < n_sources; ++j) {
        const Source& s = db.source(j);
        if (s.votes.empty()) continue;
        double sum = 0.0;
        for (const Vote& v : s.votes) sum += result.prob(v.item, v.claim);
        const double updated =
            ClampAccuracy(sum / static_cast<double>(s.votes.size()));
        max_delta = std::max(max_delta, std::fabs(updated - accuracies[j]));
        accuracies[j] = updated;
      }
      if (max_delta < opts.tolerance) {
        converged = true;
        break;
      }
    }
    result.set_iterations(iter);
    result.set_converged(converged && !stopped);
  }
  if (stopped) result.set_converged(false);
  *result.mutable_accuracies() = std::move(accuracies);
  {
    std::lock_guard<std::mutex> lock(diag_mutex_);
    last_num_sources_ = n_sources;
    dependence_ = std::move(dependence);
  }
  return result;
}

}  // namespace veritas
