// Majority voting: the classic baseline fusion model. The probability of a
// claim is the fraction of the item's voters that support it (Eq. 5) — the
// same quantity QBC builds its vote entropy on.
#ifndef VERITAS_FUSION_VOTING_H_
#define VERITAS_FUSION_VOTING_H_

#include "fusion/fusion_model.h"

namespace veritas {

/// Majority-voting fusion. Non-iterative; "accuracy" of a source is reported
/// as the mean vote-share of the claims it supports.
class VotingFusion : public FusionModel {
 public:
  using FusionModel::Fuse;

  std::string name() const override { return "voting"; }

  FusionResult Fuse(const Database& db, const PriorSet& priors,
                    const FusionOptions& opts) const override;

  /// Vote-share distribution of one item (Eq. 5). Exposed for QBC.
  static std::vector<double> VoteShares(const Database& db, ItemId item);
};

}  // namespace veritas

#endif  // VERITAS_FUSION_VOTING_H_
