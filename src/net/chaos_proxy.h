// ChaosProxy: a deterministic fault-injecting TCP/Unix-socket forwarder for
// drilling the network stack (DESIGN.md §5i). It sits between a NetClient
// and veritas_serve and, per forwarded chunk, consults a seeded
// util/fault_injection plan to
//
//   * drop    — close both directions mid-conversation,
//   * delay   — stall the chunk for the plan's latency before forwarding,
//   * corrupt — flip one bit (the CRC framing must catch this),
//   * truncate— forward a prefix of the chunk, then kill the connection,
//   * half_close — shutdown one direction, leaving the other flowing.
//
// Determinism: each accepted connection gets its own injector seeded
// `seed ^ connection_ordinal`, so a drill replays the same fault schedule
// per connection regardless of thread interleaving. (Chunk boundaries still
// depend on kernel timing, so tests assert typed outcomes and counters, not
// exact byte positions.)
#ifndef VERITAS_NET_CHAOS_PROXY_H_
#define VERITAS_NET_CHAOS_PROXY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/io.h"
#include "util/fault_injection.h"

namespace veritas {
namespace net {

struct ChaosProxyOptions {
  NetAddress listen;
  NetAddress upstream;
  std::uint64_t seed = 42;
  /// Per-chunk fault plans, one independent stream per site. Use a non-none
  /// `kind` for drop/corrupt/truncate/half_close (which fault fires is what
  /// matters, not the kind); `delay` honors the plan's latency_seconds and
  /// works with kind=none (a pure latency spike).
  FaultPlan drop;
  FaultPlan delay;
  FaultPlan corrupt;
  FaultPlan truncate;
  FaultPlan half_close;
  /// Poll tick for accept/pump loops (bounds Stop() latency).
  long idle_poll_ms = 50;
  /// Budget for forwarding one chunk to the destination.
  long forward_timeout_ms = 10'000;
  std::size_t chunk_bytes = 4096;
};

class ChaosProxy {
 public:
  explicit ChaosProxy(ChaosProxyOptions options);
  ~ChaosProxy();

  ChaosProxy(const ChaosProxy&) = delete;
  ChaosProxy& operator=(const ChaosProxy&) = delete;

  /// Binds the listen address and starts accepting.
  Status Start();

  /// The listen address with any ephemeral port resolved.
  const NetAddress& bound_address() const { return bound_; }

  /// Closes the listener and every proxied connection; joins threads.
  void Stop();

 private:
  void AcceptLoop();
  /// Pumps both directions of one proxied connection until it dies.
  void Pump(int client_fd, int upstream_fd, std::uint64_t ordinal);

  const ChaosProxyOptions options_;
  NetAddress bound_;
  /// Atomic: Stop() shutdown()s it from outside while the accept thread
  /// still owns (and eventually closes + clears) it.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::uint64_t next_ordinal_ = 0;

  struct Pumper {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex mu_;
  std::vector<Pumper> pumpers_;
  bool started_ = false;
};

}  // namespace net
}  // namespace veritas

#endif  // VERITAS_NET_CHAOS_PROXY_H_
