#include "net/io.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "util/strings.h"

namespace veritas {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// Polls `fd` for `events` until ready or the deadline expires. EINTR is
/// retried with the remaining budget recomputed, so a signal storm cannot
/// extend the wait.
Status WaitFor(int fd, short events, const Deadline& deadline) {
  for (;;) {
    int timeout_ms = -1;
    if (deadline.has_deadline()) {
      const auto left = deadline.remaining();
      if (left.count() <= 0) {
        return Status::DeadlineExceeded("i/o deadline expired");
      }
      // Round up so a sub-millisecond remainder still polls once.
      timeout_ms = static_cast<int>((left.count() + 999999) / 1000000);
    }
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return Status::OK();  // Ready (or HUP/ERR: surfaced by the
                                      // following read/write's result).
    if (rc == 0) return Status::DeadlineExceeded("i/o deadline expired");
    if (errno == EINTR) continue;
    return Errno("poll");
  }
}

Result<int> FillSockaddr(const NetAddress& address, struct sockaddr_storage* ss,
                         socklen_t* len) {
  std::memset(ss, 0, sizeof(*ss));
  if (address.unix_domain) {
    auto* sun = reinterpret_cast<struct sockaddr_un*>(ss);
    sun->sun_family = AF_UNIX;
    if (address.path.empty() ||
        address.path.size() >= sizeof(sun->sun_path)) {
      return Status::InvalidArgument("unix socket path empty or longer than " +
                                     std::to_string(sizeof(sun->sun_path) - 1) +
                                     " bytes: \"" + address.path + "\"");
    }
    std::memcpy(sun->sun_path, address.path.c_str(), address.path.size() + 1);
    *len = sizeof(*sun);
    return AF_UNIX;
  }
  auto* sin = reinterpret_cast<struct sockaddr_in*>(ss);
  sin->sin_family = AF_INET;
  sin->sin_port = htons(static_cast<std::uint16_t>(address.port));
  const std::string host =
      address.host == "localhost" ? "127.0.0.1" : address.host;
  if (::inet_pton(AF_INET, host.c_str(), &sin->sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 host \"" + address.host +
                                   "\"");
  }
  *len = sizeof(*sin);
  return AF_INET;
}

}  // namespace

std::string NetAddress::ToString() const {
  if (unix_domain) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

Result<NetAddress> ParseNetAddress(const std::string& text) {
  NetAddress address;
  if (StartsWith(text, "unix:")) {
    address.unix_domain = true;
    address.path = text.substr(5);
    if (address.path.empty()) {
      return Status::InvalidArgument("empty unix socket path in \"" + text +
                                     "\"");
    }
    return address;
  }
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size()) {
    return Status::InvalidArgument("expected host:port or unix:<path>, got \"" +
                                   text + "\"");
  }
  address.host = text.substr(0, colon);
  const std::string port_text = text.substr(colon + 1);
  char* end = nullptr;
  const long port = std::strtol(port_text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || port < 0 || port > 65535) {
    return Status::InvalidArgument("bad port \"" + port_text + "\" in \"" +
                                   text + "\"");
  }
  address.port = static_cast<int>(port);
  return address;
}

Result<ListenSocket> Listen(const NetAddress& address, int backlog) {
  struct sockaddr_storage ss;
  socklen_t len = 0;
  VERITAS_ASSIGN_OR_RETURN(const int family, FillSockaddr(address, &ss, &len));
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ListenSocket listener;
  listener.fd = fd;
  listener.address = address;
  if (family == AF_INET) {
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  } else {
    // A previous daemon's socket file blocks bind; it is dead by definition
    // (one daemon per path), so replace it.
    ::unlink(address.path.c_str());
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&ss), len) != 0) {
    const Status st = Errno("bind " + address.ToString());
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen " + address.ToString());
    CloseFd(fd);
    return st;
  }
  if (Status st = SetNonBlocking(fd); !st.ok()) {
    CloseFd(fd);
    return st;
  }
  if (family == AF_INET && address.port == 0) {
    // Report the kernel-assigned ephemeral port so scripts and tests can
    // find the daemon.
    struct sockaddr_in bound;
    socklen_t bound_len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&bound),
                      &bound_len) == 0) {
      listener.address.port = ntohs(bound.sin_port);
    }
  }
  return listener;
}

Result<int> Connect(const NetAddress& address, const Deadline& deadline) {
  struct sockaddr_storage ss;
  socklen_t len = 0;
  VERITAS_ASSIGN_OR_RETURN(const int family, FillSockaddr(address, &ss, &len));
  const int fd = ::socket(family, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (Status st = SetNonBlocking(fd); !st.ok()) {
    CloseFd(fd);
    return st;
  }
  for (;;) {
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&ss), len) == 0) {
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EINPROGRESS || errno == EALREADY) break;
    if (errno == EISCONN) return fd;
    const Status st =
        errno == ECONNREFUSED || errno == ENOENT
            ? Status::Unavailable("connect " + address.ToString() + ": " +
                                  std::strerror(errno))
            : Errno("connect " + address.ToString());
    CloseFd(fd);
    return st;
  }
  // Non-blocking connect: wait for writability, then read the final verdict
  // out of SO_ERROR.
  if (Status st = WaitFor(fd, POLLOUT, deadline); !st.ok()) {
    CloseFd(fd);
    return st;
  }
  int err = 0;
  socklen_t err_len = sizeof(err);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 ||
      err != 0) {
    const int cause = err != 0 ? err : errno;
    const Status st =
        cause == ECONNREFUSED
            ? Status::Unavailable("connect " + address.ToString() + ": " +
                                  std::strerror(cause))
            : Status::IoError("connect " + address.ToString() + ": " +
                              std::strerror(cause));
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<int> Accept(int listen_fd, const Deadline& deadline) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) {
      if (Status st = SetNonBlocking(fd); !st.ok()) {
        CloseFd(fd);
        return st;
      }
      return fd;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      VERITAS_RETURN_IF_ERROR(WaitFor(listen_fd, POLLIN, deadline));
      continue;
    }
    return Errno("accept");
  }
}

Status WaitReadable(int fd, const Deadline& deadline) {
  return WaitFor(fd, POLLIN, deadline);
}

void CloseFd(int fd) {
  if (fd < 0) return;
  while (::close(fd) != 0 && errno == EINTR) {
  }
}

Status ReadFull(int fd, void* buffer, std::size_t size,
                const Deadline& deadline) {
  char* p = static_cast<char*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    // Poll-first so the deadline governs even when the fd was handed to us
    // in blocking mode (socketpair in tests, an inherited fd): a stream
    // recv after POLLIN returns whatever is buffered without blocking.
    VERITAS_RETURN_IF_ERROR(WaitFor(fd, POLLIN, deadline));
    const ssize_t n = ::recv(fd, p + done, size - done, MSG_DONTWAIT);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::Unavailable("connection closed after " +
                                 std::to_string(done) + " of " +
                                 std::to_string(size) + " bytes");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) continue;  // Spurious wake.
    if (errno == ECONNRESET) {
      return Status::Unavailable("connection reset after " +
                                 std::to_string(done) + " of " +
                                 std::to_string(size) + " bytes");
    }
    return Errno("recv");
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buffer, std::size_t size,
                 const Deadline& deadline) {
  const char* p = static_cast<const char*>(buffer);
  std::size_t done = 0;
  while (done < size) {
    // Poll-first + MSG_DONTWAIT: see ReadFull — a blocking-mode fd must
    // never turn a slow peer into an unbounded send() stall.
    VERITAS_RETURN_IF_ERROR(WaitFor(fd, POLLOUT, deadline));
    const ssize_t n =
        ::send(fd, p + done, size - done, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      done += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      return Status::Unavailable("connection closed after " +
                                 std::to_string(done) + " of " +
                                 std::to_string(size) + " bytes sent");
    }
    return Errno("send");
  }
  return Status::OK();
}

Status SendFrame(int fd, FrameType type, std::string_view payload,
                 const Deadline& deadline) {
  const std::string frame = EncodeFrame(type, payload);
  return WriteFull(fd, frame.data(), frame.size(), deadline);
}

Result<Frame> RecvFrame(int fd, const Deadline& deadline,
                        std::size_t max_payload) {
  char header_bytes[kFrameHeaderSize];
  VERITAS_RETURN_IF_ERROR(
      ReadFull(fd, header_bytes, sizeof(header_bytes), deadline));
  auto header = DecodeFrameHeader(
      std::string_view(header_bytes, sizeof(header_bytes)), max_payload);
  if (!header.ok()) return header.status();
  Frame frame;
  frame.type = header->type;
  frame.payload.resize(header->payload_size);
  if (header->payload_size > 0) {
    VERITAS_RETURN_IF_ERROR(
        ReadFull(fd, frame.payload.data(), frame.payload.size(), deadline));
  }
  VERITAS_RETURN_IF_ERROR(VerifyFramePayload(*header, frame.payload));
  return frame;
}

}  // namespace net
}  // namespace veritas
