// NetServer: the accept loop + request dispatcher behind veritas_serve
// (DESIGN.md §5i). It owns no fusion state — every request is answered out
// of the wrapped SessionSupervisor (admission, reports, drain) or the
// global MetricsRegistry (snapshots), so the server stays a thin, faulty-
// network-hardened shell around the overload machinery PR 5 built.
//
// Overload behavior mirrors the supervisor's bounded admission queue one
// layer down: at most `max_connections` handler threads exist; a connection
// beyond that is *accepted, answered with a typed ResourceExhausted, and
// closed* (net.shed) — never silently dropped and never queued unboundedly.
//
// Drain: RequestDrain() (SIGTERM or a kDrain request) forwards to
// SessionSupervisor::BeginDrain(). Existing connections keep being served —
// a draining daemon still answers health/report/metrics so clients can
// observe the wind-down — but submits are rejected with Unavailable. The
// daemon exits once the last running session has checkpointed; queued
// sessions survive as durable manifests for the next process's recovery
// sweep.
#ifndef VERITAS_NET_SERVER_H_
#define VERITAS_NET_SERVER_H_

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/io.h"
#include "net/protocol.h"
#include "serve/session_supervisor.h"

namespace veritas {
namespace net {

struct NetServerOptions {
  NetAddress address;
  /// Concurrent connection-handler threads; the accept loop sheds beyond
  /// this with a typed ResourceExhausted response.
  std::size_t max_connections = 32;
  /// Budget for reading one request frame and writing its response.
  long request_timeout_ms = 10'000;
  /// Idle poll tick between requests on a kept-open connection; also bounds
  /// how long Stop() waits for handler threads to notice.
  long idle_poll_ms = 100;
  /// Largest accepted request payload.
  std::size_t max_payload = 4u << 20;
};

class NetServer {
 public:
  /// `supervisor` must be started and must outlive the server.
  NetServer(SessionSupervisor* supervisor, NetServerOptions options);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens and spawns the accept thread.
  Status Start();

  /// The listen address with any ephemeral port resolved.
  const NetAddress& bound_address() const { return bound_; }

  /// Begins the graceful drain (idempotent; see file comment).
  void RequestDrain();
  bool draining() const { return draining_.load(std::memory_order_relaxed); }

  /// Closes the listener and joins every thread. Idempotent.
  void Stop();

  /// Computes the response for one decoded request. Public so tests can
  /// exercise dispatch without a socket.
  NetResponse Dispatch(const NetRequest& request);

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// One-request handler for an over-capacity connection: reads the
  /// request, answers a typed ResourceExhausted, closes.
  void HandleShed(int fd);
  /// Joins finished handler threads; under `lock` on conn_mu_.
  void ReapFinished();

  SessionSupervisor* const supervisor_;
  const NetServerOptions options_;
  NetAddress bound_;
  /// Atomic: Stop() shutdown()s it from outside while the accept thread
  /// still owns (and eventually closes + clears) it.
  std::atomic<int> listen_fd_{-1};
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  struct Handler {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };
  std::mutex conn_mu_;
  std::vector<Handler> handlers_;
  bool started_ = false;
};

}  // namespace net
}  // namespace veritas

#endif  // VERITAS_NET_SERVER_H_
