// Wire framing for the veritas_serve network protocol (DESIGN.md §5i).
//
// Every message travels as one length-prefixed, CRC-32C-protected frame:
//
//   offset size  field
//   0      4     magic "VFR1"
//   4      1     frame type (request / response)
//   5      3     reserved, must be zero
//   8      4     payload length, little-endian (capped by the receiver)
//   12     4     CRC-32C of the payload, little-endian
//   16     4     CRC-32C of bytes [0, 16), little-endian
//   20     ...   payload
//
// The header carries its own checksum so a corrupted *length* is detected
// before the receiver commits to reading (or allocating) a garbage-sized
// payload — without it, a single flipped length bit turns into a hang until
// the read deadline. The payload checksum reuses util/durable_file's CRC-32C
// table, the same polynomial that guards checkpoints on disk: a flipped bit
// on the wire is rejected exactly like a flipped bit at rest.
//
// A failed decode poisons the stream (the receiver no longer knows where the
// next frame starts), so callers must close the connection after any
// corruption error; the client's retry layer reconnects and re-sends under
// the same idempotent request id.
#ifndef VERITAS_NET_FRAME_H_
#define VERITAS_NET_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/result.h"

namespace veritas {
namespace net {

/// Frame header size on the wire, bytes.
constexpr std::size_t kFrameHeaderSize = 20;

/// Hard ceiling a receiver will ever accept, regardless of options; keeps a
/// corrupted-but-checksum-colliding length from allocating the moon.
constexpr std::size_t kMaxFramePayload = 64u << 20;

enum class FrameType : std::uint8_t {
  kRequest = 1,
  kResponse = 2,
};

struct FrameHeader {
  FrameType type = FrameType::kRequest;
  std::uint32_t payload_size = 0;
  std::uint32_t payload_crc = 0;
};

/// Serializes a complete frame (header + payload).
std::string EncodeFrame(FrameType type, std::string_view payload);

/// Parses and verifies the fixed-size header (`data` must hold exactly
/// kFrameHeaderSize bytes). Rejects bad magic, a bad header CRC, an unknown
/// type, nonzero reserved bytes and payloads above `max_payload`. Every
/// rejection is an IoError whose message starts with "frame corrupt" (see
/// IsFrameCorrupt) and bumps the `net.frames_corrupt` counter.
Result<FrameHeader> DecodeFrameHeader(std::string_view data,
                                      std::size_t max_payload);

/// Verifies the payload against the header's CRC. Same corruption contract
/// as DecodeFrameHeader.
Status VerifyFramePayload(const FrameHeader& header, std::string_view payload);

/// True when `status` reports a corrupt frame (as opposed to a transport
/// failure) — the caller should close the connection either way, but the
/// distinction feeds the `net.frames_corrupt` accounting and tests.
bool IsFrameCorrupt(const Status& status);

}  // namespace net
}  // namespace veritas

#endif  // VERITAS_NET_FRAME_H_
