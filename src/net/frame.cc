#include "net/frame.h"

#include <cstring>

#include "obs/metrics.h"
#include "util/durable_file.h"
#include "util/strings.h"

namespace veritas {
namespace net {

namespace {

constexpr char kMagic[4] = {'V', 'F', 'R', '1'};
constexpr const char* kCorruptPrefix = "frame corrupt: ";

void PutU32(std::string* out, std::uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

std::uint32_t GetU32(const char* p) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

Status Corrupt(const std::string& why) {
  static Counter* corrupt_counter =
      MetricsRegistry::Global().GetCounter("net.frames_corrupt");
  corrupt_counter->Add(1);
  return Status::IoError(kCorruptPrefix + why);
}

}  // namespace

std::string EncodeFrame(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  out.push_back(static_cast<char>(type));
  out.append(3, '\0');  // Reserved.
  PutU32(&out, static_cast<std::uint32_t>(payload.size()));
  PutU32(&out, Crc32c(payload));
  PutU32(&out, Crc32c(out.data(), 16));
  out.append(payload);
  return out;
}

Result<FrameHeader> DecodeFrameHeader(std::string_view data,
                                      std::size_t max_payload) {
  if (data.size() != kFrameHeaderSize) {
    return Corrupt("header is " + std::to_string(data.size()) +
                   " bytes, expected " + std::to_string(kFrameHeaderSize));
  }
  // The header CRC first: with a corrupted header nothing else in it can be
  // trusted, including the magic (so distinct messages don't leak which
  // field a flipped bit landed in).
  const std::uint32_t want_crc = GetU32(data.data() + 16);
  if (Crc32c(data.data(), 16) != want_crc) {
    return Corrupt("header checksum mismatch");
  }
  if (std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  const std::uint8_t raw_type = static_cast<std::uint8_t>(data[4]);
  if (raw_type != static_cast<std::uint8_t>(FrameType::kRequest) &&
      raw_type != static_cast<std::uint8_t>(FrameType::kResponse)) {
    return Corrupt("unknown frame type " + std::to_string(raw_type));
  }
  if (data[5] != 0 || data[6] != 0 || data[7] != 0) {
    return Corrupt("nonzero reserved bytes");
  }
  FrameHeader header;
  header.type = static_cast<FrameType>(raw_type);
  header.payload_size = GetU32(data.data() + 8);
  header.payload_crc = GetU32(data.data() + 12);
  const std::size_t cap =
      max_payload < kMaxFramePayload ? max_payload : kMaxFramePayload;
  if (header.payload_size > cap) {
    return Corrupt("payload of " + std::to_string(header.payload_size) +
                   " bytes exceeds the " + std::to_string(cap) + " byte cap");
  }
  return header;
}

Status VerifyFramePayload(const FrameHeader& header,
                          std::string_view payload) {
  if (payload.size() != header.payload_size) {
    return Corrupt("payload is " + std::to_string(payload.size()) +
                   " bytes, header promised " +
                   std::to_string(header.payload_size));
  }
  if (Crc32c(payload) != header.payload_crc) {
    return Corrupt("payload checksum mismatch");
  }
  return Status::OK();
}

bool IsFrameCorrupt(const Status& status) {
  return status.code() == StatusCode::kIoError &&
         StartsWith(status.message(), "frame corrupt:");
}

}  // namespace net
}  // namespace veritas
