#include "net/server.h"

#include <sys/socket.h>

#include <utility>

#include "obs/metrics.h"
#include "util/strings.h"
#include "util/timer.h"

namespace veritas {
namespace net {

namespace {

/// The structured view of a terminal SessionReport a client needs to decide
/// completed / typed-error / resubmit. Times travel with fixed precision —
/// they are diagnostics, not inputs to any bit-exactness check.
void FillReportFields(const SessionReport& report, NetResponse* response) {
  response->fields["outcome"] = SessionOutcomeName(report.outcome);
  response->fields["session_code"] = StatusCodeName(report.status.code());
  response->fields["session_message"] = report.status.message();
  response->fields["resumed"] = report.resumed ? "1" : "0";
  response->fields["recovered"] = report.recovered ? "1" : "0";
  response->fields["num_validated"] = std::to_string(report.num_validated);
  response->fields["rounds"] = std::to_string(report.rounds);
  response->fields["queue_wait_seconds"] =
      FormatDouble(report.queue_wait_seconds, 6);
  response->fields["run_seconds"] = FormatDouble(report.run_seconds, 6);
}

}  // namespace

NetServer::NetServer(SessionSupervisor* supervisor, NetServerOptions options)
    : supervisor_(supervisor), options_(std::move(options)) {}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  VERITAS_ASSIGN_OR_RETURN(ListenSocket listener, Listen(options_.address));
  listen_fd_ = listener.fd;
  bound_ = listener.address;
  accept_thread_ = std::thread(&NetServer::AcceptLoop, this);
  started_ = true;
  return Status::OK();
}

void NetServer::RequestDrain() {
  draining_.store(true, std::memory_order_relaxed);
  supervisor_->BeginDrain();
}

void NetServer::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  // Wake the accept thread's poll; it closes the fd itself on exit.
  const int fd = listen_fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<Handler> handlers;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    handlers.swap(handlers_);
  }
  for (Handler& handler : handlers) {
    if (handler.thread.joinable()) handler.thread.join();
  }
  started_ = false;
}

void NetServer::ReapFinished() {
  for (auto it = handlers_.begin(); it != handlers_.end();) {
    if (it->done->load(std::memory_order_acquire)) {
      if (it->thread.joinable()) it->thread.join();
      it = handlers_.erase(it);
    } else {
      ++it;
    }
  }
}

void NetServer::AcceptLoop() {
  auto& reg = MetricsRegistry::Global();
  static Counter* accepted = reg.GetCounter("net.accepted");
  static Counter* shed = reg.GetCounter("net.shed");
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto fd = Accept(listen_fd_.load(std::memory_order_relaxed),
                     Deadline::AfterMillis(options_.idle_poll_ms));
    if (!fd.ok()) {
      if (fd.status().code() == StatusCode::kDeadlineExceeded) continue;
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;  // Transient accept failure; keep serving.
    }
    accepted->Add(1);
    std::lock_guard<std::mutex> lock(conn_mu_);
    ReapFinished();
    // Overload shedding, mirroring the supervisor's bounded queue: within
    // capacity a connection gets a long-lived handler; up to 2x capacity it
    // gets a short-lived handler that answers one request with a typed
    // ResourceExhausted; past that it is closed outright (the client sees
    // Unavailable — still a typed outcome, never a hang).
    const bool over = handlers_.size() >= options_.max_connections;
    if (handlers_.size() >= 2 * options_.max_connections) {
      shed->Add(1);
      CloseFd(*fd);
      continue;
    }
    if (over) shed->Add(1);
    Handler handler;
    handler.done = std::make_shared<std::atomic<bool>>(false);
    auto done = handler.done;
    const int conn_fd = *fd;
    handler.thread = std::thread([this, conn_fd, over, done] {
      if (over) {
        HandleShed(conn_fd);
      } else {
        HandleConnection(conn_fd);
      }
      done->store(true, std::memory_order_release);
    });
    handlers_.push_back(std::move(handler));
  }
  CloseFd(listen_fd_.exchange(-1, std::memory_order_relaxed));
}

void NetServer::HandleShed(int fd) {
  // Read the request so the typed rejection can echo its id (and so closing
  // does not RST-discard the response while the request is still in flight).
  NetResponse response;
  const Deadline deadline = Deadline::AfterMillis(options_.request_timeout_ms);
  auto frame = RecvFrame(fd, deadline, options_.max_payload);
  if (frame.ok() && frame->type == FrameType::kRequest) {
    if (auto request = DecodeNetRequest(frame->payload); request.ok()) {
      response.request_id = request->request_id;
    }
  }
  response.status = Status::ResourceExhausted(
      "server connection limit (" + std::to_string(options_.max_connections) +
      ") reached; request shed");
  SendFrame(fd, FrameType::kResponse, EncodeNetResponse(response), deadline);
  CloseFd(fd);
}

void NetServer::HandleConnection(int fd) {
  auto& reg = MetricsRegistry::Global();
  static Counter* requests = reg.GetCounter("net.requests");
  static Histogram* latency = reg.GetHistogram("net.request_seconds");
  while (!stopping_.load(std::memory_order_relaxed)) {
    // Idle-poll between requests so a shutdown is noticed promptly and a
    // deadline can never fire mid-header (which would desynchronize the
    // stream for a connection that was merely quiet).
    const Status ready =
        WaitReadable(fd, Deadline::AfterMillis(options_.idle_poll_ms));
    if (!ready.ok()) {
      if (ready.code() == StatusCode::kDeadlineExceeded) continue;
      break;
    }
    auto frame = RecvFrame(fd, Deadline::AfterMillis(options_.request_timeout_ms),
                           options_.max_payload);
    // Peer closed, stalled past the budget, or sent garbage (counted in
    // net.frames_corrupt): the stream is unusable either way.
    if (!frame.ok()) break;
    if (frame->type != FrameType::kRequest) break;
    Timer timer;
    NetResponse response;
    if (auto request = DecodeNetRequest(frame->payload); request.ok()) {
      response = Dispatch(*request);
    } else {
      response.status = request.status();
    }
    requests->Add(1);
    latency->Observe(timer.ElapsedSeconds());
    if (!SendFrame(fd, FrameType::kResponse, EncodeNetResponse(response),
                   Deadline::AfterMillis(options_.request_timeout_ms))
             .ok()) {
      break;
    }
  }
  CloseFd(fd);
}

NetResponse NetServer::Dispatch(const NetRequest& request) {
  NetResponse response;
  response.request_id = request.request_id;
  switch (request.type) {
    case RequestType::kHealth: {
      response.fields["running"] =
          std::to_string(supervisor_->running_sessions());
      response.fields["queued"] =
          std::to_string(supervisor_->queued_sessions());
      response.fields["draining"] = draining() ? "1" : "0";
      response.fields["ready"] = draining() ? "0" : "1";
      return response;
    }
    case RequestType::kSubmit: {
      // Idempotency: the request id IS the session id, so a blind re-send
      // after a connection failure lands in one of three safe cases —
      // already active, already terminal (answer from the report log), or
      // genuinely new (admit).
      if (supervisor_->IsActive(request.request_id)) {
        response.fields["state"] = "active";
        response.fields["deduped"] = "1";
        return response;
      }
      SessionReport report;
      if (supervisor_->FindReport(request.request_id, &report)) {
        response.fields["state"] = "done";
        response.fields["deduped"] = "1";
        FillReportFields(report, &response);
        return response;
      }
      const Status admitted = supervisor_->Submit(request.spec);
      if (admitted.ok()) {
        response.fields["state"] = "queued";
        return response;
      }
      // Lost the race against an identical concurrent submit: answer
      // "active" instead of surfacing the duplicate error the supervisor
      // (correctly) raises for non-idempotent callers.
      if (admitted.code() == StatusCode::kInvalidArgument &&
          supervisor_->IsActive(request.request_id)) {
        response.fields["state"] = "active";
        response.fields["deduped"] = "1";
        return response;
      }
      response.status = admitted;  // Typed shed / drain / validation error.
      return response;
    }
    case RequestType::kReport: {
      if (supervisor_->IsActive(request.request_id)) {
        response.fields["state"] = "active";
        return response;
      }
      SessionReport report;
      if (supervisor_->FindReport(request.request_id, &report)) {
        response.fields["state"] = "done";
        FillReportFields(report, &response);
        return response;
      }
      response.fields["state"] = "unknown";
      response.status = Status::NotFound("no active session or report for \"" +
                                         request.request_id + "\"");
      return response;
    }
    case RequestType::kMetrics: {
      response.body = MetricsRegistry::Global().Snapshot().ToJson();
      return response;
    }
    case RequestType::kDrain: {
      RequestDrain();
      response.fields["draining"] = "1";
      return response;
    }
  }
  response.status = Status::Unimplemented("unhandled request type");
  return response;
}

}  // namespace net
}  // namespace veritas
