// Deadline-aware, EINTR/partial-transfer-safe socket I/O for the network
// front end (DESIGN.md §5i). Everything here is built for hostile links:
//
//   * every read/write runs the fd in non-blocking mode behind poll(), so a
//     peer that stalls mid-frame costs exactly the caller's Deadline, never
//     a hung thread;
//   * short reads/writes and EINTR are retried transparently — ReadFull /
//     WriteFull either transfer the whole buffer or return a typed error;
//   * a cleanly closed peer is Status::Unavailable (the retry layer's
//     signal), a expired budget is Status::DeadlineExceeded, everything else
//     is an IoError.
//
// TCP (IPv4) and Unix-domain stream sockets share one NetAddress type, so a
// daemon, client, proxy or test can switch transports with a flag.
#ifndef VERITAS_NET_IO_H_
#define VERITAS_NET_IO_H_

#include <cstddef>
#include <string>

#include "net/frame.h"
#include "util/cancellation.h"
#include "util/result.h"

namespace veritas {
namespace net {

/// "host:port" (IPv4 or "localhost") or "unix:<path>".
struct NetAddress {
  bool unix_domain = false;
  std::string host;  ///< TCP only.
  int port = 0;      ///< TCP only; 0 binds an ephemeral port.
  std::string path;  ///< Unix-domain only.

  std::string ToString() const;
};

/// Parses "unix:/some/path" or "host:port". InvalidArgument on anything
/// else (missing port, non-numeric port, empty host/path).
Result<NetAddress> ParseNetAddress(const std::string& text);

/// A bound, listening socket. `address` echoes the request with the actual
/// port filled in when an ephemeral port (0) was asked for.
struct ListenSocket {
  int fd = -1;
  NetAddress address;
};

/// Binds + listens (SO_REUSEADDR for TCP; a pre-existing socket file is
/// unlinked for Unix-domain). The fd is non-blocking.
Result<ListenSocket> Listen(const NetAddress& address, int backlog = 64);

/// Connects within `deadline`; the returned fd is non-blocking.
Result<int> Connect(const NetAddress& address, const Deadline& deadline);

/// Accepts one connection, waiting at most `deadline` for one to arrive
/// (DeadlineExceeded on expiry — the accept loop's poll tick). The returned
/// fd is non-blocking.
Result<int> Accept(int listen_fd, const Deadline& deadline);

/// Closes `fd`, retrying EINTR; no-op for negative fds.
void CloseFd(int fd);

/// Waits until `fd` has bytes to read (or the peer closed) within
/// `deadline`. Lets a server idle-poll a connection without consuming any
/// bytes: a DeadlineExceeded here leaves the stream synchronized, unlike a
/// deadline that fires mid-RecvFrame.
Status WaitReadable(int fd, const Deadline& deadline);

/// Reads exactly `size` bytes. Unavailable when the peer closes first,
/// DeadlineExceeded when the budget expires mid-transfer.
Status ReadFull(int fd, void* buffer, std::size_t size,
                const Deadline& deadline);

/// Writes exactly `size` bytes (MSG_NOSIGNAL — a dead peer is a returned
/// Unavailable, never a SIGPIPE).
Status WriteFull(int fd, const void* buffer, std::size_t size,
                 const Deadline& deadline);

/// One decoded frame off the wire.
struct Frame {
  FrameType type = FrameType::kRequest;
  std::string payload;
};

/// Writes one whole frame.
Status SendFrame(int fd, FrameType type, std::string_view payload,
                 const Deadline& deadline);

/// Reads and verifies one whole frame. Corruption (CRC/magic/oversize, see
/// net/frame.h) comes back as a "frame corrupt" IoError; the stream is then
/// unsynchronized and the caller must close the connection.
Result<Frame> RecvFrame(int fd, const Deadline& deadline,
                        std::size_t max_payload);

}  // namespace net
}  // namespace veritas

#endif  // VERITAS_NET_IO_H_
