#include "net/client.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/retry.h"
#include "util/timer.h"

namespace veritas {
namespace net {

namespace {

std::string GetField(const NetResponse& response, const std::string& key) {
  const auto it = response.fields.find(key);
  return it == response.fields.end() ? "" : it->second;
}

std::size_t GetSizeField(const NetResponse& response, const std::string& key) {
  return static_cast<std::size_t>(
      std::strtoull(GetField(response, key).c_str(), nullptr, 10));
}

double GetDoubleField(const NetResponse& response, const std::string& key) {
  return std::strtod(GetField(response, key).c_str(), nullptr);
}

/// Builds the terminal result from a "state done" response.
RemoteSessionResult ParseDoneResponse(const NetResponse& response) {
  RemoteSessionResult result;
  result.outcome = GetField(response, "outcome");
  const auto code = ParseStatusCode(GetField(response, "session_code"));
  result.session_status =
      Status(code.ok() ? *code : StatusCode::kInternal,
             GetField(response, "session_message"));
  result.resumed = GetField(response, "resumed") == "1";
  result.recovered = GetField(response, "recovered") == "1";
  result.num_validated = GetSizeField(response, "num_validated");
  result.rounds = GetSizeField(response, "rounds");
  result.queue_wait_seconds = GetDoubleField(response, "queue_wait_seconds");
  result.run_seconds = GetDoubleField(response, "run_seconds");
  return result;
}

}  // namespace

NetClient::NetClient(NetClientOptions options) : options_(std::move(options)) {}

Result<NetResponse> NetClient::CallOnce(const NetRequest& request,
                                        const Deadline& deadline) {
  VERITAS_ASSIGN_OR_RETURN(const int fd, Connect(options_.address, deadline));
  const std::string payload = EncodeNetRequest(request);
  Status st = SendFrame(fd, FrameType::kRequest, payload, deadline);
  if (!st.ok()) {
    CloseFd(fd);
    return st;
  }
  auto frame = RecvFrame(fd, deadline, options_.max_payload);
  CloseFd(fd);
  if (!frame.ok()) return frame.status();
  if (frame->type != FrameType::kResponse) {
    return Status::IoError("expected a response frame, got type " +
                           std::to_string(static_cast<int>(frame->type)));
  }
  VERITAS_ASSIGN_OR_RETURN(NetResponse response,
                           DecodeNetResponse(frame->payload));
  // An empty id marks a connection-level rejection (the shed path could not
  // always attribute a request); anything else must echo ours.
  if (!response.request_id.empty() &&
      response.request_id != request.request_id) {
    return Status::IoError("response for request \"" + response.request_id +
                           "\" does not match sent request \"" +
                           request.request_id + "\"");
  }
  return response;
}

Result<NetResponse> NetClient::Call(const NetRequest& request) {
  auto& reg = MetricsRegistry::Global();
  static Counter* retries = reg.GetCounter("net.retries");
  static Histogram* latency = reg.GetHistogram("net.client_request_seconds");
  RetryPolicy policy;
  policy.max_attempts = options_.max_attempts > 0 ? options_.max_attempts : 1;
  policy.initial_backoff_seconds = options_.initial_backoff_seconds;
  policy.backoff_multiplier = options_.backoff_multiplier;
  policy.session_deadline = options_.overall_deadline;
  // IoError joins the transient set: it covers a corrupt frame (reading a
  // fresh response is safe — requests are idempotent) and mid-transfer
  // connection damage. Reconnecting happens naturally: every attempt dials
  // its own connection.
  policy.retryable_codes = {StatusCode::kUnavailable,
                            StatusCode::kDeadlineExceeded,
                            StatusCode::kIoError};
  RetryStats stats;
  std::size_t attempt = 0;
  auto result = RetryCall<NetResponse>(
      policy,
      [&]() -> Result<NetResponse> {
        ++attempt;
        if (attempt > 1 && options_.sleep_backoff) {
          const double seconds = policy.BackoffSeconds(attempt - 1, nullptr);
          std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
        }
        Timer timer;
        auto one = CallOnce(request,
                            Deadline::AfterMillis(options_.request_timeout_ms));
        latency->Observe(timer.ElapsedSeconds());
        return one;
      },
      /*rng=*/nullptr, &stats);
  if (stats.attempts > 1) retries->Add(stats.attempts - 1);
  return result;
}

Result<NetResponse> NetClient::Health(const std::string& request_id) {
  NetRequest request;
  request.type = RequestType::kHealth;
  request.request_id = request_id;
  return Call(request);
}

Result<NetResponse> NetClient::Submit(const SessionSpec& spec) {
  NetRequest request;
  request.type = RequestType::kSubmit;
  request.request_id = spec.id;
  request.spec = spec;
  return Call(request);
}

Result<NetResponse> NetClient::Report(const std::string& session_id) {
  NetRequest request;
  request.type = RequestType::kReport;
  request.request_id = session_id;
  return Call(request);
}

Result<std::string> NetClient::MetricsJson(const std::string& request_id) {
  NetRequest request;
  request.type = RequestType::kMetrics;
  request.request_id = request_id;
  VERITAS_ASSIGN_OR_RETURN(NetResponse response, Call(request));
  if (!response.status.ok()) return response.status;
  return std::move(response.body);
}

Result<NetResponse> NetClient::DrainServer(const std::string& request_id) {
  NetRequest request;
  request.type = RequestType::kDrain;
  request.request_id = request_id;
  return Call(request);
}

Result<RemoteSessionResult> NetClient::RunRemoteSession(
    const SessionSpec& spec, long poll_interval_ms) {
  RemoteSessionResult result;
  VERITAS_ASSIGN_OR_RETURN(NetResponse response, Submit(spec));
  for (;;) {
    if (!response.status.ok()) {
      // Typed application rejection (shed, drain, validation): terminal for
      // this session, surfaced verbatim so callers can partition outcomes.
      return response.status;
    }
    const std::string state = GetField(response, "state");
    if (state == "done") {
      RemoteSessionResult done = ParseDoneResponse(response);
      done.resubmits = result.resubmits;
      return done;
    }
    // queued / active: poll.
    if (options_.overall_deadline.has_deadline() &&
        options_.overall_deadline.expired()) {
      return Status::DeadlineExceeded("session \"" + spec.id +
                                      "\" did not finish before the client "
                                      "deadline");
    }
    if (poll_interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_interval_ms));
    }
    auto report = Report(spec.id);
    if (!report.ok()) return report.status();
    response = std::move(*report);
    if (response.status.code() == StatusCode::kNotFound) {
      // The daemon restarted between our submit and its report (in-memory
      // log gone, manifest either recovered-and-finished or never written).
      // Re-submitting the identical spec is safe: the id is the idempotency
      // key and a re-run is bit-identical.
      ++result.resubmits;
      VERITAS_ASSIGN_OR_RETURN(response, Submit(spec));
    }
  }
}

}  // namespace net
}  // namespace veritas
