#include "net/protocol.h"

#include <cstdlib>

#include "util/strings.h"

namespace veritas {
namespace net {

namespace {

constexpr const char* kRequestHeader = "veritas-net-request v1";
constexpr const char* kResponseHeader = "veritas-net-response v1";

// Values travel as the remainder of a "key value" line, so embedded
// newlines must be escaped and the empty string needs a marker ("-", the
// manifest convention). A literal leading "-" is escaped to stay
// round-trippable.
std::string EscapeValue(const std::string& value) {
  if (value.empty()) return "-";
  std::string out;
  out.reserve(value.size());
  if (value[0] == '-') out.push_back('\\');
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string UnescapeValue(const std::string& value) {
  if (value == "-") return "";
  std::string out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) {
    if (value[i] != '\\' || i + 1 == value.size()) {
      out.push_back(value[i]);
      continue;
    }
    ++i;
    switch (value[i]) {
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      default:
        out.push_back(value[i]);
    }
  }
  return out;
}

Status Malformed(const std::string& what, const std::string& why) {
  return Status::InvalidArgument("malformed " + what + ": " + why);
}

/// Pulls the next "\n"-terminated line out of `payload` starting at `*pos`.
bool NextLine(std::string_view payload, std::size_t* pos, std::string* line) {
  if (*pos >= payload.size()) return false;
  const std::size_t nl = payload.find('\n', *pos);
  if (nl == std::string_view::npos) {
    line->assign(payload.substr(*pos));
    *pos = payload.size();
  } else {
    line->assign(payload.substr(*pos, nl - *pos));
    *pos = nl + 1;
  }
  return true;
}

bool SplitKeyValue(const std::string& line, std::string* key,
                   std::string* value) {
  const std::size_t space = line.find(' ');
  if (space == std::string::npos || space == 0) return false;
  *key = line.substr(0, space);
  *value = line.substr(space + 1);
  return true;
}

}  // namespace

Result<StatusCode> ParseStatusCode(const std::string& name) {
  static const std::map<std::string, StatusCode> kCodes = {
      {"OK", StatusCode::kOk},
      {"InvalidArgument", StatusCode::kInvalidArgument},
      {"NotFound", StatusCode::kNotFound},
      {"OutOfRange", StatusCode::kOutOfRange},
      {"FailedPrecondition", StatusCode::kFailedPrecondition},
      {"Internal", StatusCode::kInternal},
      {"IoError", StatusCode::kIoError},
      {"Unimplemented", StatusCode::kUnimplemented},
      {"Unavailable", StatusCode::kUnavailable},
      {"DeadlineExceeded", StatusCode::kDeadlineExceeded},
      {"Abstained", StatusCode::kAbstained},
      {"ResourceExhausted", StatusCode::kResourceExhausted},
  };
  const auto it = kCodes.find(name);
  if (it == kCodes.end()) {
    return Status::InvalidArgument("unknown status code name \"" + name +
                                   "\"");
  }
  return it->second;
}

const char* RequestTypeName(RequestType type) {
  switch (type) {
    case RequestType::kHealth:
      return "health";
    case RequestType::kSubmit:
      return "submit";
    case RequestType::kReport:
      return "report";
    case RequestType::kMetrics:
      return "metrics";
    case RequestType::kDrain:
      return "drain";
  }
  return "unknown";
}

namespace {

Result<RequestType> ParseRequestTypeName(const std::string& name) {
  for (RequestType type :
       {RequestType::kHealth, RequestType::kSubmit, RequestType::kReport,
        RequestType::kMetrics, RequestType::kDrain}) {
    if (name == RequestTypeName(type)) return type;
  }
  return Status::InvalidArgument("unknown request type \"" + name + "\"");
}

}  // namespace

std::string EncodeNetRequest(const NetRequest& request) {
  std::string out = kRequestHeader;
  out += "\n";
  out += "type ";
  out += RequestTypeName(request.type);
  out += "\n";
  out += "request_id " + EscapeValue(request.request_id) + "\n";
  if (request.type == RequestType::kSubmit) {
    // The shared spec codec keeps the wire form and the manifest form in
    // lockstep: what the daemon persists is exactly what arrived.
    for (const std::string& line :
         Split(SerializeSessionSpecFields(request.spec), '\n')) {
      if (line.empty()) continue;
      out += "spec." + line + "\n";
    }
  }
  out += "end\n";
  return out;
}

Result<NetRequest> DecodeNetRequest(std::string_view payload) {
  std::size_t pos = 0;
  std::string line;
  if (!NextLine(payload, &pos, &line) || line != kRequestHeader) {
    return Malformed("request", "missing or unsupported header");
  }
  NetRequest request;
  bool saw_type = false;
  bool saw_end = false;
  while (NextLine(payload, &pos, &line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::string key;
    std::string value;
    if (!SplitKeyValue(line, &key, &value)) {
      return Malformed("request", "bad line \"" + line + "\"");
    }
    if (key == "type") {
      VERITAS_ASSIGN_OR_RETURN(request.type, ParseRequestTypeName(value));
      saw_type = true;
    } else if (key == "request_id") {
      request.request_id = UnescapeValue(value);
    } else if (StartsWith(key, "spec.")) {
      VERITAS_RETURN_IF_ERROR(
          ApplySessionSpecField(key.substr(5), value, &request.spec));
    }
    // Unknown top-level keys are skipped for forward compatibility.
  }
  if (!saw_end) return Malformed("request", "truncated (no end marker)");
  if (!saw_type) return Malformed("request", "missing type");
  if (request.request_id.empty()) {
    return Malformed("request", "missing request_id");
  }
  if (request.type == RequestType::kSubmit &&
      request.spec.id != request.request_id) {
    return Malformed("request", "submit request_id \"" + request.request_id +
                                    "\" does not match spec id \"" +
                                    request.spec.id + "\"");
  }
  return request;
}

std::string EncodeNetResponse(const NetResponse& response) {
  std::string out = kResponseHeader;
  out += "\n";
  out += "request_id " + EscapeValue(response.request_id) + "\n";
  out += "code ";
  out += StatusCodeName(response.status.code());
  out += "\n";
  out += "message " + EscapeValue(response.status.message()) + "\n";
  for (const auto& [key, value] : response.fields) {
    out += "field." + key + " " + EscapeValue(value) + "\n";
  }
  if (!response.body.empty()) {
    // Length-prefixed raw blob: the body may contain newlines or "end".
    out += "body " + std::to_string(response.body.size()) + "\n";
    out += response.body;
    out += "\n";
  }
  out += "end\n";
  return out;
}

Result<NetResponse> DecodeNetResponse(std::string_view payload) {
  std::size_t pos = 0;
  std::string line;
  if (!NextLine(payload, &pos, &line) || line != kResponseHeader) {
    return Malformed("response", "missing or unsupported header");
  }
  NetResponse response;
  StatusCode code = StatusCode::kOk;
  std::string message;
  bool saw_end = false;
  while (NextLine(payload, &pos, &line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    std::string key;
    std::string value;
    if (!SplitKeyValue(line, &key, &value)) {
      return Malformed("response", "bad line \"" + line + "\"");
    }
    if (key == "request_id") {
      response.request_id = UnescapeValue(value);
    } else if (key == "code") {
      VERITAS_ASSIGN_OR_RETURN(code, ParseStatusCode(value));
    } else if (key == "message") {
      message = UnescapeValue(value);
    } else if (key == "body") {
      char* end = nullptr;
      const unsigned long size = std::strtoul(value.c_str(), &end, 10);
      if (end == nullptr || *end != '\0') {
        return Malformed("response", "bad body size \"" + value + "\"");
      }
      if (payload.size() - pos < size + 1) {  // +1: trailing newline.
        return Malformed("response", "body promises " + std::to_string(size) +
                                         " bytes, only " +
                                         std::to_string(payload.size() - pos) +
                                         " remain");
      }
      response.body.assign(payload.substr(pos, size));
      pos += size;
      if (payload[pos] != '\n') {
        return Malformed("response", "body missing trailing newline");
      }
      ++pos;
    } else if (StartsWith(key, "field.")) {
      response.fields[key.substr(6)] = UnescapeValue(value);
    }
  }
  if (!saw_end) return Malformed("response", "truncated (no end marker)");
  response.status = Status(code, message);
  return response;
}

}  // namespace net
}  // namespace veritas
