// NetClient: deadline-aware, retrying client for the veritas_serve protocol
// (DESIGN.md §5i). Every Call() is one idempotent request/response round
// trip; transport failures (connection refused, mid-frame peer death, a
// corrupt response frame, an expired per-attempt budget) are retried with
// exponential backoff through util/retry, reconnecting from scratch each
// attempt so a poisoned connection can never wedge the client.
//
// The no-silent-loss contract the chaos drill asserts lives here: a
// submitted session always ends in exactly one of
//   * a terminal report (completed / evicted / cancelled / failed),
//   * a typed error from this client (shed, drain, retries exhausted), or
//   * a durable manifest a restarted daemon recovers;
// RunRemoteSession() re-submits on "unknown" (a daemon restart lost its
// in-memory report log) — safe because sessions are deterministic and
// keyed by their client-assigned id.
#ifndef VERITAS_NET_CLIENT_H_
#define VERITAS_NET_CLIENT_H_

#include <cstddef>
#include <string>

#include "net/io.h"
#include "net/protocol.h"
#include "util/cancellation.h"
#include "util/result.h"

namespace veritas {
namespace net {

struct NetClientOptions {
  NetAddress address;
  /// Budget per attempt (connect + send + receive).
  long request_timeout_ms = 10'000;
  /// Tries per Call(), including the first.
  std::size_t max_attempts = 4;
  double initial_backoff_seconds = 0.02;
  double backoff_multiplier = 2.0;
  /// Really sleep the backoff between attempts (off = virtual-only, for
  /// deterministic tests).
  bool sleep_backoff = true;
  /// Largest accepted response payload.
  std::size_t max_payload = 16u << 20;
  /// Overall wall-clock cap across all attempts of one Call() and across a
  /// whole RunRemoteSession(). Default: none.
  Deadline overall_deadline;
};

/// Terminal view of one remotely run session, assembled from report fields.
struct RemoteSessionResult {
  std::string outcome;  ///< "completed" / "evicted" / "cancelled" / "failed".
  Status session_status;
  bool resumed = false;
  bool recovered = false;
  std::size_t num_validated = 0;
  std::size_t rounds = 0;
  double queue_wait_seconds = 0.0;
  double run_seconds = 0.0;
  /// Times the session was re-submitted after the daemon forgot it (restart
  /// between submit and report).
  std::size_t resubmits = 0;
};

class NetClient {
 public:
  explicit NetClient(NetClientOptions options);

  /// One retried round trip. The response's request id is verified against
  /// the request's. Only *transport* failures are retried; an application
  /// rejection (shed, drain, not-found) arrives untouched inside the
  /// returned NetResponse::status — retrying those is the caller's policy
  /// decision, not the transport's.
  Result<NetResponse> Call(const NetRequest& request);

  /// Convenience wrappers over Call().
  Result<NetResponse> Health(const std::string& request_id = "health");
  Result<NetResponse> Submit(const SessionSpec& spec);
  Result<NetResponse> Report(const std::string& session_id);
  Result<std::string> MetricsJson(const std::string& request_id = "metrics");
  Result<NetResponse> DrainServer(const std::string& request_id = "drain");

  /// Submits `spec` and polls its report until terminal (see file comment
  /// for the resubmit-on-unknown rule). `poll_interval_ms` paces the
  /// polling; the options' overall_deadline bounds the whole wait.
  Result<RemoteSessionResult> RunRemoteSession(const SessionSpec& spec,
                                               long poll_interval_ms = 20);

  const NetClientOptions& options() const { return options_; }

 private:
  /// One unretried attempt: connect, send, receive, match ids.
  Result<NetResponse> CallOnce(const NetRequest& request,
                               const Deadline& deadline);

  const NetClientOptions options_;
};

}  // namespace net
}  // namespace veritas

#endif  // VERITAS_NET_CLIENT_H_
