// Request/response message model for the veritas_serve wire protocol
// (DESIGN.md §5i). One frame (net/frame.h) carries one encoded message;
// this header defines what goes inside the payload.
//
// The encoding is the same line-based "key value" text used by session
// manifests — deliberately: a SessionSpec that crossed the wire is written
// to the admission manifest byte-for-byte via the shared codec in
// serve/session_manifest.h, so a recovery sweep after a daemon crash
// replays exactly what the client submitted.
//
// Idempotency contract: every request carries a client-assigned request id
// (for kSubmit it equals the session id). Submitting the same id twice is
// safe — the daemon answers from the active set or the report log instead
// of admitting a duplicate — which lets the client blindly re-send after
// any connection failure without risking double execution.
#ifndef VERITAS_NET_PROTOCOL_H_
#define VERITAS_NET_PROTOCOL_H_

#include <map>
#include <string>
#include <string_view>

#include "serve/session_manifest.h"
#include "util/result.h"

namespace veritas {
namespace net {

/// What the client is asking the daemon to do.
enum class RequestType {
  kHealth = 0,  ///< Liveness/readiness probe; never sheds.
  kSubmit,      ///< Admit `spec` (idempotent on spec.id).
  kReport,      ///< Poll the terminal report for request_id's session.
  kMetrics,     ///< Full MetricsSnapshot as a JSON body.
  kDrain,       ///< Begin graceful drain (stop dequeuing; see daemon docs).
};

/// Stable wire name ("health", "submit", ...).
const char* RequestTypeName(RequestType type);

/// Inverse of StatusCodeName ("OK", "Unavailable", ...). InvalidArgument
/// for unknown names.
Result<StatusCode> ParseStatusCode(const std::string& name);

struct NetRequest {
  RequestType type = RequestType::kHealth;
  /// Client-assigned idempotency key, echoed back in the response. Must be
  /// non-empty; for kSubmit it must equal spec.id.
  std::string request_id;
  /// kSubmit only.
  SessionSpec spec;
};

struct NetResponse {
  /// Echo of the request id — the client drops replies that do not match
  /// (a stale frame from a previous request on a reused connection).
  std::string request_id;
  /// Overall verdict, transported as code name + message. A shed admission
  /// arrives here as the supervisor's typed ResourceExhausted.
  Status status;
  /// Small structured results ("state", "outcome", "num_validated", ...).
  std::map<std::string, std::string> fields;
  /// Opaque blob (metrics JSON); length-prefixed on the wire so it may
  /// contain anything.
  std::string body;
};

std::string EncodeNetRequest(const NetRequest& request);
/// InvalidArgument on malformed payloads (bad header, unknown type, missing
/// request id, truncation). Unknown "spec.*" keys are skipped, like
/// manifest loading, so old daemons accept new clients' specs.
Result<NetRequest> DecodeNetRequest(std::string_view payload);

std::string EncodeNetResponse(const NetResponse& response);
Result<NetResponse> DecodeNetResponse(std::string_view payload);

}  // namespace net
}  // namespace veritas

#endif  // VERITAS_NET_PROTOCOL_H_
