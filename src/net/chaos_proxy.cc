#include "net/chaos_proxy.h"

#include <poll.h>
#include <sys/socket.h>

#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"

namespace veritas {
namespace net {

namespace {

struct ChaosCounters {
  Counter* connections;
  Counter* forwarded_bytes;
  Counter* drop;
  Counter* delay;
  Counter* corrupt;
  Counter* truncate;
  Counter* half_close;
};

ChaosCounters& Counters() {
  static ChaosCounters counters = [] {
    auto& reg = MetricsRegistry::Global();
    ChaosCounters c;
    c.connections = reg.GetCounter("chaos.connections");
    c.forwarded_bytes = reg.GetCounter("chaos.forwarded_bytes");
    c.drop = reg.GetCounter("chaos.drop");
    c.delay = reg.GetCounter("chaos.delay");
    c.corrupt = reg.GetCounter("chaos.corrupt");
    c.truncate = reg.GetCounter("chaos.truncate");
    c.half_close = reg.GetCounter("chaos.half_close");
    return c;
  }();
  return counters;
}

}  // namespace

ChaosProxy::ChaosProxy(ChaosProxyOptions options)
    : options_(std::move(options)) {}

ChaosProxy::~ChaosProxy() { Stop(); }

Status ChaosProxy::Start() {
  if (started_) return Status::FailedPrecondition("proxy already started");
  VERITAS_ASSIGN_OR_RETURN(ListenSocket listener, Listen(options_.listen));
  listen_fd_ = listener.fd;
  bound_ = listener.address;
  accept_thread_ = std::thread(&ChaosProxy::AcceptLoop, this);
  started_ = true;
  return Status::OK();
}

void ChaosProxy::Stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_relaxed);
  const int fd = listen_fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<Pumper> pumpers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pumpers.swap(pumpers_);
  }
  for (Pumper& pumper : pumpers) {
    if (pumper.thread.joinable()) pumper.thread.join();
  }
  started_ = false;
}

void ChaosProxy::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    auto fd = Accept(listen_fd_.load(std::memory_order_relaxed),
                     Deadline::AfterMillis(options_.idle_poll_ms));
    if (!fd.ok()) {
      if (fd.status().code() == StatusCode::kDeadlineExceeded) continue;
      if (stopping_.load(std::memory_order_relaxed)) break;
      continue;
    }
    auto upstream = Connect(options_.upstream,
                            Deadline::AfterMillis(options_.forward_timeout_ms));
    if (!upstream.ok()) {
      // Upstream down: the client sees its connection die — exactly what a
      // dead daemon looks like without a proxy.
      CloseFd(*fd);
      continue;
    }
    Counters().connections->Add(1);
    std::lock_guard<std::mutex> lock(mu_);
    // Reap finished pumpers so a long drill does not accumulate threads.
    for (auto it = pumpers_.begin(); it != pumpers_.end();) {
      if (it->done->load(std::memory_order_acquire)) {
        if (it->thread.joinable()) it->thread.join();
        it = pumpers_.erase(it);
      } else {
        ++it;
      }
    }
    Pumper pumper;
    pumper.done = std::make_shared<std::atomic<bool>>(false);
    auto done = pumper.done;
    const int client_fd = *fd;
    const int upstream_fd = *upstream;
    const std::uint64_t ordinal = next_ordinal_++;
    pumper.thread = std::thread([this, client_fd, upstream_fd, ordinal, done] {
      Pump(client_fd, upstream_fd, ordinal);
      done->store(true, std::memory_order_release);
    });
    pumpers_.push_back(std::move(pumper));
  }
  CloseFd(listen_fd_.exchange(-1, std::memory_order_relaxed));
}

void ChaosProxy::Pump(int client_fd, int upstream_fd, std::uint64_t ordinal) {
  // One injector per connection, seeded from the connection ordinal: the
  // fault schedule is a pure function of (seed, ordinal, chunk index),
  // independent of how connections interleave across threads.
  FaultInjector injector(options_.seed ^ (0x9e3779b97f4a7c15ull * (ordinal + 1)));
  injector.SetPlan("drop", options_.drop);
  injector.SetPlan("delay", options_.delay);
  injector.SetPlan("corrupt", options_.corrupt);
  injector.SetPlan("truncate", options_.truncate);
  injector.SetPlan("half_close", options_.half_close);
  ChaosCounters& counters = Counters();

  std::vector<char> buffer(options_.chunk_bytes > 0 ? options_.chunk_bytes
                                                    : 4096);
  bool client_open = true;    // client -> upstream direction alive.
  bool upstream_open = true;  // upstream -> client direction alive.
  const auto kill_both = [&] {
    client_open = false;
    upstream_open = false;
  };
  while (!stopping_.load(std::memory_order_relaxed) &&
         (client_open || upstream_open)) {
    struct pollfd fds[2];
    fds[0] = {client_fd, static_cast<short>(client_open ? POLLIN : 0), 0};
    fds[1] = {upstream_fd, static_cast<short>(upstream_open ? POLLIN : 0), 0};
    const int rc = ::poll(fds, 2, static_cast<int>(options_.idle_poll_ms));
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    for (int side = 0; side < 2; ++side) {
      const bool from_client = side == 0;
      bool& open = from_client ? client_open : upstream_open;
      if (!open || (fds[side].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const int src = from_client ? client_fd : upstream_fd;
      const int dst = from_client ? upstream_fd : client_fd;
      const ssize_t n = ::recv(src, buffer.data(), buffer.size(), 0);
      if (n == 0) {
        // Clean EOF: forward the half-close and keep the other direction.
        ::shutdown(dst, SHUT_WR);
        open = false;
        continue;
      }
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        kill_both();
        break;
      }
      std::size_t len = static_cast<std::size_t>(n);
      bool kill_after_forward = false;
      if (injector.ShouldFail("drop")) {
        counters.drop->Add(1);
        kill_both();
        break;
      }
      if (injector.ShouldFail("truncate")) {
        counters.truncate->Add(1);
        len /= 2;  // Forward a prefix, then die mid-frame.
        kill_after_forward = true;
      }
      if (injector.ShouldFail("corrupt")) {
        counters.corrupt->Add(1);
        if (len > 0) buffer[len / 2] ^= 0x01;
      }
      const FaultOutcome delay = injector.Next("delay");
      if (delay.latency_seconds > 0.0) {
        counters.delay->Add(1);
        std::this_thread::sleep_for(
            std::chrono::duration<double>(delay.latency_seconds));
      }
      if (len > 0 &&
          !WriteFull(dst, buffer.data(), len,
                     Deadline::AfterMillis(options_.forward_timeout_ms))
               .ok()) {
        kill_both();
        break;
      }
      counters.forwarded_bytes->Add(len);
      if (kill_after_forward) {
        kill_both();
        break;
      }
      if (injector.ShouldFail("half_close")) {
        counters.half_close->Add(1);
        ::shutdown(dst, SHUT_WR);
        open = false;
      }
    }
  }
  CloseFd(client_fd);
  CloseFd(upstream_fd);
}

}  // namespace net
}  // namespace veritas
