// Consolidation of conflicting worker answers into a claim distribution
// (the "crowdsourcing system" the paper plugs in front of its framework,
// §4.4): majority voting and a Dawid-Skene-style EM estimator that jointly
// infers worker accuracies and item labels (the [34]/[9] line of work the
// paper cites).
#ifndef VERITAS_CROWD_CONSOLIDATION_H_
#define VERITAS_CROWD_CONSOLIDATION_H_

#include <cstddef>
#include <vector>

#include "core/oracle.h"
#include "crowd/worker_pool.h"
#include "model/database.h"

namespace veritas {

/// All answers collected for one item.
struct ItemAnswers {
  ItemId item = kInvalidItem;
  std::size_t num_claims = 0;
  std::vector<WorkerAnswer> answers;
};

/// Majority-vote consolidation: the distribution of worker answers,
/// normalized (the "counting" mechanism of §4.4(3)). Items with no answers
/// yield the uniform distribution.
std::vector<double> ConsolidateByMajority(const ItemAnswers& answers);

/// Options of the EM consolidator.
struct EmConsolidationOptions {
  std::size_t max_iterations = 50;
  double tolerance = 1e-6;
  /// Initial worker accuracy estimate.
  double initial_accuracy = 0.8;
  /// Laplace smoothing added to accuracy estimates so one-answer workers do
  /// not saturate at 0/1.
  double smoothing = 1.0;
};

/// Joint estimate from EM consolidation.
struct EmConsolidation {
  /// Per item (parallel to the input), the posterior label distribution.
  std::vector<std::vector<double>> item_distributions;
  /// Estimated per-worker accuracies.
  std::vector<double> worker_accuracies;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Dawid-Skene-style EM over a batch of items: alternates between
/// (E) posterior label distributions from current worker accuracies, and
/// (M) worker accuracies from current posteriors — the single-confusion-
/// parameter variant that matches this library's accuracy model.
EmConsolidation ConsolidateByEm(const std::vector<ItemAnswers>& items,
                                std::size_t num_workers,
                                const EmConsolidationOptions& options = {});

/// A FeedbackOracle that simulates the full §4.4 crowd pipeline: ask a
/// worker pool, consolidate, and pin the consolidated distribution.
class CrowdOracle : public FeedbackOracle {
 public:
  /// How answers are consolidated.
  enum class Mode { kMajority, kEm };

  /// The pool must outlive the oracle. EM mode consolidates each item
  /// against the accumulated answer history, so worker accuracy estimates
  /// sharpen as the session progresses.
  CrowdOracle(WorkerPool* pool, Mode mode);

  std::string name() const override;

  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override;

  /// Answer history (for tests/diagnostics).
  const std::vector<ItemAnswers>& history() const { return history_; }

 private:
  WorkerPool* pool_;
  Mode mode_;
  std::vector<ItemAnswers> history_;
};

}  // namespace veritas

#endif  // VERITAS_CROWD_CONSOLIDATION_H_
