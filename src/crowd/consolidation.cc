#include "crowd/consolidation.h"

#include <cassert>
#include <cmath>

#include "util/math.h"

namespace veritas {

std::vector<double> ConsolidateByMajority(const ItemAnswers& answers) {
  std::vector<double> counts(answers.num_claims, 0.0);
  for (const WorkerAnswer& a : answers.answers) {
    assert(a.claim < answers.num_claims);
    counts[a.claim] += 1.0;
  }
  return Normalize(counts);
}

EmConsolidation ConsolidateByEm(const std::vector<ItemAnswers>& items,
                                std::size_t num_workers,
                                const EmConsolidationOptions& options) {
  EmConsolidation out;
  out.worker_accuracies.assign(num_workers, options.initial_accuracy);
  out.item_distributions.resize(items.size());

  std::size_t iter = 0;
  while (iter < options.max_iterations) {
    ++iter;
    // E-step: posterior over each item's claims given worker accuracies.
    // P(label = k | answers) proportional to
    //   prod_{answers a} [ a.claim == k ? acc(w) : (1-acc(w))/(C-1) ].
    for (std::size_t idx = 0; idx < items.size(); ++idx) {
      const ItemAnswers& item = items[idx];
      const std::size_t n_claims = std::max<std::size_t>(item.num_claims, 1);
      std::vector<double> log_scores(n_claims, 0.0);
      for (const WorkerAnswer& a : item.answers) {
        const double acc =
            Clamp(out.worker_accuracies[a.worker], 0.01, 0.99);
        const double wrong_share =
            n_claims > 1 ? (1.0 - acc) / static_cast<double>(n_claims - 1)
                         : 1.0;
        for (std::size_t k = 0; k < n_claims; ++k) {
          log_scores[k] += std::log(k == a.claim ? acc : wrong_share);
        }
      }
      out.item_distributions[idx] = SoftmaxFromLogScores(log_scores);
    }
    // M-step: worker accuracy = smoothed expected fraction of answers that
    // agree with the current posterior.
    double max_delta = 0.0;
    std::vector<double> agree(num_workers, 0.0);
    std::vector<double> total(num_workers, 0.0);
    for (std::size_t idx = 0; idx < items.size(); ++idx) {
      const ItemAnswers& item = items[idx];
      for (const WorkerAnswer& a : item.answers) {
        agree[a.worker] += out.item_distributions[idx][a.claim];
        total[a.worker] += 1.0;
      }
    }
    for (std::size_t w = 0; w < num_workers; ++w) {
      const double updated =
          (agree[w] + options.smoothing * options.initial_accuracy) /
          (total[w] + options.smoothing);
      max_delta =
          std::max(max_delta, std::fabs(updated - out.worker_accuracies[w]));
      out.worker_accuracies[w] = updated;
    }
    if (max_delta < options.tolerance) {
      out.converged = true;
      break;
    }
  }
  out.iterations = iter;
  return out;
}

CrowdOracle::CrowdOracle(WorkerPool* pool, Mode mode)
    : pool_(pool), mode_(mode) {
  assert(pool != nullptr);
}

std::string CrowdOracle::name() const {
  return mode_ == Mode::kMajority ? "crowd:majority" : "crowd:em";
}

Result<std::vector<double>> CrowdOracle::Answer(const Database& db,
                                                ItemId item,
                                                const GroundTruth& truth,
                                                Rng* /*rng*/) {
  if (item >= db.num_items()) {
    return Status::OutOfRange("crowd oracle: item id out of range");
  }
  if (!truth.Knows(item)) {
    return Status::FailedPrecondition(
        "crowd oracle: ground truth unknown for item '" + db.item(item).name +
        "'");
  }
  ItemAnswers collected;
  collected.item = item;
  collected.num_claims = db.num_claims(item);
  collected.answers = pool_->Ask(db, item, truth);
  history_.push_back(collected);

  if (mode_ == Mode::kMajority) {
    return ConsolidateByMajority(collected);
  }
  // EM over the full history: worker accuracies learned across items.
  const EmConsolidation em =
      ConsolidateByEm(history_, pool_->num_workers());
  return em.item_distributions.back();
}

}  // namespace veritas
