#include "crowd/worker_pool.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <utility>

#include "util/math.h"

namespace veritas {

WorkerPool::WorkerPool(const WorkerPoolConfig& config)
    : answers_per_item_(config.answers_per_item), rng_(config.seed) {
  assert(config.num_workers > 0);
  accuracies_.resize(config.num_workers);
  for (double& a : accuracies_) {
    a = Clamp(rng_.Normal(config.accuracy_mean, config.accuracy_sd), 0.05,
              0.99);
  }
  answer_counts_.assign(config.num_workers, 0);
}

std::vector<WorkerAnswer> WorkerPool::Ask(const Database& db, ItemId item,
                                          const GroundTruth& truth) {
  assert(truth.Knows(item) && "WorkerPool::Ask requires known truth");
  const std::size_t n_claims = db.num_claims(item);
  const ClaimIndex true_claim = truth.TrueClaim(item);

  // Sample distinct workers (partial Fisher-Yates over worker ids).
  std::vector<WorkerId> ids(num_workers());
  std::iota(ids.begin(), ids.end(), 0);
  const std::size_t take = std::min(answers_per_item_, ids.size());
  std::vector<WorkerAnswer> answers;
  answers.reserve(take);
  for (std::size_t t = 0; t < take; ++t) {
    const std::size_t pick = t + rng_.UniformIndex(ids.size() - t);
    std::swap(ids[t], ids[pick]);
    const WorkerId worker = ids[t];
    if (fault_injector_ != nullptr && fault_injector_->ShouldFail(fault_site_)) {
      ++no_shows_;  // The worker never answers; the slot is simply lost.
      continue;
    }
    ++answer_counts_[worker];
    WorkerAnswer answer;
    answer.worker = worker;
    if (n_claims <= 1 || rng_.Bernoulli(accuracies_[worker])) {
      answer.claim = true_claim;
    } else {
      // Uniform wrong claim.
      ClaimIndex wrong =
          static_cast<ClaimIndex>(rng_.UniformIndex(n_claims - 1));
      if (wrong >= true_claim) ++wrong;
      answer.claim = wrong;
    }
    answers.push_back(answer);
  }
  return answers;
}

void WorkerPool::set_fault_injector(FaultInjector* injector,
                                    std::string site) {
  fault_injector_ = injector;
  fault_site_ = std::move(site);
}

}  // namespace veritas
