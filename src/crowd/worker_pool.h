// Simulated crowd of workers (paper §4.4). The paper assumes "the
// crowdsourcing system processes conflicting answers from workers and
// provides the most accurate label"; this module builds that system:
// a pool of workers with latent accuracies who answer validation requests,
// plus consolidation algorithms (majority vote and Dawid-Skene-style EM)
// that turn raw worker answers into the claim distribution pinned into
// fusion.
#ifndef VERITAS_CROWD_WORKER_POOL_H_
#define VERITAS_CROWD_WORKER_POOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "model/database.h"
#include "model/ground_truth.h"
#include "util/fault_injection.h"
#include "util/rng.h"

namespace veritas {

/// Index of a worker in a WorkerPool.
using WorkerId = std::uint32_t;

/// One worker's answer to "which claim of this item is true?".
struct WorkerAnswer {
  WorkerId worker = 0;
  ClaimIndex claim = kInvalidClaim;
};

/// Configuration of a simulated crowd.
struct WorkerPoolConfig {
  std::size_t num_workers = 20;
  /// Latent worker accuracy ~ N(mean, sd), clamped to [0.05, 0.99].
  double accuracy_mean = 0.8;
  double accuracy_sd = 0.1;
  /// Workers asked per item (sampled without replacement).
  std::size_t answers_per_item = 5;
  std::uint64_t seed = 42;
};

/// A pool of simulated workers with latent accuracies. A worker answers the
/// true claim with probability equal to its accuracy and a uniformly random
/// wrong claim otherwise.
class WorkerPool {
 public:
  explicit WorkerPool(const WorkerPoolConfig& config);

  std::size_t num_workers() const { return accuracies_.size(); }

  /// Latent accuracy of a worker (hidden from consolidation algorithms;
  /// exposed for tests and diagnostics).
  double true_accuracy(WorkerId worker) const { return accuracies_[worker]; }

  /// Collects up to `config.answers_per_item` answers for `item` from
  /// distinct random workers. Requires known ground truth for the item.
  /// Sampled workers may fail to show up when a fault injector is attached
  /// (CrowdFusion-style worker no-shows); fewer answers come back then —
  /// possibly none, which consolidation must tolerate.
  std::vector<WorkerAnswer> Ask(const Database& db, ItemId item,
                                const GroundTruth& truth);

  /// Number of answers each worker has given so far (for §4.4-style
  /// analyses of worker load).
  const std::vector<std::size_t>& answer_counts() const {
    return answer_counts_;
  }

  /// Attaches a fault injector consulted once per sampled worker under
  /// `site`; a triggered fault means that worker never answers (no-show).
  /// Non-owning; pass nullptr to detach.
  void set_fault_injector(FaultInjector* injector,
                          std::string site = "worker");

  /// Sampled worker slots that never answered due to injected no-shows.
  std::size_t num_no_shows() const { return no_shows_; }

 private:
  std::vector<double> accuracies_;
  std::vector<std::size_t> answer_counts_;
  std::size_t answers_per_item_;
  Rng rng_;
  FaultInjector* fault_injector_ = nullptr;
  std::string fault_site_;
  std::size_t no_shows_ = 0;
};

}  // namespace veritas

#endif  // VERITAS_CROWD_WORKER_POOL_H_
