#include "model/item_graph.h"

#include <queue>

namespace veritas {

ItemGraph::ItemGraph(const Database& db) : db_(db) {}

void ItemGraph::CollectNeighbors(ItemId item, std::vector<ItemId>* out) const {
  // Visit stamps deduplicate neighbours without clearing an array per query.
  // The scratch is thread-local (cached per graph) rather than a mutable
  // member: parallel lookahead lanes all query one shared graph, and a
  // shared stamp array would be both a data race and a correctness bug
  // (interleaved stamps drop or duplicate neighbours).
  struct Scratch {
    const ItemGraph* owner = nullptr;
    std::vector<std::uint32_t> stamp;
    std::uint32_t current = 0;
  };
  thread_local Scratch scratch;
  if (scratch.owner != this || scratch.stamp.size() != db_.num_items()) {
    scratch.owner = this;
    scratch.stamp.assign(db_.num_items(), 0);
    scratch.current = 0;
  }
  if (++scratch.current == 0) {  // Stamp wrap: start a fresh epoch.
    scratch.stamp.assign(db_.num_items(), 0);
    scratch.current = 1;
  }
  out->clear();
  scratch.stamp[item] = scratch.current;  // Exclude self.
  for (const ItemVote& iv : db_.item_votes(item)) {
    for (const Vote& vote : db_.source(iv.source).votes) {
      if (scratch.stamp[vote.item] != scratch.current) {
        scratch.stamp[vote.item] = scratch.current;
        out->push_back(vote.item);
      }
    }
  }
}

std::size_t ItemGraph::Degree(ItemId item) const {
  std::vector<ItemId> scratch;
  CollectNeighbors(item, &scratch);
  return scratch.size();
}

double ItemGraph::AverageDegree() const {
  if (db_.num_items() == 0) return 0.0;
  double total = 0.0;
  std::vector<ItemId> scratch;
  for (ItemId i = 0; i < db_.num_items(); ++i) {
    CollectNeighbors(i, &scratch);
    total += static_cast<double>(scratch.size());
  }
  return total / static_cast<double>(db_.num_items());
}

bool ItemGraph::Connected(ItemId a, ItemId b) const {
  if (a == b) return true;
  std::vector<bool> seen(db_.num_items(), false);
  std::queue<ItemId> frontier;
  frontier.push(a);
  seen[a] = true;
  std::vector<ItemId> neighbors;
  while (!frontier.empty()) {
    const ItemId cur = frontier.front();
    frontier.pop();
    CollectNeighbors(cur, &neighbors);
    for (ItemId nb : neighbors) {
      if (nb == b) return true;
      if (!seen[nb]) {
        seen[nb] = true;
        frontier.push(nb);
      }
    }
  }
  return false;
}

std::size_t ItemGraph::NumComponents() const {
  std::vector<bool> seen(db_.num_items(), false);
  std::size_t components = 0;
  std::vector<ItemId> neighbors;
  for (ItemId start = 0; start < db_.num_items(); ++start) {
    if (seen[start]) continue;
    ++components;
    std::queue<ItemId> frontier;
    frontier.push(start);
    seen[start] = true;
    while (!frontier.empty()) {
      const ItemId cur = frontier.front();
      frontier.pop();
      CollectNeighbors(cur, &neighbors);
      for (ItemId nb : neighbors) {
        if (!seen[nb]) {
          seen[nb] = true;
          frontier.push(nb);
        }
      }
    }
  }
  return components;
}

}  // namespace veritas
