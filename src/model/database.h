// The database D = <O, S, Psi, V> of Definition 1: data items, sources,
// claims, and source-to-claim observations. Immutable once built (use
// DatabaseBuilder); all fusion models and feedback strategies read from it.
#ifndef VERITAS_MODEL_DATABASE_H_
#define VERITAS_MODEL_DATABASE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "model/types.h"
#include "util/result.h"

namespace veritas {

/// One claim v_i^k of a data item, together with the sources voting for it.
struct Claim {
  std::string value;
  std::vector<SourceId> sources;  ///< S(v_i^k), sorted ascending.
};

/// One data item o_i with its claim set V_i.
struct Item {
  std::string name;
  std::vector<Claim> claims;
};

/// One source s_j with all its votes (at most one per item).
struct Source {
  std::string name;
  std::vector<Vote> votes;  ///< Sorted by item id.
};

/// Immutable fused view of items, sources and observations.
class Database {
 public:
  std::size_t num_items() const { return items_.size(); }
  std::size_t num_sources() const { return sources_.size(); }
  /// Total number of distinct claims, sum_i |V_i| (the |V| of Def. 3).
  std::size_t num_claims() const { return num_claims_; }
  /// Total number of observations |Psi| (votes).
  std::size_t num_observations() const { return num_observations_; }

  const Item& item(ItemId id) const { return items_[id]; }
  const Source& source(SourceId id) const { return sources_[id]; }
  const std::vector<Item>& items() const { return items_; }
  const std::vector<Source>& sources() const { return sources_; }

  /// Number of claims |V_i| of an item.
  std::size_t num_claims(ItemId id) const { return items_[id].claims.size(); }

  /// All votes cast on an item, i.e. the pairs (source, claim index).
  const std::vector<ItemVote>& item_votes(ItemId id) const {
    return item_votes_[id];
  }

  /// N(s_j): number of items source j votes on.
  std::size_t source_degree(SourceId id) const {
    return sources_[id].votes.size();
  }

  /// True when the item has more than one distinct claim.
  bool HasConflict(ItemId id) const { return items_[id].claims.size() > 1; }

  /// Ids of all items with at least two claims (the validation candidates).
  std::vector<ItemId> ConflictingItems() const;

  /// Looks up an item by name.
  Result<ItemId> FindItem(const std::string& name) const;
  /// Looks up a source by name.
  Result<SourceId> FindSource(const std::string& name) const;
  /// Looks up a claim of an item by its value string.
  Result<ClaimIndex> FindClaim(ItemId item, const std::string& value) const;

  /// The claim (if any) that `source` casts on `item`; kInvalidClaim if the
  /// source does not vote on the item.
  ClaimIndex ClaimOf(SourceId source, ItemId item) const;

 private:
  friend class DatabaseBuilder;
  // StreamingDatabase appends observations in place (keeping every sorted
  // invariant) so readers holding a reference see each ingest batch without
  // a rebuild; see model/streaming_database.h.
  friend class StreamingDatabase;

  std::vector<Item> items_;
  std::vector<Source> sources_;
  std::vector<std::vector<ItemVote>> item_votes_;
  std::unordered_map<std::string, ItemId> item_index_;
  std::unordered_map<std::string, SourceId> source_index_;
  std::size_t num_claims_ = 0;
  std::size_t num_observations_ = 0;
};

}  // namespace veritas

#endif  // VERITAS_MODEL_DATABASE_H_
