#include "model/ground_truth.h"

namespace veritas {

Status GroundTruth::Set(const Database& db, ItemId item, ClaimIndex claim) {
  if (item >= db.num_items()) {
    return Status::OutOfRange("item id out of range");
  }
  if (claim >= db.num_claims(item)) {
    return Status::OutOfRange("claim index out of range for item '" +
                              db.item(item).name + "'");
  }
  if (truth_.size() < db.num_items()) truth_.resize(db.num_items(), kInvalidClaim);
  truth_[item] = claim;
  return Status::OK();
}

Status GroundTruth::SetByValue(const Database& db, const std::string& item,
                               const std::string& value) {
  VERITAS_ASSIGN_OR_RETURN(ItemId item_id, db.FindItem(item));
  VERITAS_ASSIGN_OR_RETURN(ClaimIndex claim, db.FindClaim(item_id, value));
  return Set(db, item_id, claim);
}

std::size_t GroundTruth::num_known() const {
  std::size_t n = 0;
  for (ClaimIndex c : truth_) {
    if (c != kInvalidClaim) ++n;
  }
  return n;
}

std::vector<ItemId> GroundTruth::KnownItems() const {
  std::vector<ItemId> out;
  for (ItemId i = 0; i < truth_.size(); ++i) {
    if (truth_[i] != kInvalidClaim) out.push_back(i);
  }
  return out;
}

}  // namespace veritas
