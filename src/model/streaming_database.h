// Streaming ingestion: a StreamingDatabase owns a Database plus its
// CompiledDatabase view and appends (source, item, value) observations in
// batches without rebuilding either. Each batch
//   * mutates the Database in place (new items/sources/claims on demand,
//     every sorted invariant preserved, last-write-wins revisions),
//   * forwards the structural delta to CompiledDatabase::Append so the flat
//     view grows a tail segment and bumps its epoch,
//   * records which items/sources changed so an incremental fusion engine
//     can seed its frontier from exactly the dirty set.
// Readers holding `db()` / `compiled()` references stay valid across batches
// (ingest only appends or rewrites in place); positional state *derived*
// from the view must pin the epoch it saw (see CompiledDatabase::CheckEpoch).
//
// Single-writer: AppendBatch/CompactIfNeeded must not race with readers.
// The feedback session interleaves ingest ticks with validation rounds on
// one thread; parallel lookahead workers only run between ticks.
#ifndef VERITAS_MODEL_STREAMING_DATABASE_H_
#define VERITAS_MODEL_STREAMING_DATABASE_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "model/compiled_database.h"
#include "model/database.h"
#include "model/types.h"
#include "util/result.h"

namespace veritas {

/// One timestamped observation in a stream.
struct StreamObservation {
  std::string source;
  std::string item;
  std::string value;
  double timestamp = 0.0;
};

/// One ground-truth disclosure in a stream. May reference an item that has
/// not arrived yet — consumers defer it (see FeedbackSession).
struct StreamTruth {
  std::string item;
  std::string value;
  double timestamp = 0.0;
};

/// One ingest batch: observations plus any truth rows disclosed up to the
/// batch horizon. AppendBatch applies only the observations; truths are the
/// caller's to apply (or defer).
struct IngestBatch {
  std::vector<StreamObservation> observations;
  std::vector<StreamTruth> truths;
};

/// Pull interface for a stream of batches. Next() fills `out` and returns
/// true, or returns false when the stream is exhausted (out untouched).
class ObservationFeed {
 public:
  virtual ~ObservationFeed() = default;
  virtual bool Next(IngestBatch* out) = 0;
};

/// Replays pre-sorted vectors of observations/truths as fixed-size batches.
/// Truth rows ride with the first batch whose horizon (last observation
/// timestamp) reaches them; leftovers flush with the final batch.
class VectorFeed : public ObservationFeed {
 public:
  VectorFeed(std::vector<StreamObservation> observations,
             std::vector<StreamTruth> truths, std::size_t batch_size);

  bool Next(IngestBatch* out) override;

 private:
  std::vector<StreamObservation> observations_;
  std::vector<StreamTruth> truths_;  // Sorted by timestamp.
  std::size_t batch_size_;
  std::size_t obs_pos_ = 0;
  std::size_t truth_pos_ = 0;
};

/// Per-batch ingest accounting.
struct IngestStats {
  std::size_t fresh = 0;       ///< Brand-new (source, item) votes.
  std::size_t revisions = 0;   ///< Last-write-wins rewrites of an existing vote.
  std::size_t duplicates = 0;  ///< Re-observations identical to the vote held.
  std::size_t new_items = 0;
  std::size_t new_sources = 0;
  std::size_t new_claims = 0;
};

struct StreamingOptions {
  /// Compact when tail entries (tail votes + tombstones) exceed this
  /// fraction of total observations...
  double compact_tail_fraction = 0.25;
  /// ...but never before the tail has at least this many entries (small
  /// databases would otherwise compact on every batch).
  std::size_t min_tail_before_compact = 256;
};

/// Owner of a Database + CompiledDatabase pair that grows by appends.
class StreamingDatabase {
 public:
  explicit StreamingDatabase(Database db, StreamingOptions options = {});

  const Database& db() const { return db_; }
  const CompiledDatabase& compiled() const { return compiled_; }
  std::uint64_t epoch() const { return compiled_.epoch(); }

  /// Applies one batch of observations (truth rows in the batch are ignored
  /// here — callers apply them). Returns per-batch counts. Fails only on
  /// malformed input (empty source/item names).
  Result<IngestStats> AppendBatch(const IngestBatch& batch);

  /// Folds tail segments into a fresh base when the tail outgrew the policy
  /// in StreamingOptions. Returns true when a compaction ran (epoch bumped,
  /// all derived positional state is stale).
  bool CompactIfNeeded();
  /// Unconditional compaction (testing / shutdown).
  void Compact();

  /// Moves the accumulated dirty sets (sorted, unique) out, clearing them.
  /// Dirty = items/sources whose votes or claim sets changed since the last
  /// TakeDirty; duplicates do not dirty anything.
  void TakeDirty(std::vector<ItemId>* items, std::vector<SourceId>* sources);

  /// Lifetime totals across all batches.
  const IngestStats& totals() const { return totals_; }

  /// Compaction policy. Replacing it takes effect at the next
  /// CompactIfNeeded; sessions apply StreamingSessionConfig::compaction here.
  const StreamingOptions& options() const { return options_; }
  void set_options(StreamingOptions options) { options_ = options; }

 private:
  ItemId InternItem(const std::string& name, IngestStats* stats);
  SourceId InternSource(const std::string& name, IngestStats* stats);

  Database db_;
  CompiledDatabase compiled_;
  StreamingOptions options_;
  IngestStats totals_;
  std::unordered_set<ItemId> dirty_items_;
  std::unordered_set<SourceId> dirty_sources_;
};

}  // namespace veritas

#endif  // VERITAS_MODEL_STREAMING_DATABASE_H_
