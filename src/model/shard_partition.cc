#include "model/shard_partition.h"

#include <algorithm>
#include <numeric>

namespace veritas {

ShardPartition::ShardPartition(const CompiledDatabase& compiled,
                               std::size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  epoch_ = compiled.epoch();
  const std::size_t n = compiled.num_items();

  // Vote count per item, tail-aware (appended votes count toward balance).
  std::vector<std::uint32_t> votes(n, 0);
  const bool flat = compiled.flat();
  for (ItemId i = 0; i < n; ++i) {
    if (flat) {
      votes[i] = compiled.item_votes_end(i) - compiled.item_votes_begin(i);
    } else {
      std::uint32_t count = 0;
      compiled.ForEachItemVote(i, [&](SourceId, ClaimIndex) { ++count; });
      votes[i] = count;
    }
  }

  // LPT greedy: heaviest item first into the lightest shard. Sorting by
  // (votes desc, id asc) and breaking weight ties by lowest shard index makes
  // the whole construction a pure function of the compiled view.
  std::vector<ItemId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](ItemId a, ItemId b) {
    if (votes[a] != votes[b]) return votes[a] > votes[b];
    return a < b;
  });

  shard_of_.assign(n, 0);
  items_.assign(num_shards, {});
  weights_.assign(num_shards, 0);
  for (const ItemId i : order) {
    std::size_t lightest = 0;
    for (std::size_t s = 1; s < num_shards; ++s) {
      if (weights_[s] < weights_[lightest]) lightest = s;
    }
    shard_of_[i] = static_cast<std::uint32_t>(lightest);
    items_[lightest].push_back(i);
    weights_[lightest] += votes[i];
  }
  for (std::vector<ItemId>& shard_items : items_) {
    std::sort(shard_items.begin(), shard_items.end());
  }

  // Conflict (multi-claim) items per shard, ascending. Single-claim items
  // can never re-enter a propagation frontier, so a shard-confined ripple
  // only ever needs this (usually far smaller) list — it is the enrollment
  // fast path of a confined lookahead (fusion/delta_fusion.h ItemScope).
  conflict_items_.assign(num_shards, {});
  for (std::size_t s = 0; s < num_shards; ++s) {
    for (const ItemId i : items_[s]) {
      if (compiled.item_num_claims(i) > 1) conflict_items_[s].push_back(i);
    }
  }
}

}  // namespace veritas
