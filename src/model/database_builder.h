// Incremental construction of a Database from (source, item, value)
// observations.
#ifndef VERITAS_MODEL_DATABASE_BUILDER_H_
#define VERITAS_MODEL_DATABASE_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "model/database.h"
#include "util/result.h"

namespace veritas {

/// Builds a Database one observation at a time.
///
/// Each source holds at most one vote per item (paper §1.2). Re-observations
/// are last-write-wins: repeating the same value is an idempotent duplicate,
/// while a *different* value revises the vote — the old claim loses the
/// source's support and the new claim gains it (streaming sources correct
/// themselves all the time; rejecting the revision froze the database and
/// made append paths impossible). Duplicates and revisions are counted
/// separately from fresh observations so ingestion layers can report them.
class DatabaseBuilder {
 public:
  /// Registers the observation "source claims that item has value".
  /// Names are interned; new items/sources/claims are created on demand.
  /// Never fails on a re-observation: same value = duplicate (no-op),
  /// different value = revision (last write wins).
  Status AddObservation(const std::string& source, const std::string& item,
                        const std::string& value);

  /// Registers an item with no votes yet (rarely needed; items are normally
  /// created by AddObservation).
  ItemId AddItem(const std::string& item);

  /// Registers a source with no votes yet.
  SourceId AddSource(const std::string& source);

  std::size_t num_items() const { return items_.size(); }
  std::size_t num_sources() const { return sources_.size(); }

  /// Observations that replaced an earlier different-valued vote of the same
  /// source on the same item (last-write-wins revisions).
  std::size_t num_revisions() const { return num_revisions_; }
  /// Observations that repeated an existing identical vote verbatim.
  std::size_t num_duplicates() const { return num_duplicates_; }

  /// True when `source` already votes on `item` with a value other than
  /// `value` — i.e. AddObservation(source, item, value) would be a revision.
  /// Unknown sources/items simply yield false.
  bool WouldRevise(const std::string& source, const std::string& item,
                   const std::string& value) const;

  /// Finalizes the database. The builder can keep being used afterwards
  /// (Build copies). Claim source lists and source vote lists are sorted.
  Database Build() const;

 private:
  struct PendingItem {
    std::string name;
    std::vector<std::string> claim_values;
    std::unordered_map<std::string, ClaimIndex> claim_index;
  };
  struct PendingSource {
    std::string name;
    std::unordered_map<ItemId, ClaimIndex> votes;
  };

  ItemId InternItem(const std::string& name);
  SourceId InternSource(const std::string& name);

  std::vector<PendingItem> items_;
  std::vector<PendingSource> sources_;
  std::unordered_map<std::string, ItemId> item_index_;
  std::unordered_map<std::string, SourceId> source_index_;
  std::size_t num_revisions_ = 0;
  std::size_t num_duplicates_ = 0;
};

}  // namespace veritas

#endif  // VERITAS_MODEL_DATABASE_BUILDER_H_
