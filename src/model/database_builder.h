// Incremental construction of a Database from (source, item, value)
// observations.
#ifndef VERITAS_MODEL_DATABASE_BUILDER_H_
#define VERITAS_MODEL_DATABASE_BUILDER_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "model/database.h"
#include "util/result.h"

namespace veritas {

/// Builds a Database one observation at a time.
///
/// Each source may vote at most once per item (paper §1.2); a second vote by
/// the same source on the same item is an error unless it repeats the same
/// value, in which case it is ignored as a duplicate.
class DatabaseBuilder {
 public:
  /// Registers the observation "source claims that item has value".
  /// Names are interned; new items/sources/claims are created on demand.
  Status AddObservation(const std::string& source, const std::string& item,
                        const std::string& value);

  /// Registers an item with no votes yet (rarely needed; items are normally
  /// created by AddObservation).
  ItemId AddItem(const std::string& item);

  /// Registers a source with no votes yet.
  SourceId AddSource(const std::string& source);

  std::size_t num_items() const { return items_.size(); }
  std::size_t num_sources() const { return sources_.size(); }

  /// Finalizes the database. The builder can keep being used afterwards
  /// (Build copies). Claim source lists and source vote lists are sorted.
  Database Build() const;

 private:
  struct PendingItem {
    std::string name;
    std::vector<std::string> claim_values;
    std::unordered_map<std::string, ClaimIndex> claim_index;
  };
  struct PendingSource {
    std::string name;
    std::unordered_map<ItemId, ClaimIndex> votes;
  };

  ItemId InternItem(const std::string& name);
  SourceId InternSource(const std::string& name);

  std::vector<PendingItem> items_;
  std::vector<PendingSource> sources_;
  std::unordered_map<std::string, ItemId> item_index_;
  std::unordered_map<std::string, SourceId> source_index_;
};

}  // namespace veritas

#endif  // VERITAS_MODEL_DATABASE_BUILDER_H_
