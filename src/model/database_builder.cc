#include "model/database_builder.h"

#include <algorithm>

namespace veritas {

ItemId DatabaseBuilder::InternItem(const std::string& name) {
  auto it = item_index_.find(name);
  if (it != item_index_.end()) return it->second;
  const ItemId id = static_cast<ItemId>(items_.size());
  items_.push_back(PendingItem{name, {}, {}});
  item_index_.emplace(name, id);
  return id;
}

SourceId DatabaseBuilder::InternSource(const std::string& name) {
  auto it = source_index_.find(name);
  if (it != source_index_.end()) return it->second;
  const SourceId id = static_cast<SourceId>(sources_.size());
  sources_.push_back(PendingSource{name, {}});
  source_index_.emplace(name, id);
  return id;
}

ItemId DatabaseBuilder::AddItem(const std::string& item) {
  return InternItem(item);
}

SourceId DatabaseBuilder::AddSource(const std::string& source) {
  return InternSource(source);
}

Status DatabaseBuilder::AddObservation(const std::string& source,
                                       const std::string& item,
                                       const std::string& value) {
  const ItemId item_id = InternItem(item);
  const SourceId source_id = InternSource(source);

  PendingItem& pi = items_[item_id];
  ClaimIndex claim;
  auto cit = pi.claim_index.find(value);
  if (cit != pi.claim_index.end()) {
    claim = cit->second;
  } else {
    claim = static_cast<ClaimIndex>(pi.claim_values.size());
    pi.claim_values.push_back(value);
    pi.claim_index.emplace(value, claim);
  }

  PendingSource& ps = sources_[source_id];
  auto vit = ps.votes.find(item_id);
  if (vit != ps.votes.end()) {
    if (vit->second == claim) {
      ++num_duplicates_;  // Idempotent duplicate.
      return Status::OK();
    }
    // Last write wins: the source revised its value. The old claim loses
    // this source's support at Build() time (votes are the single source of
    // truth there); the new claim gains it. The claim value itself stays
    // registered even if no vote backs it any more.
    vit->second = claim;
    ++num_revisions_;
    return Status::OK();
  }
  ps.votes.emplace(item_id, claim);
  return Status::OK();
}

bool DatabaseBuilder::WouldRevise(const std::string& source,
                                  const std::string& item,
                                  const std::string& value) const {
  const auto sit = source_index_.find(source);
  if (sit == source_index_.end()) return false;
  const auto iit = item_index_.find(item);
  if (iit == item_index_.end()) return false;
  const auto vit = sources_[sit->second].votes.find(iit->second);
  if (vit == sources_[sit->second].votes.end()) return false;
  const auto cit = items_[iit->second].claim_index.find(value);
  // A not-yet-interned value is necessarily different from the current vote.
  return cit == items_[iit->second].claim_index.end() ||
         cit->second != vit->second;
}

Database DatabaseBuilder::Build() const {
  Database db;
  db.items_.resize(items_.size());
  db.sources_.resize(sources_.size());
  db.item_votes_.resize(items_.size());
  db.item_index_ = item_index_;
  db.source_index_ = source_index_;

  for (ItemId i = 0; i < items_.size(); ++i) {
    const PendingItem& pi = items_[i];
    Item& out = db.items_[i];
    out.name = pi.name;
    out.claims.resize(pi.claim_values.size());
    for (ClaimIndex k = 0; k < pi.claim_values.size(); ++k) {
      out.claims[k].value = pi.claim_values[k];
    }
    db.num_claims_ += pi.claim_values.size();
  }

  for (SourceId j = 0; j < sources_.size(); ++j) {
    const PendingSource& ps = sources_[j];
    Source& out = db.sources_[j];
    out.name = ps.name;
    out.votes.reserve(ps.votes.size());
    for (const auto& [item_id, claim] : ps.votes) {
      out.votes.push_back(Vote{item_id, claim});
      db.items_[item_id].claims[claim].sources.push_back(j);
      db.item_votes_[item_id].push_back(ItemVote{j, claim});
      ++db.num_observations_;
    }
    std::sort(out.votes.begin(), out.votes.end(),
              [](const Vote& a, const Vote& b) { return a.item < b.item; });
  }

  for (Item& item : db.items_) {
    for (Claim& claim : item.claims) {
      std::sort(claim.sources.begin(), claim.sources.end());
    }
  }
  for (auto& votes : db.item_votes_) {
    std::sort(votes.begin(), votes.end(),
              [](const ItemVote& a, const ItemVote& b) {
                return a.source < b.source;
              });
  }
  return db;
}

}  // namespace veritas
