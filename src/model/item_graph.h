// The graph of data items (paper Figure 2): two items are adjacent when at
// least one source votes on both. Approx-MEU propagates validation impact to
// one-hop neighbours in this graph (Theorem 4.1 justifies the truncation).
//
// Neighbour lists are computed on demand: for dense data (few sources, many
// items) materializing all adjacency lists would be quadratic in the number
// of items.
#ifndef VERITAS_MODEL_ITEM_GRAPH_H_
#define VERITAS_MODEL_ITEM_GRAPH_H_

#include <cstdint>
#include <vector>

#include "model/database.h"
#include "model/types.h"

namespace veritas {

/// On-demand one-hop neighbourhood queries over the item graph.
class ItemGraph {
 public:
  explicit ItemGraph(const Database& db);

  /// Fills `out` with the distinct items (excluding `item` itself) that share
  /// at least one source with `item`. Order is unspecified. Thread-safe: the
  /// dedup scratch is thread-local, so concurrent lookahead lanes may query
  /// one shared graph without synchronizing.
  void CollectNeighbors(ItemId item, std::vector<ItemId>* out) const;

  /// Number of one-hop neighbours of `item`.
  std::size_t Degree(ItemId item) const;

  /// Average one-hop degree over all items (exact; iterates every item).
  double AverageDegree() const;

  /// True when a path of alternating sources/items connects a and b.
  /// (BFS over the item graph; used by diagnostics and tests.)
  bool Connected(ItemId a, ItemId b) const;

  /// Number of connected components of the item graph.
  std::size_t NumComponents() const;

  const Database& db() const { return db_; }

 private:
  const Database& db_;
};

}  // namespace veritas

#endif  // VERITAS_MODEL_ITEM_GRAPH_H_
