#include "model/compiled_database.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace veritas {

namespace {

double LogFalseValues(std::size_t num_claims) {
  return num_claims > 1 ? std::log(static_cast<double>(num_claims) - 1.0)
                        : 0.0;
}

}  // namespace

CompiledDatabase::CompiledDatabase(const Database& db) { BuildBase(db); }

void CompiledDatabase::BuildBase(const Database& db) {
  num_items_ = db.num_items();
  num_sources_ = db.num_sources();
  num_claims_ = db.num_claims();
  num_observations_ = db.num_observations();

  claim_offsets_.clear();
  log_false_values_.clear();
  claim_source_offsets_.clear();
  claim_sources_.clear();
  item_vote_offsets_.clear();
  item_vote_sources_.clear();
  item_vote_claims_.clear();
  source_vote_offsets_.clear();
  source_vote_items_.clear();
  source_vote_claims_.clear();

  claim_offsets_.reserve(num_items_ + 1);
  log_false_values_.reserve(num_items_);
  claim_source_offsets_.reserve(num_claims_ + 1);
  claim_sources_.reserve(num_observations_);
  item_vote_offsets_.reserve(num_items_ + 1);
  item_vote_sources_.reserve(num_observations_);
  item_vote_claims_.reserve(num_observations_);

  claim_offsets_.push_back(0);
  claim_source_offsets_.push_back(0);
  item_vote_offsets_.push_back(0);
  for (ItemId i = 0; i < num_items_; ++i) {
    const Item& o = db.item(i);
    claim_offsets_.push_back(claim_offsets_.back() +
                             static_cast<std::uint32_t>(o.claims.size()));
    log_false_values_.push_back(LogFalseValues(o.claims.size()));
    for (const Claim& c : o.claims) {
      claim_sources_.insert(claim_sources_.end(), c.sources.begin(),
                            c.sources.end());
      claim_source_offsets_.push_back(
          static_cast<std::uint32_t>(claim_sources_.size()));
    }
    for (const ItemVote& iv : db.item_votes(i)) {
      item_vote_sources_.push_back(iv.source);
      item_vote_claims_.push_back(iv.claim);
    }
    item_vote_offsets_.push_back(
        static_cast<std::uint32_t>(item_vote_sources_.size()));
  }

  source_vote_offsets_.reserve(num_sources_ + 1);
  source_vote_items_.reserve(num_observations_);
  source_vote_claims_.reserve(num_observations_);
  source_vote_offsets_.push_back(0);
  for (SourceId j = 0; j < num_sources_; ++j) {
    for (const Vote& v : db.source(j).votes) {
      source_vote_items_.push_back(v.item);
      source_vote_claims_.push_back(claim_offsets_[v.item] + v.claim);
    }
    source_vote_offsets_.push_back(
        static_cast<std::uint32_t>(source_vote_items_.size()));
  }

  base_items_ = num_items_;
  base_sources_ = num_sources_;
  base_claims_ = num_claims_;
  tail_observations_ = 0;
  tombstones_ = 0;
  tail_item_claims_.clear();
  tail_claim_sources_.clear();
  claim_source_dead_.clear();
  removed_claim_sources_.clear();
  tail_item_votes_.clear();
  tail_source_votes_.clear();
}

Status CompiledDatabase::CheckEpoch(std::uint64_t expected) const {
  if (expected == epoch_) return Status::OK();
  return Status::FailedPrecondition(
      "stale compiled-database view: expected epoch " +
      std::to_string(expected) + " but view is at epoch " +
      std::to_string(epoch_));
}

void CompiledDatabase::Append(const Database& db, const CompiledDelta& delta) {
  // 1. Extend the offset arrays so every live id stays indexable; entities
  //    appended since the last compaction get empty base ranges.
  assert(db.num_items() >= num_items_ && db.num_sources() >= num_sources_);
  while (num_items_ < db.num_items()) {
    claim_offsets_.push_back(claim_offsets_.back());
    log_false_values_.push_back(0.0);
    item_vote_offsets_.push_back(item_vote_offsets_.back());
    ++num_items_;
  }
  while (num_sources_ < db.num_sources()) {
    source_vote_offsets_.push_back(source_vote_offsets_.back());
    ++num_sources_;
  }

  // 2. Assign global ids to new claims, consecutively past the current top,
  //    so claim_source_offsets_ stays a valid (empty-range) index for them.
  for (const CompiledDelta::NewClaim& nc : delta.new_claims) {
    assert(nc.item < num_items_);
    const std::uint32_t g = static_cast<std::uint32_t>(num_claims_);
    tail_item_claims_[nc.item].push_back(g);
    claim_source_offsets_.push_back(claim_source_offsets_.back());
    ++num_claims_;
    log_false_values_[nc.item] = LogFalseValues(item_num_claims(nc.item));
  }

  // 3. Apply vote operations.
  for (const CompiledDelta::VoteOp& op : delta.votes) {
    assert(op.item < num_items_ && op.source < num_sources_);
    const std::uint32_t g_new = global_claim_id(op.item, op.new_claim);
    if (op.old_claim == kInvalidClaim) {
      // Fresh vote: pure tail insertion in all three indexes.
      tail_claim_sources_[g_new].push_back(op.source);
      tail_item_votes_[op.item].emplace_back(op.source, op.new_claim);
      tail_source_votes_[op.source].emplace_back(op.item, g_new);
      ++tail_observations_;
      ++num_observations_;
      continue;
    }

    // Revision: the vote's CSR slots survive (only the claim changes), so
    // rewrite item/source entries in place wherever they live, and move the
    // claim->sources support from old to new.
    const std::uint32_t g_old = global_claim_id(op.item, op.old_claim);

    // claim -> sources: drop support for the old claim...
    bool removed = false;
    const auto tcs = tail_claim_sources_.find(g_old);
    if (tcs != tail_claim_sources_.end()) {
      auto& sources = tcs->second;
      const auto pos = std::find(sources.begin(), sources.end(), op.source);
      if (pos != sources.end()) {
        sources.erase(pos);
        --tail_observations_;
        removed = true;
      }
    }
    if (!removed) {
      if (claim_source_dead_.empty()) {
        claim_source_dead_.assign(claim_sources_.size(), 0);
      }
      for (std::uint32_t v = claim_source_offsets_[g_old];
           v < claim_source_offsets_[g_old + 1]; ++v) {
        if (claim_sources_[v] == op.source && !claim_source_dead_[v]) {
          claim_source_dead_[v] = 1;
          ++removed_claim_sources_[g_old];
          ++tombstones_;
          removed = true;
          break;
        }
      }
    }
    assert(removed);
    // ...and add it to the new claim (tail entry either way).
    tail_claim_sources_[g_new].push_back(op.source);
    if (removed) ++tail_observations_;

    // item -> votes: rewrite the local claim index in place.
    bool rewritten = false;
    for (std::uint32_t v = item_vote_offsets_[op.item];
         v < item_vote_offsets_[op.item + 1]; ++v) {
      if (item_vote_sources_[v] == op.source) {
        item_vote_claims_[v] = op.new_claim;
        rewritten = true;
        break;
      }
    }
    if (!rewritten) {
      for (auto& [source, claim] : tail_item_votes_[op.item]) {
        if (source == op.source) {
          claim = op.new_claim;
          rewritten = true;
          break;
        }
      }
    }
    assert(rewritten);

    // source -> votes: rewrite the global claim id in place.
    rewritten = false;
    for (std::uint32_t v = source_vote_offsets_[op.source];
         v < source_vote_offsets_[op.source + 1]; ++v) {
      if (source_vote_items_[v] == op.item) {
        source_vote_claims_[v] = g_new;
        rewritten = true;
        break;
      }
    }
    if (!rewritten) {
      for (auto& [item, g] : tail_source_votes_[op.source]) {
        if (item == op.item) {
          g = g_new;
          rewritten = true;
          break;
        }
      }
    }
    assert(rewritten);
  }

  assert(num_items_ == db.num_items() && num_sources_ == db.num_sources() &&
         num_claims_ == db.num_claims() &&
         num_observations_ == db.num_observations());
  ++epoch_;
}

void CompiledDatabase::Compact(const Database& db) {
  BuildBase(db);
  ++compactions_;
  ++epoch_;  // Tail addresses (and base global-id layout) changed.
}

}  // namespace veritas
