#include "model/compiled_database.h"

#include <cmath>

namespace veritas {

CompiledDatabase::CompiledDatabase(const Database& db)
    : num_items_(db.num_items()),
      num_sources_(db.num_sources()),
      num_claims_(db.num_claims()),
      num_observations_(db.num_observations()) {
  claim_offsets_.reserve(num_items_ + 1);
  log_false_values_.reserve(num_items_);
  claim_source_offsets_.reserve(num_claims_ + 1);
  claim_sources_.reserve(num_observations_);
  item_vote_offsets_.reserve(num_items_ + 1);
  item_vote_sources_.reserve(num_observations_);
  item_vote_claims_.reserve(num_observations_);

  claim_offsets_.push_back(0);
  claim_source_offsets_.push_back(0);
  item_vote_offsets_.push_back(0);
  for (ItemId i = 0; i < num_items_; ++i) {
    const Item& o = db.item(i);
    claim_offsets_.push_back(claim_offsets_.back() +
                             static_cast<std::uint32_t>(o.claims.size()));
    log_false_values_.push_back(
        o.claims.size() > 1
            ? std::log(static_cast<double>(o.claims.size()) - 1.0)
            : 0.0);
    for (const Claim& c : o.claims) {
      claim_sources_.insert(claim_sources_.end(), c.sources.begin(),
                            c.sources.end());
      claim_source_offsets_.push_back(
          static_cast<std::uint32_t>(claim_sources_.size()));
    }
    for (const ItemVote& iv : db.item_votes(i)) {
      item_vote_sources_.push_back(iv.source);
      item_vote_claims_.push_back(iv.claim);
    }
    item_vote_offsets_.push_back(
        static_cast<std::uint32_t>(item_vote_sources_.size()));
  }

  source_vote_offsets_.reserve(num_sources_ + 1);
  source_vote_items_.reserve(num_observations_);
  source_vote_claims_.reserve(num_observations_);
  source_vote_offsets_.push_back(0);
  for (SourceId j = 0; j < num_sources_; ++j) {
    for (const Vote& v : db.source(j).votes) {
      source_vote_items_.push_back(v.item);
      source_vote_claims_.push_back(claim_offsets_[v.item] + v.claim);
    }
    source_vote_offsets_.push_back(
        static_cast<std::uint32_t>(source_vote_items_.size()));
  }
}

}  // namespace veritas
