#include "model/database.h"

#include <algorithm>

namespace veritas {

std::vector<ItemId> Database::ConflictingItems() const {
  std::vector<ItemId> out;
  for (ItemId i = 0; i < items_.size(); ++i) {
    if (HasConflict(i)) out.push_back(i);
  }
  return out;
}

Result<ItemId> Database::FindItem(const std::string& name) const {
  auto it = item_index_.find(name);
  if (it == item_index_.end()) {
    return Status::NotFound("item not found: " + name);
  }
  return it->second;
}

Result<SourceId> Database::FindSource(const std::string& name) const {
  auto it = source_index_.find(name);
  if (it == source_index_.end()) {
    return Status::NotFound("source not found: " + name);
  }
  return it->second;
}

Result<ClaimIndex> Database::FindClaim(ItemId item,
                                       const std::string& value) const {
  const Item& o = items_[item];
  for (ClaimIndex k = 0; k < o.claims.size(); ++k) {
    if (o.claims[k].value == value) return k;
  }
  return Status::NotFound("claim not found on item '" + o.name +
                          "': " + value);
}

ClaimIndex Database::ClaimOf(SourceId source, ItemId item) const {
  const std::vector<Vote>& votes = sources_[source].votes;
  auto it = std::lower_bound(
      votes.begin(), votes.end(), item,
      [](const Vote& v, ItemId target) { return v.item < target; });
  if (it != votes.end() && it->item == item) return it->claim;
  return kInvalidClaim;
}

}  // namespace veritas
