// CompiledDatabase: a flat CSR (compressed sparse row) view of a Database,
// built once and shared by all fusion inner loops. The nested
// vector<vector> layout of Database is convenient for construction and
// random access, but iterating it chases one heap pointer per item/claim/
// source list; fusion models and the DeltaFusion engine instead stream over
// the contiguous arrays here.
//
// Three parallel CSR indexes over the same observation set:
//   * claim -> sources:  which sources vote for claim g (global claim id),
//   * item  -> votes:    (source, claim) pairs cast on item i,
//   * source -> votes:   (item, claim) pairs cast by source j.
// Claims are addressed by a global claim id g = claim_offset(i) + k, so a
// probability table indexed by g is a single flat array.
#ifndef VERITAS_MODEL_COMPILED_DATABASE_H_
#define VERITAS_MODEL_COMPILED_DATABASE_H_

#include <cstdint>
#include <vector>

#include "model/database.h"
#include "model/types.h"

namespace veritas {

/// Immutable flat-array view of a Database. The Database must outlive it
/// only for construction; the view owns all its arrays.
class CompiledDatabase {
 public:
  explicit CompiledDatabase(const Database& db);

  std::size_t num_items() const { return num_items_; }
  std::size_t num_sources() const { return num_sources_; }
  std::size_t num_claims() const { return num_claims_; }
  std::size_t num_observations() const { return num_observations_; }

  /// Global claim id of claim k of item i.
  std::uint32_t claim_offset(ItemId i) const { return claim_offsets_[i]; }
  std::size_t item_num_claims(ItemId i) const {
    return claim_offsets_[i + 1] - claim_offsets_[i];
  }
  /// ln(|V_i| - 1) — the false-value factor of Accu's Eq. (1); 0 for
  /// single-claim items (never used there).
  double log_false_values(ItemId i) const { return log_false_values_[i]; }

  /// Sources voting for global claim g: [claim_sources_begin(g),
  /// claim_sources_end(g)) into claim_sources().
  std::uint32_t claim_sources_begin(std::uint32_t g) const {
    return claim_source_offsets_[g];
  }
  std::uint32_t claim_sources_end(std::uint32_t g) const {
    return claim_source_offsets_[g + 1];
  }
  const std::vector<SourceId>& claim_sources() const { return claim_sources_; }

  /// Votes on item i: [item_votes_begin(i), item_votes_end(i)) into the
  /// parallel arrays item_vote_sources() / item_vote_claims() (claim indices
  /// are local to the item).
  std::uint32_t item_votes_begin(ItemId i) const { return item_vote_offsets_[i]; }
  std::uint32_t item_votes_end(ItemId i) const {
    return item_vote_offsets_[i + 1];
  }
  const std::vector<SourceId>& item_vote_sources() const {
    return item_vote_sources_;
  }
  const std::vector<ClaimIndex>& item_vote_claims() const {
    return item_vote_claims_;
  }

  /// Votes by source j: [source_votes_begin(j), source_votes_end(j)) into the
  /// parallel arrays source_vote_items() / source_vote_claims(). The claim
  /// entries are *global* claim ids, so a flat probability table can be
  /// indexed directly.
  std::uint32_t source_votes_begin(SourceId j) const {
    return source_vote_offsets_[j];
  }
  std::uint32_t source_votes_end(SourceId j) const {
    return source_vote_offsets_[j + 1];
  }
  const std::vector<ItemId>& source_vote_items() const {
    return source_vote_items_;
  }
  const std::vector<std::uint32_t>& source_vote_claims() const {
    return source_vote_claims_;
  }

  /// N(s_j): number of items source j votes on.
  std::size_t source_degree(SourceId j) const {
    return source_vote_offsets_[j + 1] - source_vote_offsets_[j];
  }

 private:
  std::size_t num_items_ = 0;
  std::size_t num_sources_ = 0;
  std::size_t num_claims_ = 0;
  std::size_t num_observations_ = 0;

  std::vector<std::uint32_t> claim_offsets_;         // num_items + 1
  std::vector<double> log_false_values_;             // num_items
  std::vector<std::uint32_t> claim_source_offsets_;  // num_claims + 1
  std::vector<SourceId> claim_sources_;              // num_observations
  std::vector<std::uint32_t> item_vote_offsets_;     // num_items + 1
  std::vector<SourceId> item_vote_sources_;          // num_observations
  std::vector<ClaimIndex> item_vote_claims_;         // num_observations
  std::vector<std::uint32_t> source_vote_offsets_;   // num_sources + 1
  std::vector<ItemId> source_vote_items_;            // num_observations
  std::vector<std::uint32_t> source_vote_claims_;    // num_observations
};

}  // namespace veritas

#endif  // VERITAS_MODEL_COMPILED_DATABASE_H_
