// CompiledDatabase: a flat CSR (compressed sparse row) view of a Database,
// built once and shared by all fusion inner loops. The nested
// vector<vector> layout of Database is convenient for construction and
// random access, but iterating it chases one heap pointer per item/claim/
// source list; fusion models and the DeltaFusion engine instead stream over
// the contiguous arrays here.
//
// Three parallel CSR indexes over the same observation set:
//   * claim -> sources:  which sources vote for claim g (global claim id),
//   * item  -> votes:    (source, claim) pairs cast on item i,
//   * source -> votes:   (item, claim) pairs cast by source j.
// Claims are addressed by a global claim id g = claim_offset(i) + k, so a
// probability table indexed by g is a single flat array.
//
// Streaming appends (LSM-style): the base CSR arrays above stay immutable
// between compactions; each Append() batch lands in small per-entity tail
// segments layered behind the same logical view —
//   * new claims get global ids past the base range (per-item tail lists
//     keep the local-index -> global-id mapping),
//   * new votes go to per-claim / per-item / per-source tail lists,
//   * a revision (source changes its value on an item) rewrites the vote's
//     claim in place in the item/source indexes (the CSR slot survives, only
//     the claim changes) and tombstones the old claim->sources entry.
// Readers iterate base + tail through the ForEach* helpers; a flat view
// (no appends since the last compaction) degenerates to the tight base
// loops. Every Append bumps the epoch; readers that flattened the view
// (DeltaFusionEngine base states) pin the epoch they saw and fail loudly on
// mismatch instead of reading a half-visible tail. Compact() folds the tails
// back into a fresh base (also bumping the epoch, since tail addresses die).
#ifndef VERITAS_MODEL_COMPILED_DATABASE_H_
#define VERITAS_MODEL_COMPILED_DATABASE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "model/database.h"
#include "model/types.h"
#include "util/status.h"

namespace veritas {

/// One batch of structural changes for CompiledDatabase::Append. Produced by
/// StreamingDatabase::AppendBatch *after* the same operations were applied
/// to the underlying Database (new item/source/claim counts are read off the
/// Database directly).
struct CompiledDelta {
  /// Claims created this batch, in global-id assignment order (which is also
  /// per-item local-index order).
  struct NewClaim {
    ItemId item = kInvalidItem;
  };
  /// One vote operation. `old_claim == kInvalidClaim` means a fresh vote;
  /// otherwise the source revised its vote from `old_claim` to `new_claim`
  /// (both local indices of `item`).
  struct VoteOp {
    SourceId source = kInvalidSource;
    ItemId item = kInvalidItem;
    ClaimIndex old_claim = kInvalidClaim;
    ClaimIndex new_claim = kInvalidClaim;
  };
  std::vector<NewClaim> new_claims;
  std::vector<VoteOp> votes;
};

/// Flat-array view of a Database with append tails. The Database must
/// outlive it only for construction/Append/Compact calls; the view owns all
/// its arrays.
class CompiledDatabase {
 public:
  explicit CompiledDatabase(const Database& db);

  std::size_t num_items() const { return num_items_; }
  std::size_t num_sources() const { return num_sources_; }
  std::size_t num_claims() const { return num_claims_; }
  std::size_t num_observations() const { return num_observations_; }

  // ---------------------------------------------------------------------
  // Epoch / segment lifecycle.

  /// Monotonic view generation: bumped by every Append and every Compact.
  std::uint64_t epoch() const { return epoch_; }
  /// OK when the view still is at `expected`; FailedPrecondition otherwise.
  /// Readers that flattened the view at some epoch call this before touching
  /// positional state derived from it (see DeltaFusionEngine::BaseState).
  Status CheckEpoch(std::uint64_t expected) const;

  /// Appends one batch. `db` must already contain the batch (Append only
  /// reads per-entity metadata from it); `delta` lists the structural
  /// operations in application order. Bumps the epoch.
  void Append(const Database& db, const CompiledDelta& delta);

  /// Rebuilds the base CSR from `db` and drops all tails. Bumps the epoch
  /// (tail addresses die) and the compaction counter.
  void Compact(const Database& db);

  /// True when there are no tail segments (pure base CSR view).
  bool flat() const {
    return tail_observations_ == 0 && num_claims_ == base_claims_ &&
           num_items_ == base_items_ && num_sources_ == base_sources_ &&
           tombstones_ == 0;
  }
  /// Vote entries living in tail segments (fresh appends since compaction).
  std::size_t tail_observations() const { return tail_observations_; }
  /// Tombstoned base claim->sources entries (revisions of base votes).
  std::size_t tombstones() const { return tombstones_; }
  /// Compactions performed over the lifetime of this view.
  std::uint64_t compactions() const { return compactions_; }

  // ---------------------------------------------------------------------
  // Item / claim addressing.

  /// Global claim id of claim 0 of item i *in the base segment*. Valid for
  /// every live item (new items have an empty base range). For items with
  /// tail claims use global_claim_id().
  std::uint32_t claim_offset(ItemId i) const { return claim_offsets_[i]; }
  std::size_t item_num_claims(ItemId i) const {
    std::size_t n = claim_offsets_[i + 1] - claim_offsets_[i];
    if (!tail_item_claims_.empty()) {
      const auto it = tail_item_claims_.find(i);
      if (it != tail_item_claims_.end()) n += it->second.size();
    }
    return n;
  }
  /// Claims of item i that live in the base segment (prefix of the local
  /// index range; tail claims follow).
  std::size_t item_base_claims(ItemId i) const {
    return claim_offsets_[i + 1] - claim_offsets_[i];
  }
  /// True when item i's global claim ids are the contiguous base run
  /// [claim_offset(i), claim_offset(i) + item_num_claims(i)).
  bool item_claims_flat(ItemId i) const {
    return tail_item_claims_.empty() || tail_item_claims_.count(i) == 0;
  }
  /// Global claim id of claim k of item i, base or tail.
  std::uint32_t global_claim_id(ItemId i, std::size_t k) const {
    const std::size_t base = item_base_claims(i);
    if (k < base) return claim_offsets_[i] + static_cast<std::uint32_t>(k);
    return tail_item_claims_.at(i)[k - base];
  }
  /// ln(|V_i| - 1) — the false-value factor of Accu's Eq. (1); 0 for
  /// single-claim items (never used there). Tracks the live claim count.
  double log_false_values(ItemId i) const { return log_false_values_[i]; }

  // ---------------------------------------------------------------------
  // Base CSR ranges. These address the *base segment only*; they stay valid
  // for every live id (appended entities have empty base ranges) and are the
  // whole story when flat(). Tail-aware readers use the ForEach helpers.

  /// Sources voting for global claim g: [claim_sources_begin(g),
  /// claim_sources_end(g)) into claim_sources(). Tombstoned entries are
  /// only distinguishable through ForEachClaimSource / claim_num_sources.
  std::uint32_t claim_sources_begin(std::uint32_t g) const {
    return claim_source_offsets_[g];
  }
  std::uint32_t claim_sources_end(std::uint32_t g) const {
    return claim_source_offsets_[g + 1];
  }
  const std::vector<SourceId>& claim_sources() const { return claim_sources_; }

  /// Votes on item i: [item_votes_begin(i), item_votes_end(i)) into the
  /// parallel arrays item_vote_sources() / item_vote_claims() (claim indices
  /// are local to the item).
  std::uint32_t item_votes_begin(ItemId i) const { return item_vote_offsets_[i]; }
  std::uint32_t item_votes_end(ItemId i) const {
    return item_vote_offsets_[i + 1];
  }
  const std::vector<SourceId>& item_vote_sources() const {
    return item_vote_sources_;
  }
  const std::vector<ClaimIndex>& item_vote_claims() const {
    return item_vote_claims_;
  }

  /// Votes by source j: [source_votes_begin(j), source_votes_end(j)) into the
  /// parallel arrays source_vote_items() / source_vote_claims(). The claim
  /// entries are *global* claim ids, so a flat probability table can be
  /// indexed directly.
  std::uint32_t source_votes_begin(SourceId j) const {
    return source_vote_offsets_[j];
  }
  std::uint32_t source_votes_end(SourceId j) const {
    return source_vote_offsets_[j + 1];
  }
  const std::vector<ItemId>& source_vote_items() const {
    return source_vote_items_;
  }
  const std::vector<std::uint32_t>& source_vote_claims() const {
    return source_vote_claims_;
  }

  /// N(s_j): number of items source j votes on (base + tail; revisions do
  /// not change it).
  std::size_t source_degree(SourceId j) const {
    std::size_t n = source_vote_offsets_[j + 1] - source_vote_offsets_[j];
    if (!tail_source_votes_.empty()) {
      const auto it = tail_source_votes_.find(j);
      if (it != tail_source_votes_.end()) n += it->second.size();
    }
    return n;
  }

  // ---------------------------------------------------------------------
  // Tail-aware iteration. Base entries come first (tombstones skipped),
  // then the tail in append order. When flat() these devolve to the tight
  // base loops plus one emptiness check per call.

  /// Live number of sources voting for global claim g.
  std::size_t claim_num_sources(std::uint32_t g) const {
    std::size_t n = claim_source_offsets_[g + 1] - claim_source_offsets_[g];
    if (!removed_claim_sources_.empty()) {
      const auto it = removed_claim_sources_.find(g);
      if (it != removed_claim_sources_.end()) n -= it->second;
    }
    if (!tail_claim_sources_.empty()) {
      const auto it = tail_claim_sources_.find(g);
      if (it != tail_claim_sources_.end()) n += it->second.size();
    }
    return n;
  }

  /// f(SourceId) for every live source voting for global claim g.
  template <typename F>
  void ForEachClaimSource(std::uint32_t g, F&& f) const {
    const std::uint32_t begin = claim_source_offsets_[g];
    const std::uint32_t end = claim_source_offsets_[g + 1];
    if (claim_source_dead_.empty()) {
      for (std::uint32_t v = begin; v < end; ++v) f(claim_sources_[v]);
    } else {
      for (std::uint32_t v = begin; v < end; ++v) {
        if (!claim_source_dead_[v]) f(claim_sources_[v]);
      }
    }
    if (!tail_claim_sources_.empty()) {
      const auto it = tail_claim_sources_.find(g);
      if (it != tail_claim_sources_.end()) {
        for (const SourceId j : it->second) f(j);
      }
    }
  }

  /// f(SourceId, ClaimIndex /*local*/) for every vote on item i.
  template <typename F>
  void ForEachItemVote(ItemId i, F&& f) const {
    const std::uint32_t begin = item_vote_offsets_[i];
    const std::uint32_t end = item_vote_offsets_[i + 1];
    for (std::uint32_t v = begin; v < end; ++v) {
      f(item_vote_sources_[v], item_vote_claims_[v]);
    }
    if (!tail_item_votes_.empty()) {
      const auto it = tail_item_votes_.find(i);
      if (it != tail_item_votes_.end()) {
        for (const auto& [source, claim] : it->second) f(source, claim);
      }
    }
  }

  /// f(ItemId, std::uint32_t /*global claim id*/) for every vote by source j.
  template <typename F>
  void ForEachSourceVote(SourceId j, F&& f) const {
    const std::uint32_t begin = source_vote_offsets_[j];
    const std::uint32_t end = source_vote_offsets_[j + 1];
    for (std::uint32_t v = begin; v < end; ++v) {
      f(source_vote_items_[v], source_vote_claims_[v]);
    }
    if (!tail_source_votes_.empty()) {
      const auto it = tail_source_votes_.find(j);
      if (it != tail_source_votes_.end()) {
        for (const auto& [item, g] : it->second) f(item, g);
      }
    }
  }

 private:
  void BuildBase(const Database& db);

  std::size_t num_items_ = 0;
  std::size_t num_sources_ = 0;
  std::size_t num_claims_ = 0;
  std::size_t num_observations_ = 0;

  // Base CSR. Offsets are extended with empty ranges for entities appended
  // after the last compaction, so every live id is indexable.
  std::vector<std::uint32_t> claim_offsets_;         // num_items + 1
  std::vector<double> log_false_values_;             // num_items
  std::vector<std::uint32_t> claim_source_offsets_;  // num_claims + 1
  std::vector<SourceId> claim_sources_;              // base observations
  std::vector<std::uint32_t> item_vote_offsets_;     // num_items + 1
  std::vector<SourceId> item_vote_sources_;          // base observations
  std::vector<ClaimIndex> item_vote_claims_;         // base observations
  std::vector<std::uint32_t> source_vote_offsets_;   // num_sources + 1
  std::vector<ItemId> source_vote_items_;            // base observations
  std::vector<std::uint32_t> source_vote_claims_;    // base observations

  // Segment bookkeeping.
  std::uint64_t epoch_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t base_items_ = 0;
  std::size_t base_sources_ = 0;
  std::size_t base_claims_ = 0;
  std::size_t tail_observations_ = 0;
  std::size_t tombstones_ = 0;

  // Tail segments (empty when flat()).
  // item -> global ids of its tail claims, in local-index order.
  std::unordered_map<ItemId, std::vector<std::uint32_t>> tail_item_claims_;
  // global claim id -> tail sources (append order).
  std::unordered_map<std::uint32_t, std::vector<SourceId>> tail_claim_sources_;
  // Tombstones for base claim->sources entries removed by revisions:
  // parallel dead-bit array (lazily sized) + per-claim removed counts.
  std::vector<std::uint8_t> claim_source_dead_;
  std::unordered_map<std::uint32_t, std::uint32_t> removed_claim_sources_;
  // item -> tail votes (source, local claim).
  std::unordered_map<ItemId, std::vector<std::pair<SourceId, ClaimIndex>>>
      tail_item_votes_;
  // source -> tail votes (item, global claim id).
  std::unordered_map<SourceId, std::vector<std::pair<ItemId, std::uint32_t>>>
      tail_source_votes_;
};

}  // namespace veritas

#endif  // VERITAS_MODEL_COMPILED_DATABASE_H_
