// Fundamental identifier types for the fusion data model (paper §1.2).
#ifndef VERITAS_MODEL_TYPES_H_
#define VERITAS_MODEL_TYPES_H_

#include <cstdint>
#include <limits>

namespace veritas {

/// Index of a data item o_i in a Database.
using ItemId = std::uint32_t;

/// Index of a source s_j in a Database.
using SourceId = std::uint32_t;

/// Index of a claim v_i^k within its item's claim list.
using ClaimIndex = std::uint32_t;

inline constexpr ItemId kInvalidItem = std::numeric_limits<ItemId>::max();
inline constexpr SourceId kInvalidSource = std::numeric_limits<SourceId>::max();
inline constexpr ClaimIndex kInvalidClaim =
    std::numeric_limits<ClaimIndex>::max();

/// A single observation psi_{j,i,k} = 1 from the perspective of a source:
/// "source votes for claim `claim` of item `item`".
struct Vote {
  ItemId item = kInvalidItem;
  ClaimIndex claim = kInvalidClaim;

  bool operator==(const Vote& other) const {
    return item == other.item && claim == other.claim;
  }
};

/// The same observation from the perspective of an item.
struct ItemVote {
  SourceId source = kInvalidSource;
  ClaimIndex claim = kInvalidClaim;

  bool operator==(const ItemVote& other) const {
    return source == other.source && claim == other.claim;
  }
};

}  // namespace veritas

#endif  // VERITAS_MODEL_TYPES_H_
