// ShardPartition: a deterministic, item-disjoint partition of a
// CompiledDatabase for the sharded candidate scan (DESIGN.md §5h). Items are
// coupled only through shared sources — the per-source accuracy table is the
// one piece of state a sharded scan shares — so any item partition is valid;
// this one balances *vote mass* (the cost driver of a lookahead) across
// shards with LPT greedy scheduling:
//   items sorted by vote count descending (ties: ascending item id) are
//   assigned one by one to the currently lightest shard (ties: lowest shard
//   index).
// Every input order, comparison and tie-break is fully determined by the
// compiled view, so two builds over the same epoch produce identical maps —
// the foundation of the sharded scan's determinism argument.
//
// Shards may be empty (fewer items than shards); callers must tolerate
// items(s).empty().
#ifndef VERITAS_MODEL_SHARD_PARTITION_H_
#define VERITAS_MODEL_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "model/compiled_database.h"
#include "model/types.h"

namespace veritas {

class ShardPartition {
 public:
  /// Builds the partition against the view's current epoch. `num_shards` is
  /// clamped to at least 1.
  ShardPartition(const CompiledDatabase& compiled, std::size_t num_shards);

  std::size_t num_shards() const { return items_.size(); }
  /// Epoch of the compiled view the map was built against. Stale maps must
  /// be rebuilt: an appended item has no shard.
  std::uint64_t epoch() const { return epoch_; }

  /// Shard owning item i (i must predate epoch()).
  std::uint32_t shard_of(ItemId i) const { return shard_of_[i]; }
  /// Raw map, indexed by ItemId — the propagation-scope filter for the
  /// delta engine (fusion/delta_fusion.h ItemScope).
  const std::vector<std::uint32_t>& shard_map() const { return shard_of_; }

  /// Items owned by shard s, in ascending item-id order.
  const std::vector<ItemId>& items(std::size_t s) const { return items_[s]; }
  /// Multi-claim items owned by shard s, ascending. The only items a
  /// shard-confined propagation can ever re-enroll (single-claim items are
  /// fixed), so a confined lookahead enrolls from this list instead of
  /// scanning a heavy source's full vote list.
  const std::vector<ItemId>& conflict_items(std::size_t s) const {
    return conflict_items_[s];
  }
  /// Total votes across the items of shard s (the balance target).
  std::size_t weight(std::size_t s) const { return weights_[s]; }

 private:
  std::uint64_t epoch_ = 0;
  std::vector<std::uint32_t> shard_of_;
  std::vector<std::vector<ItemId>> items_;
  std::vector<std::vector<ItemId>> conflict_items_;
  std::vector<std::size_t> weights_;
};

}  // namespace veritas

#endif  // VERITAS_MODEL_SHARD_PARTITION_H_
