// Ground truth T: item -> true claim (paper's truth function, §4.2.1).
// Truth may be partial: items without a known true claim are simply not
// covered (matching the paper's silver standards).
#ifndef VERITAS_MODEL_GROUND_TRUTH_H_
#define VERITAS_MODEL_GROUND_TRUTH_H_

#include <string>
#include <vector>

#include "model/database.h"
#include "model/types.h"
#include "util/result.h"

namespace veritas {

/// Partial assignment of the true claim for items of one Database.
class GroundTruth {
 public:
  GroundTruth() = default;
  /// Creates a truth table sized for `db` with no known truths.
  explicit GroundTruth(const Database& db)
      : truth_(db.num_items(), kInvalidClaim) {}

  /// Marks `claim` as the true claim of `item`.
  Status Set(const Database& db, ItemId item, ClaimIndex claim);

  /// Marks the claim with value string `value` as true for `item`.
  Status SetByValue(const Database& db, const std::string& item,
                    const std::string& value);

  /// True when the true claim of `item` is known.
  bool Knows(ItemId item) const {
    return item < truth_.size() && truth_[item] != kInvalidClaim;
  }

  /// The true claim of `item`; kInvalidClaim when unknown.
  ClaimIndex TrueClaim(ItemId item) const {
    return item < truth_.size() ? truth_[item] : kInvalidClaim;
  }

  /// Whether `claim` of `item` is the true one. Unknown items yield false.
  bool IsTrue(ItemId item, ClaimIndex claim) const {
    return Knows(item) && truth_[item] == claim;
  }

  /// Number of items with known truth.
  std::size_t num_known() const;

  /// Items with known truth.
  std::vector<ItemId> KnownItems() const;

 private:
  std::vector<ClaimIndex> truth_;
};

}  // namespace veritas

#endif  // VERITAS_MODEL_GROUND_TRUTH_H_
