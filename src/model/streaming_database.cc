#include "model/streaming_database.h"

#include <algorithm>
#include <cassert>

namespace veritas {

VectorFeed::VectorFeed(std::vector<StreamObservation> observations,
                       std::vector<StreamTruth> truths,
                       std::size_t batch_size)
    : observations_(std::move(observations)),
      truths_(std::move(truths)),
      batch_size_(batch_size == 0 ? 1 : batch_size) {
  std::stable_sort(truths_.begin(), truths_.end(),
                   [](const StreamTruth& a, const StreamTruth& b) {
                     return a.timestamp < b.timestamp;
                   });
}

bool VectorFeed::Next(IngestBatch* out) {
  if (obs_pos_ >= observations_.size() && truth_pos_ >= truths_.size()) {
    return false;
  }
  out->observations.clear();
  out->truths.clear();
  const std::size_t end =
      std::min(obs_pos_ + batch_size_, observations_.size());
  double horizon = 0.0;
  for (; obs_pos_ < end; ++obs_pos_) {
    horizon = observations_[obs_pos_].timestamp;
    out->observations.push_back(observations_[obs_pos_]);
  }
  const bool last = obs_pos_ >= observations_.size();
  while (truth_pos_ < truths_.size() &&
         (last || truths_[truth_pos_].timestamp <= horizon)) {
    out->truths.push_back(truths_[truth_pos_]);
    ++truth_pos_;
  }
  return true;
}

StreamingDatabase::StreamingDatabase(Database db, StreamingOptions options)
    : db_(std::move(db)), compiled_(db_), options_(options) {}

ItemId StreamingDatabase::InternItem(const std::string& name,
                                     IngestStats* stats) {
  const auto it = db_.item_index_.find(name);
  if (it != db_.item_index_.end()) return it->second;
  const ItemId id = static_cast<ItemId>(db_.items_.size());
  db_.items_.push_back(Item{name, {}});
  db_.item_votes_.emplace_back();
  db_.item_index_.emplace(name, id);
  ++stats->new_items;
  dirty_items_.insert(id);
  return id;
}

SourceId StreamingDatabase::InternSource(const std::string& name,
                                         IngestStats* stats) {
  const auto it = db_.source_index_.find(name);
  if (it != db_.source_index_.end()) return it->second;
  const SourceId id = static_cast<SourceId>(db_.sources_.size());
  db_.sources_.push_back(Source{name, {}});
  db_.source_index_.emplace(name, id);
  ++stats->new_sources;
  dirty_sources_.insert(id);
  return id;
}

Result<IngestStats> StreamingDatabase::AppendBatch(const IngestBatch& batch) {
  IngestStats stats;
  CompiledDelta delta;
  for (const StreamObservation& obs : batch.observations) {
    if (obs.source.empty() || obs.item.empty() || obs.value.empty()) {
      return Status::InvalidArgument(
          "stream observation with empty source/item/value");
    }
    const ItemId i = InternItem(obs.item, &stats);
    const SourceId j = InternSource(obs.source, &stats);
    Item& item = db_.items_[i];

    // Find or create the claim for this value.
    ClaimIndex claim = kInvalidClaim;
    for (ClaimIndex k = 0; k < item.claims.size(); ++k) {
      if (item.claims[k].value == obs.value) {
        claim = k;
        break;
      }
    }
    if (claim == kInvalidClaim) {
      claim = static_cast<ClaimIndex>(item.claims.size());
      item.claims.push_back(Claim{obs.value, {}});
      ++db_.num_claims_;
      delta.new_claims.push_back(CompiledDelta::NewClaim{i});
      ++stats.new_claims;
      dirty_items_.insert(i);
    }

    // Locate the source's existing vote on this item, if any.
    std::vector<Vote>& votes = db_.sources_[j].votes;
    const auto vpos = std::lower_bound(
        votes.begin(), votes.end(), i,
        [](const Vote& v, ItemId target) { return v.item < target; });
    if (vpos != votes.end() && vpos->item == i) {
      if (vpos->claim == claim) {
        ++stats.duplicates;  // Idempotent re-observation: no-op.
        continue;
      }
      // Last-write-wins revision: rewrite the vote in place, move the
      // source's support between the claim source lists, rewrite the item's
      // vote entry.
      const ClaimIndex old_claim = vpos->claim;
      vpos->claim = claim;
      std::vector<SourceId>& old_sources = item.claims[old_claim].sources;
      const auto spos =
          std::lower_bound(old_sources.begin(), old_sources.end(), j);
      assert(spos != old_sources.end() && *spos == j);
      old_sources.erase(spos);
      std::vector<SourceId>& new_sources = item.claims[claim].sources;
      new_sources.insert(
          std::lower_bound(new_sources.begin(), new_sources.end(), j), j);
      std::vector<ItemVote>& ivotes = db_.item_votes_[i];
      const auto ipos = std::lower_bound(
          ivotes.begin(), ivotes.end(), j,
          [](const ItemVote& v, SourceId target) { return v.source < target; });
      assert(ipos != ivotes.end() && ipos->source == j);
      ipos->claim = claim;
      delta.votes.push_back(CompiledDelta::VoteOp{j, i, old_claim, claim});
      ++stats.revisions;
    } else {
      // Fresh vote: sorted insertion into all three Database indexes.
      votes.insert(vpos, Vote{i, claim});
      std::vector<SourceId>& sources = item.claims[claim].sources;
      sources.insert(std::lower_bound(sources.begin(), sources.end(), j), j);
      std::vector<ItemVote>& ivotes = db_.item_votes_[i];
      ivotes.insert(
          std::lower_bound(ivotes.begin(), ivotes.end(), j,
                           [](const ItemVote& v, SourceId target) {
                             return v.source < target;
                           }),
          ItemVote{j, claim});
      ++db_.num_observations_;
      delta.votes.push_back(
          CompiledDelta::VoteOp{j, i, kInvalidClaim, claim});
      ++stats.fresh;
    }
    dirty_items_.insert(i);
    dirty_sources_.insert(j);
  }

  // A batch of pure duplicates changes nothing — keep the epoch (and every
  // derived base state) valid rather than invalidating readers for a no-op.
  if (!delta.new_claims.empty() || !delta.votes.empty()) {
    compiled_.Append(db_, delta);
  }

  totals_.fresh += stats.fresh;
  totals_.revisions += stats.revisions;
  totals_.duplicates += stats.duplicates;
  totals_.new_items += stats.new_items;
  totals_.new_sources += stats.new_sources;
  totals_.new_claims += stats.new_claims;
  return stats;
}

bool StreamingDatabase::CompactIfNeeded() {
  const std::size_t tail =
      compiled_.tail_observations() + compiled_.tombstones();
  if (tail < options_.min_tail_before_compact) return false;
  const double fraction =
      static_cast<double>(tail) /
      static_cast<double>(std::max<std::size_t>(1, db_.num_observations()));
  if (fraction < options_.compact_tail_fraction) return false;
  compiled_.Compact(db_);
  return true;
}

void StreamingDatabase::Compact() { compiled_.Compact(db_); }

void StreamingDatabase::TakeDirty(std::vector<ItemId>* items,
                                  std::vector<SourceId>* sources) {
  items->assign(dirty_items_.begin(), dirty_items_.end());
  std::sort(items->begin(), items->end());
  sources->assign(dirty_sources_.begin(), dirty_sources_.end());
  std::sort(sources->begin(), sources->end());
  dirty_items_.clear();
  dirty_sources_.clear();
}

}  // namespace veritas
