// StallOracle: simulates the hung validation RPC the supervisor's watchdog
// exists for. A real expert UI or crowd platform call can block far past any
// deadline without failing; the only way out is a transport-level cancel.
// StallOracle reproduces that shape deterministically: Answer() blocks in
// short sleep slices — like a transport polling its cancel flag — until a
// *hard* stop is requested on the session's CancellationToken or the
// configured stall elapses. Graceful stops are deliberately ignored: a stuck
// RPC cannot observe round boundaries, which is exactly why the watchdog
// must escalate to a hard stop.
#ifndef VERITAS_SERVE_STALL_ORACLE_H_
#define VERITAS_SERVE_STALL_ORACLE_H_

#include <memory>
#include <string>

#include "core/oracle.h"
#include "util/cancellation.h"

namespace veritas {

class StallOracle : public FeedbackOracle {
 public:
  /// Non-owning inner; `cancel` may be null (then the stall always runs its
  /// full `stall_seconds` course).
  StallOracle(FeedbackOracle* inner, const CancellationToken* cancel,
              double stall_seconds);
  /// Owning variant for factory-built chains.
  StallOracle(std::unique_ptr<FeedbackOracle> inner,
              const CancellationToken* cancel, double stall_seconds);

  std::string name() const override;

  /// Blocks until a hard stop or `stall_seconds`, whichever first. A hard
  /// stop fails the call with Status::Unavailable ("stalled oracle call
  /// cancelled"); surviving the full stall forwards to the inner oracle
  /// (a slow-but-eventually-successful call).
  Result<std::vector<double>> Answer(const Database& db, ItemId item,
                                     const GroundTruth& truth,
                                     Rng* rng) override;

  /// Calls that were cut short by a hard stop.
  std::size_t cancelled_calls() const { return cancelled_calls_; }

  std::string SerializeState() const override;
  Status RestoreState(const std::string& state) override;

 private:
  FeedbackOracle* inner_;
  std::unique_ptr<FeedbackOracle> owned_;
  const CancellationToken* cancel_;
  double stall_seconds_;
  std::size_t cancelled_calls_ = 0;
};

}  // namespace veritas

#endif  // VERITAS_SERVE_STALL_ORACLE_H_
