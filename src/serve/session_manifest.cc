#include "serve/session_manifest.h"

#include <dirent.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/durable_file.h"

namespace veritas {

namespace {

constexpr const char* kHeader = "veritas-session-manifest v1";
constexpr const char* kManifestSuffix = ".session";

// Empty string values are stored as "-" so every line keeps its two-token
// shape; real values never start with "-" followed by nothing.
std::string EncodeString(const std::string& value) {
  return value.empty() ? "-" : value;
}

std::string DecodeString(const std::string& value) {
  return value == "-" ? "" : value;
}

}  // namespace

std::string ValidateSessionId(const std::string& id) {
  if (id.empty()) return "session id must not be empty";
  for (char c : id) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      return "session id must not contain whitespace";
    }
    if (c == '/' || c == '\\') {
      return "session id must not contain path separators";
    }
  }
  if (id[0] == '.') return "session id must not start with '.'";
  return "";
}

std::string SessionManifestPath(const std::string& dir,
                                const std::string& id) {
  return dir + "/" + id + kManifestSuffix;
}

std::string SessionCheckpointPath(const std::string& dir,
                                  const std::string& id) {
  return dir + "/" + id + ".ckpt";
}

std::string SerializeSessionSpecFields(const SessionSpec& spec) {
  std::ostringstream out;
  out << "id " << spec.id << "\n";
  out << "strategy " << EncodeString(spec.strategy) << "\n";
  out << "model " << EncodeString(spec.model) << "\n";
  out << "oracle " << EncodeString(spec.oracle) << "\n";
  out << "max_validations " << spec.max_validations << "\n";
  out << "batch " << spec.batch_size << "\n";
  out << "seed " << spec.seed << "\n";
  out << "deadline_ms " << spec.deadline_ms << "\n";
  out << "budget_bytes " << spec.budget.max_approx_bytes << "\n";
  out << "budget_rounds " << spec.budget.max_rounds_per_run << "\n";
  out << "flaky " << EncodeString(spec.flaky_plan) << "\n";
  out << "retries " << spec.retries << "\n";
  out << "stall_seconds " << spec.stall_seconds << "\n";
  out << "delta " << (spec.use_delta_fusion ? 1 : 0) << "\n";
  out << "threads " << spec.threads << "\n";
  out << "recovery_attempts " << spec.recovery_attempts << "\n";
  return out.str();
}

Status ApplySessionSpecField(const std::string& key, const std::string& value,
                             SessionSpec* spec, bool* known) {
  if (known != nullptr) *known = true;
  std::istringstream num(value);
  const auto bad = [&]() {
    return Status::InvalidArgument("bad value \"" + value +
                                   "\" for session spec field " + key);
  };
  if (key == "id") {
    spec->id = value;
  } else if (key == "strategy") {
    spec->strategy = DecodeString(value);
  } else if (key == "model") {
    spec->model = DecodeString(value);
  } else if (key == "oracle") {
    spec->oracle = DecodeString(value);
  } else if (key == "max_validations") {
    if (!(num >> spec->max_validations)) return bad();
  } else if (key == "batch") {
    if (!(num >> spec->batch_size)) return bad();
  } else if (key == "seed") {
    if (!(num >> spec->seed)) return bad();
  } else if (key == "deadline_ms") {
    if (!(num >> spec->deadline_ms)) return bad();
  } else if (key == "budget_bytes") {
    if (!(num >> spec->budget.max_approx_bytes)) return bad();
  } else if (key == "budget_rounds") {
    if (!(num >> spec->budget.max_rounds_per_run)) return bad();
  } else if (key == "flaky") {
    spec->flaky_plan = DecodeString(value);
  } else if (key == "retries") {
    if (!(num >> spec->retries)) return bad();
  } else if (key == "stall_seconds") {
    if (!(num >> spec->stall_seconds)) return bad();
  } else if (key == "delta") {
    int flag = 0;
    if (!(num >> flag)) return bad();
    spec->use_delta_fusion = flag != 0;
  } else if (key == "threads") {
    if (!(num >> spec->threads)) return bad();
  } else if (key == "recovery_attempts") {
    if (!(num >> spec->recovery_attempts)) return bad();
  } else if (known != nullptr) {
    *known = false;
  }
  return Status::OK();
}

Status SaveSessionManifest(const SessionSpec& spec, const std::string& path) {
  std::string out = kHeader;
  out += "\n";
  out += SerializeSessionSpecFields(spec);
  out += "end\n";
  return AtomicWriteFile(path, out);
}

Result<SessionSpec> LoadSessionManifest(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("no session manifest at " + path);
  }
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return Status::InvalidArgument("manifest " + path +
                                   ": missing or unsupported header");
  }
  SessionSpec spec;
  bool saw_end = false;
  while (std::getline(in, line)) {
    if (line == "end") {
      saw_end = true;
      break;
    }
    const std::size_t space = line.find(' ');
    if (space == std::string::npos || space == 0) {
      return Status::InvalidArgument("manifest " + path + ": bad line \"" +
                                     line + "\"");
    }
    const std::string key = line.substr(0, space);
    const std::string value = line.substr(space + 1);
    // Unknown keys are skipped inside ApplySessionSpecField so older
    // binaries read newer manifests.
    if (Status st = ApplySessionSpecField(key, value, &spec); !st.ok()) {
      return Status::InvalidArgument("manifest " + path + ": " + st.message());
    }
  }
  if (!saw_end) {
    return Status::InvalidArgument("manifest " + path +
                                   ": truncated (no end marker)");
  }
  if (!ValidateSessionId(spec.id).empty()) {
    return Status::InvalidArgument("manifest " + path + ": bad session id");
  }
  return spec;
}

Result<std::vector<std::string>> ListSessionManifests(
    const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("cannot list sessions directory " + dir + ": " +
                           std::strerror(errno));
  }
  std::vector<std::string> ids;
  const std::string suffix = kManifestSuffix;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() <= suffix.size() ||
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
            0) {
      continue;
    }
    ids.push_back(name.substr(0, name.size() - suffix.size()));
  }
  ::closedir(d);
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::size_t RemoveOrphanTempFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  std::vector<std::string> doomed;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    const std::size_t at = name.find(".tmp.");
    if (at == std::string::npos) continue;
    // AtomicWriteFile's POSIX temp name is <final>.tmp.<pid>.<serial>;
    // anything that does not parse that way is not ours to delete.
    const char* digits = name.c_str() + at + 5;
    char* end = nullptr;
    const long pid = std::strtol(digits, &end, 10);
    if (end == digits || *end != '.' || pid <= 0) continue;
    if (pid == static_cast<long>(::getpid())) continue;  // Live writer: us.
    errno = 0;
    if (::kill(static_cast<pid_t>(pid), 0) == 0 || errno != ESRCH) {
      continue;  // Pid exists (or is unprobeable): assume a live writer.
    }
    doomed.push_back(dir + "/" + name);
  }
  ::closedir(d);
  for (const std::string& path : doomed) ::unlink(path.c_str());
  return doomed.size();
}

}  // namespace veritas
