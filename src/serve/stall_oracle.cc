#include "serve/stall_oracle.h"

#include <chrono>
#include <thread>
#include <utility>

namespace veritas {

namespace {
// Poll granularity of the simulated transport. Coarse enough to be cheap,
// fine enough that a watchdog hard stop is observed within ~a millisecond.
constexpr std::chrono::milliseconds kPollSlice{1};
}  // namespace

StallOracle::StallOracle(FeedbackOracle* inner,
                         const CancellationToken* cancel,
                         double stall_seconds)
    : inner_(inner), cancel_(cancel), stall_seconds_(stall_seconds) {}

StallOracle::StallOracle(std::unique_ptr<FeedbackOracle> inner,
                         const CancellationToken* cancel,
                         double stall_seconds)
    : inner_(inner.get()),
      owned_(std::move(inner)),
      cancel_(cancel),
      stall_seconds_(stall_seconds) {}

std::string StallOracle::name() const {
  return "stall(" + inner_->name() + ")";
}

Result<std::vector<double>> StallOracle::Answer(const Database& db,
                                                ItemId item,
                                                const GroundTruth& truth,
                                                Rng* rng) {
  const auto start = std::chrono::steady_clock::now();
  const auto stall_for = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(stall_seconds_));
  while (std::chrono::steady_clock::now() - start < stall_for) {
    if (HardStopRequested(cancel_)) {
      ++cancelled_calls_;
      return Status::Unavailable("stalled oracle call cancelled");
    }
    std::this_thread::sleep_for(kPollSlice);
  }
  return inner_->Answer(db, item, truth, rng);
}

std::string StallOracle::SerializeState() const {
  return inner_->SerializeState();
}

Status StallOracle::RestoreState(const std::string& state) {
  return inner_->RestoreState(state);
}

}  // namespace veritas
